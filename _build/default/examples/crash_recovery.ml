(* Crash consistency of SPP's memory-safety metadata (paper §IV-F, §VI-E):
   the durable size field is published before the offset, transactional
   updates log the extra 8 bytes, and the tag is correctly rebuilt on the
   recovery path — demonstrated with an explicit crash-state exploration.

   Run with: dune exec examples/crash_recovery.exe *)

open Spp_pmdk

let fill_and_persist pool (oid : Oid.t) =
  Pool.store_word pool ~off:oid.Oid.off 1;
  Pool.persist pool ~off:oid.Oid.off ~len:8

let () =
  let space = Spp_sim.Space.create () in
  let pool =
    Pool.create space ~base:4096 ~size:(1 lsl 20)
      ~mode:(Mode.Spp Spp_core.Config.default) ~name:"recovery-demo"
  in
  let root = Pool.root pool ~size:64 in

  (* 1. Crash in the middle of an atomic allocation publishing into a PM
     slot. After recovery the slot is either null or a complete oid whose
     durable size rebuilds the exact tag. *)
  Printf.printf "pmreorder over an atomic alloc into the root slot:\n";
  let result =
    Spp_pmemcheck.Pmreorder.explore ~pool
      ~workload:(fun () -> ignore (Pool.alloc pool ~size:96 ~dest:root.Oid.off))
      ~consistent:(fun pool' ->
        let slot = Pool.load_oid pool' ~off:root.Oid.off in
        Oid.is_null slot
        ||
        (let ptr = Pool.direct pool' slot in
         Spp_core.Encoding.remaining Spp_core.Config.default ptr = 96))
      ()
  in
  Format.printf "  %a@." Spp_pmemcheck.Pmreorder.pp_result result;

  (* 2. Crash during a transaction: the undo log (which includes SPP's
     extra oid bytes) restores the snapshot. *)
  Spp_sim.Memdev.set_tracking (Pool.dev pool) true;
  let oid = Pool.alloc pool ~size:128 ~dest:root.Oid.off in
  fill_and_persist pool oid;
  Pool.tx_begin pool;
  Pool.tx_add_range pool ~off:oid.Oid.off ~len:16;
  Pool.store_word pool ~off:oid.Oid.off 999;
  Printf.printf "\ninside tx, word0 = %d\n" (Pool.load_word pool ~off:oid.Oid.off);
  let (_ : Pool.recovery_report) = Pool.crash_and_recover pool in
  Printf.printf "after crash + recovery, word0 = %d (rolled back)\n"
    (Pool.load_word pool ~off:oid.Oid.off);

  (* 3. The tag still matches the durable size after recovery. *)
  let slot = Pool.load_oid pool ~off:root.Oid.off in
  let ptr = Pool.direct pool slot in
  Format.printf "recovered pointer: %a (remaining %d)@."
    (Spp_core.Encoding.pp Spp_core.Config.default) ptr
    (Spp_core.Encoding.remaining Spp_core.Config.default ptr);

  (* and it still protects: one byte past the object faults *)
  match
    Spp_access.run_guarded (fun () ->
      Spp_sim.Space.store_u8 space
        (Spp_core.Encoding.check_bound Spp_core.Config.default
           (Spp_core.Encoding.gep Spp_core.Config.default ptr 128) 1)
        1)
  with
  | Spp_access.Prevented r -> Printf.printf "post-recovery overflow: %s\n" r
  | Spp_access.Ok_completed -> print_endline "!!! overflow went through"
