examples/typed_store.mli:
