examples/crash_recovery.ml: Format Mode Oid Pool Printf Spp_access Spp_core Spp_pmdk Spp_pmemcheck Spp_sim
