examples/kvstore_demo.ml: List Option Pool Printf Spp_access Spp_pmdk Spp_pmemkv Spp_sim
