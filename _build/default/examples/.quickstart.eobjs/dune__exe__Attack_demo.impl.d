examples/attack_demo.ml: List Printf Ripe Spp_access Spp_ripe
