examples/quickstart.mli:
