examples/typed_store.ml: Printf Spp_access Spp_pmemlog Spp_pptr
