examples/quickstart.ml: Bytes Format Printf Spp_access Spp_core Spp_pmdk
