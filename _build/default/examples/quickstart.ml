(* Quickstart: create an SPP-protected PM pool, allocate an object, see
   the tagged pointer at work, and watch an out-of-bounds access fault
   *before* it can corrupt a neighbour.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* An SPP "machine": a simulated address space with one SPP-mode pool.
     The access layer plays the role of the instrumented binary. *)
  let a =
    Spp_access.create ~pool_size:(1 lsl 20) ~name:"quickstart" Spp_access.Spp
  in
  let cfg = Spp_core.Config.default in
  Format.printf "%a@." Spp_core.Config.pp cfg;

  (* pmemobj_alloc: the PMEMoid carries a durable size field in SPP mode *)
  let oid = a.Spp_access.palloc 42 in
  Format.printf "allocated: %a@." Spp_pmdk.Oid.pp oid;

  (* pmemobj_direct returns a tagged pointer *)
  let p = a.Spp_access.direct oid in
  Format.printf "tagged pointer: %a@." (Spp_core.Encoding.pp cfg) p;

  (* normal, in-bounds use *)
  a.Spp_access.write_string p "hello, persistent world!";
  Printf.printf "stored + loaded back: %S\n"
    (Bytes.to_string (a.Spp_access.read_bytes p 24));

  (* pointer arithmetic moves the tag with the address (paper Fig. 3) *)
  let p21 = a.Spp_access.gep p 21 in
  Format.printf "p + 21: %a (remaining %d bytes)@."
    (Spp_core.Encoding.pp cfg) p21
    (Spp_core.Encoding.remaining cfg p21);
  let p42 = a.Spp_access.gep p21 21 in
  Format.printf "p + 42: %a  <- overflow bit is now set@."
    (Spp_core.Encoding.pp cfg) p42;

  (* a neighbour object that an unchecked overflow would corrupt *)
  let neighbour = a.Spp_access.palloc 42 in
  let np = a.Spp_access.direct neighbour in
  a.Spp_access.store_word np 0xFACE;

  (* the access through the overflown pointer faults implicitly: no
     bounds branch anywhere, the address itself is invalid *)
  (match Spp_access.run_guarded (fun () -> a.Spp_access.store_word p42 0xBAD) with
   | Spp_access.Prevented reason ->
     Printf.printf "out-of-bounds store prevented: %s\n" reason
   | Spp_access.Ok_completed -> print_endline "!!! overflow went through");

  Printf.printf "neighbour unharmed: 0x%X\n" (a.Spp_access.load_word np);

  (* arithmetic back below the bound revalidates the pointer *)
  let back = a.Spp_access.gep p42 (-21) in
  Printf.printf "back in bounds, byte at +21: %d\n" (a.Spp_access.load_u8 back)
