(* A guided tour of the RIPE attack matrix (paper §VI-D, Table IV): watch
   the same exploit land on native PMDK and die under SPP, and see the
   documented blind spots survive.

   Run with: dune exec examples/attack_demo.exe *)

open Spp_ripe

let show variant attack =
  let outcome = Ripe.run_attack variant attack in
  Printf.printf "  %-28s %s\n" (Ripe.attack_name attack)
    (Ripe.outcome_name outcome)

let () =
  let adjacent t = { Ripe.technique = t; loc = Ripe.Adjacent } in

  print_endline "On native PMDK (nothing checks anything):";
  List.iter (show Spp_access.Pmdk)
    [ adjacent Ripe.Seq_u8; adjacent Ripe.Far_naive_word;
      adjacent Ripe.Strcpy_naive ];

  print_endline "\nUnder SPP (tagged pointers, implicit invalidation):";
  List.iter (show Spp_access.Spp)
    [ adjacent Ripe.Seq_u8; adjacent Ripe.Far_naive_word;
      adjacent Ripe.Strcpy_naive; adjacent Ripe.Far_aware_write ];

  print_endline "\nSPP blind spots (paper §IV-G), still successful:";
  List.iter (show Spp_access.Spp)
    [ adjacent Ripe.Int2ptr_aware; adjacent Ripe.External_aware;
      { Ripe.technique = Ripe.Intra_word; loc = Ripe.Adjacent } ];

  print_endline "\nSafePM vs a layout-aware far write (lands in the target's";
  print_endline "interior, so the shadow sees a valid address — SPP's tag";
  print_endline "travels with the pointer and still catches it):";
  show Spp_access.Safepm (adjacent Ripe.Far_aware_write);
  show Spp_access.Spp (adjacent Ripe.Far_aware_write);

  print_endline "\nUnderflows (no lower-bound tag, paper §IV-A):";
  List.iter (show Spp_access.Spp)
    [ adjacent Ripe.Under_seq_word; adjacent Ripe.Under_far_word ];

  print_endline "\nFull Table IV:";
  List.iter
    (fun r ->
      Printf.printf "  %-14s successful=%2d prevented=%2d failed=%2d\n"
        r.Ripe.row_name r.Ripe.successful r.Ripe.prevented r.Ripe.failed)
    (Ripe.run_all ())
