(* A small "production-style" PM application combining the typed
   persistent-pointer layer (the libpmemobj-cpp analogue), the pmemlog
   write-ahead journal, and SPP protection: a contact book whose records
   are typed PM structs and whose mutations are journaled.

   Run with: dune exec examples/typed_store.exe *)

open Spp_pptr

type contact   (* phantom type for the record layout *)

let () =
  let a =
    Spp_access.create ~pool_size:(1 lsl 20) ~name:"typed-store" Spp_access.Spp
  in
  (* declare the record layout once; oid-bearing fields size themselves
     by the pool mode (24 B here, SPP) *)
  let l : contact layout = layout a in
  let id = word l in
  let name = fixed_string l ~len:24 in
  let phone = fixed_string l ~len:16 in
  let next : (contact, contact ptr) field = pptr l in
  let l = seal l in
  Printf.printf "contact record: %d bytes (SPP-mode PMEMoid inside)\n"
    (size_of l);

  let journal = Spp_pmemlog.create a ~capacity:512 in

  (* insert a few contacts at the head of a typed list, journaling each *)
  let insert head ~cid ~cname ~cphone =
    let c = alloc l in
    set l c id cid;
    set l c name cname;
    set l c phone cphone;
    set l c next head;
    Spp_pmemlog.append journal (Printf.sprintf "insert %d:%s;" cid cname);
    c
  in
  let head = insert null ~cid:1 ~cname:"ada" ~cphone:"555-0001" in
  let head = insert head ~cid:2 ~cname:"grace" ~cphone:"555-0002" in
  let head = insert head ~cid:3 ~cname:"barbara" ~cphone:"555-0003" in

  (* walk the typed list *)
  let rec walk p =
    if not (is_null p) then begin
      Printf.printf "  #%d %-10s %s\n" (get l p id) (get l p name)
        (get l p phone);
      walk (get l p next)
    end
  in
  print_endline "contacts:";
  walk head;
  Printf.printf "journal: %S\n" (Spp_pmemlog.read_all journal);

  (* a buggy lookup that reads one byte past a record still faults *)
  (match
     Spp_access.run_guarded (fun () ->
       ignore (a.Spp_access.load_u8 (a.Spp_access.gep (direct l head) (size_of l))))
   with
   | Spp_access.Prevented r -> Printf.printf "stray record read: %s\n" r
   | Ok_completed -> print_endline "!!! stray read went through");

  (* and a transactional field update rolls back on failure *)
  (try
     with_tx l (fun () ->
       tx_add_field l head phone;
       set l head phone "999-9999";
       failwith "validation failed")
   with Failure _ -> ());
  Printf.printf "after aborted update, phone = %s (rolled back)\n"
    (get l head phone)
