(* A persistent key-value store session under SPP: the pmemkv cmap engine
   runs unchanged on the SPP-adapted PMDK, data survives a simulated
   power failure, and the tag is rebuilt from the durable size field.

   Run with: dune exec examples/kvstore_demo.exe *)

open Spp_pmdk

let () =
  let a = Spp_access.create ~pool_size:(1 lsl 22) ~name:"kv" Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:256 a in

  (* ordinary session *)
  Spp_pmemkv.Cmap.put kv ~key:"user:1" ~value:"ada";
  Spp_pmemkv.Cmap.put kv ~key:"user:2" ~value:"grace";
  Spp_pmemkv.Cmap.put kv ~key:"config" ~value:"{\"mode\": \"spp\"}";
  Printf.printf "count after 3 puts: %d\n" (Spp_pmemkv.Cmap.count_all kv);

  (* overwrite with a different size exercises the realloc path *)
  Spp_pmemkv.Cmap.put kv ~key:"user:2" ~value:"grace hopper";
  Printf.printf "user:2 = %s\n"
    (Option.value ~default:"?" (Spp_pmemkv.Cmap.get kv "user:2"));

  (* power failure in the middle of a burst of writes: committed writes
     survive; the interrupted transaction rolls back *)
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  Spp_pmemkv.Cmap.put kv ~key:"committed" ~value:"survives";
  Printf.printf "\n-- simulated power failure --\n";
  let report = Pool.crash_and_recover a.Spp_access.pool in
  Printf.printf "recovery: redo=%b tx=%s\n" report.Pool.redo_replayed
    (match report.Pool.tx_outcome with
     | `Clean -> "clean"
     | `Rolled_back -> "rolled back"
     | `Completed_commit -> "completed commit");

  List.iter
    (fun k ->
      Printf.printf "%-10s -> %s\n" k
        (Option.value ~default:"(missing)" (Spp_pmemkv.Cmap.get kv k)))
    [ "user:1"; "user:2"; "config"; "committed" ];

  (* the store is still fully protected: a buggy read past a value
     faults instead of leaking the neighbouring entry *)
  Printf.printf "\nbuggy 4096-byte read of a short value: %s\n"
    (match
       Spp_access.run_guarded (fun () ->
         (* simulate an application bug that reads far past the entry *)
         let oid = a.Spp_access.palloc 16 in
         let p = a.Spp_access.direct oid in
         ignore (a.Spp_access.read_bytes p 4096))
     with
     | Spp_access.Prevented r -> "prevented (" ^ r ^ ")"
     | Spp_access.Ok_completed -> "!!! leaked")
