(* Tests for the RIPE attack framework: outcomes must be emergent from
   the mechanisms, and the Table IV ordering must hold. *)

open Spp_ripe

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_rows = lazy (Ripe.run_all ())

let row name =
  match
    List.find_opt (fun r -> r.Ripe.row_name = name) (Lazy.force run_rows)
  with
  | Some r -> r
  | None -> Alcotest.failf "no RIPE row %s" name

let test_unprotected_all_succeed () =
  List.iter
    (fun name ->
      let r = row name in
      check_int (name ^ " successful") (List.length Ripe.all_attacks)
        r.Ripe.successful;
      check_int (name ^ " prevented") 0 r.Ripe.prevented)
    [ "Volatile heap"; "PM pool heap" ]

let test_spp_prevents_most () =
  let spp = row "SPP" in
  check_bool "SPP prevents the majority" true
    (spp.Ripe.prevented > spp.Ripe.successful);
  (* the documented blind spots survive: int2ptr, external, intra-object *)
  List.iter
    (fun (at, o) ->
      match at.Ripe.technique with
      | Ripe.Int2ptr_aware | Ripe.External_aware | Ripe.Intra_word
      | Ripe.Intra_memcpy
      (* no lower-bound tag: underflows are out of scope (paper §IV-A) *)
      | Ripe.Under_seq_word | Ripe.Under_far_word ->
        check_bool (Ripe.attack_name at ^ " evades SPP") true
          (o = Ripe.Successful)
      | Ripe.Seq_u8 | Ripe.Seq_word | Ripe.Far_naive_u8 | Ripe.Far_naive_word
      | Ripe.Memcpy_naive | Ripe.Strcpy_naive | Ripe.Read_leak_naive
      | Ripe.Far_aware_write | Ripe.Far_aware_read ->
        check_bool (Ripe.attack_name at ^ " prevented by SPP") true
          (match o with Ripe.Prevented _ -> true | _ -> false))
    spp.Ripe.details

let test_table4_ordering () =
  let spp = row "SPP" and safepm = row "SafePM" and mc = row "memcheck" in
  check_bool "SPP beats SafePM" true (spp.Ripe.successful <= safepm.Ripe.successful);
  check_bool "SafePM beats memcheck" true
    (safepm.Ripe.successful < mc.Ripe.successful);
  check_bool "everything catches something" true (mc.Ripe.prevented > 0)

let test_spp_catches_aware_far_safepm_does_not () =
  (* the tag travels with the pointer, so even a layout-aware direct jump
     overflows; SafePM only sees addressability *)
  let spp_far =
    Ripe.run_attack Spp_access.Spp
      { Ripe.technique = Ripe.Far_aware_write; loc = Ripe.Adjacent }
  in
  let safepm_far =
    Ripe.run_attack Spp_access.Safepm
      { Ripe.technique = Ripe.Far_aware_write; loc = Ripe.Adjacent }
  in
  check_bool "SPP catches layout-aware far write" true
    (match spp_far with Ripe.Prevented _ -> true | _ -> false);
  check_bool "SafePM misses layout-aware far write" true
    (safepm_far = Ripe.Successful)

let test_memcheck_misses_naive_far () =
  (* same layout as native, no redzones: the naive jump lands in the
     target's interior *)
  let o =
    Ripe.run_attack Spp_access.Memcheck
      { Ripe.technique = Ripe.Far_naive_word; loc = Ripe.Adjacent }
  in
  check_bool "memcheck misses naive far write" true (o = Ripe.Successful)

let test_safepm_layout_shift_catches_naive () =
  let o =
    Ripe.run_attack Spp_access.Safepm
      { Ripe.technique = Ripe.Far_naive_word; loc = Ripe.Adjacent }
  in
  check_bool "redzone shift catches the naive jump" true
    (match o with Ripe.Prevented _ -> true | _ -> false)

let test_underflow_blind_spot () =
  (* SPP has no lower-bound tag (paper §IV-A): underflows evade it; the
     contiguous walk dies in SafePM's left redzone, but the direct jump
     lands in the earlier object's interior and evades SafePM too *)
  let at t = { Ripe.technique = t; loc = Ripe.Adjacent } in
  check_bool "SPP misses underflow walk" true
    (Ripe.run_attack Spp_access.Spp (at Ripe.Under_seq_word)
     = Ripe.Successful);
  check_bool "SafePM catches underflow walk" true
    (match Ripe.run_attack Spp_access.Safepm (at Ripe.Under_seq_word) with
     | Ripe.Prevented _ -> true
     | _ -> false);
  check_bool "SafePM misses underflow jump" true
    (Ripe.run_attack Spp_access.Safepm (at Ripe.Under_far_word)
     = Ripe.Successful);
  check_bool "memcheck misses underflow jump" true
    (Ripe.run_attack Spp_access.Memcheck (at Ripe.Under_far_word)
     = Ripe.Successful)

let test_determinism () =
  let r1 = Ripe.run_row Spp_access.Spp and r2 = Ripe.run_row Spp_access.Spp in
  check_int "deterministic successful" r1.Ripe.successful r2.Ripe.successful;
  check_int "deterministic prevented" r1.Ripe.prevented r2.Ripe.prevented

let () =
  Alcotest.run "spp_ripe"
    [
      ( "table4",
        [
          Alcotest.test_case "unprotected rows all succeed" `Quick
            test_unprotected_all_succeed;
          Alcotest.test_case "SPP prevents most, blind spots survive" `Quick
            test_spp_prevents_most;
          Alcotest.test_case "ordering SPP <= SafePM < memcheck" `Quick
            test_table4_ordering;
        ] );
      ( "mechanisms",
        [
          Alcotest.test_case "aware far: SPP yes, SafePM no" `Quick
            test_spp_catches_aware_far_safepm_does_not;
          Alcotest.test_case "naive far: memcheck misses" `Quick
            test_memcheck_misses_naive_far;
          Alcotest.test_case "naive far: SafePM catches via shift" `Quick
            test_safepm_layout_shift_catches_naive;
          Alcotest.test_case "underflow blind spot" `Quick
            test_underflow_blind_spot;
          Alcotest.test_case "deterministic" `Quick test_determinism;
        ] );
    ]
