(* Tests for the pmemkv cmap engine: correctness against an oracle on all
   variants, variable-size values, deletion, crash durability, and the
   db_bench driver. *)

open Spp_pmdk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(pool_size = 1 lsl 24) variant =
  Spp_access.create ~pool_size ~name:(Spp_access.variant_name variant) variant

let test_put_get_all_variants () =
  List.iter
    (fun v ->
      let a = mk v in
      let kv = Spp_pmemkv.Cmap.create ~nbuckets:64 a in
      Spp_pmemkv.Cmap.put kv ~key:"alpha" ~value:"1";
      Spp_pmemkv.Cmap.put kv ~key:"beta" ~value:"2";
      Alcotest.(check (option string))
        (Spp_access.variant_name v ^ " get alpha")
        (Some "1") (Spp_pmemkv.Cmap.get kv "alpha");
      Alcotest.(check (option string))
        (Spp_access.variant_name v ^ " get missing")
        None (Spp_pmemkv.Cmap.get kv "gamma");
      check_bool "remove beta" true (Spp_pmemkv.Cmap.remove kv "beta");
      check_bool "remove twice" false (Spp_pmemkv.Cmap.remove kv "beta");
      check_int "count" 1 (Spp_pmemkv.Cmap.count_all kv))
    Spp_access.all_variants

let test_overwrite_same_and_different_size () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
  Spp_pmemkv.Cmap.put kv ~key:"k" ~value:"aaaa";
  Spp_pmemkv.Cmap.put kv ~key:"k" ~value:"bbbb";   (* in-place *)
  Alcotest.(check (option string)) "same-size overwrite" (Some "bbbb")
    (Spp_pmemkv.Cmap.get kv "k");
  Spp_pmemkv.Cmap.put kv ~key:"k" ~value:"cccccccc";   (* realloc path *)
  Alcotest.(check (option string)) "resize overwrite" (Some "cccccccc")
    (Spp_pmemkv.Cmap.get kv "k");
  check_int "single live entry" 1 (Spp_pmemkv.Cmap.count_all kv)

let test_oracle_random_ops () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:32 a in
  let model = Hashtbl.create 64 in
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 2000 do
    let key = Printf.sprintf "key-%d" (Random.State.int st 200) in
    match Random.State.int st 3 with
    | 0 ->
      let value = Printf.sprintf "val-%d" (Random.State.int st 10000) in
      Spp_pmemkv.Cmap.put kv ~key ~value;
      Hashtbl.replace model key value
    | 1 ->
      let expected = Hashtbl.mem model key in
      check_bool "remove agrees" expected (Spp_pmemkv.Cmap.remove kv key);
      Hashtbl.remove model key
    | _ ->
      Alcotest.(check (option string)) "get agrees"
        (Hashtbl.find_opt model key)
        (Spp_pmemkv.Cmap.get kv key)
  done;
  check_int "final count" (Hashtbl.length model) (Spp_pmemkv.Cmap.count_all kv)

let test_crash_durability () =
  let a = mk Spp_access.Pmdk in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  Spp_pmemkv.Cmap.put kv ~key:"durable" ~value:"yes";
  Spp_pmemkv.Cmap.put kv ~key:"gone-after-remove" ~value:"x";
  check_bool "removed" true (Spp_pmemkv.Cmap.remove kv "gone-after-remove");
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  Alcotest.(check (option string)) "committed put durable" (Some "yes")
    (Spp_pmemkv.Cmap.get kv "durable");
  Alcotest.(check (option string)) "committed remove durable" None
    (Spp_pmemkv.Cmap.get kv "gone-after-remove")

let test_large_values () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
  let v = String.make 1024 'z' in
  Spp_pmemkv.Cmap.put kv ~key:"big" ~value:v;
  Alcotest.(check (option string)) "1 KiB value" (Some v)
    (Spp_pmemkv.Cmap.get kv "big")

let test_db_bench_runs () =
  let a = mk Spp_access.Pmdk in
  let kv = Spp_pmemkv.Cmap.create a in
  Spp_pmemkv.Db_bench.preload kv ~keys:200;
  List.iter
    (fun w ->
      let r =
        Spp_pmemkv.Db_bench.run kv ~threads:2 ~ops_per_thread:100 ~universe:200 w
      in
      check_int (Spp_pmemkv.Db_bench.workload_name w ^ " ops") 200
        r.Spp_pmemkv.Db_bench.total_ops;
      check_bool "positive throughput" true
        (r.Spp_pmemkv.Db_bench.throughput > 0.))
    Spp_pmemkv.Db_bench.all_workloads

let () =
  Alcotest.run "spp_pmemkv"
    [
      ( "cmap",
        [
          Alcotest.test_case "put/get/remove on all variants" `Quick
            test_put_get_all_variants;
          Alcotest.test_case "overwrite same/diff size" `Quick
            test_overwrite_same_and_different_size;
          Alcotest.test_case "oracle random ops" `Quick test_oracle_random_ops;
          Alcotest.test_case "crash durability" `Quick test_crash_durability;
          Alcotest.test_case "1 KiB values" `Quick test_large_values;
        ] );
      ( "db_bench",
        [ Alcotest.test_case "all workloads run" `Quick test_db_bench_runs ] );
    ]
