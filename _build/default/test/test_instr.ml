(* Tests for the compiler passes over the miniature IR: instrumentation
   correctness (overflows fault, legal code runs), pointer tracking
   (volatile pruning, direct variants), LTO external masking and
   parameter classification, and bound-check preemption. *)

open Spp_instr
open Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_fault f =
  match f () with
  | _ -> Alcotest.fail "expected a simulated fault"
  | exception Spp_sim.Fault.Fault _ -> ()

let compile ?options p = Passes.compile ?options p

let no_opt = { Passes.tracking = false; preemption = false }
let trk_only = { Passes.tracking = true; preemption = false }

(* A legal program: allocate a PM object, write then read back. *)
let legal_program =
  {
    main = "main";
    funcs =
      [
        {
          fname = "main";
          params = [];
          nregs = 8;
          body =
            [
              Pm_alloc { obj = 0; size = 64 };
              Pm_direct { dst = 0; obj = 0 };
              Const { dst = 1; value = 42 };
              Store { ptr = 0; value = 1; width = 8 };
              Gep { dst = 0; src = 0; off = 8 };
              Store { ptr = 0; value = 1; width = 8 };
              Load { dst = 2; ptr = 0; width = 8 };
            ];
        };
      ];
  }

(* Same program but the second store is out of bounds. *)
let overflow_program =
  {
    main = "main";
    funcs =
      [
        {
          fname = "main";
          params = [];
          nregs = 8;
          body =
            [
              Pm_alloc { obj = 0; size = 64 };
              Pm_direct { dst = 0; obj = 0 };
              Const { dst = 1; value = 42 };
              Gep { dst = 0; src = 0; off = 64 };
              Store { ptr = 0; value = 1; width = 8 };
            ];
        };
      ];
  }

let test_instrumented_legal_runs () =
  let p, stats = compile legal_program in
  let m = Interp.make_machine () in
  Interp.run_program m p;
  check_bool "hooks were executed" true (m.Interp.hook_execs > 0);
  check_bool "hooks were inserted" true (stats.Passes.inserted > 0)

let test_instrumented_overflow_faults () =
  let p, _ = compile overflow_program in
  let m = Interp.make_machine () in
  expect_fault (fun () -> Interp.run_program m p)

let test_uninstrumented_overflow_silent () =
  (* the same overflow on a native pool, without instrumentation *)
  let m = Interp.make_machine ~spp:false () in
  Interp.run_program m overflow_program;
  check_int "no hooks" 0 m.Interp.hook_execs

let test_tracking_prunes_volatile () =
  let prog =
    {
      main = "main";
      funcs =
        [
          {
            fname = "main";
            params = [];
            nregs = 8;
            body =
              [
                Vheap_alloc { dst = 0; size = 64 };
                Const { dst = 1; value = 7 };
                Store { ptr = 0; value = 1; width = 8 };
                Gep { dst = 0; src = 0; off = 8 };
                Store { ptr = 0; value = 1; width = 8 };
                Load { dst = 2; ptr = 0; width = 8 };
              ];
          };
        ];
    }
  in
  let p_naive, s_naive = compile ~options:no_opt prog in
  let p_tracked, s_tracked = compile ~options:trk_only prog in
  check_bool "naive instruments volatile code" true (program_hooks p_naive > 0);
  check_int "tracking prunes every volatile hook" 0 (program_hooks p_tracked);
  check_bool "pruned sites counted" true
    (s_tracked.Passes.pruned_volatile > s_naive.Passes.pruned_volatile);
  (* volatile program must still run correctly *)
  let m = Interp.make_machine () in
  Interp.run_program m p_tracked;
  check_int "no hooks executed" 0 m.Interp.hook_execs

let test_tracking_uses_direct_variants () =
  let _, s_naive = compile ~options:no_opt legal_program in
  let _, s_tracked = compile ~options:trk_only legal_program in
  check_int "naive uses no direct hooks" 0 s_naive.Passes.direct;
  check_bool "tracking uses direct hooks for pmemobj_direct pointers" true
    (s_tracked.Passes.direct > 0);
  (* the tracked program still catches the overflow *)
  let p, _ = compile ~options:trk_only overflow_program in
  let m = Interp.make_machine () in
  expect_fault (fun () -> Interp.run_program m p)

let external_call_program =
  {
    main = "main";
    funcs =
      [
        {
          fname = "main";
          params = [];
          nregs = 8;
          body =
            [
              Pm_alloc { obj = 0; size = 64 };
              Pm_direct { dst = 0; obj = 0 };
              Call_external { args = [ 0 ] };
            ];
        };
      ];
  }

let test_lto_masks_external_calls () =
  (* without masking, the external stub dereferences a tagged pointer and
     crashes; the LTO pass must prevent that *)
  let p, _ = compile external_call_program in
  let m = Interp.make_machine () in
  Interp.run_program m p;
  check_int "external called" 1 m.Interp.external_calls

let test_unmasked_external_crashes () =
  (* drop the masking by executing the uninstrumented program on an SPP
     machine: the tagged pointer reaches the external stub raw *)
  let m = Interp.make_machine () in
  expect_fault (fun () -> Interp.run_program m external_call_program)

let callee_program =
  (* callee dereferences its parameter; all call sites pass persistent
     pointers, so LTO can classify the parameter *)
  {
    main = "main";
    funcs =
      [
        {
          fname = "main";
          params = [];
          nregs = 8;
          body =
            [
              Pm_alloc { obj = 0; size = 64 };
              Pm_direct { dst = 0; obj = 0 };
              Call { fn = "reader"; args = [ 0 ] };
              Call { fn = "reader"; args = [ 0 ] };
            ];
        };
        {
          fname = "reader";
          params = [ 0 ];
          nregs = 4;
          body = [ Load { dst = 1; ptr = 0; width = 8 } ];
        };
      ];
  }

let test_lto_classifies_params () =
  let _, s_tracked = compile ~options:trk_only callee_program in
  (* the callee's load should use the direct variant *)
  check_bool "callee parameter classified persistent" true
    (s_tracked.Passes.direct >= 1);
  let p, _ = compile ~options:trk_only callee_program in
  let m = Interp.make_machine () in
  Interp.run_program m p;
  check_bool "ran" true (m.Interp.loads >= 2)

let loop_program ~oob =
  let count = 16 in
  let size = if oob then 8 * (count - 1) else 8 * count in
  {
    main = "main";
    funcs =
      [
        {
          fname = "main";
          params = [];
          nregs = 8;
          body =
            [
              Pm_alloc { obj = 0; size };
              Pm_direct { dst = 0; obj = 0 };
              Gep { dst = 0; src = 0; off = -8 };
              Loop
                {
                  count;
                  body =
                    [
                      Gep { dst = 0; src = 0; off = 8 };
                      Load { dst = 1; ptr = 0; width = 8 };
                    ];
                };
            ];
        };
      ];
  }

let test_preemption_reduces_hook_executions () =
  let without, _ = compile ~options:trk_only (loop_program ~oob:false) in
  let with_, s = compile ~options:Passes.default_options (loop_program ~oob:false) in
  let m1 = Interp.make_machine () in
  Interp.run_program m1 without;
  let m2 = Interp.make_machine () in
  Interp.run_program m2 with_;
  check_bool "preemption accounted" true (s.Passes.preempted > 0);
  check_bool
    (Printf.sprintf "fewer hook executions (%d -> %d)" m1.Interp.hook_execs
       m2.Interp.hook_execs)
    true
    (m2.Interp.hook_execs < m1.Interp.hook_execs)

let test_preemption_still_catches_overflow () =
  (* the hoisted scout must fault in the pre-header *)
  let p, _ = compile ~options:Passes.default_options (loop_program ~oob:true) in
  let m = Interp.make_machine () in
  expect_fault (fun () -> Interp.run_program m p)

let test_preempted_loop_same_semantics () =
  (* write then read back through a preempted loop *)
  let prog =
    {
      main = "main";
      funcs =
        [
          {
            fname = "main";
            params = [];
            nregs = 8;
            body =
              [
                Pm_alloc { obj = 0; size = 128 };
                Pm_direct { dst = 0; obj = 0 };
                Const { dst = 1; value = 9 };
                Gep { dst = 0; src = 0; off = -8 };
                Loop
                  {
                    count = 16;
                    body =
                      [
                        Gep { dst = 0; src = 0; off = 8 };
                        Store { ptr = 0; value = 1; width = 8 };
                      ];
                  };
              ];
          };
        ];
    }
  in
  let p, _ = compile ~options:Passes.default_options prog in
  let m = Interp.make_machine () in
  Interp.run_program m p;
  (* all 16 slots must hold 9 *)
  let oid = Hashtbl.find m.Interp.objs 0 in
  let base = Spp_pmdk.Pool.addr_of_off m.Interp.pool oid.Spp_pmdk.Oid.off in
  for i = 0 to 15 do
    check_int (Printf.sprintf "slot %d" i) 9
      (Spp_sim.Space.load_word m.Interp.space (base + (8 * i)))
  done

(* straight-line block preemption (the §IV-E example): consecutive
   constant-stride accesses collapse into one scout check *)
let block_program ~oob =
  let size = if oob then 24 else 64 in
  {
    main = "main";
    funcs =
      [
        {
          fname = "main";
          params = [];
          nregs = 8;
          body =
            [
              Pm_alloc { obj = 0; size };
              Pm_direct { dst = 0; obj = 0 };
              Gep { dst = 0; src = 0; off = 8 };
              Load { dst = 1; ptr = 0; width = 8 };
              Gep { dst = 0; src = 0; off = 8 };
              Load { dst = 2; ptr = 0; width = 8 };
              Gep { dst = 0; src = 0; off = 8 };
              Load { dst = 3; ptr = 0; width = 8 };
            ];
        };
      ];
  }

let test_block_preemption_reduces_hooks () =
  let without, _ = compile ~options:trk_only (block_program ~oob:false) in
  let with_, s =
    compile ~options:Passes.default_options (block_program ~oob:false)
  in
  let m1 = Interp.make_machine () in
  Interp.run_program m1 without;
  let m2 = Interp.make_machine () in
  Interp.run_program m2 with_;
  check_bool "block preemption accounted" true (s.Passes.preempted > 0);
  check_bool
    (Printf.sprintf "fewer hook executions (%d -> %d)" m1.Interp.hook_execs
       m2.Interp.hook_execs)
    true
    (m2.Interp.hook_execs < m1.Interp.hook_execs)

let test_block_preemption_catches_overflow () =
  (* 24-byte object: the third access (offset 24) is out of bounds; the
     scout's dummy load must fault before any access *)
  let p, _ = compile ~options:Passes.default_options (block_program ~oob:true) in
  let m = Interp.make_machine () in
  expect_fault (fun () -> Interp.run_program m p)

let test_block_preemption_semantics () =
  (* values read through the preempted block equal the plain ones *)
  let p, _ = compile ~options:Passes.default_options (block_program ~oob:false) in
  let m = Interp.make_machine () in
  let oid_setup () =
    Interp.run_program m
      { main = "main";
        funcs =
          [ { fname = "main"; params = []; nregs = 4;
              body = [ Pm_alloc { obj = 9; size = 8 } ] } ] }
  in
  ignore oid_setup;
  Interp.run_program m p

let () =
  Alcotest.run "spp_instr"
    [
      ( "transform",
        [
          Alcotest.test_case "legal program runs instrumented" `Quick
            test_instrumented_legal_runs;
          Alcotest.test_case "overflow faults when instrumented" `Quick
            test_instrumented_overflow_faults;
          Alcotest.test_case "overflow silent uninstrumented" `Quick
            test_uninstrumented_overflow_silent;
        ] );
      ( "tracking",
        [
          Alcotest.test_case "volatile hooks pruned" `Quick
            test_tracking_prunes_volatile;
          Alcotest.test_case "direct variants used" `Quick
            test_tracking_uses_direct_variants;
        ] );
      ( "lto",
        [
          Alcotest.test_case "external calls masked" `Quick
            test_lto_masks_external_calls;
          Alcotest.test_case "unmasked external crashes" `Quick
            test_unmasked_external_crashes;
          Alcotest.test_case "parameters classified from call sites" `Quick
            test_lto_classifies_params;
        ] );
      ( "preemption",
        [
          Alcotest.test_case "fewer hook executions" `Quick
            test_preemption_reduces_hook_executions;
          Alcotest.test_case "overflow still caught" `Quick
            test_preemption_still_catches_overflow;
          Alcotest.test_case "semantics preserved" `Quick
            test_preempted_loop_same_semantics;
          Alcotest.test_case "block preemption reduces hooks" `Quick
            test_block_preemption_reduces_hooks;
          Alcotest.test_case "block preemption catches overflow" `Quick
            test_block_preemption_catches_overflow;
          Alcotest.test_case "block preemption semantics" `Quick
            test_block_preemption_semantics;
        ] );
    ]
