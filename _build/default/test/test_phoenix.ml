(* Tests for the Phoenix PM port: every app computes the same result on
   every variant (instrumentation must not change semantics), and the
   string_match off-by-one is detected exactly by the checkers that
   should see it. *)

let check_int = Alcotest.(check int)

let mk ?(tag_bits = 31) variant =
  Spp_access.create ~tag_bits ~pool_size:(1 lsl 24)
    ~name:(Spp_access.variant_name variant) variant

let test_app_agrees_across_variants (app : Spp_phoenix.Phx_apps.app) () =
  let scale = max 16 (app.Spp_phoenix.Phx_apps.default_scale / 20) in
  let reference =
    app.Spp_phoenix.Phx_apps.run (mk Spp_access.Pmdk) ~scale
  in
  List.iter
    (fun v ->
      check_int
        (Printf.sprintf "%s on %s" app.Spp_phoenix.Phx_apps.app_name
           (Spp_access.variant_name v))
        reference
        (app.Spp_phoenix.Phx_apps.run (mk v) ~scale))
    [ Spp_access.Spp; Spp_access.Safepm; Spp_access.Memcheck ]

let test_string_match_bug_detected_by_spp () =
  let a = mk Spp_access.Spp in
  match
    Spp_access.run_guarded (fun () ->
      ignore (Spp_phoenix.Phx_apps.string_match ~buggy:true a ~scale:4096))
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SPP must detect the off-by-one read"

let test_string_match_bug_silent_on_native () =
  let a = mk Spp_access.Pmdk in
  match
    Spp_access.run_guarded (fun () ->
      ignore (Spp_phoenix.Phx_apps.string_match ~buggy:true a ~scale:4096))
  with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "native should read slack silently: %s" r

let test_string_match_bug_detected_by_safepm () =
  (* the paper verified the same bug with ASan on the volatile build *)
  let a = mk Spp_access.Safepm in
  match
    Spp_access.run_guarded (fun () ->
      ignore (Spp_phoenix.Phx_apps.string_match ~buggy:true a ~scale:4096))
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SafePM must detect the off-by-one read"

let test_fixed_string_match_clean () =
  let a = mk Spp_access.Spp in
  let n = Spp_phoenix.Phx_apps.string_match ~buggy:false a ~scale:4096 in
  Alcotest.(check bool) "found the planted keys" true (n >= 3)

let () =
  let agree_cases =
    List.map
      (fun app ->
        Alcotest.test_case
          (app.Spp_phoenix.Phx_apps.app_name ^ " agrees across variants")
          `Quick
          (test_app_agrees_across_variants app))
      Spp_phoenix.Phx_apps.apps
  in
  Alcotest.run "spp_phoenix"
    [
      ("agreement", agree_cases);
      ( "string_match bug",
        [
          Alcotest.test_case "detected by SPP" `Quick
            test_string_match_bug_detected_by_spp;
          Alcotest.test_case "silent on native" `Quick
            test_string_match_bug_silent_on_native;
          Alcotest.test_case "detected by SafePM" `Quick
            test_string_match_bug_detected_by_safepm;
          Alcotest.test_case "fixed version clean" `Quick
            test_fixed_string_match_clean;
        ] );
    ]
