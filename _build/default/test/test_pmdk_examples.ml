(* Tests for the libpmemobj example programs (paper §VI-D): they must run
   clean under SPP with arbitrary inputs, the array example's unchecked
   realloc must be detected, and state must survive crashes. *)

open Spp_pmdk
open Spp_pmdk_examples

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(pool_size = 1 lsl 20) variant =
  Spp_access.create ~pool_size ~name:(Spp_access.variant_name variant) variant

(* array *)

let test_array_basic () =
  List.iter
    (fun v ->
      let a = mk v in
      let arr = Pm_array.create a ~size:10 in
      for i = 0 to 9 do
        Pm_array.set arr i (i * i)
      done;
      check_int "len" 10 (Pm_array.length arr);
      check_int "elt" 49 (Pm_array.get arr 7);
      Pm_array.resize arr 20;
      check_int "resized len" 20 (Pm_array.length arr);
      check_int "old data preserved" 81 (Pm_array.get arr 9);
      check_int "new data zeroed" 0 (Pm_array.get arr 15))
    [ Spp_access.Pmdk; Spp_access.Spp; Spp_access.Safepm ]

let test_array_bug_detected_by_spp () =
  (* pool too small for the grow: the unchecked realloc overflows *)
  let a = mk ~pool_size:(1 lsl 16) Spp_access.Spp in
  let arr = Pm_array.create ~check_realloc:false a ~size:16 in
  match
    Spp_access.run_guarded (fun () ->
      Pm_array.resize arr (Pool.size a.Spp_access.pool))
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SPP must detect the array realloc bug"

let test_array_bug_silent_on_native () =
  let a = mk ~pool_size:(1 lsl 16) Spp_access.Pmdk in
  let arr = Pm_array.create ~check_realloc:false a ~size:16 in
  match
    Spp_access.run_guarded (fun () -> Pm_array.resize arr 64)
  with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "native should be silent: %s" r

let test_array_fixed_raises () =
  let a = mk ~pool_size:(1 lsl 16) Spp_access.Spp in
  let arr = Pm_array.create ~check_realloc:true a ~size:16 in
  Alcotest.check_raises "failure propagated" Heap.Out_of_pm
    (fun () -> Pm_array.resize arr (Pool.size a.Spp_access.pool))

(* queue *)

let test_queue_fifo_order () =
  let a = mk Spp_access.Spp in
  let q = Pm_queue.create a ~capacity:8 in
  for i = 1 to 8 do
    Pm_queue.enqueue q i
  done;
  check_bool "full" true (Pm_queue.is_full q);
  Alcotest.check_raises "overflow rejected" Pm_queue.Full
    (fun () -> Pm_queue.enqueue q 99);
  for i = 1 to 8 do
    check_int "fifo order" i (Pm_queue.dequeue q)
  done;
  Alcotest.check_raises "underflow rejected" Pm_queue.Empty
    (fun () -> ignore (Pm_queue.dequeue q))

let test_queue_wraparound () =
  let a = mk Spp_access.Spp in
  let q = Pm_queue.create a ~capacity:4 in
  for round = 0 to 9 do
    Pm_queue.enqueue q round;
    Pm_queue.enqueue q (round + 100);
    check_int "wrap" round (Pm_queue.dequeue q);
    check_int "wrap2" (round + 100) (Pm_queue.dequeue q)
  done

let test_queue_crash_atomic () =
  let a = mk Spp_access.Pmdk in
  let q = Pm_queue.create a ~capacity:8 in
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  Pm_queue.enqueue q 42;
  Pm_queue.enqueue q 43;
  ignore (Pm_queue.dequeue q);
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  check_int "count durable" 1 (Pm_queue.count q);
  check_int "element durable" 43 (Pm_queue.dequeue q)

(* fifo list *)

let test_fifo_order_and_free () =
  let a = mk Spp_access.Spp in
  let f = Pm_fifo.create a in
  for i = 1 to 32 do
    Pm_fifo.push f i
  done;
  check_int "length" 32 (Pm_fifo.length f);
  for i = 1 to 32 do
    check_int "order" i (Pm_fifo.pop f)
  done;
  check_bool "empty" true (Pm_fifo.is_empty f);
  (* all nodes freed: only the descriptor remains *)
  check_int "no leaked nodes" 1
    (Pool.heap_stats a.Spp_access.pool).Heap.allocated_blocks

let test_fifo_crash_mid_stream () =
  let a = mk Spp_access.Pmdk in
  let f = Pm_fifo.create a in
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  for i = 1 to 5 do
    Pm_fifo.push f i
  done;
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  check_int "length durable" 5 (Pm_fifo.length f);
  check_int "head durable" 1 (Pm_fifo.pop f)

(* Monte Carlo examples *)

let test_pi_estimate_converges () =
  let a = mk Spp_access.Spp in
  let mc = Pm_montecarlo.create a ~seed:7 in
  Pm_montecarlo.run_batch mc ~trials:20_000 ~hit:Pm_montecarlo.pi_hit;
  let pi = Pm_montecarlo.pi_estimate mc in
  check_bool (Printf.sprintf "pi ~ %.3f" pi) true (pi > 3.05 && pi < 3.25)

let test_buffon_estimate_converges () =
  let a = mk Spp_access.Spp in
  let mc = Pm_montecarlo.create a ~seed:11 in
  Pm_montecarlo.run_batch mc ~trials:20_000 ~hit:Pm_montecarlo.buffon_hit;
  let pi = Pm_montecarlo.buffon_pi_estimate mc in
  check_bool (Printf.sprintf "buffon pi ~ %.3f" pi) true (pi > 2.9 && pi < 3.4)

let test_montecarlo_resumes_after_crash () =
  (* an interrupted batch rolls back; completed batches persist *)
  let a = mk Spp_access.Pmdk in
  let mc = Pm_montecarlo.create a ~seed:3 in
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  Pm_montecarlo.run_batch mc ~trials:1000 ~hit:Pm_montecarlo.pi_hit;
  let t1 = Pm_montecarlo.trials mc in
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  check_int "trials durable" t1 (Pm_montecarlo.trials mc);
  Pm_montecarlo.run_batch mc ~trials:1000 ~hit:Pm_montecarlo.pi_hit;
  check_int "resumed" (t1 + 1000) (Pm_montecarlo.trials mc)

(* slab allocator *)

let test_slab_alloc_free_cycle () =
  let a = mk Spp_access.Spp in
  let slab = Pm_slab.create a ~slot_size:64 ~nslots:100 in
  let slots = List.init 100 (fun _ -> Pm_slab.alloc_slot slab) in
  check_int "all distinct" 100
    (List.length (List.sort_uniq compare slots));
  check_int "live" 100 (Pm_slab.live_slots slab);
  Alcotest.check_raises "full" Pm_slab.Slab_full
    (fun () -> ignore (Pm_slab.alloc_slot slab));
  List.iteri (fun i s -> if i mod 2 = 0 then Pm_slab.free_slot slab s) slots;
  check_int "half live" 50 (Pm_slab.live_slots slab);
  (* freed slots are reusable *)
  let again = List.init 50 (fun _ -> Pm_slab.alloc_slot slab) in
  check_int "refilled" 100 (Pm_slab.live_slots slab);
  ignore again

let test_slab_slot_isolation_under_spp () =
  (* writing one slot's full extent never touches the next slot, and a
     write past the whole slab object faults *)
  let a = mk Spp_access.Spp in
  let slab = Pm_slab.create a ~slot_size:32 ~nslots:4 in
  let s0 = Pm_slab.alloc_slot slab in
  let s1 = Pm_slab.alloc_slot slab in
  a.Spp_access.memset (Pm_slab.slot_ptr slab s0) 'A' 32;
  check_int "neighbour untouched" 0
    (a.Spp_access.load_u8 (Pm_slab.slot_ptr slab s1));
  match
    Spp_access.run_guarded (fun () ->
      a.Spp_access.memset (Pm_slab.slot_ptr slab 3) 'B' 64)
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "write past the slab must fault"

let test_slab_double_free () =
  let a = mk Spp_access.Pmdk in
  let slab = Pm_slab.create a ~slot_size:16 ~nslots:8 in
  let s = Pm_slab.alloc_slot slab in
  Pm_slab.free_slot slab s;
  Alcotest.check_raises "double free"
    (Invalid_argument "Pm_slab.free_slot: not allocated")
    (fun () -> Pm_slab.free_slot slab s)

(* determinism across variants (the "arbitrary inputs, no errors" of
   §VI-D) *)

let prop_examples_variant_agnostic =
  QCheck.Test.make ~name:"queue+fifo behave identically on all variants"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 1 40) (pair bool (int_bound 1000)))
    (fun ops ->
      let run variant =
        let a = mk variant in
        let q = Pm_queue.create a ~capacity:16 in
        let f = Pm_fifo.create a in
        let log = ref [] in
        List.iter
          (fun (push, v) ->
            if push then begin
              (try Pm_queue.enqueue q v with Pm_queue.Full -> ());
              Pm_fifo.push f v
            end
            else begin
              (try log := Pm_queue.dequeue q :: !log with Pm_queue.Empty -> ());
              try log := Pm_fifo.pop f :: !log with Pm_fifo.Empty -> ()
            end)
          ops;
        (!log, Pm_queue.count q, Pm_fifo.length f)
      in
      run Spp_access.Pmdk = run Spp_access.Spp
      && run Spp_access.Spp = run Spp_access.Safepm)

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_pmdk_examples"
    [
      ( "array",
        [
          Alcotest.test_case "basic + resize" `Quick test_array_basic;
          Alcotest.test_case "realloc bug detected by SPP" `Quick
            test_array_bug_detected_by_spp;
          Alcotest.test_case "realloc bug silent on native" `Quick
            test_array_bug_silent_on_native;
          Alcotest.test_case "fixed variant raises" `Quick
            test_array_fixed_raises;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo order + bounds" `Quick test_queue_fifo_order;
          Alcotest.test_case "wraparound" `Quick test_queue_wraparound;
          Alcotest.test_case "crash atomicity" `Quick test_queue_crash_atomic;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order and node reclamation" `Quick
            test_fifo_order_and_free;
          Alcotest.test_case "crash mid stream" `Quick test_fifo_crash_mid_stream;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "pi converges" `Quick test_pi_estimate_converges;
          Alcotest.test_case "buffon converges" `Quick
            test_buffon_estimate_converges;
          Alcotest.test_case "resumes after crash" `Quick
            test_montecarlo_resumes_after_crash;
        ] );
      ( "slab",
        [
          Alcotest.test_case "alloc/free cycle" `Quick test_slab_alloc_free_cycle;
          Alcotest.test_case "slot isolation under SPP" `Quick
            test_slab_slot_isolation_under_spp;
          Alcotest.test_case "double free" `Quick test_slab_double_free;
        ] );
      ("properties", [ qt prop_examples_variant_agnostic ]);
    ]
