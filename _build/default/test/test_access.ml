(* Tests for the access layer and the SafePM / memcheck baselines: each
   variant must behave identically on legal programs and differ exactly in
   which illegal accesses it catches. *)

open Spp_pmdk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk variant =
  Spp_access.create ~pool_size:(1 lsl 20)
    ~name:(Spp_access.variant_name variant) variant

let each_variant f =
  List.iter (fun v -> f (mk v)) Spp_access.all_variants

(* Legal programs behave identically on every variant. *)

let test_legal_rw_all_variants () =
  each_variant (fun a ->
    let oid = a.Spp_access.palloc 64 in
    let p = a.Spp_access.direct oid in
    a.Spp_access.store_word p 0xABCD;
    a.Spp_access.store_word (a.Spp_access.gep p 8) 0x1234;
    check_int (a.Spp_access.name ^ " word0") 0xABCD (a.Spp_access.load_word p);
    check_int (a.Spp_access.name ^ " word1") 0x1234
      (a.Spp_access.load_word (a.Spp_access.gep p 8));
    a.Spp_access.pfree oid)

let test_legal_intrinsics_all_variants () =
  each_variant (fun a ->
    let x = a.Spp_access.palloc 32 and y = a.Spp_access.palloc 32 in
    let px = a.Spp_access.direct x and py = a.Spp_access.direct y in
    a.Spp_access.write_string px "hello, world\000";
    a.Spp_access.memcpy ~dst:py ~src:px ~len:13;
    check_int (a.Spp_access.name ^ " strlen") 12 (a.Spp_access.strlen py);
    check_int (a.Spp_access.name ^ " strcmp") 0 (a.Spp_access.strcmp px py);
    a.Spp_access.memset px 'z' 32;
    check_int (a.Spp_access.name ^ " memset") (Char.code 'z')
      (a.Spp_access.load_u8 px))

let test_legal_oid_slots_all_variants () =
  each_variant (fun a ->
    let parent = a.Spp_access.palloc 64 in
    let child = a.Spp_access.palloc 48 in
    let pp = a.Spp_access.direct parent in
    a.Spp_access.store_oid_at pp child;
    let back = a.Spp_access.load_oid_at pp in
    check_bool (a.Spp_access.name ^ " oid roundtrip") true (Oid.equal child back))

(* Overflow detection differs per variant. *)

let test_contiguous_overflow_detection () =
  let outcome v =
    let a = mk v in
    let oid = a.Spp_access.palloc 64 in
    let p = a.Spp_access.direct oid in
    Spp_access.run_guarded (fun () ->
      a.Spp_access.store_word (a.Spp_access.gep p 64) 0xBAD)
  in
  (match outcome Spp_access.Pmdk with
   | Spp_access.Ok_completed -> ()
   | Prevented r -> Alcotest.failf "native pmdk should not detect: %s" r);
  (match outcome Spp_access.Spp with
   | Spp_access.Prevented _ -> ()
   | Ok_completed -> Alcotest.fail "SPP must detect one-past overflow");
  (match outcome Spp_access.Safepm with
   | Spp_access.Prevented _ -> ()
   | Ok_completed -> Alcotest.fail "SafePM must detect one-past overflow")

let test_memcheck_misses_slack_overflow () =
  (* A 33-byte request lives in a 128-byte class: a write at offset 36
     is an overflow into the slack, which memcheck (knowing only the
     usable size) misses, while SPP catches it. *)
  let run v =
    let a = mk v in
    let oid = a.Spp_access.palloc 33 in
    let p = a.Spp_access.direct oid in
    Spp_access.run_guarded (fun () ->
      a.Spp_access.store_u8 (a.Spp_access.gep p 36) 1)
  in
  (match run Spp_access.Memcheck with
   | Spp_access.Ok_completed -> ()
   | Prevented r -> Alcotest.failf "memcheck should miss slack overflow: %s" r);
  (match run Spp_access.Spp with
   | Spp_access.Prevented _ -> ()
   | Ok_completed -> Alcotest.fail "SPP must catch slack overflow")

let test_safepm_redzone_and_freed () =
  let a = mk Spp_access.Safepm in
  let oid = a.Spp_access.palloc 64 in
  let p = a.Spp_access.direct oid in
  (* write into the redzone *)
  (match Spp_access.run_guarded (fun () ->
     a.Spp_access.store_u8 (a.Spp_access.gep p 70) 1)
   with
   | Spp_access.Prevented _ -> ()
   | Ok_completed -> Alcotest.fail "SafePM must catch redzone write");
  (* use after free *)
  a.Spp_access.pfree oid;
  match Spp_access.run_guarded (fun () -> ignore (a.Spp_access.load_word p)) with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SafePM must catch use-after-free"

let test_spp_memcpy_overflow_detected () =
  let a = mk Spp_access.Spp in
  let src = a.Spp_access.palloc 128 and dst = a.Spp_access.palloc 64 in
  let psrc = a.Spp_access.direct src and pdst = a.Spp_access.direct dst in
  match Spp_access.run_guarded (fun () ->
    a.Spp_access.memcpy ~dst:pdst ~src:psrc ~len:128)
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SPP wrapper must catch memcpy overflow"

let test_spp_external_call_unprotected () =
  (* Masking for an external callee removes all protection — the paper's
     documented limitation (§IV-G). *)
  let a = mk Spp_access.Spp in
  let oid = a.Spp_access.palloc 16 in
  let p = a.Spp_access.direct oid in
  let oob = a.Spp_access.gep p 20 in
  let raw = a.Spp_access.for_external oob in
  (* the "external library" writes through the raw pointer: no fault *)
  match Spp_access.run_guarded (fun () ->
    Spp_sim.Space.store_u8 a.Spp_access.space raw 7)
  with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "external write should succeed: %s" r

let test_spp_ptr_to_int_roundtrip_loses_tag () =
  let a = mk Spp_access.Spp in
  let oid = a.Spp_access.palloc 16 in
  let p = a.Spp_access.direct oid in
  let i = a.Spp_access.ptr_to_int p in
  (* int-to-pointer: the integer has no tag; accesses through it are
     unprotected (paper §IV-G) *)
  check_bool "integer is the plain address" true
    (i = Spp_core.Encoding.address Spp_core.Config.default p);
  match Spp_access.run_guarded (fun () ->
    Spp_sim.Space.store_u8 a.Spp_access.space (i + 20) 7)
  with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "int2ptr write should succeed: %s" r

let test_safepm_space_overhead_visible () =
  (* SafePM burns pool space on shadow + redzones; SPP only pays the oid
     size field. *)
  let sp = mk Spp_access.Safepm in
  let spp = mk Spp_access.Spp in
  for _ = 1 to 10 do
    ignore (sp.Spp_access.palloc 64);
    ignore (spp.Spp_access.palloc 64)
  done;
  let s1 = Pool.heap_stats sp.Spp_access.pool in
  let s2 = Pool.heap_stats spp.Spp_access.pool in
  check_bool "safepm uses more heap" true
    (s1.Heap.allocated_bytes > s2.Heap.allocated_bytes)

let () =
  Alcotest.run "spp_access"
    [
      ( "legal",
        [
          Alcotest.test_case "rw on all variants" `Quick
            test_legal_rw_all_variants;
          Alcotest.test_case "intrinsics on all variants" `Quick
            test_legal_intrinsics_all_variants;
          Alcotest.test_case "oid slots on all variants" `Quick
            test_legal_oid_slots_all_variants;
        ] );
      ( "detection",
        [
          Alcotest.test_case "contiguous overflow" `Quick
            test_contiguous_overflow_detection;
          Alcotest.test_case "memcheck misses slack overflow" `Quick
            test_memcheck_misses_slack_overflow;
          Alcotest.test_case "safepm redzone + UAF" `Quick
            test_safepm_redzone_and_freed;
          Alcotest.test_case "spp memcpy overflow" `Quick
            test_spp_memcpy_overflow_detected;
          Alcotest.test_case "spp external call unprotected" `Quick
            test_spp_external_call_unprotected;
          Alcotest.test_case "spp int2ptr loses tag" `Quick
            test_spp_ptr_to_int_roundtrip_loses_tag;
        ] );
      ( "space",
        [
          Alcotest.test_case "safepm space overhead visible" `Quick
            test_safepm_space_overhead_visible;
        ] );
    ]
