(* Tests for the typed persistent-pointer layer (the libpmemobj-cpp
   analogue): typed structs work identically on native and SPP pools,
   layouts account for the mode-dependent PMEMoid footprint, and typed
   code inherits SPP's protection. *)

open Spp_pptr

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk variant =
  Spp_access.create ~pool_size:(1 lsl 20)
    ~name:(Spp_access.variant_name variant) variant

(* A typed linked-list node: { value : int; name : string(16); next } *)
type node

let node_layout a :
  node layout * (node, int) field * (node, string) field
  * (node, node ptr) field =
  let l = layout a in
  let value = word l in
  let name = fixed_string l ~len:16 in
  let next = pptr l in
  (seal l, value, name, next)

let test_typed_struct_roundtrip () =
  List.iter
    (fun variant ->
      let a = mk variant in
      let l, value, name, next = node_layout a in
      let n1 = alloc l in
      let n2 = alloc l in
      set l n1 value 42;
      set l n1 name "head";
      set l n1 next n2;
      set l n2 value 43;
      set l n2 name "tail";
      set l n2 next null;
      check_int (a.Spp_access.name ^ " value") 42 (get l n1 value);
      Alcotest.(check string) (a.Spp_access.name ^ " name") "head"
        (get l n1 name);
      let n2' = get l n1 next in
      check_bool "link" true (equal n2 n2');
      check_int "via link" 43 (get l n2' value);
      check_bool "null end" true (is_null (get l n2' next)))
    [ Spp_access.Pmdk; Spp_access.Spp; Spp_access.Safepm ]

let test_layout_size_mode_dependent () =
  (* the oid field makes the same declaration 8 bytes bigger on SPP pools,
     like sizeof() with the extended PMEMoid (paper §IV-F) *)
  let native = mk Spp_access.Pmdk and spp = mk Spp_access.Spp in
  let ln, _, _, _ = node_layout native in
  let ls, _, _, _ = node_layout spp in
  check_int "native layout" (8 + 16 + 16) (size_of ln);
  check_int "spp layout" (8 + 16 + 24) (size_of ls)

let test_typed_list_walk () =
  let a = mk Spp_access.Spp in
  let l, value, _, next = node_layout a in
  (* build 1 -> 2 -> ... -> 50 *)
  let rec build i tail =
    if i = 0 then tail
    else begin
      let n = alloc l in
      set l n value i;
      set l n next tail;
      build (i - 1) n
    end
  in
  let head = build 50 null in
  let rec sum p acc =
    if is_null p then acc else sum (get l p next) (acc + get l p value)
  in
  check_int "sum 1..50" 1275 (sum head 0)

let test_tx_field_snapshot () =
  let a = mk Spp_access.Spp in
  let l, value, name, _ = node_layout a in
  let n = alloc l in
  set l n value 7;
  set l n name "keep";
  (try
     with_tx l (fun () ->
       tx_add_field l n value;
       set l n value 99;
       failwith "boom")
   with Failure _ -> ());
  check_int "field rolled back" 7 (get l n value);
  Alcotest.(check string) "other field untouched" "keep" (get l n name)

let test_typed_protection_inherited () =
  (* a raw out-of-bounds access derived from a typed pointer still faults
     under SPP *)
  let a = mk Spp_access.Spp in
  let l, _, _, _ = node_layout a in
  let n = alloc l in
  match
    Spp_access.run_guarded (fun () ->
      a.Spp_access.store_word (a.Spp_access.gep (direct l n) (size_of l)) 1)
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "typed pointer must stay protected"

let test_fixed_string_too_long () =
  let a = mk Spp_access.Spp in
  let l, _, name, _ = node_layout a in
  let n = alloc l in
  Alcotest.check_raises "oversized string"
    (Invalid_argument "Spp_pptr.fixed_string: value too long")
    (fun () -> set l n name "exactly-16-chars!")

let prop_typed_equals_untyped =
  QCheck.Test.make
    ~name:"typed field access equals manual offset arithmetic" ~count:100
    QCheck.(pair (int_bound 10000) string_printable)
    (fun (v, s) ->
      let s = if String.length s > 15 then String.sub s 0 15 else s in
      let s = String.map (fun c -> if c = '\000' then 'x' else c) s in
      let a = mk Spp_access.Spp in
      let l, value, name, _ = node_layout a in
      let n = alloc l in
      set l n value v;
      set l n name s;
      let raw = direct l n in
      a.Spp_access.load_word raw = v
      && (let b = a.Spp_access.read_bytes (a.Spp_access.gep raw 8)
                    (String.length s) in
          Bytes.to_string b = s))

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_pptr"
    [
      ( "typed",
        [
          Alcotest.test_case "struct roundtrip on all variants" `Quick
            test_typed_struct_roundtrip;
          Alcotest.test_case "layout size is mode dependent" `Quick
            test_layout_size_mode_dependent;
          Alcotest.test_case "typed list walk" `Quick test_typed_list_walk;
          Alcotest.test_case "tx field snapshot" `Quick test_tx_field_snapshot;
          Alcotest.test_case "protection inherited" `Quick
            test_typed_protection_inherited;
          Alcotest.test_case "fixed string bound" `Quick
            test_fixed_string_too_long;
        ] );
      ("properties", [ qt prop_typed_equals_untyped ]);
    ]
