test/test_pmemlog.ml: Alcotest Bytes Format List Oid Pool Spp_access Spp_pmdk Spp_pmemcheck Spp_pmemlog Spp_sim String
