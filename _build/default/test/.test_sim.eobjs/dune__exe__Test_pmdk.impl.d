test/test_pmdk.ml: Alcotest Bytes Fault Filename Fun Gen Heap List Memdev Mode Oid Pool QCheck QCheck_alcotest Space Spp_core Spp_pmdk Spp_sim Sys Tx
