test/test_instr.ml: Alcotest Hashtbl Interp Ir Passes Printf Spp_instr Spp_pmdk Spp_sim
