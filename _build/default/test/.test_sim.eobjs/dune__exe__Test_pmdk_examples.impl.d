test/test_pmdk_examples.ml: Alcotest Gen Heap List Pm_array Pm_fifo Pm_montecarlo Pm_queue Pm_slab Pool Printf QCheck QCheck_alcotest Spp_access Spp_pmdk Spp_pmdk_examples Spp_sim
