test/test_inspect.ml: Alcotest Format Heap Inspect List Mode Oid Pool Rep Spp_core Spp_pmdk Spp_pmemcheck Spp_sim String
