test/test_spp_all.ml: Alcotest List Spp_access Spp_core
