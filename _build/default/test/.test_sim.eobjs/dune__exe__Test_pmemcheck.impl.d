test/test_pmemcheck.ml: Alcotest Format Mode Oid Pmemcheck Pmreorder Pool Rep Space Spp_core Spp_pmdk Spp_pmemcheck Spp_sim
