test/test_access.ml: Alcotest Char Heap List Oid Pool Spp_access Spp_core Spp_pmdk Spp_sim
