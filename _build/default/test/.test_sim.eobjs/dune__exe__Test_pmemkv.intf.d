test/test_pmemkv.mli:
