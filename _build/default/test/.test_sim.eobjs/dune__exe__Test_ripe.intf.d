test/test_ripe.mli:
