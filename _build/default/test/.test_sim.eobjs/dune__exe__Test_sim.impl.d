test/test_sim.ml: Alcotest Bytes Char Fault Filename Fun Gen List Memdev QCheck QCheck_alcotest Space Spp_sim Sys Vheap
