test/test_pmemcheck.mli:
