test/test_indices.ml: Alcotest Btree_map Gen Hashtbl Heap Indices List Pool Printf QCheck QCheck_alcotest Random Rbtree Spp_access Spp_indices Spp_pmdk Spp_sim
