test/test_pptr.mli:
