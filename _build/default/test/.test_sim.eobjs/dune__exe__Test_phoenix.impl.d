test/test_phoenix.ml: Alcotest List Printf Spp_access Spp_phoenix
