test/test_pmdk_examples.mli:
