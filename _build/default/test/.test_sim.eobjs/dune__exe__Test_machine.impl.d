test/test_machine.ml: Alcotest Filename Machine Mode Oid Pool Spp_core Spp_pmdk Spp_sim
