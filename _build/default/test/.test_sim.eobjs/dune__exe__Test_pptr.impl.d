test/test_pptr.ml: Alcotest Bytes List QCheck QCheck_alcotest Spp_access Spp_pptr String
