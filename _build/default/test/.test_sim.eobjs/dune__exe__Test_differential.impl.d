test/test_differential.ml: Alcotest Gen Hashtbl List Oid Pool Printf QCheck QCheck_alcotest Spp_access Spp_core Spp_indices Spp_pmdk Spp_pmemkv Spp_sim
