test/test_phoenix.mli:
