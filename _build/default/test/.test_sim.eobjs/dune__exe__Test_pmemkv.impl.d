test/test_pmemkv.ml: Alcotest Hashtbl List Pool Printf Random Spp_access Spp_pmdk Spp_pmemkv Spp_sim String
