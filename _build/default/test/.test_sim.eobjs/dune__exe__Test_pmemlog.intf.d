test/test_pmemlog.mli:
