test/test_core.ml: Alcotest Bytes Config Encoding Fault Gen Memdev QCheck QCheck_alcotest Runtime Space Spp_core Spp_sim Wrappers
