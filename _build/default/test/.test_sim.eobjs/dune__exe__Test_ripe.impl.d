test/test_ripe.ml: Alcotest Lazy List Ripe Spp_access Spp_ripe
