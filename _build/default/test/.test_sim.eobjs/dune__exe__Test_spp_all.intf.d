test/test_spp_all.mli:
