(* Tests for the pmemcheck trace checker and the pmreorder crash-state
   explorer (paper §VI-E): PMDK/SPP metadata updates must be clean, a
   deliberately broken protocol must be flagged, and every reachable
   crash state of a transactional update must recover consistently. *)

open Spp_sim
open Spp_pmdk
open Spp_pmemcheck

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_pool ?(mode = Mode.Native) () =
  let space = Space.create () in
  Pool.create space ~base:4096 ~size:(1 lsl 20) ~mode ~name:"pcheck"

let test_clean_tx_workload () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  let (), report =
    Pmemcheck.check_run p (fun () ->
      Pool.with_tx p (fun () ->
        Pool.tx_add_range p ~off:oid.Oid.off ~len:16;
        Pool.store_word p ~off:oid.Oid.off 1;
        Pool.store_word p ~off:(oid.Oid.off + 8) 2))
  in
  check_bool
    (Format.asprintf "clean: %a" Pmemcheck.pp_report report)
    true
    (Pmemcheck.is_clean report)

let test_clean_alloc_free_spp () =
  (* SPP's extra size-field updates must not break the discipline *)
  let p = mk_pool ~mode:(Mode.Spp Spp_core.Config.default) () in
  let root = Pool.root p ~size:64 in
  let (), report =
    Pmemcheck.check_run p (fun () ->
      let oid = Pool.alloc p ~size:128 ~dest:root.Oid.off in
      let oid2 = Pool.realloc p oid ~size:256 ~dest:root.Oid.off in
      Pool.free_ p oid2 ~dest:root.Oid.off)
  in
  check_bool
    (Format.asprintf "clean: %a" Pmemcheck.pp_report report)
    true
    (Pmemcheck.is_clean report)

let test_unflushed_store_flagged () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  let (), report =
    Pmemcheck.check_run p (fun () ->
      (* raw store with no flush: a classic pmemcheck finding *)
      Pool.store_word p ~off:oid.Oid.off 7)
  in
  check_int "one store not flushed" 1 report.Pmemcheck.not_flushed

let test_flush_without_fence_flagged () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  let (), report =
    Pmemcheck.check_run p (fun () ->
      Pool.store_word p ~off:oid.Oid.off 7;
      Space.flush (Pool.space p) (Pool.addr_of_off p oid.Oid.off) 8)
  in
  check_int "not fenced" 1 report.Pmemcheck.not_fenced;
  check_int "but flushed" 0 report.Pmemcheck.not_flushed

let test_redundant_flush_flagged () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  let (), report =
    Pmemcheck.check_run p (fun () ->
      Pool.persist p ~off:oid.Oid.off ~len:8;
      Pool.persist p ~off:oid.Oid.off ~len:8)
  in
  check_bool "redundant flush reported" true
    (report.Pmemcheck.redundant_flushes >= 1)

(* pmreorder *)

let test_pmreorder_tx_is_crash_consistent () =
  (* invariant: the two words are always equal after recovery *)
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  let root = Pool.root p ~size:Rep.block_header_size in
  ignore root;
  Pool.with_tx p (fun () ->
    Pool.tx_add_range p ~off:oid.Oid.off ~len:16;
    Pool.store_word p ~off:oid.Oid.off 5;
    Pool.store_word p ~off:(oid.Oid.off + 8) 5);
  let result =
    Pmreorder.explore ~pool:p
      ~workload:(fun () ->
        Pool.with_tx p (fun () ->
          Pool.tx_add_range p ~off:oid.Oid.off ~len:16;
          Pool.store_word p ~off:oid.Oid.off 9;
          Pool.store_word p ~off:(oid.Oid.off + 8) 9))
      ~consistent:(fun p' ->
        let a = Pool.load_word p' ~off:oid.Oid.off in
        let b = Pool.load_word p' ~off:(oid.Oid.off + 8) in
        a = b && (a = 5 || a = 9))
      ()
  in
  check_bool
    (Format.asprintf "no inconsistent state: %a" Pmreorder.pp_result result)
    true
    (result.Pmreorder.failures = 0);
  check_bool "explored a real state space" true
    (result.Pmreorder.states_checked > 50)

let test_pmreorder_catches_broken_protocol () =
  (* the same two-word update without a transaction IS crash inconsistent,
     and the explorer must find a bad state *)
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.with_tx p (fun () ->
    Pool.tx_add_range p ~off:oid.Oid.off ~len:16;
    Pool.store_word p ~off:oid.Oid.off 5;
    Pool.store_word p ~off:(oid.Oid.off + 8) 5);
  let result =
    Pmreorder.explore ~pool:p
      ~workload:(fun () ->
        Pool.store_word p ~off:oid.Oid.off 9;
        Pool.persist p ~off:oid.Oid.off ~len:8;
        Pool.store_word p ~off:(oid.Oid.off + 8) 9;
        Pool.persist p ~off:(oid.Oid.off + 8) ~len:8)
      ~consistent:(fun p' ->
        let a = Pool.load_word p' ~off:oid.Oid.off in
        let b = Pool.load_word p' ~off:(oid.Oid.off + 8) in
        a = b)
      ()
  in
  check_bool "inconsistent state found" true (result.Pmreorder.failures > 0)

let test_pmreorder_prefix_fallback () =
  (* more pending stores than the subset limit: the explorer falls back
     to program-order prefixes + singletons and still finds the bad
     state of an unordered two-word update *)
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:128 in
  let result =
    Pmreorder.explore ~subset_limit:2 ~pool:p
      ~workload:(fun () ->
        (* eight stores, no fences until the very end *)
        for i = 0 to 7 do
          Pool.store_word p ~off:(oid.Oid.off + (8 * i)) 9
        done;
        Pool.persist p ~off:oid.Oid.off ~len:64)
      ~consistent:(fun p' ->
        (* "all or nothing" is NOT guaranteed without a tx: the explorer
           must prove that by finding a partial state *)
        let a = Pool.load_word p' ~off:oid.Oid.off in
        let b = Pool.load_word p' ~off:(oid.Oid.off + 56) in
        a = b)
      ()
  in
  check_bool "partial state found via prefixes" true
    (result.Pmreorder.failures > 0)

let test_pmreorder_allocator_publish_atomic () =
  (* crash anywhere inside an atomic alloc-with-dest: after recovery the
     slot is either null or a fully valid object *)
  let p = mk_pool ~mode:(Mode.Spp Spp_core.Config.default) () in
  let root = Pool.root p ~size:64 in
  let result =
    Pmreorder.explore ~pool:p
      ~workload:(fun () -> ignore (Pool.alloc p ~size:96 ~dest:root.Oid.off))
      ~consistent:(fun p' ->
        let slot = Pool.load_oid p' ~off:root.Oid.off in
        Oid.is_null slot
        || (slot.Oid.size = 96 && Pool.alloc_size p' slot = 96))
      ()
  in
  check_bool
    (Format.asprintf "alloc publish atomic: %a" Pmreorder.pp_result result)
    true
    (result.Pmreorder.failures = 0)

let () =
  Alcotest.run "spp_pmemcheck"
    [
      ( "pmemcheck",
        [
          Alcotest.test_case "clean tx workload" `Quick test_clean_tx_workload;
          Alcotest.test_case "clean SPP alloc/realloc/free" `Quick
            test_clean_alloc_free_spp;
          Alcotest.test_case "unflushed store flagged" `Quick
            test_unflushed_store_flagged;
          Alcotest.test_case "flush without fence flagged" `Quick
            test_flush_without_fence_flagged;
          Alcotest.test_case "redundant flush flagged" `Quick
            test_redundant_flush_flagged;
        ] );
      ( "pmreorder",
        [
          Alcotest.test_case "tx update crash consistent" `Quick
            test_pmreorder_tx_is_crash_consistent;
          Alcotest.test_case "broken protocol caught" `Quick
            test_pmreorder_catches_broken_protocol;
          Alcotest.test_case "prefix fallback finds partial state" `Quick
            test_pmreorder_prefix_fallback;
          Alcotest.test_case "alloc publish atomic" `Quick
            test_pmreorder_allocator_publish_atomic;
        ] );
    ]
