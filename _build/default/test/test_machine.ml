(* Tests for the multi-pool machine: uuid-based pmemobj_direct dispatch,
   pool layout in the lower address space, and cross-pool safety. *)

open Spp_pmdk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spp_mode = Mode.Spp Spp_core.Config.default

let test_two_pools_dispatch () =
  let m = Machine.create () in
  let p1 = Machine.create_pool m ~size:(1 lsl 17) ~mode:spp_mode ~name:"p1" in
  let p2 = Machine.create_pool m ~size:(1 lsl 17) ~mode:Mode.Native ~name:"p2" in
  let o1 = Pool.alloc p1 ~size:32 in
  let o2 = Pool.alloc p2 ~size:32 in
  let a1 = Machine.direct m o1 and a2 = Machine.direct m o2 in
  check_bool "spp pool gives tagged ptr" true
    (Spp_core.Encoding.is_pm Spp_core.Config.default a1);
  check_bool "native pool gives raw ptr" false
    (Spp_core.Encoding.is_pm Spp_core.Config.default a2);
  (* both dereference correctly through the shared space *)
  let space = Machine.space m in
  Spp_sim.Space.store_word space
    (Spp_core.Encoding.clean_tag Spp_core.Config.default a1) 11;
  Spp_sim.Space.store_word space a2 22;
  check_int "pool1 data" 11
    (Spp_sim.Space.load_word space
       (Spp_core.Encoding.clean_tag Spp_core.Config.default a1));
  check_int "pool2 data" 22 (Spp_sim.Space.load_word space a2)

let test_unknown_uuid_rejected () =
  let m = Machine.create () in
  let (_ : Pool.t) =
    Machine.create_pool m ~size:(1 lsl 17) ~mode:Mode.Native ~name:"p"
  in
  let bogus = { Oid.uuid = 9999; off = 64; size = 8 } in
  match Machine.direct m bogus with
  | _ -> Alcotest.fail "expected Wrong_pool"
  | exception Pool.Wrong_pool _ -> ()

let test_pools_are_disjoint () =
  let m = Machine.create () in
  let p1 = Machine.create_pool m ~size:(1 lsl 17) ~mode:Mode.Native ~name:"a" in
  let p2 = Machine.create_pool m ~size:(1 lsl 17) ~mode:Mode.Native ~name:"b" in
  check_bool "ordered and disjoint" true
    (Pool.base p2 >= Pool.base p1 + Pool.size p1);
  (* a stray pointer in the guard gap faults *)
  (match
     Spp_sim.Space.load_word (Machine.space m) (Pool.base p1 + Pool.size p1)
   with
   | _ -> Alcotest.fail "guard gap must be unmapped"
   | exception Spp_sim.Fault.Fault _ -> ())

let test_reopen_pool_into_machine () =
  let m = Machine.create () in
  let p = Machine.create_pool m ~size:(1 lsl 17) ~mode:spp_mode ~name:"x" in
  let root = Pool.root p ~size:64 in
  let oid = Pool.alloc p ~size:48 ~dest:root.Oid.off in
  ignore oid;
  Spp_sim.Memdev.save_durable (Pool.dev p)
    (Filename.temp_file "machine" ".img")
  |> ignore;
  (* reopen the same durable image in a fresh machine *)
  let img = Spp_sim.Memdev.durable_snapshot (Pool.dev p) in
  let m2 = Machine.create () in
  let dev2 = Spp_sim.Memdev.of_image ~name:"x" img in
  let p2 = Machine.open_pool m2 dev2 in
  let slot = Pool.load_oid p2 ~off:(Pool.root_oid p2).Oid.off in
  check_int "size field travelled" 48 slot.Oid.size;
  check_bool "tag rebuilt in the new machine" true
    (Spp_core.Encoding.remaining Spp_core.Config.default
       (Machine.direct m2 slot)
     = 48)

let test_vheap_is_high () =
  let m = Machine.create () in
  let addr = Spp_sim.Vheap.malloc (Machine.vheap m) 64 in
  check_bool "volatile allocations above the PM span" true
    (addr >= Spp_sim.Vheap.default_base)

let () =
  Alcotest.run "spp_machine"
    [
      ( "machine",
        [
          Alcotest.test_case "two pools, mixed modes" `Quick
            test_two_pools_dispatch;
          Alcotest.test_case "unknown uuid rejected" `Quick
            test_unknown_uuid_rejected;
          Alcotest.test_case "pools disjoint with guard gaps" `Quick
            test_pools_are_disjoint;
          Alcotest.test_case "reopen into a fresh machine" `Quick
            test_reopen_pool_into_machine;
          Alcotest.test_case "volatile heap mapped high" `Quick
            test_vheap_is_high;
        ] );
    ]
