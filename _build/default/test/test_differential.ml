(* Differential and crash-injection fuzzing across the whole stack:

   - the same random operation stream must produce identical results on
     every variant (instrumentation must never change semantics);
   - crashes injected between operations must never lose a committed
     update or resurrect a removed one, on any index and on the KV
     engine (each operation is one transaction);
   - SPP protection must hold at every intermediate state: probing one
     byte past a randomly chosen live object always faults. *)

open Spp_pmdk

let check_int = Alcotest.(check int)

let mk ?(pool_size = 1 lsl 24) variant =
  Spp_access.create ~pool_size ~name:(Spp_access.variant_name variant) variant

(* random op streams *)

type op =
  | Insert of int * int
  | Remove of int
  | Get of int

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 20 120)
      (int_range 0 299 >>= fun key ->
       frequency
         [
           (4, map (fun v -> Insert (key, v)) (int_range 0 100000));
           (2, return (Remove key));
           (3, return (Get key));
         ]))

let arb_ops = QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_ops

let run_stream ix ops =
  List.map
    (fun op ->
      match op with
      | Insert (key, value) ->
        ix.Spp_indices.Indices.insert ~key ~value;
        None
      | Remove key -> ix.Spp_indices.Indices.remove key
      | Get key -> ix.Spp_indices.Indices.get key)
    ops

let prop_indices_differential index_name =
  QCheck.Test.make
    ~name:(index_name ^ ": identical results on all variants") ~count:25
    arb_ops
    (fun ops ->
      let results =
        List.map
          (fun v -> run_stream (Spp_indices.Indices.create index_name (mk v)) ops)
          Spp_access.all_variants
      in
      match results with
      | ref :: rest -> List.for_all (fun r -> r = ref) rest
      | [] -> true)

(* crash-injection fuzz: crash after random prefixes of the op stream;
   committed operations must all be visible after recovery *)

let prop_crash_fuzz index_name =
  QCheck.Test.make
    ~name:(index_name ^ ": crashes between ops lose nothing") ~count:15
    QCheck.(pair arb_ops (list_of_size (Gen.int_range 1 4) (int_bound 100)))
    (fun (ops, crash_points) ->
      let a = mk Spp_access.Spp in
      let ix = Spp_indices.Indices.create index_name a in
      Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
      let model = Hashtbl.create 64 in
      let crash_set =
        List.map (fun c -> c mod max 1 (List.length ops)) crash_points
      in
      List.iteri
        (fun i op ->
          (match op with
           | Insert (key, value) ->
             ix.Spp_indices.Indices.insert ~key ~value;
             Hashtbl.replace model key value
           | Remove key ->
             ignore (ix.Spp_indices.Indices.remove key);
             Hashtbl.remove model key
           | Get key -> ignore (ix.Spp_indices.Indices.get key));
          if List.mem i crash_set then begin
            let (_ : Pool.recovery_report) =
              Pool.crash_and_recover a.Spp_access.pool
            in
            ()
          end)
        ops;
      let (_ : Pool.recovery_report) =
        Pool.crash_and_recover a.Spp_access.pool
      in
      Hashtbl.fold
        (fun k v acc -> acc && ix.Spp_indices.Indices.get k = Some v)
        model true)

let prop_kv_crash_fuzz =
  QCheck.Test.make ~name:"cmap: crashes between ops lose nothing" ~count:15
    QCheck.(pair
              (list_of_size (Gen.int_range 10 60)
                 (pair (int_bound 50) (option (int_bound 1000))))
              (int_bound 30))
    (fun (ops, crash_at) ->
      let a = mk Spp_access.Spp in
      let kv = Spp_pmemkv.Cmap.create ~nbuckets:64 a in
      Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (k, v) ->
          let key = "k" ^ string_of_int k in
          (match v with
           | Some v ->
             Spp_pmemkv.Cmap.put kv ~key ~value:(string_of_int v);
             Hashtbl.replace model key (string_of_int v)
           | None ->
             ignore (Spp_pmemkv.Cmap.remove kv key);
             Hashtbl.remove model key);
          if i = crash_at then
            ignore (Pool.crash_and_recover a.Spp_access.pool))
        ops;
      ignore (Pool.crash_and_recover a.Spp_access.pool);
      Hashtbl.fold
        (fun k v acc -> acc && Spp_pmemkv.Cmap.get kv k = Some v)
        model true
      && Spp_pmemkv.Cmap.count_all kv = Hashtbl.length model)

(* protection invariant at arbitrary states: a one-past-the-end probe of
   a live object always faults under SPP *)

let prop_spp_always_protects =
  QCheck.Test.make
    ~name:"SPP: one-past-end probe faults at any heap state" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 4096))
    (fun sizes ->
      let a = mk Spp_access.Spp in
      let oids = List.map (fun size -> a.Spp_access.palloc size) sizes in
      List.for_all
        (fun (oid : Oid.t) ->
          let p = a.Spp_access.direct oid in
          match
            Spp_access.run_guarded (fun () ->
              a.Spp_access.store_u8 (a.Spp_access.gep p oid.Oid.size) 1)
          with
          | Spp_access.Prevented _ -> true
          | Ok_completed -> false)
        oids)

(* tag-width sweep: the whole mechanism must work at any configured
   width, trading maximum object size for pool span (paper §IV-A) *)

let test_tag_width_sweep () =
  List.iter
    (fun tag_bits ->
      let cfg = Spp_core.Config.make ~tag_bits in
      let pool_size = min (1 lsl 20) (Spp_core.Config.max_pool_span cfg / 2) in
      let a =
        Spp_access.create ~tag_bits ~pool_size
          ~name:(Printf.sprintf "tag%d" tag_bits) Spp_access.Spp
      in
      let size = min 4096 (Spp_core.Config.max_object_size cfg) in
      let oid = a.Spp_access.palloc size in
      let p = a.Spp_access.direct oid in
      a.Spp_access.store_word p 1;
      check_int
        (Printf.sprintf "tag=%d rw works" tag_bits)
        1 (a.Spp_access.load_word p);
      match
        Spp_access.run_guarded (fun () ->
          a.Spp_access.store_u8 (a.Spp_access.gep p size) 1)
      with
      | Spp_access.Prevented _ -> ()
      | Ok_completed ->
        Alcotest.failf "tag=%d must still catch overflow" tag_bits)
    [ 13; 20; 26; 31; 40 ]

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_differential"
    [
      ( "differential",
        List.map (fun ix -> qt (prop_indices_differential ix))
          [ "ctree"; "rbtree"; "hashmap_tx"; "btree" ] );
      ( "crash-fuzz",
        List.map (fun ix -> qt (prop_crash_fuzz ix))
          [ "ctree"; "rbtree"; "hashmap_tx"; "btree" ]
        @ [ qt prop_kv_crash_fuzz ] );
      ( "protection",
        [ qt prop_spp_always_protects;
          Alcotest.test_case "tag width sweep" `Quick test_tag_width_sweep ] );
    ]
