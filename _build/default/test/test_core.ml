(* Tests for the SPP core: tagged-pointer encoding, runtime hooks, and
   interposed memory/string wrappers. *)

open Spp_sim
open Spp_core

let cfg = Config.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_fault f =
  match f () with
  | _ -> Alcotest.fail "expected a simulated fault"
  | exception Fault.Fault _ -> ()

(* Encoding *)

let test_config_arithmetic () =
  check_int "addr bits" (63 - 2 - 26) (Config.addr_bits cfg);
  check_int "max object" (1 lsl 26) (Config.max_object_size cfg);
  check_int "max pool span" (1 lsl 35) (Config.max_pool_span cfg);
  Alcotest.check_raises "tag too wide"
    (Invalid_argument "Spp_core.Config.make: tag_bits 60 outside [4, 48]")
    (fun () -> ignore (Config.make ~tag_bits:60))

let test_mk_tagged_decode () =
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:42 in
  let d = Encoding.decode cfg p in
  check_bool "pm bit" true d.Encoding.d_pm;
  check_bool "no overflow at start" false d.Encoding.d_overflow;
  check_int "address preserved" 0x1000 d.Encoding.d_addr;
  check_int "remaining = size" 42 (Encoding.remaining cfg p)

let test_gep_within_bounds () =
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:42 in
  let p' = Encoding.gep cfg p 21 in
  check_bool "still valid" false (Encoding.is_overflowed cfg p');
  check_int "address moved" 0x1015 (Encoding.address cfg p');
  check_int "remaining" 21 (Encoding.remaining cfg p')

let test_gep_overflow_sets_bit () =
  (* Paper Fig. 3: 42-byte object, two +21 steps overflow. *)
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:42 in
  let p = Encoding.gep cfg p 21 in
  let p = Encoding.gep cfg p 21 in
  check_bool "overflow set at p = size" true (Encoding.is_overflowed cfg p)

let test_gep_back_in_bounds_clears () =
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:42 in
  let p = Encoding.gep cfg p 50 in
  check_bool "overflown" true (Encoding.is_overflowed cfg p);
  let p = Encoding.gep cfg p (-20) in
  check_bool "valid again" false (Encoding.is_overflowed cfg p);
  check_int "address back" (0x1000 + 30) (Encoding.address cfg p)

let test_last_byte_valid_first_oob_not () =
  let p = Encoding.mk_tagged cfg ~addr:0x2000 ~size:8 in
  let last = Encoding.gep cfg p 7 in
  check_bool "last byte valid" false (Encoding.is_overflowed cfg last);
  let oob = Encoding.gep cfg p 8 in
  check_bool "one past end invalid" true (Encoding.is_overflowed cfg oob)

let test_clean_tag_preserves_overflow () =
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:8 in
  let oob = Encoding.gep cfg p 9 in
  let cleaned = Encoding.clean_tag cfg oob in
  check_bool "cleaned address is invalid (bit 61 set)" true
    (cleaned land (1 lsl 61) <> 0);
  let ok = Encoding.clean_tag cfg (Encoding.gep cfg p 3) in
  check_int "valid pointer cleans to plain address" (0x1000 + 3) ok

let test_clean_tag_external_strips_everything () =
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:8 in
  let oob = Encoding.gep cfg p 9 in
  check_int "external clean yields raw (out-of-bounds!) address"
    (0x1000 + 9) (Encoding.clean_tag_external cfg oob)

let test_check_bound_accounts_for_width () =
  (* Reading 8 bytes at offset 1 of an 8-byte object crosses the bound. *)
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:8 in
  let p1 = Encoding.gep cfg p 1 in
  let masked = Encoding.check_bound cfg p1 8 in
  check_bool "masked address invalid" true (masked land (1 lsl 61) <> 0);
  let ok = Encoding.check_bound cfg p1 7 in
  check_int "7-byte read at +1 fine" (0x1000 + 1) ok

let test_volatile_pointers_untouched () =
  let v = 1 lsl 45 in
  check_int "update_tag id" v (Encoding.update_tag cfg v 10);
  check_int "clean_tag id" v (Encoding.clean_tag cfg v);
  check_int "gep is plain add" (v + 10) (Encoding.gep cfg v 10)

let test_object_too_large () =
  match
    Encoding.mk_tagged cfg ~addr:0 ~size:(Config.max_object_size cfg + 1)
  with
  | _ -> Alcotest.fail "expected Object_too_large"
  | exception Encoding.Object_too_large { size; max } ->
    check_int "size" (Config.max_object_size cfg + 1) size;
    check_int "max" (Config.max_object_size cfg) max

let test_max_size_object () =
  let size = Config.max_object_size cfg in
  let p = Encoding.mk_tagged cfg ~addr:0 ~size in
  check_bool "valid at start" false (Encoding.is_overflowed cfg p);
  let last = Encoding.gep cfg p (size - 1) in
  check_bool "last byte valid" false (Encoding.is_overflowed cfg last);
  let oob = Encoding.gep cfg p size in
  check_bool "one past end overflows" true (Encoding.is_overflowed cfg oob)

(* Faulting through the address space: the implicit check end-to-end. *)

let mk_space () =
  let s = Space.create () in
  let pm = Memdev.create_persistent ~name:"pm" 65536 in
  Space.map s ~base:4096 ~size:65536 ~kind:Space.Persistent ~name:"pm" pm;
  s

let test_overflown_access_faults () =
  let s = mk_space () in
  let obj = Encoding.mk_tagged cfg ~addr:8192 ~size:16 in
  (* in-bounds store through check_bound works *)
  Space.store_word s (Encoding.check_bound cfg obj 8) 0xFEED;
  check_int "readback" 0xFEED (Space.load_word s (Encoding.check_bound cfg obj 8));
  (* out-of-bounds access faults with no explicit branch *)
  let oob = Encoding.gep cfg obj 16 in
  expect_fault (fun () ->
    Space.store_word s (Encoding.check_bound cfg oob 8) 1)

(* Runtime hooks *)

let test_runtime_counters () =
  Runtime.reset_counters ();
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:64 in
  let p = Runtime.spp_updatetag cfg p 8 in
  ignore (Runtime.spp_checkbound cfg p 8);
  ignore (Runtime.spp_cleantag cfg p);
  ignore (Runtime.spp_cleantag_external cfg p);
  ignore (Runtime.spp_updatetag_direct cfg p 1);
  let c = Runtime.counters in
  check_int "updatetag" 2 c.Runtime.updatetag;
  check_int "checkbound" 1 c.Runtime.checkbound;
  check_int "cleantag" 1 c.Runtime.cleantag;
  check_int "cleantag_external" 1 c.Runtime.cleantag_external;
  check_int "pm bit tests" 4 c.Runtime.pm_bit_tests;
  check_int "direct calls skip the test" 1 c.Runtime.direct_calls

(* Wrappers *)

let test_wrap_memcpy_ok_and_overflow () =
  let s = mk_space () in
  let src = Encoding.mk_tagged cfg ~addr:8192 ~size:32 in
  let dst = Encoding.mk_tagged cfg ~addr:16384 ~size:32 in
  Space.write_string s 8192 "0123456789abcdef0123456789abcdef";
  Wrappers.wrap_memcpy cfg s ~dst ~src ~len:32;
  Alcotest.(check string) "copied" "0123456789abcdef"
    (Bytes.to_string (Space.read_bytes s 16384 16));
  (* destination too small: fault before any corruption *)
  let small = Encoding.mk_tagged cfg ~addr:32768 ~size:16 in
  Space.store_word s (32768 + 16) 0x5AFE;
  expect_fault (fun () -> Wrappers.wrap_memcpy cfg s ~dst:small ~src ~len:32);
  check_int "adjacent word untouched" 0x5AFE (Space.load_word s (32768 + 16))

let test_wrap_memset_overflow () =
  let s = mk_space () in
  let dst = Encoding.mk_tagged cfg ~addr:8192 ~size:16 in
  Wrappers.wrap_memset cfg s ~dst ~c:'x' ~len:16;
  Alcotest.(check string) "filled" "xxxxxxxxxxxxxxxx"
    (Bytes.to_string (Space.read_bytes s 8192 16));
  expect_fault (fun () -> Wrappers.wrap_memset cfg s ~dst ~c:'y' ~len:17)

let test_wrap_strcpy () =
  let s = mk_space () in
  let src = Encoding.mk_tagged cfg ~addr:8192 ~size:32 in
  let dst = Encoding.mk_tagged cfg ~addr:16384 ~size:8 in
  Space.write_string s 8192 "short\000";
  Wrappers.wrap_strcpy cfg s ~dst ~src;
  Alcotest.(check string) "copied" "short" (Space.read_cstring s 16384);
  (* 8-byte buffer cannot take a 10-char string + NUL *)
  Space.write_string s 8192 "longerdata\000";
  expect_fault (fun () -> Wrappers.wrap_strcpy cfg s ~dst ~src)

let test_wrap_strcat_and_strcmp () =
  let s = mk_space () in
  let a = Encoding.mk_tagged cfg ~addr:8192 ~size:32 in
  let b = Encoding.mk_tagged cfg ~addr:16384 ~size:32 in
  Space.write_string s 8192 "foo\000";
  Space.write_string s 16384 "bar\000";
  Wrappers.wrap_strcat cfg s ~dst:a ~src:b;
  Alcotest.(check string) "concatenated" "foobar" (Space.read_cstring s 8192);
  check_int "strcmp equal" 0
    (Wrappers.wrap_strcmp cfg s a (Encoding.mk_tagged cfg ~addr:8192 ~size:32));
  check_bool "strcmp differs" true (Wrappers.wrap_strcmp cfg s a b <> 0)

let test_wrap_strncpy () =
  let s = mk_space () in
  let src = Encoding.mk_tagged cfg ~addr:8192 ~size:32 in
  let dst = Encoding.mk_tagged cfg ~addr:16384 ~size:16 in
  Space.write_string s 8192 "abc\000";
  (* copies the string and zero-pads to n *)
  Wrappers.wrap_strncpy cfg s ~dst ~src ~n:8;
  Alcotest.(check string) "copy + pad" "abc\000\000\000\000\000"
    (Bytes.to_string (Space.read_bytes s 16384 8));
  (* n larger than the destination faults *)
  expect_fault (fun () -> Wrappers.wrap_strncpy cfg s ~dst ~src ~n:17)

let test_tag_wrap_limitation () =
  (* paper §IV-G: an offset beyond the tag's representation range can
     wrap the delta field and clear the overflow bit — a documented
     limitation, not a defect of this implementation *)
  let p = Encoding.mk_tagged cfg ~addr:0x1000 ~size:16 in
  let huge = Config.max_object_size cfg + 16 in   (* wraps the delta *)
  let wrapped = Encoding.update_tag cfg p huge in
  check_bool "overflow bit wrapped back to clear" false
    (Encoding.is_overflowed cfg wrapped);
  (* a smaller out-of-range offset is still caught *)
  check_bool "ordinary far offset caught" true
    (Encoding.is_overflowed cfg (Encoding.update_tag cfg p (huge / 2)))

let test_wrap_memmove_overlap () =
  let s = mk_space () in
  let buf = Encoding.mk_tagged cfg ~addr:8192 ~size:32 in
  Space.write_string s 8192 "abcdefgh";
  Wrappers.wrap_memmove cfg s ~dst:(Encoding.gep cfg buf 2) ~src:buf ~len:8;
  Alcotest.(check string) "overlap handled" "ababcdefgh"
    (Bytes.to_string (Space.read_bytes s 8192 10))

(* Property tests *)

let gen_size = QCheck.Gen.int_range 1 (1 lsl 16)

let prop_overflow_iff_past_bound =
  QCheck.Test.make ~name:"overflow bit iff offset in [size, size + 2^tag)"
    ~count:2000
    QCheck.(make
              Gen.(pair gen_size (int_range (-100) (1 lsl 17))))
    (fun (size, off) ->
      let p = Encoding.mk_tagged cfg ~addr:0x100000 ~size in
      let p' = Encoding.gep cfg p off in
      let expected = off >= size || off < -0x100000 in
      (* for offsets within [-addr, size) the pointer must stay valid *)
      if off >= - 0x100000 && off < size + (1 lsl 20) then
        Encoding.is_overflowed cfg p' = expected
      else true)

let prop_gep_roundtrip =
  QCheck.Test.make ~name:"gep off then -off restores the pointer" ~count:2000
    QCheck.(pair (make gen_size) (int_range (-1000) 100000))
    (fun (size, off) ->
      let p = Encoding.mk_tagged cfg ~addr:0x100000 ~size in
      QCheck.assume (0x100000 + off >= 0);
      Encoding.gep cfg (Encoding.gep cfg p off) (-off) = p)

let prop_clean_tag_valid_equals_address =
  QCheck.Test.make
    ~name:"clean_tag of an in-bounds pointer is its plain address" ~count:2000
    QCheck.(pair (make gen_size) (int_bound 100000))
    (fun (size, off) ->
      QCheck.assume (off < size);
      let p = Encoding.gep cfg (Encoding.mk_tagged cfg ~addr:0x100000 ~size) off in
      Encoding.clean_tag cfg p = 0x100000 + off)

let prop_update_tag_additive =
  QCheck.Test.make ~name:"update_tag composes additively" ~count:2000
    QCheck.(triple (make gen_size) (int_range (-500) 500) (int_range (-500) 500))
    (fun (size, o1, o2) ->
      let p = Encoding.mk_tagged cfg ~addr:0x100000 ~size in
      Encoding.update_tag cfg (Encoding.update_tag cfg p o1) o2
      = Encoding.update_tag cfg p (o1 + o2))

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_core"
    [
      ( "encoding",
        [
          Alcotest.test_case "config arithmetic" `Quick test_config_arithmetic;
          Alcotest.test_case "mk_tagged/decode" `Quick test_mk_tagged_decode;
          Alcotest.test_case "gep within bounds" `Quick test_gep_within_bounds;
          Alcotest.test_case "overflow sets bit (paper Fig. 3)" `Quick
            test_gep_overflow_sets_bit;
          Alcotest.test_case "arithmetic back clears bit" `Quick
            test_gep_back_in_bounds_clears;
          Alcotest.test_case "boundary: last byte vs one past" `Quick
            test_last_byte_valid_first_oob_not;
          Alcotest.test_case "clean_tag keeps overflow bit" `Quick
            test_clean_tag_preserves_overflow;
          Alcotest.test_case "clean_tag_external strips all" `Quick
            test_clean_tag_external_strips_everything;
          Alcotest.test_case "check_bound uses access width" `Quick
            test_check_bound_accounts_for_width;
          Alcotest.test_case "volatile pointers untouched" `Quick
            test_volatile_pointers_untouched;
          Alcotest.test_case "object too large" `Quick test_object_too_large;
          Alcotest.test_case "max-size object" `Quick test_max_size_object;
          Alcotest.test_case "overflown access faults end-to-end" `Quick
            test_overflown_access_faults;
        ] );
      ( "runtime",
        [ Alcotest.test_case "hook counters" `Quick test_runtime_counters ] );
      ( "wrappers",
        [
          Alcotest.test_case "memcpy ok + overflow" `Quick
            test_wrap_memcpy_ok_and_overflow;
          Alcotest.test_case "memset overflow" `Quick test_wrap_memset_overflow;
          Alcotest.test_case "strcpy" `Quick test_wrap_strcpy;
          Alcotest.test_case "strcat/strcmp" `Quick test_wrap_strcat_and_strcmp;
          Alcotest.test_case "memmove overlap" `Quick test_wrap_memmove_overlap;
          Alcotest.test_case "strncpy" `Quick test_wrap_strncpy;
          Alcotest.test_case "tag wrap limitation (§IV-G)" `Quick
            test_tag_wrap_limitation;
        ] );
      ( "properties",
        [
          qt prop_overflow_iff_past_bound;
          qt prop_gep_roundtrip;
          qt prop_clean_tag_valid_equals_address;
          qt prop_update_tag_additive;
        ] );
    ]
