(* Tests for the pmemlog analogue: append/walk/rewind semantics, the
   write-ahead watermark discipline under crashes (including pmreorder
   exploration), and SPP protection of the log buffer. *)

open Spp_pmdk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk variant =
  Spp_access.create ~pool_size:(1 lsl 20)
    ~name:(Spp_access.variant_name variant) variant

let test_append_read_all_variants () =
  List.iter
    (fun v ->
      let a = mk v in
      let log = Spp_pmemlog.create a ~capacity:256 in
      Spp_pmemlog.append log "hello ";
      Spp_pmemlog.append log "persistent ";
      Spp_pmemlog.append log "log";
      Alcotest.(check string)
        (Spp_access.variant_name v ^ " contents")
        "hello persistent log" (Spp_pmemlog.read_all log);
      check_int "committed" 20 (Spp_pmemlog.committed log);
      check_int "remaining" 236 (Spp_pmemlog.remaining log))
    Spp_access.all_variants

let test_log_full () =
  let a = mk Spp_access.Spp in
  let log = Spp_pmemlog.create a ~capacity:8 in
  Spp_pmemlog.append log "12345678";
  Alcotest.check_raises "full" Spp_pmemlog.Log_full
    (fun () -> Spp_pmemlog.append log "x")

let test_walk_records () =
  let a = mk Spp_access.Spp in
  let log = Spp_pmemlog.create a ~capacity:64 in
  List.iter (Spp_pmemlog.append log) [ "aa"; "bb"; "cc" ];
  let seen = ref [] in
  Spp_pmemlog.walk log (fun ~off chunk ->
    seen := (off, String.sub chunk 0 2) :: !seen;
    2);
  Alcotest.(check (list (pair int string)))
    "records in order" [ (0, "aa"); (2, "bb"); (4, "cc") ] (List.rev !seen)

let test_rewind () =
  let a = mk Spp_access.Spp in
  let log = Spp_pmemlog.create a ~capacity:64 in
  Spp_pmemlog.append log "data";
  Spp_pmemlog.rewind log;
  check_int "rewound" 0 (Spp_pmemlog.committed log);
  Spp_pmemlog.append log "new";
  Alcotest.(check string) "fresh contents" "new" (Spp_pmemlog.read_all log)

let test_torn_append_invisible () =
  (* crash right after the payload write (before the watermark): the log
     must read as if the append never happened *)
  let a = mk Spp_access.Pmdk in
  let log = Spp_pmemlog.create a ~capacity:64 in
  Spp_pmemlog.append log "durable.";
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  (* hand-roll a torn append: payload persisted, watermark only stored *)
  let tail = Spp_pmemlog.committed log in
  let data = Spp_pmemlog.data_oid log in
  a.Spp_access.write_string
    (a.Spp_access.gep (a.Spp_access.direct data) tail) "torn!";
  Pool.persist a.Spp_access.pool ~off:(data.Oid.off + tail) ~len:5;
  let wm =
    a.Spp_access.gep (a.Spp_access.direct (Spp_pmemlog.descriptor log)) 8
  in
  a.Spp_access.store_word wm (tail + 5);
  (* no persist of the watermark -> lost at crash *)
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  Alcotest.(check string) "torn append invisible" "durable."
    (Spp_pmemlog.read_all log)

let test_pmreorder_append_protocol () =
  (* every reachable crash state shows a committed prefix of appends *)
  let a = mk Spp_access.Spp in
  let log = Spp_pmemlog.create a ~capacity:64 in
  let desc_off = (Spp_pmemlog.descriptor log).Oid.off in
  let data_off = (Spp_pmemlog.data_oid log).Oid.off in
  let result =
    Spp_pmemcheck.Pmreorder.explore ~pool:a.Spp_access.pool
      ~workload:(fun () ->
        Spp_pmemlog.append log "AAAA";
        Spp_pmemlog.append log "BBBB")
      ~consistent:(fun pool' ->
        let committed = Pool.load_word pool' ~off:(desc_off + 8) in
        let body len =
          Bytes.to_string
            (Spp_sim.Space.read_bytes (Pool.space pool')
               (Pool.addr_of_off pool' data_off) len)
        in
        match committed with
        | 0 -> true
        | 4 -> body 4 = "AAAA"
        | 8 -> body 8 = "AAAABBBB"
        | _ -> false)
      ()
  in
  check_bool
    (Format.asprintf "prefix property: %a" Spp_pmemcheck.Pmreorder.pp_result
       result)
    true
    (result.Spp_pmemcheck.Pmreorder.failures = 0)

let test_spp_protects_log_buffer () =
  (* an append that would overrun the data object faults before damage
     even if the watermark bookkeeping were broken *)
  let a = mk Spp_access.Spp in
  let log = Spp_pmemlog.create a ~capacity:16 in
  let data = Spp_pmemlog.data_oid log in
  match
    Spp_access.run_guarded (fun () ->
      a.Spp_access.write_string
        (a.Spp_access.gep (a.Spp_access.direct data) 12) "overflowing")
  with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SPP must catch the log overflow"

let () =
  Alcotest.run "spp_pmemlog"
    [
      ( "log",
        [
          Alcotest.test_case "append/read on all variants" `Quick
            test_append_read_all_variants;
          Alcotest.test_case "log full" `Quick test_log_full;
          Alcotest.test_case "walk records" `Quick test_walk_records;
          Alcotest.test_case "rewind" `Quick test_rewind;
        ] );
      ( "crash",
        [
          Alcotest.test_case "torn append invisible" `Quick
            test_torn_append_invisible;
          Alcotest.test_case "pmreorder prefix property" `Quick
            test_pmreorder_append_protocol;
          Alcotest.test_case "SPP protects the buffer" `Quick
            test_spp_protects_log_buffer;
        ] );
    ]
