(* Tests for the pool inspector/checker: clean pools pass, deliberate
   corruptions are pinpointed, and — the strong form — *every reachable
   crash state* of allocator and transaction activity passes the full
   integrity check after recovery. *)

open Spp_pmdk

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spp_mode = Mode.Spp Spp_core.Config.default

let mk_pool ?(mode = Mode.Native) () =
  let space = Spp_sim.Space.create () in
  Pool.create space ~base:4096 ~size:(1 lsl 18) ~mode ~name:"fsck"

let test_fresh_pool_consistent () =
  check_bool "fresh pool" true (Inspect.is_consistent (mk_pool ()))

let test_busy_pool_consistent () =
  let p = mk_pool ~mode:spp_mode () in
  let root = Pool.root p ~size:64 in
  let oids = ref [] in
  for i = 1 to 50 do
    oids := Pool.alloc p ~size:(16 * i) :: !oids
  done;
  List.iteri (fun i o -> if i mod 3 = 0 then Pool.free_ p o) !oids;
  ignore (Pool.alloc p ~size:100 ~dest:root.Oid.off);
  let issues = Inspect.check p in
  Alcotest.(check (list string)) "no issues" []
    (List.map Inspect.issue_to_string issues)

let test_detects_corrupted_freelist () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:64 in
  Pool.free_ p a;
  (* corrupt the freelist link to point into nowhere *)
  Pool.store_word p ~off:(a.Oid.off - Rep.block_header_size) 0x31337;
  check_bool "corruption detected" false (Inspect.is_consistent p)

let test_detects_corrupted_root () =
  let p = mk_pool () in
  let (_ : Oid.t) = Pool.root p ~size:64 in
  (* smash the root oid's offset field in the header *)
  Pool.store_word p
    ~off:(Rep.off_root + 8)   (* native layout: uuid, off *)
    0xDEAD0;
  check_bool "root corruption detected" false (Inspect.is_consistent p)

let test_detects_active_lane () =
  let p = mk_pool () in
  Pool.store_word p ~off:Rep.off_tx_state Rep.tx_active;
  check_bool "active lane flagged" false (Inspect.is_consistent p)

let test_info_summary () =
  let p = mk_pool ~mode:spp_mode () in
  ignore (Pool.alloc p ~size:200);
  let i = Inspect.info p in
  check_int "one live block" 1 i.Inspect.i_stats.Heap.allocated_blocks;
  check_bool "mode string" true (i.Inspect.i_mode = "spp(tag=26)");
  check_bool "printable" true
    (String.length (Format.asprintf "%a" Inspect.pp_info i) > 0)

(* The strong test: explore crash states of real allocator + tx activity
   and run the FULL integrity check on every recovered image. *)

let test_fsck_over_crash_states_alloc () =
  let p = mk_pool ~mode:spp_mode () in
  let root = Pool.root p ~size:64 in
  let result =
    Spp_pmemcheck.Pmreorder.explore ~pool:p
      ~workload:(fun () ->
        let o = Pool.alloc p ~size:144 ~dest:root.Oid.off in
        let o = Pool.realloc p o ~size:600 ~dest:root.Oid.off in
        Pool.free_ p o ~dest:root.Oid.off)
      ~consistent:Inspect.is_consistent ()
  in
  check_int
    (Format.asprintf "alloc/realloc/free fsck: %a"
       Spp_pmemcheck.Pmreorder.pp_result result)
    0 result.Spp_pmemcheck.Pmreorder.failures

let test_fsck_over_crash_states_tx () =
  let p = mk_pool ~mode:spp_mode () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  let result =
    Spp_pmemcheck.Pmreorder.explore ~pool:p
      ~workload:(fun () ->
        Pool.with_tx p (fun () ->
          Pool.tx_add_range p ~off:oid.Oid.off ~len:32;
          Pool.store_word p ~off:oid.Oid.off 1;
          let fresh = Pool.tx_alloc p ~size:80 in
          Pool.store_word p ~off:fresh.Oid.off 2;
          Pool.tx_free p oid))
      ~consistent:Inspect.is_consistent ()
  in
  check_int
    (Format.asprintf "tx fsck: %a" Spp_pmemcheck.Pmreorder.pp_result result)
    0 result.Spp_pmemcheck.Pmreorder.failures

let () =
  Alcotest.run "spp_inspect"
    [
      ( "check",
        [
          Alcotest.test_case "fresh pool consistent" `Quick
            test_fresh_pool_consistent;
          Alcotest.test_case "busy pool consistent" `Quick
            test_busy_pool_consistent;
          Alcotest.test_case "corrupted freelist detected" `Quick
            test_detects_corrupted_freelist;
          Alcotest.test_case "corrupted root detected" `Quick
            test_detects_corrupted_root;
          Alcotest.test_case "active lane flagged" `Quick
            test_detects_active_lane;
          Alcotest.test_case "info summary" `Quick test_info_summary;
        ] );
      ( "fsck-over-crash-states",
        [
          Alcotest.test_case "alloc/realloc/free" `Quick
            test_fsck_over_crash_states_alloc;
          Alcotest.test_case "transaction" `Quick test_fsck_over_crash_states_tx;
        ] );
    ]
