(* Tests for the §VII generalization: SPP extended to volatile pointers
   (full DeltaPointers mode). Volatile allocations carry delta tags, so
   the very overflows the PM-only design leaves to the volatile side are
   caught too — at the price of instrumenting everything. *)


let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk variant =
  Spp_access.create ~pool_size:(1 lsl 18)
    ~name:(Spp_access.variant_name variant) variant

let test_volatile_rw_works () =
  let a = mk Spp_access.Spp_all in
  let p = a.Spp_access.valloc 64 in
  check_bool "volatile pointer is tagged" true
    (Spp_core.Encoding.is_pm Spp_core.Config.default p);
  a.Spp_access.store_word p 77;
  a.Spp_access.store_word (a.Spp_access.gep p 56) 88;
  check_int "word0" 77 (a.Spp_access.load_word p);
  check_int "word7" 88 (a.Spp_access.load_word (a.Spp_access.gep p 56));
  a.Spp_access.vfree p

let test_volatile_overflow_detected () =
  let a = mk Spp_access.Spp_all in
  let p = a.Spp_access.valloc 64 in
  let neighbour = a.Spp_access.valloc 64 in
  a.Spp_access.store_word neighbour 0x5AFE;
  (match
     Spp_access.run_guarded (fun () ->
       a.Spp_access.store_word (a.Spp_access.gep p 64) 0xBAD)
   with
   | Spp_access.Prevented _ -> ()
   | Ok_completed -> Alcotest.fail "volatile overflow must fault");
  check_int "neighbour unharmed" 0x5AFE (a.Spp_access.load_word neighbour)

let test_pm_only_spp_misses_volatile_overflow () =
  (* the paper's baseline behaviour: PM-only SPP leaves the volatile heap
     unprotected *)
  let a = mk Spp_access.Pmdk in
  let p = a.Spp_access.valloc 64 in
  match
    Spp_access.run_guarded (fun () ->
      a.Spp_access.store_word (a.Spp_access.gep p 64) 0xBAD)
  with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "untagged heap should not fault: %s" r

let test_mixed_pm_and_volatile () =
  let a = mk Spp_access.Spp_all in
  let v = a.Spp_access.valloc 32 in
  let oid = a.Spp_access.palloc 32 in
  let pm = a.Spp_access.direct oid in
  a.Spp_access.store_word v 1;
  a.Spp_access.store_word pm 2;
  a.Spp_access.memcpy ~dst:v ~src:pm ~len:32;
  check_int "cross-heap memcpy" 2 (a.Spp_access.load_word v);
  (* both sides remain protected *)
  List.iter
    (fun ptr ->
      match
        Spp_access.run_guarded (fun () ->
          a.Spp_access.store_u8 (a.Spp_access.gep ptr 32) 1)
      with
      | Spp_access.Prevented _ -> ()
      | Ok_completed -> Alcotest.fail "both heaps must be protected")
    [ v; pm ]

let test_spp_all_blocks_volatile_ripe_row () =
  (* the §VII extension closes the volatile-heap row of Table IV: the
     same contiguous overflow that succeeds raw is now caught *)
  let a = mk Spp_access.Spp_all in
  let victim = a.Spp_access.valloc 120 in
  let target = a.Spp_access.valloc 120 in
  a.Spp_access.store_word (a.Spp_access.gep target 16) 0xD15;
  let delta =
    a.Spp_access.ptr_to_int target + 16 - a.Spp_access.ptr_to_int victim
  in
  (match
     Spp_access.run_guarded (fun () ->
       for i = 0 to delta + 7 do
         a.Spp_access.store_u8 (a.Spp_access.gep victim i) 0x41
       done)
   with
   | Spp_access.Prevented _ -> ()
   | Ok_completed -> Alcotest.fail "volatile RIPE walk must be prevented");
  check_int "dispatch intact" 0xD15
    (a.Spp_access.load_word (a.Spp_access.gep target 16))

let () =
  Alcotest.run "spp_all"
    [
      ( "volatile-generalization",
        [
          Alcotest.test_case "tagged volatile rw" `Quick test_volatile_rw_works;
          Alcotest.test_case "volatile overflow detected" `Quick
            test_volatile_overflow_detected;
          Alcotest.test_case "PM-only SPP misses it" `Quick
            test_pm_only_spp_misses_volatile_overflow;
          Alcotest.test_case "mixed PM + volatile" `Quick
            test_mixed_pm_and_volatile;
          Alcotest.test_case "volatile RIPE row closed" `Quick
            test_spp_all_blocks_volatile_ripe_row;
        ] );
    ]
