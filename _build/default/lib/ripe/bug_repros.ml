(* Reproductions of the real-world bugs the paper detects with SPP
   (§VI-D), beyond the btree and Phoenix bugs that live with their data
   structures.

   PMDK's libpmemobj array example: when the user asks to grow the
   array, the example calls realloc without checking for failure, then
   fills the "grown" array — overflowing the original allocation when
   the reallocation did not happen (array.c lines 215/235/257). *)

open Spp_pmdk

let array_example ?(buggy = true) (a : Spp_access.t) =
  let elems = 16 in
  let oid = a.Spp_access.palloc (elems * 8) in
  let grown = 4 * elems in
  (* the grow request fails: the pool cannot fit it *)
  let new_oid =
    match a.Spp_access.prealloc oid (Pool.size a.Spp_access.pool) with
    | oid' -> Some oid'
    | exception Heap.Out_of_pm -> None
    | exception Spp_core.Encoding.Object_too_large _ -> None
  in
  match new_oid with
  | Some oid' ->
    (* reallocation worked; filling is legal *)
    let p = a.Spp_access.direct oid' in
    for i = 0 to grown - 1 do
      a.Spp_access.store_word (a.Spp_access.gep p (8 * i)) i
    done
  | None ->
    if buggy then begin
      (* the example's bug: ignore the failure and fill anyway *)
      let p = a.Spp_access.direct oid in
      for i = 0 to grown - 1 do
        a.Spp_access.store_word (a.Spp_access.gep p (8 * i)) i
      done
    end
    else failwith "array example: realloc failed (handled)"
