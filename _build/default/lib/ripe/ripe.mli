(** RIPE-style runtime intrusion prevention evaluator, ported to PM
    (paper §VI-D, Table IV).

    Each attack tries to corrupt a dispatch slot (the stand-in for a code
    pointer) in a target PM object, or leak a secret word, by overflowing
    a victim buffer. Attacks execute for real through the variant's
    access layer, so outcomes are emergent from the mechanisms:
    layout-naive exploits hardcode offsets measured on the stock (native
    PMDK) layout — which is how ASan-style redzone shifts catch them —
    while layout-aware (evasion) exploits use the hardened binary's real
    layout. *)

type target_loc =
  | Adjacent   (** target object allocated right after the victim *)
  | Distant    (** two spacer objects in between *)

type technique =
  | Seq_u8            (** contiguous byte-wise overflow walk *)
  | Seq_word
  | Far_naive_u8      (** single jump, native-layout offset *)
  | Far_naive_word
  | Memcpy_naive
  | Strcpy_naive
  | Read_leak_naive   (** out-of-bounds read of the secret *)
  | Far_aware_write   (** layout-aware direct jump *)
  | Far_aware_read
  | Int2ptr_aware     (** pointer laundered through an integer *)
  | External_aware    (** write by uninstrumented external code *)
  | Intra_word        (** intra-object field overflow *)
  | Intra_memcpy
  | Under_seq_word    (** contiguous word-wise underflow walk *)
  | Under_far_word    (** layout-aware jump below the buffer start *)

type attack = { technique : technique; loc : target_loc }

val all_attacks : attack list
val attack_name : attack -> string
val technique_name : technique -> string
val loc_name : target_loc -> string

type outcome =
  | Successful          (** the dispatch slot holds the attacker value *)
  | Prevented of string (** faulted / checker raised before corruption *)
  | Failed_silent       (** write landed but missed the shifted target *)

val outcome_name : outcome -> string

val run_attack : Spp_access.variant -> attack -> outcome
val run_attack_volatile : attack -> outcome
(** The same attack against libc-style volatile allocations (Table IV's
    first row): nothing checks anything. *)

type row = {
  row_name : string;
  successful : int;
  prevented : int;
  failed : int;
  details : (attack * outcome) list;
}

val run_row : Spp_access.variant -> row
val run_row_volatile : unit -> row
val run_all : unit -> row list
(** The five Table IV rows: volatile heap, PM pool heap, SafePM, SPP,
    memcheck. *)
