lib/ripe/ripe.mli: Spp_access
