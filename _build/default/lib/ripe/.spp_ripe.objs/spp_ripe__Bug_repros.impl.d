lib/ripe/bug_repros.ml: Heap Pool Spp_access Spp_core Spp_pmdk
