lib/ripe/ripe.ml: Bytes Char Fault Hashtbl List Printf Space Spp_access Spp_memcheck Spp_safepm Spp_sim Vheap
