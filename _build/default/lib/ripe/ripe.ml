(* RIPE-style runtime intrusion prevention evaluator, ported to PM
   (paper §VI-D, Table IV; RIPE64 + the SafePM PM port).

   Each attack tries to corrupt a "dispatch slot" (the stand-in for a
   code pointer) in a target PM object, or to leak a secret word, by
   overflowing a victim buffer. Attacks are executed for real through the
   variant's access layer; outcomes are emergent:

     Successful      the dispatch slot holds the attacker's value (or the
                     secret leaked) — simulated control-flow hijack;
     Prevented       the machine faulted or the checker raised before the
                     corruption landed;
     Failed_silent   the write went through but missed the target (e.g. a
                     layout-naive attack against a redzone-shifted
                     SafePM layout).

   Two sophistication levels mirror real exploit development:
   layout-naive attacks compute offsets against the stock (native PMDK)
   heap layout; layout-aware attacks (the evasion ones: int-to-pointer
   laundering, writes via uninstrumented external code, far jumps with a
   leaked layout) use the actual layout of the hardened binary. *)

open Spp_sim

type target_loc =
  | Adjacent   (* target object allocated right after the victim *)
  | Distant    (* two spacer objects in between *)

type technique =
  | Seq_u8            (* contiguous byte-wise overflow walk *)
  | Seq_word          (* contiguous word-wise overflow walk *)
  | Far_naive_u8      (* single jump to the native-layout target *)
  | Far_naive_word
  | Memcpy_naive      (* overflow through the memcpy intrinsic *)
  | Strcpy_naive      (* overflow through strcpy *)
  | Read_leak_naive   (* out-of-bounds read of the secret *)
  | Far_aware_write   (* layout-aware direct jump *)
  | Far_aware_read
  | Int2ptr_aware     (* pointer laundered through an integer *)
  | External_aware    (* write performed by uninstrumented external code *)
  | Intra_word        (* intra-object field overflow *)
  | Intra_memcpy
  | Under_seq_word    (* contiguous word-wise UNDERflow walk *)
  | Under_far_word    (* layout-aware jump below the buffer start *)

type attack = { technique : technique; loc : target_loc }

let technique_name = function
  | Seq_u8 -> "seq-u8"
  | Seq_word -> "seq-word"
  | Far_naive_u8 -> "far-naive-u8"
  | Far_naive_word -> "far-naive-word"
  | Memcpy_naive -> "memcpy"
  | Strcpy_naive -> "strcpy"
  | Read_leak_naive -> "read-leak"
  | Far_aware_write -> "far-aware-write"
  | Far_aware_read -> "far-aware-read"
  | Int2ptr_aware -> "int2ptr"
  | External_aware -> "external-write"
  | Intra_word -> "intra-object-word"
  | Intra_memcpy -> "intra-object-memcpy"
  | Under_seq_word -> "underflow-seq-word"
  | Under_far_word -> "underflow-far-word"

let loc_name = function Adjacent -> "adjacent" | Distant -> "distant"

let attack_name a =
  Printf.sprintf "%s/%s" (technique_name a.technique) (loc_name a.loc)

let all_attacks =
  let both t = [ { technique = t; loc = Adjacent }; { technique = t; loc = Distant } ] in
  List.concat_map both
    [ Seq_u8; Seq_word; Far_naive_u8; Far_naive_word; Memcpy_naive;
      Strcpy_naive; Read_leak_naive; Far_aware_write; Far_aware_read;
      Int2ptr_aware; External_aware ]
  @ List.concat_map both [ Under_seq_word; Under_far_word ]
  @ [ { technique = Intra_word; loc = Adjacent };
      { technique = Intra_memcpy; loc = Adjacent } ]

type outcome =
  | Successful
  | Prevented of string
  | Failed_silent

let outcome_name = function
  | Successful -> "SUCCESSFUL"
  | Prevented r -> "prevented: " ^ r
  | Failed_silent -> "failed (silent)"

(* Victim/target geometry. *)

let victim_size = 120
(* 120 B sits at the top of the native 128 B class, so SafePM's redzone
   padding (120 + 64 B) spills into the next class and shifts the layout
   of the hardened binary — exactly the property that makes layout-naive
   exploits land in redzones under ASan-style hardening. *)
let dispatch_off = 16         (* dispatch slot inside the target object *)
let secret_off = 24
let attacker_value = 0x4141414141414141 land max_int  (* no NUL bytes *)
let dispatch_init = 0xD15 and secret_value = 0x5EC12E7

type setup = {
  a : Spp_access.t;
  victim : int;           (* application pointer to the victim buffer *)
  victim2 : int;          (* victim with an intra-object dispatch field *)
  target_addr : int;      (* judge's raw address of the target object *)
  target_ptr : int;       (* application pointer to the target object *)
  pre_target_addr : int;  (* raw address of the object BELOW the victim *)
  leak_slot : int;        (* where a read attack exfiltrates the secret *)
}

(* Allocation order fixes the layout: victim, (spacers), target, then
   auxiliary objects that must not shift the victim→target distance. *)
let make_setup variant loc =
  let a = Spp_access.create ~pool_size:(1 lsl 20)
      ~name:(Spp_access.variant_name variant) variant in
  (* an earlier object, the target of underflow attacks *)
  let pre_target_oid = a.Spp_access.palloc victim_size in
  (match loc with
   | Adjacent -> ()
   | Distant ->
     ignore (a.Spp_access.palloc victim_size);
     ignore (a.Spp_access.palloc victim_size));
  let victim_oid = a.Spp_access.palloc victim_size in
  (match loc with
   | Adjacent -> ()
   | Distant ->
     ignore (a.Spp_access.palloc victim_size);
     ignore (a.Spp_access.palloc victim_size));
  let target_oid = a.Spp_access.palloc victim_size in
  let victim2_oid = a.Spp_access.palloc victim_size in
  let leak_oid = a.Spp_access.palloc victim_size in
  let target_ptr = a.Spp_access.direct target_oid in
  let a_space = a.Spp_access.space in
  let target_addr = a.Spp_access.ptr_to_int target_ptr in
  let pre_target_addr =
    a.Spp_access.ptr_to_int (a.Spp_access.direct pre_target_oid)
  in
  (* initialize dispatch + secret through the judge's raw view *)
  Space.store_word a_space (target_addr + dispatch_off) dispatch_init;
  Space.store_word a_space (target_addr + secret_off) secret_value;
  Space.store_word a_space (pre_target_addr + dispatch_off) dispatch_init;
  {
    a;
    victim = a.Spp_access.direct victim_oid;
    victim2 = a.Spp_access.direct victim2_oid;
    target_addr;
    target_ptr;
    pre_target_addr;
    leak_slot = a.Spp_access.direct leak_oid;
  }

(* Native-layout deltas, measured once on the stock binary: what a
   layout-naive exploit hardcodes. *)
let native_deltas = Hashtbl.create 4

let native_delta loc =
  match Hashtbl.find_opt native_deltas loc with
  | Some d -> d
  | None ->
    let s = make_setup Spp_access.Pmdk loc in
    let d = s.target_addr + dispatch_off - s.victim in
    Hashtbl.replace native_deltas loc d;
    d

(* The attack bodies. [delta] is relative to the victim buffer start. *)

let write_far (a : Spp_access.t) victim delta value =
  a.Spp_access.store_word (a.Spp_access.gep victim delta) value

let run_technique s loc =
  let a = s.a in
  let d_naive = native_delta loc in
  let d_real = s.target_addr + dispatch_off - a.Spp_access.ptr_to_int s.victim in
  let d_under =
    s.pre_target_addr + dispatch_off - a.Spp_access.ptr_to_int s.victim
  in
  function
  | Under_seq_word ->
    (* walk downwards word by word; SPP's tag only encodes the upper
       bound (paper §IV-A), so the whole walk stays "valid" for it *)
    let i = ref (-8) in
    while !i > d_under do
      a.Spp_access.store_word (a.Spp_access.gep s.victim !i) 0x4242424242;
      i := !i - 8
    done;
    a.Spp_access.store_word (a.Spp_access.gep s.victim d_under) attacker_value
  | Under_far_word ->
    a.Spp_access.store_word (a.Spp_access.gep s.victim d_under) attacker_value
  | Seq_u8 ->
    for i = 0 to d_naive + 7 do
      let byte =
        if i >= d_naive then (attacker_value lsr (8 * (i - d_naive))) land 0xFF
        else 0x42
      in
      a.Spp_access.store_u8 (a.Spp_access.gep s.victim i) byte
    done
  | Seq_word ->
    let i = ref 0 in
    while !i < d_naive do
      a.Spp_access.store_word (a.Spp_access.gep s.victim !i) 0x4242424242;
      i := !i + 8
    done;
    write_far a s.victim d_naive attacker_value
  | Far_naive_u8 ->
    for b = 0 to 7 do
      a.Spp_access.store_u8
        (a.Spp_access.gep s.victim (d_naive + b))
        ((attacker_value lsr (8 * b)) land 0xFF)
    done
  | Far_naive_word -> write_far a s.victim d_naive attacker_value
  | Memcpy_naive ->
    let len = d_naive + 8 in
    let src_oid = a.Spp_access.palloc len in
    let src = a.Spp_access.direct src_oid in
    let payload = Bytes.make len '\x42' in
    for b = 0 to 7 do
      Bytes.set payload (d_naive + b)
        (Char.chr ((attacker_value lsr (8 * b)) land 0xFF))
    done;
    a.Spp_access.write_bytes src payload;
    a.Spp_access.memcpy ~dst:s.victim ~src ~len
  | Strcpy_naive ->
    let len = d_naive + 8 in
    let src_oid = a.Spp_access.palloc (len + 16) in
    let src = a.Spp_access.direct src_oid in
    let payload = Bytes.make (len + 1) '\x42' in
    for b = 0 to 7 do
      Bytes.set payload (d_naive + b)
        (Char.chr ((attacker_value lsr (8 * b)) land 0xFF))
    done;
    Bytes.set payload len '\x00';
    a.Spp_access.write_bytes src payload;
    a.Spp_access.strcpy ~dst:s.victim ~src
  | Read_leak_naive ->
    let d_secret = d_naive - dispatch_off + secret_off in
    let v = a.Spp_access.load_word (a.Spp_access.gep s.victim d_secret) in
    a.Spp_access.store_word s.leak_slot v
  | Far_aware_write -> write_far a s.victim d_real attacker_value
  | Far_aware_read ->
    let d_secret = d_real - dispatch_off + secret_off in
    let v = a.Spp_access.load_word (a.Spp_access.gep s.victim d_secret) in
    a.Spp_access.store_word s.leak_slot v
  | Int2ptr_aware ->
    (* launder the pointer through an integer: the tag is gone, and the
       resulting access is a plain in-pool address *)
    let raw = a.Spp_access.ptr_to_int s.victim + d_real in
    a.Spp_access.store_word raw attacker_value
  | External_aware ->
    (* the pointer is masked for an external callee, which then writes *)
    let ext = a.Spp_access.for_external (a.Spp_access.gep s.victim d_real) in
    Space.store_word a.Spp_access.space ext attacker_value
  | Intra_word ->
    (* overflow of a 32-byte field into a sibling field of the same
       object — inside the object bounds, invisible to all variants *)
    a.Spp_access.store_word (a.Spp_access.gep s.victim2 48) attacker_value
  | Intra_memcpy ->
    let src_oid = a.Spp_access.palloc 56 in
    let src = a.Spp_access.direct src_oid in
    let payload = Bytes.make 56 '\x42' in
    for b = 0 to 7 do
      Bytes.set payload (48 + b)
        (Char.chr ((attacker_value lsr (8 * b)) land 0xFF))
    done;
    a.Spp_access.write_bytes src payload;
    a.Spp_access.memcpy ~dst:s.victim2 ~src ~len:56

let judge s attack =
  let space = s.a.Spp_access.space in
  match attack.technique with
  | Read_leak_naive | Far_aware_read ->
    let leaked =
      Space.load_word space (s.a.Spp_access.ptr_to_int s.leak_slot)
    in
    if leaked = secret_value then Successful else Failed_silent
  | Under_seq_word | Under_far_word ->
    let v = Space.load_word space (s.pre_target_addr + dispatch_off) in
    if v = attacker_value then Successful else Failed_silent
  | Intra_word | Intra_memcpy ->
    let v =
      Space.load_word space (s.a.Spp_access.ptr_to_int s.victim2 + 48)
    in
    if v = attacker_value then Successful else Failed_silent
  | Seq_u8 | Seq_word | Far_naive_u8 | Far_naive_word | Memcpy_naive
  | Strcpy_naive | Far_aware_write | Int2ptr_aware | External_aware ->
    let v = Space.load_word space (s.target_addr + dispatch_off) in
    if v = attacker_value then Successful else Failed_silent

let run_attack variant attack =
  let s = make_setup variant attack.loc in
  match run_technique s attack.loc attack.technique with
  | () -> judge s attack
  | exception Fault.Fault (k, addr) ->
    Prevented (Printf.sprintf "%s at 0x%x" (Fault.kind_to_string k) addr)
  | exception Spp_safepm.Violation { kind; _ } -> Prevented ("SafePM: " ^ kind)
  | exception Spp_memcheck.Violation _ -> Prevented "memcheck: invalid access"

(* The volatile-heap row of Table IV: the same attacks against libc-style
   volatile allocations — nothing checks anything, every attack lands. *)

let run_attack_volatile attack =
  let space = Space.create () in
  let h = Vheap.create space (1 lsl 20) in
  let pre_target = Vheap.malloc h victim_size in
  (match attack.loc with
   | Adjacent -> ()
   | Distant ->
     ignore (Vheap.malloc h victim_size);
     ignore (Vheap.malloc h victim_size));
  let victim = Vheap.malloc h victim_size in
  (match attack.loc with
   | Adjacent -> ()
   | Distant ->
     ignore (Vheap.malloc h victim_size);
     ignore (Vheap.malloc h victim_size));
  let target = Vheap.malloc h victim_size in
  let victim2 = Vheap.malloc h victim_size in
  let leak = Vheap.malloc h victim_size in
  Space.store_word space (target + dispatch_off) dispatch_init;
  Space.store_word space (target + secret_off) secret_value;
  Space.store_word space (pre_target + dispatch_off) dispatch_init;
  let delta = target + dispatch_off - victim in
  (match attack.technique with
   | Under_seq_word | Under_far_word ->
     Space.store_word space (pre_target + dispatch_off) attacker_value
   | Read_leak_naive | Far_aware_read ->
     let v = Space.load_word space (victim + delta - dispatch_off + secret_off) in
     Space.store_word space leak v
   | Intra_word | Intra_memcpy ->
     Space.store_word space (victim2 + 48) attacker_value
   | Seq_u8 | Seq_word | Far_naive_u8 | Far_naive_word | Memcpy_naive
   | Strcpy_naive | Far_aware_write | Int2ptr_aware | External_aware ->
     Space.store_word space (victim + delta) attacker_value);
  match attack.technique with
  | Under_seq_word | Under_far_word ->
    if Space.load_word space (pre_target + dispatch_off) = attacker_value then
      Successful
    else Failed_silent
  | Read_leak_naive | Far_aware_read ->
    if Space.load_word space leak = secret_value then Successful
    else Failed_silent
  | Intra_word | Intra_memcpy ->
    if Space.load_word space (victim2 + 48) = attacker_value then Successful
    else Failed_silent
  | Seq_u8 | Seq_word | Far_naive_u8 | Far_naive_word | Memcpy_naive
  | Strcpy_naive | Far_aware_write | Int2ptr_aware | External_aware ->
    if Space.load_word space (target + dispatch_off) = attacker_value then
      Successful
    else Failed_silent

(* Table IV rows. *)

type row = {
  row_name : string;
  successful : int;
  prevented : int;
  failed : int;
  details : (attack * outcome) list;
}

let tally row_name outcomes =
  let successful =
    List.length (List.filter (fun (_, o) -> o = Successful) outcomes)
  in
  let prevented =
    List.length
      (List.filter (fun (_, o) -> match o with Prevented _ -> true | _ -> false)
         outcomes)
  in
  let failed =
    List.length (List.filter (fun (_, o) -> o = Failed_silent) outcomes)
  in
  { row_name; successful; prevented; failed; details = outcomes }

let run_row_volatile () =
  tally "Volatile heap"
    (List.map (fun at -> (at, run_attack_volatile at)) all_attacks)

let run_row variant =
  let name =
    match variant with
    | Spp_access.Pmdk -> "PM pool heap"
    | Spp_access.Spp -> "SPP"
    | Spp_access.Safepm -> "SafePM"
    | Spp_access.Memcheck -> "memcheck"
    | Spp_access.Spp_all -> "SPP (volatile too)"
  in
  tally name (List.map (fun at -> (at, run_attack variant at)) all_attacks)

let run_all () =
  run_row_volatile ()
  :: List.map run_row
       [ Spp_access.Pmdk; Spp_access.Safepm; Spp_access.Spp;
         Spp_access.Memcheck ]
