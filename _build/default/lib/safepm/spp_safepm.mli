(** SafePM baseline (Bozdoğan et al., EuroSys'22) — the paper's
    state-of-the-art comparator (§II-D, Table I).

    ASan-style shadow memory on PM: one persistent shadow byte per 8 pool
    bytes, redzones around every allocation, and a shadow lookup on every
    access. The shadow lives inside the pool and is persisted with
    allocator operations, so safety metadata survives crashes — at the
    cost of an extra PM load per access and redzone space, which is the
    overhead gap SPP's evaluation exploits. *)

open Spp_pmdk

exception Violation of { addr : int; len : int; kind : string }

val redzone : int
val shadow_scale : int

type t

val attach_fresh : Pool.t -> t
(** Reserve and poison the shadow block (must be the pool's first
    allocation). *)

val attach_existing : Pool.t -> t
(** Recompute the shadow placement on a reopened pool; the durable shadow
    contents are already in PM. *)

val check : t -> int -> int -> unit
(** [check t addr len] validates an access; raises {!Violation}. *)

val alloc : ?zero:bool -> t -> size:int -> Oid.t
(** Redzone-padded allocation; the returned oid points at the user
    range. *)

val free : t -> Oid.t -> unit
val realloc : t -> Oid.t -> size:int -> Oid.t

val tx_alloc : ?zero:bool -> t -> size:int -> Oid.t
(** Transactional redzoned allocation; the shadow updates are snapshotted
    in the undo log, so abort/crash rolls the safety metadata back too. *)

val tx_free : t -> Oid.t -> unit
val user_size : t -> Oid.t -> int

val poison : t -> off:int -> len:int -> unit
val unpoison : t -> off:int -> len:int -> unit

val checks_performed : t -> int
val shadow_pm_bytes : t -> int
val pool : t -> Pool.t
