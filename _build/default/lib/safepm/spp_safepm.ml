(* SafePM baseline (Bozdoğan et al., EuroSys'22) — the paper's
   state-of-the-art comparator (§II-D, Table I).

   SafePM is an ASan-style shadow-memory sanitizer for PM: a portion of
   the pool is reserved for persistent shadow bytes (1 shadow byte per 8
   pool bytes), allocations are padded with poisoned redzones, and every
   load/store consults the shadow. The shadow lives in PM and is persisted
   with allocator operations, so memory-safety metadata survives crashes.

   The cost structure this reproduces: every application access performs
   at least one extra PM (shadow) load, and every allocation pays redzone
   space plus shadow maintenance — versus SPP's pure register arithmetic
   and 8-byte-per-PMEMoid overhead. *)

open Spp_sim
open Spp_pmdk

exception Violation of { addr : int; len : int; kind : string }

let () =
  Printexc.register_printer (function
    | Violation { addr; len; kind } ->
      Some (Printf.sprintf
              "SafePM: %s violation on access of %d bytes at 0x%x" kind len addr)
    | _ -> None)

let redzone = 32
(* Bytes of poison on each side of every allocation; multiple of the
   8-byte shadow granularity. *)

let shadow_scale = 8

type t = {
  pool : Pool.t;
  shadow_off : int;       (* pool offset of the shadow block *)
  shadow_size : int;
  mutable checks : int;   (* accesses validated *)
}

(* Shadow byte semantics (ASan): 0 = granule fully addressable,
   1..7 = only the first k bytes addressable, 0xFF = poisoned. *)

let poisoned = 0xFF

let shadow_index off = off / shadow_scale

let shadow_bytes_for_pool pool_size =
  (pool_size + shadow_scale - 1) / shadow_scale

(* The shadow block is the first allocation in the pool, so its offset is
   deterministic and can be recomputed when the pool is reopened. *)

let shadow_addr t idx = Pool.addr_of_off t.pool (t.shadow_off + idx)

let set_shadow t ~off ~len v =
  if len > 0 then begin
    let first = shadow_index off in
    let last = shadow_index (off + len - 1) in
    for i = first to last do
      Space.store_u8 (Pool.space t.pool) (shadow_addr t i) v
    done;
    Space.persist (Pool.space t.pool) (shadow_addr t first) (last - first + 1)
  end

(* Shadow bytes are ordinary pool data: when mutated inside a transaction
   they are snapshotted first, so an abort (or crash) rolls the safety
   metadata back together with the data — SafePM's crash-consistency
   discipline. *)
let tx_guard_shadow t ~off ~len =
  if len > 0 && Pool.in_tx t.pool then begin
    let first = shadow_index off and last = shadow_index (off + len - 1) in
    Pool.tx_add_range t.pool ~off:(t.shadow_off + first) ~len:(last - first + 1)
  end

(* Unpoison [off, off+len): full granules 0, the trailing partial granule
   records how many leading bytes are valid. *)
let unpoison t ~off ~len =
  tx_guard_shadow t ~off ~len;
  let first = shadow_index off in
  let last = shadow_index (off + len - 1) in
  for i = first to last do
    Space.store_u8 (Pool.space t.pool) (shadow_addr t i) 0
  done;
  let tail = (off + len) land (shadow_scale - 1) in
  if tail <> 0 then
    Space.store_u8 (Pool.space t.pool) (shadow_addr t last) tail;
  Space.persist (Pool.space t.pool) (shadow_addr t first) (last - first + 1)

let poison t ~off ~len =
  tx_guard_shadow t ~off ~len;
  set_shadow t ~off ~len poisoned

let attach_fresh pool =
  let shadow_size = shadow_bytes_for_pool (Pool.size pool) in
  let oid = Pool.alloc pool ~size:shadow_size in
  let t = { pool; shadow_off = oid.Oid.off; shadow_size; checks = 0 } in
  (* Everything starts poisoned; the allocator unpoisons user data. *)
  poison t ~off:0 ~len:(Pool.size pool);
  t

let attach_existing pool =
  (* Recompute the deterministic placement of the first allocation. *)
  let shadow_size = shadow_bytes_for_pool (Pool.size pool) in
  let shadow_off = Pool.heap_base pool + Rep.block_header_size in
  { pool; shadow_off; shadow_size; checks = 0 }

(* The access check: every granule the access touches must be
   addressable. This is the per-ld/st shadow lookup — an actual extra PM
   load in the simulator, reproducing SafePM's dominant runtime cost. *)

let check t addr len =
  t.checks <- t.checks + 1;
  let off = Pool.off_of_addr t.pool addr in
  if off < 0 || off + len > Pool.size t.pool then
    raise (Violation { addr; len; kind = "out-of-pool" });
  let space = Pool.space t.pool in
  let first = shadow_index off in
  let last = shadow_index (off + len - 1) in
  for i = first to last do
    let s = Space.load_u8 space (shadow_addr t i) in
    if s <> 0 then begin
      if s = poisoned then
        raise (Violation { addr; len; kind = "poisoned (redzone or freed)" });
      (* partial granule: valid bytes are [granule, granule + s) *)
      let granule = i * shadow_scale in
      let hi = min (off + len) (granule + shadow_scale) in
      if hi > granule + s then
        raise (Violation { addr; len; kind = "partial-granule overflow" })
    end
  done

(* Allocator wrappers: pad with redzones, maintain the shadow. The oid
   handed to the application points at the user range. *)

(* The right redzone must start at a shadow-granule boundary, or its
   poisoning would clobber the partial-granule byte that makes the tail
   of an unaligned object addressable (ASan aligns redzones the same
   way). *)
let apply_zones t ~under_off ~user_off ~size =
  poison t ~off:under_off ~len:redzone;
  unpoison t ~off:user_off ~len:size;
  let right = (user_off + size + shadow_scale - 1) / shadow_scale * shadow_scale in
  poison t ~off:right ~len:(user_off + size + redzone - right)

let alloc ?(zero = false) t ~size =
  let under = Pool.alloc ~zero t.pool ~size:(size + (2 * redzone)) in
  let user_off = under.Oid.off + redzone in
  apply_zones t ~under_off:under.Oid.off ~user_off ~size;
  { Oid.uuid = under.Oid.uuid; off = user_off; size }

let underlying_oid t (oid : Oid.t) =
  let under_off = oid.Oid.off - redzone in
  let probe = { Oid.uuid = oid.Oid.uuid; off = under_off; size = 0 } in
  { probe with Oid.size = Pool.alloc_size t.pool probe }

let user_size t (oid : Oid.t) =
  (underlying_oid t oid).Oid.size - (2 * redzone)

let free t (oid : Oid.t) =
  let under = underlying_oid t oid in
  poison t ~off:oid.Oid.off ~len:(user_size t oid);
  Pool.free_ t.pool { under with Oid.size = 0 }

(* Transactional variants: same redzone/shadow discipline over the pool's
   tx allocator. *)

let tx_alloc ?(zero = false) t ~size =
  let under = Pool.tx_alloc ~zero t.pool ~size:(size + (2 * redzone)) in
  let user_off = under.Oid.off + redzone in
  apply_zones t ~under_off:under.Oid.off ~user_off ~size;
  { Oid.uuid = under.Oid.uuid; off = user_off; size }

let tx_free t (oid : Oid.t) =
  if not (Oid.is_null oid) then begin
    let under = underlying_oid t oid in
    poison t ~off:oid.Oid.off ~len:(user_size t oid);
    Pool.tx_free t.pool { under with Oid.size = 0 }
  end

let realloc t (oid : Oid.t) ~size =
  if Oid.is_null oid then alloc t ~size
  else begin
    let old_size = user_size t oid in
    let fresh = alloc t ~size in
    Space.blit (Pool.space t.pool)
      ~src:(Pool.addr_of_off t.pool oid.Oid.off)
      ~dst:(Pool.addr_of_off t.pool fresh.Oid.off)
      ~len:(min old_size size);
    free t oid;
    fresh
  end

let checks_performed t = t.checks
let shadow_pm_bytes t = t.shadow_size
let pool t = t.pool
