(** Redo log: atomic application of a batch of word writes (paper §IV-F).

    Write entries + count, persist; set the valid flag, persist; apply in
    order; clear the flag. A crash before the flag is durable loses the
    whole batch; after it, {!recover} re-applies the idempotent entries.
    Entry order is significant: SPP relies on the oid size entry
    preceding the offset entry. *)

exception Redo_full

val run : Rep.t -> (int * int) list -> unit
(** [(pool offset, value)] pairs, applied atomically. *)

val recover : Rep.t -> bool
(** Returns [true] when a valid log was replayed. *)
