(** Pool operating mode: native PMDK or the SPP-adapted PMDK. *)

type t =
  | Native
  | Spp of Spp_core.Config.t

val is_spp : t -> bool

val oid_stored_size : t -> int
(** Bytes a PMEMoid occupies in PM: 16 native, 24 SPP — the size field is
    SPP's only PM space overhead (paper §IV-B). *)

val to_string : t -> string
