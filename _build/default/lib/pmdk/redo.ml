(* Redo log: atomic application of a batch of word writes (paper §IV-F).

   Protocol: write the entries and their count, persist; set the valid
   flag, persist; apply the entries in order, persist; clear the valid
   flag. A crash before the valid flag is durable loses the whole batch;
   a crash after it is recovered by re-applying the (idempotent) entries
   on open. Entry order is significant: SPP relies on the oid [size]
   entry preceding the [off] entry. *)

exception Redo_full

let run (t : Rep.t) entries =
  let n = List.length entries in
  if n > Rep.redo_capacity then raise Redo_full;
  List.iteri
    (fun i (off, v) ->
      Rep.store t (Rep.off_redo_entries + (16 * i)) off;
      Rep.store t (Rep.off_redo_entries + (16 * i) + 8) v)
    entries;
  Rep.store t Rep.off_redo_n n;
  Rep.persist t Rep.off_redo_n (8 + (16 * n));
  Rep.store_p t Rep.off_redo_valid 1;
  List.iter
    (fun (off, v) ->
      Rep.store t off v;
      Rep.persist t off 8)
    entries;
  Rep.store_p t Rep.off_redo_valid 0

let recover (t : Rep.t) =
  if Rep.load t Rep.off_redo_valid = 1 then begin
    let n = Rep.load t Rep.off_redo_n in
    for i = 0 to n - 1 do
      let off = Rep.load t (Rep.off_redo_entries + (16 * i)) in
      let v = Rep.load t (Rep.off_redo_entries + (16 * i) + 8) in
      Rep.store t off v;
      Rep.persist t off 8
    done;
    Rep.store_p t Rep.off_redo_valid 0;
    true
  end else false
