(** Pool inspection and integrity checking — the [pmempool info] /
    [pmempool check] analogue.

    {!check} walks every heap structure and validates the invariants the
    crash-consistency protocol maintains: block headers, freelist
    well-formedness, root validity, quiescent logs. Used by tests and the
    crash-state explorer as a whole-pool consistency predicate. *)

type issue =
  | Bad_magic
  | Bump_out_of_range of int
  | Bad_block_header of { data_off : int; state : int }
  | Freelist_cycle of { class_index : int }
  | Freelist_bad_link of { class_index : int; link : int }
  | Freelist_wrong_state of { class_index : int; data_off : int }
  | Root_invalid of Oid.t
  | Redo_log_active
  | Tx_lane_active

val issue_to_string : issue -> string

type info = {
  i_uuid : int;
  i_mode : string;
  i_pool_size : int;
  i_heap_base : int;
  i_heap_used : int;
  i_stats : Heap.stats;
  i_tx_state : int;
  i_redo_valid : bool;
}

val info : Pool.t -> info
val pp_info : Format.formatter -> info -> unit

val check : Pool.t -> issue list
(** Empty list = the pool passes every integrity check. *)

val is_consistent : Pool.t -> bool
