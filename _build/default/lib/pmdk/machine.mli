(** A "machine": one simulated address space with a volatile heap and any
    number of PM pools, with uuid-based pool resolution — the reason
    PMEMoids carry a pool id at all (paper §II-B).

    Pools are mapped one after another in the lower address space
    (matching the paper's [PMEM_MMAP_HINT=0] layout); the volatile heap
    lives high. *)

open Spp_sim

type t

val create : ?vheap_size:int -> unit -> t
val space : t -> Space.t
val vheap : t -> Vheap.t
val pools : t -> Pool.t list

val create_pool : t -> size:int -> mode:Mode.t -> name:string -> Pool.t
val open_pool : t -> Memdev.t -> Pool.t
(** Map an existing pool device at the next free base and run recovery. *)

val pool_of_uuid : t -> int -> Pool.t option
val pool_of_oid : t -> Oid.t -> Pool.t option

val direct : t -> Oid.t -> int
(** [pmemobj_direct] across all mapped pools: dispatches on the oid's
    uuid; raises {!Pool.Wrong_pool} for an unknown pool. *)

val close_pool : t -> Pool.t -> unit

val first_pool_base : int
