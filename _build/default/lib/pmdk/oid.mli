(** PMEMoid — the persistent pointer (paper §II-B, §IV-B).

    Native PMDK stores [{ pool_uuid; off }] (16 B); SPP adds the object
    [size] (24 B), which is what lets [pmemobj_direct] rebuild the pointer
    tag across restarts and crashes. The [size] field exists in the record
    in both modes but reaches PM only in SPP mode. *)

type t = {
  uuid : int;
  off : int;
  size : int;
}

val null : t
val is_null : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
