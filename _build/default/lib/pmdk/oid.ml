(* PMEMoid — the persistent pointer (paper §II-B, §IV-B).

   Native PMDK stores { pool_uuid; off } (16 B). SPP extends it with the
   object size (24 B); the extra field is what lets pmemobj_direct rebuild
   the pointer tag across restarts and crashes. The [size] field is kept
   in the record in both modes but only stored to PM in SPP mode — see
   [Rep.store_oid]. *)

type t = {
  uuid : int;   (* pool id *)
  off : int;    (* object offset relative to the pool base *)
  size : int;   (* object size; durable only in SPP mode *)
}

let null = { uuid = 0; off = 0; size = 0 }

let is_null t = t.off = 0

let equal a b = a.uuid = b.uuid && a.off = b.off

let compare a b =
  match compare a.uuid b.uuid with
  | 0 -> compare a.off b.off
  | c -> c

let pp ppf t =
  if is_null t then Format.pp_print_string ppf "OID_NULL"
  else Format.fprintf ppf "{uuid=%d; off=0x%x; size=%d}" t.uuid t.off t.size
