(* Pool operating mode: native PMDK or the SPP-adapted PMDK. *)

type t =
  | Native
  | Spp of Spp_core.Config.t

let is_spp = function Native -> false | Spp _ -> true

let oid_stored_size = function
  | Native -> 16   (* uuid + off *)
  | Spp _ -> 24    (* uuid + off + size: SPP's only PM space overhead *)

let to_string = function
  | Native -> "pmdk"
  | Spp cfg -> Printf.sprintf "spp(tag=%d)" (Spp_core.Config.tag_bits cfg)
