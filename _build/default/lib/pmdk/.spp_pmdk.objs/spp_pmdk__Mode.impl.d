lib/pmdk/mode.ml: Printf Spp_core
