lib/pmdk/machine.mli: Memdev Mode Oid Pool Space Spp_sim Vheap
