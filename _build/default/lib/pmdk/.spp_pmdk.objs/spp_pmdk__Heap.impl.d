lib/pmdk/heap.ml: Mode Oid Redo Rep Spp_core Spp_sim
