lib/pmdk/rep.ml: Array List Memdev Mode Mutex Oid Printf Space Spp_sim
