lib/pmdk/inspect.ml: Format Hashtbl Heap List Mode Oid Pool Printf Rep
