lib/pmdk/tx.mli: Bytes Oid Rep
