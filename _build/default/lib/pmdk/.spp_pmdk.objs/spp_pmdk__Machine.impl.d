lib/pmdk/machine.ml: List Memdev Oid Pool Space Spp_sim Vheap
