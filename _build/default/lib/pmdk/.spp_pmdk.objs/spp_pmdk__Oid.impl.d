lib/pmdk/oid.ml: Format
