lib/pmdk/mode.mli: Spp_core
