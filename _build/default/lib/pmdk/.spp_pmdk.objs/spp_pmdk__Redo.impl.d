lib/pmdk/redo.ml: List Rep
