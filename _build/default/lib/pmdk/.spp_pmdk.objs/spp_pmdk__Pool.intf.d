lib/pmdk/pool.mli: Heap Memdev Mode Oid Space Spp_sim
