lib/pmdk/tx.ml: Bytes Heap List Oid Printf Rep Space Spp_sim
