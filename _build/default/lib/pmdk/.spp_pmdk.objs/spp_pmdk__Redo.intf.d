lib/pmdk/redo.mli: Rep
