lib/pmdk/pool.ml: Fun Heap Memdev Mode Mutex Oid Printf Redo Rep Space Spp_core Spp_sim Tx
