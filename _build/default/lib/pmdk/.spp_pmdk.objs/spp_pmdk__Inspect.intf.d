lib/pmdk/inspect.mli: Format Heap Oid Pool
