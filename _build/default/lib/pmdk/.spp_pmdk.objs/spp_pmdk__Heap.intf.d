lib/pmdk/heap.mli: Oid Rep
