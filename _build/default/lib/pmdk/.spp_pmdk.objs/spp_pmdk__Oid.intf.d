lib/pmdk/oid.mli: Format
