(** Software transactions with a persistent undo log (paper §II-B,
    §IV-F). Internal to the pool facade; use {!Pool} from application
    code (it adds locking).

    Snapshot records hold the pre-image of a range; alloc records roll
    back published allocations on abort/crash; free records defer the
    free to commit. A record is valid only once the persisted
    [ulog_used] covers it. Crash while ACTIVE → rollback; crash while
    COMMITTING → the deferred frees are (idempotently) finished. *)

exception Tx_log_full
exception Not_in_tx
exception Tx_aborted

val in_tx : Rep.t -> bool
val tx_begin : Rep.t -> unit
val add_range : Rep.t -> off:int -> len:int -> unit
val add_range_oid : Rep.t -> Oid.t -> unit
val alloc : Rep.t -> ?zero:bool -> size:int -> unit -> Oid.t
val realloc : Rep.t -> Oid.t -> size:int -> Oid.t
val free : Rep.t -> Oid.t -> unit
val tx_commit : Rep.t -> unit
val tx_abort : Rep.t -> unit

val recover : Rep.t -> [ `Clean | `Rolled_back | `Completed_commit ]
(** Open-time recovery, after {!Redo.recover}. *)

(**/**)

type record =
  | Snapshot of { off : int; len : int; data : Bytes.t }
  | Alloc_rec of { data_off : int }
  | Free_rec of { data_off : int }

val parse_log : Rep.t -> record list
val rollback : Rep.t -> unit
