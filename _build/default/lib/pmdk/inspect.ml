(* Pool inspection and integrity checking — the pmempool info / pmempool
   check analogue.

   [info] summarizes the header, logs and heap; [check] walks every heap
   structure and validates the invariants the crash-consistency protocol
   is supposed to maintain:

     - the bump pointer stays within the pool and on a block boundary;
     - every carved block has a sane class and state word;
     - freelists are acyclic, stay within the carved area, and only link
       blocks whose headers say free;
     - no block is simultaneously free-listed and allocated;
     - the root oid (when set) points at a live block of this pool;
     - redo log and transaction lane are quiescent (after recovery). *)

type issue =
  | Bad_magic
  | Bump_out_of_range of int
  | Bad_block_header of { data_off : int; state : int }
  | Freelist_cycle of { class_index : int }
  | Freelist_bad_link of { class_index : int; link : int }
  | Freelist_wrong_state of { class_index : int; data_off : int }
  | Root_invalid of Oid.t
  | Redo_log_active
  | Tx_lane_active

let issue_to_string = function
  | Bad_magic -> "bad pool magic"
  | Bump_out_of_range b -> Printf.sprintf "heap bump 0x%x out of range" b
  | Bad_block_header { data_off; state } ->
    Printf.sprintf "bad block header at 0x%x (state 0x%x)" data_off state
  | Freelist_cycle { class_index } ->
    Printf.sprintf "freelist cycle in class %d" class_index
  | Freelist_bad_link { class_index; link } ->
    Printf.sprintf "freelist of class %d links outside the heap (0x%x)"
      class_index link
  | Freelist_wrong_state { class_index; data_off } ->
    Printf.sprintf "freelist of class %d holds a non-free block at 0x%x"
      class_index data_off
  | Root_invalid oid ->
    Format.asprintf "root oid %a does not name a live block" Oid.pp oid
  | Redo_log_active -> "redo log valid flag still set"
  | Tx_lane_active -> "transaction lane not idle"

type info = {
  i_uuid : int;
  i_mode : string;
  i_pool_size : int;
  i_heap_base : int;
  i_heap_used : int;
  i_stats : Heap.stats;
  i_tx_state : int;
  i_redo_valid : bool;
}

let info (t : Pool.t) =
  {
    i_uuid = Pool.uuid t;
    i_mode = Mode.to_string (Pool.mode t);
    i_pool_size = Pool.size t;
    i_heap_base = Pool.heap_base t;
    i_heap_used = (Pool.heap_stats t).Heap.heap_used;
    i_stats = Pool.heap_stats t;
    i_tx_state = Pool.load_word t ~off:Rep.off_tx_state;
    i_redo_valid = Pool.load_word t ~off:Rep.off_redo_valid <> 0;
  }

let pp_info ppf i =
  Format.fprintf ppf
    "pool uuid=%d mode=%s size=%d B@ heap: base=0x%x used=%d B, %d live / %d \
     free blocks (%d B allocated, %d B requested)@ tx lane: %s, redo: %s"
    i.i_uuid i.i_mode i.i_pool_size i.i_heap_base i.i_heap_used
    i.i_stats.Heap.allocated_blocks i.i_stats.Heap.free_blocks
    i.i_stats.Heap.allocated_bytes i.i_stats.Heap.requested_bytes
    (if i.i_tx_state = 0 then "idle" else "ACTIVE")
    (if i.i_redo_valid then "VALID (unreplayed)" else "clear")

(* Walk all carved blocks, building data_off -> state. *)
let walk_blocks (t : Pool.t) =
  let bump = Pool.load_word t ~off:Rep.off_heap_bump in
  let blocks = Hashtbl.create 256 in
  let issues = ref [] in
  let rec go off =
    if off < bump then begin
      let data_off = off + Rep.block_header_size in
      let state = Pool.load_word t ~off:(off + 8) in
      let ci = Rep.state_class state in
      if ci < 0 || ci >= Rep.n_classes then
        issues := Bad_block_header { data_off; state } :: !issues
      else begin
        Hashtbl.replace blocks data_off state;
        go (off + Rep.block_header_size + Rep.class_size ci)
      end
    end
  in
  go (Pool.heap_base t);
  (blocks, bump, !issues)

let check (t : Pool.t) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if Pool.load_word t ~off:Rep.off_magic <> Rep.magic then add Bad_magic;
  let blocks, bump, block_issues = walk_blocks t in
  issues := block_issues @ !issues;
  if bump < Pool.heap_base t || bump > Pool.size t then
    add (Bump_out_of_range bump);
  (* freelists *)
  for ci = 0 to Rep.n_classes - 1 do
    let seen = Hashtbl.create 16 in
    let rec follow link =
      if link <> 0 then begin
        if Hashtbl.mem seen link then add (Freelist_cycle { class_index = ci })
        else begin
          Hashtbl.replace seen link ();
          match Hashtbl.find_opt blocks link with
          | None -> add (Freelist_bad_link { class_index = ci; link })
          | Some state ->
            if Rep.state_is_allocated state then
              add (Freelist_wrong_state { class_index = ci; data_off = link })
            else
              follow (Pool.load_word t ~off:(link - Rep.block_header_size))
        end
      end
    in
    follow (Pool.load_word t ~off:(Rep.freelist_off ci))
  done;
  (* root *)
  let root = Pool.root_oid t in
  if not (Oid.is_null root) then begin
    match Hashtbl.find_opt blocks root.Oid.off with
    | Some state
      when Rep.state_is_allocated state && root.Oid.uuid = Pool.uuid t -> ()
    | Some _ | None -> add (Root_invalid root)
  end;
  (* logs must be quiescent after recovery *)
  if Pool.load_word t ~off:Rep.off_redo_valid <> 0 then add Redo_log_active;
  if Pool.load_word t ~off:Rep.off_tx_state <> Rep.tx_idle then
    add Tx_lane_active;
  List.rev !issues

let is_consistent t = check t = []
