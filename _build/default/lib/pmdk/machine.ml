(* A "machine": one simulated address space with a volatile heap and any
   number of PM pools, with uuid-based pool resolution.

   This is why PMEMoids carry a pool uuid at all (paper §II-B): an
   application may map several pools, each at a different base across
   runs, and pmemobj_direct must dispatch on the oid's pool. Pools are
   mapped to the lower part of the address space, one after another
   (PMEM_MMAP_HINT = 0 in the paper's configuration); the volatile heap
   lives high. *)

open Spp_sim

type t = {
  space : Space.t;
  vheap : Vheap.t;
  mutable pools : (int * Pool.t) list;   (* uuid -> pool *)
  mutable next_base : int;
}

let first_pool_base = 4096

let create ?(vheap_size = 1 lsl 22) () =
  let space = Space.create () in
  let vheap = Vheap.create space vheap_size in
  { space; vheap; pools = []; next_base = first_pool_base }

let space t = t.space
let vheap t = t.vheap
let pools t = List.map snd t.pools

let register t pool =
  t.pools <- (Pool.uuid pool, pool) :: t.pools

let create_pool t ~size ~mode ~name =
  let base = t.next_base in
  let pool = Pool.create t.space ~base ~size ~mode ~name in
  t.next_base <- base + size + 4096;   (* guard gap between pools *)
  register t pool;
  pool

let open_pool t dev =
  let base = t.next_base in
  let pool = Pool.of_dev t.space ~base dev in
  t.next_base <- base + Memdev.size dev + 4096;
  register t pool;
  pool

let pool_of_uuid t uuid = List.assoc_opt uuid t.pools

let pool_of_oid t (oid : Oid.t) =
  if Oid.is_null oid then None else pool_of_uuid t oid.Oid.uuid

(* pmemobj_direct over every mapped pool: dispatch on the oid's uuid. *)
let direct t (oid : Oid.t) =
  if Oid.is_null oid then 0
  else
    match pool_of_uuid t oid.Oid.uuid with
    | Some pool -> Pool.direct pool oid
    | None -> raise (Pool.Wrong_pool oid)

let close_pool t pool =
  Pool.close pool;
  t.pools <- List.filter (fun (u, _) -> u <> Pool.uuid pool) t.pools
