(* Pool facade — the libpmemobj-equivalent public API.

   Functions mirror PMDK: [alloc]/[free_]/[realloc] are the atomic API,
   [with_tx]/[tx_add_range]/[tx_alloc]/[tx_free] the transactional one,
   [direct] is pmemobj_direct, [root] is pmemobj_root. A single pool lock
   serializes heap and transaction operations (PMDK's runtime does the
   same for allocator metadata); plain data loads/stores are issued by the
   application through the access layer and are not serialized here. *)

open Spp_sim

type t = Rep.t

exception Wrong_pool of Oid.t

let uuid_counter = ref 0x1000

let next_uuid () =
  incr uuid_counter;
  !uuid_counter

let check_span ~base ~size mode =
  match mode with
  | Mode.Native -> ()
  | Mode.Spp cfg ->
    if base + size > Spp_core.Config.max_pool_span cfg then
      invalid_arg
        (Printf.sprintf
           "Pool: pool [0x%x, 0x%x) exceeds the %d-bit address span of the \
            SPP tag configuration"
           base (base + size) (Spp_core.Config.addr_bits cfg))

let make_rep space dev ~base ~size ~mode ~uuid =
  let ulog_cap = Rep.ulog_cap_for_pool_size size in
  { Rep.space; dev; base; psize = size; mode; uuid; ulog_cap;
    heap_base = Rep.heap_base_for ~ulog_cap;
    lock = Mutex.create ();
    tx_lock = Mutex.create ();
    tx_ranges = []; tx_deferred_free = []; tx_depth = 0 }

let create space ~base ~size ~mode ~name =
  check_span ~base ~size mode;
  let dev = Memdev.create_persistent ~name size in
  Space.map space ~base ~size ~kind:Space.Persistent ~name dev;
  let uuid = next_uuid () in
  let t = make_rep space dev ~base ~size ~mode ~uuid in
  Rep.store t Rep.off_magic Rep.magic;
  Rep.store t Rep.off_uuid uuid;
  Rep.store t Rep.off_pool_size size;
  Rep.store t Rep.off_mode (if Mode.is_spp mode then 1 else 0);
  Rep.store t Rep.off_tag_bits
    (match mode with
     | Mode.Native -> 0
     | Mode.Spp cfg -> Spp_core.Config.tag_bits cfg);
  Rep.store t Rep.off_heap_bump t.Rep.heap_base;
  Rep.store_oid t Rep.off_root Oid.null;
  for ci = 0 to Rep.n_classes - 1 do
    Rep.store t (Rep.freelist_off ci) 0
  done;
  Rep.store t Rep.off_redo_valid 0;
  Rep.store t Rep.off_tx_state Rep.tx_idle;
  Rep.store t Rep.off_ulog_used 0;
  Rep.persist t 0 t.Rep.heap_base;
  t

type recovery_report = {
  redo_replayed : bool;
  tx_outcome : [ `Clean | `Rolled_back | `Completed_commit ];
}

let recover (t : Rep.t) =
  t.Rep.tx_depth <- 0;
  t.Rep.tx_ranges <- [];
  t.Rep.tx_deferred_free <- [];
  let redo_replayed = Redo.recover t in
  let tx_outcome = Tx.recover t in
  { redo_replayed; tx_outcome }

let of_dev space ~base dev =
  let size = Memdev.size dev in
  let probe = make_rep space dev ~base ~size ~mode:Mode.Native ~uuid:0 in
  (* The header must be readable before we know mode/uuid; map first. *)
  Space.map space ~base ~size ~kind:Space.Persistent
    ~name:(Memdev.name dev) dev;
  if Rep.load probe Rep.off_magic <> Rep.magic then
    invalid_arg "Pool.of_dev: bad magic (not a pool)";
  let mode =
    if Rep.load probe Rep.off_mode = 0 then Mode.Native
    else Mode.Spp (Spp_core.Config.make
                     ~tag_bits:(Rep.load probe Rep.off_tag_bits))
  in
  let uuid = Rep.load probe Rep.off_uuid in
  check_span ~base ~size mode;
  let t = make_rep space dev ~base ~size ~mode ~uuid in
  let (_ : recovery_report) = recover t in
  t

let crash_and_recover (t : Rep.t) =
  (* Simulated power failure and restart of the same pool: the view
     reverts to the durable image, then normal open-time recovery runs. *)
  Memdev.crash t.Rep.dev;
  recover t

let close (t : Rep.t) =
  Space.unmap t.Rep.space ~base:t.Rep.base

(* Accessors. *)

let space (t : Rep.t) = t.Rep.space
let dev (t : Rep.t) = t.Rep.dev
let base (t : Rep.t) = t.Rep.base
let size (t : Rep.t) = t.Rep.psize
let mode (t : Rep.t) = t.Rep.mode
let uuid (t : Rep.t) = t.Rep.uuid
let oid_stored_size (t : Rep.t) = Rep.oid_stored_size t
let heap_base (t : Rep.t) = t.Rep.heap_base

let with_lock (t : Rep.t) f =
  Mutex.lock t.Rep.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.Rep.lock) f

(* Atomic object management (pmemobj_alloc / _zalloc / _free / _realloc). *)

let alloc ?(zero = false) ?dest (t : Rep.t) ~size =
  with_lock t (fun () ->
    let dest = match dest with
      | None -> Heap.No_dest
      | Some off -> Heap.Pm_slot off
    in
    Heap.alloc t ~zero ~size ~dest ())

let check_owner (t : Rep.t) (oid : Oid.t) =
  if oid.Oid.uuid <> t.Rep.uuid then raise (Wrong_pool oid)

let free_ ?dest (t : Rep.t) (oid : Oid.t) =
  check_owner t oid;
  with_lock t (fun () ->
    let extra_entries = match dest with
      | None -> []
      | Some doff ->
        (* Clear the oid slot in the same atomic batch. *)
        (match t.Rep.mode with
         | Mode.Native -> [ (doff, 0); (doff + 8, 0) ]
         | Mode.Spp _ -> [ (doff, 0); (doff + 8, 0); (doff + 16, 0) ])
    in
    Heap.free t ~data_off:oid.Oid.off ~extra_entries)

let realloc ?dest (t : Rep.t) (oid : Oid.t) ~size =
  if not (Oid.is_null oid) then check_owner t oid;
  with_lock t (fun () ->
    let dest = match dest with
      | None -> Heap.No_dest
      | Some off -> Heap.Pm_slot off
    in
    Heap.realloc t oid ~new_size:size ~dest)

let alloc_size (t : Rep.t) (oid : Oid.t) =
  check_owner t oid;
  Rep.block_req_size t ~data_off:oid.Oid.off

let usable_size (t : Rep.t) (oid : Oid.t) =
  (* Class-rounded block capacity — pmemobj_alloc_usable_size. *)
  check_owner t oid;
  Rep.class_size (Rep.state_class (Rep.block_state t ~data_off:oid.Oid.off))

(* pmemobj_direct: oid -> native (possibly tagged) pointer (paper §IV-B). *)

let direct (t : Rep.t) (oid : Oid.t) =
  if Oid.is_null oid then 0
  else begin
    check_owner t oid;
    let addr = t.Rep.base + oid.Oid.off in
    match t.Rep.mode with
    | Mode.Native -> addr
    | Mode.Spp cfg -> Spp_core.Encoding.mk_tagged cfg ~addr ~size:oid.Oid.size
  end

(* pmemobj_root: allocate once into the header's root slot, atomically. *)

let root (t : Rep.t) ~size =
  with_lock t (fun () ->
    let existing = Rep.load_oid t Rep.off_root in
    if Oid.is_null existing then
      Heap.alloc t ~zero:true ~size ~dest:(Heap.Pm_slot Rep.off_root) ()
    else existing)

let root_oid (t : Rep.t) = Rep.load_oid t Rep.off_root

(* Transactions. *)

(* The pool has a single undo lane, so the outermost tx_begin holds the
   tx lock until commit or abort — concurrent transactions serialize,
   like contending for a PMDK lane. *)

let tx_begin (t : Rep.t) =
  if t.Rep.tx_depth = 0 then Mutex.lock t.Rep.tx_lock;
  with_lock t (fun () -> Tx.tx_begin t)

let tx_commit (t : Rep.t) =
  let outer = t.Rep.tx_depth = 1 in
  with_lock t (fun () -> Tx.tx_commit t);
  if outer then Mutex.unlock t.Rep.tx_lock

let tx_abort (t : Rep.t) =
  with_lock t (fun () -> Tx.tx_abort t);
  Mutex.unlock t.Rep.tx_lock

let tx_add_range (t : Rep.t) ~off ~len =
  with_lock t (fun () -> Tx.add_range t ~off ~len)

let tx_add_range_oid (t : Rep.t) oid =
  check_owner t oid;
  with_lock t (fun () -> Tx.add_range_oid t oid)

let tx_alloc ?(zero = false) (t : Rep.t) ~size =
  with_lock t (fun () -> Tx.alloc t ~zero ~size ())

let tx_realloc (t : Rep.t) oid ~size =
  if not (Oid.is_null oid) then check_owner t oid;
  with_lock t (fun () -> Tx.realloc t oid ~size)

let tx_free (t : Rep.t) oid =
  if not (Oid.is_null oid) then check_owner t oid;
  with_lock t (fun () -> Tx.free t oid)

let with_tx (t : Rep.t) f =
  tx_begin t;
  match f () with
  | v -> tx_commit t; v
  | exception e -> tx_abort t; raise e

let in_tx (t : Rep.t) = Tx.in_tx t

(* Oid slots in PM (pool offsets). *)

let load_oid (t : Rep.t) ~off = Rep.load_oid t off
let store_oid (t : Rep.t) ~off oid = Rep.store_oid t off oid

(* Raw word access by pool offset — convenience for data-structure code. *)

let load_word (t : Rep.t) ~off = Rep.load t off
let store_word (t : Rep.t) ~off v = Rep.store t off v
let persist (t : Rep.t) ~off ~len = Rep.persist t off len

let addr_of_off (t : Rep.t) off = t.Rep.base + off
let off_of_addr (t : Rep.t) addr = addr - t.Rep.base

let heap_stats (t : Rep.t) = Heap.stats t
