(** rbtree — red-black tree with a sentinel nil node (PMDK's
    [rbtree_map], following CLRS).

    Nodes are PM objects ([color | key | value | parent | left | right]);
    every node is snapshotted before mutation, so insert/remove are crash
    atomic. {!check_invariants} verifies the red-black and BST properties
    and is exercised by the property-based tests. *)

open Spp_pmdk

type t

val name : string
val create : Spp_access.t -> t

val attach : Spp_access.t -> Oid.t -> t
(** Re-attach to an existing tree by its map object (after reopen). *)

val insert : t -> key:int -> value:int -> unit
val get : t -> int -> int option
val remove : t -> int -> int option

type invariant_error =
  | Red_red of int              (** red node with a red child *)
  | Black_height_mismatch
  | Bst_violation of int

val check_invariants : t -> invariant_error list
(** Empty list = all red-black tree invariants hold. *)
