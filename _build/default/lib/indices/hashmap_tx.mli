(** hashmap_tx — chained hash map with transactional rehashing (PMDK's
    [hashmap_tx] example).

    Insertions prepend to bucket chains; the table doubles (rehashing
    inside the same transaction) when the load factor exceeds 4. *)

open Spp_pmdk

type t

val name : string
val create : Spp_access.t -> t
val insert : t -> key:int -> value:int -> unit
val get : t -> int -> int option
val remove : t -> int -> int option

val count : t -> int
val nbuckets : t -> int
val map_oid_of : t -> Oid.t
(** The map descriptor object — used by crash-state checkers to validate
    a recovered image without a live handle. *)
