(* ctree — crit-bit tree over 63-bit keys (PMDK's ctree_map).

   Leaf:     [ tag=0 | key | value ]                       (24 B)
   Internal: [ tag=1 | diff bit | child0 oid | child1 oid ] (16 B + 2 oids)
   Map root: a single oid slot.

   An internal node's [diff] is the highest bit position in which the keys
   of its two subtrees differ; diffs strictly decrease on the way down. *)

open Spp_pmdk
open Map_intf

type t = {
  a : Spp_access.t;
  map_oid : Oid.t;   (* object holding the root oid slot *)
}

let name = "ctree"

let tag_leaf = 0
let tag_internal = 1

let f_tag = 0
let f_diff = 8       (* internal *)
let f_key = 8        (* leaf *)
let f_value = 16     (* leaf *)
let f_child = 16     (* internal: child0 at 16, child1 at 16 + oid_size *)

let leaf_size = 24
let internal_size (a : Spp_access.t) = 16 + (2 * a.Spp_access.oid_size)

let create a =
  let map_oid =
    with_tx a (fun () -> a.Spp_access.tx_palloc ~zero:true (a.Spp_access.oid_size))
  in
  { a; map_oid }

let root_slot_ptr t = t.a.Spp_access.direct t.map_oid

let child_slot_ptr t nptr dir =
  t.a.Spp_access.gep nptr (f_child + (dir * t.a.Spp_access.oid_size))

let node_tag t nptr = t.a.Spp_access.load_word (t.a.Spp_access.gep nptr f_tag)

let mk_leaf t ~key ~value =
  let oid = t.a.Spp_access.tx_palloc leaf_size in
  let p = t.a.Spp_access.direct oid in
  t.a.Spp_access.store_word (t.a.Spp_access.gep p f_tag) tag_leaf;
  t.a.Spp_access.store_word (t.a.Spp_access.gep p f_key) key;
  t.a.Spp_access.store_word (t.a.Spp_access.gep p f_value) value;
  oid

(* Descend to the leaf a key would reach. *)
let rec find_leaf t cur key =
  let p = t.a.Spp_access.direct cur in
  if node_tag t p = tag_leaf then cur
  else begin
    let bit = t.a.Spp_access.load_word (t.a.Spp_access.gep p f_diff) in
    let dir = (key lsr bit) land 1 in
    find_leaf t (t.a.Spp_access.load_oid_at (child_slot_ptr t p dir)) key
  end

let get t key =
  let root = t.a.Spp_access.load_oid_at (root_slot_ptr t) in
  if Oid.is_null root then None
  else begin
    let leaf = find_leaf t root key in
    let p = t.a.Spp_access.direct leaf in
    if t.a.Spp_access.load_word (t.a.Spp_access.gep p f_key) = key then
      Some (t.a.Spp_access.load_word (t.a.Spp_access.gep p f_value))
    else None
  end

let insert t ~key ~value =
  let a = t.a in
  let root_ptr = root_slot_ptr t in
  let root = a.Spp_access.load_oid_at root_ptr in
  if Oid.is_null root then
    with_tx a (fun () ->
      let leaf = mk_leaf t ~key ~value in
      tx_add a root_ptr a.Spp_access.oid_size;
      a.Spp_access.store_oid_at root_ptr leaf)
  else begin
    let closest = find_leaf t root key in
    let cp = a.Spp_access.direct closest in
    let ckey = a.Spp_access.load_word (a.Spp_access.gep cp f_key) in
    if ckey = key then
      with_tx a (fun () ->
        tx_add a (a.Spp_access.gep cp f_value) 8;
        a.Spp_access.store_word (a.Spp_access.gep cp f_value) value)
    else begin
      let diff = highest_bit (ckey lxor key) in
      (* find the slot where the new internal node must be spliced in:
         the first node (from the root) whose diff is below [diff]. *)
      let rec find_slot slot_ptr =
        let cur = a.Spp_access.load_oid_at slot_ptr in
        let p = a.Spp_access.direct cur in
        if node_tag t p = tag_leaf then slot_ptr
        else begin
          let bit = a.Spp_access.load_word (a.Spp_access.gep p f_diff) in
          if bit < diff then slot_ptr
          else
            let dir = (key lsr bit) land 1 in
            find_slot (child_slot_ptr t p dir)
        end
      in
      let slot_ptr = find_slot root_ptr in
      with_tx a (fun () ->
        let existing = a.Spp_access.load_oid_at slot_ptr in
        let leaf = mk_leaf t ~key ~value in
        let inode = a.Spp_access.tx_palloc (internal_size a) in
        let ip = a.Spp_access.direct inode in
        a.Spp_access.store_word (a.Spp_access.gep ip f_tag) tag_internal;
        a.Spp_access.store_word (a.Spp_access.gep ip f_diff) diff;
        let dir = (key lsr diff) land 1 in
        a.Spp_access.store_oid_at (child_slot_ptr t ip dir) leaf;
        a.Spp_access.store_oid_at (child_slot_ptr t ip (1 - dir)) existing;
        tx_add a slot_ptr a.Spp_access.oid_size;
        a.Spp_access.store_oid_at slot_ptr inode)
    end
  end

let remove t key =
  let a = t.a in
  let root_ptr = root_slot_ptr t in
  let root = a.Spp_access.load_oid_at root_ptr in
  if Oid.is_null root then None
  else begin
    (* track the slot referencing the current node, and the parent
       internal node's "other child" slot for splicing. *)
    let rec descend slot_ptr parent cur =
      let p = a.Spp_access.direct cur in
      if node_tag t p = tag_leaf then begin
        if a.Spp_access.load_word (a.Spp_access.gep p f_key) <> key then None
        else begin
          let value = a.Spp_access.load_word (a.Spp_access.gep p f_value) in
          with_tx a (fun () ->
            (match parent with
             | None ->
               (* leaf was the root *)
               tx_add a root_ptr a.Spp_access.oid_size;
               a.Spp_access.store_oid_at root_ptr Oid.null
             | Some (pnode, pslot_ptr, dir) ->
               let pp = a.Spp_access.direct pnode in
               let sibling =
                 a.Spp_access.load_oid_at (child_slot_ptr t pp (1 - dir))
               in
               tx_add a pslot_ptr a.Spp_access.oid_size;
               a.Spp_access.store_oid_at pslot_ptr sibling;
               a.Spp_access.tx_pfree pnode);
            a.Spp_access.tx_pfree cur);
          Some value
        end
      end
      else begin
        let bit = a.Spp_access.load_word (a.Spp_access.gep p f_diff) in
        let dir = (key lsr bit) land 1 in
        let next = a.Spp_access.load_oid_at (child_slot_ptr t p dir) in
        descend (child_slot_ptr t p dir) (Some (cur, slot_ptr, dir)) next
      end
    in
    descend root_ptr None root
  end
