(* Uniform dispatcher over the persistent indices, used by the benchmark
   harness and the examples. *)

type instance = {
  ix_name : string;
  insert : key:int -> value:int -> unit;
  get : int -> int option;
  remove : int -> int option;
}

let of_ctree t =
  { ix_name = Ctree.name;
    insert = Ctree.insert t;
    get = Ctree.get t;
    remove = Ctree.remove t }

let of_rbtree t =
  { ix_name = Rbtree.name;
    insert = Rbtree.insert t;
    get = Rbtree.get t;
    remove = Rbtree.remove t }

let of_rtree t =
  { ix_name = Rtree.name;
    insert = Rtree.insert t;
    get = Rtree.get t;
    remove = Rtree.remove t }

let of_hashmap t =
  { ix_name = Hashmap_tx.name;
    insert = Hashmap_tx.insert t;
    get = Hashmap_tx.get t;
    remove = Hashmap_tx.remove t }

let of_btree t =
  { ix_name = Btree_map.name;
    insert = Btree_map.insert t;
    get = Btree_map.get t;
    remove = Btree_map.remove t }

let names = [ "ctree"; "rbtree"; "rtree"; "hashmap_tx"; "btree" ]

let create name a =
  match name with
  | "ctree" -> of_ctree (Ctree.create a)
  | "rbtree" -> of_rbtree (Rbtree.create a)
  | "rtree" -> of_rtree (Rtree.create a)
  | "hashmap_tx" | "hashmap" -> of_hashmap (Hashmap_tx.create a)
  | "btree" -> of_btree (Btree_map.create a)
  | other -> invalid_arg ("Indices.create: unknown index " ^ other)
