(* rbtree — red-black tree with a sentinel nil node (PMDK's rbtree_map,
   which follows the classic CLRS algorithm).

   Node:  [ color | key | value | parent oid | left oid | right oid ]
          (24 B + 3 oids)
   Map:   [ nil oid | root oid ]

   The sentinel is a real PM node: like in CLRS, delete-fixup may
   temporarily write its parent field. Every node is snapshotted before
   mutation, so any crash rolls the whole operation back. *)

open Spp_pmdk
open Map_intf

type t = {
  a : Spp_access.t;
  map_oid : Oid.t;
  nil : Oid.t;
}

let name = "rbtree"

let red = 1
let black = 0

let f_color = 0
let f_key = 8
let f_value = 16
let f_parent = 24

let node_size (a : Spp_access.t) = 24 + (3 * a.Spp_access.oid_size)

let ptr t n = t.a.Spp_access.direct n

let color t n = t.a.Spp_access.load_word (t.a.Spp_access.gep (ptr t n) f_color)
let key_of t n = t.a.Spp_access.load_word (t.a.Spp_access.gep (ptr t n) f_key)
let value_of t n = t.a.Spp_access.load_word (t.a.Spp_access.gep (ptr t n) f_value)

let set_color t n c =
  t.a.Spp_access.store_word (t.a.Spp_access.gep (ptr t n) f_color) c

let set_key t n k =
  t.a.Spp_access.store_word (t.a.Spp_access.gep (ptr t n) f_key) k

let set_value t n v =
  t.a.Spp_access.store_word (t.a.Spp_access.gep (ptr t n) f_value) v

let parent t n =
  t.a.Spp_access.load_oid_at (t.a.Spp_access.gep (ptr t n) f_parent)

let set_parent t n p =
  t.a.Spp_access.store_oid_at (t.a.Spp_access.gep (ptr t n) f_parent) p

(* dir: 0 = left, 1 = right *)
let child_off t dir = 24 + ((1 + dir) * t.a.Spp_access.oid_size)

let child t n dir =
  t.a.Spp_access.load_oid_at (t.a.Spp_access.gep (ptr t n) (child_off t dir))

let set_child t n dir c =
  t.a.Spp_access.store_oid_at (t.a.Spp_access.gep (ptr t n) (child_off t dir)) c

let left t n = child t n 0
let right t n = child t n 1

let is_nil t n = Oid.equal n t.nil

let root_slot_ptr t =
  t.a.Spp_access.gep (t.a.Spp_access.direct t.map_oid) t.a.Spp_access.oid_size

let root t = t.a.Spp_access.load_oid_at (root_slot_ptr t)

let set_root t n =
  tx_add t.a (root_slot_ptr t) t.a.Spp_access.oid_size;
  t.a.Spp_access.store_oid_at (root_slot_ptr t) n

let snap t n = if not (Oid.is_null n) then tx_add_oid t.a n

let create a =
  with_tx a (fun () ->
    let map_oid =
      a.Spp_access.tx_palloc ~zero:true (2 * a.Spp_access.oid_size)
    in
    let nil = a.Spp_access.tx_palloc ~zero:true (node_size a) in
    let t = { a; map_oid; nil } in
    set_color t nil black;
    set_parent t nil nil;
    set_child t nil 0 nil;
    set_child t nil 1 nil;
    let mp = a.Spp_access.direct map_oid in
    a.Spp_access.store_oid_at mp nil;
    a.Spp_access.store_oid_at (a.Spp_access.gep mp a.Spp_access.oid_size) nil;
    t)

let attach a map_oid =
  (* Reopen an existing tree: the nil oid is the map's first slot. *)
  let mp = a.Spp_access.direct map_oid in
  { a; map_oid; nil = a.Spp_access.load_oid_at mp }

(* Rotation around [x] in direction [dir] (dir = 0 is a left-rotate). *)
let rotate t x dir =
  let y = child t x (1 - dir) in
  let p = parent t x in
  snap t x; snap t y; snap t p;
  let beta = child t y dir in
  set_child t x (1 - dir) beta;
  if not (is_nil t beta) then begin snap t beta; set_parent t beta x end;
  set_parent t y p;
  if is_nil t p then set_root t y
  else if Oid.equal x (child t p 0) then set_child t p 0 y
  else set_child t p 1 y;
  set_child t y dir x;
  set_parent t x y

let rec insert_fixup t z =
  let p = parent t z in
  if color t p = red then begin
    let g = parent t p in
    let pdir = if Oid.equal p (child t g 0) then 0 else 1 in
    let uncle = child t g (1 - pdir) in
    if color t uncle = red then begin
      snap t p; snap t uncle; snap t g;
      set_color t p black;
      set_color t uncle black;
      set_color t g red;
      insert_fixup t g
    end else begin
      let z =
        if Oid.equal z (child t p (1 - pdir)) then begin
          rotate t p pdir;
          p
        end else z
      in
      let p = parent t z in
      let g = parent t p in
      snap t p; snap t g;
      set_color t p black;
      set_color t g red;
      rotate t g (1 - pdir)
    end
  end

let fix_root_black t =
  let r = root t in
  if color t r = red then begin snap t r; set_color t r black end

let insert t ~key ~value =
  let a = t.a in
  (* find insertion parent outside the tx (reads only) *)
  let rec find y x =
    if is_nil t x then `Attach y
    else begin
      let k = key_of t x in
      if key = k then `Update x
      else find x (child t x (if key < k then 0 else 1))
    end
  in
  match find t.nil (root t) with
  | `Update x ->
    with_tx a (fun () ->
      tx_add a (a.Spp_access.gep (ptr t x) f_value) 8;
      set_value t x value)
  | `Attach y ->
    with_tx a (fun () ->
      let z = a.Spp_access.tx_palloc ~zero:true (node_size a) in
      set_key t z key;
      set_value t z value;
      set_color t z red;
      set_child t z 0 t.nil;
      set_child t z 1 t.nil;
      set_parent t z y;
      if is_nil t y then set_root t z
      else begin
        snap t y;
        set_child t y (if key < key_of t y then 0 else 1) z
      end;
      insert_fixup t z;
      fix_root_black t)

let rec find_node t x key =
  if is_nil t x then None
  else begin
    let k = key_of t x in
    if key = k then Some x
    else find_node t (child t x (if key < k then 0 else 1)) key
  end

let get t key =
  match find_node t (root t) key with
  | None -> None
  | Some n -> Some (value_of t n)

let rec minimum t x =
  let l = left t x in
  if is_nil t l then x else minimum t l

(* Replace subtree [u] with subtree [v] (CLRS RB-TRANSPLANT). *)
let transplant t u v =
  let p = parent t u in
  if is_nil t p then set_root t v
  else begin
    snap t p;
    if Oid.equal u (child t p 0) then set_child t p 0 v
    else set_child t p 1 v
  end;
  snap t v;
  set_parent t v p   (* valid even when v is the sentinel (CLRS) *)

let rec delete_fixup t x =
  if (not (Oid.equal x (root t))) && color t x = black then begin
    let p = parent t x in
    let dir = if Oid.equal x (child t p 0) then 0 else 1 in
    let w = child t p (1 - dir) in
    let w =
      if color t w = red then begin
        snap t w; snap t p;
        set_color t w black;
        set_color t p red;
        rotate t p dir;
        child t p (1 - dir)
      end else w
    in
    if color t (child t w 0) = black && color t (child t w 1) = black then begin
      snap t w;
      set_color t w red;
      delete_fixup t (parent t x)
    end else begin
      let w =
        if color t (child t w (1 - dir)) = black then begin
          let wc = child t w dir in
          snap t wc; snap t w;
          set_color t wc black;
          set_color t w red;
          rotate t w (1 - dir);
          child t (parent t x) (1 - dir)
        end else w
      in
      let p = parent t x in
      snap t w; snap t p;
      set_color t w (color t p);
      set_color t p black;
      let wc = child t w (1 - dir) in
      snap t wc;
      set_color t wc black;
      rotate t p dir
      (* x becomes the root; loop ends *)
    end
  end else begin
    if color t x = red || Oid.equal x (root t) then begin
      snap t x;
      set_color t x black
    end
  end

let remove t key =
  let a = t.a in
  match find_node t (root t) key with
  | None -> None
  | Some z ->
    let removed = value_of t z in
    with_tx a (fun () ->
      snap t z;
      let y_original_color = ref (color t z) in
      let x =
        if is_nil t (left t z) then begin
          let x = right t z in
          transplant t z x;
          x
        end
        else if is_nil t (right t z) then begin
          let x = left t z in
          transplant t z x;
          x
        end
        else begin
          let y = minimum t (right t z) in
          snap t y;
          y_original_color := color t y;
          let x = right t y in
          if Oid.equal (parent t y) z then begin
            snap t x;
            set_parent t x y
          end
          else begin
            transplant t y (right t y);
            let zr = right t z in
            set_child t y 1 zr;
            snap t zr;
            set_parent t zr y
          end;
          transplant t z y;
          let zl = left t z in
          set_child t y 0 zl;
          snap t zl;
          set_parent t zl y;
          set_color t y (color t z);
          x
        end
      in
      if !y_original_color = black then delete_fixup t x;
      fix_root_black t;
      a.Spp_access.tx_pfree z);
    Some removed

(* Structural invariants, used by the test suite. *)

type invariant_error =
  | Red_red of int
  | Black_height_mismatch
  | Bst_violation of int

let check_invariants t =
  let errors = ref [] in
  let rec go n lo hi =
    if is_nil t n then 1
    else begin
      let k = key_of t n in
      (match lo with Some l when k <= l -> errors := Bst_violation k :: !errors | _ -> ());
      (match hi with Some h when k >= h -> errors := Bst_violation k :: !errors | _ -> ());
      if color t n = red then begin
        if color t (left t n) = red || color t (right t n) = red then
          errors := Red_red k :: !errors
      end;
      let bl = go (left t n) lo (Some k) in
      let br = go (right t n) (Some k) hi in
      if bl <> br then errors := Black_height_mismatch :: !errors;
      bl + (if color t n = black then 1 else 0)
    end
  in
  let r = root t in
  ignore (go r None None);
  if (not (is_nil t r)) && color t r = red then
    errors := Red_red (key_of t r) :: !errors;
  !errors
