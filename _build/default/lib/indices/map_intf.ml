(* Common interface of the persistent indices (pmembench's map ABI) and
   shared helpers for C-style node manipulation over the access layer.

   Keys and values are 63-bit machine words, as in the paper's index
   benchmarks (8-byte keys). Each index is written the way the PMDK
   examples write it: nodes are PM objects, child links are PMEMoids
   stored at fixed field offsets, and every mutation happens inside a
   transaction with explicit snapshots. *)

open Spp_pmdk

module type MAP = sig
  type t

  val name : string
  val create : Spp_access.t -> t
  val insert : t -> key:int -> value:int -> unit
  val get : t -> int -> int option
  val remove : t -> int -> int option
end

(* Snapshot [len] bytes behind an application pointer. *)
let tx_add (a : Spp_access.t) ptr len =
  let raw = a.Spp_access.ptr_to_int ptr in
  Pool.tx_add_range a.Spp_access.pool
    ~off:(Pool.off_of_addr a.Spp_access.pool raw) ~len

(* Snapshot a whole object. *)
let tx_add_oid (a : Spp_access.t) (oid : Oid.t) =
  Pool.tx_add_range_oid a.Spp_access.pool oid

let with_tx (a : Spp_access.t) f = Pool.with_tx a.Spp_access.pool f

(* Position of the highest set bit (63-bit words). *)
let highest_bit x =
  if x <= 0 then invalid_arg "highest_bit";
  let rec go x acc = if x = 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0
