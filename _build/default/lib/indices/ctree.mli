(** ctree — crit-bit tree over 63-bit keys (PMDK's [ctree_map]).

    Leaves hold [(key, value)]; internal nodes hold the highest bit
    position at which their two subtrees' keys differ, strictly
    decreasing on the way down. Mutations run inside transactions with
    explicit snapshots, so every operation is crash atomic. *)

type t

val name : string
val create : Spp_access.t -> t
val insert : t -> key:int -> value:int -> unit
val get : t -> int -> int option
val remove : t -> int -> int option
