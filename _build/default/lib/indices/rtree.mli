(** rtree — radix tree with 256-way fan-out over the key's 8 bytes
    (PMDK's [rtree_map]).

    Every node embeds 256 PMEMoids, which is what turns SPP's 8-byte-
    per-oid metadata into visible PM space overhead — the paper's
    Table III outlier (+39.7%). Remove prunes empty nodes bottom-up. *)

type t

val name : string
val create : Spp_access.t -> t
val insert : t -> key:int -> value:int -> unit
val get : t -> int -> int option
val remove : t -> int -> int option

val fanout : int
val node_size : Spp_access.t -> int
(** Mode-dependent: 16 B + 256 oids (4112 B native, 6160 B SPP). *)
