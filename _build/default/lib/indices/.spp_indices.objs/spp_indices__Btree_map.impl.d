lib/indices/btree_map.ml: Map_intf Oid Option Spp_access Spp_pmdk
