lib/indices/rbtree.ml: Map_intf Oid Spp_access Spp_pmdk
