lib/indices/hashmap_tx.mli: Oid Spp_access Spp_pmdk
