lib/indices/indices.ml: Btree_map Ctree Hashmap_tx Rbtree Rtree
