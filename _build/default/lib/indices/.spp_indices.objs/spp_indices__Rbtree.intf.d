lib/indices/rbtree.mli: Oid Spp_access Spp_pmdk
