lib/indices/indices.mli: Btree_map Ctree Hashmap_tx Rbtree Rtree Spp_access
