lib/indices/btree_map.mli: Spp_access
