lib/indices/map_intf.ml: Oid Pool Spp_access Spp_pmdk
