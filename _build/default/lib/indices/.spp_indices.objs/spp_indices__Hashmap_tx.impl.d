lib/indices/hashmap_tx.ml: Map_intf Oid Spp_access Spp_pmdk
