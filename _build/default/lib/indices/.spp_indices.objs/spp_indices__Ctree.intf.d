lib/indices/ctree.mli: Spp_access
