lib/indices/rtree.mli: Spp_access
