(* rtree — radix tree over the 8 bytes of the key, 256-way fan-out
   (PMDK's rtree_map).

   Node: [ has_value | value | 256 child oid slots ]  (16 B + 256 oids)

   Each node embeds 256 PMEMoids; this is the structure for which SPP's
   8-byte-per-oid metadata becomes visible PM space overhead (Table III:
   +39.7% for rtree, ~0% for the other indices). Keys are consumed one
   byte at a time, most significant byte first, to depth 8. *)

open Spp_pmdk
open Map_intf

type t = {
  a : Spp_access.t;
  map_oid : Oid.t;   (* root node slot *)
}

let name = "rtree"

let fanout = 256
let depth = 8

let f_has_value = 0
let f_value = 8
let f_children = 16

let node_size (a : Spp_access.t) = 16 + (fanout * a.Spp_access.oid_size)

let create a =
  let map_oid =
    with_tx a (fun () ->
      a.Spp_access.tx_palloc ~zero:true (a.Spp_access.oid_size))
  in
  { a; map_oid }

let root_slot_ptr t = t.a.Spp_access.direct t.map_oid

let key_byte key level = (key lsr ((depth - 1 - level) * 8)) land 0xFF

let child_slot_ptr t nptr byte =
  t.a.Spp_access.gep nptr (f_children + (byte * t.a.Spp_access.oid_size))

let get t key =
  let a = t.a in
  let rec go slot_ptr level =
    let node = a.Spp_access.load_oid_at slot_ptr in
    if Oid.is_null node then None
    else begin
      let p = a.Spp_access.direct node in
      if level = depth then
        if a.Spp_access.load_word (a.Spp_access.gep p f_has_value) = 1 then
          Some (a.Spp_access.load_word (a.Spp_access.gep p f_value))
        else None
      else go (child_slot_ptr t p (key_byte key level)) (level + 1)
    end
  in
  go (root_slot_ptr t) 0

let insert t ~key ~value =
  let a = t.a in
  with_tx a (fun () ->
    let rec go slot_ptr level =
      let node = a.Spp_access.load_oid_at slot_ptr in
      let node =
        if Oid.is_null node then begin
          let fresh = a.Spp_access.tx_palloc ~zero:true (node_size a) in
          tx_add a slot_ptr a.Spp_access.oid_size;
          a.Spp_access.store_oid_at slot_ptr fresh;
          fresh
        end else node
      in
      let p = a.Spp_access.direct node in
      if level = depth then begin
        tx_add a p 16;
        a.Spp_access.store_word (a.Spp_access.gep p f_has_value) 1;
        a.Spp_access.store_word (a.Spp_access.gep p f_value) value
      end
      else go (child_slot_ptr t p (key_byte key level)) (level + 1)
    in
    go (root_slot_ptr t) 0)

(* Remove clears the leaf value and prunes empty nodes on the way up. *)

let node_is_empty t p =
  let a = t.a in
  if a.Spp_access.load_word (a.Spp_access.gep p f_has_value) = 1 then false
  else begin
    let rec scan i =
      if i = fanout then true
      else if Oid.is_null (a.Spp_access.load_oid_at (child_slot_ptr t p i))
      then scan (i + 1)
      else false
    in
    scan 0
  end

let remove t key =
  let a = t.a in
  (* collect the path first (reads only) *)
  let rec path slot_ptr level acc =
    let node = a.Spp_access.load_oid_at slot_ptr in
    if Oid.is_null node then None
    else begin
      let p = a.Spp_access.direct node in
      let acc = (slot_ptr, node, p) :: acc in
      if level = depth then Some acc
      else path (child_slot_ptr t p (key_byte key level)) (level + 1) acc
    end
  in
  match path (root_slot_ptr t) 0 [] with
  | None -> None
  | Some ((_, _, leaf_ptr) :: _ as chain) ->
    if a.Spp_access.load_word (a.Spp_access.gep leaf_ptr f_has_value) <> 1 then
      None
    else begin
      let value = a.Spp_access.load_word (a.Spp_access.gep leaf_ptr f_value) in
      with_tx a (fun () ->
        tx_add a leaf_ptr 16;
        a.Spp_access.store_word (a.Spp_access.gep leaf_ptr f_has_value) 0;
        a.Spp_access.store_word (a.Spp_access.gep leaf_ptr f_value) 0;
        (* prune now-empty nodes bottom-up *)
        let rec prune = function
          | (slot_ptr, node, p) :: rest when node_is_empty t p ->
            tx_add a slot_ptr a.Spp_access.oid_size;
            a.Spp_access.store_oid_at slot_ptr Oid.null;
            a.Spp_access.tx_pfree node;
            prune rest
          | _ -> ()
        in
        prune chain);
      Some value
    end
  | Some [] -> None
