(** btree — order-8 B-tree (PMDK's [btree_map] example), including a
    faithful reproduction of the upstream overflow the paper detects
    with SPP (§VI-D, pmdk issue #5333).

    With [~buggy:true], the remove path's item shift moves one element
    too many through the interposed [memmove], reading past the node
    object when the node is full — detected by SPP's wrapper, silent on
    native PMDK. *)

type t

val name : string

val create : ?buggy:bool -> Spp_access.t -> t
(** [buggy] defaults to [false] (the fixed code). *)

val insert : t -> key:int -> value:int -> unit
val get : t -> int -> int option
val remove : t -> int -> int option

val order : int
(** Maximum children per node (8). *)
