(* hashmap_tx — chained hash map with transactional rehashing (PMDK's
   hashmap_tx example).

   Map object:    [ count | nbuckets | buckets oid ]   (16 B + 1 oid)
   Buckets array: [ nbuckets oid slots ]
   Entry:         [ key | value | next oid ]           (16 B + 1 oid)

   Insertions prepend to the bucket chain; the table grows (rehashes,
   inside the same transaction) when the load factor exceeds 4. *)

open Spp_pmdk
open Map_intf

type t = {
  a : Spp_access.t;
  map_oid : Oid.t;
}

let name = "hashmap_tx"

let init_buckets = 64
let max_load = 4

let f_count = 0
let f_nbuckets = 8
let f_buckets = 16

let f_key = 0
let f_value = 8
let f_next = 16

let entry_size (a : Spp_access.t) = 16 + a.Spp_access.oid_size

let hash key nbuckets =
  (* Fibonacci hashing on the 63-bit key *)
  let h = key * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land (nbuckets - 1)

let create a =
  with_tx a (fun () ->
    let map_oid =
      a.Spp_access.tx_palloc ~zero:true (16 + a.Spp_access.oid_size)
    in
    let buckets =
      a.Spp_access.tx_palloc ~zero:true (init_buckets * a.Spp_access.oid_size)
    in
    let mp = a.Spp_access.direct map_oid in
    a.Spp_access.store_word (a.Spp_access.gep mp f_nbuckets) init_buckets;
    a.Spp_access.store_oid_at (a.Spp_access.gep mp f_buckets) buckets;
    { a; map_oid })

let map_ptr t = t.a.Spp_access.direct t.map_oid

let nbuckets t =
  t.a.Spp_access.load_word (t.a.Spp_access.gep (map_ptr t) f_nbuckets)

let count t = t.a.Spp_access.load_word (t.a.Spp_access.gep (map_ptr t) f_count)

let buckets_oid t =
  t.a.Spp_access.load_oid_at (t.a.Spp_access.gep (map_ptr t) f_buckets)

let bucket_slot_ptr t bptr i =
  t.a.Spp_access.gep bptr (i * t.a.Spp_access.oid_size)

let find_in_chain t head key =
  let a = t.a in
  let rec go oid =
    if Oid.is_null oid then None
    else begin
      let p = a.Spp_access.direct oid in
      if a.Spp_access.load_word (a.Spp_access.gep p f_key) = key then Some (oid, p)
      else go (a.Spp_access.load_oid_at (a.Spp_access.gep p f_next))
    end
  in
  go head

let get t key =
  let a = t.a in
  let bptr = a.Spp_access.direct (buckets_oid t) in
  let slot = bucket_slot_ptr t bptr (hash key (nbuckets t)) in
  match find_in_chain t (a.Spp_access.load_oid_at slot) key with
  | None -> None
  | Some (_, p) -> Some (a.Spp_access.load_word (a.Spp_access.gep p f_value))

(* Rehash into a table twice the size; runs inside the caller's tx. *)
let rehash t =
  let a = t.a in
  let old_n = nbuckets t in
  let new_n = old_n * 2 in
  let old_buckets = buckets_oid t in
  let obptr = a.Spp_access.direct old_buckets in
  let fresh =
    a.Spp_access.tx_palloc ~zero:true (new_n * a.Spp_access.oid_size)
  in
  let nbptr = a.Spp_access.direct fresh in
  for i = 0 to old_n - 1 do
    let rec move oid =
      if not (Oid.is_null oid) then begin
        let p = a.Spp_access.direct oid in
        let next = a.Spp_access.load_oid_at (a.Spp_access.gep p f_next) in
        let key = a.Spp_access.load_word (a.Spp_access.gep p f_key) in
        let slot = bucket_slot_ptr t nbptr (hash key new_n) in
        tx_add a p (entry_size a);
        a.Spp_access.store_oid_at (a.Spp_access.gep p f_next)
          (a.Spp_access.load_oid_at slot);
        a.Spp_access.store_oid_at slot oid;
        move next
      end
    in
    move (a.Spp_access.load_oid_at (bucket_slot_ptr t obptr i))
  done;
  let mp = map_ptr t in
  tx_add a mp (16 + a.Spp_access.oid_size);
  a.Spp_access.store_word (a.Spp_access.gep mp f_nbuckets) new_n;
  a.Spp_access.store_oid_at (a.Spp_access.gep mp f_buckets) fresh;
  a.Spp_access.tx_pfree old_buckets

let insert t ~key ~value =
  let a = t.a in
  let bptr = a.Spp_access.direct (buckets_oid t) in
  let slot = bucket_slot_ptr t bptr (hash key (nbuckets t)) in
  match find_in_chain t (a.Spp_access.load_oid_at slot) key with
  | Some (_, p) ->
    with_tx a (fun () ->
      tx_add a (a.Spp_access.gep p f_value) 8;
      a.Spp_access.store_word (a.Spp_access.gep p f_value) value)
  | None ->
    with_tx a (fun () ->
      let entry = a.Spp_access.tx_palloc (entry_size a) in
      let ep = a.Spp_access.direct entry in
      a.Spp_access.store_word (a.Spp_access.gep ep f_key) key;
      a.Spp_access.store_word (a.Spp_access.gep ep f_value) value;
      a.Spp_access.store_oid_at (a.Spp_access.gep ep f_next)
        (a.Spp_access.load_oid_at slot);
      tx_add a slot a.Spp_access.oid_size;
      a.Spp_access.store_oid_at slot entry;
      let mp = map_ptr t in
      tx_add a (a.Spp_access.gep mp f_count) 8;
      let n = count t + 1 in
      a.Spp_access.store_word (a.Spp_access.gep mp f_count) n;
      if n > max_load * nbuckets t then rehash t)

let remove t key =
  let a = t.a in
  let bptr = a.Spp_access.direct (buckets_oid t) in
  let slot = bucket_slot_ptr t bptr (hash key (nbuckets t)) in
  (* find the slot (bucket head or an entry's next field) pointing at the
     entry to unlink *)
  let rec find slot_ptr =
    let oid = a.Spp_access.load_oid_at slot_ptr in
    if Oid.is_null oid then None
    else begin
      let p = a.Spp_access.direct oid in
      if a.Spp_access.load_word (a.Spp_access.gep p f_key) = key then
        Some (slot_ptr, oid, p)
      else find (a.Spp_access.gep p f_next)
    end
  in
  match find slot with
  | None -> None
  | Some (slot_ptr, oid, p) ->
    let value = a.Spp_access.load_word (a.Spp_access.gep p f_value) in
    with_tx a (fun () ->
      tx_add a slot_ptr a.Spp_access.oid_size;
      a.Spp_access.store_oid_at slot_ptr
        (a.Spp_access.load_oid_at (a.Spp_access.gep p f_next));
      let mp = map_ptr t in
      tx_add a (a.Spp_access.gep mp f_count) 8;
      a.Spp_access.store_word (a.Spp_access.gep mp f_count) (count t - 1);
      a.Spp_access.tx_pfree oid);
    Some value

let map_oid_of t = t.map_oid
