(** Uniform dispatcher over the persistent indices, used by the benchmark
    harness, the CLI and the examples. *)

type instance = {
  ix_name : string;
  insert : key:int -> value:int -> unit;
  get : int -> int option;
  remove : int -> int option;
}

val names : string list
(** ["ctree"; "rbtree"; "rtree"; "hashmap_tx"; "btree"] *)

val create : string -> Spp_access.t -> instance
(** Raises [Invalid_argument] on an unknown index name. The btree is
    created with the fixed (non-buggy) remove path. *)

val of_ctree : Ctree.t -> instance
val of_rbtree : Rbtree.t -> instance
val of_rtree : Rtree.t -> instance
val of_hashmap : Hashmap_tx.t -> instance
val of_btree : Btree_map.t -> instance
