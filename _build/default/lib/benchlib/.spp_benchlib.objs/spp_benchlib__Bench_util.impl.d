lib/benchlib/bench_util.ml: Array List Printf Random Unix
