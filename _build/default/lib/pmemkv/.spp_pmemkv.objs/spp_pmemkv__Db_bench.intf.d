lib/pmemkv/db_bench.mli: Cmap
