lib/pmemkv/db_bench.ml: Char Cmap Gc List Printf Random String Unix
