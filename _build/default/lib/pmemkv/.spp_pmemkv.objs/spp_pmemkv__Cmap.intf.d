lib/pmemkv/cmap.mli: Spp_access
