lib/pmemkv/cmap.ml: Array Bytes Char Fun Mutex Oid Pool Spp_access Spp_pmdk String
