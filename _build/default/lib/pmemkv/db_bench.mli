(** pmemkv-bench driver (paper §VI-B, Fig. 5): the four db_bench workload
    mixes over the cmap engine, 16-byte keys and 1024-byte values.

    "Threads" are logical shards — each shard's operation stream is run
    and timed on its own; see DESIGN.md for why this preserves Fig. 5's
    comparisons on the single-core simulator. *)

type workload =
  | Update_heavy   (** 50% reads / 50% writes *)
  | Read_heavy     (** 95% reads / 5% writes *)
  | Random_reads
  | Seq_reads

val workload_name : workload -> string
val all_workloads : workload list

val key_of_int : int -> string
(** 16-byte key, as in the paper's configuration. *)

val value_block : string
(** The 1024-byte value payload. *)

val preload : Cmap.t -> keys:int -> unit

type result = {
  threads : int;
  total_ops : int;
  elapsed : float;        (** max over shards *)
  median_shard : float;   (** robust per-shard cost estimator *)
  throughput : float;     (** ops/s *)
}

val run :
  Cmap.t -> threads:int -> ops_per_thread:int -> universe:int -> workload ->
  result
