(* Typed persistent pointers — the libpmemobj-cpp analogue (paper §IV-B,
   "C++ support"). libpmemobj-cpp wraps PMEMoids in persistent_ptr<T>
   smart pointers; SPP adapts that base class so dereferencing goes
   through the modified pmemobj_direct transparently and the PMEMoid's
   size field is accounted for in persistent struct layouts.

   Here the same idea in OCaml: a phantom-typed ['s ptr] over an Oid, and
   declarative struct layouts whose field offsets are computed against
   the access layer's mode-dependent oid footprint. All dereferences run
   through the variant's (possibly SPP-instrumented) access functions, so
   typed code inherits the full protection, and layouts written once work
   on both native and SPP pools. *)

open Spp_pmdk

type 's ptr = { oid : Oid.t }

let null = { oid = Oid.null }
let is_null p = Oid.is_null p.oid
let oid p = p.oid
let of_oid oid = { oid }
let equal a b = Oid.equal a.oid b.oid

(* Field descriptors: an offset plus typed load/store against the access
   layer. ['s] names the struct, ['v] the field value. *)

type ('s, 'v) field = {
  f_off : int;
  f_load : Spp_access.t -> int -> 'v;
  f_store : Spp_access.t -> int -> 'v -> unit;
  f_size : int;
}

(* Layout builder: fields are declared in order; offsets accumulate.
   Layouts are built per access layer because the PMEMoid footprint
   differs between native (16 B) and SPP (24 B) pools — exactly the
   sizeof-driven accounting the paper relies on for undo logging. *)

type 's layout = {
  l_access : Spp_access.t;
  mutable l_size : int;
  mutable l_sealed : bool;
}

let layout (a : Spp_access.t) = { l_access = a; l_size = 0; l_sealed = false }

let add (l : 's layout) ~size ~load ~store : ('s, 'v) field =
  if l.l_sealed then invalid_arg "Spp_pptr: layout already sealed";
  let f = { f_off = l.l_size; f_load = load; f_store = store; f_size = size } in
  l.l_size <- l.l_size + size;
  f

let word (l : 's layout) : ('s, int) field =
  add l ~size:8
    ~load:(fun a p -> a.Spp_access.load_word p)
    ~store:(fun a p v -> a.Spp_access.store_word p v)

let byte (l : 's layout) : ('s, int) field =
  add l ~size:1
    ~load:(fun a p -> a.Spp_access.load_u8 p)
    ~store:(fun a p v -> a.Spp_access.store_u8 p v)

let pptr (l : 's layout) : ('s, 'b ptr) field =
  add l ~size:l.l_access.Spp_access.oid_size
    ~load:(fun a p -> { oid = a.Spp_access.load_oid_at p })
    ~store:(fun a p v -> a.Spp_access.store_oid_at p v.oid)

let fixed_string (l : 's layout) ~len : ('s, string) field =
  add l ~size:len
    ~load:(fun a p ->
      let b = a.Spp_access.read_bytes p len in
      match Bytes.index_opt b '\000' with
      | Some i -> Bytes.sub_string b 0 i
      | None -> Bytes.to_string b)
    ~store:(fun a p v ->
      if String.length v >= len then
        invalid_arg "Spp_pptr.fixed_string: value too long";
      a.Spp_access.write_string p v;
      a.Spp_access.store_u8 (a.Spp_access.gep p (String.length v)) 0)

let padding (l : 's layout) n =
  if l.l_sealed then invalid_arg "Spp_pptr: layout already sealed";
  l.l_size <- l.l_size + n

let seal (l : 's layout) =
  l.l_sealed <- true;
  l

let size_of (l : 's layout) = l.l_size

(* Allocation and access. *)

let alloc ?(zero = true) (l : 's layout) : 's ptr =
  if not l.l_sealed then invalid_arg "Spp_pptr.alloc: layout not sealed";
  { oid = l.l_access.Spp_access.palloc ~zero l.l_size }

let tx_alloc ?(zero = true) (l : 's layout) : 's ptr =
  if not l.l_sealed then invalid_arg "Spp_pptr.tx_alloc: layout not sealed";
  { oid = l.l_access.Spp_access.tx_palloc ~zero l.l_size }

let free (l : 's layout) (p : 's ptr) = l.l_access.Spp_access.pfree p.oid
let tx_free (l : 's layout) (p : 's ptr) = l.l_access.Spp_access.tx_pfree p.oid

let direct (l : 's layout) (p : 's ptr) =
  l.l_access.Spp_access.direct p.oid

let get (l : 's layout) (p : 's ptr) (f : ('s, 'v) field) : 'v =
  let a = l.l_access in
  f.f_load a (a.Spp_access.gep (direct l p) f.f_off)

let set (l : 's layout) (p : 's ptr) (f : ('s, 'v) field) (v : 'v) =
  let a = l.l_access in
  f.f_store a (a.Spp_access.gep (direct l p) f.f_off) v

(* Snapshot one field (or the whole struct) inside a transaction. *)

let tx_add_field (l : 's layout) (p : 's ptr) (f : ('s, 'v) field) =
  Pool.tx_add_range l.l_access.Spp_access.pool
    ~off:(p.oid.Oid.off + f.f_off) ~len:f.f_size

let tx_add (l : 's layout) (p : 's ptr) =
  Pool.tx_add_range l.l_access.Spp_access.pool ~off:p.oid.Oid.off ~len:l.l_size

let with_tx (l : 's layout) f = Pool.with_tx l.l_access.Spp_access.pool f
