(** Typed persistent pointers — the libpmemobj-cpp analogue (paper
    §IV-B, "C++ support").

    A phantom-typed ['s ptr] wraps a PMEMoid; struct layouts are declared
    field by field and their offsets are computed against the access
    layer's mode-dependent oid footprint (16 B native / 24 B SPP), so the
    same declaration works on both pool modes and [sizeof]-driven undo
    logging covers SPP's extra bytes. All dereferences run through the
    variant's access functions and inherit its protection. *)

open Spp_pmdk

type 's ptr

val null : 's ptr
val is_null : 's ptr -> bool
val oid : 's ptr -> Oid.t
val of_oid : Oid.t -> 's ptr
val equal : 's ptr -> 's ptr -> bool

(** {1 Layouts} *)

type 's layout
type ('s, 'v) field

val layout : Spp_access.t -> 's layout
(** Start declaring a struct for this machine. *)

val word : 's layout -> ('s, int) field
val byte : 's layout -> ('s, int) field
val pptr : 's layout -> ('s, 'b ptr) field
(** An embedded persistent pointer; its size follows the pool mode. *)

val fixed_string : 's layout -> len:int -> ('s, string) field
(** NUL-terminated within a fixed [len]-byte field; storing a string of
    [len] or more characters raises [Invalid_argument]. *)

val padding : 's layout -> int -> unit
val seal : 's layout -> 's layout
val size_of : 's layout -> int

(** {1 Objects} *)

val alloc : ?zero:bool -> 's layout -> 's ptr
val tx_alloc : ?zero:bool -> 's layout -> 's ptr
val free : 's layout -> 's ptr -> unit
val tx_free : 's layout -> 's ptr -> unit
val direct : 's layout -> 's ptr -> int
(** The underlying (possibly tagged) application pointer. *)

(** {1 Field access} *)

val get : 's layout -> 's ptr -> ('s, 'v) field -> 'v
val set : 's layout -> 's ptr -> ('s, 'v) field -> 'v -> unit

(** {1 Transactions} *)

val tx_add_field : 's layout -> 's ptr -> ('s, 'v) field -> unit
val tx_add : 's layout -> 's ptr -> unit
val with_tx : 's layout -> (unit -> 'a) -> 'a
