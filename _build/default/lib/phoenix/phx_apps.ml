(* The seven Phoenix 2.0 applications, ported to PM objects (paper §VI-B,
   Fig. 6). Every data access goes through the access layer, so each
   variant pays its own instrumentation cost. [scale] controls input
   size; results are checksums so the compiler cannot elide work and the
   tests can compare variants for equality. *)

open Spp_access

(* --- histogram: byte frequencies of an RGB image ----------------------- *)

let histogram (a : t) ~scale =
  let len = scale * 3 in
  let _, img = Phx_util.alloc_input_bytes a ~seed:11 ~len in
  let _, bins = Phx_util.alloc_words a ~len:(3 * 256) (fun _ -> 0) in
  for i = 0 to scale - 1 do
    for ch = 0 to 2 do
      let v = a.load_u8 (a.gep img ((3 * i) + ch)) in
      let idx = (ch * 256) + v in
      Phx_util.store_elt a bins idx (Phx_util.load_elt a bins idx + 1)
    done
  done;
  let acc = ref 0 in
  for i = 0 to (3 * 256) - 1 do
    acc := !acc + (i * Phx_util.load_elt a bins i)
  done;
  !acc

(* --- kmeans: iterative clustering (the paper's overhead outlier) ------- *)

let kmeans (a : t) ~scale =
  let dims = 4 and k = 8 and iters = 10 in
  let n = scale in
  let st = Random.State.make [| 22 |] in
  let _, pts =
    Phx_util.alloc_words a ~len:(n * dims) (fun _ -> Random.State.int st 1000)
  in
  let _, centroids =
    Phx_util.alloc_words a ~len:(k * dims) (fun _ -> Random.State.int st 1000)
  in
  let _, assign = Phx_util.alloc_words a ~len:n (fun _ -> 0) in
  let _, sums = Phx_util.alloc_words a ~len:(k * dims) (fun _ -> 0) in
  let _, counts = Phx_util.alloc_words a ~len:k (fun _ -> 0) in
  for _ = 1 to iters do
    (* assignment: repeatedly sweeps the whole working set *)
    for i = 0 to n - 1 do
      let best = ref 0 and best_d = ref max_int in
      for c = 0 to k - 1 do
        let d = ref 0 in
        for j = 0 to dims - 1 do
          let diff =
            Phx_util.load_elt a pts ((i * dims) + j)
            - Phx_util.load_elt a centroids ((c * dims) + j)
          in
          d := !d + (diff * diff)
        done;
        if !d < !best_d then begin best_d := !d; best := c end
      done;
      Phx_util.store_elt a assign i !best
    done;
    (* update *)
    for c = 0 to k - 1 do
      Phx_util.store_elt a counts c 0;
      for j = 0 to dims - 1 do
        Phx_util.store_elt a sums ((c * dims) + j) 0
      done
    done;
    for i = 0 to n - 1 do
      let c = Phx_util.load_elt a assign i in
      Phx_util.store_elt a counts c (Phx_util.load_elt a counts c + 1);
      for j = 0 to dims - 1 do
        let s = (c * dims) + j in
        Phx_util.store_elt a sums s
          (Phx_util.load_elt a sums s + Phx_util.load_elt a pts ((i * dims) + j))
      done
    done;
    for c = 0 to k - 1 do
      let cnt = Phx_util.load_elt a counts c in
      if cnt > 0 then
        for j = 0 to dims - 1 do
          Phx_util.store_elt a centroids ((c * dims) + j)
            (Phx_util.load_elt a sums ((c * dims) + j) / cnt)
        done
    done
  done;
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + Phx_util.load_elt a assign i
  done;
  !acc

(* --- linear_regression: single-pass sums over (x, y) points ------------ *)

let linear_regression (a : t) ~scale =
  let st = Random.State.make [| 33 |] in
  let n = scale in
  let _, pts =
    Phx_util.alloc_words a ~len:(2 * n) (fun _ -> Random.State.int st 4096)
  in
  let sx = ref 0 and sy = ref 0 and sxx = ref 0 and syy = ref 0
  and sxy = ref 0 in
  for i = 0 to n - 1 do
    let x = Phx_util.load_elt a pts (2 * i) in
    let y = Phx_util.load_elt a pts ((2 * i) + 1) in
    sx := !sx + x;
    sy := !sy + y;
    sxx := !sxx + (x * x);
    syy := !syy + (y * y);
    sxy := !sxy + (x * y)
  done;
  !sx + !sy + (!sxx mod 1000) + (!syy mod 1000) + (!sxy mod 1000)

(* --- matrix_multiply ---------------------------------------------------- *)

let matrix_multiply (a : t) ~scale =
  let n = scale in
  let st = Random.State.make [| 44 |] in
  let _, ma = Phx_util.alloc_words a ~len:(n * n) (fun _ -> Random.State.int st 100) in
  let _, mb = Phx_util.alloc_words a ~len:(n * n) (fun _ -> Random.State.int st 100) in
  let _, mc = Phx_util.alloc_words a ~len:(n * n) (fun _ -> 0) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0 in
      for k = 0 to n - 1 do
        s := !s
             + (Phx_util.load_elt a ma ((i * n) + k)
                * Phx_util.load_elt a mb ((k * n) + j))
      done;
      Phx_util.store_elt a mc ((i * n) + j) !s
    done
  done;
  let acc = ref 0 in
  for i = 0 to (n * n) - 1 do
    acc := (!acc + Phx_util.load_elt a mc i) land max_int
  done;
  !acc

(* --- pca: column means and covariance ---------------------------------- *)

let pca (a : t) ~scale =
  let rows = scale and cols = 8 in
  let st = Random.State.make [| 55 |] in
  let _, m =
    Phx_util.alloc_words a ~len:(rows * cols) (fun _ -> Random.State.int st 256)
  in
  let _, means = Phx_util.alloc_words a ~len:cols (fun _ -> 0) in
  let _, cov = Phx_util.alloc_words a ~len:(cols * cols) (fun _ -> 0) in
  for j = 0 to cols - 1 do
    let s = ref 0 in
    for i = 0 to rows - 1 do
      s := !s + Phx_util.load_elt a m ((i * cols) + j)
    done;
    Phx_util.store_elt a means j (!s / rows)
  done;
  for j1 = 0 to cols - 1 do
    for j2 = j1 to cols - 1 do
      let s = ref 0 in
      let m1 = Phx_util.load_elt a means j1
      and m2 = Phx_util.load_elt a means j2 in
      for i = 0 to rows - 1 do
        s := !s
             + ((Phx_util.load_elt a m ((i * cols) + j1) - m1)
                * (Phx_util.load_elt a m ((i * cols) + j2) - m2))
      done;
      Phx_util.store_elt a cov ((j1 * cols) + j2) (!s / rows)
    done
  done;
  let acc = ref 0 in
  for i = 0 to (cols * cols) - 1 do
    acc := (!acc + Phx_util.load_elt a cov i) land max_int
  done;
  !acc

(* --- string_match: search keys in a text buffer ------------------------ *)

(* With [buggy:true], the scan reads the byte at [len] when the last word
   abuts the end of the buffer — the Phoenix off-by-one the paper found
   with SPP (§VI-D, kozyraki/phoenix#9). *)
let string_match ?(buggy = false) (a : t) ~scale =
  let len = scale in
  let _, buf, text = Phx_util.alloc_text a ~seed:66 ~len in
  (* pick keys that exist in the text, plus one that does not *)
  let words = String.split_on_char '\n' text in
  let keys =
    (match words with
     | w1 :: w2 :: w3 :: _ -> [ w1; w2; w3 ]
     | _ -> [ "xyz" ])
    @ [ "notintext" ]
  in
  let matches = ref 0 in
  let process_word ws we =
    let wlen = we - ws in
    let matches_key key =
      String.length key = wlen
      && (let ok = ref true in
          for j = 0 to wlen - 1 do
            if a.load_u8 (a.gep buf (ws + j)) <> Char.code key.[j] then
              ok := false
          done;
          !ok)
    in
    List.iter (fun k -> if matches_key k then incr matches) keys
  in
  let word_start = ref 0 in
  if buggy then
    (* the Phoenix off-by-one: the separator test reads buf[i] before the
       boundary test, so the iteration at i = len reads one byte past the
       input buffer *)
    for i = 0 to len do
      let ch = a.load_u8 (a.gep buf i) in
      if ch = 10 || i = len then begin
        process_word !word_start i;
        word_start := i + 1
      end
    done
  else begin
    for i = 0 to len - 1 do
      let ch = a.load_u8 (a.gep buf i) in
      if ch = 10 then begin
        process_word !word_start i;
        word_start := i + 1
      end
    done;
    if !word_start < len then process_word !word_start len
  end;
  !matches

(* --- word_count: open-addressed counting table in PM ------------------- *)

let word_count (a : t) ~scale =
  let len = scale in
  let _, buf, _text = Phx_util.alloc_text a ~seed:77 ~len in
  (* random words are nearly all unique, so size the open-addressed table
     for roughly one word per 7 input bytes with ample headroom *)
  let table_size =
    let rec pow2 v = if v >= scale / 2 then v else pow2 (2 * v) in
    max 4096 (pow2 4096)
  in
  let _, table = Phx_util.alloc_words a ~len:(2 * table_size) (fun _ -> 0) in
  let bump_word ~hash =
    let rec probe i =
      let slot = (hash + i) mod table_size in
      let h = Phx_util.load_elt a table (2 * slot) in
      if h = hash then
        Phx_util.store_elt a table ((2 * slot) + 1)
          (Phx_util.load_elt a table ((2 * slot) + 1) + 1)
      else if h = 0 then begin
        Phx_util.store_elt a table (2 * slot) hash;
        Phx_util.store_elt a table ((2 * slot) + 1) 1
      end
      else probe (i + 1)
    in
    probe 0
  in
  let h = ref 5381 in
  let have_word = ref false in
  for i = 0 to len - 1 do
    let ch = a.load_u8 (a.gep buf i) in
    if ch = 10 then begin
      if !have_word then bump_word ~hash:(1 + (!h land 0xFFFFFF));
      h := 5381;
      have_word := false
    end
    else begin
      h := ((!h lsl 5) + !h) + ch;
      have_word := true
    end
  done;
  if !have_word then bump_word ~hash:(1 + (!h land 0xFFFFFF));
  let uniq = ref 0 and total = ref 0 in
  for s = 0 to table_size - 1 do
    if Phx_util.load_elt a table (2 * s) <> 0 then begin
      incr uniq;
      total := !total + Phx_util.load_elt a table ((2 * s) + 1)
    end
  done;
  (!uniq * 100000) + !total

(* --- registry ----------------------------------------------------------- *)

type app = {
  app_name : string;
  default_scale : int;
  run : Spp_access.t -> scale:int -> int;
}

let apps =
  [
    { app_name = "histogram"; default_scale = 60000;
      run = (fun a ~scale -> histogram a ~scale) };
    { app_name = "kmeans"; default_scale = 2000;
      run = (fun a ~scale -> kmeans a ~scale) };
    { app_name = "linear_regression"; default_scale = 120000;
      run = (fun a ~scale -> linear_regression a ~scale) };
    { app_name = "matrix_multiply"; default_scale = 48;
      run = (fun a ~scale -> matrix_multiply a ~scale) };
    { app_name = "pca"; default_scale = 8000;
      run = (fun a ~scale -> pca a ~scale) };
    { app_name = "string_match"; default_scale = 100000;
      run = (fun a ~scale -> string_match a ~scale) };
    { app_name = "word_count"; default_scale = 100000;
      run = (fun a ~scale -> word_count a ~scale) };
  ]
