(** The seven Phoenix 2.0 applications, ported to PM objects (paper
    §VI-B, Fig. 6). Every data access goes through the access layer, so
    each variant pays its own instrumentation cost. Results are
    checksums, identical across variants for the same scale. *)

val histogram : Spp_access.t -> scale:int -> int
val kmeans : Spp_access.t -> scale:int -> int
(** Iterates over the whole working set every round — the paper's SPP
    overhead outlier. *)

val linear_regression : Spp_access.t -> scale:int -> int
val matrix_multiply : Spp_access.t -> scale:int -> int
val pca : Spp_access.t -> scale:int -> int

val string_match : ?buggy:bool -> Spp_access.t -> scale:int -> int
(** With [~buggy:true], the word scan reads one byte past the input
    buffer when the last word abuts the end — the off-by-one the paper
    found and reported upstream (§VI-D, kozyraki/phoenix#9). *)

val word_count : Spp_access.t -> scale:int -> int

type app = {
  app_name : string;
  default_scale : int;
  run : Spp_access.t -> scale:int -> int;
}

val apps : app list
(** All seven, with the paper's order and sane default scales. *)
