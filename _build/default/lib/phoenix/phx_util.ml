(* Shared helpers for the Phoenix 2.0 PM port (paper §VI-B): deterministic
   input generation into PM objects, accessed exclusively through the
   variant's access layer — the analogue of the instrumented binary
   touching its mmap'ed input. *)


(* Allocate a PM object and fill it with deterministic pseudo-random
   bytes. Returns (oid, pointer). *)
let alloc_input_bytes (a : Spp_access.t) ~seed ~len =
  let oid = a.Spp_access.palloc len in
  let p = a.Spp_access.direct oid in
  let st = Random.State.make [| seed |] in
  let b = Bytes.init len (fun _ -> Char.chr (Random.State.int st 256)) in
  a.Spp_access.write_bytes p b;
  (oid, p)

(* Allocate a PM word array and fill it from [f]. *)
let alloc_words (a : Spp_access.t) ~len f =
  let oid = a.Spp_access.palloc (len * 8) in
  let p = a.Spp_access.direct oid in
  for i = 0 to len - 1 do
    a.Spp_access.store_word (a.Spp_access.gep p (8 * i)) (f i)
  done;
  (oid, p)

let load_elt (a : Spp_access.t) p i =
  a.Spp_access.load_word (a.Spp_access.gep p (8 * i))

let store_elt (a : Spp_access.t) p i v =
  a.Spp_access.store_word (a.Spp_access.gep p (8 * i)) v

(* Text input: words of [a-z] letters separated by newlines, ending
   exactly at the buffer boundary with no trailing separator — the layout
   under which the Phoenix string_match off-by-one manifests. *)
let alloc_text (a : Spp_access.t) ~seed ~len =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create len in
  while Buffer.length buf < len - 8 do
    let wl = 2 + Random.State.int st 8 in
    for _ = 1 to wl do
      Buffer.add_char buf (Char.chr (97 + Random.State.int st 26))
    done;
    Buffer.add_char buf '\n'
  done;
  (* final word flush against the boundary *)
  while Buffer.length buf < len do
    Buffer.add_char buf (Char.chr (97 + Random.State.int st 26))
  done;
  let s = Buffer.contents buf in
  let oid = a.Spp_access.palloc len in
  let p = a.Spp_access.direct oid in
  a.Spp_access.write_string p s;
  (oid, p, s)
