lib/phoenix/phx_apps.mli: Spp_access
