lib/phoenix/phx_apps.ml: Char List Phx_util Random Spp_access String
