lib/phoenix/phx_util.ml: Buffer Bytes Char Random Spp_access
