lib/sim/space.ml: Bytes Char Fault Int32 Int64 List Memdev Printf String
