lib/sim/memdev.ml: Bytes Char Fun Int32 Int64 List Printf String
