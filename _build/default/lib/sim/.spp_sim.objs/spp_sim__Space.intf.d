lib/sim/space.mli: Bytes Memdev
