lib/sim/memdev.mli: Bytes
