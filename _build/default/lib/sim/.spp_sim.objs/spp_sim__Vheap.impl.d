lib/sim/vheap.ml: Hashtbl List Memdev Space
