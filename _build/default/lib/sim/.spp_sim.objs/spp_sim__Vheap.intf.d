lib/sim/vheap.mli: Space
