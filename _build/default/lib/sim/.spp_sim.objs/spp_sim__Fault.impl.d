lib/sim/fault.ml: Format Printexc Printf
