(** Hardware-fault model of the simulated machine.

    An access through an invalid simulated address raises {!Fault}, the
    analogue of SIGSEGV/SIGBUS on real hardware. SPP's implicit bounds check
    relies on this: an overflown tagged pointer decodes to an unmapped
    address, so the very next load or store faults. *)

type kind =
  | Segfault   (** access to an unmapped simulated address *)
  | Bus_error  (** access that violates device constraints *)

exception Fault of kind * int
(** [Fault (kind, addr)] — the faulting simulated address is [addr]. *)

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val segfault : int -> 'a
(** [segfault addr] raises [Fault (Segfault, addr)]. *)

val bus_error : int -> 'a
(** [bus_error addr] raises [Fault (Bus_error, addr)]. *)
