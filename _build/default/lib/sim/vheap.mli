(** Volatile heap allocator over a mapped [Volatile] region.

    The analogue of libc [malloc] in the simulated machine: first-fit free
    list with split/coalesce, OCaml-side metadata (a volatile allocator has
    no crash consistency to maintain). Used by the RIPE volatile-heap
    variant and by workloads that mix DRAM and PM data. *)

type t

val default_base : int
(** Volatile allocations are placed high in the address space
    ([1 lsl 45]); PM pools are mapped low, as with the paper's
    [PMEM_MMAP_HINT=0] configuration. *)

val create : ?base:int -> ?align:int -> Space.t -> int -> t
(** [create space size] maps a fresh volatile device of [size] bytes and
    returns an allocator over it. *)

val space : t -> Space.t
val base : t -> int
val size : t -> int

val malloc : t -> int -> int
(** Returns the simulated address of a fresh block. Raises [Out_of_memory]
    when the region is exhausted. *)

val calloc : t -> int -> int
(** [malloc] + zero fill. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] if the address is not a live allocation. *)

val realloc : t -> int -> int -> int

val live_size : t -> int -> int option
(** Requested size of a live allocation, if any. *)

val live_allocations : t -> (int * int) list
val bytes_live : t -> int
