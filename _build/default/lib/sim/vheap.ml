(* Volatile heap allocator over a mapped Volatile region.

   Metadata lives on the OCaml side (a volatile allocator has no crash
   consistency to maintain): a sorted free list with first-fit allocation,
   splitting and coalescing, plus a live-block table for [free]/[realloc]
   validation and for the memcheck baseline to inspect. *)

type block = { b_addr : int; b_size : int }

type t = {
  space : Space.t;
  base : int;
  hsize : int;
  mutable free_list : block list;       (* sorted by address *)
  live : (int, int) Hashtbl.t;          (* addr -> requested size *)
  align : int;
}

let default_base = 1 lsl 45
(* Volatile allocations live high in the simulated address space, far from
   PM pools which are mapped low (PMEM_MMAP_HINT = 0 in the paper). *)

let create ?(base = default_base) ?(align = 16) space size =
  let dev = Memdev.create_volatile ~name:"vheap" size in
  Space.map space ~base ~size ~kind:Space.Volatile ~name:"vheap" dev;
  { space; base; hsize = size; free_list = [ { b_addr = base; b_size = size } ];
    live = Hashtbl.create 1024; align }

let space t = t.space
let base t = t.base
let size t = t.hsize

let round_up v a = (v + a - 1) / a * a

let malloc t req =
  if req <= 0 then invalid_arg "Vheap.malloc: non-positive size";
  let need = round_up req t.align in
  let rec take acc = function
    | [] -> None
    | b :: rest ->
      if b.b_size >= need then begin
        let remainder =
          if b.b_size > need then
            [ { b_addr = b.b_addr + need; b_size = b.b_size - need } ]
          else []
        in
        Some (b.b_addr, List.rev_append acc (remainder @ rest))
      end else take (b :: acc) rest
  in
  match take [] t.free_list with
  | None -> raise Out_of_memory
  | Some (addr, fl) ->
    t.free_list <- List.sort (fun a b -> compare a.b_addr b.b_addr) fl;
    Hashtbl.replace t.live addr req;
    addr

let calloc t req =
  let addr = malloc t req in
  Space.fill t.space addr req '\000';
  addr

let live_size t addr = Hashtbl.find_opt t.live addr

let coalesce blocks =
  let sorted = List.sort (fun a b -> compare a.b_addr b.b_addr) blocks in
  let rec go = function
    | a :: b :: rest when a.b_addr + a.b_size = b.b_addr ->
      go ({ b_addr = a.b_addr; b_size = a.b_size + b.b_size } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Vheap.free: not a live allocation"
  | Some req ->
    Hashtbl.remove t.live addr;
    let sz = round_up req t.align in
    t.free_list <- coalesce ({ b_addr = addr; b_size = sz } :: t.free_list)

let realloc t addr req =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Vheap.realloc: not a live allocation"
  | Some old ->
    let fresh = malloc t req in
    Space.blit t.space ~src:addr ~dst:fresh ~len:(min old req);
    free t addr;
    fresh

let live_allocations t =
  Hashtbl.fold (fun addr sz acc -> (addr, sz) :: acc) t.live []
  |> List.sort compare

let bytes_live t =
  Hashtbl.fold (fun _ sz acc -> acc + round_up sz t.align) t.live 0
