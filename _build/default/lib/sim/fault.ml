(* Hardware-fault model of the simulated machine. *)

type kind =
  | Segfault
  | Bus_error

exception Fault of kind * int

let kind_to_string = function
  | Segfault -> "SIGSEGV"
  | Bus_error -> "SIGBUS"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let segfault addr = raise (Fault (Segfault, addr))
let bus_error addr = raise (Fault (Bus_error, addr))

let () =
  Printexc.register_printer (function
    | Fault (k, addr) ->
      Some (Printf.sprintf "Sim fault: %s at address 0x%x" (kind_to_string k) addr)
    | _ -> None)
