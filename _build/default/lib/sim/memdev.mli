(** Byte-addressable memory device with an explicit durability model.

    A device has a {e view} (what loads and stores observe — i.e. including
    CPU caches) and, for persistent devices, a {e durable image} (what
    survives a crash). With store tracking enabled, a store only reaches the
    durable image after it has been flushed ([CLWB]) and drained by a fence
    ([SFENCE]) — the regime used by crash simulation and the
    pmemcheck-style checker. With tracking disabled (the benchmark fast
    path) stores are considered immediately durable. *)

type t

val cacheline : int
(** Cacheline size in bytes (64); flush granularity. *)

(** {1 Construction} *)

val create_volatile : name:string -> int -> t
(** [create_volatile ~name size] — DRAM-like device, no durable image. *)

val create_persistent : name:string -> int -> t
(** [create_persistent ~name size] — PM-like device with a durable image. *)

val name : t -> string
val size : t -> int
val is_persistent : t -> bool

val set_tracking : t -> bool -> unit
(** Enable/disable store tracking. Disabling synchronizes the durable image
    with the view and clears pending stores and the trace. Raises
    [Invalid_argument] when enabling on a volatile device. *)

(** {1 Loads and stores}

    All offsets are device-relative; range violations raise
    [Invalid_argument] (address-space faults are the job of {!Space}). *)

val load_bytes : t -> off:int -> len:int -> Bytes.t
val load_into : t -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
val store_bytes : t -> off:int -> Bytes.t -> src_off:int -> len:int -> unit
val store_string : t -> off:int -> string -> unit
val fill : t -> off:int -> len:int -> char -> unit

(** Allocation-free typed stores (hot paths). *)

val store_u8 : t -> off:int -> int -> unit
val store_u16 : t -> off:int -> int -> unit
val store_u32 : t -> off:int -> int -> unit
val store_word : t -> off:int -> int -> unit

val unsafe_view : t -> Bytes.t
(** Direct access to the view buffer, for fast typed accessors in {!Space}.
    Mutations through it bypass durability tracking. *)

val unsafe_durable : t -> Bytes.t option

(** {1 Durability} *)

val flush : t -> off:int -> len:int -> unit
(** CLWB: mark pending stores intersecting the cacheline-expanded range as
    flushed. Durable only after the next {!fence}. *)

val fence : t -> unit
(** SFENCE: drain flushed pending stores to the durable image, in program
    order. *)

val persist : t -> off:int -> len:int -> unit
(** [flush] followed by [fence] — PMDK's [pmem_persist]. *)

(** {1 Crash simulation} *)

type store_rec

val crash : t -> unit
(** Power failure: the view is reset to the durable image; pending stores
    are lost. A volatile device is zeroed. *)

val pending_stores : t -> store_rec list
(** Stores not yet drained to the durable image, in program order. *)

val crash_applying : t -> store_rec list -> unit
(** [crash_applying t subset] — crash where the chosen subset of pending
    stores happened to reach the media first (pmreorder exploration). *)

val unflushed_pending : t -> store_rec list

(** {1 Trace and accounting} *)

type event =
  | Ev_store of { off : int; len : int; data : Bytes.t }
  | Ev_flush of { off : int; len : int }
  | Ev_fence

val trace : t -> event list
(** Program-order event trace (tracking mode only). *)

val clear_trace : t -> unit

type counters = { stores : int; flushes : int; fences : int }

val counters : t -> counters
val reset_counters : t -> unit

val of_image : name:string -> Bytes.t -> t
(** Device whose durable image and view both start as a copy of the given
    bytes — used by the pmreorder-style crash-state explorer. *)

val durable_snapshot : t -> Bytes.t
(** Copy of the current durable image. *)

(** {1 Host-file persistence} *)

val save_durable : t -> string -> unit
(** Write the durable image to a host file (a pool file as under
    [/mnt/pmem]). *)

val load_durable : name:string -> string -> t
(** Recreate a persistent device from a pool file. *)
