(* SPP runtime library (paper §IV-D, §V-B).

   These are the hook functions the compiler passes inject. They carry the
   same names as the C runtime (modulo the [__] prefix) and keep global
   call counters so instrumentation overhead and optimization effect
   (pointer tracking skipping PM-bit checks, bound-check preemption
   removing calls) can be measured. *)

type counters = {
  mutable updatetag : int;
  mutable cleantag : int;
  mutable checkbound : int;
  mutable cleantag_external : int;
  mutable memintr_check : int;
  mutable pm_bit_tests : int;    (* runtime pointer-kind checks performed *)
  mutable direct_calls : int;    (* hook calls that skipped the kind check *)
}

let counters = {
  updatetag = 0; cleantag = 0; checkbound = 0;
  cleantag_external = 0; memintr_check = 0;
  pm_bit_tests = 0; direct_calls = 0;
}

let reset_counters () =
  counters.updatetag <- 0;
  counters.cleantag <- 0;
  counters.checkbound <- 0;
  counters.cleantag_external <- 0;
  counters.memintr_check <- 0;
  counters.pm_bit_tests <- 0;
  counters.direct_calls <- 0

let spp_updatetag cfg ptr off =
  counters.updatetag <- counters.updatetag + 1;
  counters.pm_bit_tests <- counters.pm_bit_tests + 1;
  Encoding.update_tag cfg ptr off

let spp_updatetag_direct cfg ptr off =
  counters.updatetag <- counters.updatetag + 1;
  counters.direct_calls <- counters.direct_calls + 1;
  Encoding.update_tag_direct cfg ptr off

let spp_cleantag cfg ptr =
  counters.cleantag <- counters.cleantag + 1;
  counters.pm_bit_tests <- counters.pm_bit_tests + 1;
  Encoding.clean_tag cfg ptr

let spp_cleantag_direct cfg ptr =
  counters.cleantag <- counters.cleantag + 1;
  counters.direct_calls <- counters.direct_calls + 1;
  Encoding.clean_tag_direct cfg ptr

let spp_checkbound cfg ptr deref_size =
  counters.checkbound <- counters.checkbound + 1;
  counters.pm_bit_tests <- counters.pm_bit_tests + 1;
  Encoding.check_bound cfg ptr deref_size

let spp_checkbound_direct cfg ptr deref_size =
  counters.checkbound <- counters.checkbound + 1;
  counters.direct_calls <- counters.direct_calls + 1;
  Encoding.check_bound_direct cfg ptr deref_size

let spp_cleantag_external cfg ptr =
  counters.cleantag_external <- counters.cleantag_external + 1;
  counters.pm_bit_tests <- counters.pm_bit_tests + 1;
  Encoding.clean_tag_external cfg ptr

let spp_memintr_check cfg ptr n =
  (* Account for the furthest byte a memory intrinsic will touch, then
     mask. An overflown result is an unmapped address, so the intrinsic
     itself faults (paper §V-B). *)
  counters.memintr_check <- counters.memintr_check + 1;
  counters.pm_bit_tests <- counters.pm_bit_tests + 1;
  if n <= 0 then Encoding.clean_tag cfg ptr
  else Encoding.clean_tag cfg (Encoding.update_tag cfg ptr (n - 1))

let spp_is_pm_ptr cfg ptr =
  counters.pm_bit_tests <- counters.pm_bit_tests + 1;
  Encoding.is_pm cfg ptr
