(** SPP tagged-pointer encoding (paper §IV-A).

    The {e delta} field — the tag together with the overflow bit — is a
    [(tag_bits + 1)]-wide two's-complement counter holding the pointer's
    distance from the upper bound of its PM object. It is initialised to
    the negated object size with the overflow bit cleared; pointer
    arithmetic adds the same offset to the delta and address fields, and
    crossing the upper bound carries into the overflow bit, implicitly
    invalidating the address. Arithmetic back below the bound clears it
    again. *)

exception Object_too_large of { size : int; max : int }
(** Raised by {!mk_tagged} when the object exceeds [2^tag_bits] bytes. *)

val is_pm : Config.t -> int -> bool
(** The runtime pointer-kind test on the PM bit ([__spp_is_pm_ptr]). *)

val is_overflowed : Config.t -> int -> bool
(** PM pointer currently beyond its object's upper bound. *)

val mk_tagged : Config.t -> addr:int -> size:int -> int
(** Build the tagged pointer for an object of [size] bytes at virtual
    address [addr] — what the adapted [pmemobj_direct] returns. *)

val update_tag : Config.t -> int -> int -> int
(** [update_tag cfg ptr off] — [__spp_updatetag]: add [off] to the delta
    field; identity on non-PM pointers. Does not move the address field. *)

val update_tag_direct : Config.t -> int -> int -> int
(** [update_tag] without the PM-bit test — for pointers statically known
    to be persistent (paper §V-B). *)

val gep : Config.t -> int -> int -> int
(** Full pointer arithmetic: address field and delta field move together
    (paper Fig. 3). On a volatile pointer this is plain addition. *)

val clean_tag : Config.t -> int -> int
(** [__spp_cleantag]: strip PM bit and tag but {e keep the overflow bit},
    so a subsequent access through an overflown pointer faults. *)

val clean_tag_direct : Config.t -> int -> int

val clean_tag_external : Config.t -> int -> int
(** [__spp_cleantag_external]: also strip the overflow bit, producing a
    plain address for uninstrumented external code — beyond this point SPP
    offers no protection (§IV-G). *)

val check_bound : Config.t -> int -> int -> int
(** [check_bound cfg ptr deref_size] — [__spp_checkbound]: account for the
    access width ([deref_size] bytes) and return the masked address to
    dereference. Overflown ⇒ the returned address is unmapped. *)

val check_bound_direct : Config.t -> int -> int -> int

val address : Config.t -> int -> int
(** Virtual-address field only. *)

val remaining : Config.t -> int -> int
(** Bytes remaining before the object's upper bound (0 when overflown). *)

val extract_delta : Config.t -> int -> int

type decoded = {
  d_pm : bool;
  d_overflow : bool;
  d_tag : int;
  d_addr : int;
}

val decode : Config.t -> int -> decoded
val pp : Config.t -> Format.formatter -> int -> unit
