(** Interposed memory-intrinsic and string functions
    ([__wrap_memcpy], [__wrap_strcpy], …; paper §IV-D, §V-B).

    Each wrapper updates the tag of every PM-pointer argument by the
    furthest offset the built-in will touch, masks it, and performs the
    operation with the masked addresses. An overflow makes the masked
    address unmapped, so the operation faults before any corruption. *)

open Spp_sim

val wrap_memcpy : Config.t -> Space.t -> dst:int -> src:int -> len:int -> unit
val wrap_memmove : Config.t -> Space.t -> dst:int -> src:int -> len:int -> unit
val wrap_memset : Config.t -> Space.t -> dst:int -> c:char -> len:int -> unit
val wrap_memcmp : Config.t -> Space.t -> a:int -> b:int -> len:int -> int

val wrap_strlen : Config.t -> Space.t -> int -> int
val wrap_strcpy : Config.t -> Space.t -> dst:int -> src:int -> unit
val wrap_strncpy : Config.t -> Space.t -> dst:int -> src:int -> n:int -> unit
val wrap_strcat : Config.t -> Space.t -> dst:int -> src:int -> unit
val wrap_strcmp : Config.t -> Space.t -> int -> int -> int
