(** SPP runtime library (paper §IV-D, §V-B).

    The hook functions injected by the compiler passes, with global call
    counters so instrumentation cost and the effect of the optimizations
    (pointer tracking ⇒ [_direct] variants; bound-check preemption ⇒ fewer
    calls) are measurable. The [_direct] variants skip the runtime PM-bit
    test and are used on pointers statically classified as persistent. *)

type counters = {
  mutable updatetag : int;
  mutable cleantag : int;
  mutable checkbound : int;
  mutable cleantag_external : int;
  mutable memintr_check : int;
  mutable pm_bit_tests : int;
  mutable direct_calls : int;
}

val counters : counters
val reset_counters : unit -> unit

val spp_updatetag : Config.t -> int -> int -> int
val spp_updatetag_direct : Config.t -> int -> int -> int
val spp_cleantag : Config.t -> int -> int
val spp_cleantag_direct : Config.t -> int -> int
val spp_checkbound : Config.t -> int -> int -> int
val spp_checkbound_direct : Config.t -> int -> int -> int
val spp_cleantag_external : Config.t -> int -> int
val spp_memintr_check : Config.t -> int -> int -> int
val spp_is_pm_ptr : Config.t -> int -> bool
