(** SPP pointer-encoding configuration.

    The paper splits a 64-bit pointer into
    [PM bit | overflow bit | tag | virtual address]. The simulated machine
    word is a 63-bit OCaml int, so the layout here is bit 62 = PM bit,
    bit 61 = overflow bit, then a configurable tag, then the virtual
    address ([addr_bits = 61 - tag_bits]). The tag width is tunable exactly
    as in the paper (§IV-A): it bounds the maximum PM object size
    ([2^tag_bits]) and the maximum pool span ([2^addr_bits]). *)

type t = private {
  tag_bits : int;
  addr_bits : int;
  pm_bit : int;
  ovf_bit : int;
  addr_mask : int;
  delta_width : int;      (** tag plus overflow bit: [tag_bits + 1] *)
  delta_mask : int;       (** unshifted mask of the delta field *)
  max_object_size : int;  (** [1 lsl tag_bits] *)
  max_pool_span : int;    (** [1 lsl addr_bits] *)
}

val ptr_size : int
(** 63 — the simulated machine word width. *)

val min_tag_bits : int
val max_tag_bits : int

val make : tag_bits:int -> t
(** Raises [Invalid_argument] outside [\[min_tag_bits, max_tag_bits\]]. *)

val default : t
(** 26 tag bits — the paper's evaluation default (§VI-A). *)

val phoenix : t
(** 31 tag bits — used for the Phoenix suite to fit large inputs (§VI-B). *)

val tag_bits : t -> int
val addr_bits : t -> int
val max_object_size : t -> int
val max_pool_span : t -> int

val pp : Format.formatter -> t -> unit
