(* SPP tagged-pointer encoding (paper §IV-A).

   The delta field is the tag plus the overflow bit, treated as one
   (tag_bits + 1)-wide two's-complement counter holding the pointer's
   current distance from the object's upper bound, initialised to the
   negated object size with the overflow bit cleared — exactly the
   paper's

     tag = (~oid.size + 1) << ADDRESS_BITS
     ptr = pm_ptr | tag & OVERFLOW_BIT | PM_PTR_BIT

   Pointer arithmetic adds the same offset to the delta field and to the
   address field; crossing the upper bound carries into the overflow bit,
   implicitly invalidating the address. *)

exception Object_too_large of { size : int; max : int }

let () =
  Printexc.register_printer (function
    | Object_too_large { size; max } ->
      Some (Printf.sprintf
              "SPP: object of %d bytes exceeds the %d-byte tag limit" size max)
    | _ -> None)

open Config

let is_pm (cfg : Config.t) ptr = ptr land cfg.pm_bit <> 0

let is_overflowed (cfg : Config.t) ptr =
  ptr land cfg.pm_bit <> 0 && ptr land cfg.ovf_bit <> 0

let extract_delta (cfg : Config.t) ptr =
  (ptr lsr cfg.addr_bits) land cfg.delta_mask

let mk_tagged (cfg : Config.t) ~addr ~size =
  if size <= 0 then invalid_arg "Encoding.mk_tagged: non-positive size";
  if size > cfg.max_object_size then
    raise (Object_too_large { size; max = cfg.max_object_size });
  if addr land cfg.addr_mask <> addr then
    invalid_arg
      (Printf.sprintf
         "Encoding.mk_tagged: address 0x%x does not fit in %d address bits"
         addr cfg.addr_bits);
  let delta0 = (cfg.max_object_size - size) land cfg.delta_mask in
  cfg.pm_bit lor (delta0 lsl cfg.addr_bits) lor addr

let update_tag_direct (cfg : Config.t) ptr off =
  let d = (extract_delta cfg ptr + off) land cfg.delta_mask in
  (ptr land (cfg.pm_bit lor cfg.addr_mask)) lor (d lsl cfg.addr_bits)

let update_tag cfg ptr off =
  if is_pm cfg ptr then update_tag_direct cfg ptr off else ptr

let gep (cfg : Config.t) ptr off =
  (* Pointer arithmetic: the address field and the delta field move by the
     same offset (paper Fig. 3). Volatile pointers are plain integers. *)
  if is_pm cfg ptr then begin
    let p = update_tag_direct cfg ptr off in
    (p land lnot cfg.addr_mask) lor ((p + off) land cfg.addr_mask)
  end else ptr + off

let clean_tag_direct (cfg : Config.t) ptr =
  ptr land (cfg.ovf_bit lor cfg.addr_mask)

let clean_tag cfg ptr =
  if is_pm cfg ptr then clean_tag_direct cfg ptr else ptr

let clean_tag_external (cfg : Config.t) ptr =
  (* For uninstrumented external code: strip tag, overflow and PM bits so
     the callee sees a plain address. SPP gives no guarantee beyond this
     point (paper §IV-G). *)
  if is_pm cfg ptr then ptr land cfg.addr_mask else ptr

let check_bound cfg ptr deref_size =
  clean_tag cfg (update_tag cfg ptr (deref_size - 1))

let check_bound_direct cfg ptr deref_size =
  clean_tag_direct cfg (update_tag_direct cfg ptr (deref_size - 1))

let address (cfg : Config.t) ptr = ptr land cfg.addr_mask

let remaining (cfg : Config.t) ptr =
  (* Bytes left before the upper bound, when not overflown. *)
  if is_overflowed cfg ptr then 0
  else cfg.max_object_size - (extract_delta cfg ptr land (cfg.max_object_size - 1))

type decoded = {
  d_pm : bool;
  d_overflow : bool;
  d_tag : int;
  d_addr : int;
}

let decode (cfg : Config.t) ptr =
  {
    d_pm = ptr land cfg.pm_bit <> 0;
    d_overflow = ptr land cfg.ovf_bit <> 0;
    d_tag = (ptr lsr cfg.addr_bits) land (cfg.max_object_size - 1);
    d_addr = ptr land cfg.addr_mask;
  }

let pp cfg ppf ptr =
  let d = decode cfg ptr in
  Format.fprintf ppf "[pm=%b ovf=%b tag=0x%x addr=0x%x]"
    d.d_pm d.d_overflow d.d_tag d.d_addr
