(* SPP pointer-encoding configuration.

   The paper splits a 64-bit pointer into [ PM bit | overflow bit | tag |
   virtual address ]. OCaml native ints are 63 bits wide, so the simulated
   machine word is 63 bits and the same layout is

     bit 62          : PM bit
     bit 61          : overflow bit
     bits A .. 60    : tag (tag_bits wide), A = 61 - tag_bits
     bits 0 .. A-1   : virtual address  (addr_bits = A)

   All masks are precomputed here; the delta field manipulated by
   [Encoding] is the (tag_bits + 1)-bit field made of the tag plus the
   overflow bit, exactly as in Delta Pointers. *)

type t = {
  tag_bits : int;
  addr_bits : int;
  pm_bit : int;
  ovf_bit : int;
  addr_mask : int;
  delta_width : int;     (* tag_bits + 1: tag plus overflow bit *)
  delta_mask : int;      (* (1 lsl delta_width) - 1, unshifted *)
  max_object_size : int; (* 1 lsl tag_bits *)
  max_pool_span : int;   (* 1 lsl addr_bits *)
}

let ptr_size = 63

let min_tag_bits = 4
let max_tag_bits = 48

let make ~tag_bits =
  if tag_bits < min_tag_bits || tag_bits > max_tag_bits then
    invalid_arg
      (Printf.sprintf "Spp_core.Config.make: tag_bits %d outside [%d, %d]"
         tag_bits min_tag_bits max_tag_bits);
  let addr_bits = ptr_size - 2 - tag_bits in
  {
    tag_bits;
    addr_bits;
    pm_bit = 1 lsl (ptr_size - 1);
    ovf_bit = 1 lsl (ptr_size - 2);
    addr_mask = (1 lsl addr_bits) - 1;
    delta_width = tag_bits + 1;
    delta_mask = (1 lsl (tag_bits + 1)) - 1;
    max_object_size = 1 lsl tag_bits;
    max_pool_span = 1 lsl addr_bits;
  }

let default = make ~tag_bits:26

let phoenix = make ~tag_bits:31
(* The paper's Phoenix runs use 31 tag bits to accommodate large inputs. *)

let tag_bits t = t.tag_bits
let addr_bits t = t.addr_bits
let max_object_size t = t.max_object_size
let max_pool_span t = t.max_pool_span

let pp ppf t =
  Format.fprintf ppf
    "SPP config: ptr=%d bits [PM:1 | OVF:1 | tag:%d | addr:%d], \
     max object %d B, max pool span %d B"
    ptr_size t.tag_bits t.addr_bits t.max_object_size t.max_pool_span
