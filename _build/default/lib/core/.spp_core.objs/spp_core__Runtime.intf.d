lib/core/runtime.mli: Config
