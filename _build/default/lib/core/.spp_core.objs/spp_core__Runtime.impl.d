lib/core/runtime.ml: Encoding
