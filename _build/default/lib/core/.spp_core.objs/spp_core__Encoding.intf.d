lib/core/encoding.mli: Config Format
