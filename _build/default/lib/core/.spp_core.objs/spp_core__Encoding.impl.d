lib/core/encoding.ml: Config Format Printexc Printf
