lib/core/wrappers.ml: Runtime Space Spp_sim
