lib/core/wrappers.mli: Config Space Spp_sim
