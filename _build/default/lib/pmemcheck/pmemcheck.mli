(** pmemcheck — Valgrind-pmemcheck-style store/flush/fence trace analysis
    (paper §VI-E).

    Runs a workload with store tracking enabled on the pool's device and
    reports the classic pmemcheck findings. *)

type report = {
  total_stores : int;
  total_flushes : int;
  total_fences : int;
  not_flushed : int;        (** stores never covered by a CLWB *)
  not_fenced : int;         (** flushed but never drained by a fence *)
  redundant_flushes : int;  (** flushes of clean ranges *)
}

val pp_report : Format.formatter -> report -> unit

val is_clean : report -> bool
(** No unflushed and no unfenced stores ([redundant_flushes] is a
    performance smell, not a correctness violation). *)

val analyze : Spp_sim.Memdev.event list -> report

val check_run : Spp_pmdk.Pool.t -> (unit -> 'a) -> 'a * report
(** Enable tracking, clear the trace, run the workload, analyze. *)
