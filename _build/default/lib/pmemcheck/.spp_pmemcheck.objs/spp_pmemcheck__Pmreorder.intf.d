lib/pmemcheck/pmreorder.mli: Format Spp_pmdk
