lib/pmemcheck/pmreorder.ml: Bytes Format List Memdev Printexc Printf Space Spp_pmdk Spp_sim
