lib/pmemcheck/pmemcheck.ml: Format List Memdev Spp_pmdk Spp_sim
