lib/pmemcheck/pmemcheck.mli: Format Spp_pmdk Spp_sim
