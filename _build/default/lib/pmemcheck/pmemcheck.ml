(* pmemcheck — Valgrind-pmemcheck-style store/flush/fence trace analysis
   (paper §VI-E).

   Runs a workload with store tracking enabled and reports the classic
   pmemcheck findings: stores to PM never flushed, stores flushed but not
   drained by a fence before the end of the run, and redundant flushes
   (no dirty store in the flushed range). *)

open Spp_sim

type report = {
  total_stores : int;
  total_flushes : int;
  total_fences : int;
  not_flushed : int;        (* stores never covered by a CLWB *)
  not_fenced : int;         (* flushed but never drained *)
  redundant_flushes : int;  (* flush of a clean range *)
}

let pp_report ppf r =
  Format.fprintf ppf
    "stores=%d flushes=%d fences=%d | not-flushed=%d not-fenced=%d \
     redundant-flushes=%d"
    r.total_stores r.total_flushes r.total_fences r.not_flushed r.not_fenced
    r.redundant_flushes

let is_clean r = r.not_flushed = 0 && r.not_fenced = 0

(* Replay the event trace with pmemcheck's bookkeeping. *)
let analyze events =
  let cl = Memdev.cacheline in
  let pending = ref [] in   (* (off, len, flushed) in program order, newest first *)
  let total_stores = ref 0
  and total_flushes = ref 0
  and total_fences = ref 0
  and redundant = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Memdev.Ev_store { off; len; _ } ->
        incr total_stores;
        pending := (off, len, ref false) :: !pending
      | Memdev.Ev_flush { off; len } ->
        incr total_flushes;
        let lo = off / cl * cl in
        let hi = (off + len + cl - 1) / cl * cl in
        let hit = ref false in
        List.iter
          (fun (soff, slen, flushed) ->
            if (not !flushed) && soff < hi && lo < soff + slen then begin
              flushed := true;
              hit := true
            end)
          !pending;
        if not !hit then incr redundant
      | Memdev.Ev_fence ->
        incr total_fences;
        pending := List.filter (fun (_, _, flushed) -> not !flushed) !pending)
    events;
  let not_flushed =
    List.length (List.filter (fun (_, _, f) -> not !f) !pending)
  in
  let not_fenced = List.length !pending - not_flushed in
  {
    total_stores = !total_stores;
    total_flushes = !total_flushes;
    total_fences = !total_fences;
    not_flushed;
    not_fenced;
    redundant_flushes = !redundant;
  }

(* Run [f] under tracking on the pool's device and analyze its trace. *)
let check_run (pool : Spp_pmdk.Pool.t) f =
  let dev = Spp_pmdk.Pool.dev pool in
  let was_tracking_off = not (Memdev.is_persistent dev) in
  if was_tracking_off then invalid_arg "Pmemcheck.check_run: volatile device";
  Memdev.set_tracking dev true;
  Memdev.clear_trace dev;
  let result = f () in
  let report = analyze (Memdev.trace dev) in
  (result, report)
