(** pmreorder — crash-state-space exploration (paper §VI-E).

    Records the store/flush/fence trace of a workload, then enumerates
    durable states a power failure could leave behind (fence-drained
    prefix + any subset of pending stores, exhaustive for small pending
    sets) and runs pool recovery plus a user consistency predicate on
    each state. *)

type result = {
  crash_points : int;
  states_checked : int;
  failures : int;
  first_failure : string option;
}

val pp_result : Format.formatter -> result -> unit

val explore :
  ?subset_limit:int ->
  ?max_states:int ->
  pool:Spp_pmdk.Pool.t ->
  workload:(unit -> unit) ->
  consistent:(Spp_pmdk.Pool.t -> bool) ->
  unit ->
  result
(** [consistent] receives a fresh pool opened (with full recovery) on
    each candidate durable image; it must not touch the live pool.
    [subset_limit] (default 5) bounds exhaustive subset enumeration;
    larger pending sets fall back to program-order prefixes plus
    singletons. [max_states] (default 4096) caps the exploration. *)
