(* pmreorder — crash-state-space exploration (paper §VI-E).

   Record the store/flush/fence trace of a workload, then enumerate the
   durable states a power failure could leave behind and run the pool's
   recovery plus a user-supplied consistency predicate on each one.

   State model: at any crash point, everything drained by previous fences
   is durable, and additionally any subset of still-pending stores may
   have reached the media (cache evictions happen at any time). Small
   pending sets are enumerated exhaustively; larger ones fall back to
   program-order prefixes plus singletons, like pmreorder's cheaper
   engines. *)

open Spp_sim

type result = {
  crash_points : int;
  states_checked : int;
  failures : int;
  first_failure : string option;
}

let pp_result ppf r =
  Format.fprintf ppf "crash points=%d states=%d failures=%d%s"
    r.crash_points r.states_checked r.failures
    (match r.first_failure with
     | None -> ""
     | Some s -> " (first: " ^ s ^ ")")

type pending = { p_off : int; p_len : int; p_data : Bytes.t; mutable p_flushed : bool }

let subsets_bounded items limit =
  let n = List.length items in
  if n <= limit then
    List.init (1 lsl n) (fun mask ->
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) items)
  else begin
    (* prefixes in program order + each store alone *)
    let prefixes =
      List.init (n + 1) (fun k -> List.filteri (fun i _ -> i < k) items)
    in
    let singles = List.map (fun x -> [ x ]) items in
    prefixes @ singles
  end

let explore ?(subset_limit = 5) ?(max_states = 4096)
    ~(pool : Spp_pmdk.Pool.t) ~(workload : unit -> unit)
    ~(consistent : Spp_pmdk.Pool.t -> bool) () =
  let dev = Spp_pmdk.Pool.dev pool in
  Memdev.set_tracking dev true;
  let base_img = Memdev.durable_snapshot dev in
  Memdev.clear_trace dev;
  workload ();
  let events = Memdev.trace dev in
  let cl = Memdev.cacheline in
  (* replay, collecting at each event index the durable prefix image and
     the pending set *)
  let durable = Bytes.copy base_img in
  let pending : pending list ref = ref [] in    (* program order *)
  let states_checked = ref 0 and failures = ref 0 and crash_points = ref 0 in
  let first_failure = ref None in
  let space_base = Spp_pmdk.Pool.base pool in
  let check_state descr img =
    if !states_checked < max_states then begin
      incr states_checked;
      let dev' = Memdev.of_image ~name:"pmreorder-state" img in
      let space' = Space.create () in
      match Spp_pmdk.Pool.of_dev space' ~base:space_base dev' with
      | pool' ->
        if not (consistent pool') then begin
          incr failures;
          if !first_failure = None then first_failure := Some descr
        end
      | exception e ->
        incr failures;
        if !first_failure = None then
          first_failure := Some (descr ^ ": " ^ Printexc.to_string e)
    end
  in
  let crash_here idx =
    incr crash_points;
    let subsets = subsets_bounded !pending subset_limit in
    List.iteri
      (fun si sel ->
        let img = Bytes.copy durable in
        List.iter (fun p -> Bytes.blit p.p_data 0 img p.p_off p.p_len) sel;
        check_state (Printf.sprintf "event %d subset %d" idx si) img)
      subsets
  in
  List.iteri
    (fun idx ev ->
      (match ev with
       | Memdev.Ev_store { off; len; data } ->
         pending := !pending @ [ { p_off = off; p_len = len; p_data = data;
                                   p_flushed = false } ]
       | Memdev.Ev_flush { off; len } ->
         let lo = off / cl * cl in
         let hi = (off + len + cl - 1) / cl * cl in
         List.iter
           (fun p ->
             if (not p.p_flushed) && p.p_off < hi && lo < p.p_off + p.p_len
             then p.p_flushed <- true)
           !pending
       | Memdev.Ev_fence ->
         let drained, still =
           List.partition (fun p -> p.p_flushed) !pending
         in
         List.iter (fun p -> Bytes.blit p.p_data 0 durable p.p_off p.p_len)
           drained;
         pending := still);
      crash_here idx)
    events;
  (* final state with everything pending lost, and everything applied *)
  crash_here (List.length events);
  {
    crash_points = !crash_points;
    states_checked = !states_checked;
    failures = !failures;
    first_failure = !first_failure;
  }
