(** libpmemlog analogue: a crash-consistent append-only log over a PM
    object (PMDK's second core library next to libpmemobj, paper §II-B).

    Appends persist the payload past the committed watermark before
    advancing (and persisting) the watermark, so a torn append is
    invisible after a crash. Under an SPP pool the data object is
    tagged, so an append beyond capacity faults instead of trampling a
    neighbouring object. *)

open Spp_pmdk

exception Log_full

type t

val create : Spp_access.t -> capacity:int -> t
val attach : Spp_access.t -> desc:Oid.t -> data:Oid.t -> t
(** Re-attach to an existing log (after reopen). *)

val descriptor : t -> Oid.t
val data_oid : t -> Oid.t

val capacity : t -> int
val committed : t -> int
val remaining : t -> int

val append : t -> string -> unit
(** Raises {!Log_full} when the payload does not fit. *)

val read_all : t -> string

val walk : t -> (off:int -> string -> int) -> unit
(** [walk t f]: [f ~off suffix] must return the number of bytes it
    consumed; returning 0 stops the walk ([pmemlog_walk]). *)

val rewind : t -> unit
