(* libpmemlog analogue: a crash-consistent append-only log over a PM
   object (PMDK's second core library next to libpmemobj, paper §II-B).

   Layout: a descriptor [ capacity | committed ] plus a data object.
   Appends write the payload past the committed watermark, persist it,
   and only then advance (and persist) the watermark — so a torn append
   is invisible after a crash, the same write-ahead discipline as the
   real library. Under an SPP pool the data object is tagged, so an
   append beyond capacity faults instead of trampling the neighbour. *)

open Spp_pmdk

exception Log_full

type t = {
  a : Spp_access.t;
  desc : Oid.t;
  data : Oid.t;
}

let f_committed = 8

let create (a : Spp_access.t) ~capacity =
  if capacity <= 0 then invalid_arg "Spp_pmemlog.create";
  let desc = a.Spp_access.palloc ~zero:true 16 in
  let data = a.Spp_access.palloc capacity in
  let dp = a.Spp_access.direct desc in
  a.Spp_access.store_word dp capacity;
  Pool.persist a.Spp_access.pool ~off:desc.Oid.off ~len:16;
  { a; desc; data }

let attach (a : Spp_access.t) ~desc ~data = { a; desc; data }

let descriptor t = t.desc
let data_oid t = t.data

let capacity t =
  (* word 0 of the descriptor *)
  t.a.Spp_access.load_word (t.a.Spp_access.direct t.desc)

let committed t =
  t.a.Spp_access.load_word
    (t.a.Spp_access.gep (t.a.Spp_access.direct t.desc) f_committed)

let remaining t = capacity t - committed t

let append t payload =
  let a = t.a in
  let len = String.length payload in
  if len > remaining t then raise Log_full;
  let tail = committed t in
  let dst = a.Spp_access.gep (a.Spp_access.direct t.data) tail in
  (* 1. payload beyond the watermark, persisted first *)
  a.Spp_access.write_string dst payload;
  Pool.persist a.Spp_access.pool ~off:(t.data.Oid.off + tail) ~len;
  (* 2. then the watermark advance *)
  let wm = a.Spp_access.gep (a.Spp_access.direct t.desc) f_committed in
  a.Spp_access.store_word wm (tail + len);
  Pool.persist a.Spp_access.pool ~off:(t.desc.Oid.off + f_committed) ~len:8

let read_all t =
  let n = committed t in
  if n = 0 then ""
  else
    Bytes.to_string (t.a.Spp_access.read_bytes (t.a.Spp_access.direct t.data) n)

(* Walk the log in caller-defined records: [f] receives the byte offset
   and the remaining committed suffix and returns how many bytes it
   consumed (0 stops the walk) — pmemlog_walk's contract. *)
let walk t f =
  let n = committed t in
  let rec go off =
    if off < n then begin
      let chunk =
        Bytes.to_string
          (t.a.Spp_access.read_bytes
             (t.a.Spp_access.gep (t.a.Spp_access.direct t.data) off)
             (n - off))
      in
      let consumed = f ~off chunk in
      if consumed > 0 then go (off + consumed)
    end
  in
  go 0

let rewind t =
  let a = t.a in
  let wm = a.Spp_access.gep (a.Spp_access.direct t.desc) f_committed in
  a.Spp_access.store_word wm 0;
  Pool.persist a.Spp_access.pool ~off:(t.desc.Oid.off + f_committed) ~len:8
