(** Interpreter for the miniature IR: executes (instrumented or plain)
    programs against the simulated machine, with hook-execution counters
    so instrumentation cost and optimization effect are measurable (the
    ablation experiment). *)

open Spp_sim
open Spp_pmdk

type machine = {
  space : Space.t;
  pool : Pool.t;
  vheap : Vheap.t;
  cfg : Spp_core.Config.t option;   (** [Some] on an SPP-mode machine *)
  objs : (int, Oid.t) Hashtbl.t;    (** PM objects by [Pm_alloc] name *)
  mutable hook_execs : int;
  mutable loads : int;
  mutable stores : int;
  mutable external_calls : int;
}

val make_machine :
  ?spp:bool -> ?tag_bits:int -> ?pool_size:int -> unit -> machine
(** Default: an SPP-mode pool with 26 tag bits. *)

val run_program : machine -> Ir.program -> unit
(** Executes [main]. Hook instructions on a non-SPP machine fail; an
    overflown access raises {!Fault.Fault} — exactly like running an
    instrumented binary. The "external" stub dereferences its pointer
    arguments raw, so unmasked tagged pointers crash there. *)
