(* The SPP compiler passes over the miniature IR (paper §IV-C, §IV-E, §V).

   - pointer-origin tracking: classify every register as Volatile,
     Persistent, or Unknown from the way it is produced, propagating
     through GEPs; with tracking enabled, hooks are pruned for volatile
     pointers and persistent pointers use the _direct hook variants;
   - transformation: insert Hook_update after pointer arithmetic,
     Hook_check before loads/stores, Hook_clean before pointer-to-integer
     conversions;
   - LTO: mask pointer arguments of external calls
     (Hook_clean_external) and classify function parameters from their
     call sites, re-deriving callee instrumentation;
   - bound-check preemption: hoist the per-iteration tag update and bound
     check of a monotonic constant-stride loop into a single pre-header
     update plus a dummy load. *)

open Ir

type origin =
  | Volatile
  | Persistent
  | Unknown

let merge a b = if a = b then a else Unknown

type stats = {
  mutable inserted : int;          (* hook instructions inserted *)
  mutable direct : int;            (* hooks using the _direct variant *)
  mutable pruned_volatile : int;   (* hook sites skipped: volatile pointer *)
  mutable preempted : int;         (* hooks removed by preemption *)
}

let fresh_stats () =
  { inserted = 0; direct = 0; pruned_volatile = 0; preempted = 0 }

(* --- Pointer-origin tracking -------------------------------------------- *)

(* [param_origin fn i] gives the LTO-derived origin of parameter [i]. *)
let classify ~tracking ?(param_origin = fun _ _ -> Unknown) (f : func) =
  let origins = Array.make (max f.nregs 1) Unknown in
  if not tracking then origins
  else begin
    List.iteri (fun i r -> origins.(r) <- param_origin f.fname i) f.params;
    let changed = ref true in
    let note r o = if origins.(r) <> o then begin origins.(r) <- o; changed := true end in
    let rec scan body =
      List.iter
        (fun i ->
          match i with
          | Const { dst; _ } -> note dst Volatile
          | Vheap_alloc { dst; _ } -> note dst Volatile
          | Pm_direct { dst; _ } -> note dst Persistent
          | Gep { dst; src; _ } -> note dst (merge origins.(dst) origins.(src))
          | Load { dst; _ } -> note dst Unknown
          | Add { dst; _ } -> note dst Unknown
          | Ptr_to_int { dst; _ } -> note dst Volatile
          | Int_to_ptr { dst; _ } -> note dst Unknown
          | Loop { body; _ } -> scan body
          | Pm_alloc _ | Store _ | Call _ | Call_external _ | Hook_update _
          | Hook_check _ | Hook_clean _ | Hook_clean_external _
          | Dummy_load _ -> ())
        body
    in
    (* First pass establishes origins; repeat until stable so that a GEP
       reading a register defined later in a loop body converges. *)
    changed := true;
    let rounds = ref 0 in
    while !changed && !rounds < 4 do
      changed := false;
      incr rounds;
      scan f.body
    done;
    origins
  end

(* --- Transformation pass ------------------------------------------------- *)

let transform ~tracking ~stats ?param_origin (f : func) =
  let origins = classify ~tracking ?param_origin f in
  let next = ref f.nregs in
  let fresh () = let r = !next in incr next; r in
  let origin r = if r < Array.length origins then origins.(r) else Unknown in
  let hook o =
    (* returns [Some direct] when the site needs a hook *)
    match o with
    | Volatile when tracking -> None
    | Persistent when tracking -> Some true
    | Volatile | Persistent | Unknown -> Some false
  in
  let rec tr body =
    List.concat_map
      (fun i ->
        match i with
        | Gep { dst; src; off } ->
          (match hook (merge (origin dst) (origin src)) with
           | None -> stats.pruned_volatile <- stats.pruned_volatile + 1; [ i ]
           | Some direct ->
             stats.inserted <- stats.inserted + 1;
             if direct then stats.direct <- stats.direct + 1;
             [ i; Hook_update { ptr = dst; off; direct } ])
        | Load { dst; ptr; width } ->
          (match hook (origin ptr) with
           | None -> stats.pruned_volatile <- stats.pruned_volatile + 1; [ i ]
           | Some direct ->
             stats.inserted <- stats.inserted + 1;
             if direct then stats.direct <- stats.direct + 1;
             let t = fresh () in
             [ Hook_check { dst = t; ptr; width; direct };
               Load { dst; ptr = t; width } ])
        | Store { ptr; value; width } ->
          (match hook (origin ptr) with
           | None -> stats.pruned_volatile <- stats.pruned_volatile + 1; [ i ]
           | Some direct ->
             stats.inserted <- stats.inserted + 1;
             if direct then stats.direct <- stats.direct + 1;
             let t = fresh () in
             [ Hook_check { dst = t; ptr; width; direct };
               Store { ptr = t; value; width } ])
        | Ptr_to_int { dst; src } ->
          (match hook (origin src) with
           | None -> stats.pruned_volatile <- stats.pruned_volatile + 1; [ i ]
           | Some direct ->
             stats.inserted <- stats.inserted + 1;
             if direct then stats.direct <- stats.direct + 1;
             let t = fresh () in
             [ Hook_clean { dst = t; ptr = src; direct };
               Ptr_to_int { dst; src = t } ])
        | Loop { count; body } -> [ Loop { count; body = tr body } ]
        | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Add _
        | Int_to_ptr _ | Call _ | Call_external _ | Hook_update _
        | Hook_check _ | Hook_clean _ | Hook_clean_external _ | Dummy_load _
          -> [ i ])
      body
  in
  ({ f with body = tr f.body; nregs = !next }, origins)

(* --- LTO pass ------------------------------------------------------------ *)

(* Derive parameter origins from every call site; a parameter receiving a
   single origin across all callers inherits it. *)
let param_origins_of_program ~tracking (p : program) =
  let table : (string * int, origin) Hashtbl.t = Hashtbl.create 16 in
  if tracking then
    List.iter
      (fun f ->
        let origins = classify ~tracking f in
        let rec scan body =
          List.iter
            (fun i ->
              match i with
              | Call { fn; args } ->
                List.iteri
                  (fun idx arg ->
                    let o =
                      if arg < Array.length origins then origins.(arg)
                      else Unknown
                    in
                    let key = (fn, idx) in
                    match Hashtbl.find_opt table key with
                    | None -> Hashtbl.replace table key o
                    | Some prev -> Hashtbl.replace table key (merge prev o))
                  args
              | Loop { body; _ } -> scan body
              | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _
              | Load _ | Store _ | Add _ | Ptr_to_int _ | Int_to_ptr _
              | Call_external _ | Hook_update _ | Hook_check _ | Hook_clean _
              | Hook_clean_external _ | Dummy_load _ -> ())
            body
        in
        scan f.body)
      p.funcs;
  fun fn idx ->
    match Hashtbl.find_opt table (fn, idx) with
    | Some o -> o
    | None -> Unknown

(* Mask pointer arguments of external calls. Origins are consulted so
   volatile arguments skip the masking (they carry no tag). *)
let mask_externals ~tracking ~stats (f : func) origins =
  let origin r = if r < Array.length origins then origins.(r) else Unknown in
  let rec go body =
    List.concat_map
      (fun i ->
        match i with
        | Call_external { args } ->
          let masks =
            List.filter_map
              (fun arg ->
                match origin arg with
                | Volatile when tracking -> None
                | Volatile | Persistent | Unknown ->
                  stats.inserted <- stats.inserted + 1;
                  Some (Hook_clean_external { ptr = arg }))
              args
          in
          masks @ [ i ]
        | Loop { count; body } -> [ Loop { count; body = go body } ]
        | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _ | Load _
        | Store _ | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _
        | Hook_update _ | Hook_check _ | Hook_clean _ | Hook_clean_external _
        | Dummy_load _ -> [ i ])
      body
  in
  { f with body = go f.body }

(* --- Bound-check preemption (loop hoisting) ------------------------------ *)

(* Recognize the canonical instrumented monotonic loop

     Loop { count; body = [ Gep p p off; Hook_update p off;
                            Hook_check t p w; (Load|Store) via t ] }

   and rewrite it into a pre-header bound check on a scout pointer plus a
   hook-free loop over the masked pointer (paper §V-C). *)
let preempt_loops ~stats (f : func) =
  let next = ref f.nregs in
  let fresh () = let r = !next in incr next; r in
  let rec go body =
    List.concat_map
      (fun i ->
        match i with
        | Loop
            { count;
              body =
                [ Gep { dst = p1; src = p2; off };
                  Hook_update { ptr = p3; off = o2; direct };
                  Hook_check { dst = t; ptr = p4; width; direct = d2 };
                  access ] }
          when p1 = p2 && p2 = p3 && p3 = p4 && off = o2 && off > 0
               && (match access with
                   | Load { ptr; _ } | Store { ptr; _ } -> ptr = t
                   | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _
                   | Gep _ | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _
                   | Call_external _ | Loop _ | Hook_update _ | Hook_check _
                   | Hook_clean _ | Hook_clean_external _ | Dummy_load _
                     -> false) ->
          (* per-iteration hooks (2 × count) collapse into 3 pre-header
             instructions *)
          stats.preempted <- stats.preempted + (2 * count) - 3;
          let scout = fresh () and scout_masked = fresh ()
          and masked = fresh () in
          let rewritten_access =
            match access with
            | Load { dst; width; _ } -> Load { dst; ptr = masked; width }
            | Store { value; width; _ } -> Store { ptr = masked; value; width }
            | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _
            | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _ | Call_external _
            | Loop _ | Hook_update _ | Hook_check _ | Hook_clean _
            | Hook_clean_external _ | Dummy_load _ -> assert false
          in
          [ (* pre-header: scout to the furthest byte, dummy load checks *)
            Gep { dst = scout; src = p1; off = 0 };
            Hook_update { ptr = scout; off = count * off; direct };
            Hook_check { dst = scout_masked; ptr = scout; width; direct = d2 };
            Dummy_load { ptr = scout_masked };
            (* masked base pointer; the loop runs hook-free *)
            Hook_clean { dst = masked; ptr = p1; direct };
            Loop
              { count;
                body = [ Gep { dst = masked; src = masked; off };
                         rewritten_access ] };
            (* keep the original pointer's tag in sync after the loop *)
            Gep { dst = p1; src = p1; off = count * off };
            Hook_update { ptr = p1; off = count * off; direct } ]
        | Loop { count; body } -> [ Loop { count; body = go body } ]
        | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _ | Load _
        | Store _ | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _
        | Call_external _ | Hook_update _ | Hook_check _ | Hook_clean _
        | Hook_clean_external _ | Dummy_load _ -> [ i ])
      body
  in
  { f with body = go f.body; nregs = !next }

(* --- Bound-check preemption (straight-line blocks) ----------------------- *)

(* The paper's §IV-E basic-block case: a run of

     Gep p p c_i; Hook_update p c_i; Hook_check t_i p w_i; access via t_i

   groups on the same pointer with positive constant offsets collapses
   into one scout check for the total offset plus a hook-free run over
   the masked pointer. *)

type block_group = {
  g_off : int;
  g_width : int;
  g_access : Ir.inst;   (* Load/Store with ptr = the check temp *)
}

let match_group body =
  match body with
  | Gep { dst = p1; src = p2; off }
    :: Hook_update { ptr = p3; off = o2; direct }
    :: Hook_check { dst = t; ptr = p4; width; direct = _ }
    :: access :: rest
    when p1 = p2 && p2 = p3 && p3 = p4 && off = o2 && off > 0 ->
    (match access with
     | Load { ptr; _ } | Store { ptr; _ } when ptr = t ->
       Some (p1, { g_off = off; g_width = width; g_access = access }, direct, rest)
     | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _ | Load _
     | Store _ | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _
     | Call_external _ | Loop _ | Hook_update _ | Hook_check _ | Hook_clean _
     | Hook_clean_external _ | Dummy_load _ -> None)
  | _ -> None

let preempt_blocks ~stats (f : func) =
  let next = ref f.nregs in
  let fresh () = let r = !next in incr next; r in
  let rec collect p acc body =
    match match_group body with
    | Some (p', g, _, rest) when p' = p -> collect p (g :: acc) rest
    | Some _ | None -> (List.rev acc, body)
  in
  let rewrite p direct groups =
    let total = List.fold_left (fun a g -> a + g.g_off) 0 groups in
    let max_w = List.fold_left (fun a g -> max a g.g_width) 1 groups in
    let scout = fresh () and scout_m = fresh () and masked = fresh () in
    stats.preempted <- stats.preempted + (2 * List.length groups) - 3;
    [ Gep { dst = scout; src = p; off = 0 };
      Hook_update { ptr = scout; off = total; direct };
      Hook_check { dst = scout_m; ptr = scout; width = max_w; direct };
      Dummy_load { ptr = scout_m };
      Hook_clean { dst = masked; ptr = p; direct } ]
    @ List.concat_map
        (fun g ->
          let access =
            match g.g_access with
            | Load { dst; width; _ } -> Load { dst; ptr = masked; width }
            | Store { value; width; _ } -> Store { ptr = masked; value; width }
            | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _
            | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _ | Call_external _
            | Loop _ | Hook_update _ | Hook_check _ | Hook_clean _
            | Hook_clean_external _ | Dummy_load _ -> assert false
          in
          [ Gep { dst = masked; src = masked; off = g.g_off }; access ])
        groups
    @ [ Gep { dst = p; src = p; off = total };
        Hook_update { ptr = p; off = total; direct } ]
  in
  let rec go body =
    match body with
    | [] -> []
    | Loop { count; body = lb } :: rest ->
      Loop { count; body = go lb } :: go rest
    | i :: _ -> (
      match match_group body with
      | Some (p, g, direct, rest) ->
        let more, rest = collect p [] rest in
        let groups = g :: more in
        if List.length groups >= 2 then rewrite p direct groups @ go rest
        else
          (* single group: keep as is; take the matched prefix verbatim *)
          (match body with
           | a :: b :: c :: d :: rest' -> a :: b :: c :: d :: go rest'
           | _ -> body)
      | None -> i :: go (List.tl body))
  in
  { f with body = go f.body; nregs = !next }

(* --- Pipeline ------------------------------------------------------------ *)

type options = {
  tracking : bool;     (* pointer-origin tracking (paper §V-C) *)
  preemption : bool;   (* bound-check preemption / loop hoisting *)
}

let default_options = { tracking = true; preemption = true }

let compile ?(options = default_options) (p : program) =
  let stats = fresh_stats () in
  let param_origin = param_origins_of_program ~tracking:options.tracking p in
  let funcs =
    List.map
      (fun f ->
        let f', origins =
          transform ~tracking:options.tracking ~stats
            ~param_origin:(fun fn i -> param_origin fn i) f
        in
        let f' = mask_externals ~tracking:options.tracking ~stats f' origins in
        if options.preemption then
          preempt_blocks ~stats (preempt_loops ~stats f')
        else f')
      p.funcs
  in
  ({ p with funcs }, stats)
