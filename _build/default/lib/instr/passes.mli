(** The SPP compiler passes over the miniature IR (paper §IV-C, §IV-E,
    §V): pointer-origin tracking, hook insertion, LTO external-call
    masking with call-site parameter classification, and bound-check
    preemption (loop hoisting). *)

open Ir

type origin =
  | Volatile
  | Persistent
  | Unknown

val merge : origin -> origin -> origin

type stats = {
  mutable inserted : int;          (** hook instructions inserted *)
  mutable direct : int;            (** hooks using the _direct variant *)
  mutable pruned_volatile : int;   (** hook sites skipped: volatile ptr *)
  mutable preempted : int;         (** hook executions removed *)
}

val classify :
  tracking:bool -> ?param_origin:(string -> int -> origin) -> func ->
  origin array
(** Per-register origins by forward dataflow; with [tracking:false]
    everything is [Unknown] (instrument-everything mode). *)

val transform :
  tracking:bool -> stats:stats -> ?param_origin:(string -> int -> origin) ->
  func -> func * origin array

val mask_externals : tracking:bool -> stats:stats -> func -> origin array -> func

val preempt_loops : stats:stats -> func -> func
(** Rewrite instrumented monotonic constant-stride loops into a
    pre-header scout check + a hook-free loop body (paper §V-C). *)

val preempt_blocks : stats:stats -> func -> func
(** Collapse straight-line runs of update/check/access groups on one
    pointer into a single scout check (the paper's §IV-E basic-block
    case). *)

type options = {
  tracking : bool;
  preemption : bool;
}

val default_options : options

val compile : ?options:options -> program -> program * stats
(** The full pipeline: classification → transformation → LTO →
    (optionally) preemption, per function. *)
