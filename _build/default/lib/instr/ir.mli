(** A miniature pointer IR standing in for LLVM IR (paper §IV-C, §V-A).

    Programs manipulate virtual registers holding machine words. A GEP
    adds a constant to the full register value (moving the address field
    of a tagged pointer); the SPP transformation pass inserts the
    [Hook_*] instructions that maintain the tag and perform the implicit
    bound checks. *)

type reg = int

type inst =
  (* application instructions *)
  | Const of { dst : reg; value : int }
  | Vheap_alloc of { dst : reg; size : int }
  | Pm_alloc of { obj : int; size : int }
  | Pm_direct of { dst : reg; obj : int }   (** pmemobj_direct *)
  | Gep of { dst : reg; src : reg; off : int }
  | Load of { dst : reg; ptr : reg; width : int }
  | Store of { ptr : reg; value : reg; width : int }
  | Add of { dst : reg; a : reg; b : reg }
  | Ptr_to_int of { dst : reg; src : reg }
  | Int_to_ptr of { dst : reg; src : reg }
  | Call of { fn : string; args : reg list }
  | Call_external of { args : reg list }
  | Loop of { count : int; body : inst list }
  (* SPP hook instructions, inserted by the passes *)
  | Hook_update of { ptr : reg; off : int; direct : bool }
  | Hook_check of { dst : reg; ptr : reg; width : int; direct : bool }
  | Hook_clean of { dst : reg; ptr : reg; direct : bool }
  | Hook_clean_external of { ptr : reg }
  | Dummy_load of { ptr : reg }   (** preempted bound check *)

type func = {
  fname : string;
  params : reg list;
  nregs : int;
  body : inst list;
}

type program = {
  funcs : func list;
  main : string;
}

val find_func : program -> string -> func
val count_insts : inst list -> int
val count_hooks : inst list -> int
val program_hooks : program -> int
