lib/instr/interp.ml: Array Hashtbl Ir List Mode Oid Pool Printf Space Spp_core Spp_pmdk Spp_sim Vheap
