lib/instr/interp.mli: Hashtbl Ir Oid Pool Space Spp_core Spp_pmdk Spp_sim Vheap
