lib/instr/ir.ml: List
