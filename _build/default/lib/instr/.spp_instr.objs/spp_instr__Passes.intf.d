lib/instr/passes.mli: Ir
