lib/instr/ir.mli:
