lib/instr/passes.ml: Array Hashtbl Ir List
