(* A miniature pointer IR standing in for LLVM IR (paper §IV-C, §V-A).

   Programs manipulate virtual registers holding machine words (pointers
   or data). A GEP adds a constant to the full register value (moving the
   address field of a tagged pointer), exactly like LLVM pointer
   arithmetic on a Delta-pointer; the SPP transformation pass inserts the
   hook instructions that maintain the tag. Uninstrumented loads and
   stores dereference the raw register value. *)

type reg = int

type inst =
  (* application instructions *)
  | Const of { dst : reg; value : int }
  | Vheap_alloc of { dst : reg; size : int }
  | Pm_alloc of { obj : int; size : int }       (* names a PM object *)
  | Pm_direct of { dst : reg; obj : int }       (* pmemobj_direct *)
  | Gep of { dst : reg; src : reg; off : int }
  | Load of { dst : reg; ptr : reg; width : int }
  | Store of { ptr : reg; value : reg; width : int }
  | Add of { dst : reg; a : reg; b : reg }
  | Ptr_to_int of { dst : reg; src : reg }
  | Int_to_ptr of { dst : reg; src : reg }
  | Call of { fn : string; args : reg list }
  | Call_external of { args : reg list }
  | Loop of { count : int; body : inst list }
  (* SPP hook instructions, inserted by the passes *)
  | Hook_update of { ptr : reg; off : int; direct : bool }
  | Hook_check of { dst : reg; ptr : reg; width : int; direct : bool }
  | Hook_clean of { dst : reg; ptr : reg; direct : bool }
  | Hook_clean_external of { ptr : reg }
  | Dummy_load of { ptr : reg }                 (* preempted bound check *)

type func = {
  fname : string;
  params : reg list;
  nregs : int;
  body : inst list;
}

type program = {
  funcs : func list;
  main : string;
}

let find_func p name =
  match List.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func: no function " ^ name)

let rec count_insts body =
  List.fold_left
    (fun acc i ->
      acc + (match i with Loop { body; _ } -> 1 + count_insts body | _ -> 1))
    0 body

let rec count_hooks body =
  List.fold_left
    (fun acc i ->
      acc
      + (match i with
         | Hook_update _ | Hook_check _ | Hook_clean _ | Hook_clean_external _
         | Dummy_load _ -> 1
         | Loop { body; _ } -> count_hooks body
         | Const _ | Vheap_alloc _ | Pm_alloc _ | Pm_direct _ | Gep _
         | Load _ | Store _ | Add _ | Ptr_to_int _ | Int_to_ptr _ | Call _
         | Call_external _ -> 0))
    0 body

let program_hooks p =
  List.fold_left (fun acc f -> acc + count_hooks f.body) 0 p.funcs
