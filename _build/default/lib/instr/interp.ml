(* Interpreter for the miniature IR: executes (instrumented or plain)
   programs against the simulated machine, with hook-execution counters
   so instrumentation cost and the effect of each optimization are
   measurable (the ablation experiment). *)

open Spp_sim
open Spp_pmdk
open Ir

type machine = {
  space : Space.t;
  pool : Pool.t;
  vheap : Vheap.t;
  cfg : Spp_core.Config.t option;    (* Some in SPP mode *)
  objs : (int, Oid.t) Hashtbl.t;     (* Pm_alloc names *)
  mutable hook_execs : int;
  mutable loads : int;
  mutable stores : int;
  mutable external_calls : int;
}

let make_machine ?(spp = true) ?(tag_bits = 26) ?(pool_size = 1 lsl 20) () =
  let space = Space.create () in
  let mode, cfg =
    if spp then begin
      let c = Spp_core.Config.make ~tag_bits in
      (Mode.Spp c, Some c)
    end
    else (Mode.Native, None)
  in
  let pool = Pool.create space ~base:4096 ~size:pool_size ~mode ~name:"ir" in
  let vheap = Vheap.create space (1 lsl 20) in
  { space; pool; vheap; cfg; objs = Hashtbl.create 16;
    hook_execs = 0; loads = 0; stores = 0; external_calls = 0 }

let cfg_exn m =
  match m.cfg with
  | Some c -> c
  | None -> failwith "Interp: hook executed on a non-SPP machine"

let load_width m addr = function
  | 1 -> Space.load_u8 m.space addr
  | 8 -> Space.load_word m.space addr
  | w -> invalid_arg (Printf.sprintf "Interp: unsupported width %d" w)

let store_width m addr v = function
  | 1 -> Space.store_u8 m.space addr v
  | 8 -> Space.store_word m.space addr v
  | w -> invalid_arg (Printf.sprintf "Interp: unsupported width %d" w)

(* The "external library": uninstrumented code that dereferences its
   pointer arguments directly. If the caller failed to mask a tagged
   pointer, this is where it blows up. *)
let external_stub m args regs =
  m.external_calls <- m.external_calls + 1;
  List.iter (fun r -> ignore (Space.load_u8 m.space regs.(r))) args

let run_program m (p : program) =
  let rec run_func (f : func) (args : int list) =
    let regs = Array.make (max f.nregs 256) 0 in
    List.iteri
      (fun i param ->
        regs.(param) <- (match List.nth_opt args i with Some v -> v | None -> 0))
      f.params;
    let rec exec body = List.iter exec1 body
    and exec1 = function
      | Const { dst; value } -> regs.(dst) <- value
      | Vheap_alloc { dst; size } -> regs.(dst) <- Vheap.malloc m.vheap size
      | Pm_alloc { obj; size } ->
        Hashtbl.replace m.objs obj (Pool.alloc m.pool ~size)
      | Pm_direct { dst; obj } ->
        (match Hashtbl.find_opt m.objs obj with
         | Some oid -> regs.(dst) <- Pool.direct m.pool oid
         | None -> invalid_arg (Printf.sprintf "Interp: no PM object %d" obj))
      | Gep { dst; src; off } -> regs.(dst) <- regs.(src) + off
      | Load { dst; ptr; width } ->
        m.loads <- m.loads + 1;
        regs.(dst) <- load_width m regs.(ptr) width
      | Store { ptr; value; width } ->
        m.stores <- m.stores + 1;
        store_width m regs.(ptr) regs.(value) width
      | Add { dst; a; b } -> regs.(dst) <- regs.(a) + regs.(b)
      | Ptr_to_int { dst; src } -> regs.(dst) <- regs.(src)
      | Int_to_ptr { dst; src } -> regs.(dst) <- regs.(src)
      | Call { fn; args } -> run_func (find_func p fn) (List.map (fun r -> regs.(r)) args)
      | Call_external { args } -> external_stub m args regs
      | Loop { count; body } ->
        for _ = 1 to count do exec body done
      | Hook_update { ptr; off; direct } ->
        m.hook_execs <- m.hook_execs + 1;
        let c = cfg_exn m in
        regs.(ptr) <-
          (if direct then Spp_core.Runtime.spp_updatetag_direct c regs.(ptr) off
           else Spp_core.Runtime.spp_updatetag c regs.(ptr) off)
      | Hook_check { dst; ptr; width; direct } ->
        m.hook_execs <- m.hook_execs + 1;
        let c = cfg_exn m in
        regs.(dst) <-
          (if direct then Spp_core.Runtime.spp_checkbound_direct c regs.(ptr) width
           else Spp_core.Runtime.spp_checkbound c regs.(ptr) width)
      | Hook_clean { dst; ptr; direct } ->
        m.hook_execs <- m.hook_execs + 1;
        let c = cfg_exn m in
        regs.(dst) <-
          (if direct then Spp_core.Runtime.spp_cleantag_direct c regs.(ptr)
           else Spp_core.Runtime.spp_cleantag c regs.(ptr))
      | Hook_clean_external { ptr } ->
        m.hook_execs <- m.hook_execs + 1;
        regs.(ptr) <- Spp_core.Runtime.spp_cleantag_external (cfg_exn m) regs.(ptr)
      | Dummy_load { ptr } ->
        m.loads <- m.loads + 1;
        ignore (Space.load_u8 m.space regs.(ptr))
    in
    exec f.body
  in
  run_func (find_func p p.main) []
