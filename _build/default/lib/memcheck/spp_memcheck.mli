(** memcheck baseline — a Valgrind-memcheck-like dynamic checker (the
    paper's Table IV "memcheck" variant).

    Validates every access against a side table of live allocation
    intervals at byte granularity, without provenance: an overflow that
    lands inside another live (or slack) region goes unnoticed, and the
    per-access lookup cost is why such tools are debugging-only. *)

exception Violation of { addr : int; len : int }

type t

val create : unit -> t

val track : t -> addr:int -> len:int -> unit
(** Register a live allocation ([len] is typically the usable, class-
    rounded capacity — what PMDK's annotations report). *)

val untrack : t -> addr:int -> unit
(** Raises [Invalid_argument] for an unknown address. *)

val check : t -> int -> int -> unit
(** Raises {!Violation} if any byte of the access is unaddressable. *)

val is_valid : t -> int -> int -> bool
val live_count : t -> int
val checks_performed : t -> int
