(* memcheck baseline — a Valgrind-memcheck-like dynamic checker (the
   paper's Table IV "memcheck" variant, built on the pmem Valgrind fork).

   Every access is validated against a side table of live allocations.
   Two properties this reproduces faithfully:

   - cost: the table lookup on every single access is why Valgrind-class
     tools are debugging-only (the paper's motivation for SPP);
   - coverage: an overflow that lands inside *another* live allocation is
     NOT detected (there are no redzones and no pointer provenance), which
     is why memcheck catches fewer RIPE attacks than SafePM or SPP.

   The table is a sorted dynamic array of [start, end) intervals with
   binary search — a reasonable stand-in for Valgrind's VA bits. *)

exception Violation of { addr : int; len : int }

let () =
  Printexc.register_printer (function
    | Violation { addr; len } ->
      Some (Printf.sprintf
              "memcheck: invalid access of %d bytes at 0x%x" len addr)
    | _ -> None)

type t = {
  mutable starts : int array;   (* sorted *)
  mutable ends : int array;     (* ends.(i) corresponds to starts.(i) *)
  mutable n : int;
  mutable checks : int;
}

let create () =
  { starts = Array.make 64 0; ends = Array.make 64 0; n = 0; checks = 0 }

(* Index of the last interval with start <= addr, or -1. *)
let locate t addr =
  let lo = ref 0 and hi = ref (t.n - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.starts.(mid) <= addr then begin
      res := mid;
      lo := mid + 1
    end else hi := mid - 1
  done;
  !res

let grow t =
  let cap = Array.length t.starts in
  if t.n = cap then begin
    let s = Array.make (2 * cap) 0 and e = Array.make (2 * cap) 0 in
    Array.blit t.starts 0 s 0 t.n;
    Array.blit t.ends 0 e 0 t.n;
    t.starts <- s;
    t.ends <- e
  end

let track t ~addr ~len =
  grow t;
  let pos = locate t addr + 1 in
  Array.blit t.starts pos t.starts (pos + 1) (t.n - pos);
  Array.blit t.ends pos t.ends (pos + 1) (t.n - pos);
  t.starts.(pos) <- addr;
  t.ends.(pos) <- addr + len;
  t.n <- t.n + 1

let untrack t ~addr =
  let pos = locate t addr in
  if pos < 0 || t.starts.(pos) <> addr then
    invalid_arg "Memcheck.untrack: unknown allocation";
  Array.blit t.starts (pos + 1) t.starts pos (t.n - pos - 1);
  Array.blit t.ends (pos + 1) t.ends pos (t.n - pos - 1);
  t.n <- t.n - 1

(* Byte-granularity addressability (like Valgrind's VA bits): the access
   is valid iff every byte is covered by the union of live intervals —
   provenance is not tracked, so an overflow landing in another live
   allocation goes unnoticed. *)
let check t addr len =
  t.checks <- t.checks + 1;
  let limit = addr + len in
  let rec cover point =
    if point < limit then begin
      let pos = locate t point in
      if pos < 0 || t.ends.(pos) <= point then raise (Violation { addr; len });
      cover t.ends.(pos)
    end
  in
  cover addr

let is_valid t addr len =
  match check t addr len with
  | () -> true
  | exception Violation _ -> false

let live_count t = t.n
let checks_performed t = t.checks
