(* The libpmemobj "Buffon's needle" and "π calculation" examples: Monte
   Carlo estimators whose progress (trial counters) lives in PM, so an
   interrupted computation resumes where it stopped. Randomness is a
   deterministic LCG seeded in the PM state, as the C examples do with a
   stored seed.

   State: [ seed | trials | hits ]  (fixed-point results ×10^6) *)

open Spp_pmdk

type t = {
  a : Spp_access.t;
  state : Oid.t;
}

let f_seed = 0
let f_trials = 8
let f_hits = 16

let create (a : Spp_access.t) ~seed =
  let state = a.Spp_access.palloc ~zero:true 24 in
  let p = a.Spp_access.direct state in
  a.Spp_access.store_word (a.Spp_access.gep p f_seed) seed;
  { a; state }

let attach (a : Spp_access.t) state = { a; state }

let field t f =
  t.a.Spp_access.load_word (t.a.Spp_access.gep (t.a.Spp_access.direct t.state) f)

let trials t = field t f_trials
let hits t = field t f_hits

(* 63-bit LCG (Knuth's multiplier folded into the word width). *)
let lcg_next s = ((s * 0x27BB2EE687B0B0FD) + 0x14057B7EF767814F) land max_int

(* uniform in [0, 1) with 30 bits of precision *)
let uniform s =
  let s = lcg_next s in
  (s, float_of_int ((s lsr 20) land 0x3FFFFFFF) /. 1073741824.)

let run_batch t ~trials:n ~hit =
  (* one transaction per batch, like the examples' checkpointing *)
  let a = t.a in
  Pool.with_tx a.Spp_access.pool (fun () ->
    Pool.tx_add_range_oid a.Spp_access.pool t.state;
    let p = a.Spp_access.direct t.state in
    let seed = ref (field t f_seed) and batch_hits = ref 0 in
    for _ = 1 to n do
      let s, ok = hit !seed in
      seed := s;
      if ok then incr batch_hits
    done;
    a.Spp_access.store_word (a.Spp_access.gep p f_seed) !seed;
    a.Spp_access.store_word (a.Spp_access.gep p f_trials) (trials t + n);
    a.Spp_access.store_word (a.Spp_access.gep p f_hits) (hits t + !batch_hits))

(* π via the unit-circle quadrant: hit iff x² + y² < 1. *)
let pi_hit seed =
  let s, x = uniform seed in
  let s, y = uniform s in
  (s, (x *. x) +. (y *. y) < 1.)

let pi_estimate t =
  if trials t = 0 then 0.
  else 4. *. float_of_int (hits t) /. float_of_int (trials t)

(* Buffon's needle with length = line spacing: crossing probability is
   2/π; the needle crosses iff (d/2) < (l/2)·sin θ with d uniform. *)
let buffon_hit seed =
  let s, d = uniform seed in
  let s, theta = uniform s in
  (s, d < sin (theta *. Float.pi))

let buffon_pi_estimate t =
  if hits t = 0 then 0.
  else 2. *. float_of_int (trials t) /. float_of_int (hits t)
