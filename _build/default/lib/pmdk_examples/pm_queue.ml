(* The libpmemobj "queue" example: a bounded circular buffer of 63-bit
   values in one PM object, updated transactionally.

   Layout: [ capacity | head | count | slots... ] *)

open Spp_pmdk

type t = {
  a : Spp_access.t;
  obj : Oid.t;
}

let f_capacity = 0
let f_head = 8
let f_count = 16
let f_slots = 24

exception Full
exception Empty

let create (a : Spp_access.t) ~capacity =
  if capacity <= 0 then invalid_arg "Pm_queue.create";
  let obj = a.Spp_access.palloc ~zero:true (f_slots + (8 * capacity)) in
  let p = a.Spp_access.direct obj in
  a.Spp_access.store_word (a.Spp_access.gep p f_capacity) capacity;
  { a; obj }

let hdr t field =
  t.a.Spp_access.load_word (t.a.Spp_access.gep (t.a.Spp_access.direct t.obj) field)

let capacity t = hdr t f_capacity
let count t = hdr t f_count
let is_empty t = count t = 0
let is_full t = count t = capacity t

let slot_ptr t i =
  t.a.Spp_access.gep (t.a.Spp_access.direct t.obj) (f_slots + (8 * i))

let enqueue t v =
  if is_full t then raise Full;
  let a = t.a in
  Pool.with_tx a.Spp_access.pool (fun () ->
    let cap = capacity t and head = hdr t f_head and n = hdr t f_count in
    let tail = (head + n) mod cap in
    Pool.tx_add_range a.Spp_access.pool ~off:t.obj.Oid.off
      ~len:(f_slots + (8 * cap));
    a.Spp_access.store_word (slot_ptr t tail) v;
    a.Spp_access.store_word
      (a.Spp_access.gep (a.Spp_access.direct t.obj) f_count) (n + 1))

let dequeue t =
  if is_empty t then raise Empty;
  let a = t.a in
  Pool.with_tx a.Spp_access.pool (fun () ->
    let cap = capacity t and head = hdr t f_head and n = hdr t f_count in
    let v = a.Spp_access.load_word (slot_ptr t head) in
    Pool.tx_add_range a.Spp_access.pool ~off:t.obj.Oid.off ~len:f_slots;
    let p = a.Spp_access.direct t.obj in
    a.Spp_access.store_word (a.Spp_access.gep p f_head) ((head + 1) mod cap);
    a.Spp_access.store_word (a.Spp_access.gep p f_count) (n - 1);
    v)
