(* The "slab allocator" example: a fixed-object-size sub-allocator carved
   out of one large PM object, with a persistent free bitmap — the kind
   of custom allocation layer PM applications build on top of pmemobj.

   Layout: [ slot_size | nslots | bitmap words... | slots... ] *)

open Spp_pmdk

type t = {
  a : Spp_access.t;
  obj : Oid.t;
  slot_size : int;
  nslots : int;
}

exception Slab_full

let f_slot_size = 0
let f_nslots = 8
let f_bitmap = 16

(* 62 usable bits per word: bit 62 of an OCaml int is the sign bit *)
let bits_per_word = 62

let bitmap_words nslots = (nslots + bits_per_word - 1) / bits_per_word

let slots_off nslots = f_bitmap + (8 * bitmap_words nslots)

let create (a : Spp_access.t) ~slot_size ~nslots =
  if slot_size <= 0 || nslots <= 0 then invalid_arg "Pm_slab.create";
  let size = slots_off nslots + (slot_size * nslots) in
  let obj = a.Spp_access.palloc ~zero:true size in
  let p = a.Spp_access.direct obj in
  a.Spp_access.store_word (a.Spp_access.gep p f_slot_size) slot_size;
  a.Spp_access.store_word (a.Spp_access.gep p f_nslots) nslots;
  { a; obj; slot_size; nslots }

let bitmap_word t i =
  t.a.Spp_access.load_word
    (t.a.Spp_access.gep (t.a.Spp_access.direct t.obj) (f_bitmap + (8 * i)))

let set_bitmap_word t i v =
  let a = t.a in
  let ptr = a.Spp_access.gep (a.Spp_access.direct t.obj) (f_bitmap + (8 * i)) in
  Pool.with_tx a.Spp_access.pool (fun () ->
    Pool.tx_add_range a.Spp_access.pool
      ~off:(Pool.off_of_addr a.Spp_access.pool (a.Spp_access.ptr_to_int ptr))
      ~len:8;
    a.Spp_access.store_word ptr v)

let slot_ptr t i =
  t.a.Spp_access.gep (t.a.Spp_access.direct t.obj)
    (slots_off t.nslots + (i * t.slot_size))

(* Returns the slot index; the slot's contents are whatever was there. *)
let alloc_slot t =
  let rec scan w =
    if w >= bitmap_words t.nslots then raise Slab_full
    else begin
      let bits = bitmap_word t w in
      if bits = (1 lsl bits_per_word) - 1 then scan (w + 1)
      else begin
        let rec bit i =
          if i = bits_per_word then scan (w + 1)
          else if bits land (1 lsl i) = 0 then begin
            let slot = (w * bits_per_word) + i in
            if slot >= t.nslots then raise Slab_full
            else begin
              set_bitmap_word t w (bits lor (1 lsl i));
              slot
            end
          end
          else bit (i + 1)
        in
        bit 0
      end
    end
  in
  scan 0

let free_slot t slot =
  if slot < 0 || slot >= t.nslots then invalid_arg "Pm_slab.free_slot";
  let w = slot / bits_per_word and i = slot mod bits_per_word in
  let bits = bitmap_word t w in
  if bits land (1 lsl i) = 0 then invalid_arg "Pm_slab.free_slot: not allocated";
  set_bitmap_word t w (bits land lnot (1 lsl i))

let live_slots t =
  let n = ref 0 in
  for w = 0 to bitmap_words t.nslots - 1 do
    let bits = ref (bitmap_word t w) in
    while !bits <> 0 do
      bits := !bits land (!bits - 1);
      incr n
    done
  done;
  !n
