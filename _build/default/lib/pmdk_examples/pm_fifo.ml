(* The libpmemobj "fifo" (linked list) example: an unbounded FIFO of
   63-bit values as a singly linked list of PM nodes with head/tail oids,
   updated transactionally.

   Descriptor: [ head oid | tail oid | length ]
   Node:       [ value | next oid ] *)

open Spp_pmdk

type t = {
  a : Spp_access.t;
  desc : Oid.t;
}

exception Empty

let f_head = 0
let f_tail (a : Spp_access.t) = a.Spp_access.oid_size
let f_len (a : Spp_access.t) = 2 * a.Spp_access.oid_size

let n_value = 0
let n_next = 8

let node_size (a : Spp_access.t) = 8 + a.Spp_access.oid_size

let create (a : Spp_access.t) =
  let desc = a.Spp_access.palloc ~zero:true ((2 * a.Spp_access.oid_size) + 8) in
  { a; desc }

let desc_ptr t = t.a.Spp_access.direct t.desc

let length t = t.a.Spp_access.load_word (t.a.Spp_access.gep (desc_ptr t) (f_len t.a))

let is_empty t = length t = 0

let push t v =
  let a = t.a in
  Pool.with_tx a.Spp_access.pool (fun () ->
    let node = a.Spp_access.tx_palloc ~zero:true (node_size a) in
    let np = a.Spp_access.direct node in
    a.Spp_access.store_word (a.Spp_access.gep np n_value) v;
    let dp = desc_ptr t in
    Pool.tx_add_range_oid a.Spp_access.pool t.desc;
    let tail = a.Spp_access.load_oid_at (a.Spp_access.gep dp (f_tail a)) in
    if Oid.is_null tail then
      a.Spp_access.store_oid_at (a.Spp_access.gep dp f_head) node
    else begin
      let tp = a.Spp_access.direct tail in
      Pool.tx_add_range_oid a.Spp_access.pool tail;
      a.Spp_access.store_oid_at (a.Spp_access.gep tp n_next) node
    end;
    a.Spp_access.store_oid_at (a.Spp_access.gep dp (f_tail a)) node;
    a.Spp_access.store_word (a.Spp_access.gep dp (f_len a)) (length t + 1))

let pop t =
  let a = t.a in
  if is_empty t then raise Empty;
  Pool.with_tx a.Spp_access.pool (fun () ->
    let dp = desc_ptr t in
    let head = a.Spp_access.load_oid_at (a.Spp_access.gep dp f_head) in
    let hp = a.Spp_access.direct head in
    let v = a.Spp_access.load_word (a.Spp_access.gep hp n_value) in
    let next = a.Spp_access.load_oid_at (a.Spp_access.gep hp n_next) in
    Pool.tx_add_range_oid a.Spp_access.pool t.desc;
    a.Spp_access.store_oid_at (a.Spp_access.gep dp f_head) next;
    if Oid.is_null next then
      a.Spp_access.store_oid_at (a.Spp_access.gep dp (f_tail a)) Oid.null;
    a.Spp_access.store_word (a.Spp_access.gep dp (f_len a)) (length t - 1);
    a.Spp_access.tx_pfree head;
    v)
