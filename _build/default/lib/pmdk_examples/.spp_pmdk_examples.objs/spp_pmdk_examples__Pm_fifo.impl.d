lib/pmdk_examples/pm_fifo.ml: Oid Pool Spp_access Spp_pmdk
