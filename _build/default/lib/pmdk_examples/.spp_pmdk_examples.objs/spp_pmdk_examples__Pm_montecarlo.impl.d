lib/pmdk_examples/pm_montecarlo.ml: Float Oid Pool Spp_access Spp_pmdk
