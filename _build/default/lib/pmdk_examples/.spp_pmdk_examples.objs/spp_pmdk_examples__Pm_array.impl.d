lib/pmdk_examples/pm_array.ml: Heap List Oid Spp_access Spp_core Spp_pmdk
