lib/pmdk_examples/pm_slab.ml: Oid Pool Spp_access Spp_pmdk
