lib/pmdk_examples/pm_queue.ml: Oid Pool Spp_access Spp_pmdk
