(* The libpmemobj "array" example: a named, growable PM array of 63-bit
   integers (paper §VI-D applies SPP to exactly this example and finds
   three overflows caused by an unchecked realloc — array.c lines
   215/235/257).

   Layout: a descriptor object [ length | data oid ] whose oid is kept by
   the caller; element i lives at data + 8*i. *)

open Spp_pmdk

type t = {
  a : Spp_access.t;
  desc : Oid.t;
  check_realloc : bool;   (* false reproduces the upstream bug *)
}

let f_len = 0
let f_data = 8

let create ?(check_realloc = true) (a : Spp_access.t) ~size =
  let desc = a.Spp_access.palloc (8 + a.Spp_access.oid_size) in
  let data = a.Spp_access.palloc ~zero:true (size * 8) in
  let dp = a.Spp_access.direct desc in
  a.Spp_access.store_word dp size;
  a.Spp_access.store_oid_at (a.Spp_access.gep dp f_data) data;
  { a; desc; check_realloc }

let length t =
  t.a.Spp_access.load_word (t.a.Spp_access.direct t.desc)

let data_ptr t =
  t.a.Spp_access.direct
    (t.a.Spp_access.load_oid_at
       (t.a.Spp_access.gep (t.a.Spp_access.direct t.desc) f_data))

let get t i =
  if i < 0 || i >= length t then invalid_arg "Pm_array.get";
  t.a.Spp_access.load_word (t.a.Spp_access.gep (data_ptr t) (8 * i))

let set t i v =
  if i < 0 || i >= length t then invalid_arg "Pm_array.set";
  t.a.Spp_access.store_word (t.a.Spp_access.gep (data_ptr t) (8 * i)) v

(* Grow the array. The buggy variant ignores a failed reallocation and
   fills the "grown" range anyway — overflowing the original data object,
   which SPP detects at the first out-of-bounds store. *)
let resize t new_size =
  let a = t.a in
  let dp = a.Spp_access.direct t.desc in
  let data_oid = a.Spp_access.load_oid_at (a.Spp_access.gep dp f_data) in
  let realloc_result =
    match a.Spp_access.prealloc data_oid (new_size * 8) with
    | oid -> Some oid
    | exception Heap.Out_of_pm -> None
    | exception Spp_core.Encoding.Object_too_large _ -> None
  in
  match realloc_result with
  | Some fresh ->
    a.Spp_access.store_oid_at (a.Spp_access.gep dp f_data) fresh;
    let p = a.Spp_access.direct fresh in
    let old_len = length t in
    for i = old_len to new_size - 1 do
      a.Spp_access.store_word (a.Spp_access.gep p (8 * i)) 0
    done;
    a.Spp_access.store_word dp new_size
  | None ->
    if t.check_realloc then raise Heap.Out_of_pm
    else begin
      (* upstream bug: the return value is not checked *)
      let p = a.Spp_access.direct data_oid in
      let old_len = length t in
      for i = old_len to new_size - 1 do
        a.Spp_access.store_word (a.Spp_access.gep p (8 * i)) 0
      done;
      a.Spp_access.store_word dp new_size
    end

let to_list t = List.init (length t) (get t)
