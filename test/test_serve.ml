(* Tests for the group-commit stack and the asynchronous batched serving
   pipeline: histogram unit tests, Cmap.run_batch vs a model oracle and
   vs the synchronous path, the fences/op amortization bar on both
   tracking engines, the async-pipeline differential, and the shard
   divergence diagnostics. *)

open Spp_benchlib
open Spp_shard
open Spp_pmemkv

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Histogram -------------------------------------------------------- *)

let test_histogram_buckets () =
  (* values below 16 are exact *)
  for v = 0 to 15 do
    check_int "small value exact" v (Histogram.bucket_index v);
    let lo, hi = Histogram.bucket_range v in
    check_int "small lo" v lo;
    check_int "small hi" v hi
  done;
  (* octave boundaries land in their bucket, and every bucket contains
     the values its range claims *)
  List.iter
    (fun v ->
      let i = Histogram.bucket_index v in
      let lo, hi = Histogram.bucket_range i in
      check_bool
        (Printf.sprintf "%d in bucket [%d, %d]" v lo hi)
        true
        (lo <= v && v <= hi);
      (* relative bucket width stays within 1/16 of the magnitude *)
      if v >= 16 then
        check_bool
          (Printf.sprintf "bucket width %d <= %d/16" (hi - lo + 1) v)
          true
          (hi - lo + 1 <= max 1 (v / 8)))
    [ 16; 17; 31; 32; 33; 63; 64; 100; 1_000; 4_095; 4_096; 65_535;
      1_000_000; 123_456_789; max_int / 2 ];
  (* bucket index is monotone in the value *)
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let i = Histogram.bucket_index v in
      check_bool "bucket index monotone" true (i >= !prev);
      prev := i)
    [ 0; 1; 7; 15; 16; 20; 90; 1024; 1025; 999_999; max_int / 4 ]

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  check_int "count" 1000 (Histogram.count h);
  check_int "max exact" 1000 (Histogram.max_value h);
  (* percentile is conservative (>= true quantile) but within a bucket
     width, and monotone in p *)
  let prev = ref 0 in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      let truth = int_of_float (ceil (p /. 100. *. 1000.)) in
      check_bool
        (Printf.sprintf "p%.0f = %d >= %d" p v truth)
        true (v >= truth);
      check_bool
        (Printf.sprintf "p%.0f = %d within bucket of %d" p v truth)
        true
        (v <= truth + (max 1 (truth / 8)));
      check_bool "monotone in p" true (v >= !prev);
      prev := v)
    [ 1.; 10.; 25.; 50.; 75.; 90.; 95.; 99.; 99.9; 100. ];
  check_int "p100 = max" 1000 (Histogram.percentile h 100.);
  check_int "empty histogram percentile" 0
    (Histogram.percentile (Histogram.create ()) 99.)

let test_histogram_merge () =
  let fill seed n =
    let st = Random.State.make [| seed |] in
    let h = Histogram.create () in
    for _ = 1 to n do
      Histogram.add h (Random.State.int st 1_000_000)
    done;
    h
  in
  let a = fill 1 500 and b = fill 2 900 and c = fill 3 40 in
  let xy = Histogram.merge (Histogram.merge a b) c in
  let yz = Histogram.merge a (Histogram.merge b c) in
  check_bool "merge associative (exact state)" true
    (Histogram.to_alist xy = Histogram.to_alist yz);
  check_int "merge count" 1440 (Histogram.count xy);
  check_int "merge max" (Histogram.max_value yz) (Histogram.max_value xy);
  check_bool "merge commutative" true
    (Histogram.to_alist (Histogram.merge a b)
     = Histogram.to_alist (Histogram.merge b a));
  (* merged percentiles match a histogram fed the union *)
  let u = Histogram.merge a b in
  check_int "p50 of union" (Histogram.percentile u 50.)
    (Histogram.percentile (Histogram.merge b a) 50.)

let test_histogram_mean () =
  let h = Histogram.create () in
  check_int "empty count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "empty mean" 0. (Histogram.mean h);
  List.iter (Histogram.add h) [ 10; 20; 30; 100 ];
  (* the mean is exact — it comes from the value sum, not the buckets *)
  Alcotest.(check (float 1e-9)) "exact mean" 40. (Histogram.mean h);
  check_int "count" 4 (Histogram.count h);
  let g = Histogram.create () in
  List.iter (Histogram.add g) [ 0; 0 ];
  let m = Histogram.merge h g in
  Alcotest.(check (float 1e-9)) "merged mean reweights" (160. /. 6.)
    (Histogram.mean m);
  Alcotest.(check (float 0.)) "all-zero values still mean 0" 0.
    (Histogram.mean g)

(* --- Cmap.run_batch --------------------------------------------------- *)

let mk_map ?(nbuckets = 32) variant =
  let a = Spp_access.create ~pool_size:(1 lsl 21) ~name:"serve-test" variant in
  Cmap.create ~nbuckets a

let test_run_batch_oracle () =
  List.iter
    (fun variant ->
      let kv = mk_map variant in
      let model = Hashtbl.create 64 in
      let st = Random.State.make [| 77 |] in
      for _round = 1 to 30 do
        let n = 1 + Random.State.int st 40 in
        let ops =
          Array.init n (fun _ ->
            let key = Printf.sprintf "key-%d" (Random.State.int st 60) in
            match Random.State.int st 3 with
            | 0 ->
              Cmap.B_put
                { key;
                  value = Printf.sprintf "val-%d" (Random.State.int st 9999) }
            | 1 -> Cmap.B_remove key
            | _ -> Cmap.B_get key)
        in
        let replies = Cmap.run_batch kv ops in
        Array.iteri
          (fun i op ->
            match (op, replies.(i)) with
            | Cmap.B_put { key; value }, Cmap.R_put ->
              Hashtbl.replace model key value
            | Cmap.B_get key, Cmap.R_get v ->
              Alcotest.(check (option string))
                "batched get agrees with model" (Hashtbl.find_opt model key) v
            | Cmap.B_remove key, Cmap.R_removed r ->
              check_bool "batched remove agrees" (Hashtbl.mem model key) r;
              Hashtbl.remove model key
            | _ -> Alcotest.fail "reply shape mismatch")
          ops
      done;
      check_int "surviving entries" (Hashtbl.length model) (Cmap.count_all kv);
      (* the synchronous path reads what the batched path wrote *)
      Hashtbl.iter
        (fun k v ->
          Alcotest.(check (option string)) "sync get sees batched put" (Some v)
            (Cmap.get kv k))
        model)
    [ Spp_access.Spp; Spp_access.Pmdk ]

let test_run_batch_within_batch_visibility () =
  let kv = mk_map Spp_access.Spp in
  let replies =
    Cmap.run_batch kv
      [| Cmap.B_put { key = "a"; value = "1" };
         Cmap.B_get "a";                          (* sees the staged put *)
         Cmap.B_put { key = "a"; value = "22" };  (* replaces in-batch entry *)
         Cmap.B_get "a";
         Cmap.B_remove "a";
         Cmap.B_get "a";
         Cmap.B_put { key = "a"; value = "333" } |]
  in
  check_bool "get after put" true (replies.(1) = Cmap.R_get (Some "1"));
  check_bool "get after replace" true (replies.(3) = Cmap.R_get (Some "22"));
  check_bool "remove hits" true (replies.(4) = Cmap.R_removed true);
  check_bool "get after remove" true (replies.(5) = Cmap.R_get None);
  Alcotest.(check (option string)) "final state" (Some "333") (Cmap.get kv "a")

(* Group commit must survive a crash mid-stream like any other path:
   recovery replays or discards the staged log, never tears an op. The
   torture suite (test_torture) enumerates every crash point; here we
   sanity-check a plain power cut between batches. *)
let test_run_batch_crash_between_batches () =
  let a = Spp_access.create ~pool_size:(1 lsl 20) ~name:"crashkv"
      Spp_access.Spp in
  let pool = a.Spp_access.pool in
  let kv = Cmap.create ~nbuckets:16 a in
  let root = a.Spp_access.root a.Spp_access.oid_size in
  Spp_pmdk.Pool.store_oid pool ~off:root.Spp_pmdk.Oid.off (Cmap.buckets_oid kv);
  Spp_pmdk.Pool.persist pool ~off:root.Spp_pmdk.Oid.off
    ~len:a.Spp_access.oid_size;
  Spp_sim.Memdev.set_tracking (Spp_pmdk.Pool.dev pool) true;
  ignore
    (Cmap.run_batch kv
       [| Cmap.B_put { key = "k1"; value = "v1" };
          Cmap.B_put { key = "k2"; value = "v2" } |]);
  ignore (Spp_pmdk.Pool.crash_and_recover pool);
  let a' = Spp_access.attach (Spp_pmdk.Pool.space pool) pool in
  let buckets =
    Spp_pmdk.Pool.load_oid pool ~off:(Spp_pmdk.Pool.root_oid pool).Spp_pmdk.Oid.off
  in
  let kv' = Cmap.attach a' ~buckets in
  Alcotest.(check (option string)) "committed batch durable" (Some "v1")
    (Cmap.get kv' "k1");
  Alcotest.(check (option string)) "committed batch durable (2)" (Some "v2")
    (Cmap.get kv' "k2")

(* --- Fence amortization (acceptance bar) ------------------------------ *)

let value_256 = String.make 256 'v'

let serve_streams ~nshards ~ops =
  let reqs =
    Array.init ops (fun i ->
      let key = Spp_pmemkv.Db_bench.key_of_int (i mod 64) in
      if i mod 4 = 3 then Serve.Get key
      else Serve.Put { key; value = value_256 })
  in
  let streams = Array.make nshards [] in
  Array.iter
    (fun r ->
      let s = Shard.shard_of_key ~nshards (Serve.request_key r) in
      streams.(s) <- r :: streams.(s))
    reqs;
  Array.map (fun l -> Array.of_list (List.rev l)) streams

let build_serve_store ?(nshards = 2) ?(tracking = false) ?(cache_cap = 0)
    ?engine () =
  let t = Shard.create ~nbuckets:64 ~pool_size:(1 lsl 22) ~cache_cap ?engine
      ~nshards Spp_access.Spp in
  if tracking then
    for i = 0 to nshards - 1 do
      Spp_sim.Memdev.set_tracking
        (Spp_pmdk.Pool.dev (Shard.shard_access (Shard.shard t i)).Spp_access.pool)
        true
    done;
  Shard.reset_stats t;
  t

let fences_per_op ~batch_cap =
  let nshards = 2 and ops = 512 in
  let t = build_serve_store ~nshards ~tracking:true () in
  let streams = serve_streams ~nshards ~ops in
  ignore (Serve.run_sequential t ~batch_cap streams);
  let c = Shard.merged_counters t in
  ( float_of_int c.Spp_sim.Memdev.fences /. float_of_int ops,
    c )

let test_fence_amortization_both_engines () =
  List.iter
    (fun engine ->
      Spp_sim.Memdev.with_default_engine engine (fun () ->
        let f32, c32 = fences_per_op ~batch_cap:32 in
        let f1, c1 = fences_per_op ~batch_cap:1 in
        check_bool
          (Printf.sprintf "fences/op %.3f (cap 32) <= 1/4 of %.3f (cap 1)"
             f32 f1)
          true
          (f32 <= f1 /. 4.);
        (* the saved fences are accounted on the device; a batch of one
           saves nothing *)
        check_bool "fences_saved recorded" true
          (c32.Spp_sim.Memdev.fences_saved > 0);
        check_int "cap-1 batches save nothing" 0 c1.Spp_sim.Memdev.fences_saved;
        check_bool "batched_ops recorded" true
          (c32.Spp_sim.Memdev.batched_ops > 0)))
    [ Spp_sim.Memdev.Line_indexed; Spp_sim.Memdev.List_based ]

(* --- Async pipeline --------------------------------------------------- *)

let test_serve_pipeline_oracle () =
  let nshards = 3 in
  let t = build_serve_store ~nshards () in
  let serve = Serve.create ~batch_cap:8 t in
  let model = Hashtbl.create 64 in
  let st = Random.State.make [| 5 |] in
  let tickets = ref [] in
  for i = 0 to 599 do
    let key = Printf.sprintf "key-%d" (Random.State.int st 80) in
    let req =
      match i mod 3 with
      | 0 ->
        let value = Printf.sprintf "val-%d" i in
        Hashtbl.replace model key value;
        Serve.Put { key; value }
      | 1 -> Serve.Get key
      | _ ->
        Hashtbl.remove model key;
        Serve.Remove key
    in
    tickets := (req, Serve.submit serve req) :: !tickets
  done;
  (* resolve every promise; puts/removes must have been applied in
     submission order per key (same-shard FIFO) *)
  List.iter
    (fun (req, tk) ->
      match (req, Serve.await serve tk) with
      | Serve.Put _, Serve.Done -> ()
      | Serve.Get _, Serve.Value _ -> ()
      | Serve.Remove _, Serve.Removed _ -> ()
      | _ -> Alcotest.fail "reply shape mismatch")
    !tickets;
  Serve.stop serve;
  check_int "final store contents" (Hashtbl.length model) (Shard.count_all t);
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check (option string)) "final value" (Some v) (Shard.get t k))
    model;
  let stats = Serve.stats serve in
  check_int "every op executed" 600
    (Array.fold_left (fun a s -> a + s.Serve.ss_ops) 0 stats);
  check_int "latency recorded per request" 600
    (Histogram.count (Serve.merged_hist serve));
  Array.iter
    (fun s ->
      check_bool "batch sizes within cap" true (s.Serve.ss_max_batch <= 8))
    stats

(* Interleave a bounded full-window Scan every [every] requests into
   each per-shard stream. Scans carry no routing key, so they are mixed
   in after partitioning and submitted per shard. *)
let mix_scans ~every streams =
  Array.map
    (fun stream ->
      let out = ref [] in
      Array.iteri
        (fun i r ->
          if i mod every = every - 1 then
            out :=
              Serve.Scan
                { lo = Spp_pmemkv.Db_bench.key_of_int 0;
                  hi = Spp_pmemkv.Db_bench.key_of_int 9_999; limit = 24 }
              :: !out;
          out := r :: !out)
        stream;
      Array.of_list (List.rev !out))
    streams

(* The differential the tentpole must preserve, on either engine: the
   async pipeline (pre-enqueued, fixed batching) against the sequential
   baseline on identically built stores — replies (ordered scan slices
   included), merged Space stats and merged Memdev counters all
   bit-identical. *)
let serve_differential engine () =
  let nshards = 4 and ops = 1_200 and batch_cap = 16 in
  let streams = mix_scans ~every:60 (serve_streams ~nshards ~ops) in
  let t_seq = build_serve_store ~nshards ~engine () in
  let t_par = build_serve_store ~nshards ~engine () in
  let seq_replies = Serve.run_sequential t_seq ~batch_cap streams in
  let serve = Serve.create ~batch_cap ~adaptive:false ~autostart:false t_par in
  let tickets =
    Array.mapi
      (fun i stream ->
        Array.map (fun req -> (req, Serve.submit_to serve i req)) stream)
      streams
  in
  Serve.start serve;
  let par_replies =
    Array.map (Array.map (fun (_, tk) -> Serve.await serve tk)) tickets
  in
  Serve.stop serve;
  Array.iteri
    (fun i seq ->
      check_int
        (Printf.sprintf "shard %d reply digest" i)
        (Serve.digest_replies seq)
        (Serve.digest_replies par_replies.(i)))
    seq_replies;
  check_bool "merged Space stats identical" true
    (Shard.merged_stats t_seq = Shard.merged_stats t_par);
  check_bool "merged Memdev counters identical (incl. fences_saved)" true
    (Shard.merged_counters t_seq = Shard.merged_counters t_par);
  check_int "same surviving entries" (Shard.count_all t_seq)
    (Shard.count_all t_par)

let test_serve_differential () = serve_differential Spp_pmemkv.Engines.cmap ()

let test_serve_differential_btree () =
  serve_differential Spp_pmemkv.Engines.btree ()

let test_serve_adaptive_batching () =
  (* pre-enqueue a big backlog: the adaptive drain must actually grow
     beyond 1 and stay within the cap *)
  let nshards = 1 in
  let t = build_serve_store ~nshards () in
  let serve = Serve.create ~batch_cap:32 ~adaptive:true ~autostart:false t in
  let tickets =
    Array.init 500 (fun i ->
      Serve.submit serve
        (Serve.Put { key = Printf.sprintf "k%d" i; value = "v" }))
  in
  Serve.start serve;
  Array.iter (fun tk -> ignore (Serve.await serve tk)) tickets;
  Serve.stop serve;
  let s = (Serve.stats serve).(0) in
  check_int "all ops served" 500 s.Serve.ss_ops;
  check_bool "batches grew under pressure" true (s.Serve.ss_max_batch > 4);
  check_bool "cap respected" true (s.Serve.ss_max_batch <= 32);
  check_bool "fewer batches than ops" true (s.Serve.ss_batches < 500)

(* --- Read cache ------------------------------------------------------- *)

(* Get-heavy streams over a small hot set, with removes mixed in so the
   invalidation paths are on the differential too. *)
let cache_streams ~nshards ~ops =
  let st = Random.State.make [| 0xCAFE; nshards; ops |] in
  let reqs =
    Array.init ops (fun i ->
      let key =
        if Random.State.int st 4 < 3 then
          Spp_pmemkv.Db_bench.key_of_int (Random.State.int st 8)
        else Spp_pmemkv.Db_bench.key_of_int (Random.State.int st 48)
      in
      match i mod 8 with
      | 0 -> Serve.Put { key; value = value_256 }
      | 1 when i mod 40 = 33 -> Serve.Remove key
      | _ -> Serve.Get key)
  in
  let streams = Array.make nshards [] in
  Array.iter
    (fun r ->
      let s = Shard.shard_of_key ~nshards (Serve.request_key r) in
      streams.(s) <- r :: streams.(s))
    reqs;
  Array.map (fun l -> Array.of_list (List.rev l)) streams

(* The tentpole's safety property: a cached sequential run must be
   bit-identical to a cache-off run of the same streams — every reply,
   every Memdev counter (loads are not simulated events and fills stage
   nothing), and the recovered durable image. *)
let cache_differential engine () =
  let nshards = 2 and ops = 1_600 and batch_cap = 16 in
  let streams = mix_scans ~every:80 (cache_streams ~nshards ~ops) in
  let t_on =
    build_serve_store ~nshards ~tracking:true ~cache_cap:256 ~engine ()
  in
  let t_off = build_serve_store ~nshards ~tracking:true ~engine () in
  check_bool "cache attached" true (Shard.cache_enabled t_on);
  check_bool "cache absent" false (Shard.cache_enabled t_off);
  let r_on = Serve.run_sequential t_on ~batch_cap streams in
  let r_off = Serve.run_sequential t_off ~batch_cap streams in
  Array.iteri
    (fun i off ->
      check_int
        (Printf.sprintf "shard %d reply digest" i)
        (Serve.digest_replies off)
        (Serve.digest_replies r_on.(i)))
    r_off;
  check_bool "merged Memdev counters identical" true
    (Shard.merged_counters t_on = Shard.merged_counters t_off);
  (* Loads are where the cache pays off — everything on the store side
     (the durability-relevant traffic) must not move by a single byte,
     while the cached run must do strictly less PM reading. *)
  let s_on = Shard.merged_stats t_on and s_off = Shard.merged_stats t_off in
  check_int "pm_stores identical" s_off.Spp_sim.Space.pm_stores
    s_on.Spp_sim.Space.pm_stores;
  check_int "pm_bytes_stored identical" s_off.Spp_sim.Space.pm_bytes_stored
    s_on.Spp_sim.Space.pm_bytes_stored;
  check_int "vol_stores identical" s_off.Spp_sim.Space.vol_stores
    s_on.Spp_sim.Space.vol_stores;
  check_bool "cache hits skip PM loads" true
    (s_on.Spp_sim.Space.pm_loads < s_off.Spp_sim.Space.pm_loads);
  let rc = Shard.merged_cache_stats t_on in
  check_bool "the cached run actually hit" true (rc.Rcache.rc_hits > 0);
  check_bool "and invalidated" true (rc.Rcache.rc_invalidations > 0);
  (* Durable images: crash both stores (dropping all volatile state,
     including the cache) and compare what recovery brings back. *)
  let recovered t =
    Array.init nshards (fun i ->
      let sh = Shard.shard t i in
      let pool = (Shard.shard_access sh).Spp_access.pool in
      let root = Engine.root_oid (Shard.shard_kv sh) in
      ignore (Spp_pmdk.Pool.crash_and_recover pool);
      let a' = Spp_access.attach (Spp_pmdk.Pool.space pool) pool in
      let kv' = Engine.attach (Shard.engine t) a' ~root in
      check_bool "recovered map starts cold" true (Engine.cache kv' = None);
      ( Engine.count_all kv',
        List.init 48 (fun k ->
          Engine.get kv' (Spp_pmemkv.Db_bench.key_of_int k)) ))
  in
  let img_on = recovered t_on and img_off = recovered t_off in
  check_bool "recovered durable contents identical" true (img_on = img_off)

let test_cache_sequential_differential () =
  cache_differential Spp_pmemkv.Engines.cmap ()

let test_cache_sequential_differential_btree () =
  cache_differential Spp_pmemkv.Engines.btree ()

(* use_cache:false on a cached store must take the pure PM path. *)
let test_run_sequential_use_cache_off () =
  let nshards = 2 in
  let t = build_serve_store ~nshards ~cache_cap:256 () in
  let streams = cache_streams ~nshards ~ops:400 in
  ignore (Serve.run_sequential ~use_cache:false t ~batch_cap:16 streams);
  check_int "no probes with use_cache:false" 0
    (Shard.merged_cache_stats t).Rcache.rc_hits

(* The async fast path: on an adaptive cached pipeline, hot gets are
   answered on the submitting thread, replies still match the model, and
   a pipelined put-then-get of one key can never be answered from ahead
   of the write (submit-time invalidation). *)
let test_serve_bypass_fast_path () =
  let nshards = 2 in
  let t = build_serve_store ~nshards ~cache_cap:256 () in
  let serve = Serve.create ~batch_cap:8 t in
  for i = 0 to 63 do
    let key = Spp_pmemkv.Db_bench.key_of_int i in
    ignore (Serve.await serve (Serve.submit serve (Serve.Put { key; value = "v0" })))
  done;
  (* Awaited puts committed, so their batch replay filled the cache:
     these gets bypass the mailbox entirely. *)
  for i = 0 to 63 do
    let key = Spp_pmemkv.Db_bench.key_of_int i in
    match Serve.await serve (Serve.submit serve (Serve.Get key)) with
    | Serve.Value (Some "v0") -> ()
    | _ -> Alcotest.fail "wrong value from fast path"
  done;
  check_bool "gets bypassed the mailbox" true (Serve.bypassed_gets serve > 0);
  (* Read-your-writes across the pipeline: submit a put and, without
     awaiting it, a get of the same key. The get must see the new value
     (the submit invalidated the cache, so it queued behind the put). *)
  let key = Spp_pmemkv.Db_bench.key_of_int 7 in
  let tk_put = Serve.submit serve (Serve.Put { key; value = "v1" }) in
  let tk_get = Serve.submit serve (Serve.Get key) in
  (match Serve.await serve tk_get with
   | Serve.Value (Some "v1") -> ()
   | Serve.Value v ->
     Alcotest.failf "pipelined get saw %s, not its own write"
       (match v with Some s -> s | None -> "None")
   | _ -> Alcotest.fail "reply shape");
  ignore (Serve.await serve tk_put);
  Serve.stop serve;
  let s = Serve.cache_stats serve in
  check_bool "cache stats exposed" true (s.Rcache.rc_fills > 0)

(* Deterministic mode must ignore the cache: no bypass, and the async
   run stays bit-identical to the uncached sequential baseline. *)
let test_cache_deterministic_mode () =
  let nshards = 2 and batch_cap = 16 in
  let streams = cache_streams ~nshards ~ops:800 in
  let t_seq = build_serve_store ~nshards ~tracking:true ~cache_cap:256 () in
  let t_par = build_serve_store ~nshards ~tracking:true ~cache_cap:256 () in
  let seq_replies =
    Serve.run_sequential ~use_cache:false t_seq ~batch_cap streams
  in
  let serve = Serve.create ~batch_cap ~adaptive:false ~autostart:false t_par in
  let tickets =
    Array.map (Array.map (fun req -> (req, Serve.submit serve req))) streams
  in
  Serve.start serve;
  let par_replies =
    Array.map (Array.map (fun (_, tk) -> Serve.await serve tk)) tickets
  in
  Serve.stop serve;
  check_int "deterministic mode never bypasses" 0 (Serve.bypassed_gets serve);
  Array.iteri
    (fun i seq ->
      check_int
        (Printf.sprintf "shard %d reply digest" i)
        (Serve.digest_replies seq)
        (Serve.digest_replies par_replies.(i)))
    seq_replies;
  check_bool "merged Memdev counters identical" true
    (Shard.merged_counters t_seq = Shard.merged_counters t_par)

(* Client-facing scans: scatter per shard through the worker batches,
   gather into one globally ordered limit-clipped window; a scan queued
   behind an un-awaited put of an in-range key must observe it
   (same-shard FIFO), and the result is identical on both engines. *)
let test_serve_scan_api () =
  List.iter
    (fun engine ->
      let nshards = 3 in
      let t = build_serve_store ~nshards ~cache_cap:256 ~engine () in
      let serve = Serve.create ~batch_cap:8 t in
      for i = 0 to 99 do
        let key = Spp_pmemkv.Db_bench.key_of_int i in
        ignore
          (Serve.await serve
             (Serve.submit serve
                (Serve.Put { key; value = Printf.sprintf "s%03d" i })))
      done;
      let key_of = Spp_pmemkv.Db_bench.key_of_int in
      let expect =
        List.init 50 (fun i -> (key_of (10 + i), Printf.sprintf "s%03d" (10 + i)))
      in
      (match Serve.scan serve ~lo:(key_of 10) ~hi:(key_of 59) ~limit:1000 with
       | Ok kvs ->
         Alcotest.(check (list (pair string string)))
           (Spp_pmemkv.Engine.spec_name engine ^ ": gathered window")
           expect kvs
       | Error _ -> Alcotest.fail "scan failed");
      (match Serve.scan serve ~lo:(key_of 10) ~hi:(key_of 59) ~limit:5 with
       | Ok kvs ->
         Alcotest.(check (list (pair string string)))
           "global limit clips the merge"
           (List.filteri (fun i _ -> i < 5) expect)
           kvs
       | Error _ -> Alcotest.fail "scan failed");
      (* read-your-writes: un-awaited put, then scan — FIFO per shard *)
      let tk =
        Serve.submit serve
          (Serve.Put { key = key_of 30; value = "fresh" })
      in
      (match Serve.scan serve ~lo:(key_of 30) ~hi:(key_of 30) ~limit:4 with
       | Ok [ (k, v) ] ->
         check_bool "scan sees the queued put" true
           (k = key_of 30 && v = "fresh")
       | Ok _ -> Alcotest.fail "wrong scan width"
       | Error _ -> Alcotest.fail "scan failed");
      ignore (Serve.await serve tk);
      Serve.stop serve)
    [ Spp_pmemkv.Engines.cmap; Spp_pmemkv.Engines.btree ]

(* --- Live slot migration ---------------------------------------------- *)

(* The migration differential: one key-routed op stream executed twice
   on identically built stores — once on the static slot table, once
   with slot migrations forced mid-stream (including one slot moved and
   later moved back) — must produce bit-identical replies in submission
   order, and the recovered durable contents (each shard's durable image
   reopened through recovery and reattached) must merge to the same
   key-value map with every key served by exactly one shard. *)
let migration_differential engine () =
  let nshards = 4 and nops = 1_200 in
  let universe = 96 in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  let ops =
    Array.init nops (fun i ->
      let key = key_of (i * 7 mod universe) in
      match i mod 5 with
      | 0 | 1 -> Serve.Put { key; value = Printf.sprintf "mv-%06d" i }
      | 2 -> Serve.Remove key
      | _ -> Serve.Get key)
  in
  let hot_keys = [ key_of 0; key_of 7; key_of 13 ] in
  let run ~migrate =
    let t = build_serve_store ~nshards ~engine () in
    let serve = Serve.create ~batch_cap:8 ~adaptive:false t in
    let tickets = Array.make nops None in
    let submit_range lo hi =
      for i = lo to hi - 1 do
        tickets.(i) <- Some (Serve.submit serve ops.(i))
      done
    in
    let move key =
      let slot = Shard.slot_of t key in
      let src = Shard.route t key in
      let r = Serve.migrate_slot serve ~slot ~dst:((src + 1) mod nshards) in
      check_int "migration moved the slot" ((src + 1) mod nshards)
        (Shard.route t key);
      check_int "report names the slot" slot r.Serve.mig_slot
    in
    submit_range 0 (nops / 3);
    if migrate then List.iter move hot_keys;
    submit_range (nops / 3) (2 * nops / 3);
    if migrate then List.iter move hot_keys;   (* second hop, live again *)
    submit_range (2 * nops / 3) nops;
    let replies =
      Array.map
        (fun tk -> Serve.await serve (Option.get tk))
        tickets
    in
    Serve.stop serve;
    (t, replies)
  in
  let (t_static, r_static) = run ~migrate:false in
  let (t_mig, r_mig) = run ~migrate:true in
  check_int "replies bit-identical to the no-migration run"
    (Serve.digest_replies r_static) (Serve.digest_replies r_mig);
  check_int "same surviving entries" (Shard.count_all t_static)
    (Shard.count_all t_mig);
  (* recovered durable contents: reopen every shard's durable image
     through recovery and merge — each key on exactly one shard, and the
     merged map equal across the two runs *)
  let recovered t =
    let per_shard =
      Array.init nshards (fun i ->
        let sh = Shard.shard t i in
        let img =
          Spp_sim.Memdev.durable_snapshot
            (Spp_pmdk.Pool.dev (Shard.shard_access sh).Spp_access.pool)
        in
        let dev =
          Spp_sim.Memdev.of_image ~name:(Printf.sprintf "mig-diff%d" i) img
        in
        let space = Spp_sim.Space.create () in
        match Spp_pmdk.Pool.open_dev space ~base:4096 dev with
        | Error _ -> Alcotest.fail "durable image failed recovery"
        | Ok (pool', _) ->
          let a' = Spp_access.attach (Spp_pmdk.Pool.space pool') pool' in
          let map' =
            Spp_pmemkv.Engine.attach (Shard.engine t) a'
              ~root:(Spp_pmemkv.Engine.root_oid (Shard.shard_kv sh))
          in
          Array.init universe (fun k ->
            Spp_pmemkv.Engine.get map' (key_of k)))
    in
    Array.init universe (fun k ->
      let holders =
        Array.to_list per_shard
        |> List.filter_map (fun contents -> contents.(k))
      in
      check_bool
        (Printf.sprintf "key %d durable on at most one shard" k)
        true (List.length holders <= 1);
      holders)
  in
  Alcotest.(check (array (list string)))
    "recovered durable contents equivalent" (recovered t_static)
    (recovered t_mig);
  ignore (Serve.forwarded : Serve.t -> int)

let test_migration_differential () =
  migration_differential Spp_pmemkv.Engines.cmap ()

let test_migration_differential_btree () =
  migration_differential Spp_pmemkv.Engines.btree ()

(* Migration accounting and edge cases on a settled store: reports count
   the copied keys, a no-op migration reports zero, invalid arguments
   are rejected, Migration_failed has a printer, and a whole-store scan
   right after a migration still serves every key exactly once. *)
let test_migration_report_and_scan () =
  let nshards = 3 in
  let t = build_serve_store ~nshards () in
  let serve = Serve.create ~batch_cap:8 t in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  for i = 0 to 63 do
    ignore
      (Serve.await serve
         (Serve.submit serve
            (Serve.Put { key = key_of i; value = Printf.sprintf "r%02d" i })))
  done;
  let slot = Shard.slot_of t (key_of 5) in
  let src = Shard.route t (key_of 5) in
  let dst = (src + 1) mod nshards in
  let r = Serve.migrate_slot serve ~slot ~dst in
  check_bool "copied at least the probe key" true (r.Serve.mig_keys >= 1);
  check_int "from" src r.Serve.mig_from;
  check_int "to" dst r.Serve.mig_to;
  check_int "migrations counted" 1 (Serve.migrations serve);
  check_bool "keys_moved accumulates" true (Serve.keys_moved serve >= 1);
  let r2 = Serve.migrate_slot serve ~slot ~dst in
  check_int "no-op migration copies nothing" 0 r2.Serve.mig_keys;
  Alcotest.(check (option string))
    "migrated key served from the new owner" (Some "r05")
    (Shard.get t (key_of 5));
  (match Serve.scan serve ~lo:(key_of 0) ~hi:(key_of 63) ~limit:1000 with
   | Ok kvs ->
     check_int "post-migration scan serves every key once" 64
       (List.length kvs);
     check_bool "scan ordered" true
       (List.for_all2
          (fun (k, _) i -> k = key_of i)
          kvs
          (List.init 64 Fun.id))
   | Error _ -> Alcotest.fail "scan failed");
  check_bool "bad slot rejected" true
    (try ignore (Serve.migrate_slot serve ~slot:(-1) ~dst); false
     with Invalid_argument _ -> true);
  check_bool "bad dst rejected" true
    (try ignore (Serve.migrate_slot serve ~slot ~dst:nshards); false
     with Invalid_argument _ -> true);
  let printed =
    Printexc.to_string (Serve.Migration_failed { slot = 3; reason = "x" })
  in
  check_bool "Migration_failed printer registered" true
    (let sub = "slot 3" in
     let n = String.length printed and m = String.length sub in
     let rec hit i = i + m <= n && (String.sub printed i m = sub || hit (i + 1)) in
     hit 0);
  Serve.stop serve

(* The rebalancer chases a forced hotspot: hammer two co-owned slots of
   shard 0, tick until the hysteresis fires, and the hot slots must land
   on another shard while every reply stays correct. *)
let test_rebalancer_moves_hot_slots () =
  let nshards = 2 in
  let t = build_serve_store ~nshards () in
  let serve = Serve.create ~batch_cap:8 ~adaptive:false t in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  (* find keys owned by shard 0 *)
  let hot =
    List.filteri (fun i _ -> i < 4)
      (List.filter
         (fun k -> Shard.route t k = 0)
         (List.init 64 (fun i -> key_of i)))
  in
  List.iter
    (fun k ->
      ignore
        (Serve.await serve
           (Serve.submit serve (Serve.Put { key = k; value = "hot-" ^ k }))))
    hot;
  let cfg =
    { Rebalance.default_config with
      Rebalance.min_ops = 8; persist = 1; cooldown = 0 }
  in
  let rb = Rebalance.create ~cfg serve in
  let fired = ref 0 in
  for _tick = 1 to 6 do
    List.iter
      (fun k ->
        for _ = 1 to 16 do
          ignore (Serve.await serve (Serve.submit serve (Serve.Get k)))
        done)
      hot;
    fired := !fired + Rebalance.tick rb
  done;
  check_bool "rebalancer fired" true (!fired > 0);
  check_bool "a hot slot moved off shard 0" true
    (List.exists (fun k -> Shard.route t k <> 0) hot);
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "value survives the move" (Some ("hot-" ^ k)) (Shard.get t k))
    hot;
  let s = Rebalance.stats rb in
  check_int "stats count the ticks" 6 s.Rebalance.rb_ticks;
  check_bool "stats count the moves" true (s.Rebalance.rb_moves = !fired);
  Serve.stop serve

(* Reply-byte stability under the reusable per-worker drain buffers:
   distinct value lengths and bytes interleaved through one worker's
   batches must come back exact — a scratch buffer aliasing replies
   across a drain would corrupt earlier replies in the same batch. *)
let test_reply_bytes_unchanged () =
  let t = build_serve_store ~nshards:1 () in
  let serve = Serve.create ~batch_cap:32 ~adaptive:false ~autostart:false t in
  let value i = String.init (1 + (i * 37 mod 300)) (fun j ->
    Char.chr (32 + ((i + j) mod 95)))
  in
  let n = 128 in
  for i = 0 to n - 1 do
    ignore (Serve.submit_to serve 0
              (Serve.Put { key = Printf.sprintf "rb-%03d" i; value = value i }))
  done;
  (* gets of every key plus full scans ride the same drains *)
  let gets =
    Array.init n (fun i ->
      Serve.submit_to serve 0 (Serve.Get (Printf.sprintf "rb-%03d" i)))
  in
  let scan_all =
    Serve.submit_to serve 0
      (Serve.Scan { lo = "rb-"; hi = "rb-999"; limit = 4096 })
  in
  let scan_limited =
    Serve.submit_to serve 0
      (Serve.Scan { lo = "rb-"; hi = "rb-999"; limit = 7 })
  in
  Serve.start serve;
  Array.iteri
    (fun i tk ->
      match Serve.await serve tk with
      | Serve.Value (Some v) ->
        check_bool (Printf.sprintf "get %d bytes exact" i) true (v = value i)
      | _ -> Alcotest.fail "get reply shape")
    gets;
  (match (Serve.await serve scan_all, Serve.await serve scan_limited) with
   | Serve.Scanned all, Serve.Scanned limited ->
     check_int "scan width" n (List.length all);
     List.iteri
       (fun i (k, v) ->
         check_bool "scan key exact" true (k = Printf.sprintf "rb-%03d" i);
         check_bool "scan value bytes exact" true (v = value i))
       all;
     Alcotest.(check (list (pair string string)))
       "limited scan = prefix of full scan, byte-equal"
       (List.filteri (fun i _ -> i < 7) all)
       limited
   | _ -> Alcotest.fail "scan reply shape");
  Serve.stop serve

(* --- Divergence diagnostics ------------------------------------------- *)

let test_explain_divergence () =
  let ops =
    Shard_bench.gen_ops ~seed:3 ~ops:400 ~universe:100 ~dist:Shard_bench.Uniform
      Spp_pmemkv.Db_bench.Update_heavy
  in
  let streams = Shard_bench.partition ~nshards:2 ops in
  let build () =
    let t = Shard.create ~nbuckets:32 ~pool_size:(1 lsl 21) ~nshards:2
        Spp_access.Spp in
    Shard_bench.preload t ~keys:50;
    t
  in
  let r1 = Shard_bench.run (build ()) ~mode:Shard_bench.Sequential streams in
  let r2 = Shard_bench.run (build ()) ~mode:Shard_bench.Parallel streams in
  check_bool "agreement explains as None" true
    (Shard_bench.explain_divergence r1 r2 = None);
  (* doctor a divergence and check the report names shard and field *)
  let broken =
    { r2 with
      Shard_bench.r_shards =
        Array.mapi
          (fun i s ->
            if i = 1 then { s with Shard_bench.sr_hits = s.Shard_bench.sr_hits + 7 }
            else s)
          r2.Shard_bench.r_shards }
  in
  (match Shard_bench.explain_divergence r1 broken with
   | None -> Alcotest.fail "divergence not detected"
   | Some msg ->
     let has needle =
       let nl = String.length needle and ml = String.length msg in
       let rec go i =
         i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
       in
       go 0
     in
     check_bool (Printf.sprintf "names the shard: %s" msg) true
       (has "shard 1");
     check_bool (Printf.sprintf "names the field: %s" msg) true
       (has "sr_hits"));
  (* shard-count mismatch reported too *)
  let truncated =
    { r2 with Shard_bench.r_shards = [| r2.Shard_bench.r_shards.(0) |] }
  in
  check_bool "count mismatch detected" true
    (Shard_bench.explain_divergence r1 truncated <> None)

(* Scan-bearing streams: a doctored scan-reply digest must be named by
   index in the divergence report, and the request/reply printers must
   render Scan/Scanned. *)
let test_explain_divergence_scan () =
  let ops =
    Shard_bench.gen_ops ~scan_pct:25 ~seed:3 ~ops:400 ~universe:100
      ~dist:Shard_bench.Uniform Spp_pmemkv.Db_bench.Update_heavy
  in
  let streams = Shard_bench.partition ~nshards:2 ops in
  let build () =
    let t = Shard.create ~nbuckets:32 ~pool_size:(1 lsl 21) ~nshards:2
        Spp_access.Spp in
    Shard_bench.preload t ~keys:50;
    t
  in
  let r1 = Shard_bench.run (build ()) ~mode:Shard_bench.Sequential streams in
  let r2 = Shard_bench.run (build ()) ~mode:Shard_bench.Parallel streams in
  check_bool "scan-bearing runs agree" true
    (Shard_bench.explain_divergence r1 r2 = None);
  check_bool "scans ran" true
    (Array.exists (fun sr -> sr.Shard_bench.sr_scans > 2)
       r1.Shard_bench.r_shards);
  let has msg needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  let broken =
    { r2 with
      Shard_bench.r_shards =
        Array.map
          (fun sr ->
            if sr.Shard_bench.sr_shard = 0 then begin
              let d = Array.copy sr.Shard_bench.sr_scan_digests in
              d.(2) <- d.(2) lxor 0xBEEF;
              { sr with Shard_bench.sr_scan_digests = d }
            end
            else sr)
          r2.Shard_bench.r_shards }
  in
  (match Shard_bench.explain_divergence r1 broken with
   | None -> Alcotest.fail "scan divergence not detected"
   | Some msg ->
     check_bool (Printf.sprintf "names the scan reply: %s" msg) true
       (has msg "scan reply 2"));
  let pp pp_v v = Format.asprintf "%a" pp_v v in
  check_bool "pp_request renders Scan" true
    (has
       (pp Serve.pp_request (Serve.Scan { lo = "a"; hi = "z"; limit = 9 }))
       "Scan");
  check_bool "pp_reply renders Scanned" true
    (has (pp Serve.pp_reply (Serve.Scanned [ ("a", "1"); ("b", "2") ]))
       "Scanned")

(* --- Histogram properties (QCheck) ----------------------------------- *)

(* A histogram as the multiset of values fed into it: merge must be an
   exact elementwise sum (commutative, associative, order-invariant),
   and percentiles of any merge must stay conservative against the
   exact quantile of the combined multiset, monotone in p. *)

let gen_values = QCheck.(list_of_size Gen.(int_range 0 40) (int_bound 2_000_000))

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let full_state h =
  (Histogram.to_alist h, Histogram.count h, Histogram.max_value h,
   Histogram.mean h)

let qtest_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300
    QCheck.(pair gen_values gen_values)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      full_state (Histogram.merge a b) = full_state (Histogram.merge b a))

let qtest_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:300
    QCheck.(triple gen_values gen_values gen_values)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      full_state (Histogram.merge (Histogram.merge a b) c)
      = full_state (Histogram.merge a (Histogram.merge b c)))

let exact_quantile values p =
  let arr = Array.of_list values in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank =
    min (max (int_of_float (ceil (p /. 100. *. float_of_int n))) 1) n
  in
  arr.(rank - 1)

let qtest_percentiles_after_merges =
  (* fold a random list of value lists in two different merge orders:
     percentiles must agree between orders, sit at or above the exact
     quantile of the union, never exceed the exact maximum, and be
     monotone in p *)
  QCheck.Test.make ~name:"percentiles conservative after arbitrary merges"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 6) gen_values)
    (fun lists ->
      let all = List.concat lists in
      QCheck.assume (all <> []);
      let hs = List.map hist_of lists in
      let fwd =
        List.fold_left Histogram.merge (Histogram.create ()) hs
      in
      let rev =
        List.fold_left Histogram.merge (Histogram.create ()) (List.rev hs)
      in
      let ps = [ 1.; 25.; 50.; 90.; 95.; 99.; 100. ] in
      List.for_all
        (fun p ->
          Histogram.percentile fwd p = Histogram.percentile rev p)
        ps
      && List.for_all
           (fun p ->
             let est = Histogram.percentile fwd p in
             est >= exact_quantile all p && est <= Histogram.max_value fwd)
           ps
      && fst
           (List.fold_left
              (fun (ok, prev) p ->
                let v = Histogram.percentile fwd p in
                (ok && v >= prev, v))
              (true, 0) ps))

(* --- Worker failure propagation -------------------------------------- *)

(* An op that raises mid-batch must fail its drain's tickets with a
   typed [Op_raised] — not strand every later ticket in the mailbox —
   and the shard must keep serving afterwards. Driven for real: a pool
   small enough that big puts exhaust it ([Heap.Out_of_pm] escapes
   [run_batch]). *)
let test_worker_failure_propagation () =
  let t =
    Shard.create ~nbuckets:16 ~pool_size:(1 lsl 16) ~nshards:1 Spp_access.Spp
  in
  let serve = Serve.create ~batch_cap:4 t in
  let big = String.make 2048 'x' in
  let rec fill i =
    if i > 200 then Alcotest.fail "pool never filled"
    else
      match
        Serve.await serve
          (Serve.submit serve
             (Serve.Put { key = Printf.sprintf "big-%d" i; value = big }))
      with
      | Serve.Done -> fill (i + 1)
      | Serve.Failed (Serve.Op_raised msg) ->
        check_bool
          (Printf.sprintf "failure names the exception: %s" msg)
          true
          (String.length msg > 0);
        i
      | _ -> Alcotest.fail "unexpected reply while filling"
  in
  let failed_at = fill 0 in
  check_bool "needed several puts to fill the pool" true (failed_at > 0);
  (* the shard still serves: reads work, and freeing space lets a small
     put through on the same worker *)
  (match Serve.await serve (Serve.submit serve (Serve.Get "big-0")) with
   | Serve.Value (Some v) -> check_int "survivor intact" 2048 (String.length v)
   | _ -> Alcotest.fail "get after failure did not serve");
  (match Serve.await serve (Serve.submit serve (Serve.Remove "big-0")) with
   | Serve.Removed true -> ()
   | _ -> Alcotest.fail "remove after failure did not serve");
  (match
     Serve.await serve
       (Serve.submit serve (Serve.Put { key = "small"; value = "fits" }))
   with
   | Serve.Done -> ()
   | _ -> Alcotest.fail "put after free did not serve");
  Serve.stop serve;
  check_bool "failed tickets counted" true (Serve.total_failed serve >= 1)

(* --- Failover: kill + promote ---------------------------------------- *)

(* End-to-end: replicate through the pipeline, kill the primary's
   device, watch queued tickets fail typed, promote the replica on the
   worker, and keep serving every acked pre-kill op from the promoted
   stack. Inline sync replication keeps it deterministic. *)
let test_serve_kill_promote () =
  let t =
    Shard.create ~nbuckets:32 ~pool_size:(1 lsl 20) ~nshards:1 Spp_access.Spp
  in
  let cfg =
    { Replica.default_config with
      replicas = 2; policy = Replica.Sync; threaded = false }
  in
  let serve = Serve.create ~batch_cap:8 ~replication:cfg t in
  let key i = Printf.sprintf "key-%03d" i
  and value i = Printf.sprintf "value-%05d" i in
  for i = 1 to 50 do
    match
      Serve.await serve
        (Serve.submit serve (Serve.Put { key = key i; value = value i }))
    with
    | Serve.Done -> ()
    | _ -> Alcotest.fail "preload put failed"
  done;
  let rs = Serve.replication_stats serve in
  check_int "one group" 1 (List.length rs);
  let r0 = List.hd rs in
  check_int "both replicas live" 2 r0.Replica.rs_live;
  check_bool "commits shipped" true (r0.Replica.rs_seq > 0);
  check_int "sync acked everything shipped" r0.Replica.rs_seq
    r0.Replica.rs_acked_seq;
  (* kill the primary: stores silently discard from here on *)
  Spp_sim.Memdev.power_off
    (Spp_pmdk.Pool.dev (Shard.shard_access (Shard.shard t 0)).Spp_access.pool);
  (match
     Serve.await serve
       (Serve.submit serve (Serve.Put { key = "late"; value = "lost" }))
   with
   | Serve.Failed Serve.Failed_over -> ()
   | _ -> Alcotest.fail "put on dead primary not failed over");
  check_bool "shard marked failed" true (Serve.shard_failed serve 0);
  (* everything queued before promotion keeps failing typed, not hanging *)
  (match
     Serve.await serve (Serve.submit serve (Serve.Get (key 1)))
   with
   | Serve.Failed Serve.Failed_over -> ()
   | _ -> Alcotest.fail "get on dead primary not failed over");
  let p = Serve.promote serve 0 in
  check_int "promotions counted" 1 (Serve.promotions serve);
  check_bool "shard serving again" true (not (Serve.shard_failed serve 0));
  check_bool "sealed prefix covers the acked ops" true
    (p.Replica.pr_ops >= 50);
  (* every acked op survives the failover on the promoted stack *)
  for i = 1 to 50 do
    match Serve.await serve (Serve.submit serve (Serve.Get (key i))) with
    | Serve.Value (Some v) when v = value i -> ()
    | _ -> Alcotest.fail (Printf.sprintf "acked op %d lost in failover" i)
  done;
  (* the unacked post-kill put is gone — its ticket said so *)
  (match Serve.await serve (Serve.submit serve (Serve.Get "late")) with
   | Serve.Value None -> ()
   | _ -> Alcotest.fail "unacked op resurrected");
  (* and the promoted stack accepts new writes *)
  (match
     Serve.await serve
       (Serve.submit serve (Serve.Put { key = "after"; value = "alive" }))
   with
   | Serve.Done -> ()
   | _ -> Alcotest.fail "put after promotion failed");
  (match Serve.promote serve 0 with
   | exception Replica.Promotion_failed _ -> ()
   | _ -> Alcotest.fail "second promotion not rejected");
  Serve.stop serve;
  check_bool "failed tickets counted" true (Serve.total_failed serve >= 2)

(* Threaded appliers + semi-sync acks under concurrent submitters, with
   a planned (no-kill) switchover at the end: the promoted stack must
   hold every acked key. *)
let test_serve_threaded_replication () =
  let nshards = 2 in
  let t =
    Shard.create ~nbuckets:64 ~pool_size:(1 lsl 21) ~nshards Spp_access.Spp
  in
  let cfg =
    { Replica.default_config with
      replicas = 1; policy = Replica.Semi_sync; threaded = true }
  in
  let serve = Serve.create ~batch_cap:8 ~replication:cfg t in
  let key i = Printf.sprintf "key-%03d" i in
  let doms =
    Array.init 2 (fun d ->
      Domain.spawn (fun () ->
        for i = 0 to 99 do
          if i mod 2 = d then
            ignore
              (Serve.await serve
                 (Serve.submit serve
                    (Serve.Put { key = key i; value = string_of_int i })))
        done))
  in
  Array.iter Domain.join doms;
  (* planned switchover of shard 0 to its replica *)
  let p = Serve.promote serve 0 in
  check_int "switched the requested shard" 0 p.Replica.pr_shard;
  for i = 0 to 99 do
    match Serve.await serve (Serve.submit serve (Serve.Get (key i))) with
    | Serve.Value (Some v) when v = string_of_int i -> ()
    | _ -> Alcotest.fail (Printf.sprintf "key %d lost across switchover" i)
  done;
  Serve.stop serve;
  check_int "no ticket failed" 0 (Serve.total_failed serve);
  let lag = Serve.replication_lag serve in
  check_bool "lag recorded per commit" true (Histogram.count lag > 0);
  (* promote on the unreplicated... both shards are replicated; an
     out-of-range index is rejected, as is promoting after stop *)
  (match Serve.promote serve 5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "out-of-range promote not rejected")

let test_replication_exn_printers () =
  let printed ex needle =
    let s = Printexc.to_string ex in
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "Promotion_failed printer" true
    (printed
       (Replica.Promotion_failed { shard = 3; reason = "no quorum" })
       "shard 3: no quorum");
  check_bool "Not_replicated printer" true
    (printed (Serve.Not_replicated 2) "shard 2")

let () =
  Alcotest.run "spp_serve"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "percentiles conservative + monotone" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "merge associative" `Quick test_histogram_merge;
          Alcotest.test_case "count and mean (incl. empty)" `Quick
            test_histogram_mean;
          QCheck_alcotest.to_alcotest qtest_merge_commutative;
          QCheck_alcotest.to_alcotest qtest_merge_associative;
          QCheck_alcotest.to_alcotest qtest_percentiles_after_merges;
        ] );
      ( "run_batch",
        [
          Alcotest.test_case "vs model oracle (both variants)" `Quick
            test_run_batch_oracle;
          Alcotest.test_case "within-batch visibility" `Quick
            test_run_batch_within_batch_visibility;
          Alcotest.test_case "crash between batches" `Quick
            test_run_batch_crash_between_batches;
        ] );
      ( "amortization",
        [
          Alcotest.test_case "cap 32 <= 1/4 fences of cap 1 (both engines)"
            `Quick test_fence_amortization_both_engines;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "async serve vs model" `Quick
            test_serve_pipeline_oracle;
          Alcotest.test_case "async = sequential differential (btree)" `Quick
            test_serve_differential_btree;
          Alcotest.test_case "async = sequential differential" `Quick
            test_serve_differential;
          Alcotest.test_case "adaptive batch sizing" `Quick
            test_serve_adaptive_batching;
        ] );
      ( "read cache",
        [
          Alcotest.test_case "cache-on = cache-off differential (btree)"
            `Quick test_cache_sequential_differential_btree;
          Alcotest.test_case "scan scatter-gather API (both engines)" `Quick
            test_serve_scan_api;
          Alcotest.test_case "cache-on = cache-off differential" `Quick
            test_cache_sequential_differential;
          Alcotest.test_case "use_cache:false takes the PM path" `Quick
            test_run_sequential_use_cache_off;
          Alcotest.test_case "bypass fast path + read-your-writes" `Quick
            test_serve_bypass_fast_path;
          Alcotest.test_case "deterministic mode ignores the cache" `Quick
            test_cache_deterministic_mode;
        ] );
      ( "migration",
        [
          Alcotest.test_case "migration = static differential" `Quick
            test_migration_differential;
          Alcotest.test_case "migration = static differential (btree)"
            `Quick test_migration_differential_btree;
          Alcotest.test_case "report, no-op, scan exactly-once" `Quick
            test_migration_report_and_scan;
          Alcotest.test_case "rebalancer chases a hotspot" `Quick
            test_rebalancer_moves_hot_slots;
          Alcotest.test_case "reply bytes exact through drain buffers"
            `Quick test_reply_bytes_unchanged;
        ] );
      ( "failure propagation",
        [
          Alcotest.test_case "raising op fails its drain, shard survives"
            `Quick test_worker_failure_propagation;
          Alcotest.test_case "exception printers registered" `Quick
            test_replication_exn_printers;
        ] );
      ( "failover",
        [
          Alcotest.test_case "kill primary, fail typed, promote, serve"
            `Quick test_serve_kill_promote;
          Alcotest.test_case "threaded semi-sync + planned switchover"
            `Quick test_serve_threaded_replication;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "explain_divergence names scan replies" `Quick
            test_explain_divergence_scan;
          Alcotest.test_case "explain_divergence" `Quick
            test_explain_divergence;
        ] );
    ]
