(* Tests for the machine substrate: memory devices, durability semantics,
   address space, and the volatile heap. *)

open Spp_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_fault f =
  match f () with
  | _ -> Alcotest.fail "expected a simulated fault"
  | exception Fault.Fault _ -> ()

(* Memdev *)

let test_memdev_roundtrip () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.store_string d ~off:100 "hello";
  check_int "view readback" (Char.code 'h')
    (Char.code (Bytes.get (Memdev.load_bytes d ~off:100 ~len:1) 0));
  Alcotest.(check string) "full string" "hello"
    (Bytes.to_string (Memdev.load_bytes d ~off:100 ~len:5))

let test_memdev_bounds () =
  let d = Memdev.create_volatile ~name:"t" 64 in
  Alcotest.check_raises "oob store"
    (Invalid_argument "Memdev(t): range [60, 60+8) out of device bounds 64")
    (fun () -> Memdev.store_string d ~off:60 "12345678")

let test_tracking_unfenced_lost () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.store_string d ~off:0 "AAAA";
  Memdev.persist d ~off:0 ~len:4;
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:0 "BBBB";
  (* no flush/fence: store must not survive the crash *)
  Memdev.crash d;
  Alcotest.(check string) "unfenced store lost" "AAAA"
    (Bytes.to_string (Memdev.load_bytes d ~off:0 ~len:4))

let test_tracking_flush_without_fence_lost () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:0 "CCCC";
  Memdev.flush d ~off:0 ~len:4;
  (* flushed but not fenced: still not guaranteed durable *)
  Memdev.crash d;
  Alcotest.(check string) "flushed-unfenced store lost" "\000\000\000\000"
    (Bytes.to_string (Memdev.load_bytes d ~off:0 ~len:4))

let test_tracking_persist_survives () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:8 "DDDD";
  Memdev.persist d ~off:8 ~len:4;
  Memdev.crash d;
  Alcotest.(check string) "persisted store survives" "DDDD"
    (Bytes.to_string (Memdev.load_bytes d ~off:8 ~len:4))

let test_tracking_cacheline_granularity () =
  (* Flushing one byte drains the whole cacheline's pending stores. *)
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:0 "EE";
  Memdev.store_string d ~off:60 "FF";   (* same 64-byte line *)
  Memdev.flush d ~off:0 ~len:1;
  Memdev.fence d;
  Memdev.crash d;
  Alcotest.(check string) "line co-resident store drained" "FF"
    (Bytes.to_string (Memdev.load_bytes d ~off:60 ~len:2))

let test_crash_applying_subset () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:0 "XX";
  Memdev.store_string d ~off:10 "YY";
  (match Memdev.pending_stores d with
   | [ first; _second ] ->
     Memdev.crash_applying d [ first ];
     Alcotest.(check string) "first applied" "XX"
       (Bytes.to_string (Memdev.load_bytes d ~off:0 ~len:2));
     Alcotest.(check string) "second dropped" "\000\000"
       (Bytes.to_string (Memdev.load_bytes d ~off:10 ~len:2))
   | l -> Alcotest.failf "expected 2 pending stores, got %d" (List.length l))

let test_crash_applying_order_insensitive () =
  (* The caller's subset is a selection, not an ordering: even handed the
     records reversed, overlapping stores land in program order. *)
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:0 "first___";
  Memdev.store_string d ~off:0 "second__";
  Memdev.crash_applying d (List.rev (Memdev.pending_stores d));
  Alcotest.(check string) "program order wins over list order" "second__"
    (Bytes.to_string (Memdev.load_bytes d ~off:0 ~len:8))

let test_injector_sees_events () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  let stores = ref 0 and flushes = ref 0 and fences = ref 0 in
  Memdev.set_injector d
    (Some
       (function
         | Memdev.Hk_store _ -> incr stores
         | Memdev.Hk_flush _ -> incr flushes
         | Memdev.Hk_fence -> incr fences));
  Memdev.store_string d ~off:0 "abcd";
  Memdev.persist d ~off:0 ~len:4;   (* flush + fence *)
  Memdev.set_injector d None;
  Memdev.store_string d ~off:8 "ef"; (* not observed any more *)
  check_int "stores seen" 1 !stores;
  check_int "flushes seen" 1 !flushes;
  check_int "fences seen" 1 !fences

let test_power_off_discards_everything () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.store_string d ~off:0 "AAAA";
  Memdev.persist d ~off:0 ~len:4;
  Memdev.set_tracking d true;
  Memdev.power_off d;
  (* a dying process's unwind path: stores, flushes, fences — all void *)
  Memdev.store_string d ~off:0 "BBBB";
  Memdev.persist d ~off:0 ~len:4;
  check_bool "reports off" true (Memdev.is_powered_off d);
  Memdev.crash d;
  check_bool "restart restores power" false (Memdev.is_powered_off d);
  Alcotest.(check string) "post-power-off persist void" "AAAA"
    (Bytes.to_string (Memdev.load_bytes d ~off:0 ~len:4))

let test_bad_block_bus_error () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.store_string d ~off:128 "okokokok";
  Memdev.add_bad_block d ~off:256 ~len:64;
  (* loads outside the region still work *)
  Alcotest.(check string) "healthy load" "okokokok"
    (Bytes.to_string (Memdev.load_bytes d ~off:128 ~len:8));
  (match Memdev.load_bytes d ~off:300 ~len:4 with
   | _ -> Alcotest.fail "expected SIGBUS"
   | exception Fault.Fault (Fault.Bus_error, addr) ->
     check_int "faulting address" 300 addr);
  (* a load straddling the region edge faults at the first bad byte *)
  (match Memdev.load_bytes d ~off:250 ~len:16 with
   | _ -> Alcotest.fail "expected SIGBUS"
   | exception Fault.Fault (Fault.Bus_error, addr) ->
     check_int "first bad byte" 256 addr);
  Memdev.clear_bad_blocks d;
  ignore (Memdev.load_bytes d ~off:300 ~len:4)

let test_corrupt_durable_flips_bit () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  let byte_at off = Char.code (Bytes.get (Memdev.load_bytes d ~off ~len:1) 0) in
  Memdev.store_u8 d ~off:77 0b0000_0100;
  Memdev.persist d ~off:77 ~len:1;
  Memdev.corrupt_durable d ~off:77 ~bit:2;
  check_int "bit cleared" 0 (byte_at 77);
  Memdev.corrupt_durable d ~off:77 ~bit:7;
  check_int "bit set" 0b1000_0000 (byte_at 77)

let test_load_durable_validation () =
  let path = Filename.temp_file "spp_bad" ".img" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "tiny";
      close_out oc;
      (match Memdev.load_durable ~name:"bad" ~min_size:4096 path with
       | _ -> Alcotest.fail "expected rejection of a truncated file"
       | exception Invalid_argument _ -> ());
      let d = Memdev.create_persistent ~name:"src" 4096 in
      Memdev.store_word d ~off:0 0xBAD_CAFE;
      Memdev.persist d ~off:0 ~len:8;
      Memdev.save_durable d path;
      (match Memdev.load_durable ~name:"bad" ~magic:0x600D_F00D path with
       | _ -> Alcotest.fail "expected rejection of a foreign magic"
       | exception Invalid_argument _ -> ());
      (* correct magic loads fine *)
      ignore (Memdev.load_durable ~name:"ok" ~magic:0xBAD_CAFE path))

let test_program_order_replay () =
  (* Overlapping pending stores replay in program order. *)
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.set_tracking d true;
  Memdev.store_string d ~off:0 "first___";
  Memdev.store_string d ~off:0 "second__";
  let all = Memdev.pending_stores d in
  Memdev.crash_applying d all;
  Alcotest.(check string) "later store wins" "second__"
    (Bytes.to_string (Memdev.load_bytes d ~off:0 ~len:8))

let test_save_load_durable () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.store_string d ~off:42 "persist-me";
  Memdev.persist d ~off:42 ~len:10;
  let path = Filename.temp_file "spp_pool" ".img" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memdev.save_durable d path;
      let d2 = Memdev.load_durable ~name:"t2" path in
      Alcotest.(check string) "reloaded" "persist-me"
        (Bytes.to_string (Memdev.load_bytes d2 ~off:42 ~len:10)))

let test_memdev_blit () =
  let d = Memdev.create_persistent ~name:"t" 4096 in
  Memdev.store_string d ~off:0 "abcdefgh";
  Memdev.persist d ~off:0 ~len:8;
  Memdev.set_tracking d true;
  Memdev.blit ~src:d ~src_off:0 ~dst:d ~dst_off:100 ~len:8;
  Alcotest.(check string) "view sees the copy" "abcdefgh"
    (Bytes.to_string (Memdev.load_bytes d ~off:100 ~len:8));
  Memdev.crash d;
  Alcotest.(check string) "unpersisted blit lost" (String.make 8 '\000')
    (Bytes.to_string (Memdev.load_bytes d ~off:100 ~len:8));
  Memdev.blit ~src:d ~src_off:0 ~dst:d ~dst_off:100 ~len:8;
  Memdev.persist d ~off:100 ~len:8;
  Memdev.crash d;
  Alcotest.(check string) "persisted blit survives" "abcdefgh"
    (Bytes.to_string (Memdev.load_bytes d ~off:100 ~len:8));
  (* overlapping same-device copy behaves like memmove *)
  Memdev.set_tracking d false;
  Memdev.store_string d ~off:200 "12345678";
  Memdev.blit ~src:d ~src_off:200 ~dst:d ~dst_off:204 ~len:8;
  Alcotest.(check string) "memmove-safe overlap" "123412345678"
    (Bytes.to_string (Memdev.load_bytes d ~off:200 ~len:12))

(* Tracking-engine differentials: the line-indexed dirty table must be
   observationally identical to the original list engine. *)

let bytes8 v = Bytes.make 8 (Char.chr v)

let prop_engines_agree =
  QCheck.Test.make
    ~name:"line-indexed and list engines produce identical durable images"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 60)
        (triple (int_bound 4) (int_bound 440) (int_bound 255)))
    (fun ops ->
      let run engine =
        let d = Memdev.create_persistent ~name:"p" 512 in
        Memdev.set_engine d engine;
        Memdev.set_tracking d true;
        List.iter
          (fun (kind, off, v) ->
            match kind with
            | 0 | 1 -> Memdev.store_bytes d ~off (bytes8 v) ~src_off:0 ~len:8
            | 2 -> Memdev.flush d ~off ~len:(1 + (v land 63))
            | 3 -> Memdev.fence d
            | _ -> Memdev.persist d ~off ~len:8)
          ops;
        Memdev.crash d;
        Memdev.durable_snapshot d
      in
      Bytes.equal (run Memdev.Line_indexed) (run Memdev.List_based))

let prop_tracked_full_flush_equals_untracked =
  QCheck.Test.make
    ~name:"tracking-on + full flush/fence = tracking-off durable image"
    ~count:150
    QCheck.(
      pair bool
        (list_of_size (Gen.int_range 1 40)
           (pair (int_bound 440) (int_bound 255))))
    (fun (indexed, writes) ->
      let run tracking =
        let d = Memdev.create_persistent ~name:"p" 512 in
        Memdev.set_engine d
          (if indexed then Memdev.Line_indexed else Memdev.List_based);
        Memdev.set_tracking d tracking;
        List.iter
          (fun (off, v) -> Memdev.store_bytes d ~off (bytes8 v) ~src_off:0 ~len:8)
          writes;
        if tracking then begin
          Memdev.flush d ~off:0 ~len:512;
          Memdev.fence d
        end;
        Memdev.durable_snapshot d
      in
      Bytes.equal (run true) (run false))

(* Space *)

let mk_space () =
  let s = Space.create () in
  let pm = Memdev.create_persistent ~name:"pm" 65536 in
  let dram = Memdev.create_volatile ~name:"dram" 65536 in
  Space.map s ~base:4096 ~size:65536 ~kind:Space.Persistent ~name:"pm" pm;
  Space.map s ~base:(1 lsl 45) ~size:65536 ~kind:Space.Volatile ~name:"dram" dram;
  s

let test_space_word_roundtrip () =
  let s = mk_space () in
  Space.store_word s 4096 0x1234_5678_9ABC;
  check_int "word" 0x1234_5678_9ABC (Space.load_word s 4096);
  Space.store_word s 8000 max_int;
  check_int "max_int" max_int (Space.load_word s 8000)

let test_space_typed_accessors () =
  let s = mk_space () in
  Space.store_u8 s 5000 0xAB;
  check_int "u8" 0xAB (Space.load_u8 s 5000);
  Space.store_u16 s 5002 0xBEEF;
  check_int "u16" 0xBEEF (Space.load_u16 s 5002);
  Space.store_u32 s 5004 0xDEADBEEF;
  check_int "u32" 0xDEADBEEF (Space.load_u32 s 5004)

let test_space_unmapped_faults () =
  let s = mk_space () in
  expect_fault (fun () -> Space.load_u8 s 0);
  expect_fault (fun () -> Space.load_u8 s (4096 + 65536));
  expect_fault (fun () -> Space.store_word s (1 lsl 61) 1);
  (* access straddling the region end *)
  expect_fault (fun () -> Space.load_word s (4096 + 65536 - 4))

let test_space_overlap_rejected () =
  let s = mk_space () in
  let d = Memdev.create_volatile ~name:"x" 4096 in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Space.map: region x overlaps pm")
    (fun () -> Space.map s ~base:8192 ~size:4096 ~kind:Space.Volatile ~name:"x" d)

let test_space_blit_and_strings () =
  let s = mk_space () in
  Space.write_string s 4200 "hello world\000";
  Space.blit s ~src:4200 ~dst:9000 ~len:12;
  Alcotest.(check string) "blit" "hello world" (Space.read_cstring s 9000);
  check_int "strlen" 11 (Space.strlen s 4200)

let test_space_stats () =
  let s = mk_space () in
  Space.reset_stats s;
  Space.store_word s 4096 1;
  ignore (Space.load_word s 4096);
  Space.store_word s (1 lsl 45) 1;
  let st = Space.stats s in
  check_int "pm stores" 1 st.Space.pm_stores;
  check_int "pm loads" 1 st.Space.pm_loads;
  check_int "vol stores" 1 st.Space.vol_stores

let test_space_byte_counters () =
  (* A block op is one event; the moved bytes are accounted separately. *)
  let s = mk_space () in
  Space.reset_stats s;
  Space.write_string s 4096 "12345678";
  ignore (Space.read_bytes s 4096 8);
  Space.store_u8 s 5000 1;
  let st = Space.stats s in
  check_int "store events" 2 st.Space.pm_stores;
  check_int "bytes stored" 9 st.Space.pm_bytes_stored;
  check_int "load events" 1 st.Space.pm_loads;
  check_int "bytes loaded" 8 st.Space.pm_bytes_loaded

let test_space_tlb_counters () =
  let s = mk_space () in
  Space.reset_stats s;
  ignore (Space.load_u8 s 8192);          (* cold page: miss *)
  ignore (Space.load_u8 s 8200);          (* same page: hit *)
  ignore (Space.load_u8 s 8208);
  let st = Space.stats s in
  check_int "tlb misses" 1 st.Space.tlb_misses;
  check_int "tlb hits" 2 st.Space.tlb_hits

let test_space_memcmp_strcmp () =
  let s = mk_space () in
  Space.write_string s 4100 "apple\000";
  Space.write_string s 4200 "apples\000";
  Space.write_string s 4300 "apple\000";
  check_bool "strcmp lt" true (Space.strcmp s 4100 4200 < 0);
  check_bool "strcmp gt" true (Space.strcmp s 4200 4100 > 0);
  check_int "strcmp eq" 0 (Space.strcmp s 4100 4300);
  check_int "memcmp eq" 0 (Space.memcmp s 4100 4300 5);
  check_bool "memcmp lt" true (Space.memcmp s 4100 4200 6 < 0)

let test_strlen_chunked_boundaries () =
  let s = mk_space () in
  (* longer than one scan chunk *)
  Space.write_string s 4200 (String.make 1000 'a' ^ "\000");
  check_int "long strlen" 1000 (Space.strlen s 4200);
  let end_ = 4096 + 65536 in
  (* unterminated scan running off the region end must fault *)
  Space.fill s (end_ - 32) 32 'x';
  expect_fault (fun () -> Space.strlen s (end_ - 32));
  (* NUL in the region's very last byte is still found *)
  Space.fill s (end_ - 16) 15 'y';
  Space.store_u8 s (end_ - 1) 0;
  check_int "nul at region end" 15 (Space.strlen s (end_ - 16))

let test_strlen_bad_block_semantics () =
  let s = Space.create () in
  let d = Memdev.create_persistent ~name:"p" 4096 in
  Space.map s ~base:4096 ~size:4096 ~kind:Space.Persistent ~name:"p" d;
  Space.write_string s 4096 "ok\000";
  Memdev.add_bad_block d ~off:64 ~len:64;
  (* the NUL stops the access before the bad block, like on hardware *)
  check_int "strlen stops at NUL" 2 (Space.strlen s 4096);
  (* a scan crossing the bad block faults with SIGBUS *)
  Space.fill s (4096 + 60) 8 'z';
  Space.store_u8 s (4096 + 70) 0;
  expect_fault (fun () -> Space.strlen s (4096 + 60))

(* Satellite: the translation cache must never outlive its region. *)

let test_tlb_unmap_remap_no_stale () =
  let s = Space.create () in
  let d1 = Memdev.create_persistent ~name:"d1" 8192 in
  let d2 = Memdev.create_persistent ~name:"d2" 8192 in
  Memdev.store_u8 d1 ~off:0 1;
  Memdev.store_u8 d2 ~off:0 2;
  Space.map s ~base:4096 ~size:8192 ~kind:Space.Persistent ~name:"r1" d1;
  check_int "d1 content" 1 (Space.load_u8 s 4096);   (* warms the TLB *)
  check_int "d1 content again" 1 (Space.load_u8 s 4096);
  Space.unmap s ~base:4096;
  expect_fault (fun () -> Space.load_u8 s 4096);
  Space.map s ~base:4096 ~size:8192 ~kind:Space.Persistent ~name:"r2" d2;
  check_int "remap serves the new device" 2 (Space.load_u8 s 4096)

(* Caller-buffer reads and leases — the zero-copy read path's substrate. *)

let test_read_into_roundtrip_and_counters () =
  let s = mk_space () in
  Space.write_string s 4200 "zero-copy payload";
  Space.reset_stats s;
  let dst = Bytes.make 24 '.' in
  Space.read_into s 4200 ~len:17 ~dst ~dst_off:3;
  Alcotest.(check string) "payload landed at dst_off"
    "...zero-copy payload...." (Bytes.to_string dst);
  let st = Space.stats s in
  check_int "one load event" 1 st.Space.pm_loads;
  check_int "bytes loaded" 17 st.Space.pm_bytes_loaded;
  Alcotest.(check string) "read_sub agrees" "zero-copy payload"
    (Space.read_sub s 4200 17);
  Alcotest.check_raises "bad destination range"
    (Invalid_argument "Space.read_into: bad destination range")
    (fun () -> Space.read_into s 4200 ~len:17 ~dst ~dst_off:10)

let test_read_into_region_boundary () =
  let s = mk_space () in
  let end_ = 4096 + 65536 in
  Space.fill s (end_ - 8) 8 'e';
  (* a read ending exactly at the region's last byte succeeds *)
  Alcotest.(check string) "flush against region end" "eeeeeeee"
    (Space.read_sub s (end_ - 8) 8);
  (* one byte further raises SIGSEGV naming the first unmapped address *)
  (match Space.read_sub s (end_ - 8) 9 with
   | _ -> Alcotest.fail "expected SIGSEGV past region end"
   | exception Fault.Fault (Fault.Segfault, addr) ->
     check_int "faulting address is the region limit" end_ addr);
  (* reads longer than one copy chunk still roundtrip *)
  Space.fill s 4096 5000 'k';
  Alcotest.(check string) "multi-chunk read" (String.make 5000 'k')
    (Space.read_sub s 4096 5000)

let test_read_into_bad_block_exact () =
  let s = Space.create () in
  let d = Memdev.create_persistent ~name:"p" 8192 in
  Space.map s ~base:4096 ~size:8192 ~kind:Space.Persistent ~name:"p" d;
  Space.fill s 4096 600 'g';
  Memdev.add_bad_block d ~off:500 ~len:8;
  let dst = Bytes.make 600 '.' in
  (* the clean prefix must land in [dst] byte-exactly before the SIGBUS,
     even though the bad block sits mid-chunk *)
  (match Space.read_into s 4096 ~len:600 ~dst ~dst_off:0 with
   | () -> Alcotest.fail "expected SIGBUS on the bad block"
   | exception Fault.Fault (Fault.Bus_error, off) ->
     check_int "fault names the first bad device byte" 500 off);
  Alcotest.(check string) "clean prefix copied exactly"
    (String.make 500 'g' ^ String.make 100 '.')
    (Bytes.to_string dst)

let test_compare_string_device_side () =
  let s = mk_space () in
  Space.write_string s 4100 "apple";
  check_int "equal" 0 (Space.compare_string s 4100 ~len:5 "apple");
  check_bool "device lt" true (Space.compare_string s 4100 ~len:5 "apples" < 0);
  check_bool "device gt" true (Space.compare_string s 4100 ~len:5 "appld" > 0);
  check_bool "equal_string" true (Space.equal_string s 4100 "apple");
  check_bool "same-length mismatch" false (Space.equal_string s 4100 "appla");
  (* equal_string only sizes its window by the candidate: a shorter
     candidate matching a device prefix is the caller's length check *)
  check_bool "prefix matches by design" true (Space.equal_string s 4100 "appl");
  Space.reset_stats s;
  ignore (Space.compare_string s 4100 ~len:5 "zzzzz");
  let st = Space.stats s in
  check_int "compare is one load event" 1 st.Space.pm_loads

let test_lease_reads_and_stats () =
  let s = mk_space () in
  Space.write_string s 4200 "KKKKVVVVVV";
  Space.store_word s 4264 0xFEED;
  let l = Space.lease s 4200 128 in
  check_int "lease addr" 4200 (Space.lease_addr l);
  check_int "lease len" 128 (Space.lease_len l);
  check_bool "fresh lease valid" true (Space.lease_valid l);
  check_int "word through lease" 0xFEED (Space.lease_load_word l 64);
  check_int "u8 through lease" (Char.code 'K') (Space.lease_load_u8 l 0);
  Alcotest.(check string) "string through lease" "VVVVVV"
    (Space.lease_string l ~off:4 ~len:6);
  check_bool "device compare through lease" true
    (Space.lease_equal_string l ~off:0 "KKKK");
  check_bool "compare mismatch" false
    (Space.lease_equal_string l ~off:0 "KKKX");
  (* lease reads still count: the hoisting removes translations, not
     device accounting *)
  Space.reset_stats s;
  ignore (Space.lease_string l ~off:0 ~len:10);
  let st = Space.stats s in
  check_int "lease read is one load event" 1 st.Space.pm_loads;
  check_int "lease read bytes" 10 st.Space.pm_bytes_loaded

let test_lease_misuse_typed () =
  let s = mk_space () in
  let l = Space.lease s 4200 64 in
  Alcotest.check_raises "empty window rejected"
    (Invalid_argument "Space.lease: window must be non-empty")
    (fun () -> ignore (Space.lease s 4200 0));
  (match Space.lease_load_word l 60 with
   | _ -> Alcotest.fail "expected Lease_out_of_window"
   | exception Space.Lease_out_of_window { addr; window; off; len } ->
     check_int "window base" 4200 addr;
     check_int "window size" 64 window;
     check_int "bad offset" 60 off;
     check_int "bad len" 8 len);
  (match Space.lease_string l ~off:(-1) ~len:4 with
   | _ -> Alcotest.fail "expected Lease_out_of_window"
   | exception Space.Lease_out_of_window _ -> ())

let test_lease_stale_after_remap () =
  let s = Space.create () in
  let d1 = Memdev.create_persistent ~name:"d1" 8192 in
  let d2 = Memdev.create_persistent ~name:"d2" 8192 in
  Memdev.store_string d1 ~off:104 "old!";
  Memdev.store_string d2 ~off:104 "new!";
  Space.map s ~base:4096 ~size:8192 ~kind:Space.Persistent ~name:"r1" d1;
  let l = Space.lease s 4200 16 in
  Alcotest.(check string) "live lease reads d1" "old!"
    (Space.lease_string l ~off:0 ~len:4);
  Space.unmap s ~base:4096;
  check_bool "stale after unmap" false (Space.lease_valid l);
  (match Space.lease_load_u8 l 0 with
   | _ -> Alcotest.fail "expected Stale_lease"
   | exception Space.Stale_lease { addr; len } ->
     check_int "stale addr" 4200 addr;
     check_int "stale len" 16 len);
  (* remapping the same range must NOT revive the old lease — it would
     read through the dead device's translation *)
  Space.map s ~base:4096 ~size:8192 ~kind:Space.Persistent ~name:"r2" d2;
  (match Space.lease_string l ~off:0 ~len:4 with
   | _ -> Alcotest.fail "expected Stale_lease after remap"
   | exception Space.Stale_lease _ -> ());
  let l2 = Space.lease s 4200 16 in
  Alcotest.(check string) "fresh lease reads d2" "new!"
    (Space.lease_string l2 ~off:0 ~len:4)

let test_lease_bad_block_still_faults () =
  (* The hoisted check covers mapping and bounds, never media health:
     a bad block grown after acquisition must still SIGBUS exactly. *)
  let s = Space.create () in
  let d = Memdev.create_persistent ~name:"p" 8192 in
  Space.map s ~base:4096 ~size:8192 ~kind:Space.Persistent ~name:"p" d;
  Space.fill s 4096 64 'q';
  let l = Space.lease s 4096 64 in
  Alcotest.(check string) "healthy read" (String.make 8 'q')
    (Space.lease_string l ~off:0 ~len:8);
  Memdev.add_bad_block d ~off:32 ~len:4;
  (match Space.lease_string l ~off:0 ~len:64 with
   | _ -> Alcotest.fail "expected SIGBUS through lease"
   | exception Fault.Fault (Fault.Bus_error, off) ->
     check_int "exact bad device byte" 32 off)

let prop_tlb_never_stale =
  QCheck.Test.make
    ~name:"tlb never serves a stale translation across map/unmap" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 40) (pair (int_bound 3) (int_bound 2)))
    (fun ops ->
      (* four slots, each 2 pages apart; every mapped device carries a
         unique stamp so a stale TLB entry is immediately visible *)
      let s = Space.create () in
      let stamps = Array.make 4 None in
      let next = ref 0 in
      let base i = 4096 + (i * 8192) in
      let ok = ref true in
      List.iter
        (fun (slot, action) ->
          let i = slot land 3 in
          match (action, stamps.(i)) with
          | 0, None ->
            incr next;
            let d = Memdev.create_persistent ~name:"d" 8192 in
            Memdev.store_word d ~off:0 !next;
            Space.map s ~base:(base i) ~size:8192 ~kind:Space.Persistent
              ~name:(string_of_int !next) d;
            stamps.(i) <- Some !next
          | 0, Some _ ->
            Space.unmap s ~base:(base i);
            stamps.(i) <- None
          | _, expected -> (
            match Space.load_word s (base i) with
            | v -> if expected <> Some v then ok := false
            | exception Fault.Fault _ -> if expected <> None then ok := false))
        ops;
      !ok)

(* Vheap *)

let test_vheap_basic () =
  let s = Space.create () in
  let h = Vheap.create s 65536 in
  let a = Vheap.malloc h 100 in
  let b = Vheap.malloc h 200 in
  check_bool "disjoint" true (b >= a + 100 || a >= b + 200);
  Space.write_string s a "data";
  Alcotest.(check string) "rw" "data"
    (Bytes.to_string (Space.read_bytes s a 4));
  Vheap.free h a;
  Vheap.free h b;
  check_int "all free" 0 (Vheap.bytes_live h)

let test_vheap_coalesce_reuse () =
  let s = Space.create () in
  let h = Vheap.create s 4096 in
  let a = Vheap.malloc h 1024 in
  let b = Vheap.malloc h 1024 in
  let c = Vheap.malloc h 1024 in
  Vheap.free h a; Vheap.free h b; Vheap.free h c;
  (* after coalescing, a 3 KiB block must fit again *)
  let big = Vheap.malloc h 3072 in
  check_int "reused from start" a big

let test_vheap_realloc_preserves () =
  let s = Space.create () in
  let h = Vheap.create s 65536 in
  let a = Vheap.malloc h 16 in
  Space.write_string s a "0123456789ABCDEF";
  let b = Vheap.realloc h a 64 in
  Alcotest.(check string) "contents preserved" "0123456789ABCDEF"
    (Bytes.to_string (Space.read_bytes s b 16))

let test_vheap_double_free () =
  let s = Space.create () in
  let h = Vheap.create s 4096 in
  let a = Vheap.malloc h 8 in
  Vheap.free h a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Vheap.free: not a live allocation")
    (fun () -> Vheap.free h a)

let test_vheap_oom () =
  let s = Space.create () in
  let h = Vheap.create s 1024 in
  Alcotest.check_raises "oom" Out_of_memory
    (fun () -> ignore (Vheap.malloc h 4096))

(* Property tests *)

let prop_word_roundtrip =
  QCheck.Test.make ~name:"space word store/load roundtrip" ~count:500
    QCheck.(pair (int_bound 65000) (int_bound max_int))
    (fun (off, v) ->
      QCheck.assume (off land 7 = 0 && off + 8 <= 65536);
      let s = Space.create () in
      let d = Memdev.create_persistent ~name:"p" 65536 in
      Space.map s ~base:4096 ~size:65536 ~kind:Space.Persistent ~name:"p" d;
      Space.store_word s (4096 + off) v;
      Space.load_word s (4096 + off) = v)

let prop_vheap_disjoint =
  QCheck.Test.make ~name:"vheap live allocations never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 200))
    (fun sizes ->
      let s = Space.create () in
      let h = Vheap.create s (1 lsl 20) in
      let addrs = List.map (fun sz -> (Vheap.malloc h sz, sz)) sizes in
      (* free every other allocation to fragment the heap *)
      List.iteri (fun i (a, _) -> if i mod 2 = 0 then Vheap.free h a) addrs;
      let live = Vheap.live_allocations h in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) ->
          a1 + s1 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint live)

let prop_crash_is_prefix_consistent =
  QCheck.Test.make
    ~name:"crash never resurrects pre-tracking state after persist" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_bound 400) (int_bound 255)))
    (fun writes ->
      let d = Memdev.create_persistent ~name:"p" 512 in
      Memdev.set_tracking d true;
      List.iter
        (fun (off, v) ->
          let off = min off 511 in
          Memdev.store_bytes d ~off (Bytes.make 1 (Char.chr v)) ~src_off:0 ~len:1;
          Memdev.persist d ~off ~len:1)
        writes;
      let expected = Bytes.copy (Memdev.load_bytes d ~off:0 ~len:512) in
      Memdev.crash d;
      Bytes.equal expected (Memdev.load_bytes d ~off:0 ~len:512))

(* The scoped default-engine selector must restore the previous default
   on every exit path — including an exception mid-scope — so an
   engine-differential suite can never poison suites that run after it. *)
let test_with_default_engine_scoped () =
  let initial = Memdev.default_engine () in
  let inside =
    Memdev.with_default_engine Memdev.List_based Memdev.default_engine
  in
  check_bool "selected inside the scope" true (inside = Memdev.List_based);
  check_bool "restored after return" true (Memdev.default_engine () = initial);
  (try
     Memdev.with_default_engine Memdev.List_based (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "restored after exception" true
    (Memdev.default_engine () = initial);
  let d = Memdev.with_default_engine Memdev.List_based
      (fun () -> Memdev.create_persistent ~name:"scoped" 64) in
  check_bool "device created in scope uses the scoped engine" true
    (Memdev.engine d = Memdev.List_based)

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_sim"
    [
      ( "memdev",
        [
          Alcotest.test_case "roundtrip" `Quick test_memdev_roundtrip;
          Alcotest.test_case "bounds" `Quick test_memdev_bounds;
          Alcotest.test_case "unfenced store lost on crash" `Quick
            test_tracking_unfenced_lost;
          Alcotest.test_case "flush without fence lost" `Quick
            test_tracking_flush_without_fence_lost;
          Alcotest.test_case "persist survives crash" `Quick
            test_tracking_persist_survives;
          Alcotest.test_case "cacheline flush granularity" `Quick
            test_tracking_cacheline_granularity;
          Alcotest.test_case "crash applying subset" `Quick
            test_crash_applying_subset;
          Alcotest.test_case "crash applying ignores list order" `Quick
            test_crash_applying_order_insensitive;
          Alcotest.test_case "program-order replay" `Quick
            test_program_order_replay;
          Alcotest.test_case "injector sees durability events" `Quick
            test_injector_sees_events;
          Alcotest.test_case "power off discards late stores" `Quick
            test_power_off_discards_everything;
          Alcotest.test_case "bad block raises bus error" `Quick
            test_bad_block_bus_error;
          Alcotest.test_case "corrupt_durable flips bits" `Quick
            test_corrupt_durable_flips_bit;
          Alcotest.test_case "save/load pool file" `Quick test_save_load_durable;
          Alcotest.test_case "load_durable validates size and magic" `Quick
            test_load_durable_validation;
          Alcotest.test_case "device-level blit" `Quick test_memdev_blit;
          Alcotest.test_case "with_default_engine scoped" `Quick
            test_with_default_engine_scoped;
        ] );
      ( "space",
        [
          Alcotest.test_case "word roundtrip" `Quick test_space_word_roundtrip;
          Alcotest.test_case "typed accessors" `Quick test_space_typed_accessors;
          Alcotest.test_case "unmapped access faults" `Quick
            test_space_unmapped_faults;
          Alcotest.test_case "overlapping map rejected" `Quick
            test_space_overlap_rejected;
          Alcotest.test_case "blit and cstrings" `Quick
            test_space_blit_and_strings;
          Alcotest.test_case "access stats" `Quick test_space_stats;
          Alcotest.test_case "byte counters" `Quick test_space_byte_counters;
          Alcotest.test_case "tlb hit/miss counters" `Quick
            test_space_tlb_counters;
          Alcotest.test_case "memcmp and strcmp" `Quick
            test_space_memcmp_strcmp;
          Alcotest.test_case "chunked strlen boundaries" `Quick
            test_strlen_chunked_boundaries;
          Alcotest.test_case "strlen vs bad blocks" `Quick
            test_strlen_bad_block_semantics;
          Alcotest.test_case "tlb unmap/remap not stale" `Quick
            test_tlb_unmap_remap_no_stale;
          Alcotest.test_case "read_into roundtrip and counters" `Quick
            test_read_into_roundtrip_and_counters;
          Alcotest.test_case "read_into region boundary" `Quick
            test_read_into_region_boundary;
          Alcotest.test_case "read_into bad-block exactness" `Quick
            test_read_into_bad_block_exact;
          Alcotest.test_case "device-side compare_string" `Quick
            test_compare_string_device_side;
          Alcotest.test_case "lease reads and stats" `Quick
            test_lease_reads_and_stats;
          Alcotest.test_case "lease misuse typed errors" `Quick
            test_lease_misuse_typed;
          Alcotest.test_case "lease stale after unmap/remap" `Quick
            test_lease_stale_after_remap;
          Alcotest.test_case "lease bad block still faults" `Quick
            test_lease_bad_block_still_faults;
        ] );
      ( "vheap",
        [
          Alcotest.test_case "malloc/free" `Quick test_vheap_basic;
          Alcotest.test_case "coalesce and reuse" `Quick
            test_vheap_coalesce_reuse;
          Alcotest.test_case "realloc preserves contents" `Quick
            test_vheap_realloc_preserves;
          Alcotest.test_case "double free rejected" `Quick test_vheap_double_free;
          Alcotest.test_case "out of memory" `Quick test_vheap_oom;
        ] );
      ( "properties",
        [ qt prop_word_roundtrip; qt prop_vheap_disjoint;
          qt prop_crash_is_prefix_consistent;
          qt prop_engines_agree;
          qt prop_tracked_full_flush_equals_untracked;
          qt prop_tlb_never_stale ] );
    ]
