(* Tests for the pmemkv cmap engine: correctness against an oracle on all
   variants, variable-size values, deletion, crash durability, and the
   db_bench driver. *)

open Spp_pmdk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(pool_size = 1 lsl 24) variant =
  Spp_access.create ~pool_size ~name:(Spp_access.variant_name variant) variant

let test_put_get_all_variants () =
  List.iter
    (fun v ->
      let a = mk v in
      let kv = Spp_pmemkv.Cmap.create ~nbuckets:64 a in
      Spp_pmemkv.Cmap.put kv ~key:"alpha" ~value:"1";
      Spp_pmemkv.Cmap.put kv ~key:"beta" ~value:"2";
      Alcotest.(check (option string))
        (Spp_access.variant_name v ^ " get alpha")
        (Some "1") (Spp_pmemkv.Cmap.get kv "alpha");
      Alcotest.(check (option string))
        (Spp_access.variant_name v ^ " get missing")
        None (Spp_pmemkv.Cmap.get kv "gamma");
      check_bool "remove beta" true (Spp_pmemkv.Cmap.remove kv "beta");
      check_bool "remove twice" false (Spp_pmemkv.Cmap.remove kv "beta");
      check_int "count" 1 (Spp_pmemkv.Cmap.count_all kv))
    Spp_access.all_variants

let test_overwrite_same_and_different_size () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
  Spp_pmemkv.Cmap.put kv ~key:"k" ~value:"aaaa";
  Spp_pmemkv.Cmap.put kv ~key:"k" ~value:"bbbb";   (* in-place *)
  Alcotest.(check (option string)) "same-size overwrite" (Some "bbbb")
    (Spp_pmemkv.Cmap.get kv "k");
  Spp_pmemkv.Cmap.put kv ~key:"k" ~value:"cccccccc";   (* realloc path *)
  Alcotest.(check (option string)) "resize overwrite" (Some "cccccccc")
    (Spp_pmemkv.Cmap.get kv "k");
  check_int "single live entry" 1 (Spp_pmemkv.Cmap.count_all kv)

let test_oracle_random_ops () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:32 a in
  let model = Hashtbl.create 64 in
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 2000 do
    let key = Printf.sprintf "key-%d" (Random.State.int st 200) in
    match Random.State.int st 3 with
    | 0 ->
      let value = Printf.sprintf "val-%d" (Random.State.int st 10000) in
      Spp_pmemkv.Cmap.put kv ~key ~value;
      Hashtbl.replace model key value
    | 1 ->
      let expected = Hashtbl.mem model key in
      check_bool "remove agrees" expected (Spp_pmemkv.Cmap.remove kv key);
      Hashtbl.remove model key
    | _ ->
      Alcotest.(check (option string)) "get agrees"
        (Hashtbl.find_opt model key)
        (Spp_pmemkv.Cmap.get kv key)
  done;
  check_int "final count" (Hashtbl.length model) (Spp_pmemkv.Cmap.count_all kv)

let test_crash_durability () =
  let a = mk Spp_access.Pmdk in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  Spp_pmemkv.Cmap.put kv ~key:"durable" ~value:"yes";
  Spp_pmemkv.Cmap.put kv ~key:"gone-after-remove" ~value:"x";
  check_bool "removed" true (Spp_pmemkv.Cmap.remove kv "gone-after-remove");
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  Alcotest.(check (option string)) "committed put durable" (Some "yes")
    (Spp_pmemkv.Cmap.get kv "durable");
  Alcotest.(check (option string)) "committed remove durable" None
    (Spp_pmemkv.Cmap.get kv "gone-after-remove")

(* Reopen-after-churn: heavy put/remove traffic (with a warm read cache
   attached) must leave a durable image that a fresh process — a new
   Memdev built from the durable snapshot, Pool.open_dev, attach — reads
   back exactly: same count, same survivors, and a cold cache, since the
   Rcache is volatile by design. *)
let test_attach_after_remove_churn () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:32 a in
  Spp_pmemkv.Cmap.set_cache kv (Some (Spp_pmemkv.Rcache.create ~cap:64));
  let pool = a.Spp_access.pool in
  let root = a.Spp_access.root a.Spp_access.oid_size in
  Pool.store_oid pool ~off:root.Spp_pmdk.Oid.off
    (Spp_pmemkv.Cmap.buckets_oid kv);
  Pool.persist pool ~off:root.Spp_pmdk.Oid.off ~len:a.Spp_access.oid_size;
  let model = Hashtbl.create 64 in
  let st = Random.State.make [| 2026 |] in
  let key i = Printf.sprintf "churn-%03d" i in
  (* Remove-heavy churn: every key is put, most are removed again, some
     several times over, and gets keep the cache warm throughout. *)
  for round = 1 to 4 do
    for i = 0 to 199 do
      let k = key i in
      let v = Printf.sprintf "r%d-%d" round i in
      Spp_pmemkv.Cmap.put kv ~key:k ~value:v;
      Hashtbl.replace model k v;
      ignore (Spp_pmemkv.Cmap.get kv k);
      if Random.State.int st 4 < 3 then begin
        check_bool "remove live key" true (Spp_pmemkv.Cmap.remove kv k);
        Hashtbl.remove model k
      end
    done
  done;
  check_int "live count before reopen" (Hashtbl.length model)
    (Spp_pmemkv.Cmap.count_all kv);
  (* A fresh device from the durable snapshot — nothing volatile can
     leak across, by construction. *)
  let img = Spp_sim.Memdev.durable_snapshot (Pool.dev pool) in
  let dev' = Spp_sim.Memdev.of_image ~name:"churn-reopen" img in
  let space' = Spp_sim.Space.create () in
  match Pool.open_dev space' ~base:Spp_access.default_pool_base dev' with
  | Error e -> Alcotest.failf "reopen failed: %s" (Pool.pool_error_to_string e)
  | Ok (pool', _report) ->
    let a' = Spp_access.attach (Pool.space pool') pool' in
    let buckets =
      Pool.load_oid pool' ~off:(Pool.root_oid pool').Spp_pmdk.Oid.off
    in
    let kv' = Spp_pmemkv.Cmap.attach a' ~buckets in
    check_bool "reattached map starts cold" true
      (Spp_pmemkv.Cmap.cache kv' = None);
    check_int "count survives reopen" (Hashtbl.length model)
      (Spp_pmemkv.Cmap.count_all kv');
    for i = 0 to 199 do
      Alcotest.(check (option string)) ("survivor " ^ key i)
        (Hashtbl.find_opt model (key i))
        (Spp_pmemkv.Cmap.get kv' (key i))
    done

let test_large_values () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
  let v = String.make 1024 'z' in
  Spp_pmemkv.Cmap.put kv ~key:"big" ~value:v;
  Alcotest.(check (option string)) "1 KiB value" (Some v)
    (Spp_pmemkv.Cmap.get kv "big")

let test_db_bench_runs () =
  let a = mk Spp_access.Pmdk in
  let kv = Spp_pmemkv.Cmap.create a in
  Spp_pmemkv.Db_bench.preload kv ~keys:200;
  List.iter
    (fun w ->
      let r =
        Spp_pmemkv.Db_bench.run kv ~threads:2 ~ops_per_thread:100 ~universe:200 w
      in
      check_int (Spp_pmemkv.Db_bench.workload_name w ^ " ops") 200
        r.Spp_pmemkv.Db_bench.total_ops;
      check_bool "positive throughput" true
        (r.Spp_pmemkv.Db_bench.throughput > 0.))
    Spp_pmemkv.Db_bench.all_workloads

(* --- B-tree engine (Bmap) --- *)

let sorted_bindings model =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Sync put/get/remove (which route through single-op redo batches on
   this engine) against a DRAM model, on every access variant; the
   full-range scan must equal the model's sorted bindings exactly. *)
let test_bmap_oracle_random_ops () =
  List.iter
    (fun variant ->
      let a = mk variant in
      let kv = Spp_pmemkv.Bmap.create a in
      let model = Hashtbl.create 64 in
      let st = Random.State.make [| 11 |] in
      for _ = 1 to 1200 do
        let key = Printf.sprintf "key-%03d" (Random.State.int st 150) in
        match Random.State.int st 3 with
        | 0 ->
          let value = Printf.sprintf "val-%d" (Random.State.int st 10000) in
          Spp_pmemkv.Bmap.put kv ~key ~value;
          Hashtbl.replace model key value
        | 1 ->
          let expected = Hashtbl.mem model key in
          check_bool "remove agrees" expected (Spp_pmemkv.Bmap.remove kv key);
          Hashtbl.remove model key
        | _ ->
          Alcotest.(check (option string)) "get agrees"
            (Hashtbl.find_opt model key)
            (Spp_pmemkv.Bmap.get kv key)
      done;
      check_int
        (Spp_access.variant_name variant ^ " final count")
        (Hashtbl.length model)
        (Spp_pmemkv.Bmap.count_all kv);
      Alcotest.(check (list (pair string string)))
        (Spp_access.variant_name variant ^ " full scan = sorted model")
        (sorted_bindings model)
        (Spp_pmemkv.Bmap.scan kv ~lo:"" ~hi:"~" ~limit:1000))
    Spp_access.all_variants

(* Inclusive bounds, ascending order, limit clipping, empty windows. *)
let test_bmap_scan_semantics () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Bmap.create a in
  for i = 0 to 49 do
    Spp_pmemkv.Bmap.put kv
      ~key:(Printf.sprintf "k%02d" i)
      ~value:(Printf.sprintf "v%02d" i)
  done;
  let expect lo hi =
    List.init 50 (fun i -> i)
    |> List.filter_map (fun i ->
         let k = Printf.sprintf "k%02d" i in
         if lo <= k && k <= hi then Some (k, Printf.sprintf "v%02d" i)
         else None)
  in
  Alcotest.(check (list (pair string string)))
    "inclusive window" (expect "k10" "k19")
    (Spp_pmemkv.Bmap.scan kv ~lo:"k10" ~hi:"k19" ~limit:100);
  Alcotest.(check (list (pair string string)))
    "limit clips the head"
    [ ("k10", "v10"); ("k11", "v11"); ("k12", "v12") ]
    (Spp_pmemkv.Bmap.scan kv ~lo:"k10" ~hi:"k19" ~limit:3);
  check_int "empty window" 0
    (List.length (Spp_pmemkv.Bmap.scan kv ~lo:"k90" ~hi:"k99" ~limit:10));
  check_int "inverted bounds" 0
    (List.length (Spp_pmemkv.Bmap.scan kv ~lo:"k19" ~hi:"k10" ~limit:10));
  check_int "limit 0" 0
    (List.length (Spp_pmemkv.Bmap.scan kv ~lo:"" ~hi:"~" ~limit:0))

(* A scan op inside a batch sees every earlier op of the same batch
   (puts and removes staged ahead of it), matching Cmap's read-your-
   batched-writes contract. *)
let test_bmap_batch_scan_visibility () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Bmap.create a in
  Spp_pmemkv.Bmap.put kv ~key:"b" ~value:"old";
  Spp_pmemkv.Bmap.put kv ~key:"d" ~value:"dead";
  let replies =
    Spp_pmemkv.Bmap.run_batch kv
      [| Spp_pmemkv.Engine.B_put { key = "a"; value = "1" };
         Spp_pmemkv.Engine.B_put { key = "b"; value = "new" };
         Spp_pmemkv.Engine.B_remove "d";
         Spp_pmemkv.Engine.B_scan { lo = ""; hi = "~"; limit = 10 };
         Spp_pmemkv.Engine.B_get "a";
      |]
  in
  (match replies.(3) with
   | Spp_pmemkv.Engine.R_scan kvs ->
     Alcotest.(check (list (pair string string)))
       "mid-batch scan sees staged ops"
       [ ("a", "1"); ("b", "new") ] kvs
   | _ -> Alcotest.fail "expected R_scan");
  match replies.(4) with
  | Spp_pmemkv.Engine.R_get v ->
    Alcotest.(check (option string)) "read-your-batched-writes" (Some "1") v
  | _ -> Alcotest.fail "expected R_get"

(* The COW churn stress: heavy mixed batches, then reopen from the
   durable snapshot in a fresh space and require count, survivors and
   scan order to read back exactly. This is the test that catches a
   node or item freed while still reachable, or a root staged to a torn
   subtree. *)
let test_bmap_attach_after_churn () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Bmap.create a in
  Spp_pmemkv.Bmap.set_cache kv (Some (Spp_pmemkv.Rcache.create ~cap:64));
  let pool = a.Spp_access.pool in
  let root = a.Spp_access.root a.Spp_access.oid_size in
  Pool.store_oid pool ~off:root.Spp_pmdk.Oid.off
    (Spp_pmemkv.Bmap.root_oid kv);
  Pool.persist pool ~off:root.Spp_pmdk.Oid.off ~len:a.Spp_access.oid_size;
  let model = Hashtbl.create 64 in
  let st = Random.State.make [| 4242 |] in
  let key i = Printf.sprintf "churn-%03d" i in
  for _round = 1 to 6 do
    let batch =
      Array.init 40 (fun _ ->
        let k = key (Random.State.int st 120) in
        if Random.State.int st 4 < 3 then begin
          let v = Printf.sprintf "v%d" (Random.State.int st 100000) in
          Hashtbl.replace model k v;
          Spp_pmemkv.Engine.B_put { key = k; value = v }
        end
        else begin
          Hashtbl.remove model k;
          Spp_pmemkv.Engine.B_remove k
        end)
    in
    ignore (Spp_pmemkv.Bmap.run_batch kv batch)
  done;
  check_int "live count before reopen" (Hashtbl.length model)
    (Spp_pmemkv.Bmap.count_all kv);
  let img = Spp_sim.Memdev.durable_snapshot (Pool.dev pool) in
  let dev' = Spp_sim.Memdev.of_image ~name:"bmap-reopen" img in
  let space' = Spp_sim.Space.create () in
  match Pool.open_dev space' ~base:Spp_access.default_pool_base dev' with
  | Error e -> Alcotest.failf "reopen failed: %s" (Pool.pool_error_to_string e)
  | Ok (pool', _report) ->
    let a' = Spp_access.attach (Pool.space pool') pool' in
    let map_root =
      Pool.load_oid pool' ~off:(Pool.root_oid pool').Spp_pmdk.Oid.off
    in
    let kv' = Spp_pmemkv.Bmap.attach a' ~root:map_root in
    check_bool "reattached tree starts cold" true
      (Spp_pmemkv.Bmap.cache kv' = None);
    check_int "count survives reopen" (Hashtbl.length model)
      (Spp_pmemkv.Bmap.count_all kv');
    Alcotest.(check (list (pair string string)))
      "scan survives reopen in order" (sorted_bindings model)
      (Spp_pmemkv.Bmap.scan kv' ~lo:"" ~hi:"~" ~limit:1000)

(* Cmap's scan obeys the same Engine.S contract even though it sorts a
   hash walk; and the registry resolves both engines by name. *)
let test_cmap_scan_and_registry () =
  let a = mk Spp_access.Spp in
  let kv = Spp_pmemkv.Cmap.create ~nbuckets:8 a in
  for i = 0 to 29 do
    Spp_pmemkv.Cmap.put kv
      ~key:(Printf.sprintf "k%02d" i)
      ~value:(Printf.sprintf "v%02d" i)
  done;
  Alcotest.(check (list (pair string string)))
    "cmap scan is ordered and bounded"
    [ ("k05", "v05"); ("k06", "v06"); ("k07", "v07") ]
    (Spp_pmemkv.Cmap.scan kv ~lo:"k05" ~hi:"k95" ~limit:3);
  check_bool "registry: cmap" true
    (match Spp_pmemkv.Engines.of_name "cmap" with
     | Some e -> Spp_pmemkv.Engine.spec_name e = "cmap"
     | None -> false);
  check_bool "registry: btree" true
    (match Spp_pmemkv.Engines.of_name "btree" with
     | Some e -> Spp_pmemkv.Engine.spec_name e = "btree"
     | None -> false);
  check_bool "registry: unknown" true
    (Spp_pmemkv.Engines.of_name "lsm" = None)

(* The read-path selector must be invisible to semantics: an identical
   workload answered under [Copying] and under [Lease] must produce
   bit-identical gets and scans, on both engines and on every access
   variant (each variant hoists its own check into lease acquisition). *)
let test_read_path_equivalence () =
  let replies path engine_name variant =
    Spp_pmemkv.Engine.with_read_path path (fun () ->
        let a = mk variant in
        let spec = Option.get (Spp_pmemkv.Engines.of_name engine_name) in
        let kv = Spp_pmemkv.Engine.create ~nbuckets:32 spec a in
        let st = Random.State.make [| 42 |] in
        let log = Buffer.create 4096 in
        for i = 1 to 600 do
          let key = Printf.sprintf "key-%03d" (Random.State.int st 120) in
          match Random.State.int st 4 with
          | 0 ->
            Spp_pmemkv.Engine.put kv ~key
              ~value:(Printf.sprintf "val-%d-%d" i (Random.State.int st 1000))
          | 1 ->
            Buffer.add_string log
              (match Spp_pmemkv.Engine.get kv key with
               | Some v -> "G:" ^ v ^ "\n"
               | None -> "N\n")
          | 2 ->
            Buffer.add_string log
              (if Spp_pmemkv.Engine.remove kv key then "R\n" else "r\n")
          | _ ->
            List.iter
              (fun (k, v) -> Buffer.add_string log (k ^ "=" ^ v ^ ";"))
              (Spp_pmemkv.Engine.scan kv ~lo:key ~hi:"~" ~limit:5)
        done;
        Buffer.contents log)
  in
  List.iter
    (fun engine ->
      List.iter
        (fun v ->
          Alcotest.(check string)
            (engine ^ "/" ^ Spp_access.variant_name v ^ ": copying = lease")
            (replies Spp_pmemkv.Engine.Copying engine v)
            (replies Spp_pmemkv.Engine.Lease engine v))
        Spp_access.all_variants)
    [ "cmap"; "btree" ]

let () =
  Alcotest.run "spp_pmemkv"
    [
      ( "cmap",
        [
          Alcotest.test_case "put/get/remove on all variants" `Quick
            test_put_get_all_variants;
          Alcotest.test_case "overwrite same/diff size" `Quick
            test_overwrite_same_and_different_size;
          Alcotest.test_case "oracle random ops" `Quick test_oracle_random_ops;
          Alcotest.test_case "crash durability" `Quick test_crash_durability;
          Alcotest.test_case "attach after remove-heavy churn" `Quick
            test_attach_after_remove_churn;
          Alcotest.test_case "1 KiB values" `Quick test_large_values;
        ] );
      ( "bmap",
        [
          Alcotest.test_case "oracle random ops + full scan" `Quick
            test_bmap_oracle_random_ops;
          Alcotest.test_case "scan bounds, order, limit" `Quick
            test_bmap_scan_semantics;
          Alcotest.test_case "mid-batch scan visibility" `Quick
            test_bmap_batch_scan_visibility;
          Alcotest.test_case "attach after batched churn" `Quick
            test_bmap_attach_after_churn;
        ] );
      ( "engines",
        [
          Alcotest.test_case "cmap scan + registry" `Quick
            test_cmap_scan_and_registry;
          Alcotest.test_case "read paths agree on both engines" `Quick
            test_read_path_equivalence;
        ] );
      ( "db_bench",
        [ Alcotest.test_case "all workloads run" `Quick test_db_bench_runs ] );
    ]
