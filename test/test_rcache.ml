(* Tests for the volatile DRAM read cache: unit behaviour of the
   set-associative store, the seqlock value-relation invariant under
   concurrent readers and writers, and the cache-coherence contract of
   the cached Cmap (fills only from committed state, write-through
   invalidation, in-order replay after run_batch, cold on reattach). *)

module Rcache = Spp_pmemkv.Rcache
module Cmap = Spp_pmemkv.Cmap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt = Alcotest.(check (option string))

(* --- Unit behaviour --------------------------------------------------- *)

let test_probe_insert_invalidate () =
  let c = Rcache.create ~cap:64 in
  check_opt "miss on empty" None (Rcache.probe c "a");
  Rcache.insert c "a" "1";
  check_opt "hit after insert" (Some "1") (Rcache.probe c "a");
  Rcache.insert c "a" "2";
  check_opt "overwrite wins" (Some "2") (Rcache.probe c "a");
  Rcache.invalidate c "a";
  check_opt "miss after invalidate" None (Rcache.probe c "a");
  Rcache.invalidate c "a" (* no-op on absent key *);
  let s = Rcache.stats c in
  check_int "hits" 2 s.Rcache.rc_hits;
  check_int "misses" 2 s.Rcache.rc_misses;
  check_int "fills" 2 s.Rcache.rc_fills;
  check_int "invalidations" 1 s.Rcache.rc_invalidations;
  Rcache.reset_stats c;
  check_int "reset clears hits" 0 (Rcache.stats c).Rcache.rc_hits;
  check_opt "reset keeps contents-less state" None (Rcache.probe c "a")

let test_capacity_and_rounding () =
  (* cap rounds up to a power-of-two set count of 4-way sets. *)
  let c = Rcache.create ~cap:10 in
  let cap = Rcache.capacity c in
  check_bool "cap >= requested" true (cap >= 10);
  check_int "4-way sets" 0 (cap mod 4);
  let sets = cap / 4 in
  check_int "power-of-two sets" 0 (sets land (sets - 1));
  (try
     ignore (Rcache.create ~cap:0);
     Alcotest.fail "cap 0 accepted"
   with Invalid_argument _ -> ())

let test_eviction_bounded () =
  let c = Rcache.create ~cap:16 in
  let key i = Printf.sprintf "key-%04d" i in
  for i = 0 to 199 do
    Rcache.insert c (key i) (string_of_int i)
  done;
  check_bool "live bounded by capacity" true
    (Rcache.live c <= Rcache.capacity c);
  check_bool "live nonzero" true (Rcache.live c > 0);
  (* Whatever survives eviction must still map to its own value. *)
  for i = 0 to 199 do
    match Rcache.probe c (key i) with
    | None -> ()
    | Some v -> check_int ("value of " ^ key i) i (int_of_string v)
  done;
  Rcache.clear c;
  check_int "clear empties" 0 (Rcache.live c);
  check_opt "clear drops entries" None (Rcache.probe c (key 199))

let test_stats_merge () =
  let open Rcache in
  let a = { rc_hits = 1; rc_misses = 2; rc_invalidations = 3; rc_fills = 4 }
  and b = { rc_hits = 10; rc_misses = 20; rc_invalidations = 30; rc_fills = 40 } in
  let m = merge_stats [ a; b; zero_stats ] in
  check_int "hits" 11 m.rc_hits;
  check_int "misses" 22 m.rc_misses;
  check_int "invalidations" 33 m.rc_invalidations;
  check_int "fills" 44 m.rc_fills;
  Alcotest.(check (float 1e-9)) "hit rate" (11. /. 33.) (hit_rate m);
  Alcotest.(check (float 1e-9)) "hit rate empty" 0. (hit_rate zero_stats)

(* --- Seqlock value relation under concurrency ------------------------- *)

(* One writer domain churns inserts/invalidations; reader domains probe
   concurrently. Every insert for key k stores one of two fixed values
   derived from k (with different lengths, so a torn read could not
   accidentally look well-formed). The invariant: a probe returns None
   or exactly one of k's two values — never a value belonging to a
   different key, never a torn mix. *)
let test_seqlock_readers_never_torn () =
  let c = Rcache.create ~cap:64 in
  let nkeys = 128 in
  let key i = Printf.sprintf "sl-%03d" i in
  let v1 k = k ^ "=short"
  and v2 k = k ^ "=a-much-longer-second-generation-value" in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let reader seed () =
    let st = Random.State.make [| seed; 0x5EC1 |] in
    while not (Atomic.get stop) do
      let k = key (Random.State.int st nkeys) in
      match Rcache.probe c k with
      | None -> ()
      | Some v ->
        if not (String.equal v (v1 k) || String.equal v (v2 k)) then
          Atomic.incr bad
    done
  in
  let readers = Array.init 3 (fun i -> Domain.spawn (reader (i + 1))) in
  let st = Random.State.make [| 0xF1E1D |] in
  for _ = 1 to 60_000 do
    let k = key (Random.State.int st nkeys) in
    match Random.State.int st 4 with
    | 0 -> Rcache.invalidate c k
    | 1 -> Rcache.insert c k (v2 k)
    | _ -> Rcache.insert c k (v1 k)
  done;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  check_int "no torn or foreign values observed" 0 (Atomic.get bad);
  check_bool "readers did probe" true
    ((Rcache.stats c).Rcache.rc_hits > 0)

(* --- Cached Cmap coherence -------------------------------------------- *)

let mk_cached ?(cap = 64) () =
  let a = Spp_access.create ~pool_size:(1 lsl 21) ~name:"rcache-kv"
      Spp_access.Spp in
  let kv = Cmap.create ~nbuckets:32 a in
  Cmap.set_cache kv (Some (Rcache.create ~cap));
  (a, kv)

let cache_of kv =
  match Cmap.cache kv with Some c -> c | None -> Alcotest.fail "no cache"

let test_cmap_get_fills_put_invalidates () =
  let _, kv = mk_cached () in
  Cmap.put kv ~key:"k" ~value:"v1";
  check_opt "put does not fill" None (Cmap.cache_probe kv "k");
  check_opt "get reads PM" (Some "v1") (Cmap.get kv "k");
  check_opt "get filled cache" (Some "v1") (Cmap.cache_probe kv "k");
  check_opt "cached get" (Some "v1") (Cmap.get kv "k");
  Cmap.put kv ~key:"k" ~value:"v2";
  check_opt "put invalidated" None (Cmap.cache_probe kv "k");
  check_opt "fresh value after put" (Some "v2") (Cmap.get kv "k");
  check_bool "remove" true (Cmap.remove kv "k");
  check_opt "remove invalidated" None (Cmap.cache_probe kv "k");
  check_opt "removed for real" None (Cmap.get kv "k");
  let s = Rcache.stats (cache_of kv) in
  check_bool "saw hits" true (s.Rcache.rc_hits >= 2);
  check_bool "saw invalidations" true (s.Rcache.rc_invalidations >= 2)

let test_run_batch_replay_order () =
  let _, kv = mk_cached () in
  Cmap.put kv ~key:"a" ~value:"a0";
  Cmap.put kv ~key:"b" ~value:"b0";
  (* In one batch: read a (fill), then overwrite a (the later mutation
     must win over the earlier get's fill); put c then remove c (the
     remove must win); read b (plain fill). *)
  let replies =
    Cmap.run_batch kv
      [| Cmap.B_get "a";
         Cmap.B_put { key = "a"; value = "a1" };
         Cmap.B_put { key = "c"; value = "c1" };
         Cmap.B_remove "c";
         Cmap.B_get "b" |]
  in
  (match replies.(0) with
   | Cmap.R_get v -> check_opt "in-batch get sees pre-state" (Some "a0") v
   | _ -> Alcotest.fail "reply shape");
  check_opt "later put wins over earlier get fill" (Some "a1")
    (Cmap.cache_probe kv "a");
  check_opt "remove wins over earlier put fill" None
    (Cmap.cache_probe kv "c");
  check_opt "plain get fill" (Some "b0") (Cmap.cache_probe kv "b");
  check_opt "durable a" (Some "a1") (Cmap.get kv "a");
  check_opt "durable c" None (Cmap.get kv "c")

let test_attach_starts_cold () =
  let a, kv = mk_cached () in
  let pool = a.Spp_access.pool in
  let root = a.Spp_access.root a.Spp_access.oid_size in
  Spp_pmdk.Pool.store_oid pool ~off:root.Spp_pmdk.Oid.off (Cmap.buckets_oid kv);
  Spp_pmdk.Pool.persist pool ~off:root.Spp_pmdk.Oid.off
    ~len:a.Spp_access.oid_size;
  Cmap.put kv ~key:"warm" ~value:"w";
  check_opt "warm the cache" (Some "w") (Cmap.get kv "warm");
  check_opt "cache warm" (Some "w") (Cmap.cache_probe kv "warm");
  ignore (Spp_pmdk.Pool.crash_and_recover pool);
  let a' = Spp_access.attach (Spp_pmdk.Pool.space pool) pool in
  let buckets =
    Spp_pmdk.Pool.load_oid pool
      ~off:(Spp_pmdk.Pool.root_oid pool).Spp_pmdk.Oid.off
  in
  let kv' = Cmap.attach a' ~buckets in
  check_bool "reattached map has no cache" true (Cmap.cache kv' = None);
  check_opt "probe without cache is None" None (Cmap.cache_probe kv' "warm");
  check_opt "data survived" (Some "w") (Cmap.get kv' "warm")

let () =
  Alcotest.run "spp_rcache"
    [
      ( "rcache unit",
        [
          Alcotest.test_case "probe/insert/invalidate/stats" `Quick
            test_probe_insert_invalidate;
          Alcotest.test_case "capacity rounding" `Quick
            test_capacity_and_rounding;
          Alcotest.test_case "eviction bounded by capacity" `Quick
            test_eviction_bounded;
          Alcotest.test_case "stats merge" `Quick test_stats_merge;
        ] );
      ( "seqlock",
        [
          Alcotest.test_case "concurrent readers never see torn values"
            `Quick test_seqlock_readers_never_torn;
        ] );
      ( "cached cmap",
        [
          Alcotest.test_case "get fills, put/remove invalidate" `Quick
            test_cmap_get_fills_put_invalidates;
          Alcotest.test_case "run_batch replays cache effects in order"
            `Quick test_run_batch_replay_order;
          Alcotest.test_case "attach starts cold" `Quick
            test_attach_starts_cold;
        ] );
    ]
