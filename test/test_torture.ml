(* Tests for the crash-point torture harness and the graceful
   pool-corruption handling it leans on. *)

open Spp_sim
open Spp_pmdk
open Spp_torture

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Full crash-point enumeration: every durability event plus the clean
   run must recover and satisfy the workload oracle. *)
let full_enum w =
  let r = Torture.run w in
  check_int "crash points = events + clean run" (r.Torture.r_events + 1)
    r.Torture.r_crash_points;
  check_int "zero invariant failures" 0 r.Torture.r_invariant_failures;
  check_int "every crash point recovered" r.Torture.r_crash_points
    r.Torture.r_recovered

let test_kvstore_full () = full_enum (Workloads.kvstore ~ops:6 ())
let test_pmemlog_full () = full_enum (Workloads.pmemlog ~ops:6 ())
let test_counter_full () = full_enum (Workloads.counter ~ops:6 ())

(* Group commit under the same full enumeration: a crash at every
   durability event of a batched multi-put must recover onto a prefix of
   whole ops — the kvbatch oracle rejects torn ops, holes and reordering
   across ops, so zero invariant failures here is the crash-atomicity
   half of the serve pipeline's contract. *)
let test_kvbatch_full () = full_enum (Workloads.kvbatch ~ops:8 ())

let test_kvbatch_native_full () =
  full_enum (Workloads.kvbatch ~variant:Spp_access.Pmdk ~ops:6 ())

let test_native_variant () =
  full_enum (Workloads.counter ~variant:Spp_access.Pmdk ~ops:4 ())

(* Failover differential under the same full enumeration: at every
   durability event of the replicated batch program, the promoted
   replica must serve a whole-op prefix that never leads cold recovery
   of the primary, lags it by at most one commit on a lossless channel,
   and holds every acked op — the promotion-equivalence oracle. *)
let test_kvfailover_full () = full_enum (Workloads.kvfailover ~ops:8 ())

let test_kvfailover_native_full () =
  full_enum (Workloads.kvfailover ~variant:Spp_access.Pmdk ~ops:6 ())

(* Same enumeration over a lossy channel with a tiny retry budget: the
   replica may be declared dead mid-run, after which only the structural
   half of the oracle (valid prefix, never leading) is required. *)
let test_kvfailover_drop_full () =
  full_enum (Workloads.kvfailover_drop ~ops:8 ())

(* Failover with the B-tree engine behind the same seam: the
   promotion-equivalence oracle must hold unchanged — replication ships
   redo payloads and never looks inside the engine. *)
let test_kvfailover_btree_full () =
  full_enum
    (Workloads.kvfailover ~ops:8 ~engine:Spp_pmemkv.Engines.btree
       ~name:"kvfailover-btree" ())

(* Ordered-scan torture, full enumeration on both engines and both
   access-variant extremes: every durability event of the interleaved
   put/remove/scan batch program must recover onto a whole-op-prefix
   snapshot whose full-range scan is strictly ascending. *)
let test_kvscan_full () = full_enum (Workloads.kvscan ~ops:9 ())

let test_kvscan_native_full () =
  full_enum (Workloads.kvscan ~variant:Spp_access.Pmdk ~ops:8 ())

let test_kvscan_btree_full () = full_enum (Workloads.kvscan_btree ~ops:9 ())

let test_kvscan_btree_native_full () =
  full_enum (Workloads.kvscan_btree ~variant:Spp_access.Pmdk ~ops:8 ())

(* Mid-migration crash torture: the slot-migration protocol's
   copy -> claim flip -> delete must serve every key exactly once from
   the claim-designated owner at every crash point, on both engines. *)
let test_kvreshard_full () = full_enum (Workloads.kvreshard ~ops:8 ())

let test_kvreshard_btree_full () =
  full_enum (Workloads.kvreshard_btree ~ops:8 ())

let test_budget_sampling () =
  let r = Torture.run ~budget:10 (Workloads.counter ~ops:8 ()) in
  check_bool "within budget" true (r.Torture.r_crash_points <= 10);
  check_bool "sampled fewer than total" true
    (r.Torture.r_crash_points < r.Torture.r_events + 1);
  check_int "zero invariant failures" 0 r.Torture.r_invariant_failures

let test_torn_crashes () =
  List.iter
    (fun w ->
      let r =
        Torture.run ~budget:60 ~seed:3
          ~faults:{ Torture.torn = true; bitflips = 0 }
          w
      in
      check_int
        ("torn zero failures: " ^ r.Torture.r_workload)
        0 r.Torture.r_invariant_failures)
    [ Workloads.pmemlog ~ops:6 (); Workloads.counter ~ops:6 ();
      Workloads.kvfailover ~ops:6 () ]

let test_bitflips_accounted () =
  (* Media rot may corrupt live data (the harness's job is to report it),
     but every crash point must land in exactly one bucket and the typed
     rejection path must stay exception-free. *)
  let r =
    Torture.run ~budget:40 ~seed:5
      ~faults:{ Torture.torn = false; bitflips = 4 }
      (Workloads.counter ~ops:6 ())
  in
  check_int "every point accounted" r.Torture.r_crash_points
    (r.Torture.r_recovered + r.Torture.r_rejected
     + r.Torture.r_invariant_failures)

let test_seed_reproducible () =
  let faults = { Torture.torn = true; bitflips = 2 } in
  let run () =
    Torture.run ~budget:30 ~seed:11 ~faults (Workloads.counter ~ops:5 ())
  in
  check_bool "identical reports" true (run () = run ())

(* Engine differential: the line-indexed tracking engine must reproduce
   the list-based engine's torture results exactly — same event count,
   same crash points, same verdicts. [w_make] builds fresh devices per
   replay, so the engine is selected process-wide. *)

let engine_differential ?faults ?budget ?seed w =
  let run e =
    Memdev.with_default_engine e (fun () -> Torture.run ?budget ?seed ?faults w)
  in
  let a = run Memdev.Line_indexed in
  let b = run Memdev.List_based in
  check_bool ("identical reports: " ^ a.Torture.r_workload) true (a = b);
  a

let test_engine_differential_clean () =
  List.iter
    (fun w ->
      let r = engine_differential w in
      check_int "zero invariant failures" 0 r.Torture.r_invariant_failures)
    [ Workloads.kvstore ~ops:5 (); Workloads.pmemlog ~ops:5 ();
      Workloads.counter ~ops:5 (); Workloads.kvbatch ~ops:5 ();
      Workloads.kvscan ~ops:7 (); Workloads.kvscan_btree ~ops:7 () ]

let test_engine_differential_faults () =
  ignore
    (engine_differential ~budget:40 ~seed:7
       ~faults:{ Torture.torn = true; bitflips = 0 }
       (Workloads.counter ~ops:6 ()));
  ignore
    (engine_differential ~budget:30 ~seed:9
       ~faults:{ Torture.torn = true; bitflips = 2 }
       (Workloads.pmemlog ~ops:5 ()));
  ignore
    (engine_differential ~budget:40 ~seed:13
       ~faults:{ Torture.torn = true; bitflips = 0 }
       (Workloads.kvbatch ~ops:6 ()))

(* Graceful pool-corruption handling *)

let mk_image () =
  let space = Space.create () in
  let p =
    Pool.create space ~base:4096 ~size:(1 lsl 16) ~mode:Mode.Native
      ~name:"corruptible"
  in
  let root = Pool.root p ~size:16 in
  Pool.store_word p ~off:root.Oid.off 9;
  Pool.persist p ~off:root.Oid.off ~len:8;
  Pool.dev p

let reopen dev = Pool.open_dev (Space.create ()) ~base:4096 dev

let test_corrupt_magic_bad_header () =
  let dev = mk_image () in
  Memdev.corrupt_durable dev ~off:0 ~bit:3;
  match reopen dev with
  | Error (Pool.Bad_header _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Pool.pool_error_to_string e)
  | Ok _ -> Alcotest.fail "corrupted magic accepted"

let test_corrupt_uuid_bad_checksum () =
  let dev = mk_image () in
  Memdev.corrupt_durable dev ~off:0x008 ~bit:0;   (* uuid byte *)
  match reopen dev with
  | Error (Pool.Bad_checksum { stored; computed }) ->
    check_bool "mismatch reported" true (stored <> computed)
  | Error e -> Alcotest.failf "wrong error: %s" (Pool.pool_error_to_string e)
  | Ok _ -> Alcotest.fail "corrupted uuid accepted"

let test_undersized_device_truncated () =
  let dev = Memdev.create_persistent ~name:"tiny" 4096 in
  match Pool.open_dev (Space.create ()) ~base:4096 dev with
  | Error (Pool.Truncated { actual; _ }) -> check_int "actual size" 4096 actual
  | Error e -> Alcotest.failf "wrong error: %s" (Pool.pool_error_to_string e)
  | Ok _ -> Alcotest.fail "undersized device accepted"

let test_of_dev_raises_on_corruption () =
  let dev = mk_image () in
  Memdev.corrupt_durable dev ~off:0 ~bit:0;
  match Pool.of_dev (Space.create ()) ~base:4096 dev with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_header_fuzz_no_exception_escape () =
  (* A bit flip anywhere in the header must yield Ok or a typed Error —
     never an escaping exception. *)
  for off = 0 to 0x7F do
    let dev = mk_image () in
    Memdev.corrupt_durable dev ~off ~bit:(off mod 8);
    match reopen dev with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "flip at 0x%x escaped with %s" off (Printexc.to_string e)
  done

let test_bad_block_faults_pool_load () =
  let space = Space.create () in
  let p =
    Pool.create space ~base:4096 ~size:(1 lsl 16) ~mode:Mode.Native
      ~name:"badblock"
  in
  let oid = Pool.alloc p ~size:64 in
  Pool.store_word p ~off:oid.Oid.off 0x5151;
  check_int "healthy load" 0x5151 (Pool.load_word p ~off:oid.Oid.off);
  Memdev.add_bad_block (Pool.dev p) ~off:oid.Oid.off ~len:64;
  (match Pool.load_word p ~off:oid.Oid.off with
   | _ -> Alcotest.fail "expected SIGBUS from bad block"
   | exception Fault.Fault (Fault.Bus_error, _) -> ());
  Memdev.clear_bad_blocks (Pool.dev p);
  check_int "readable again" 0x5151 (Pool.load_word p ~off:oid.Oid.off)

let () =
  Alcotest.run "spp_torture"
    [
      ( "enumeration",
        [
          Alcotest.test_case "kvstore survives every crash point" `Quick
            test_kvstore_full;
          Alcotest.test_case "pmemlog survives every crash point" `Quick
            test_pmemlog_full;
          Alcotest.test_case "counter survives every crash point" `Quick
            test_counter_full;
          Alcotest.test_case "group-committed batch lands on whole-op prefix"
            `Quick test_kvbatch_full;
          Alcotest.test_case "group commit, native variant" `Quick
            test_kvbatch_native_full;
          Alcotest.test_case "native variant too" `Quick test_native_variant;
          Alcotest.test_case "promoted replica equals primary recovery" `Quick
            test_kvfailover_full;
          Alcotest.test_case "failover differential, native variant" `Quick
            test_kvfailover_native_full;
          Alcotest.test_case "failover under channel loss" `Quick
            test_kvfailover_drop_full;
          Alcotest.test_case "failover promotion, btree engine" `Quick
            test_kvfailover_btree_full;
          Alcotest.test_case "scans land on ordered whole-op prefixes (cmap)"
            `Quick test_kvscan_full;
          Alcotest.test_case "kvscan, native variant" `Quick
            test_kvscan_native_full;
          Alcotest.test_case "scans land on ordered whole-op prefixes (btree)"
            `Quick test_kvscan_btree_full;
          Alcotest.test_case "kvscan-btree, native variant" `Quick
            test_kvscan_btree_native_full;
          Alcotest.test_case "mid-migration crashes serve keys exactly once"
            `Quick test_kvreshard_full;
          Alcotest.test_case "kvreshard, btree engine" `Quick
            test_kvreshard_btree_full;
          Alcotest.test_case "budget sampling" `Quick test_budget_sampling;
        ] );
      ( "engine differential",
        [
          Alcotest.test_case "clean suites agree across engines" `Quick
            test_engine_differential_clean;
          Alcotest.test_case "fault suites agree across engines" `Quick
            test_engine_differential_faults;
        ] );
      ( "media faults",
        [
          Alcotest.test_case "torn crashes survive" `Quick test_torn_crashes;
          Alcotest.test_case "bit flips fully accounted" `Quick
            test_bitflips_accounted;
          Alcotest.test_case "seeded runs reproduce" `Quick
            test_seed_reproducible;
        ] );
      ( "graceful degradation",
        [
          Alcotest.test_case "corrupt magic -> Bad_header" `Quick
            test_corrupt_magic_bad_header;
          Alcotest.test_case "corrupt uuid -> Bad_checksum" `Quick
            test_corrupt_uuid_bad_checksum;
          Alcotest.test_case "undersized device -> Truncated" `Quick
            test_undersized_device_truncated;
          Alcotest.test_case "of_dev raises Invalid_argument" `Quick
            test_of_dev_raises_on_corruption;
          Alcotest.test_case "header fuzz: no exception escapes" `Quick
            test_header_fuzz_no_exception_escape;
          Alcotest.test_case "bad block faults a pool load" `Quick
            test_bad_block_faults_pool_load;
        ] );
    ]
