(* Tests for the domain-parallel sharded serving path and the benchlib
   generators feeding it: Zipfian determinism/range/skew, router
   consistency, routed-operation correctness against an oracle, and the
   parallel-vs-sequential differential on a fixed seed. *)

open Spp_benchlib
open Spp_shard

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Keygen ----------------------------------------------------------- *)

let draws gen n = Array.init n (fun _ -> Keygen.next gen)

let test_zipfian_deterministic () =
  let mk () = Keygen.zipfian ~theta:0.99 ~seed:7 ~universe:1000 () in
  check_bool "same seed, same stream" true
    (draws (mk ()) 2000 = draws (mk ()) 2000);
  let other = Keygen.zipfian ~theta:0.99 ~seed:8 ~universe:1000 () in
  check_bool "different seed, different stream" false
    (draws (mk ()) 2000 = draws other 2000)

let test_zipfian_range () =
  List.iter
    (fun (theta, universe) ->
      let gen = Keygen.zipfian ~theta ~seed:3 ~universe () in
      Array.iter
        (fun v ->
          check_bool
            (Printf.sprintf "0 <= %d < %d (theta %.2f)" v universe theta)
            true
            (v >= 0 && v < universe))
        (draws gen 5000))
    [ (0.5, 10); (0.99, 1); (0.99, 1000); (0.8, 65536) ]

(* theta = 0.99 over 10k keys: the hottest 1% must carry at least 35% of
   the draws (the analytic head mass is ~0.5; the bar leaves sampling
   slack). Uniform over the same universe sits at ~1%, so the test also
   separates the two generators. *)
let required_head_mass = 0.35

let test_zipfian_skew () =
  let universe = 10_000 in
  let zipf = Keygen.zipfian ~theta:0.99 ~seed:11 ~universe () in
  let mass = Keygen.head_mass zipf ~samples:50_000 ~hot_fraction:0.01 in
  check_bool
    (Printf.sprintf "hottest 1%% carries %.3f >= %.2f" mass required_head_mass)
    true
    (mass >= required_head_mass);
  let uni = Keygen.uniform ~seed:11 ~universe in
  let umass = Keygen.head_mass uni ~samples:50_000 ~hot_fraction:0.01 in
  check_bool (Printf.sprintf "uniform head mass %.4f < 0.05" umass) true
    (umass < 0.05)

let test_uniform_deterministic_range () =
  let mk () = Keygen.uniform ~seed:5 ~universe:333 in
  let a = draws (mk ()) 3000 in
  check_bool "deterministic" true (a = draws (mk ()) 3000);
  Array.iter (fun v -> check_bool "in range" true (v >= 0 && v < 333)) a

(* Rotating hotspot: deterministic under the seed like the others, stays
   in range, and the hot region actually moves — the modal key of one
   epoch's draws must differ from the next epoch's. *)
let test_rotating_deterministic_moves () =
  let universe = 1000 and period = 500 in
  let mk seed = Keygen.rotating ~theta:0.99 ~seed ~universe ~period () in
  let a = draws (mk 7) 3000 in
  check_bool "same seed, same stream" true (a = draws (mk 7) 3000);
  check_bool "different seed, different stream" false (a = draws (mk 8) 3000);
  Array.iter
    (fun v -> check_bool "in range" true (v >= 0 && v < universe))
    a;
  let modal lo hi =
    let counts = Hashtbl.create 64 in
    for i = lo to hi - 1 do
      Hashtbl.replace counts a.(i)
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.(i)))
    done;
    Hashtbl.fold
      (fun k n (bk, bn) -> if n > bn then (k, n) else (bk, bn))
      counts (-1, 0)
  in
  let (m0, n0) = modal 0 period and (m1, n1) = modal period (2 * period) in
  check_bool "epochs are skewed" true (n0 > period / 10 && n1 > period / 10);
  check_bool
    (Printf.sprintf "hot key moved across epochs (%d vs %d)" m0 m1)
    true (m0 <> m1)

(* --- Router ----------------------------------------------------------- *)

let test_router_consistency () =
  let nshards = 4 in
  let seen = Array.make nshards 0 in
  for i = 0 to 999 do
    let key = Spp_pmemkv.Db_bench.key_of_int i in
    let s = Shard.shard_of_key ~nshards key in
    check_bool "in [0, nshards)" true (s >= 0 && s < nshards);
    (* stable across calls *)
    check_int "stable" s (Shard.shard_of_key ~nshards key);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      check_bool (Printf.sprintf "shard %d serves some keys" i) true (n > 0))
    seen;
  (* routing through a store instance agrees with the pure function *)
  let t = Shard.create ~nbuckets:16 ~pool_size:(1 lsl 20) ~nshards
      Spp_access.Pmdk in
  for i = 0 to 99 do
    let key = Spp_pmemkv.Db_bench.key_of_int i in
    check_int "instance route = pure route"
      (Shard.shard_of_key ~nshards key)
      (Shard.route t key)
  done

let test_routed_ops_oracle () =
  let t = Shard.create ~nbuckets:32 ~pool_size:(1 lsl 21) ~nshards:3
      Spp_access.Spp in
  let model = Hashtbl.create 64 in
  let st = Random.State.make [| 23 |] in
  for _ = 1 to 1500 do
    let key = Printf.sprintf "key-%d" (Random.State.int st 150) in
    match Random.State.int st 3 with
    | 0 ->
      let value = Printf.sprintf "val-%d" (Random.State.int st 10_000) in
      Shard.put t ~key ~value;
      Hashtbl.replace model key value
    | 1 ->
      check_bool "remove agrees" (Hashtbl.mem model key) (Shard.remove t key);
      Hashtbl.remove model key
    | _ ->
      Alcotest.(check (option string))
        "get agrees" (Hashtbl.find_opt model key) (Shard.get t key)
  done;
  check_int "count" (Hashtbl.length model) (Shard.count_all t)

(* --- Slot map ---------------------------------------------------------- *)

(* The versioned slot table: key->slot hashing is pure and stable, the
   fresh table reproduces the static modulo router, reassignment bumps
   the version and is visible through every accessor, and the store scan
   ownership-filters so a reassigned slot is served exactly once. *)
let test_slot_map () =
  let nslots = Shard.default_nslots in
  for i = 0 to 499 do
    let key = Spp_pmemkv.Db_bench.key_of_int i in
    let s = Shard.slot_of_key ~nslots key in
    check_bool "slot in range" true (s >= 0 && s < nslots);
    check_int "slot hashing stable" s (Shard.slot_of_key ~nslots key)
  done;
  let nshards = 4 in
  let t = Shard.create ~nbuckets:16 ~pool_size:(1 lsl 21) ~nshards
      Spp_access.Spp in
  check_int "default slot count" nslots (Shard.nslots t);
  let v0 = Shard.table_version t in
  for i = 0 to 199 do
    let key = Spp_pmemkv.Db_bench.key_of_int i in
    check_int "fresh table = static modulo router"
      (Shard.shard_of_key ~nshards key) (Shard.route t key);
    check_int "route = owner of slot"
      (Shard.owner t (Shard.slot_of t key)) (Shard.route t key)
  done;
  let counts = Array.init nshards (fun i -> Shard.owned_slots t i) in
  check_int "slots partitioned" nslots (Array.fold_left ( + ) 0 counts);
  (* pick a real key, move its slot, and watch everything update *)
  let key = Spp_pmemkv.Db_bench.key_of_int 0 in
  Shard.put t ~key ~value:"v0";
  let slot = Shard.slot_of t key in
  let src = Shard.route t key in
  let dst = (src + 1) mod nshards in
  Shard.set_slot_owner t ~slot ~shard:dst;
  check_bool "version bumped" true (Shard.table_version t > v0);
  check_int "route follows the table" dst (Shard.route t key);
  check_int "owner agrees" dst (Shard.owner t slot);
  check_int "owned_slots src shrank" (counts.(src) - 1)
    (Shard.owned_slots t src);
  check_int "owned_slots dst grew" (counts.(dst) + 1)
    (Shard.owned_slots t dst);
  check_bool "slots_of_shard dst lists the slot" true
    (List.mem slot (Shard.slots_of_shard t dst));
  check_bool "slots_of_shard src dropped it" false
    (List.mem slot (Shard.slots_of_shard t src));
  (* the assignment snapshot is a copy — mutating it must not route *)
  let a = Shard.assignment t in
  a.(slot) <- src;
  check_int "assignment returns a copy" dst (Shard.route t key);
  (* ownership filter: the key's value lives only on src's engine (we
     reassigned without copying), so a store scan must not serve it —
     the slot's owner is dst and dst has no copy *)
  let window = Shard.scan t ~lo:key ~hi:key ~limit:10 in
  check_int "reassigned slot not served from old owner" 0
    (List.length window);
  Shard.set_slot_owner t ~slot ~shard:src;
  Alcotest.(check (list (pair string string)))
    "restored owner serves it again" [ (key, "v0") ]
    (Shard.scan t ~lo:key ~hi:key ~limit:10);
  check_bool "invalid slot rejected" true
    (try ignore (Shard.set_slot_owner t ~slot:nslots ~shard:0); false
     with Invalid_argument _ -> true);
  check_bool "invalid shard rejected" true
    (try ignore (Shard.set_slot_owner t ~slot:0 ~shard:nshards); false
     with Invalid_argument _ -> true)

(* --- Parallel-vs-sequential differential ------------------------------ *)

let build_store ?engine nshards =
  let t = Shard.create ~nbuckets:64 ~pool_size:(1 lsl 21) ?engine ~nshards
      Spp_access.Spp in
  Shard_bench.preload t ~keys:300;
  Shard.reset_stats t;
  t

(* The parallel = sequential differential over both engines, with range
   scans mixed into the streams: per-shard signatures (including every
   individual scan-reply digest), merged Space stats and merged Memdev
   counters must all be bit-identical. *)
let test_parallel_sequential_differential () =
  List.iter
    (fun (engine, dist, workload) ->
      let nshards = 4 in
      let ops =
        Shard_bench.gen_ops ~scan_pct:10 ~seed:99 ~ops:2_000 ~universe:300
          ~dist workload
      in
      let streams = Shard_bench.partition ~nshards ops in
      check_int "partition preserves every op" 2_000
        (Array.fold_left (fun a s -> a + Array.length s) 0 streams);
      let t_seq = build_store ~engine nshards
      and t_par = build_store ~engine nshards in
      let rs = Shard_bench.run t_seq ~mode:Shard_bench.Sequential streams in
      let rp = Shard_bench.run t_par ~mode:Shard_bench.Parallel streams in
      check_bool
        (Spp_pmemkv.Engine.spec_name engine
         ^ ": per-shard results bit-identical")
        true
        (Shard_bench.results_agree rs rp);
      check_bool "some scans actually ran" true
        (Array.exists (fun sr -> sr.Shard_bench.sr_scans > 0) rs.Shard_bench.r_shards);
      check_bool "merged Space stats identical" true
        (Shard.merged_stats t_seq = Shard.merged_stats t_par);
      check_bool "merged Memdev counters identical" true
        (Shard.merged_counters t_seq = Shard.merged_counters t_par);
      check_int "same surviving entries" (Shard.count_all t_seq)
        (Shard.count_all t_par);
      check_int "all ops executed" 2_000 rs.Shard_bench.r_total_ops)
    [ (Spp_pmemkv.Engines.cmap, Shard_bench.Uniform,
       Spp_pmemkv.Db_bench.Update_heavy);
      (Spp_pmemkv.Engines.cmap, Shard_bench.Zipfian 0.99,
       Spp_pmemkv.Db_bench.Read_heavy);
      (Spp_pmemkv.Engines.btree, Shard_bench.Uniform,
       Spp_pmemkv.Db_bench.Update_heavy);
      (Spp_pmemkv.Engines.btree, Shard_bench.Zipfian 0.99,
       Spp_pmemkv.Db_bench.Read_heavy) ]

(* Scatter-gather scans through the store facade: per-shard slices must
   merge into one globally ordered, limit-clipped window, identically on
   the hash engine (sorting bucket walks) and the B-tree (native
   in-order traversal). *)
let test_store_scan_scatter_gather () =
  List.iter
    (fun engine ->
      let nshards = 3 in
      let t = Shard.create ~nbuckets:32 ~pool_size:(1 lsl 21) ~engine
          ~nshards Spp_access.Spp in
      for i = 0 to 199 do
        Shard.put t ~key:(Spp_pmemkv.Db_bench.key_of_int i)
          ~value:(Printf.sprintf "v%03d" i)
      done;
      let lo = Spp_pmemkv.Db_bench.key_of_int 20
      and hi = Spp_pmemkv.Db_bench.key_of_int 119 in
      let got = Shard.scan t ~lo ~hi ~limit:1000 in
      let expect =
        List.init 100 (fun i ->
          (Spp_pmemkv.Db_bench.key_of_int (20 + i),
           Printf.sprintf "v%03d" (20 + i)))
      in
      Alcotest.(check (list (pair string string)))
        (Spp_pmemkv.Engine.spec_name engine ^ ": merged window ordered")
        expect got;
      Alcotest.(check (list (pair string string)))
        (Spp_pmemkv.Engine.spec_name engine ^ ": limit clips globally")
        (List.filteri (fun i _ -> i < 7) expect)
        (Shard.scan t ~lo ~hi ~limit:7);
      check_int "empty window" 0
        (List.length
           (Shard.scan t ~lo:"zzz" ~hi:"zzzz" ~limit:10)))
    [ Spp_pmemkv.Engines.cmap; Spp_pmemkv.Engines.btree ]

(* A second run over the same parallel store must also be deterministic:
   shard state after run 1 is a pure function of the stream. *)
let test_parallel_rerun_deterministic () =
  let nshards = 2 in
  let ops =
    Shard_bench.gen_ops ~seed:5 ~ops:1_000 ~universe:300
      ~dist:Shard_bench.Uniform Spp_pmemkv.Db_bench.Update_heavy
  in
  let streams = Shard_bench.partition ~nshards ops in
  let t1 = build_store nshards and t2 = build_store nshards in
  let a1 = Shard_bench.run t1 ~mode:Shard_bench.Parallel streams in
  let a2 = Shard_bench.run t2 ~mode:Shard_bench.Parallel streams in
  check_bool "independent parallel runs agree" true
    (Shard_bench.results_agree a1 a2);
  let b1 = Shard_bench.run t1 ~mode:Shard_bench.Parallel streams in
  let b2 = Shard_bench.run t2 ~mode:Shard_bench.Parallel streams in
  check_bool "second round agrees too" true (Shard_bench.results_agree b1 b2)

let () =
  Alcotest.run "spp_shard"
    [
      ( "keygen",
        [
          Alcotest.test_case "zipfian deterministic per seed" `Quick
            test_zipfian_deterministic;
          Alcotest.test_case "zipfian stays in range" `Quick test_zipfian_range;
          Alcotest.test_case "zipfian skew (theta 0.99)" `Quick
            test_zipfian_skew;
          Alcotest.test_case "uniform deterministic + range" `Quick
            test_uniform_deterministic_range;
          Alcotest.test_case "rotating hotspot deterministic + moves" `Quick
            test_rotating_deterministic_moves;
        ] );
      ( "router",
        [
          Alcotest.test_case "consistent stable routing" `Quick
            test_router_consistency;
          Alcotest.test_case "routed ops vs oracle" `Quick
            test_routed_ops_oracle;
          Alcotest.test_case "slot map versioned reassignment" `Quick
            test_slot_map;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "store scan scatter-gather (both engines)"
            `Quick test_store_scan_scatter_gather;
          Alcotest.test_case "parallel = sequential (fixed seed)" `Quick
            test_parallel_sequential_differential;
          Alcotest.test_case "parallel reruns deterministic" `Quick
            test_parallel_rerun_deterministic;
        ] );
    ]
