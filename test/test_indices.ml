(* Tests for the persistent indices: oracle equivalence on every variant,
   red-black invariants, crash recovery mid-operation, and the reproduced
   btree overflow bug. *)

open Spp_pmdk
open Spp_indices

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(pool_size = 1 lsl 24) variant =
  Spp_access.create ~pool_size ~name:(Spp_access.variant_name variant) variant

(* Oracle comparison: drive the index and a Hashtbl with the same random
   operation stream and compare at every get. *)

let oracle_run ~seed ~ops ix =
  let st = Random.State.make [| seed |] in
  let model = Hashtbl.create 256 in
  for _ = 1 to ops do
    let key = Random.State.int st 5000 in
    match Random.State.int st 10 with
    | 0 | 1 | 2 | 3 ->
      let value = Random.State.int st 1_000_000 in
      ix.Indices.insert ~key ~value;
      Hashtbl.replace model key value
    | 4 | 5 ->
      let expected = Hashtbl.find_opt model key in
      let got = ix.Indices.remove key in
      if expected <> got then
        Alcotest.failf "%s: remove %d: model %s, index %s" ix.Indices.ix_name
          key
          (match expected with None -> "None" | Some v -> string_of_int v)
          (match got with None -> "None" | Some v -> string_of_int v);
      Hashtbl.remove model key
    | _ ->
      let expected = Hashtbl.find_opt model key in
      let got = ix.Indices.get key in
      if expected <> got then
        Alcotest.failf "%s: get %d: model %s, index %s" ix.Indices.ix_name key
          (match expected with None -> "None" | Some v -> string_of_int v)
          (match got with None -> "None" | Some v -> string_of_int v)
  done;
  (* final sweep *)
  Hashtbl.iter
    (fun k v ->
      match ix.Indices.get k with
      | Some v' when v' = v -> ()
      | other ->
        Alcotest.failf "%s: final sweep key %d: expected %d got %s"
          ix.Indices.ix_name k v
          (match other with None -> "None" | Some v -> string_of_int v))
    model

let test_oracle index_name variant () =
  let pool_size = if index_name = "rtree" then 1 lsl 27 else 1 lsl 24 in
  let a = mk ~pool_size variant in
  let ix = Indices.create index_name a in
  let ops = if index_name = "rtree" then 600 else 2500 in
  oracle_run ~seed:42 ~ops ix

(* Red-black invariants under random workloads. *)

let prop_rbtree_invariants =
  QCheck.Test.make ~name:"rbtree invariants hold under random ops" ~count:40
    QCheck.(pair small_int (list_of_size (Gen.int_range 10 120)
                              (pair (int_bound 500) bool)))
    (fun (_, ops) ->
      let a = mk Spp_access.Pmdk in
      let t = Rbtree.create a in
      List.iter
        (fun (key, ins) ->
          if ins then Rbtree.insert t ~key ~value:key
          else ignore (Rbtree.remove t key))
        ops;
      Rbtree.check_invariants t = [])

(* Index state survives crash-and-recovery between operations, and an
   operation interrupted by a crash rolls back atomically. *)

let test_index_crash_atomicity index_name () =
  let a = mk Spp_access.Pmdk in
  let ix = Indices.create index_name a in
  for k = 1 to 50 do
    ix.Indices.insert ~key:k ~value:(k * 10)
  done;
  Spp_sim.Memdev.set_tracking (Pool.dev a.Spp_access.pool) true;
  (* persist current state via a no-op tx boundary: all tx ops flush *)
  ix.Indices.insert ~key:1000 ~value:1;
  let (_ : Pool.recovery_report) = Pool.crash_and_recover a.Spp_access.pool in
  for k = 1 to 50 do
    check_int
      (Printf.sprintf "%s key %d survives crash" index_name k)
      (k * 10)
      (match ix.Indices.get k with Some v -> v | None -> -1)
  done

(* The btree bug (pmdk#5333 analogue): removing from a full node performs
   an out-of-bounds memmove. SPP detects it; native PMDK silently reads
   past the object. *)

let fill_full_leaf_then_remove ix =
  (* 7 keys fill the root leaf exactly (order 8 => 7 items) *)
  for k = 1 to 7 do
    ix.Indices.insert ~key:k ~value:k
  done;
  ignore (ix.Indices.remove 1)

let test_btree_bug_detected_by_spp () =
  let a = mk Spp_access.Spp in
  let t = Btree_map.create ~buggy:true a in
  let ix = Indices.of_btree t in
  match Spp_access.run_guarded (fun () -> fill_full_leaf_then_remove ix) with
  | Spp_access.Prevented _ -> ()
  | Ok_completed -> Alcotest.fail "SPP must detect the btree memmove overflow"

let test_btree_bug_silent_on_native () =
  let a = mk Spp_access.Pmdk in
  let t = Btree_map.create ~buggy:true a in
  let ix = Indices.of_btree t in
  match Spp_access.run_guarded (fun () -> fill_full_leaf_then_remove ix) with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "native PMDK should not detect: %s" r

let test_btree_fixed_variant_clean () =
  (* the corrected code must run overflow-free under SPP *)
  let a = mk Spp_access.Spp in
  let t = Btree_map.create ~buggy:false a in
  let ix = Indices.of_btree t in
  match Spp_access.run_guarded (fun () ->
    fill_full_leaf_then_remove ix;
    for k = 2 to 7 do
      check_int "still present" k
        (match ix.Indices.get k with Some v -> v | None -> -1)
    done)
  with
  | Spp_access.Ok_completed -> ()
  | Prevented r -> Alcotest.failf "fixed btree must be clean under SPP: %s" r

(* Ordered range + reattach on the btree: a remove-heavy churn forces
   the full rebalance repertoire (borrows, merges, root shrink), after
   which [range] must agree with the sorted model on windows and on the
   full sweep, and an [attach] through the parked root-slot oid must
   read the same tree back after a reopen. *)

let test_btree_range_after_rebalance () =
  let a = mk Spp_access.Spp in
  let t = Btree_map.create a in
  let pool = a.Spp_access.pool in
  let root = a.Spp_access.root a.Spp_access.oid_size in
  Pool.store_oid pool ~off:root.Oid.off (Btree_map.map_oid t);
  Pool.persist pool ~off:root.Oid.off ~len:a.Spp_access.oid_size;
  let model = Hashtbl.create 256 in
  let st = Random.State.make [| 5333 |] in
  (* grow a few levels deep, then delete most of it *)
  for _ = 1 to 800 do
    let key = Random.State.int st 400 in
    Btree_map.insert t ~key ~value:(key * 7);
    Hashtbl.replace model key (key * 7)
  done;
  for _ = 1 to 1400 do
    let key = Random.State.int st 400 in
    let expected = Hashtbl.find_opt model key in
    let got = Btree_map.remove t key in
    if expected <> got then Alcotest.fail "remove disagrees with model";
    Hashtbl.remove model key
  done;
  let sorted lo hi =
    Hashtbl.fold (fun k v acc -> if lo <= k && k <= hi then (k, v) :: acc
                   else acc) model []
    |> List.sort compare
  in
  let pairs = Alcotest.(list (pair int int)) in
  Alcotest.check pairs "full range ordered" (sorted min_int max_int)
    (Btree_map.range t ~lo:min_int ~hi:max_int);
  Alcotest.check pairs "window [50,150]" (sorted 50 150)
    (Btree_map.range t ~lo:50 ~hi:150);
  Alcotest.check pairs "empty window" [] (Btree_map.range t ~lo:401 ~hi:900);
  Alcotest.check pairs "inverted bounds" [] (Btree_map.range t ~lo:10 ~hi:5);
  (* reopen from the durable snapshot and reattach through the root *)
  let img = Spp_sim.Memdev.durable_snapshot (Pool.dev pool) in
  let dev' = Spp_sim.Memdev.of_image ~name:"btree-reopen" img in
  let space' = Spp_sim.Space.create () in
  match Pool.open_dev space' ~base:Spp_access.default_pool_base dev' with
  | Error e -> Alcotest.failf "reopen failed: %s" (Pool.pool_error_to_string e)
  | Ok (pool', _report) ->
    let a' = Spp_access.attach (Pool.space pool') pool' in
    let slot = Pool.load_oid pool' ~off:(Pool.root_oid pool').Oid.off in
    let t' = Btree_map.attach a' ~root:slot in
    Alcotest.check pairs "range survives reattach" (sorted min_int max_int)
      (Btree_map.range t' ~lo:min_int ~hi:max_int)

(* Space accounting: rtree with many oid-bearing nodes must show SPP
   overhead; ctree/rbtree barely any (Table III shape). *)

let heap_bytes variant index_name keys =
  let pool_size = if index_name = "rtree" then 1 lsl 27 else 1 lsl 24 in
  let a = mk ~pool_size variant in
  let ix = Indices.create index_name a in
  for k = 1 to keys do
    ix.Indices.insert ~key:k ~value:k
  done;
  (Pool.heap_stats a.Spp_access.pool).Heap.allocated_bytes

let test_rtree_space_overhead_shape () =
  let native = heap_bytes Spp_access.Pmdk "rtree" 200 in
  let spp = heap_bytes Spp_access.Spp "rtree" 200 in
  let overhead = float_of_int (spp - native) /. float_of_int native in
  check_bool
    (Printf.sprintf "rtree overhead %.1f%% is substantial" (overhead *. 100.))
    true (overhead > 0.10);
  let n_ct = heap_bytes Spp_access.Pmdk "ctree" 500 in
  let s_ct = heap_bytes Spp_access.Spp "ctree" 500 in
  let ct_overhead = float_of_int (s_ct - n_ct) /. float_of_int n_ct in
  check_bool
    (Printf.sprintf "ctree overhead %.1f%% stays small" (ct_overhead *. 100.))
    true (ct_overhead < overhead)

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  let oracle_cases =
    List.concat_map
      (fun ix ->
        [
          Alcotest.test_case (ix ^ " vs oracle (pmdk)") `Quick
            (test_oracle ix Spp_access.Pmdk);
          Alcotest.test_case (ix ^ " vs oracle (spp)") `Quick
            (test_oracle ix Spp_access.Spp);
          Alcotest.test_case (ix ^ " vs oracle (safepm)") `Quick
            (test_oracle ix Spp_access.Safepm);
        ])
      Indices.names
  in
  let crash_cases =
    List.map
      (fun ix ->
        Alcotest.test_case (ix ^ " crash atomicity") `Quick
          (test_index_crash_atomicity ix))
      [ "ctree"; "rbtree"; "hashmap_tx"; "btree" ]
  in
  Alcotest.run "spp_indices"
    [
      ("oracle", oracle_cases);
      ("invariants", [ qt prop_rbtree_invariants ]);
      ("crash", crash_cases);
      ( "btree-bug",
        [
          Alcotest.test_case "SPP detects pmdk#5333" `Quick
            test_btree_bug_detected_by_spp;
          Alcotest.test_case "native PMDK silent" `Quick
            test_btree_bug_silent_on_native;
          Alcotest.test_case "fixed code clean under SPP" `Quick
            test_btree_fixed_variant_clean;
        ] );
      ( "btree-range",
        [
          Alcotest.test_case "range + attach after rebalance churn" `Quick
            test_btree_range_after_rebalance;
        ] );
      ( "space",
        [
          Alcotest.test_case "rtree vs ctree overhead shape" `Quick
            test_rtree_space_overhead_shape;
        ] );
    ]
