(* Tests for the mini-PMDK: allocator, transactions, recovery, and the
   SPP-adapted persistent-pointer representation. *)

open Spp_sim
open Spp_pmdk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spp_cfg = Spp_core.Config.default

let mk_pool ?(mode = Mode.Native) ?(size = 1 lsl 20) () =
  let space = Space.create () in
  Pool.create space ~base:4096 ~size ~mode ~name:"test-pool"

let mk_tracked_pool ?(mode = Mode.Native) ?(size = 1 lsl 20) () =
  let p = mk_pool ~mode ~size () in
  Memdev.set_tracking (Pool.dev p) true;
  p

(* Allocation basics *)

let test_alloc_free_roundtrip () =
  let p = mk_pool () in
  let oid = Pool.alloc p ~size:100 in
  check_bool "non-null" false (Oid.is_null oid);
  check_int "requested size recorded" 100 (Pool.alloc_size p oid);
  let addr = Pool.direct p oid in
  Space.store_word (Pool.space p) addr 0xCAFE;
  check_int "data" 0xCAFE (Space.load_word (Pool.space p) addr);
  Pool.free_ p oid;
  let st = Pool.heap_stats p in
  check_int "no live blocks" 0 st.Heap.allocated_blocks

let test_free_block_reused () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:64 in
  Pool.free_ p a;
  let b = Pool.alloc p ~size:64 in
  check_int "same block reused" a.Oid.off b.Oid.off

let test_double_free_rejected () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:64 in
  Pool.free_ p a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Pmdk free: block is not allocated (double free?)")
    (fun () -> Pool.free_ p a)

let test_zalloc_zeroes () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:64 in
  Space.fill (Pool.space p) (Pool.direct p a) 64 'x';
  Pool.free_ p a;
  let b = Pool.alloc ~zero:true p ~size:64 in
  check_int "same block" a.Oid.off b.Oid.off;
  check_int "zeroed" 0 (Space.load_word (Pool.space p) (Pool.direct p b))

let test_alloc_size_classes () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:1 in
  let b = Pool.alloc p ~size:33 in
  (* PMDK-style minimum class: 128 bytes *)
  check_int "min class is 128" 128 (b.Oid.off - a.Oid.off - 16)

let test_out_of_pm () =
  let p = mk_pool ~size:65536 () in
  Alcotest.check_raises "oom" Heap.Out_of_pm
    (fun () ->
      for _ = 1 to 100 do
        ignore (Pool.alloc p ~size:16384)
      done)

let test_realloc_grow_preserves () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:32 in
  Space.write_string (Pool.space p) (Pool.direct p a) "0123456789abcdef";
  let b = Pool.realloc p a ~size:4096 in
  check_bool "moved to a new class" true (a.Oid.off <> b.Oid.off);
  Alcotest.(check string) "contents preserved" "0123456789abcdef"
    (Bytes.to_string (Space.read_bytes (Pool.space p) (Pool.direct p b) 16));
  check_int "old block freed"
    1 (Pool.heap_stats p).Heap.free_blocks

let test_realloc_same_class () =
  let p = mk_pool () in
  let a = Pool.alloc p ~size:100 in
  let b = Pool.realloc p a ~size:110 in
  (* 100 and 110 share the 128-byte class *)
  check_int "block unchanged within class" a.Oid.off b.Oid.off;
  check_int "size updated" 110 (Pool.alloc_size p b)

(* Root object *)

let test_root_idempotent () =
  let p = mk_pool () in
  let r1 = Pool.root p ~size:256 in
  let r2 = Pool.root p ~size:256 in
  check_bool "same oid" true (Oid.equal r1 r2);
  check_bool "stored in header" true (Oid.equal r1 (Pool.root_oid p))

(* SPP mode: tagged direct + durable size *)

let test_spp_direct_is_tagged () =
  let p = mk_pool ~mode:(Mode.Spp spp_cfg) () in
  let oid = Pool.alloc p ~size:42 in
  let ptr = Pool.direct p oid in
  check_bool "pm bit" true (Spp_core.Encoding.is_pm spp_cfg ptr);
  check_int "remaining = size" 42 (Spp_core.Encoding.remaining spp_cfg ptr);
  check_int "address" (4096 + oid.Oid.off)
    (Spp_core.Encoding.address spp_cfg ptr)

let test_native_direct_is_raw () =
  let p = mk_pool () in
  let oid = Pool.alloc p ~size:42 in
  check_int "plain address" (4096 + oid.Oid.off) (Pool.direct p oid)

let test_oid_stored_size_by_mode () =
  let n = mk_pool () in
  let s = mk_pool ~mode:(Mode.Spp spp_cfg) () in
  check_int "native 16" 16 (Pool.oid_stored_size n);
  check_int "spp 24" 24 (Pool.oid_stored_size s)

let test_oid_slot_roundtrip_spp () =
  let p = mk_pool ~mode:(Mode.Spp spp_cfg) () in
  let root = Pool.root p ~size:64 in
  let oid = Pool.alloc p ~size:1234 in
  Pool.store_oid p ~off:root.Oid.off oid;
  let oid' = Pool.load_oid p ~off:root.Oid.off in
  check_bool "roundtrip" true (Oid.equal oid oid');
  check_int "size survives" 1234 oid'.Oid.size

let test_spp_object_too_large () =
  let cfg = Spp_core.Config.make ~tag_bits:10 in   (* max object 1 KiB *)
  let space = Space.create () in
  let p = Pool.create space ~base:4096 ~size:(1 lsl 20)
      ~mode:(Mode.Spp cfg) ~name:"small-tag" in
  match Pool.alloc p ~size:2048 with
  | _ -> Alcotest.fail "expected Object_too_large"
  | exception Spp_core.Encoding.Object_too_large _ -> ()

let test_spp_pool_span_checked () =
  let cfg = Spp_core.Config.make ~tag_bits:40 in   (* 21 address bits = 2 MiB *)
  let space = Space.create () in
  match
    Pool.create space ~base:4096 ~size:(1 lsl 22) ~mode:(Mode.Spp cfg)
      ~name:"too-big"
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* End-to-end overflow detection on PM objects *)

let test_spp_overflow_on_pm_object () =
  let p = mk_pool ~mode:(Mode.Spp spp_cfg) () in
  let oid = Pool.alloc p ~size:16 in
  let ptr = Pool.direct p oid in
  let space = Pool.space p in
  let cfg = spp_cfg in
  (* fill legally *)
  for i = 0 to 15 do
    let pi = Spp_core.Encoding.gep cfg ptr i in
    Space.store_u8 space (Spp_core.Encoding.check_bound cfg pi 1) i
  done;
  (* the 17th byte faults *)
  let oob = Spp_core.Encoding.gep cfg ptr 16 in
  (match
     Space.store_u8 space (Spp_core.Encoding.check_bound cfg oob 1) 99
   with
   | () -> Alcotest.fail "expected fault"
   | exception Fault.Fault _ -> ());
  (* neighbouring object unharmed *)
  let neigh = Pool.alloc p ~size:16 in
  check_int "neighbour clean" 0
    (Space.load_u8 space (Spp_core.Encoding.clean_tag cfg (Pool.direct p neigh)))

(* Transactions *)

let test_tx_commit_applies () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.with_tx p (fun () ->
    Pool.tx_add_range p ~off:oid.Oid.off ~len:8;
    Pool.store_word p ~off:oid.Oid.off 0xC0FFEE);
  check_int "committed" 0xC0FFEE (Pool.load_word p ~off:oid.Oid.off)

let test_tx_abort_restores () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.store_word p ~off:oid.Oid.off 111;
  Pool.persist p ~off:oid.Oid.off ~len:8;
  (try
     Pool.with_tx p (fun () ->
       Pool.tx_add_range p ~off:oid.Oid.off ~len:8;
       Pool.store_word p ~off:oid.Oid.off 222;
       failwith "boom")
   with Failure _ -> ());
  check_int "restored" 111 (Pool.load_word p ~off:oid.Oid.off)

let test_tx_abort_rolls_back_alloc () =
  let p = mk_pool () in
  let live_before = (Pool.heap_stats p).Heap.allocated_blocks in
  (try
     Pool.with_tx p (fun () ->
       let (_ : Oid.t) = Pool.tx_alloc p ~size:128 in
       failwith "boom")
   with Failure _ -> ());
  check_int "allocation rolled back" live_before
    (Pool.heap_stats p).Heap.allocated_blocks

let test_tx_free_deferred () =
  let p = mk_pool () in
  let oid = Pool.alloc p ~size:64 in
  Pool.with_tx p (fun () ->
    Pool.tx_free p oid;
    (* still allocated inside the tx: frees apply at commit *)
    check_int "still live inside tx" 1
      (Pool.heap_stats p).Heap.allocated_blocks);
  check_int "freed after commit" 0 (Pool.heap_stats p).Heap.allocated_blocks

let test_tx_abort_drops_free () =
  let p = mk_pool () in
  let oid = Pool.alloc p ~size:64 in
  (try
     Pool.with_tx p (fun () ->
       Pool.tx_free p oid;
       failwith "boom")
   with Failure _ -> ());
  check_int "free dropped on abort" 1
    (Pool.heap_stats p).Heap.allocated_blocks

let test_tx_nesting () =
  let p = mk_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.with_tx p (fun () ->
    Pool.tx_add_range p ~off:oid.Oid.off ~len:8;
    Pool.store_word p ~off:oid.Oid.off 1;
    Pool.with_tx p (fun () ->
      Pool.tx_add_range p ~off:(oid.Oid.off + 8) ~len:8;
      Pool.store_word p ~off:(oid.Oid.off + 8) 2));
  check_int "outer" 1 (Pool.load_word p ~off:oid.Oid.off);
  check_int "inner" 2 (Pool.load_word p ~off:(oid.Oid.off + 8))

let test_tx_outside_rejected () =
  let p = mk_pool () in
  Alcotest.check_raises "no tx" Tx.Not_in_tx
    (fun () -> Pool.tx_add_range p ~off:0 ~len:8)

(* Crash recovery. Tracking mode: unfenced stores are genuinely lost. *)

let test_crash_during_tx_rolls_back () =
  let p = mk_tracked_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.store_word p ~off:oid.Oid.off 42;
  Pool.persist p ~off:oid.Oid.off ~len:8;
  Pool.tx_begin p;
  Pool.tx_add_range p ~off:oid.Oid.off ~len:8;
  Pool.store_word p ~off:oid.Oid.off 99;
  (* crash before commit *)
  let report = Pool.crash_and_recover p in
  check_bool "rolled back" true (report.Pool.tx_outcome = `Rolled_back);
  check_int "old value restored" 42 (Pool.load_word p ~off:oid.Oid.off)

let test_crash_after_commit_keeps () =
  let p = mk_tracked_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.with_tx p (fun () ->
    Pool.tx_add_range p ~off:oid.Oid.off ~len:8;
    Pool.store_word p ~off:oid.Oid.off 7);
  let report = Pool.crash_and_recover p in
  check_bool "clean" true (report.Pool.tx_outcome = `Clean);
  check_int "committed value durable" 7 (Pool.load_word p ~off:oid.Oid.off)

let test_crash_during_tx_alloc_no_leak () =
  let p = mk_tracked_pool () in
  Pool.tx_begin p;
  let (_ : Oid.t) = Pool.tx_alloc p ~size:64 in
  let (_ : Pool.recovery_report) = Pool.crash_and_recover p in
  check_int "no leaked blocks" 0 (Pool.heap_stats p).Heap.allocated_blocks

let test_crash_atomic_alloc_with_dest () =
  (* An atomic allocation publishing into a PM slot either fully happens
     or not at all; after recovery the slot and the heap agree. *)
  let p = mk_tracked_pool ~mode:(Mode.Spp spp_cfg) () in
  let root = Pool.root p ~size:64 in
  let oid = Pool.alloc p ~size:512 ~dest:root.Oid.off in
  let (_ : Pool.recovery_report) = Pool.crash_and_recover p in
  let slot = Pool.load_oid p ~off:root.Oid.off in
  if Oid.is_null slot then
    (* allowed: publication lost; then the heap must not leak *)
    check_int "slot empty, heap has only root" 1
      (Pool.heap_stats p).Heap.allocated_blocks
  else begin
    check_bool "slot matches allocation" true (Oid.equal slot oid);
    check_int "size durable" 512 slot.Oid.size;
    check_int "root + object live" 2 (Pool.heap_stats p).Heap.allocated_blocks
  end

let test_recovery_is_idempotent () =
  let p = mk_tracked_pool () in
  let oid = Pool.alloc ~zero:true p ~size:64 in
  Pool.tx_begin p;
  Pool.tx_add_range p ~off:oid.Oid.off ~len:8;
  Pool.store_word p ~off:oid.Oid.off 5;
  let (_ : Pool.recovery_report) = Pool.crash_and_recover p in
  let (_ : Pool.recovery_report) = Pool.crash_and_recover p in
  check_int "still consistent" 0 (Pool.load_word p ~off:oid.Oid.off)

let test_recover_completed_commit () =
  (* Crash exactly when COMMITTING becomes durable but before the commit
     work (deferred frees, lane reset) ran: recovery must finish the
     commit — snapshot values kept, the tx_free'd block actually freed. *)
  let p = mk_tracked_pool () in
  let dev = Pool.dev p in
  let root = Pool.root p ~size:16 in
  let victim = Pool.alloc p ~size:64 in
  (* tx_state stores: #1 ACTIVE at begin, #2 COMMITTING at commit *)
  let state_stores = ref 0 in
  let armed = ref false in
  Memdev.set_injector dev
    (Some
       (function
         | Memdev.Hk_store { off; _ } when off = Rep.off_tx_state ->
           incr state_stores;
           if !state_stores = 2 then armed := true
         | Memdev.Hk_fence when !armed ->
           Memdev.power_off dev;
           raise Exit
         | _ -> ()));
  (match
     Pool.with_tx p (fun () ->
       Pool.tx_add_range p ~off:root.Oid.off ~len:8;
       Pool.store_word p ~off:root.Oid.off 42;
       Pool.tx_free p victim)
   with
   | () -> Alcotest.fail "expected the simulated power failure"
   | exception Exit -> ());
  Memdev.set_injector dev None;
  Memdev.crash dev;
  Memdev.set_tracking dev false;
  (* reopen in a fresh "process" *)
  let space2 = Space.create () in
  match Pool.open_dev space2 ~base:4096 dev with
  | Error e -> Alcotest.failf "open failed: %s" (Pool.pool_error_to_string e)
  | Ok (p2, report) ->
    check_bool "recovery completed the commit" true
      (report.Pool.tx_outcome = `Completed_commit);
    check_int "committed snapshot value kept" 42
      (Pool.load_word p2 ~off:(Pool.root_oid p2).Oid.off);
    let b = Pool.alloc p2 ~size:64 in
    check_int "deferred free applied: block reclaimed" victim.Oid.off
      b.Oid.off

let test_exception_printers () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "Wrong_pool printer" true
    (contains
       (Printexc.to_string (Pool.Wrong_pool { Oid.uuid = 7; off = 64; size = 8 }))
       "uuid=0x7");
  check_bool "Not_in_tx printer" true
    (contains (Printexc.to_string Tx.Not_in_tx) "outside tx_begin");
  check_bool "Tx_log_full printer" true
    (contains (Printexc.to_string Tx.Tx_log_full) "undo log exhausted");
  check_bool "Tx_aborted printer" true
    (contains (Printexc.to_string Tx.Tx_aborted) "rolled back")

let test_reopen_from_saved_file () =
  let path = Filename.temp_file "spp_pool" ".img" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let space = Space.create () in
      let p = Pool.create space ~base:4096 ~size:(1 lsl 20)
          ~mode:(Mode.Spp spp_cfg) ~name:"saved" in
      let root = Pool.root p ~size:64 in
      let oid = Pool.alloc p ~size:333 ~dest:root.Oid.off in
      Space.write_string space (Spp_core.Encoding.clean_tag spp_cfg
                                  (Pool.direct p oid)) "durable!";
      Pool.persist p ~off:oid.Oid.off ~len:8;
      Memdev.save_durable (Pool.dev p) path;
      (* reopen in a fresh "process" *)
      let space2 = Space.create () in
      let dev2 =
        Memdev.load_durable ~name:"saved" ~min_size:Pool.min_pool_size
          ~magic:Pool.magic_word path
      in
      let p2 = Pool.of_dev space2 ~base:4096 dev2 in
      check_bool "spp mode restored" true (Mode.is_spp (Pool.mode p2));
      let slot = Pool.load_oid p2 ~off:(Pool.root_oid p2).Oid.off in
      check_int "size field durable across processes" 333 slot.Oid.size;
      let ptr = Pool.direct p2 slot in
      check_int "tag rebuilt from durable size" 333
        (Spp_core.Encoding.remaining spp_cfg ptr);
      Alcotest.(check string) "data back" "durable!"
        (Bytes.to_string
           (Space.read_bytes space2
              (Spp_core.Encoding.clean_tag spp_cfg ptr) 8)))

(* Property tests *)

let prop_alloc_free_consistency =
  QCheck.Test.make ~name:"random alloc/free keeps heap consistent" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 60)
              (pair bool (int_range 1 2048)))
    (fun ops ->
      let p = mk_pool ~size:(1 lsl 21) () in
      let live = ref [] in
      List.iter
        (fun (do_free, size) ->
          if do_free && !live <> [] then begin
            match !live with
            | oid :: rest -> Pool.free_ p oid; live := rest
            | [] -> ()
          end else begin
            let oid = Pool.alloc p ~size in
            live := oid :: !live
          end)
        ops;
      let st = Pool.heap_stats p in
      st.Heap.allocated_blocks = List.length !live
      && st.Heap.requested_bytes
         = List.fold_left (fun a o -> a + o.Oid.size) 0
             (List.map (fun o -> { o with Oid.size = Pool.alloc_size p o })
                !live))

let prop_tx_atomicity_under_crash =
  QCheck.Test.make
    ~name:"crash mid-tx never exposes partial updates" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 10) (int_bound 1000))
    (fun values ->
      let p = mk_tracked_pool () in
      let oid = Pool.alloc ~zero:true p ~size:256 in
      (* baseline: all slots 7 *)
      for i = 0 to 7 do Pool.store_word p ~off:(oid.Oid.off + 8 * i) 7 done;
      Pool.persist p ~off:oid.Oid.off ~len:64;
      Pool.tx_begin p;
      Pool.tx_add_range p ~off:oid.Oid.off ~len:64;
      List.iteri
        (fun i v -> Pool.store_word p ~off:(oid.Oid.off + 8 * (i mod 8)) v)
        values;
      let (_ : Pool.recovery_report) = Pool.crash_and_recover p in
      (* after rollback every slot must read 7 again *)
      let ok = ref true in
      for i = 0 to 7 do
        if Pool.load_word p ~off:(oid.Oid.off + 8 * i) <> 7 then ok := false
      done;
      !ok)

let prop_spp_size_always_tagged_correctly =
  QCheck.Test.make
    ~name:"direct() tag always encodes the allocated size" ~count:200
    QCheck.(int_range 1 (1 lsl 16))
    (fun size ->
      let p = mk_pool ~mode:(Mode.Spp spp_cfg) () in
      let oid = Pool.alloc p ~size in
      let ptr = Pool.direct p oid in
      Spp_core.Encoding.remaining spp_cfg ptr = size
      && not (Spp_core.Encoding.is_overflowed spp_cfg
                (Spp_core.Encoding.gep spp_cfg ptr (size - 1)))
      && Spp_core.Encoding.is_overflowed spp_cfg
           (Spp_core.Encoding.gep spp_cfg ptr size))

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_pmdk"
    [
      ( "alloc",
        [
          Alcotest.test_case "alloc/free roundtrip" `Quick
            test_alloc_free_roundtrip;
          Alcotest.test_case "free block reused" `Quick test_free_block_reused;
          Alcotest.test_case "double free rejected" `Quick
            test_double_free_rejected;
          Alcotest.test_case "zalloc zeroes" `Quick test_zalloc_zeroes;
          Alcotest.test_case "size classes" `Quick test_alloc_size_classes;
          Alcotest.test_case "out of PM" `Quick test_out_of_pm;
          Alcotest.test_case "realloc grow preserves" `Quick
            test_realloc_grow_preserves;
          Alcotest.test_case "realloc same class" `Quick test_realloc_same_class;
          Alcotest.test_case "root idempotent" `Quick test_root_idempotent;
        ] );
      ( "spp-mode",
        [
          Alcotest.test_case "direct is tagged" `Quick test_spp_direct_is_tagged;
          Alcotest.test_case "native direct is raw" `Quick
            test_native_direct_is_raw;
          Alcotest.test_case "oid stored size by mode" `Quick
            test_oid_stored_size_by_mode;
          Alcotest.test_case "oid slot roundtrip (size durable)" `Quick
            test_oid_slot_roundtrip_spp;
          Alcotest.test_case "object too large" `Quick test_spp_object_too_large;
          Alcotest.test_case "pool span checked" `Quick test_spp_pool_span_checked;
          Alcotest.test_case "overflow detected on PM object" `Quick
            test_spp_overflow_on_pm_object;
        ] );
      ( "tx",
        [
          Alcotest.test_case "commit applies" `Quick test_tx_commit_applies;
          Alcotest.test_case "abort restores" `Quick test_tx_abort_restores;
          Alcotest.test_case "abort rolls back alloc" `Quick
            test_tx_abort_rolls_back_alloc;
          Alcotest.test_case "free deferred to commit" `Quick
            test_tx_free_deferred;
          Alcotest.test_case "abort drops free" `Quick test_tx_abort_drops_free;
          Alcotest.test_case "nesting" `Quick test_tx_nesting;
          Alcotest.test_case "tx ops outside tx rejected" `Quick
            test_tx_outside_rejected;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash during tx rolls back" `Quick
            test_crash_during_tx_rolls_back;
          Alcotest.test_case "crash after commit keeps" `Quick
            test_crash_after_commit_keeps;
          Alcotest.test_case "crash during tx_alloc: no leak" `Quick
            test_crash_during_tx_alloc_no_leak;
          Alcotest.test_case "atomic alloc with PM dest is atomic" `Quick
            test_crash_atomic_alloc_with_dest;
          Alcotest.test_case "recovery idempotent" `Quick
            test_recovery_is_idempotent;
          Alcotest.test_case "crash while COMMITTING completes the commit"
            `Quick test_recover_completed_commit;
          Alcotest.test_case "exception printers registered" `Quick
            test_exception_printers;
          Alcotest.test_case "reopen pool from saved file" `Quick
            test_reopen_from_saved_file;
        ] );
      ( "properties",
        [
          qt prop_alloc_free_consistency;
          qt prop_tx_atomicity_under_crash;
          qt prop_spp_size_always_tagged_correctly;
        ] );
    ]

