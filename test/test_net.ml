(* Tests for the wire front end: codec round-trips (QCheck, over every
   request/reply shape including binary strings), torn-frame resumable
   decoding at 1-byte granularity, malformed-frame rejection, the
   server/client end-to-end path over Unix and TCP loopback sockets —
   including proof that a hostile connection dies alone while the worker
   domains keep serving — plus the YCSB generator, the load-generator
   accounting, the empty-histogram contract and the atomic JSON write. *)

open Spp_shard
open Spp_benchlib
open Spp_net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let sock_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spp-test-net-%d-%s.sock" (Unix.getpid ()) tag)

(* --- codec: generators ------------------------------------------------ *)

(* Arbitrary bytes, including NULs and high bits — the codec must be
   8-bit clean. *)
let gen_blob max_len =
  QCheck.Gen.(
    int_range 0 max_len >>= fun n ->
    string_size ~gen:(map Char.chr (int_range 0 255)) (return n))

let gen_request =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map2
            (fun key value -> Serve.Put { key; value })
            (gen_blob 64) (gen_blob 300) );
        (3, map (fun k -> Serve.Get k) (gen_blob 64));
        (2, map (fun k -> Serve.Remove k) (gen_blob 64));
        ( 1,
          map3
            (fun lo hi limit -> Serve.Scan { lo; hi; limit })
            (gen_blob 32) (gen_blob 32) (int_range 0 5000) );
      ])

let gen_reply =
  QCheck.Gen.(
    frequency
      [
        (2, return Serve.Done);
        (2, map (fun v -> Serve.Value (Some v)) (gen_blob 300));
        (1, return (Serve.Value None));
        (1, return (Serve.Removed true));
        (1, return (Serve.Removed false));
        ( 2,
          map
            (fun kvs -> Serve.Scanned kvs)
            (list_size (int_range 0 12) (pair (gen_blob 32) (gen_blob 80))) );
        (1, map (fun m -> Serve.Failed (Serve.Op_raised m)) (gen_blob 100));
        (1, return (Serve.Failed Serve.Failed_over));
      ])

let pp_request r =
  match (r : Serve.request) with
  | Serve.Put { key; value } ->
    Printf.sprintf "Put(%S,%d bytes)" key (String.length value)
  | Serve.Get k -> Printf.sprintf "Get(%S)" k
  | Serve.Remove k -> Printf.sprintf "Remove(%S)" k
  | Serve.Scan { lo; hi; limit } -> Printf.sprintf "Scan(%S,%S,%d)" lo hi limit

let arb_requests =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map pp_request l))
    QCheck.Gen.(list_size (int_range 1 20) gen_request)

let arb_replies =
  QCheck.make
    ~print:(fun l -> string_of_int (List.length l))
    QCheck.Gen.(list_size (int_range 1 20) gen_reply)

(* Encode [msgs] with ascending corr ids into one byte stream, then
   decode it fed in [chunk]-byte slices; the decoded (corr, msg) stream
   must equal the input exactly. *)
let round_trip ~encode ~next ~chunk msgs =
  let b = Buffer.create 256 in
  List.iteri (fun i m -> encode b ~corr:i m) msgs;
  let stream = Buffer.contents b in
  let d = Wire.decoder ~initial:16 () in
  let out = ref [] in
  let pos = ref 0 in
  let pop_all () =
    let continue = ref true in
    while !continue do
      match next d with
      | Wire.Msg (corr, m) -> out := (corr, m) :: !out
      | Wire.Awaiting -> continue := false
      | Wire.Corrupt msg -> failwith ("unexpected Corrupt: " ^ msg)
    done
  in
  while !pos < String.length stream do
    let len = min chunk (String.length stream - !pos) in
    Wire.feed_string d (String.sub stream !pos len);
    pos := !pos + len;
    pop_all ()
  done;
  List.rev !out = List.mapi (fun i m -> (i, m)) msgs
  && Wire.buffered d = 0

let qcheck_request_round_trip =
  QCheck.Test.make ~name:"wire: request round-trip (whole stream)" ~count:200
    arb_requests
    (round_trip ~encode:Wire.encode_request ~next:Wire.next_request
       ~chunk:max_int)

let qcheck_request_torn =
  QCheck.Test.make ~name:"wire: request round-trip (1-byte feed)" ~count:60
    arb_requests
    (round_trip ~encode:Wire.encode_request ~next:Wire.next_request ~chunk:1)

let qcheck_reply_round_trip =
  QCheck.Test.make ~name:"wire: reply round-trip (whole stream)" ~count:200
    arb_replies
    (round_trip ~encode:Wire.encode_reply ~next:Wire.next_reply ~chunk:max_int)

let qcheck_reply_torn =
  QCheck.Test.make ~name:"wire: reply round-trip (1-byte feed)" ~count:60
    arb_replies
    (round_trip ~encode:Wire.encode_reply ~next:Wire.next_reply ~chunk:1)

(* --- codec: explicit torn/malformed cases ----------------------------- *)

let encode_one_request ?(corr = 7) req =
  let b = Buffer.create 64 in
  Wire.encode_request b ~corr req;
  Buffer.contents b

let test_torn_frame_resume () =
  (* a multi-message stream fed byte by byte never pops early: the
     decoder reports Awaiting until the exact byte completing a frame *)
  let reqs =
    [ Serve.Put { key = "k\x00ey"; value = String.make 300 '\xff' };
      Serve.Get ""; Serve.Scan { lo = "a"; hi = "z"; limit = 17 } ]
  in
  let stream = String.concat "" (List.map encode_one_request reqs) in
  let d = Wire.decoder ~initial:16 () in
  let popped = ref [] in
  String.iteri
    (fun _ c ->
      Wire.feed_string d (String.make 1 c);
      match Wire.next_request d with
      | Wire.Msg (corr, r) ->
        check_int "echoed corr" 7 corr;
        popped := r :: !popped
      | Wire.Awaiting -> ()
      | Wire.Corrupt m -> Alcotest.failf "corrupt on valid stream: %s" m)
    stream;
  check_int "all frames popped" (List.length reqs) (List.length !popped);
  check_bool "frames round-tripped in order" true (List.rev !popped = reqs);
  check_int "decoder drained" 0 (Wire.buffered d)

let expect_corrupt what stream =
  let d = Wire.decoder () in
  Wire.feed_string d stream;
  match Wire.next_request d with
  | Wire.Corrupt _ -> ()
  | Wire.Msg _ -> Alcotest.failf "%s: parsed as a message" what
  | Wire.Awaiting -> Alcotest.failf "%s: still awaiting" what

let test_malformed_frames () =
  let valid = encode_one_request (Serve.Get "key") in
  (* unknown tag *)
  let bad_tag = Bytes.of_string valid in
  Bytes.set bad_tag 8 '\x7f';
  expect_corrupt "unknown tag" (Bytes.to_string bad_tag);
  (* reply tag on the request stream *)
  let reply_tag = Bytes.of_string valid in
  Bytes.set reply_tag 8 '\x81';
  expect_corrupt "reply tag in request stream" (Bytes.to_string reply_tag);
  (* payload length beyond max_frame — rejected before any allocation *)
  let oversize = Bytes.of_string valid in
  Bytes.set oversize 3 '\xff';
  expect_corrupt "oversized length" (Bytes.to_string oversize);
  (* length too small to hold the header *)
  expect_corrupt "undersized length" "\x02\x00\x00\x00\x00\x00";
  (* inner string length overruns the declared payload *)
  let overrun = Bytes.of_string valid in
  Bytes.set overrun 9 '\xff';
  Bytes.set overrun 10 '\xff';
  expect_corrupt "string overruns payload" (Bytes.to_string overrun);
  (* trailing garbage inside a declared frame *)
  let padded =
    let b = Buffer.create 32 in
    Buffer.add_string b "\x0a\x00\x00\x00";          (* payload len 10 *)
    Buffer.add_string b "\x01\x00\x00\x00";          (* corr *)
    Buffer.add_char b '\x02';                        (* Get *)
    Buffer.add_string b "\x01\x00k";                 (* key "k" *)
    (* declared 10 = 5 + 2 + 1 + 2 trailing bytes *)
    Buffer.add_string b "xx";
    Buffer.contents b
  in
  (* fix the length byte: payload = 4 corr + 1 tag + 3 key + 2 trailing *)
  let padded = "\x0a\x00\x00\x00" ^ String.sub padded 4 (String.length padded - 4) in
  expect_corrupt "trailing bytes in frame" padded

let test_scanned_hostile_count () =
  (* a Scanned reply whose count field promises more entries than the
     payload can hold must be rejected without allocating the list *)
  let b = Buffer.create 32 in
  Wire.encode_reply b ~corr:1 (Serve.Scanned [ ("k", "v") ]);
  let s = Bytes.of_string (Buffer.contents b) in
  (* count is the u32 after the 4B length + 4B corr + 1B tag *)
  Bytes.set s 9 '\xff';
  Bytes.set s 10 '\xff';
  let d = Wire.decoder () in
  Wire.feed_string d (Bytes.to_string s);
  (match Wire.next_reply d with
   | Wire.Corrupt _ -> ()
   | _ -> Alcotest.fail "hostile scan count accepted")

let test_encode_rejects_oversize_key () =
  let b = Buffer.create 16 in
  (try
     Wire.encode_request b ~corr:0 (Serve.Get (String.make 70_000 'k'));
     Alcotest.fail "oversized key accepted"
   with Invalid_argument _ -> ());
  (* an oversized Op_raised message is truncated, not rejected *)
  Buffer.clear b;
  Wire.encode_reply b ~corr:0
    (Serve.Failed (Serve.Op_raised (String.make 70_000 'm')));
  let d = Wire.decoder () in
  Wire.feed_string d (Buffer.contents b);
  (match Wire.next_reply d with
   | Wire.Msg (_, Serve.Failed (Serve.Op_raised m)) ->
     check_int "truncated to max_key" Wire.max_key (String.length m)
   | _ -> Alcotest.fail "truncated failure did not round-trip")

(* --- server/client end to end ----------------------------------------- *)

let mk_store ?(engine = Spp_pmemkv.Engines.cmap) ?(nshards = 2) () =
  Shard.create ~nbuckets:64 ~pool_size:(1 lsl 22) ~engine ~nshards
    Spp_access.Spp

let with_server ?engine ?nshards ~tag f =
  let t = mk_store ?engine ?nshards () in
  let sv = Serve.create ~batch_cap:8 t in
  let srv = Net_server.create sv (Unix.ADDR_UNIX (sock_path tag)) in
  Fun.protect
    ~finally:(fun () ->
      Net_server.stop srv;
      Serve.stop sv)
    (fun () -> f srv)

let test_end_to_end_unix () =
  with_server ~engine:Spp_pmemkv.Engines.btree ~tag:"e2e" (fun srv ->
    let cl = Net_client.connect (Net_server.addr srv) in
    Fun.protect
      ~finally:(fun () -> Net_client.close cl)
      (fun () ->
        (match Net_client.put cl ~key:"alpha" ~value:"1" with
         | Serve.Done -> ()
         | _ -> Alcotest.fail "put");
        (match Net_client.get cl "alpha" with
         | Serve.Value (Some v) -> check_string "get back" "1" v
         | _ -> Alcotest.fail "get");
        (match Net_client.get cl "missing" with
         | Serve.Value None -> ()
         | _ -> Alcotest.fail "get missing");
        ignore (Net_client.put cl ~key:"beta" ~value:"2");
        ignore (Net_client.put cl ~key:"gamma" ~value:"3");
        (match Net_client.scan cl ~lo:"alpha" ~hi:"zz" ~limit:10 with
         | Serve.Scanned kvs ->
           check_bool "scan ordered over the wire" true
             (List.map fst kvs = [ "alpha"; "beta"; "gamma" ])
         | _ -> Alcotest.fail "scan");
        (match Net_client.remove cl "beta" with
         | Serve.Removed true -> ()
         | _ -> Alcotest.fail "remove");
        (match Net_client.remove cl "beta" with
         | Serve.Removed false -> ()
         | _ -> Alcotest.fail "re-remove")))

let test_end_to_end_tcp () =
  (* port 0: kernel picks; Net_server.addr reports the bound port *)
  let t = mk_store () in
  let sv = Serve.create ~batch_cap:8 t in
  let srv =
    Net_server.create sv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  Fun.protect
    ~finally:(fun () ->
      Net_server.stop srv;
      Serve.stop sv)
    (fun () ->
      (match Net_server.addr srv with
       | Unix.ADDR_INET (_, p) -> check_bool "kernel-assigned port" true (p > 0)
       | _ -> Alcotest.fail "expected inet addr");
      let cl = Net_client.connect ~pool:2 (Net_server.addr srv) in
      Fun.protect
        ~finally:(fun () -> Net_client.close cl)
        (fun () ->
          ignore (Net_client.put cl ~key:"k" ~value:"v");
          match Net_client.get cl "k" with
          | Serve.Value (Some "v") -> ()
          | _ -> Alcotest.fail "tcp get"))

let test_pipelined_futures () =
  with_server ~tag:"pipe" (fun srv ->
    let cl = Net_client.connect (Net_server.addr srv) in
    Fun.protect
      ~finally:(fun () -> Net_client.close cl)
      (fun () ->
        let n = 500 in
        let key i = Printf.sprintf "key%04d" (i mod 50) in
        let futs =
          Array.init n (fun i ->
            if i mod 3 = 0 then
              Net_client.send cl
                (Serve.Put { key = key i; value = string_of_int i })
            else Net_client.send cl (Serve.Get (key i)))
        in
        let ok = ref 0 in
        Array.iter
          (fun fu ->
            match Net_client.await cl fu with
            | Serve.Done | Serve.Value _ -> incr ok
            | _ -> ())
          futs;
        check_int "every pipelined reply arrived, none failed" n !ok;
        check_int "nothing left in flight" 0 (Net_client.inflight cl)))

let test_malformed_kills_connection_not_server () =
  with_server ~tag:"mal" (fun srv ->
    let addr = Net_server.addr srv in
    (* a healthy connection first *)
    let cl = Net_client.connect addr in
    ignore (Net_client.put cl ~key:"stay" ~value:"alive");
    (* hostile connection: raw garbage *)
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd addr;
    let garbage = Bytes.of_string "\xde\xad\xbe\xef\xde\xad\xbe\xef" in
    ignore (Unix.write fd garbage 0 (Bytes.length garbage));
    (* server closes it: read returns EOF eventually *)
    let buf = Bytes.create 16 in
    let rec drain () = if Unix.read fd buf 0 16 > 0 then drain () in
    (try drain () with Unix.Unix_error _ -> ());
    Unix.close fd;
    (* the worker domains and the healthy connection still serve *)
    (match Net_client.get cl "stay" with
     | Serve.Value (Some v) -> check_string "old conn survives" "alive" v
     | _ -> Alcotest.fail "healthy connection broken by hostile one");
    Net_client.close cl;
    (* and a fresh connection works too *)
    let cl2 = Net_client.connect addr in
    (match Net_client.get cl2 "stay" with
     | Serve.Value (Some _) -> ()
     | _ -> Alcotest.fail "server dead after malformed frame");
    Net_client.close cl2;
    let st = Net_server.stats srv in
    check_int "malformed counted" 1 st.Net_server.sv_malformed;
    check_bool "accepted all three" true (st.Net_server.sv_accepted >= 3))

let test_dead_server_fails_typed () =
  let t = mk_store () in
  let sv = Serve.create ~batch_cap:8 t in
  let srv = Net_server.create sv (Unix.ADDR_UNIX (sock_path "dead")) in
  let cl = Net_client.connect (Net_server.addr srv) in
  ignore (Net_client.put cl ~key:"k" ~value:"v");
  Net_server.stop srv;
  Serve.stop sv;
  (* sends against the dead server resolve to a typed failure, no hang *)
  let rec poll tries =
    match Net_client.get cl "k" with
    | Serve.Failed (Serve.Op_raised _) -> ()
    | _ when tries > 0 ->
      Unix.sleepf 0.01;
      poll (tries - 1)
    | _ -> Alcotest.fail "send on dead server did not fail typed"
  in
  poll 100;
  Net_client.close cl

let test_parse_addr () =
  (match Net_server.parse_addr "unix:/tmp/x.sock" with
   | Unix.ADDR_UNIX p -> check_string "unix path" "/tmp/x.sock" p
   | _ -> Alcotest.fail "unix:");
  (match Net_server.parse_addr "4242" with
   | Unix.ADDR_INET (a, p) ->
     check_int "bare port" 4242 p;
     check_bool "loopback" true (a = Unix.inet_addr_loopback)
   | _ -> Alcotest.fail "bare port");
  (match Net_server.parse_addr "127.0.0.1:80" with
   | Unix.ADDR_INET (_, p) -> check_int "host:port" 80 p
   | _ -> Alcotest.fail "host:port");
  List.iter
    (fun bad ->
      try
        ignore (Net_server.parse_addr bad);
        Alcotest.failf "accepted %S" bad
      with Invalid_argument _ -> ())
    [ ""; "notaport"; "host:notaport"; "99999" ]

(* --- load generators --------------------------------------------------- *)

let test_loadgen_accounting () =
  with_server ~tag:"lg" (fun srv ->
    let cl = Net_client.connect (Net_server.addr srv) in
    Fun.protect
      ~finally:(fun () -> Net_client.close cl)
      (fun () ->
        let key i = Printf.sprintf "key%03d" (i mod 40) in
        let next i =
          if i mod 4 = 0 then
            [| Serve.Get (key i);
               Serve.Put { key = key i; value = "rmw" } |]
          else [| Serve.Put { key = key i; value = "v" } |]
        in
        let r = Loadgen.open_loop cl ~rate:5_000. ~ops:200 ~next in
        check_int "ops" 200 r.Loadgen.lg_ops;
        check_int "requests include RMW legs" 250 r.Loadgen.lg_requests;
        check_int "no failures" 0 r.Loadgen.lg_failed;
        check_int "one latency sample per op" 200
          (Histogram.count r.Loadgen.lg_hist);
        check_bool "target recorded" true (r.Loadgen.lg_target = 5_000.);
        let c = Loadgen.closed_loop cl ~window:16 ~ops:150 ~next in
        check_int "closed ops" 150 c.Loadgen.lg_ops;
        check_bool "closed loop has no target" true (c.Loadgen.lg_target = 0.);
        check_bool "achieved positive" true (c.Loadgen.lg_achieved > 0.)))

let test_ycsb_generator () =
  (* deterministic under a seed *)
  let ops_of letter =
    let y = Ycsb.create ~letter ~seed:42 ~universe:100 () in
    Array.init 2_000 (fun _ -> Ycsb.next y)
  in
  check_bool "deterministic replay" true (ops_of Ycsb.A = ops_of Ycsb.A);
  (* mixes land near their nominal ratios *)
  let frac pred ops =
    float_of_int (Array.length (Array.of_list (List.filter pred (Array.to_list ops))))
    /. float_of_int (Array.length ops)
  in
  let is_read = function Ycsb.Read _ -> true | _ -> false in
  let near what lo hi v =
    check_bool (Printf.sprintf "%s in [%.2f, %.2f] (got %.3f)" what lo hi v)
      true
      (v >= lo && v <= hi)
  in
  near "A reads ~50%" 0.4 0.6 (frac is_read (ops_of Ycsb.A));
  near "B reads ~95%" 0.9 1.0 (frac is_read (ops_of Ycsb.B));
  check_bool "C all reads" true (Array.for_all is_read (ops_of Ycsb.C));
  near "E scans ~95%" 0.9 1.0
    (frac (function Ycsb.Scan _ -> true | _ -> false) (ops_of Ycsb.E));
  near "F rmw ~50%" 0.4 0.6
    (frac (function Ycsb.Rmw _ -> true | _ -> false) (ops_of Ycsb.F));
  (* D: inserts extend the key space, reads stay in bounds and skew
     toward the newest indices *)
  let y = Ycsb.create ~letter:Ycsb.D ~seed:7 ~universe:100 () in
  let high = ref 0 and reads = ref 0 in
  for _ = 1 to 2_000 do
    match Ycsb.next y with
    | Ycsb.Insert i -> check_int "insert is the next fresh index" i (Ycsb.loaded y - 1)
    | Ycsb.Read i ->
      incr reads;
      check_bool "read in bounds" true (i >= 0 && i < Ycsb.loaded y);
      if i > Ycsb.loaded y / 2 then incr high
    | _ -> Alcotest.fail "unexpected op in D"
  done;
  check_bool "D skews to the newest half" true
    (float_of_int !high /. float_of_int !reads > 0.8);
  check_bool "D grew the key space" true (Ycsb.loaded y > 100)

(* --- satellites: histogram / json ------------------------------------- *)

let test_empty_histogram_defined () =
  let h = Histogram.create () in
  check_int "empty p50" 0 (Histogram.p50 h);
  check_int "empty p99" 0 (Histogram.p99 h);
  check_int "empty p999" 0 (Histogram.p999 h);
  check_int "empty percentile 100" 0 (Histogram.percentile h 100.);
  check_bool "empty mean" true (Histogram.mean h = 0.);
  check_int "empty count" 0 (Histogram.count h);
  check_int "empty max" 0 (Histogram.max_value h);
  (* p999 orders sanely on a real recorder *)
  let h = Histogram.create () in
  for v = 1 to 1_000 do
    Histogram.add h v
  done;
  check_bool "p999 >= p99" true (Histogram.p999 h >= Histogram.p99 h);
  check_bool "p999 <= max" true (Histogram.p999 h <= Histogram.max_value h)

let test_json_write_atomic () =
  let dir = Filename.get_temp_dir_name () in
  let path =
    Filename.concat dir (Printf.sprintf "spp-test-json-%d.json" (Unix.getpid ()))
  in
  let j = Json_out.create () in
  Json_out.emit j ~experiment:"x" ~name:"n" ~metric:"m" 1.0;
  Json_out.write j path;
  check_bool "file exists" true (Sys.file_exists path);
  check_bool "no temp residue" false (Sys.file_exists (path ^ ".tmp"));
  (* the write is total: the file parses and ends in a newline *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  check_bool "complete document" true
    (String.length s > 0 && s.[String.length s - 1] = '\n');
  check_bool "parses as the emitted record" true
    (let expected =
       Json_out.to_string
         (Json_out.J_obj
            [ ("experiment", Json_out.J_string "x");
              ("name", Json_out.J_string "n");
              ("metric", Json_out.J_string "m");
              ("value", Json_out.J_float 1.0) ])
     in
     (* substring check keeps this independent of the meta fields *)
     let rec contains i =
       if i + String.length expected > String.length s then false
       else if String.sub s i (String.length expected) = expected then true
       else contains (i + 1)
     in
     contains 0);
  Sys.remove path

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spp_net"
    [
      ( "codec",
        [
          qt qcheck_request_round_trip;
          qt qcheck_request_torn;
          qt qcheck_reply_round_trip;
          qt qcheck_reply_torn;
          Alcotest.test_case "torn frames resume at every byte" `Quick
            test_torn_frame_resume;
          Alcotest.test_case "malformed frames are Corrupt" `Quick
            test_malformed_frames;
          Alcotest.test_case "hostile scan count rejected" `Quick
            test_scanned_hostile_count;
          Alcotest.test_case "oversize key rejected, message truncated"
            `Quick test_encode_rejects_oversize_key;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over unix socket" `Quick
            test_end_to_end_unix;
          Alcotest.test_case "end to end over tcp loopback" `Quick
            test_end_to_end_tcp;
          Alcotest.test_case "pipelined out-of-order completion" `Quick
            test_pipelined_futures;
          Alcotest.test_case "malformed frame kills connection, not server"
            `Quick test_malformed_kills_connection_not_server;
          Alcotest.test_case "dead server fails typed, never hangs" `Quick
            test_dead_server_fails_typed;
          Alcotest.test_case "parse_addr" `Quick test_parse_addr;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "open/closed loop accounting" `Quick
            test_loadgen_accounting;
          Alcotest.test_case "ycsb workload letters" `Quick
            test_ycsb_generator;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "empty histogram is defined" `Quick
            test_empty_histogram_defined;
          Alcotest.test_case "json write is atomic" `Quick
            test_json_write_atomic;
        ] );
    ]
