(** SPP runtime library (paper §IV-D, §V-B).

    The hook functions injected by the compiler passes, with global call
    counters so instrumentation cost and the effect of the optimizations
    (pointer tracking ⇒ [_direct] variants; bound-check preemption ⇒ fewer
    calls) are measurable. The [_direct] variants skip the runtime PM-bit
    test and are used on pointers statically classified as persistent. *)

type counters = {
  mutable updatetag : int;
  mutable cleantag : int;
  mutable checkbound : int;
  mutable cleantag_external : int;
  mutable memintr_check : int;
  mutable pm_bit_tests : int;
  mutable direct_calls : int;
}

val counters : counters
(** The {e main} domain's counter record (counters are domain-local —
    see {!local_counters}). *)

val local_counters : unit -> counters
(** The calling domain's counter record. On the main domain this is
    {!counters}; a domain spawned by the sharded serving path gets its
    own record, so concurrent shards never contend on (or lose
    increments to) one shared cache line. Read it before the domain
    exits — the record dies with the domain. *)

val reset_counters : unit -> unit
(** Zero the calling domain's record. *)

val spp_updatetag : Config.t -> int -> int -> int
val spp_updatetag_direct : Config.t -> int -> int -> int
val spp_cleantag : Config.t -> int -> int
val spp_cleantag_direct : Config.t -> int -> int
val spp_checkbound : Config.t -> int -> int -> int
val spp_checkbound_direct : Config.t -> int -> int -> int
val spp_cleantag_external : Config.t -> int -> int
val spp_memintr_check : Config.t -> int -> int -> int
val spp_is_pm_ptr : Config.t -> int -> bool
