(* SPP runtime library (paper §IV-D, §V-B).

   These are the hook functions the compiler passes inject. They carry the
   same names as the C runtime (modulo the [__] prefix) and keep global
   call counters so instrumentation overhead and optimization effect
   (pointer tracking skipping PM-bit checks, bound-check preemption
   removing calls) can be measured. *)

type counters = {
  mutable updatetag : int;
  mutable cleantag : int;
  mutable checkbound : int;
  mutable cleantag_external : int;
  mutable memintr_check : int;
  mutable pm_bit_tests : int;    (* runtime pointer-kind checks performed *)
  mutable direct_calls : int;    (* hook calls that skipped the kind check *)
}

(* Counters are domain-local. The sharded serving path runs one domain
   per shard, and a single shared record would both lose increments
   (plain-field races) and ping-pong its cache line between every
   domain on every hook call — a contention tax on exactly the path the
   scaleout benchmark measures. The main domain's record is the
   [counters] value itself, so the original single-domain interface is
   unchanged; a spawned domain accumulates into its own record, read
   with [local_counters] before the domain exits. *)

let fresh_counters () = {
  updatetag = 0; cleantag = 0; checkbound = 0;
  cleantag_external = 0; memintr_check = 0;
  pm_bit_tests = 0; direct_calls = 0;
}

let counters = fresh_counters ()

let counters_key = Domain.DLS.new_key fresh_counters

(* module init runs on the main domain: bind its slot to [counters] *)
let () = Domain.DLS.set counters_key counters

let local_counters () = Domain.DLS.get counters_key

let reset_counters () =
  let c = local_counters () in
  c.updatetag <- 0;
  c.cleantag <- 0;
  c.checkbound <- 0;
  c.cleantag_external <- 0;
  c.memintr_check <- 0;
  c.pm_bit_tests <- 0;
  c.direct_calls <- 0

let spp_updatetag cfg ptr off =
  let c = local_counters () in
  c.updatetag <- c.updatetag + 1;
  c.pm_bit_tests <- c.pm_bit_tests + 1;
  Encoding.update_tag cfg ptr off

let spp_updatetag_direct cfg ptr off =
  let c = local_counters () in
  c.updatetag <- c.updatetag + 1;
  c.direct_calls <- c.direct_calls + 1;
  Encoding.update_tag_direct cfg ptr off

let spp_cleantag cfg ptr =
  let c = local_counters () in
  c.cleantag <- c.cleantag + 1;
  c.pm_bit_tests <- c.pm_bit_tests + 1;
  Encoding.clean_tag cfg ptr

let spp_cleantag_direct cfg ptr =
  let c = local_counters () in
  c.cleantag <- c.cleantag + 1;
  c.direct_calls <- c.direct_calls + 1;
  Encoding.clean_tag_direct cfg ptr

let spp_checkbound cfg ptr deref_size =
  let c = local_counters () in
  c.checkbound <- c.checkbound + 1;
  c.pm_bit_tests <- c.pm_bit_tests + 1;
  Encoding.check_bound cfg ptr deref_size

let spp_checkbound_direct cfg ptr deref_size =
  let c = local_counters () in
  c.checkbound <- c.checkbound + 1;
  c.direct_calls <- c.direct_calls + 1;
  Encoding.check_bound_direct cfg ptr deref_size

let spp_cleantag_external cfg ptr =
  let c = local_counters () in
  c.cleantag_external <- c.cleantag_external + 1;
  c.pm_bit_tests <- c.pm_bit_tests + 1;
  Encoding.clean_tag_external cfg ptr

let spp_memintr_check cfg ptr n =
  (* Account for the furthest byte a memory intrinsic will touch, then
     mask. An overflown result is an unmapped address, so the intrinsic
     itself faults (paper §V-B). *)
  let c = local_counters () in
  c.memintr_check <- c.memintr_check + 1;
  c.pm_bit_tests <- c.pm_bit_tests + 1;
  if n <= 0 then Encoding.clean_tag cfg ptr
  else Encoding.clean_tag cfg (Encoding.update_tag cfg ptr (n - 1))

let spp_is_pm_ptr cfg ptr =
  let c = local_counters () in
  c.pm_bit_tests <- c.pm_bit_tests + 1;
  Encoding.is_pm cfg ptr
