(* Interposed memory-intrinsic and string functions (paper §IV-D, §V-B).

   Each wrapper updates the tag of every PM-pointer argument by the
   furthest offset the built-in will touch, masks it, and then performs
   the operation with the masked addresses. If any tag update set the
   overflow bit, the masked address is unmapped and the operation faults
   before corrupting memory — preserving SPP's memory-safety property
   without an explicit bounds branch. *)

open Spp_sim

let wrap_memcpy cfg space ~dst ~src ~len =
  let dst' = Runtime.spp_memintr_check cfg dst len in
  let src' = Runtime.spp_memintr_check cfg src len in
  Space.blit space ~src:src' ~dst:dst' ~len

let wrap_memmove cfg space ~dst ~src ~len =
  (* Space.blit is memmove-safe for overlapping ranges. *)
  wrap_memcpy cfg space ~dst ~src ~len

let wrap_memset cfg space ~dst ~c ~len =
  let dst' = Runtime.spp_memintr_check cfg dst len in
  Space.fill space dst' len c

let wrap_memcmp cfg space ~a ~b ~len =
  let a' = Runtime.spp_memintr_check cfg a len in
  let b' = Runtime.spp_memintr_check cfg b len in
  Space.memcmp space a' b' len

(* String functions. The wrapper first masks the argument (so an already
   overflown pointer faults on the scan), measures the string, then
   re-checks the full range it is about to read or write. *)

let wrap_strlen cfg space s =
  let s' = Runtime.spp_cleantag cfg s in
  Space.strlen space s'

let wrap_strcpy cfg space ~dst ~src =
  let n = wrap_strlen cfg space src + 1 in   (* include NUL *)
  let src' = Runtime.spp_memintr_check cfg src n in
  let dst' = Runtime.spp_memintr_check cfg dst n in
  Space.blit space ~src:src' ~dst:dst' ~len:n

let wrap_strncpy cfg space ~dst ~src ~n =
  let len = min n (wrap_strlen cfg space src + 1) in
  let src' = Runtime.spp_memintr_check cfg src len in
  let dst' = Runtime.spp_memintr_check cfg dst n in
  Space.blit space ~src:src' ~dst:dst' ~len;
  if len < n then Space.fill space (dst' + len) (n - len) '\000'

let wrap_strcat cfg space ~dst ~src =
  let dlen = wrap_strlen cfg space dst in
  let slen = wrap_strlen cfg space src + 1 in
  let src' = Runtime.spp_memintr_check cfg src slen in
  let dst' = Runtime.spp_memintr_check cfg dst (dlen + slen) in
  Space.blit space ~src:src' ~dst:(dst' + dlen) ~len:slen

let wrap_strcmp cfg space a b =
  let a' = Runtime.spp_cleantag cfg a in
  let b' = Runtime.spp_cleantag cfg b in
  Space.strcmp space a' b'
