(* Asynchronous batched serving pipeline over the shard stack.

   One MPSC mailbox per shard (Mutex/Condition, any submitter, one
   consumer); one worker Domain per shard drains it and executes the
   drained requests through [Cmap.run_batch], so the whole drain rides a
   single group-committed redo log (see [Redo.batch]) — the fence
   schedule that a synchronous routed put pays per operation is paid
   once per batch. Each request carries a promise-like ticket: the
   worker fulfils it after the batch's commit returns, which is exactly
   when the op is durable, and records the submission-to-fulfilment
   latency into a shard-local histogram.

   Batching is adaptive: the drain size doubles while a backlog remains
   after a drain (queue pressure) up to [batch_cap], and halves when a
   drain empties the queue (idle). With [adaptive = false] every drain
   takes exactly [batch_cap] requests when available — combined with
   pre-enqueueing ([autostart:false] then [start]) this makes batch
   boundaries, and therefore every Space/Memdev counter, a pure
   function of the submitted streams: the property the
   parallel-vs-sequential differential asserts.

   Crash atomicity is per op, not per batch: recovery lands on a prefix
   of whole operations of the interrupted batch (torture workload
   "kvbatch" enumerates exactly this). Acks are stronger — a fulfilled
   ticket means the op's sub-batch committed.

   Failure semantics: a ticket resolves to [Failed] instead of hanging.
   An op that raises fails its whole drain with [Op_raised] but leaves
   the shard serving (the abandoned batch staged only volatile state;
   locks unwind via [Fun.protect]). A primary whose device died —
   [Memdev.power_off], the kill the failover torture injects — fails
   the drain and every later request on that shard with [Failed_over]
   until [promote] swaps in a replica stack. A [Failed] reply means the
   op's outcome is unknown, not that it didn't happen: sub-batches that
   committed before the failure are durable (and replicated), the rest
   are not — standard failover ambiguity, resolved by the client
   re-reading.

   Replication rides the batch observer, so it sees exactly the batched
   mutations: with [?replication] configured, all writes must flow
   through this pipeline (the synchronous [Shard.put] tx path is
   invisible to replicas). Workers gate ticket fulfilment on
   [Replica.wait_acks] per the configured policy and run one heartbeat
   round per drain; [promote] executes on the failed shard's own worker
   domain — the only domain allowed inside the old stack — then repoints
   the router via [Shard.set_shard].

   Live slot migration ([migrate_slot]) also executes on the source
   shard's own worker domain, between drains — the migration is a
   mailbox control request like promotion, so the source stack is never
   entered from a second domain. The protocol is copy -> flip -> delete:
   (1) the worker drains the slot's keys out of its own engine through
   paginated ordered scans and replays them into the target shard as
   ordinary batched [Put]s via the target's mailbox — so the copy rides
   the target's group commit and its redo payloads reach the target's
   replica; during the copy the source queue is frozen (its worker is
   the one copying), so the scanned values cannot go stale; (2) the
   flip takes both mailbox locks, re-points every queued request on the
   migrating slot at the target (tickets chase their requests across
   mailboxes), invalidates the source cache for the moved keys and
   swaps in the new slot table — submitters re-check the table under
   the mailbox lock, so no slot request can land on the source after
   the swap; (3) the worker deletes the moved keys from its own engine
   in group-committed remove batches. A crash between (1) and (2)
   leaves the slot on the source (the copy is garbage the target never
   owns); after (2) the slot is served by the target, which has every
   key — exactly-once either way, which the [kvreshard] torture
   workload enumerates. One migration runs at a time ([mig_mu]);
   whole-store scans serialize against it so a range never observes a
   slot in neither (or both) shards. *)

type request =
  | Put of { key : string; value : string }
  | Get of string
  | Remove of string
  | Scan of { lo : string; hi : string; limit : int }

type failure =
  | Op_raised of string   (* an op raised; outcome of the drain unknown *)
  | Failed_over           (* primary died; resubmit after promotion *)

type reply =
  | Done                     (* put committed *)
  | Value of string option   (* get result *)
  | Removed of bool
  | Scanned of (string * string) list   (* ordered, <= the clamped limit *)
  | Failed of failure        (* op not acked; outcome unknown *)

(* Every scan reply is clamped to this many pairs, whatever limit the
   client asked for — the reply is a materialized list and the worker
   holds the shard for the whole batch. *)
let scan_limit_cap = 4096

exception Not_replicated of int

let () =
  Printexc.register_printer (function
    | Not_replicated i ->
      Some
        (Printf.sprintf
           "Serve.Not_replicated: shard %d has no replication group" i)
    | _ -> None)

let request_key = function
  | Put { key; _ } | Get key | Remove key -> key
  | Scan _ ->
    (* a range spans every shard; route scans with [scan] or target one
       shard with [submit_to] *)
    invalid_arg "Serve.request_key: Scan has no routing key"

type ticket = {
  mutable tk_shard : int;            (* re-pointed when a flip forwards *)
  tk_submitted : float;              (* monotonic seconds *)
  mutable tk_reply : reply option;   (* written under the mailbox lock *)
  tk_pinned : bool;
      (* the caller chose the shard explicitly ([submit_to]) — the
         drain-time ownership double-check must not re-route it; the
         migration copy deliberately targets the not-yet-owner *)
}

type migration_report = {
  mig_slot : int;
  mig_from : int;
  mig_to : int;
  mig_keys : int;        (* entries copied (and later deleted) *)
  mig_batches : int;     (* copy batches group-committed on the target *)
  mig_forwarded : int;   (* queued requests re-pointed at the flip *)
}

type mailbox = {
  mu : Mutex.t;
  work : Condition.t;   (* signaled on submit, stop, promote, migrate *)
  done_ : Condition.t;  (* broadcast on fulfilment; awaiters wait *)
  q : (request * ticket) Queue.t;
  mutable peak_q : int;    (* high-water queue depth, under [mu] *)
  mutable stop : bool;
  mutable failed : bool;   (* device died: fail drains until promotion *)
  mutable promote_req : int option;   (* Some cache_cap: promote now *)
  mutable promoted : (Replica.promoted, string) result option;
  mutable migrate_req : (int * int) option;   (* (slot, target shard) *)
  mutable migrated : (migration_report, string) result option;
}

type shard_stats = {
  ss_shard : int;
  ss_ops : int;
  ss_batches : int;
  ss_max_batch : int;
  ss_failed : int;                      (* tickets resolved [Failed] *)
  ss_busy : float;                      (* seconds inside [run_batch] *)
  ss_hist : Spp_benchlib.Histogram.t;   (* latency, ns *)
}

type t = {
  store : Shard.t;
  boxes : mailbox array;
  repl : Replica.t option array;   (* one group per shard, if configured *)
  batch_cap : int;
  adaptive : bool;
  bypass : bool;            (* answer cache-hit gets on the submitter *)
  bypassed : int Atomic.t;  (* gets that never saw a mailbox *)
  promotions : int Atomic.t;
  mig_mu : Mutex.t;         (* one migration at a time; scans serialize *)
  slot_ops : int Atomic.t array;   (* per-slot routed-op histogram *)
  live_ops : int Atomic.t array;   (* per-shard executed ops, live *)
  live_busy : float Atomic.t array;   (* per-shard run_batch seconds, live *)
  migrations : int Atomic.t;
  forwarded : int Atomic.t;        (* requests re-pointed across boxes *)
  keys_moved : int Atomic.t;
  mutable workers : unit Domain.t array;
  mutable results : shard_stats array;   (* valid after [stop] *)
  mutable stopped : bool;
}

let to_engine_op = function
  | Put { key; value } -> Spp_pmemkv.Engine.B_put { key; value }
  | Get key -> Spp_pmemkv.Engine.B_get key
  | Remove key -> Spp_pmemkv.Engine.B_remove key
  | Scan { lo; hi; limit } ->
    Spp_pmemkv.Engine.B_scan
      { lo; hi; limit = max 0 (min limit scan_limit_cap) }

let of_engine_reply = function
  | Spp_pmemkv.Engine.R_put -> Done
  | Spp_pmemkv.Engine.R_get v -> Value v
  | Spp_pmemkv.Engine.R_removed b -> Removed b
  | Spp_pmemkv.Engine.R_scan kvs -> Scanned kvs

(* Resolve a drain's tickets — the first [n] slots of the worker's
   scratch buffer. [Failed] still records latency — a failed op occupied
   the pipeline for that long. *)
let resolve box hist nfailed items n replies =
  let now = Spp_benchlib.Bench_util.now_mono () in
  Mutex.lock box.mu;
  for j = 0 to n - 1 do
    let (_, tk) = items.(j) in
    let r = replies j in
    (match r with Failed _ -> incr nfailed | _ -> ());
    tk.tk_reply <- Some r;
    Spp_benchlib.Histogram.add hist
      (int_of_float ((now -. tk.tk_submitted) *. 1e9))
  done;
  Condition.broadcast box.done_;
  Mutex.unlock box.mu

(* Promotion runs here, on the shard's own worker domain — the one
   domain allowed inside the old stack — so the router swap can never
   race a drain. The sealed group stays in [t.repl] for post-mortem
   stats; [Replica.sealed] keeps it off the ack path. *)
let do_promote t i box cache_cap =
  let res =
    match t.repl.(i) with
    | None -> Error "no replication group"
    | Some g ->
      (try
         let p = Replica.promote ~cache_cap g in
         Shard.set_shard t.store i ~access:p.Replica.pr_access
           ~kv:p.Replica.pr_kv;
         Atomic.incr t.promotions;
         Ok p
       with
       | Replica.Promotion_failed { reason; _ } -> Error reason
       | e -> Error (Printexc.to_string e))
  in
  Mutex.lock box.mu;
  box.promote_req <- None;
  (match res with Ok _ -> box.failed <- false | Error _ -> ());
  box.promoted <- Some res;
  Condition.broadcast box.done_;
  Mutex.unlock box.mu

(* Keys above this sentinel never occur in practice; the paginated copy
   scan uses it as its open upper bound. *)
let scan_hi_sentinel = String.make 32 '\xff'

let started t = Array.length t.workers > 0

(* Push under the mailbox lock, re-checking the slot table for keyed
   requests: a migration flip that completed between routing and this
   lock acquisition moved the key — and the flip holds this same lock
   while swapping the table, so re-checking under it is race-free. The
   re-route loop terminates because [mig_mu] admits one migration at a
   time and each flip moves exactly one slot. *)
let rec submit_queued t i ?key req =
  let box = t.boxes.(i) in
  Mutex.lock box.mu;
  let owner =
    match key with None -> i | Some k -> Shard.route t.store k
  in
  if owner <> i then begin
    Mutex.unlock box.mu;
    submit_queued t owner ?key req
  end
  else if box.stop then begin
    Mutex.unlock box.mu;
    invalid_arg "Serve.submit: pipeline is stopping"
  end
  else begin
    let tk =
      { tk_shard = i; tk_submitted = Spp_benchlib.Bench_util.now_mono ();
        tk_reply = None; tk_pinned = (key = None) }
    in
    Queue.push (req, tk) box.q;
    let d = Queue.length box.q in
    if d > box.peak_q then box.peak_q <- d;
    Condition.signal box.work;
    Mutex.unlock box.mu;
    tk
  end

let submit_prepared t i ?key req =
  let kv = Shard.shard_kv (Shard.shard t.store i) in
  (* Submission-time invalidation: by the time a mutation is visible in
     the mailbox, no later probe — from this client or any other — can
     hit the value it is about to replace. Combined with the stage-time
     invalidation inside the batch, this gives read-your-writes to a
     client that pipelines a put and then a bypassed get. Scans are
     cache-bypassing and touch nothing here. (If the submit re-routes
     after a flip, this invalidated a non-owner's cache — harmless; the
     flip itself invalidated the moved keys there.) *)
  (match req with
   | Put { key; _ } | Remove key -> Spp_pmemkv.Engine.cache_invalidate kv key
   | Get _ | Scan _ -> ());
  (* Read fast path: a cache hit is already durable data (fills only
     come from committed batches), so answer on the submitting thread
     with a pre-fulfilled ticket and never touch the mailbox. *)
  match req with
  | Get gkey when t.bypass ->
    (match Spp_pmemkv.Engine.cache_probe kv gkey with
     | Some v ->
       Atomic.incr t.bypassed;
       { tk_shard = i;
         tk_submitted = Spp_benchlib.Bench_util.now_mono ();
         tk_reply = Some (Value (Some v)); tk_pinned = false }
     | None -> submit_queued t i ?key req)
  | _ -> submit_queued t i ?key req

let submit t req =
  let key = request_key req in
  Atomic.incr t.slot_ops.(Shard.slot_of t.store key);
  submit_prepared t (Shard.route t.store key) ~key req

(* Target one shard explicitly — how a [Scan] (which has no routing
   key: the hash router spreads every range over all shards) enters a
   specific worker's batch stream. No table re-check: the caller chose
   the shard. *)
let submit_to t i req =
  if i < 0 || i >= Shard.nshards t.store then
    invalid_arg "Serve.submit_to: shard index out of range";
  submit_prepared t i req

(* A ticket may be re-pointed at another shard by a migration flip
   while we wait; the flip broadcasts the old box's [done_], so we wake,
   notice the move and chase the ticket to its new box. *)
let await t tk =
  match tk.tk_reply with
  | Some r -> r   (* bypassed get: fulfilled at submission *)
  | None ->
    if not (started t) then
      invalid_arg "Serve.await: pipeline not started (autostart:false)";
    let rec chase () =
      let i = tk.tk_shard in
      let box = t.boxes.(i) in
      Mutex.lock box.mu;
      while tk.tk_reply = None && tk.tk_shard = i do
        Condition.wait box.done_ box.mu
      done;
      let r = tk.tk_reply in
      Mutex.unlock box.mu;
      match r with Some r -> r | None -> chase ()
    in
    chase ()

let peek tk = tk.tk_reply

(* Live slot migration, executed here on the source shard's own worker
   domain between drains (see the module header for the protocol and
   why each phase is race-free). [mig_mu] is held by the initiator for
   the whole call, so at most one migration is in flight. *)
let do_migrate t i box (slot, dst) =
  let res =
    try
      if dst = i then failwith "target is the source shard";
      let sh = Shard.shard t.store i in
      let kv = Shard.shard_kv sh in
      (* Phase 1 — copy: paginate the source engine in key order and
         replay the slot's entries into the target through its normal
         mailbox/batch path. The source queue is frozen (this domain is
         its only consumer), so no copied value can be overwritten on
         the source mid-copy. *)
      let moved = ref [] and nmoved = ref 0 and nbatches = ref 0 in
      let flush chunk =
        match chunk with
        | [] -> ()
        | chunk ->
          let tks =
            List.rev_map
              (fun (key, value) -> submit_to t dst (Put { key; value }))
              chunk
          in
          List.iter
            (fun tk ->
              match await t tk with
              | Done -> ()
              | Failed _ -> failwith "copy batch failed on the target"
              | _ -> assert false)
            tks;
          incr nbatches
      in
      let lo = ref "" and more = ref true in
      while !more do
        let page =
          Spp_pmemkv.Engine.scan kv ~lo:!lo ~hi:scan_hi_sentinel
            ~limit:scan_limit_cap
        in
        (match List.rev page with
         | [] -> more := false
         | (last, _) :: _ ->
           lo := last ^ "\x00";
           if List.length page < scan_limit_cap then more := false);
        let chunk = ref [] and len = ref 0 in
        List.iter
          (fun (k, v) ->
            if Shard.slot_of t.store k = slot then begin
              moved := k :: !moved;
              incr nmoved;
              chunk := (k, v) :: !chunk;
              incr len;
              if !len >= t.batch_cap then begin
                flush !chunk; chunk := []; len := 0
              end
            end)
          page;
        flush !chunk
      done;
      (* Phase 2 — flip: under both mailbox locks, re-point queued
         requests on the slot at the target (in queue order, ahead of
         nothing the target has not already committed — the copy was
         fully acked above), drop the moved keys from the source cache,
         and swap in the new table. Submitters re-check the table under
         the mailbox lock, so after the unlock no slot request can land
         here. *)
      let dbox = t.boxes.(dst) in
      Mutex.lock box.mu;
      Mutex.lock dbox.mu;
      let keep = Queue.create () in
      let nfwd = ref 0 in
      while not (Queue.is_empty box.q) do
        let ((req, tk) as item) = Queue.pop box.q in
        let goes =
          match req with
          | Put { key; _ } | Get key | Remove key ->
            Shard.slot_of t.store key = slot
          | Scan _ -> false
        in
        if goes then begin
          tk.tk_shard <- dst;
          Queue.push item dbox.q;
          incr nfwd
        end
        else Queue.push item keep
      done;
      Queue.transfer keep box.q;
      List.iter (fun k -> Spp_pmemkv.Engine.cache_invalidate kv k) !moved;
      Shard.set_slot_owner t.store ~slot ~shard:dst;
      if !nfwd > 0 then begin
        Condition.signal dbox.work;
        (* wake awaiters parked on this box so they chase their
           forwarded tickets to the target *)
        Condition.broadcast box.done_
      end;
      Mutex.unlock dbox.mu;
      Mutex.unlock box.mu;
      Atomic.set t.forwarded (Atomic.get t.forwarded + !nfwd);
      (* Phase 3 — delete: group-committed remove batches on our own
         engine (this domain owns it). The batch observer fires, so the
         source's replica sees the departures too. The slot already
         routes to the target, so nothing can read these keys here. *)
      let rec delete = function
        | [] -> ()
        | keys ->
          let n = min t.batch_cap (List.length keys) in
          let chunk = Array.make n (Spp_pmemkv.Engine.B_get "") in
          let rest = ref keys in
          for j = 0 to n - 1 do
            (match !rest with
             | k :: tl -> chunk.(j) <- Spp_pmemkv.Engine.B_remove k; rest := tl
             | [] -> assert false)
          done;
          ignore (Spp_pmemkv.Engine.run_batch kv chunk);
          delete !rest
      in
      delete !moved;
      Atomic.incr t.migrations;
      Atomic.set t.keys_moved (Atomic.get t.keys_moved + !nmoved);
      Ok
        { mig_slot = slot; mig_from = i; mig_to = dst; mig_keys = !nmoved;
          mig_batches = !nbatches; mig_forwarded = !nfwd }
    with e -> Error (Printexc.to_string e)
  in
  Mutex.lock box.mu;
  box.migrate_req <- None;
  box.migrated <- Some res;
  Condition.broadcast box.done_;
  Mutex.unlock box.mu

let worker t i =
  let box = t.boxes.(i) in
  let hist = Spp_benchlib.Histogram.create () in
  let ops = ref 0 and batches = ref 0 and max_batch = ref 0 in
  let nfailed = ref 0 in
  let busy = ref 0. in
  let cur = ref 1 in
  (* Per-domain scratch, reused across every drain this worker runs: the
     (request, ticket) buffer and the engine-op buffer are allocated
     once at [batch_cap] and only their first [n] slots are live per
     drain; item slots are reset to [idle] after resolution so
     fulfilled tickets don't outlive their drain. *)
  let idle =
    (Get "",
     { tk_shard = i; tk_submitted = 0.; tk_reply = None; tk_pinned = true })
  in
  let items = Array.make t.batch_cap idle in
  let opbuf = Array.make t.batch_cap (Spp_pmemkv.Engine.B_get "") in
  let running = ref true in
  while !running do
    Mutex.lock box.mu;
    while
      Queue.is_empty box.q && not box.stop && box.promote_req = None
      && box.migrate_req = None
    do
      Condition.wait box.work box.mu
    done;
    match (box.promote_req, box.migrate_req) with
    | Some cap, _ ->
      Mutex.unlock box.mu;
      do_promote t i box cap
    | None, Some mig ->
      Mutex.unlock box.mu;
      do_migrate t i box mig
    | None, None ->
      if Queue.is_empty box.q then begin
        (* stop requested and the queue is drained *)
        Mutex.unlock box.mu;
        running := false
      end
      else begin
        let want = if t.adaptive then !cur else t.batch_cap in
        let n0 = min (Queue.length box.q) (min want t.batch_cap) in
        for j = 0 to n0 - 1 do
          items.(j) <- Queue.pop box.q
        done;
        let backlog = Queue.length box.q in
        let already_failed = box.failed in
        Mutex.unlock box.mu;
        if t.adaptive then
          cur := if backlog > 0 then min (max (2 * !cur) 2) t.batch_cap
                 else max 1 (!cur / 2);
        (* Double-check the drained router-submitted ops against the
           live slot table: a keyed request that raced a migration flip
           is forwarded to its owner's mailbox instead of executing on a
           shard that no longer holds the key. The flip itself re-points
           everything still queued under the lock, so this net only
           catches stragglers. Pinned requests ([submit_to]) are exempt:
           the caller chose the shard — notably the migration copy,
           which targets the shard that does not own the slot yet. *)
        let n =
          let m = ref 0 in
          for j = 0 to n0 - 1 do
            let (req, tk) = items.(j) in
            let owner =
              match req with
              | _ when tk.tk_pinned -> i
              | Put { key; _ } | Get key | Remove key ->
                Shard.route t.store key
              | Scan _ -> i
            in
            if owner = i then begin
              items.(!m) <- items.(j);
              incr m
            end
            else begin
              let obox = t.boxes.(owner) in
              Mutex.lock obox.mu;
              tk.tk_shard <- owner;
              Queue.push (req, tk) obox.q;
              Condition.signal obox.work;
              Mutex.unlock obox.mu;
              Atomic.incr t.forwarded
            end
          done;
          !m
        in
        (if n = 0 then ()
         else if already_failed then
           (* dead primary, not yet promoted: nothing to execute on *)
           resolve box hist nfailed items n (fun _ -> Failed Failed_over)
         else begin
          (* re-resolve the stack each drain: [promote] may have swapped
             it since the last one *)
          let sh = Shard.shard t.store i in
          let kv = Shard.shard_kv sh in
          let dev =
            Spp_pmdk.Pool.dev (Shard.shard_access sh).Spp_access.pool
          in
          for j = 0 to n - 1 do
            opbuf.(j) <- to_engine_op (fst items.(j))
          done;
          let t0 = Spp_benchlib.Bench_util.now_mono () in
          match Spp_pmemkv.Engine.run_batch kv ~len:n opbuf with
          | exception e ->
            busy := !busy +. (Spp_benchlib.Bench_util.now_mono () -. t0);
            if Spp_sim.Memdev.is_powered_off dev then begin
              Mutex.lock box.mu;
              box.failed <- true;
              Mutex.unlock box.mu;
              resolve box hist nfailed items n (fun _ -> Failed Failed_over)
            end
            else
              (* the op's own failure: the abandoned batch staged only
                 volatile state, so the shard keeps serving *)
              resolve box hist nfailed items n
                (fun _ -> Failed (Op_raised (Printexc.to_string e)))
          | replies ->
            busy := !busy +. (Spp_benchlib.Bench_util.now_mono () -. t0);
            if Spp_sim.Memdev.is_powered_off dev then begin
              (* the device died under the batch: its stores were
                 silently discarded, so the "commit" is not durable —
                 never ack it *)
              Mutex.lock box.mu;
              box.failed <- true;
              Mutex.unlock box.mu;
              resolve box hist nfailed items n (fun _ -> Failed Failed_over)
            end
            else begin
              (* gate the acks on the replication policy *)
              (match t.repl.(i) with
               | Some g when not (Replica.sealed g) ->
                 Replica.heartbeat g;
                 Replica.wait_acks g
               | _ -> ());
              resolve box hist nfailed items n
                (fun j -> of_engine_reply replies.(j));
              ops := !ops + n;
              incr batches;
              if n > !max_batch then max_batch := n
            end
        end);
        (* release resolved tickets to the GC before the next drain *)
        Array.fill items 0 n0 idle;
        (* publish live accounting (monotone snapshots for observers:
           the rebalancer's busy windows, sppctl's stats table) *)
        Atomic.set t.live_ops.(i) !ops;
        Atomic.set t.live_busy.(i) !busy
      end
  done;
  t.results.(i) <-
    { ss_shard = i; ss_ops = !ops; ss_batches = !batches;
      ss_max_batch = !max_batch; ss_failed = !nfailed; ss_busy = !busy;
      ss_hist = hist }

let mk_box () =
  { mu = Mutex.create (); work = Condition.create ();
    done_ = Condition.create (); q = Queue.create (); peak_q = 0;
    stop = false; failed = false; promote_req = None; promoted = None;
    migrate_req = None; migrated = None }

let start t =
  if t.stopped then invalid_arg "Serve.start: pipeline already stopped";
  if not (started t) then
    t.workers <-
      Array.init (Shard.nshards t.store) (fun i ->
        Domain.spawn (fun () -> worker t i))

let create ?(batch_cap = 32) ?(adaptive = true) ?(autostart = true)
    ?replication store =
  if batch_cap <= 0 then invalid_arg "Serve.create: batch_cap must be positive";
  let n = Shard.nshards store in
  let t =
    { store; boxes = Array.init n (fun _ -> mk_box ());
      repl =
        (match replication with
         | None -> Array.make n None
         | Some cfg ->
           (* One group per shard, installed before any batched traffic:
              the replica images snapshot the store as preloaded. *)
           Array.init n (fun i ->
             let pool =
               (Shard.shard_access (Shard.shard store i)).Spp_access.pool
             in
             Some
               (Replica.create ~cfg ~engine:(Shard.engine store) ~shard:i
                  pool)));
      batch_cap; adaptive;
      (* The read fast path answers a cache-hit [Get] on the submitting
         thread, skipping the mailbox and the worker domain. It is safe
         from any domain — the probe touches only the volatile Rcache,
         never the shard's single-domain simulator state — but it makes
         batch boundaries depend on cache contents, so deterministic
         mode ([adaptive = false], the differential-test configuration)
         keeps every request on the mailbox path. *)
      bypass = adaptive && Shard.cache_enabled store;
      bypassed = Atomic.make 0;
      promotions = Atomic.make 0;
      mig_mu = Mutex.create ();
      slot_ops = Array.init (Shard.nslots store) (fun _ -> Atomic.make 0);
      live_ops = Array.init n (fun _ -> Atomic.make 0);
      live_busy = Array.init n (fun _ -> Atomic.make 0.);
      migrations = Atomic.make 0;
      forwarded = Atomic.make 0;
      keys_moved = Atomic.make 0;
      workers = [||];
      results =
        Array.init n (fun i ->
          { ss_shard = i; ss_ops = 0; ss_batches = 0; ss_max_batch = 0;
            ss_failed = 0; ss_busy = 0.;
            ss_hist = Spp_benchlib.Histogram.create () });
      stopped = false }
  in
  if autostart then start t;
  t

(* Scatter-gather ordered scan: one [Scan] request per shard rides the
   normal mailbox/batch path (so it group-commits with the writes
   around it and observes exactly the committed prefix), then the
   per-shard sorted slices merge on the calling domain. The whole scan
   holds [mig_mu], so no flip can move a slot between the slices — a
   key is reported by exactly the shard that owns it for the whole
   scan; slices are ownership-filtered anyway so leftover copies from
   a failed migration can never double-report. A shard that failed
   over mid-scan surfaces as [Error]. *)
let scan t ~lo ~hi ~limit =
  let limit = max 0 (min limit scan_limit_cap) in
  let req = Scan { lo; hi; limit } in
  Mutex.lock t.mig_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mig_mu) @@ fun () ->
  let tks =
    Array.init (Shard.nshards t.store) (fun i -> submit_to t i req)
  in
  let slices = Array.map (fun tk -> await t tk) tks in
  let assign = Shard.assignment t.store in
  let ok = ref [] and failed = ref None in
  Array.iteri
    (fun i r ->
      match r with
      | Scanned kvs ->
        ok :=
          List.filter (fun (k, _) -> assign.(Shard.slot_of t.store k) = i) kvs
          :: !ok
      | Failed f -> if !failed = None then failed := Some f
      | _ -> ())
    slices;
  match !failed with
  | Some f -> Error f
  | None -> Ok (Spp_pmemkv.Engine.merge_scans ~limit !ok)

let bypassed_gets t = Atomic.get t.bypassed

let cache_stats t = Shard.merged_cache_stats t.store

(* ------------------------------------------------------------------ *)
(* Resharding                                                          *)
(* ------------------------------------------------------------------ *)

exception Migration_failed of { slot : int; reason : string }

let () =
  Printexc.register_printer (function
    | Migration_failed { slot; reason } ->
      Some
        (Printf.sprintf "Serve.Migration_failed: slot %d: %s" slot reason)
    | _ -> None)

(* Ask the slot's current owner to migrate it to [dst], and wait. The
   owner's worker performs copy -> flip -> delete between drains (see
   [do_migrate]); [mig_mu] is held across the whole call, so migrations
   are serialized and whole-store scans never straddle a flip. *)
let migrate_slot t ~slot ~dst =
  if slot < 0 || slot >= Shard.nslots t.store then
    invalid_arg "Serve.migrate_slot: slot out of range";
  if dst < 0 || dst >= Shard.nshards t.store then
    invalid_arg "Serve.migrate_slot: target shard out of range";
  if not (started t) then
    invalid_arg "Serve.migrate_slot: pipeline not started";
  if t.stopped then invalid_arg "Serve.migrate_slot: pipeline stopped";
  Mutex.lock t.mig_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mig_mu) @@ fun () ->
  let src = Shard.owner t.store slot in
  if src = dst then
    { mig_slot = slot; mig_from = src; mig_to = dst; mig_keys = 0;
      mig_batches = 0; mig_forwarded = 0 }
  else begin
    let box = t.boxes.(src) in
    Mutex.lock box.mu;
    box.migrated <- None;
    box.migrate_req <- Some (slot, dst);
    Condition.signal box.work;
    while box.migrated = None do
      Condition.wait box.done_ box.mu
    done;
    let res = box.migrated in
    box.migrated <- None;
    Mutex.unlock box.mu;
    match res with
    | Some (Ok r) -> r
    | Some (Error reason) -> raise (Migration_failed { slot; reason })
    | None -> assert false
  end

let migrations t = Atomic.get t.migrations
let forwarded t = Atomic.get t.forwarded
let keys_moved t = Atomic.get t.keys_moved

let slot_op_counts t = Array.map Atomic.get t.slot_ops
let ops_counts t = Array.map Atomic.get t.live_ops
let busy_times t = Array.map Atomic.get t.live_busy

let queue_depths t =
  Array.map
    (fun b ->
      Mutex.lock b.mu;
      let d = Queue.length b.q in
      Mutex.unlock b.mu;
      d)
    t.boxes

let peak_queue_depths t =
  Array.map
    (fun b ->
      Mutex.lock b.mu;
      let d = b.peak_q in
      Mutex.unlock b.mu;
      d)
    t.boxes

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)
(* ------------------------------------------------------------------ *)

let shard_failed t i = t.boxes.(i).failed

let promotions t = Atomic.get t.promotions

let replicated t i = t.repl.(i) <> None

(* Ask shard [i]'s worker to promote a replica, and wait for it. The
   worker performs the swap between drains; requests queued meanwhile
   resolve [Failed Failed_over] (dead primary) or execute normally (live
   primary being drained away from). *)
let promote ?(cache_cap = 0) t i =
  if i < 0 || i >= Shard.nshards t.store then
    invalid_arg "Serve.promote: shard index out of range";
  if t.repl.(i) = None then raise (Not_replicated i);
  if not (started t) then
    invalid_arg "Serve.promote: pipeline not started";
  if t.stopped then invalid_arg "Serve.promote: pipeline already stopped";
  let box = t.boxes.(i) in
  Mutex.lock box.mu;
  box.promoted <- None;
  box.promote_req <- Some cache_cap;
  Condition.signal box.work;
  while box.promoted = None do
    Condition.wait box.done_ box.mu
  done;
  let res = box.promoted in
  Mutex.unlock box.mu;
  match res with
  | Some (Ok p) -> p
  | Some (Error reason) ->
    raise (Replica.Promotion_failed { shard = i; reason })
  | None -> assert false

let replication_stats t =
  Array.to_list t.repl
  |> List.filter_map (Option.map Replica.stats)

let replication_lag t =
  Array.fold_left
    (fun acc g ->
      match g with
      | None -> acc
      | Some g -> Spp_benchlib.Histogram.merge acc (Replica.lag_hist g))
    (Spp_benchlib.Histogram.create ())
    t.repl

(* Drain everything still queued, then join the workers. Safe to call
   once; afterwards [stats]/[merged_*] read race-free. *)
let stop t =
  if not t.stopped then begin
    if not (started t) then start t;
    Array.iter
      (fun box ->
        Mutex.lock box.mu;
        box.stop <- true;
        Condition.broadcast box.work;
        Mutex.unlock box.mu)
      t.boxes;
    Array.iter Domain.join t.workers;
    (* join the applier domains too: lag histograms read race-free *)
    Array.iter
      (function
        | Some g when not (Replica.sealed g) -> Replica.seal g
        | _ -> ())
      t.repl;
    t.stopped <- true
  end

let stats t =
  if not t.stopped then invalid_arg "Serve.stats: stop the pipeline first";
  Array.copy t.results

let merged_hist t =
  Array.fold_left
    (fun acc s -> Spp_benchlib.Histogram.merge acc s.ss_hist)
    (Spp_benchlib.Histogram.create ())
    (stats t)

let total_batches t =
  Array.fold_left (fun a s -> a + s.ss_batches) 0 (stats t)

let total_failed t =
  Array.fold_left (fun a s -> a + s.ss_failed) 0 (stats t)

let store t = t.store

(* ------------------------------------------------------------------ *)
(* Deterministic baseline + reply digests for the differential          *)
(* ------------------------------------------------------------------ *)

(* The same per-shard request streams executed synchronously on the
   calling domain, chunked at exactly [batch_cap], through the identical
   group-commit path. Against a [create ~adaptive:false ~autostart:false]
   pipeline that was fully pre-enqueued before [start], batch boundaries
   match, so replies, Space stats and Memdev counters must all be
   bit-identical. *)
let run_sequential ?(use_cache = true) store ~batch_cap streams =
  if Array.length streams <> Shard.nshards store then
    invalid_arg "Serve.run_sequential: stream count <> shard count";
  Array.mapi
    (fun i reqs ->
      let kv = Shard.shard_kv (Shard.shard store i) in
      let cached = use_cache && Spp_pmemkv.Engine.cache kv <> None in
      let n = Array.length reqs in
      let out = Array.make n Done in
      let pos = ref 0 in
      while !pos < n do
        (* Chunk boundaries sit at fixed *request* positions, whether or
           not some gets get peeled off by the cache below — so the
           partition of mutations into group commits, and with it every
           Memdev counter, is a pure function of the request stream,
           identical cache-on and cache-off. (Gets stage no redo
           entries, so peeling them changes no fence schedule either.) *)
        let len = min batch_cap (n - !pos) in
        if not cached then begin
          let chunk =
            Array.init len (fun j -> to_engine_op reqs.(!pos + j))
          in
          let replies = Spp_pmemkv.Engine.run_batch kv chunk in
          Array.iteri (fun j r -> out.(!pos + j) <- of_engine_reply r) replies
        end
        else begin
          (* Peel cache-hit gets in request order. A mutation must
             invalidate *at collection time*: a later same-chunk get
             would otherwise hit the pre-mutation cached value instead
             of observing the staged op inside the batch. *)
          let kept = ref [] and nkept = ref 0 in
          for j = 0 to len - 1 do
            let idx = !pos + j in
            match reqs.(idx) with
            | Get key as r ->
              (match Spp_pmemkv.Engine.cache_probe kv key with
               | Some v -> out.(idx) <- Value (Some v)
               | None -> kept := (idx, to_engine_op r) :: !kept; incr nkept)
            | (Put { key; _ } | Remove key) as r ->
              Spp_pmemkv.Engine.cache_invalidate kv key;
              kept := (idx, to_engine_op r) :: !kept; incr nkept
            | Scan _ as r ->
              (* cache-bypassing: always executes in the batch *)
              kept := (idx, to_engine_op r) :: !kept; incr nkept
          done;
          if !nkept > 0 then begin
            let kept = Array.of_list (List.rev !kept) in
            let replies =
              Spp_pmemkv.Engine.run_batch kv (Array.map snd kept)
            in
            Array.iteri
              (fun j r -> out.(fst kept.(j)) <- of_engine_reply r)
              replies
          end
        end;
        pos := !pos + len
      done;
      out)
    streams

(* Order-sensitive digest of a reply stream, same spirit as
   [Shard_bench.signature]: two executions agree only if every reply
   matched in order and shape. *)
let digest_replies replies =
  let d = ref 0x1505 in
  let mix v = d := (!d * 0x01000193) lxor v in
  Array.iter
    (fun r ->
      match r with
      | Done -> mix 1
      | Value (Some v) -> mix (String.length v + Char.code v.[0])
      | Value None -> mix 0x7F
      | Removed true -> mix 3
      | Removed false -> mix 0x3F
      | Scanned kvs ->
        mix 0x5C;
        List.iter
          (fun (k, v) ->
            mix (String.length k + Char.code k.[0]);
            mix (String.length v + (if v = "" then 0 else Char.code v.[0])))
          kvs
      | Failed (Op_raised _) -> mix 0x11
      | Failed Failed_over -> mix 0x13)
    replies;
  !d land max_int

(* ------------------------------------------------------------------ *)
(* Pretty-printing (divergence reports, sppctl)                        *)
(* ------------------------------------------------------------------ *)

let pp_request ppf = function
  | Put { key; value } ->
    Format.fprintf ppf "Put(%s, %dB)" key (String.length value)
  | Get key -> Format.fprintf ppf "Get(%s)" key
  | Remove key -> Format.fprintf ppf "Remove(%s)" key
  | Scan { lo; hi; limit } ->
    Format.fprintf ppf "Scan(%s..%s, limit %d)" lo hi limit

let pp_reply ppf = function
  | Done -> Format.pp_print_string ppf "Done"
  | Value (Some v) -> Format.fprintf ppf "Value(%dB)" (String.length v)
  | Value None -> Format.pp_print_string ppf "Value(none)"
  | Removed b -> Format.fprintf ppf "Removed(%b)" b
  | Scanned kvs ->
    (match (kvs, List.rev kvs) with
     | [], _ | _, [] -> Format.pp_print_string ppf "Scanned(0 entries)"
     | (first, _) :: _, (last, _) :: _ ->
       Format.fprintf ppf "Scanned(%d entries, %s..%s)" (List.length kvs)
         first last)
  | Failed (Op_raised e) -> Format.fprintf ppf "Failed(op raised: %s)" e
  | Failed Failed_over -> Format.pp_print_string ppf "Failed(failed over)"
