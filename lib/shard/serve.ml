(* Asynchronous batched serving pipeline over the shard stack.

   One MPSC mailbox per shard (Mutex/Condition, any submitter, one
   consumer); one worker Domain per shard drains it and executes the
   drained requests through [Cmap.run_batch], so the whole drain rides a
   single group-committed redo log (see [Redo.batch]) — the fence
   schedule that a synchronous routed put pays per operation is paid
   once per batch. Each request carries a promise-like ticket: the
   worker fulfils it after the batch's commit returns, which is exactly
   when the op is durable, and records the submission-to-fulfilment
   latency into a shard-local histogram.

   Batching is adaptive: the drain size doubles while a backlog remains
   after a drain (queue pressure) up to [batch_cap], and halves when a
   drain empties the queue (idle). With [adaptive = false] every drain
   takes exactly [batch_cap] requests when available — combined with
   pre-enqueueing ([autostart:false] then [start]) this makes batch
   boundaries, and therefore every Space/Memdev counter, a pure
   function of the submitted streams: the property the
   parallel-vs-sequential differential asserts.

   Crash atomicity is per op, not per batch: recovery lands on a prefix
   of whole operations of the interrupted batch (torture workload
   "kvbatch" enumerates exactly this). Acks are stronger — a fulfilled
   ticket means the op's sub-batch committed.

   Failure semantics: a ticket resolves to [Failed] instead of hanging.
   An op that raises fails its whole drain with [Op_raised] but leaves
   the shard serving (the abandoned batch staged only volatile state;
   locks unwind via [Fun.protect]). A primary whose device died —
   [Memdev.power_off], the kill the failover torture injects — fails
   the drain and every later request on that shard with [Failed_over]
   until [promote] swaps in a replica stack. A [Failed] reply means the
   op's outcome is unknown, not that it didn't happen: sub-batches that
   committed before the failure are durable (and replicated), the rest
   are not — standard failover ambiguity, resolved by the client
   re-reading.

   Replication rides the batch observer, so it sees exactly the batched
   mutations: with [?replication] configured, all writes must flow
   through this pipeline (the synchronous [Shard.put] tx path is
   invisible to replicas). Workers gate ticket fulfilment on
   [Replica.wait_acks] per the configured policy and run one heartbeat
   round per drain; [promote] executes on the failed shard's own worker
   domain — the only domain allowed inside the old stack — then repoints
   the router via [Shard.set_shard]. *)

type request =
  | Put of { key : string; value : string }
  | Get of string
  | Remove of string
  | Scan of { lo : string; hi : string; limit : int }

type failure =
  | Op_raised of string   (* an op raised; outcome of the drain unknown *)
  | Failed_over           (* primary died; resubmit after promotion *)

type reply =
  | Done                     (* put committed *)
  | Value of string option   (* get result *)
  | Removed of bool
  | Scanned of (string * string) list   (* ordered, <= the clamped limit *)
  | Failed of failure        (* op not acked; outcome unknown *)

(* Every scan reply is clamped to this many pairs, whatever limit the
   client asked for — the reply is a materialized list and the worker
   holds the shard for the whole batch. *)
let scan_limit_cap = 4096

exception Not_replicated of int

let () =
  Printexc.register_printer (function
    | Not_replicated i ->
      Some
        (Printf.sprintf
           "Serve.Not_replicated: shard %d has no replication group" i)
    | _ -> None)

let request_key = function
  | Put { key; _ } | Get key | Remove key -> key
  | Scan _ ->
    (* a range spans every shard; route scans with [scan] or target one
       shard with [submit_to] *)
    invalid_arg "Serve.request_key: Scan has no routing key"

type ticket = {
  tk_shard : int;
  tk_submitted : float;              (* monotonic seconds *)
  mutable tk_reply : reply option;   (* written under the mailbox lock *)
}

type mailbox = {
  mu : Mutex.t;
  work : Condition.t;   (* signaled on submit, stop, promote *)
  done_ : Condition.t;  (* broadcast on fulfilment; awaiters wait *)
  q : (request * ticket) Queue.t;
  mutable stop : bool;
  mutable failed : bool;   (* device died: fail drains until promotion *)
  mutable promote_req : int option;   (* Some cache_cap: promote now *)
  mutable promoted : (Replica.promoted, string) result option;
}

type shard_stats = {
  ss_shard : int;
  ss_ops : int;
  ss_batches : int;
  ss_max_batch : int;
  ss_failed : int;                      (* tickets resolved [Failed] *)
  ss_hist : Spp_benchlib.Histogram.t;   (* latency, ns *)
}

type t = {
  store : Shard.t;
  boxes : mailbox array;
  repl : Replica.t option array;   (* one group per shard, if configured *)
  batch_cap : int;
  adaptive : bool;
  bypass : bool;            (* answer cache-hit gets on the submitter *)
  bypassed : int Atomic.t;  (* gets that never saw a mailbox *)
  promotions : int Atomic.t;
  mutable workers : unit Domain.t array;
  mutable results : shard_stats array;   (* valid after [stop] *)
  mutable stopped : bool;
}

let to_engine_op = function
  | Put { key; value } -> Spp_pmemkv.Engine.B_put { key; value }
  | Get key -> Spp_pmemkv.Engine.B_get key
  | Remove key -> Spp_pmemkv.Engine.B_remove key
  | Scan { lo; hi; limit } ->
    Spp_pmemkv.Engine.B_scan
      { lo; hi; limit = max 0 (min limit scan_limit_cap) }

let of_engine_reply = function
  | Spp_pmemkv.Engine.R_put -> Done
  | Spp_pmemkv.Engine.R_get v -> Value v
  | Spp_pmemkv.Engine.R_removed b -> Removed b
  | Spp_pmemkv.Engine.R_scan kvs -> Scanned kvs

(* Resolve a drain's tickets — the first [n] slots of the worker's
   scratch buffer. [Failed] still records latency — a failed op occupied
   the pipeline for that long. *)
let resolve box hist nfailed items n replies =
  let now = Spp_benchlib.Bench_util.now_mono () in
  Mutex.lock box.mu;
  for j = 0 to n - 1 do
    let (_, tk) = items.(j) in
    let r = replies j in
    (match r with Failed _ -> incr nfailed | _ -> ());
    tk.tk_reply <- Some r;
    Spp_benchlib.Histogram.add hist
      (int_of_float ((now -. tk.tk_submitted) *. 1e9))
  done;
  Condition.broadcast box.done_;
  Mutex.unlock box.mu

(* Promotion runs here, on the shard's own worker domain — the one
   domain allowed inside the old stack — so the router swap can never
   race a drain. The sealed group stays in [t.repl] for post-mortem
   stats; [Replica.sealed] keeps it off the ack path. *)
let do_promote t i box cache_cap =
  let res =
    match t.repl.(i) with
    | None -> Error "no replication group"
    | Some g ->
      (try
         let p = Replica.promote ~cache_cap g in
         Shard.set_shard t.store i ~access:p.Replica.pr_access
           ~kv:p.Replica.pr_kv;
         Atomic.incr t.promotions;
         Ok p
       with
       | Replica.Promotion_failed { reason; _ } -> Error reason
       | e -> Error (Printexc.to_string e))
  in
  Mutex.lock box.mu;
  box.promote_req <- None;
  (match res with Ok _ -> box.failed <- false | Error _ -> ());
  box.promoted <- Some res;
  Condition.broadcast box.done_;
  Mutex.unlock box.mu

let worker t i =
  let box = t.boxes.(i) in
  let hist = Spp_benchlib.Histogram.create () in
  let ops = ref 0 and batches = ref 0 and max_batch = ref 0 in
  let nfailed = ref 0 in
  let cur = ref 1 in
  (* Per-domain scratch, reused across every drain this worker runs: the
     (request, ticket) buffer is allocated once at [batch_cap] and only
     its first [n] slots are live per drain; slots are reset to [idle]
     after resolution so fulfilled tickets don't outlive their drain. *)
  let idle =
    (Get "", { tk_shard = i; tk_submitted = 0.; tk_reply = None })
  in
  let items = Array.make t.batch_cap idle in
  let running = ref true in
  while !running do
    Mutex.lock box.mu;
    while Queue.is_empty box.q && not box.stop && box.promote_req = None do
      Condition.wait box.work box.mu
    done;
    match box.promote_req with
    | Some cap ->
      Mutex.unlock box.mu;
      do_promote t i box cap
    | None ->
      if Queue.is_empty box.q then begin
        (* stop requested and the queue is drained *)
        Mutex.unlock box.mu;
        running := false
      end
      else begin
        let want = if t.adaptive then !cur else t.batch_cap in
        let n = min (Queue.length box.q) (min want t.batch_cap) in
        for j = 0 to n - 1 do
          items.(j) <- Queue.pop box.q
        done;
        let backlog = Queue.length box.q in
        let already_failed = box.failed in
        Mutex.unlock box.mu;
        if t.adaptive then
          cur := if backlog > 0 then min (max (2 * !cur) 2) t.batch_cap
                 else max 1 (!cur / 2);
        (if already_failed then
           (* dead primary, not yet promoted: nothing to execute on *)
           resolve box hist nfailed items n (fun _ -> Failed Failed_over)
         else begin
          (* re-resolve the stack each drain: [promote] may have swapped
             it since the last one *)
          let sh = Shard.shard t.store i in
          let kv = Shard.shard_kv sh in
          let dev =
            Spp_pmdk.Pool.dev (Shard.shard_access sh).Spp_access.pool
          in
          match
            Spp_pmemkv.Engine.run_batch kv
              (Array.init n (fun j -> to_engine_op (fst items.(j))))
          with
          | exception e ->
            if Spp_sim.Memdev.is_powered_off dev then begin
              Mutex.lock box.mu;
              box.failed <- true;
              Mutex.unlock box.mu;
              resolve box hist nfailed items n (fun _ -> Failed Failed_over)
            end
            else
              (* the op's own failure: the abandoned batch staged only
                 volatile state, so the shard keeps serving *)
              resolve box hist nfailed items n
                (fun _ -> Failed (Op_raised (Printexc.to_string e)))
          | replies ->
            if Spp_sim.Memdev.is_powered_off dev then begin
              (* the device died under the batch: its stores were
                 silently discarded, so the "commit" is not durable —
                 never ack it *)
              Mutex.lock box.mu;
              box.failed <- true;
              Mutex.unlock box.mu;
              resolve box hist nfailed items n (fun _ -> Failed Failed_over)
            end
            else begin
              (* gate the acks on the replication policy *)
              (match t.repl.(i) with
               | Some g when not (Replica.sealed g) ->
                 Replica.heartbeat g;
                 Replica.wait_acks g
               | _ -> ());
              resolve box hist nfailed items n
                (fun j -> of_engine_reply replies.(j));
              ops := !ops + n;
              incr batches;
              if n > !max_batch then max_batch := n
            end
        end);
        (* release resolved tickets to the GC before the next drain *)
        Array.fill items 0 n idle
      end
  done;
  t.results.(i) <-
    { ss_shard = i; ss_ops = !ops; ss_batches = !batches;
      ss_max_batch = !max_batch; ss_failed = !nfailed; ss_hist = hist }

let mk_box () =
  { mu = Mutex.create (); work = Condition.create ();
    done_ = Condition.create (); q = Queue.create (); stop = false;
    failed = false; promote_req = None; promoted = None }

let started t = Array.length t.workers > 0

let start t =
  if t.stopped then invalid_arg "Serve.start: pipeline already stopped";
  if not (started t) then
    t.workers <-
      Array.init (Shard.nshards t.store) (fun i ->
        Domain.spawn (fun () -> worker t i))

let create ?(batch_cap = 32) ?(adaptive = true) ?(autostart = true)
    ?replication store =
  if batch_cap <= 0 then invalid_arg "Serve.create: batch_cap must be positive";
  let n = Shard.nshards store in
  let t =
    { store; boxes = Array.init n (fun _ -> mk_box ());
      repl =
        (match replication with
         | None -> Array.make n None
         | Some cfg ->
           (* One group per shard, installed before any batched traffic:
              the replica images snapshot the store as preloaded. *)
           Array.init n (fun i ->
             let pool =
               (Shard.shard_access (Shard.shard store i)).Spp_access.pool
             in
             Some
               (Replica.create ~cfg ~engine:(Shard.engine store) ~shard:i
                  pool)));
      batch_cap; adaptive;
      (* The read fast path answers a cache-hit [Get] on the submitting
         thread, skipping the mailbox and the worker domain. It is safe
         from any domain — the probe touches only the volatile Rcache,
         never the shard's single-domain simulator state — but it makes
         batch boundaries depend on cache contents, so deterministic
         mode ([adaptive = false], the differential-test configuration)
         keeps every request on the mailbox path. *)
      bypass = adaptive && Shard.cache_enabled store;
      bypassed = Atomic.make 0;
      promotions = Atomic.make 0;
      workers = [||];
      results =
        Array.init n (fun i ->
          { ss_shard = i; ss_ops = 0; ss_batches = 0; ss_max_batch = 0;
            ss_failed = 0; ss_hist = Spp_benchlib.Histogram.create () });
      stopped = false }
  in
  if autostart then start t;
  t

let shard_of t req = Shard.route t.store (request_key req)

let submit_queued t i req =
  let box = t.boxes.(i) in
  let tk =
    { tk_shard = i; tk_submitted = Spp_benchlib.Bench_util.now_mono ();
      tk_reply = None }
  in
  Mutex.lock box.mu;
  if box.stop then begin
    Mutex.unlock box.mu;
    invalid_arg "Serve.submit: pipeline is stopping"
  end;
  Queue.push (req, tk) box.q;
  Condition.signal box.work;
  Mutex.unlock box.mu;
  tk

let submit_prepared t i req =
  let kv = Shard.shard_kv (Shard.shard t.store i) in
  (* Submission-time invalidation: by the time a mutation is visible in
     the mailbox, no later probe — from this client or any other — can
     hit the value it is about to replace. Combined with the stage-time
     invalidation inside the batch, this gives read-your-writes to a
     client that pipelines a put and then a bypassed get. Scans are
     cache-bypassing and touch nothing here. *)
  (match req with
   | Put { key; _ } | Remove key -> Spp_pmemkv.Engine.cache_invalidate kv key
   | Get _ | Scan _ -> ());
  (* Read fast path: a cache hit is already durable data (fills only
     come from committed batches), so answer on the submitting thread
     with a pre-fulfilled ticket and never touch the mailbox. *)
  match req with
  | Get key when t.bypass ->
    (match Spp_pmemkv.Engine.cache_probe kv key with
     | Some v ->
       Atomic.incr t.bypassed;
       { tk_shard = i;
         tk_submitted = Spp_benchlib.Bench_util.now_mono ();
         tk_reply = Some (Value (Some v)) }
     | None -> submit_queued t i req)
  | _ -> submit_queued t i req

let submit t req = submit_prepared t (shard_of t req) req

(* Target one shard explicitly — how a [Scan] (which has no routing
   key: the hash router spreads every range over all shards) enters a
   specific worker's batch stream. *)
let submit_to t i req =
  if i < 0 || i >= Shard.nshards t.store then
    invalid_arg "Serve.submit_to: shard index out of range";
  submit_prepared t i req

let await t tk =
  match tk.tk_reply with
  | Some r -> r   (* bypassed get: fulfilled at submission *)
  | None ->
    if not (started t) then
      invalid_arg "Serve.await: pipeline not started (autostart:false)";
    let box = t.boxes.(tk.tk_shard) in
    Mutex.lock box.mu;
    while tk.tk_reply = None do
      Condition.wait box.done_ box.mu
    done;
    Mutex.unlock box.mu;
    (match tk.tk_reply with Some r -> r | None -> assert false)

let peek tk = tk.tk_reply

(* Scatter-gather ordered scan: one [Scan] request per shard rides the
   normal mailbox/batch path (so it group-commits with the writes
   around it and observes exactly the committed prefix), then the
   per-shard sorted slices merge on the calling domain. A shard that
   failed over mid-scan surfaces as [Error]. *)
let scan t ~lo ~hi ~limit =
  let limit = max 0 (min limit scan_limit_cap) in
  let req = Scan { lo; hi; limit } in
  let tks =
    Array.init (Shard.nshards t.store) (fun i -> submit_to t i req)
  in
  let slices = Array.map (fun tk -> await t tk) tks in
  let ok = ref [] and failed = ref None in
  Array.iter
    (fun r ->
      match r with
      | Scanned kvs -> ok := kvs :: !ok
      | Failed f -> if !failed = None then failed := Some f
      | _ -> ())
    slices;
  match !failed with
  | Some f -> Error f
  | None -> Ok (Spp_pmemkv.Engine.merge_scans ~limit !ok)

let bypassed_gets t = Atomic.get t.bypassed

let cache_stats t = Shard.merged_cache_stats t.store

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)
(* ------------------------------------------------------------------ *)

let shard_failed t i = t.boxes.(i).failed

let promotions t = Atomic.get t.promotions

let replicated t i = t.repl.(i) <> None

(* Ask shard [i]'s worker to promote a replica, and wait for it. The
   worker performs the swap between drains; requests queued meanwhile
   resolve [Failed Failed_over] (dead primary) or execute normally (live
   primary being drained away from). *)
let promote ?(cache_cap = 0) t i =
  if i < 0 || i >= Shard.nshards t.store then
    invalid_arg "Serve.promote: shard index out of range";
  if t.repl.(i) = None then raise (Not_replicated i);
  if not (started t) then
    invalid_arg "Serve.promote: pipeline not started";
  if t.stopped then invalid_arg "Serve.promote: pipeline already stopped";
  let box = t.boxes.(i) in
  Mutex.lock box.mu;
  box.promoted <- None;
  box.promote_req <- Some cache_cap;
  Condition.signal box.work;
  while box.promoted = None do
    Condition.wait box.done_ box.mu
  done;
  let res = box.promoted in
  Mutex.unlock box.mu;
  match res with
  | Some (Ok p) -> p
  | Some (Error reason) ->
    raise (Replica.Promotion_failed { shard = i; reason })
  | None -> assert false

let replication_stats t =
  Array.to_list t.repl
  |> List.filter_map (Option.map Replica.stats)

let replication_lag t =
  Array.fold_left
    (fun acc g ->
      match g with
      | None -> acc
      | Some g -> Spp_benchlib.Histogram.merge acc (Replica.lag_hist g))
    (Spp_benchlib.Histogram.create ())
    t.repl

(* Drain everything still queued, then join the workers. Safe to call
   once; afterwards [stats]/[merged_*] read race-free. *)
let stop t =
  if not t.stopped then begin
    if not (started t) then start t;
    Array.iter
      (fun box ->
        Mutex.lock box.mu;
        box.stop <- true;
        Condition.broadcast box.work;
        Mutex.unlock box.mu)
      t.boxes;
    Array.iter Domain.join t.workers;
    (* join the applier domains too: lag histograms read race-free *)
    Array.iter
      (function
        | Some g when not (Replica.sealed g) -> Replica.seal g
        | _ -> ())
      t.repl;
    t.stopped <- true
  end

let stats t =
  if not t.stopped then invalid_arg "Serve.stats: stop the pipeline first";
  Array.copy t.results

let merged_hist t =
  Array.fold_left
    (fun acc s -> Spp_benchlib.Histogram.merge acc s.ss_hist)
    (Spp_benchlib.Histogram.create ())
    (stats t)

let total_batches t =
  Array.fold_left (fun a s -> a + s.ss_batches) 0 (stats t)

let total_failed t =
  Array.fold_left (fun a s -> a + s.ss_failed) 0 (stats t)

let store t = t.store

(* ------------------------------------------------------------------ *)
(* Deterministic baseline + reply digests for the differential          *)
(* ------------------------------------------------------------------ *)

(* The same per-shard request streams executed synchronously on the
   calling domain, chunked at exactly [batch_cap], through the identical
   group-commit path. Against a [create ~adaptive:false ~autostart:false]
   pipeline that was fully pre-enqueued before [start], batch boundaries
   match, so replies, Space stats and Memdev counters must all be
   bit-identical. *)
let run_sequential ?(use_cache = true) store ~batch_cap streams =
  if Array.length streams <> Shard.nshards store then
    invalid_arg "Serve.run_sequential: stream count <> shard count";
  Array.mapi
    (fun i reqs ->
      let kv = Shard.shard_kv (Shard.shard store i) in
      let cached = use_cache && Spp_pmemkv.Engine.cache kv <> None in
      let n = Array.length reqs in
      let out = Array.make n Done in
      let pos = ref 0 in
      while !pos < n do
        (* Chunk boundaries sit at fixed *request* positions, whether or
           not some gets get peeled off by the cache below — so the
           partition of mutations into group commits, and with it every
           Memdev counter, is a pure function of the request stream,
           identical cache-on and cache-off. (Gets stage no redo
           entries, so peeling them changes no fence schedule either.) *)
        let len = min batch_cap (n - !pos) in
        if not cached then begin
          let chunk =
            Array.init len (fun j -> to_engine_op reqs.(!pos + j))
          in
          let replies = Spp_pmemkv.Engine.run_batch kv chunk in
          Array.iteri (fun j r -> out.(!pos + j) <- of_engine_reply r) replies
        end
        else begin
          (* Peel cache-hit gets in request order. A mutation must
             invalidate *at collection time*: a later same-chunk get
             would otherwise hit the pre-mutation cached value instead
             of observing the staged op inside the batch. *)
          let kept = ref [] and nkept = ref 0 in
          for j = 0 to len - 1 do
            let idx = !pos + j in
            match reqs.(idx) with
            | Get key as r ->
              (match Spp_pmemkv.Engine.cache_probe kv key with
               | Some v -> out.(idx) <- Value (Some v)
               | None -> kept := (idx, to_engine_op r) :: !kept; incr nkept)
            | (Put { key; _ } | Remove key) as r ->
              Spp_pmemkv.Engine.cache_invalidate kv key;
              kept := (idx, to_engine_op r) :: !kept; incr nkept
            | Scan _ as r ->
              (* cache-bypassing: always executes in the batch *)
              kept := (idx, to_engine_op r) :: !kept; incr nkept
          done;
          if !nkept > 0 then begin
            let kept = Array.of_list (List.rev !kept) in
            let replies =
              Spp_pmemkv.Engine.run_batch kv (Array.map snd kept)
            in
            Array.iteri
              (fun j r -> out.(fst kept.(j)) <- of_engine_reply r)
              replies
          end
        end;
        pos := !pos + len
      done;
      out)
    streams

(* Order-sensitive digest of a reply stream, same spirit as
   [Shard_bench.signature]: two executions agree only if every reply
   matched in order and shape. *)
let digest_replies replies =
  let d = ref 0x1505 in
  let mix v = d := (!d * 0x01000193) lxor v in
  Array.iter
    (fun r ->
      match r with
      | Done -> mix 1
      | Value (Some v) -> mix (String.length v + Char.code v.[0])
      | Value None -> mix 0x7F
      | Removed true -> mix 3
      | Removed false -> mix 0x3F
      | Scanned kvs ->
        mix 0x5C;
        List.iter
          (fun (k, v) ->
            mix (String.length k + Char.code k.[0]);
            mix (String.length v + (if v = "" then 0 else Char.code v.[0])))
          kvs
      | Failed (Op_raised _) -> mix 0x11
      | Failed Failed_over -> mix 0x13)
    replies;
  !d land max_int

(* ------------------------------------------------------------------ *)
(* Pretty-printing (divergence reports, sppctl)                        *)
(* ------------------------------------------------------------------ *)

let pp_request ppf = function
  | Put { key; value } ->
    Format.fprintf ppf "Put(%s, %dB)" key (String.length value)
  | Get key -> Format.fprintf ppf "Get(%s)" key
  | Remove key -> Format.fprintf ppf "Remove(%s)" key
  | Scan { lo; hi; limit } ->
    Format.fprintf ppf "Scan(%s..%s, limit %d)" lo hi limit

let pp_reply ppf = function
  | Done -> Format.pp_print_string ppf "Done"
  | Value (Some v) -> Format.fprintf ppf "Value(%dB)" (String.length v)
  | Value None -> Format.pp_print_string ppf "Value(none)"
  | Removed b -> Format.fprintf ppf "Removed(%b)" b
  | Scanned kvs ->
    (match (kvs, List.rev kvs) with
     | [], _ | _, [] -> Format.pp_print_string ppf "Scanned(0 entries)"
     | (first, _) :: _, (last, _) :: _ ->
       Format.fprintf ppf "Scanned(%d entries, %s..%s)" (List.length kvs)
         first last)
  | Failed (Op_raised e) -> Format.fprintf ppf "Failed(op raised: %s)" e
  | Failed Failed_over -> Format.pp_print_string ppf "Failed(failed over)"
