(* Domain-parallel sharded KV serving path.

   The unit of parallelism is the pool, exactly PMDK's per-pool
   concurrency model: one shard owns one full simulator stack — a
   persistent Memdev, a Space, a Pool and a KV engine over it — so no
   simulator state is ever mutated from two domains. A hash router
   partitions the key space across shards; after the driving domains
   join, per-shard [Space]/[Memdev] stats are snapshotted and merged
   into one aggregate view.

   No mutable state is shared across domains on the serving path: each
   shard's Memdev/Space/Pool belong to one domain, and the SPP hook-call
   counters are domain-local ([Spp_core.Runtime.local_counters]), so
   concurrent shards neither lose increments nor ping-pong a shared
   cache line on every pointer operation. *)

open Spp_pmdk

type shard = {
  index : int;
  access : Spp_access.t;
  kv : Spp_pmemkv.Engine.packed;
}

type t = {
  shards : shard array;
  variant : Spp_access.variant;
  engine : Spp_pmemkv.Engine.spec;
}

let nshards t = Array.length t.shards
let variant t = t.variant
let engine t = t.engine
let engine_name t = Spp_pmemkv.Engine.spec_name t.engine
let shard t i = t.shards.(i)
let shard_index (s : shard) = s.index
let shard_access (s : shard) = s.access
let shard_kv (s : shard) = s.kv

(* Router hash: FNV-1a folded through a splitmix-style finalizer —
   deliberately a different function from Cmap's plain FNV bucket hash,
   so shard choice and bucket choice stay uncorrelated (a correlated
   pair would leave most buckets of every shard permanently empty). *)
let route_hash key =
  let h = ref 0x5bf03635aaf24325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) key;
  let h = !h land max_int in
  let h = h lxor (h lsr 30) in
  let h = h * 0x4cf5ad432745937 land max_int in
  let h = h lxor (h lsr 27) in
  h land max_int

let shard_of_key ~nshards key =
  if nshards <= 0 then invalid_arg "Shard.shard_of_key: no shards";
  route_hash key mod nshards

let route t key = shard_of_key ~nshards:(Array.length t.shards) key

let create ?(nbuckets = 1024) ?(pool_size = 1 lsl 23) ?(cache_cap = 0)
    ?(engine = Spp_pmemkv.Engines.cmap) ~nshards variant =
  if nshards <= 0 then invalid_arg "Shard.create: nshards must be positive";
  let shards =
    Array.init nshards (fun index ->
      let access =
        Spp_access.create ~pool_size
          ~name:
            (Printf.sprintf "%s-shard%d" (Spp_access.variant_name variant)
               index)
          variant
      in
      let kv = Spp_pmemkv.Engine.create ~nbuckets engine access in
      (* Park the engine's root oid in the pool root: the durable
         handle a reopening process — or a replica promoted after a
         primary failure — needs to re-attach the map without any
         volatile state from this stack. Same discipline as the torture
         workloads. *)
      let pool = access.Spp_access.pool in
      let root = access.Spp_access.root access.Spp_access.oid_size in
      Pool.store_oid pool ~off:root.Oid.off (Spp_pmemkv.Engine.root_oid kv);
      Pool.persist pool ~off:root.Oid.off ~len:access.Spp_access.oid_size;
      (* One DRAM read cache per shard: single worker-domain writer on
         the serving path, lock-free readers from any submitting domain. *)
      if cache_cap > 0 then
        Spp_pmemkv.Engine.set_cache kv
          (Some (Spp_pmemkv.Rcache.create ~cap:cache_cap));
      { index; access; kv })
  in
  { shards; variant; engine }

(* Failover repoint: swap a shard's stack for a promoted replica's. The
   router is pure (key -> index), so the swap changes which stack an
   index resolves to without moving any key. Caller (the serve layer's
   worker protocol) must guarantee no other domain is inside the old
   stack. *)
let set_shard t i ~access ~kv =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Shard.set_shard: index out of range";
  t.shards.(i) <- { index = i; access; kv }

(* Routed single-key operations — the serving interface. *)

let put t ~key ~value =
  Spp_pmemkv.Engine.put t.shards.(route t key).kv ~key ~value

let get t key = Spp_pmemkv.Engine.get t.shards.(route t key).kv key

let remove t key = Spp_pmemkv.Engine.remove t.shards.(route t key).kv key

let count_all t =
  Array.fold_left
    (fun acc s -> acc + Spp_pmemkv.Engine.count_all s.kv)
    0 t.shards

(* Scatter-gather ordered scan: the hash router spreads any key range
   over every shard, so each shard scans its slice (bounded by the same
   limit) and the sorted slices are merged and clipped. *)
let scan t ~lo ~hi ~limit =
  if limit <= 0 || hi < lo then []
  else
    Spp_pmemkv.Engine.merge_scans ~limit
      (Array.to_list
         (Array.map
            (fun s -> Spp_pmemkv.Engine.scan s.kv ~lo ~hi ~limit)
            t.shards))

(* Merged accounting. Reading a shard's stats is only race-free once the
   domain driving it has joined; callers sequence that, we just sum. *)

let merged_stats t =
  Spp_sim.Space.merge_stats
    (Array.to_list
       (Array.map
          (fun s -> Spp_sim.Space.snapshot_stats s.access.Spp_access.space)
          t.shards))

let merged_counters t =
  Spp_sim.Memdev.merge_counters
    (Array.to_list
       (Array.map
          (fun s -> Spp_sim.Memdev.counters (Pool.dev s.access.Spp_access.pool))
          t.shards))

let merged_cache_stats t =
  Spp_pmemkv.Rcache.merge_stats
    (Array.to_list
       (Array.map
          (fun s ->
            match Spp_pmemkv.Engine.cache s.kv with
            | Some rc -> Spp_pmemkv.Rcache.stats rc
            | None -> Spp_pmemkv.Rcache.zero_stats)
          t.shards))

let cache_enabled t =
  Array.exists (fun s -> Spp_pmemkv.Engine.cache s.kv <> None) t.shards

let reset_stats t =
  Array.iter
    (fun s ->
      Spp_sim.Space.reset_stats s.access.Spp_access.space;
      Spp_sim.Memdev.reset_counters (Pool.dev s.access.Spp_access.pool);
      match Spp_pmemkv.Engine.cache s.kv with
      | Some rc -> Spp_pmemkv.Rcache.reset_stats rc
      | None -> ())
    t.shards
