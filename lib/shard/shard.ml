(* Domain-parallel sharded KV serving path.

   The unit of parallelism is the pool, exactly PMDK's per-pool
   concurrency model: one shard owns one full simulator stack — a
   persistent Memdev, a Space, a Pool and a KV engine over it — so no
   simulator state is ever mutated from two domains. A hash router
   partitions the key space across shards; after the driving domains
   join, per-shard [Space]/[Memdev] stats are snapshotted and merged
   into one aggregate view.

   No mutable state is shared across domains on the serving path: each
   shard's Memdev/Space/Pool belong to one domain, and the SPP hook-call
   counters are domain-local ([Spp_core.Runtime.local_counters]), so
   concurrent shards neither lose increments nor ping-pong a shared
   cache line on every pointer operation. *)

open Spp_pmdk

type shard = {
  index : int;
  access : Spp_access.t;
  kv : Spp_pmemkv.Engine.packed;
}

(* Slot map: keys hash into a fixed power-of-two slot space and a
   versioned slot->shard table routes ops. The table is an immutable
   snapshot behind an [Atomic.t]: readers grab one coherent assignment
   with a single load, writers (the serve layer's migration protocol,
   serialized by its migration lock) install a fresh copy with a bumped
   version. Moving a slot between shards is therefore one atomic
   pointer swap — no reader ever observes a half-updated table. *)
type slot_table = { st_version : int; st_assign : int array }

type t = {
  shards : shard array;
  variant : Spp_access.variant;
  engine : Spp_pmemkv.Engine.spec;
  nslots : int;
  table : slot_table Atomic.t;
}

let nshards t = Array.length t.shards
let variant t = t.variant
let engine t = t.engine
let engine_name t = Spp_pmemkv.Engine.spec_name t.engine
let shard t i = t.shards.(i)
let shard_index (s : shard) = s.index
let shard_access (s : shard) = s.access
let shard_kv (s : shard) = s.kv

(* Router hash: FNV-1a folded through a splitmix-style finalizer —
   deliberately a different function from Cmap's plain FNV bucket hash,
   so shard choice and bucket choice stay uncorrelated (a correlated
   pair would leave most buckets of every shard permanently empty). *)
let route_hash key =
  let h = ref 0x5bf03635aaf24325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) key;
  let h = !h land max_int in
  let h = h lxor (h lsr 30) in
  let h = h * 0x4cf5ad432745937 land max_int in
  let h = h lxor (h lsr 27) in
  h land max_int

let default_nslots = 1024

let slot_of_key ~nslots key = route_hash key land (nslots - 1)

(* The static default assignment: slot [s] lives on shard [s mod
   nshards]. [shard_of_key] stays a pure function of key and shard
   count — it is the no-migration routing every differential baseline
   partitions by, and it agrees with [route] on any freshly created
   store with the default slot count. *)
let shard_of_key ~nshards key =
  if nshards <= 0 then invalid_arg "Shard.shard_of_key: no shards";
  slot_of_key ~nslots:default_nslots key mod nshards

let nslots t = t.nslots
let slot_of t key = slot_of_key ~nslots:t.nslots key
let table_version t = (Atomic.get t.table).st_version
let owner t slot = (Atomic.get t.table).st_assign.(slot)
let assignment t = Array.copy (Atomic.get t.table).st_assign
let route t key = (Atomic.get t.table).st_assign.(slot_of t key)

(* Single-writer: callers (the serve layer's migration flip, under its
   migration lock) serialize table updates; readers always see either
   the old or the new immutable snapshot. *)
let set_slot_owner t ~slot ~shard =
  if slot < 0 || slot >= t.nslots then
    invalid_arg "Shard.set_slot_owner: slot out of range";
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Shard.set_slot_owner: shard out of range";
  let cur = Atomic.get t.table in
  let assign = Array.copy cur.st_assign in
  assign.(slot) <- shard;
  Atomic.set t.table { st_version = cur.st_version + 1; st_assign = assign }

let owned_slots t i =
  let a = (Atomic.get t.table).st_assign in
  let n = ref 0 in
  Array.iter (fun s -> if s = i then incr n) a;
  !n

let slots_of_shard t i =
  let a = (Atomic.get t.table).st_assign in
  let acc = ref [] in
  for s = t.nslots - 1 downto 0 do
    if a.(s) = i then acc := s :: !acc
  done;
  !acc

let create ?(nbuckets = 1024) ?(pool_size = 1 lsl 23) ?(cache_cap = 0)
    ?(engine = Spp_pmemkv.Engines.cmap) ?(nslots = default_nslots) ~nshards
    variant =
  if nshards <= 0 then invalid_arg "Shard.create: nshards must be positive";
  if nslots <= 0 || nslots land (nslots - 1) <> 0 then
    invalid_arg "Shard.create: nslots must be a positive power of two";
  let shards =
    Array.init nshards (fun index ->
      let access =
        Spp_access.create ~pool_size
          ~name:
            (Printf.sprintf "%s-shard%d" (Spp_access.variant_name variant)
               index)
          variant
      in
      let kv = Spp_pmemkv.Engine.create ~nbuckets engine access in
      (* Park the engine's root oid in the pool root: the durable
         handle a reopening process — or a replica promoted after a
         primary failure — needs to re-attach the map without any
         volatile state from this stack. Same discipline as the torture
         workloads. *)
      let pool = access.Spp_access.pool in
      let root = access.Spp_access.root access.Spp_access.oid_size in
      Pool.store_oid pool ~off:root.Oid.off (Spp_pmemkv.Engine.root_oid kv);
      Pool.persist pool ~off:root.Oid.off ~len:access.Spp_access.oid_size;
      (* One DRAM read cache per shard: single worker-domain writer on
         the serving path, lock-free readers from any submitting domain. *)
      if cache_cap > 0 then
        Spp_pmemkv.Engine.set_cache kv
          (Some (Spp_pmemkv.Rcache.create ~cap:cache_cap));
      { index; access; kv })
  in
  let assign = Array.init nslots (fun s -> s mod nshards) in
  {
    shards;
    variant;
    engine;
    nslots;
    table = Atomic.make { st_version = 0; st_assign = assign };
  }

(* Failover repoint: swap a shard's stack for a promoted replica's. The
   router is pure (key -> index), so the swap changes which stack an
   index resolves to without moving any key. Caller (the serve layer's
   worker protocol) must guarantee no other domain is inside the old
   stack. *)
let set_shard t i ~access ~kv =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Shard.set_shard: index out of range";
  t.shards.(i) <- { index = i; access; kv }

(* Routed single-key operations — the serving interface. *)

let put t ~key ~value =
  Spp_pmemkv.Engine.put t.shards.(route t key).kv ~key ~value

let get t key = Spp_pmemkv.Engine.get t.shards.(route t key).kv key

let remove t key = Spp_pmemkv.Engine.remove t.shards.(route t key).kv key

let count_all t =
  Array.fold_left
    (fun acc s -> acc + Spp_pmemkv.Engine.count_all s.kv)
    0 t.shards

(* Scatter-gather ordered scan: the hash router spreads any key range
   over every shard, so each shard scans its slice (bounded by the same
   limit) and the sorted slices are merged and clipped. Each slice is
   ownership-filtered against one table snapshot: a key answered from a
   shard that no longer owns its slot (a leftover copy from an aborted
   or in-flight migration) is dropped, so every key appears exactly
   once — from its owner. *)
let scan t ~lo ~hi ~limit =
  if limit <= 0 || hi < lo then []
  else
    let assign = (Atomic.get t.table).st_assign in
    Spp_pmemkv.Engine.merge_scans ~limit
      (Array.to_list
         (Array.map
            (fun s ->
              List.filter
                (fun (k, _) -> assign.(slot_of t k) = s.index)
                (Spp_pmemkv.Engine.scan s.kv ~lo ~hi ~limit))
            t.shards))

(* Merged accounting. Reading a shard's stats is only race-free once the
   domain driving it has joined; callers sequence that, we just sum. *)

let merged_stats t =
  Spp_sim.Space.merge_stats
    (Array.to_list
       (Array.map
          (fun s -> Spp_sim.Space.snapshot_stats s.access.Spp_access.space)
          t.shards))

let merged_counters t =
  Spp_sim.Memdev.merge_counters
    (Array.to_list
       (Array.map
          (fun s -> Spp_sim.Memdev.counters (Pool.dev s.access.Spp_access.pool))
          t.shards))

let merged_cache_stats t =
  Spp_pmemkv.Rcache.merge_stats
    (Array.to_list
       (Array.map
          (fun s ->
            match Spp_pmemkv.Engine.cache s.kv with
            | Some rc -> Spp_pmemkv.Rcache.stats rc
            | None -> Spp_pmemkv.Rcache.zero_stats)
          t.shards))

let cache_enabled t =
  Array.exists (fun s -> Spp_pmemkv.Engine.cache s.kv <> None) t.shards

let reset_stats t =
  Array.iter
    (fun s ->
      Spp_sim.Space.reset_stats s.access.Spp_access.space;
      Spp_sim.Memdev.reset_counters (Pool.dev s.access.Spp_access.pool);
      match Spp_pmemkv.Engine.cache s.kv with
      | Some rc -> Spp_pmemkv.Rcache.reset_stats rc
      | None -> ())
    t.shards
