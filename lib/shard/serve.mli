(** Asynchronous batched serving pipeline over the shard stack.

    One MPSC submission queue (Mutex/Condition mailbox) per shard, one
    worker Domain per shard. Workers drain the queue in adaptive batches
    — the drain size grows under queue pressure up to [batch_cap] and
    shrinks when a drain empties the queue — and execute each drain
    through [Cmap.run_batch], so the drained ops share one
    group-committed redo log and one fence schedule ([Redo.batch]).
    Requests resolve through promise-like tickets fulfilled after the
    batch commit returns; submission-to-fulfilment latency is recorded
    per request in a shard-local {!Spp_benchlib.Histogram}.

    Crash atomicity is per operation (recovery lands on a prefix of
    whole ops of an interrupted batch); a fulfilled ticket additionally
    means the op's sub-batch committed — acks are durable.

    {b Read fast path.} When the store has a {!Spp_pmemkv.Rcache}
    attached and the pipeline is adaptive, a [Get] whose key hits the
    cache is answered immediately on the submitting thread with a
    pre-fulfilled ticket — no mailbox, no worker domain, no PM walk.
    This is sound because fills only come from committed batches (the
    hit is durable data) and every mutation invalidates its key at
    submission time, before it becomes visible in the mailbox, so a
    client that pipelines a put and then a get of the same key can
    never be answered from ahead of its own write. Deterministic mode
    ([adaptive = false]) disables the bypass: batch boundaries stay a
    pure function of the submitted streams and the bit-identical
    async-vs-sequential differential still holds.

    {b Failure and failover.} A ticket always resolves — with [Failed]
    rather than hanging when its op cannot be acked. An op that raises
    fails its drain with [Op_raised] but the shard keeps serving; a
    shard whose device died fails everything with [Failed_over] until
    {!promote} swaps in a replica stack promoted from the shard's
    {!Replica} group (configured via [?replication] at {!create}).
    [Failed] means the op's outcome is {e unknown}: sub-batches
    committed before the failure are durable and replicated, later ones
    are not. Replication observes the group-commit stream, so with
    [?replication] all mutations must flow through this pipeline — the
    synchronous [Shard.put] tx path is invisible to replicas.

    {b Live slot migration.} {!migrate_slot} moves one slot of the
    store's slot map (see {!Shard}) to another shard while traffic
    flows: the slot's current owner drains the slot's keys out of its
    own engine through paginated ordered scans and replays them into
    the target as ordinary batched puts (so the copy group-commits on
    the target and its redo payloads reach the target's replica), then
    flips the slot table under both mailbox locks — re-pointing every
    queued request on the slot at the target, whose ticket an awaiter
    transparently chases — and finally deletes the moved keys from
    itself in group-committed remove batches. Submitters re-check the
    table under the mailbox lock and workers double-check drained ops
    against it, so replies are identical to a no-migration run. One
    migration runs at a time; {!scan} serializes against it, so a
    whole-store scan always reports every key exactly once. *)

type request =
  | Put of { key : string; value : string }
  | Get of string
  | Remove of string
  | Scan of { lo : string; hi : string; limit : int }
      (** ordered range over one shard's slice; cache-bypassing,
          executed inside the worker batch *)

(** Why a ticket could not be acked. *)
type failure =
  | Op_raised of string
      (** the op raised mid-batch; the message is the exception *)
  | Failed_over
      (** the shard's primary died; resubmit after {!promote} *)

type reply =
  | Done
  | Value of string option
  | Removed of bool
  | Scanned of (string * string) list
      (** ascending by key, at most the clamped limit *)
  | Failed of failure

val scan_limit_cap : int
(** Every scan's limit is clamped to this many pairs (4096) on entry —
    replies are materialized lists built while the worker holds the
    shard. *)

exception Not_replicated of int
(** {!promote} on a shard created without a replication group.
    Registered with [Printexc]. *)

val request_key : request -> string
(** The routing key. Raises [Invalid_argument] on [Scan] — a range
    spans every shard; use {!scan} or {!submit_to}. *)

type ticket

type migration_report = {
  mig_slot : int;
  mig_from : int;
  mig_to : int;
  mig_keys : int;        (** entries copied (and then deleted) *)
  mig_batches : int;     (** copy batches group-committed on the target *)
  mig_forwarded : int;   (** queued requests re-pointed at the flip *)
}

type shard_stats = {
  ss_shard : int;
  ss_ops : int;
  ss_batches : int;
  ss_max_batch : int;
  ss_failed : int;                      (** tickets resolved [Failed] *)
  ss_busy : float;
      (** seconds this worker spent inside [run_batch] — the per-shard
          critical-path cost, meaningful even when the host has fewer
          cores than shards *)
  ss_hist : Spp_benchlib.Histogram.t;   (** latency, ns *)
}

type t

val create :
  ?batch_cap:int -> ?adaptive:bool -> ?autostart:bool ->
  ?replication:Replica.config -> Shard.t -> t
(** Defaults: [batch_cap = 32], [adaptive = true], [autostart = true],
    no replication. With [adaptive:false] every drain takes exactly
    [batch_cap] requests when available; with [autostart:false]
    submissions queue up until {!start} — together they make batch
    boundaries (and therefore all Space/Memdev accounting) a pure
    function of the submitted streams, which is what the
    parallel-vs-sequential differential asserts. [?replication] builds
    one {!Replica} group per shard from the store's current durable
    images (call before any batched traffic) and gates every ack on the
    configured policy. *)

val start : t -> unit
val started : t -> bool

val submit : t -> request -> ticket
(** Route by key to the owning shard's mailbox — or, for a cache-hit
    [Get] on an adaptive cached pipeline, answer it inline and return a
    pre-fulfilled ticket. Mutations invalidate their key in the shard's
    read cache before enqueueing. Callable from any domain. Raises once
    {!stop} has begun (a bypassed get may still succeed: it is
    read-only and touches no queue), and on [Scan] (no routing key —
    use {!scan} or {!submit_to}). *)

val submit_to : t -> int -> request -> ticket
(** [submit_to t i req] bypasses the router and enqueues on shard [i] —
    how a [Scan] targets one shard's slice, and how the differential
    tests drive predetermined per-shard streams. Same cache discipline
    as {!submit}. *)

val await : t -> ticket -> reply
(** Block until the ticket's batch has committed (immediate for a
    bypassed get). *)

val peek : ticket -> reply option

val scan :
  t -> lo:string -> hi:string -> limit:int ->
  ((string * string) list, failure) result
(** Whole-store ordered scan: submits one [Scan] per shard (each rides
    that shard's batch stream), awaits all slices and merges them into
    one ascending list of at most [limit] (clamped) pairs. [Error] if
    any shard failed over mid-scan. *)

val bypassed_gets : t -> int
(** Gets answered on the submitting thread without entering a mailbox. *)

val cache_stats : t -> Spp_pmemkv.Rcache.stats
(** [Shard.merged_cache_stats] of the underlying store. *)

(** {1 Resharding} *)

exception Migration_failed of { slot : int; reason : string }
(** A migration aborted before its flip: the slot still routes to the
    source, which still holds every key — nothing was lost, copied
    leftovers on the target are ownership-filtered out of scans.
    Registered with [Printexc]. *)

val migrate_slot : t -> slot:int -> dst:int -> migration_report
(** [migrate_slot t ~slot ~dst] asks the slot's current owner to move
    it to shard [dst] (copy → flip → delete, on the owner's worker
    domain, between drains) and blocks until done. Serialized: one
    migration at a time, mutually exclusive with whole-store {!scan}s.
    A no-op report if [dst] already owns the slot. Requests queued or
    submitted during the migration are answered exactly as without it —
    queued slot traffic is re-pointed at the flip, and awaiters chase
    their tickets. Raises {!Migration_failed} if the copy aborted (the
    slot then still routes to the source). *)

val migrations : t -> int
(** Completed migrations. *)

val forwarded : t -> int
(** Requests re-pointed to another shard's mailbox — at a flip, or by a
    worker's drain-time ownership double-check. *)

val keys_moved : t -> int
(** Entries copied (and deleted from their source) across migrations. *)

val slot_op_counts : t -> int array
(** Per-slot routed-op histogram (indexed by slot), accumulated at
    {!submit}. The rebalancer's load signal. *)

val queue_depths : t -> int array
(** Instantaneous mailbox depth per shard. *)

val ops_counts : t -> int array
(** Per-shard executed-op counts, readable while the pipeline runs
    (monotone snapshot, published after each drain). *)

val busy_times : t -> float array
(** Per-shard seconds spent inside [run_batch] so far — the live
    counterpart of [ss_busy]. Sampling it around a submission window
    yields the window's critical-path cost per shard, which is how the
    reshard bench models multi-core wall clock on any host. *)

val peak_queue_depths : t -> int array
(** High-water mailbox depth per shard since creation. *)

(** {1 Failover} *)

val shard_failed : t -> int -> bool
(** The shard's device died and no replica has been promoted yet; its
    requests are resolving [Failed Failed_over]. *)

val replicated : t -> int -> bool

val promote : ?cache_cap:int -> t -> int -> Replica.promoted
(** [promote t i] asks shard [i]'s worker — the only domain allowed
    inside the old stack — to seal its replication group, promote the
    best replica ({!Replica.promote}), and repoint the router
    ([Shard.set_shard]); blocks until the swap is done. The promoted
    stack starts with a cold read cache of [cache_cap] entries (default
    none). Requests queued behind the promotion execute on the new
    stack; tickets failed with [Failed_over] before it are {e not}
    replayed — the client resubmits. Raises {!Not_replicated} without a
    group, {!Replica.Promotion_failed} on a second promotion of the
    same group. *)

val promotions : t -> int

val replication_stats : t -> Replica.stats list
(** One entry per replicated shard. Race-free after {!stop}; a live
    read is a monotone snapshot. *)

val replication_lag : t -> Spp_benchlib.Histogram.t
(** Merged commit-to-apply lag over every group, ns. *)

val stop : t -> unit
(** Drain all queues, join the workers and any replica appliers.
    Idempotent; required before {!stats}. *)

val stats : t -> shard_stats array
val merged_hist : t -> Spp_benchlib.Histogram.t
val total_batches : t -> int

val total_failed : t -> int
(** Tickets resolved [Failed] across all shards. *)

val store : t -> Shard.t

val run_sequential :
  ?use_cache:bool ->
  Shard.t -> batch_cap:int -> request array array -> reply array array
(** The deterministic baseline: per-shard streams executed on the
    calling domain, chunked at exactly [batch_cap], through the same
    group-commit path. When the store has a cache and [use_cache] is
    true (default), cache-hit gets inside each chunk are answered
    inline and only the remainder enters the batch; chunk boundaries
    stay at fixed request positions and gets stage no redo entries, so
    replies, the durable image and every Memdev counter are
    bit-identical to a cache-off run of the same streams — the
    cache-differential property the tests assert. [use_cache:false]
    forces the pure PM path even on a cached store. *)

val digest_replies : reply array -> int
(** Order-sensitive digest; two executions agree only if every reply
    matched in order and shape. Scan replies digest every (key, value)
    pair in order. *)

val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
(** Compact printers for divergence reports and sppctl: values print as
    lengths, scans as entry count and key span. *)
