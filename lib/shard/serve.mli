(** Asynchronous batched serving pipeline over the shard stack.

    One MPSC submission queue (Mutex/Condition mailbox) per shard, one
    worker Domain per shard. Workers drain the queue in adaptive batches
    — the drain size grows under queue pressure up to [batch_cap] and
    shrinks when a drain empties the queue — and execute each drain
    through [Cmap.run_batch], so the drained ops share one
    group-committed redo log and one fence schedule ([Redo.batch]).
    Requests resolve through promise-like tickets fulfilled after the
    batch commit returns; submission-to-fulfilment latency is recorded
    per request in a shard-local {!Spp_benchlib.Histogram}.

    Crash atomicity is per operation (recovery lands on a prefix of
    whole ops of an interrupted batch); a fulfilled ticket additionally
    means the op's sub-batch committed — acks are durable.

    {b Read fast path.} When the store has a {!Spp_pmemkv.Rcache}
    attached and the pipeline is adaptive, a [Get] whose key hits the
    cache is answered immediately on the submitting thread with a
    pre-fulfilled ticket — no mailbox, no worker domain, no PM walk.
    This is sound because fills only come from committed batches (the
    hit is durable data) and every mutation invalidates its key at
    submission time, before it becomes visible in the mailbox, so a
    client that pipelines a put and then a get of the same key can
    never be answered from ahead of its own write. Deterministic mode
    ([adaptive = false]) disables the bypass: batch boundaries stay a
    pure function of the submitted streams and the bit-identical
    async-vs-sequential differential still holds. *)

type request =
  | Put of { key : string; value : string }
  | Get of string
  | Remove of string

type reply =
  | Done
  | Value of string option
  | Removed of bool

val request_key : request -> string

type ticket

type shard_stats = {
  ss_shard : int;
  ss_ops : int;
  ss_batches : int;
  ss_max_batch : int;
  ss_hist : Spp_benchlib.Histogram.t;   (** latency, ns *)
}

type t

val create : ?batch_cap:int -> ?adaptive:bool -> ?autostart:bool -> Shard.t -> t
(** Defaults: [batch_cap = 32], [adaptive = true], [autostart = true].
    With [adaptive:false] every drain takes exactly [batch_cap] requests
    when available; with [autostart:false] submissions queue up until
    {!start} — together they make batch boundaries (and therefore all
    Space/Memdev accounting) a pure function of the submitted streams,
    which is what the parallel-vs-sequential differential asserts. *)

val start : t -> unit
val started : t -> bool

val submit : t -> request -> ticket
(** Route by key to the owning shard's mailbox — or, for a cache-hit
    [Get] on an adaptive cached pipeline, answer it inline and return a
    pre-fulfilled ticket. Mutations invalidate their key in the shard's
    read cache before enqueueing. Callable from any domain. Raises once
    {!stop} has begun (a bypassed get may still succeed: it is
    read-only and touches no queue). *)

val await : t -> ticket -> reply
(** Block until the ticket's batch has committed (immediate for a
    bypassed get). *)

val peek : ticket -> reply option

val bypassed_gets : t -> int
(** Gets answered on the submitting thread without entering a mailbox. *)

val cache_stats : t -> Spp_pmemkv.Rcache.stats
(** [Shard.merged_cache_stats] of the underlying store. *)

val stop : t -> unit
(** Drain all queues, join the workers. Idempotent; required before
    {!stats}. *)

val stats : t -> shard_stats array
val merged_hist : t -> Spp_benchlib.Histogram.t
val total_batches : t -> int
val store : t -> Shard.t

val run_sequential :
  ?use_cache:bool ->
  Shard.t -> batch_cap:int -> request array array -> reply array array
(** The deterministic baseline: per-shard streams executed on the
    calling domain, chunked at exactly [batch_cap], through the same
    group-commit path. When the store has a cache and [use_cache] is
    true (default), cache-hit gets inside each chunk are answered
    inline and only the remainder enters the batch; chunk boundaries
    stay at fixed request positions and gets stage no redo entries, so
    replies, the durable image and every Memdev counter are
    bit-identical to a cache-off run of the same streams — the
    cache-differential property the tests assert. [use_cache:false]
    forces the pure PM path even on a cached store. *)

val digest_replies : reply array -> int
(** Order-sensitive digest; two executions agree only if every reply
    matched in order and shape. *)
