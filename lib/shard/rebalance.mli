(** Hot-slot rebalancer over {!Serve.migrate_slot}.

    Tick-driven — no background domain. Call {!tick} between
    submission windows; it samples the per-slot routed-op histogram
    ({!Serve.slot_op_counts}, as deltas since the previous tick) and
    the per-shard mailbox depths ({!Serve.queue_depths}), ranks shards
    by load (owned slots' op deltas plus backlog), and migrates the
    hottest shard's hottest slots to the coldest shard when the
    imbalance clears a hysteresis policy: ratio threshold, minimum
    traffic, persistence across consecutive ticks, cooldown after a
    firing, strict gap improvement per move. *)

type config = {
  min_ratio : float;
      (** hottest/coldest load ratio that arms a move (>= 1) *)
  min_ops : int;
      (** ticks where the hottest shard saw fewer ops are ignored *)
  persist : int;
      (** consecutive armed ticks required before the first move *)
  cooldown : int;
      (** quiet ticks after a firing *)
  moves_per_tick : int;
      (** max slots migrated per firing *)
}

val default_config : config
(** ratio 1.5, min_ops 64, persist 2, cooldown 2, moves 4. *)

type stats = {
  rb_ticks : int;
  rb_armed : int;       (** ticks whose imbalance exceeded the threshold *)
  rb_moves : int;       (** migrations performed *)
  rb_keys_moved : int;
}

type t

val create : ?cfg:config -> Serve.t -> t
(** Snapshots the current slot-op counts as the first tick's baseline. *)

val tick : t -> int
(** One observation + decision round; returns migrations performed
    (usually 0). Call from one domain at a time — typically the driver
    between submission windows. Migrations run synchronously inside the
    call via {!Serve.migrate_slot}. *)

val stats : t -> stats
