(* True-parallel db_bench over the sharded router.

   The operation stream is generated once on the main domain, routed
   into per-shard streams, and then driven either sequentially (the
   logical-shard model fig5 uses — the differential baseline) or with
   one [Domain] per shard. Both modes execute the identical per-shard
   streams against identically constructed stores, so the per-shard op
   results — op/hit/put counts and an order-sensitive digest of every
   get — must match bit for bit; only the wall clock may differ. *)

open Spp_benchlib

type dist =
  | Uniform
  | Zipfian of float   (* theta in (0, 1); YCSB default 0.99 *)
  | Rotating of { theta : float; period : int }
      (* Zipfian whose hot set jumps to a fresh key region every
         [period] draws — the moving-hotspot workload the rebalancer
         chases; deterministic under the seed like the others *)

let dist_name = function
  | Uniform -> "uniform"
  | Zipfian theta -> Printf.sprintf "zipfian%.2f" theta
  | Rotating { theta; period } ->
    Printf.sprintf "rotating%.2f-%d" theta period

type op_kind =
  | O_get
  | O_put
  | O_scan of { span : int; limit : int }
      (* ordered range of [span] consecutive keys upward from o_key *)

type op = {
  o_key : string;
  o_kind : op_kind;
}

let write_pct (w : Spp_pmemkv.Db_bench.workload) =
  match w with
  | Spp_pmemkv.Db_bench.Update_heavy -> 50
  | Spp_pmemkv.Db_bench.Read_heavy -> 5
  | Spp_pmemkv.Db_bench.Random_reads | Spp_pmemkv.Db_bench.Seq_reads -> 0

let gen_ops ?(scan_pct = 0) ?(scan_span = 16) ?(scan_limit = 16) ~seed ~ops
    ~universe ~dist workload =
  let pct = write_pct workload in
  let gen =
    match dist with
    | Uniform -> Keygen.uniform ~seed ~universe
    | Zipfian theta -> Keygen.zipfian ~theta ~seed ~universe ()
    | Rotating { theta; period } ->
      Keygen.rotating ~theta ~seed ~universe ~period ()
  in
  (* separate stream for the op-mix coin so changing the key
     distribution never changes the op mix *)
  let coin = Random.State.make [| seed; 0x11C9 |] in
  Array.init ops (fun i ->
    let idx =
      match workload with
      | Spp_pmemkv.Db_bench.Seq_reads -> (seed + i) mod universe
      | _ -> Keygen.next gen
    in
    (* one coin draw per op whatever the kind, so adding scans to a mix
       leaves the put/get decisions of the remaining ops untouched *)
    let roll = Random.State.int coin 100 in
    let kind =
      if roll < scan_pct then O_scan { span = scan_span; limit = scan_limit }
      else if pct > 0 && roll - scan_pct < pct then O_put
      else O_get
    in
    { o_key = Spp_pmemkv.Db_bench.key_of_int idx; o_kind = kind })

(* Route a global stream into per-shard streams, preserving program
   order within each shard. Partitioning depends only on the shard
   count, so a sequential and a parallel store of equal [nshards] see
   identical streams. *)
let partition ~nshards ops =
  let buckets = Array.make nshards [] in
  Array.iter
    (fun op ->
      let s = Shard.shard_of_key ~nshards op.o_key in
      buckets.(s) <- op :: buckets.(s))
    ops;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let preload t ~keys =
  for i = 0 to keys - 1 do
    Shard.put t ~key:(Spp_pmemkv.Db_bench.key_of_int i)
      ~value:Spp_pmemkv.Db_bench.value_block
  done

(* Per-shard execution result. [sr_digest] folds every get outcome in
   op order, so two runs agree only if they saw the same hit/miss
   sequence with the same value shapes. [sr_elapsed] is measurement,
   not result — [signature] deliberately excludes it. *)
type shard_result = {
  sr_shard : int;
  sr_ops : int;
  sr_hits : int;
  sr_puts : int;
  sr_scans : int;
  sr_scan_entries : int;       (* pairs returned across all scans *)
  sr_scan_digests : int array; (* one digest per scan, in op order *)
  sr_digest : int;
  sr_elapsed : float;
}

let signature r =
  ( r.sr_shard, r.sr_ops, r.sr_hits, r.sr_puts, r.sr_scans,
    r.sr_scan_entries, r.sr_scan_digests, r.sr_digest )

(* A scan op covers [o_key, o_key + span) in key-of-int order — the
   string encoding is zero-padded, so lexicographic equals numeric
   order and the upper bound is the key one past the span. *)
let scan_hi_of ~key ~span =
  let n = String.length "key" in
  let idx = int_of_string (String.sub key n (String.length key - n)) in
  Spp_pmemkv.Db_bench.key_of_int (idx + span - 1)

let exec_shard (s : Shard.shard) ops =
  let kv = Shard.shard_kv s in
  let digest = ref 0x1505 in
  let mix v = digest := (!digest * 0x01000193) lxor v in
  let hits = ref 0 and puts = ref 0 in
  let scans = ref 0 and scan_entries = ref 0 in
  let scan_digests = ref [] in
  let t0 = Bench_util.now_mono () in
  Array.iter
    (fun op ->
      match op.o_kind with
      | O_put ->
        Spp_pmemkv.Engine.put kv ~key:op.o_key
          ~value:Spp_pmemkv.Db_bench.value_block;
        incr puts;
        mix 1
      | O_get ->
        (match Spp_pmemkv.Engine.get kv op.o_key with
         | Some v ->
           incr hits;
           mix (String.length v + Char.code v.[0])
         | None -> mix 0x7F)
      | O_scan { span; limit } ->
        let hi = scan_hi_of ~key:op.o_key ~span in
        let kvs = Spp_pmemkv.Engine.scan kv ~lo:op.o_key ~hi ~limit in
        incr scans;
        (* per-scan digest so a divergence report can name the exact
           scan reply that differed, not just "some scan" *)
        let sd = ref 0x1505 in
        let smix v = sd := (!sd * 0x01000193) lxor v in
        List.iter
          (fun (k, v) ->
            incr scan_entries;
            smix (String.length k + Char.code k.[0]);
            smix (String.length v + Char.code v.[0]))
          kvs;
        scan_digests := (!sd land max_int) :: !scan_digests;
        mix !sd)
    ops;
  let elapsed = Bench_util.now_mono () -. t0 in
  { sr_shard = Shard.shard_index s; sr_ops = Array.length ops;
    sr_hits = !hits; sr_puts = !puts; sr_scans = !scans;
    sr_scan_entries = !scan_entries;
    sr_scan_digests = Array.of_list (List.rev !scan_digests);
    sr_digest = !digest land max_int;
    sr_elapsed = elapsed }

type mode =
  | Sequential   (* logical shards, one domain — the fig5 baseline *)
  | Parallel     (* one Domain per shard *)

let mode_name = function Sequential -> "sequential" | Parallel -> "parallel"

type run_result = {
  r_mode : mode;
  r_shards : shard_result array;
  r_wall : float;        (* whole-run wall clock, spawn to join *)
  r_total_ops : int;
  r_throughput : float;  (* total ops / wall *)
}

let run t ~mode per_shard_ops =
  if Array.length per_shard_ops <> Shard.nshards t then
    invalid_arg "Shard_bench.run: stream count <> shard count";
  (* drain the GC before timing so a pending major collection from
     preload does not land inside the measured window *)
  Gc.full_major ();
  let t0 = Bench_util.now_mono () in
  let r_shards =
    match mode with
    | Sequential ->
      Array.mapi (fun i ops -> exec_shard (Shard.shard t i) ops) per_shard_ops
    | Parallel ->
      let domains =
        Array.mapi
          (fun i ops ->
            let s = Shard.shard t i in
            Domain.spawn (fun () -> exec_shard s ops))
          per_shard_ops
      in
      Array.map Domain.join domains
  in
  let r_wall = Bench_util.now_mono () -. t0 in
  let r_total_ops = Array.fold_left (fun a r -> a + r.sr_ops) 0 r_shards in
  { r_mode = mode; r_shards; r_wall; r_total_ops;
    r_throughput = float_of_int r_total_ops /. Float.max r_wall 1e-9 }

let results_agree a b =
  Array.length a.r_shards = Array.length b.r_shards
  && Array.for_all2
       (fun x y -> signature x = signature y)
       a.r_shards b.r_shards

(* Diagnostic differential: [None] when the runs agree, otherwise the
   first diverging shard index and the first diverging signature field —
   a bare "signatures differ" is useless when 8 shards each fold 3000
   ops into one digest. *)
let explain_divergence a b =
  let na = Array.length a.r_shards and nb = Array.length b.r_shards in
  if na <> nb then
    Some (Printf.sprintf "shard count differs: %d (%s) vs %d (%s)" na
            (mode_name a.r_mode) nb (mode_name b.r_mode))
  else begin
    let explain_shard i =
      let x = a.r_shards.(i) and y = b.r_shards.(i) in
      if signature x = signature y then None
      else
        let first_scan_diff () =
          let n = min (Array.length x.sr_scan_digests)
                    (Array.length y.sr_scan_digests) in
          let rec go j =
            if j >= n then None
            else if x.sr_scan_digests.(j) <> y.sr_scan_digests.(j) then Some j
            else go (j + 1)
          in
          go 0
        in
        let field =
          if x.sr_shard <> y.sr_shard then
            Printf.sprintf "sr_shard %d vs %d" x.sr_shard y.sr_shard
          else if x.sr_ops <> y.sr_ops then
            Printf.sprintf "sr_ops %d vs %d" x.sr_ops y.sr_ops
          else if x.sr_puts <> y.sr_puts then
            Printf.sprintf "sr_puts %d vs %d" x.sr_puts y.sr_puts
          else if x.sr_hits <> y.sr_hits then
            Printf.sprintf "sr_hits %d vs %d" x.sr_hits y.sr_hits
          else if x.sr_scans <> y.sr_scans then
            Printf.sprintf "sr_scans %d vs %d" x.sr_scans y.sr_scans
          else if x.sr_scan_entries <> y.sr_scan_entries then
            Printf.sprintf "sr_scan_entries %d vs %d" x.sr_scan_entries
              y.sr_scan_entries
          else
            match first_scan_diff () with
            | Some j ->
              Printf.sprintf
                "scan reply %d (of %d) digest 0x%x vs 0x%x" j x.sr_scans
                x.sr_scan_digests.(j) y.sr_scan_digests.(j)
            | None ->
              Printf.sprintf "sr_digest 0x%x vs 0x%x" x.sr_digest y.sr_digest
        in
        Some
          (Printf.sprintf "first divergence at shard %d: %s (%s vs %s)" i
             field (mode_name a.r_mode) (mode_name b.r_mode))
    in
    let rec go i =
      if i >= na then None
      else match explain_shard i with Some _ as s -> s | None -> go (i + 1)
    in
    go 0
  end
