(** Domain-parallel sharded KV serving path.

    A shard owns one fully independent simulator stack (persistent
    {!Spp_sim.Memdev} + {!Spp_sim.Space} + pool + KV engine), so
    driving different shards from different domains never mutates
    shared simulator state — the pool is the unit of parallelism, as in
    PMDK's per-pool concurrency model. A hash router partitions the key
    space; merged stats views are summed from per-shard snapshots after
    the driving domains join. *)

type shard

type t

val create :
  ?nbuckets:int -> ?pool_size:int -> ?cache_cap:int ->
  ?engine:Spp_pmemkv.Engine.spec -> nshards:int -> Spp_access.variant -> t
(** [create ~nshards variant] builds [nshards] independent shards, each
    with its own pool ([pool_size] bytes, default 8 MiB) and an engine
    over it — [engine] defaults to {!Spp_pmemkv.Engines.cmap}
    ([nbuckets] buckets per shard, default 1024; ordered engines ignore
    it). Each engine's root oid is parked in its pool's root object, so
    a reopened image — or a promoted replica — can re-attach the map
    from durable state alone. [cache_cap > 0] additionally attaches a
    volatile {!Spp_pmemkv.Rcache} of that many entries to every shard
    (default 0: no cache). *)

val set_shard :
  t -> int -> access:Spp_access.t -> kv:Spp_pmemkv.Engine.packed -> unit
(** Failover repoint: make index [i] resolve to a different stack (a
    promoted replica's). The router is a pure function of the key and
    shard count, so no key moves. The caller must guarantee no other
    domain is executing inside the old stack — the serve layer performs
    the swap on the shard's own worker domain. *)

val nshards : t -> int
val variant : t -> Spp_access.variant

val engine : t -> Spp_pmemkv.Engine.spec
(** The engine module every shard of this store runs. *)

val engine_name : t -> string

val shard : t -> int -> shard
val shard_index : shard -> int
val shard_access : shard -> Spp_access.t
val shard_kv : shard -> Spp_pmemkv.Engine.packed

(** {1 Routing} *)

val route_hash : string -> int
(** Stable non-negative key hash, decorrelated from cmap's bucket hash. *)

val shard_of_key : nshards:int -> string -> int
(** The unique shard index in [\[0, nshards)] serving this key; a pure
    function of the key and the shard count. *)

val route : t -> string -> int

(** {1 Routed operations} *)

val put : t -> key:string -> value:string -> unit
val get : t -> string -> string option
val remove : t -> string -> bool
val count_all : t -> int

val scan : t -> lo:string -> hi:string -> limit:int -> (string * string) list
(** Ordered range scan across the whole store: every shard scans its
    hash-partitioned slice and the sorted slices are merged and clipped
    to [limit]. Cache-bypassing, like the per-engine scans. *)

(** {1 Merged accounting}

    Only meaningful once the domains driving the shards have joined —
    [Domain.join] is the synchronization point that makes per-shard
    stats safe to read from the merging domain. *)

val merged_stats : t -> Spp_sim.Space.stats
val merged_counters : t -> Spp_sim.Memdev.counters

val merged_cache_stats : t -> Spp_pmemkv.Rcache.stats
(** Elementwise sum of the per-shard read-cache counters; all zero when
    no shard has a cache attached. *)

val cache_enabled : t -> bool

val reset_stats : t -> unit
(** Also resets the per-shard read-cache counters (not their contents). *)
