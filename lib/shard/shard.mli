(** Domain-parallel sharded KV serving path.

    A shard owns one fully independent simulator stack (persistent
    {!Spp_sim.Memdev} + {!Spp_sim.Space} + pool + KV engine), so
    driving different shards from different domains never mutates
    shared simulator state — the pool is the unit of parallelism, as in
    PMDK's per-pool concurrency model. A hash router partitions the key
    space; merged stats views are summed from per-shard snapshots after
    the driving domains join. *)

type shard

type t

val create :
  ?nbuckets:int -> ?pool_size:int -> ?cache_cap:int ->
  ?engine:Spp_pmemkv.Engine.spec -> ?nslots:int -> nshards:int ->
  Spp_access.variant -> t
(** [create ~nshards variant] builds [nshards] independent shards, each
    with its own pool ([pool_size] bytes, default 8 MiB) and an engine
    over it — [engine] defaults to {!Spp_pmemkv.Engines.cmap}
    ([nbuckets] buckets per shard, default 1024; ordered engines ignore
    it). Each engine's root oid is parked in its pool's root object, so
    a reopened image — or a promoted replica — can re-attach the map
    from durable state alone. [cache_cap > 0] additionally attaches a
    volatile {!Spp_pmemkv.Rcache} of that many entries to every shard
    (default 0: no cache). [nslots] sizes the slot space (a power of
    two, default {!default_nslots}); the initial slot table is the
    static assignment [slot mod nshards]. *)

val set_shard :
  t -> int -> access:Spp_access.t -> kv:Spp_pmemkv.Engine.packed -> unit
(** Failover repoint: make index [i] resolve to a different stack (a
    promoted replica's). The router is a pure function of the key and
    shard count, so no key moves. The caller must guarantee no other
    domain is executing inside the old stack — the serve layer performs
    the swap on the shard's own worker domain. *)

val nshards : t -> int
val variant : t -> Spp_access.variant

val engine : t -> Spp_pmemkv.Engine.spec
(** The engine module every shard of this store runs. *)

val engine_name : t -> string

val shard : t -> int -> shard
val shard_index : shard -> int
val shard_access : shard -> Spp_access.t
val shard_kv : shard -> Spp_pmemkv.Engine.packed

(** {1 Routing}

    Keys hash into a fixed power-of-two slot space; a versioned
    slot->shard table (an immutable snapshot behind an atomic, swapped
    whole by the serve layer's migration protocol) maps slots to
    shards. The static default assignment is [slot mod nshards]. *)

val default_nslots : int
(** Default slot-space size (1024). *)

val route_hash : string -> int
(** Stable non-negative key hash, decorrelated from cmap's bucket hash. *)

val slot_of_key : nslots:int -> string -> int
(** The slot in [\[0, nslots)] this key hashes to; [nslots] must be a
    power of two. A pure function of the key and the slot count. *)

val shard_of_key : nshards:int -> string -> int
(** The shard index in [\[0, nshards)] serving this key under the
    static default slot assignment; a pure function of the key and the
    shard count. Agrees with {!route} on any store created with the
    default slot count whose table has not been rewritten. *)

val route : t -> string -> int
(** The shard currently owning this key's slot, per one coherent
    snapshot of the live slot table. *)

val nslots : t -> int
val slot_of : t -> string -> int

val table_version : t -> int
(** Monotonic version of the live slot table; bumped by every
    {!set_slot_owner}. *)

val owner : t -> int -> int
(** [owner t slot] is the shard currently assigned that slot. *)

val assignment : t -> int array
(** A copy of the live slot->shard assignment, one coherent snapshot. *)

val set_slot_owner : t -> slot:int -> shard:int -> unit
(** Install a new table snapshot with [slot] reassigned and the version
    bumped. Single-writer: callers must serialize updates (the serve
    layer holds its migration lock); readers are never blocked. *)

val owned_slots : t -> int -> int
(** How many slots the live table assigns to shard [i]. *)

val slots_of_shard : t -> int -> int list
(** The slots the live table assigns to shard [i], ascending. *)

(** {1 Routed operations} *)

val put : t -> key:string -> value:string -> unit
val get : t -> string -> string option
val remove : t -> string -> bool
val count_all : t -> int

val scan : t -> lo:string -> hi:string -> limit:int -> (string * string) list
(** Ordered range scan across the whole store: every shard scans its
    hash-partitioned slice and the sorted slices are merged and clipped
    to [limit]. Each slice is ownership-filtered against one slot-table
    snapshot, so leftover copies on a slot's previous owner are never
    double-reported. Cache-bypassing, like the per-engine scans. *)

(** {1 Merged accounting}

    Only meaningful once the domains driving the shards have joined —
    [Domain.join] is the synchronization point that makes per-shard
    stats safe to read from the merging domain. *)

val merged_stats : t -> Spp_sim.Space.stats
val merged_counters : t -> Spp_sim.Memdev.counters

val merged_cache_stats : t -> Spp_pmemkv.Rcache.stats
(** Elementwise sum of the per-shard read-cache counters; all zero when
    no shard has a cache attached. *)

val cache_enabled : t -> bool

val reset_stats : t -> unit
(** Also resets the per-shard read-cache counters (not their contents). *)
