(* Hot-slot rebalancer over the serve pipeline's migration protocol.

   Tick-driven, no background domain: the caller (the bench's driving
   loop, sppctl's window loop, or a test) calls [tick] between
   submission windows and the rebalancer decides from two signals it
   samples out of [Serve] — the per-slot routed-op histogram
   ([Serve.slot_op_counts], deltas since the previous tick) and the
   per-shard mailbox depths ([Serve.queue_depths]). Per-shard load is
   the sum of its owned slots' op deltas plus a queue-depth term, so a
   shard that is both hot and backlogged ranks hottest.

   Hysteresis keeps it from thrashing: a move is proposed only when the
   hottest shard carries at least [min_ratio] times the coldest's load
   and at least [min_ops] ops this tick, the imbalance must persist for
   [persist] consecutive ticks before the first migration fires, and
   after firing the rebalancer goes quiet for [cooldown] ticks — a slot
   that just moved needs a tick or two before its op counts justify
   moving anything else. Each firing migrates at most [moves_per_tick]
   of the hottest shard's hottest slots to the coldest shard, never
   moving a slot that carried no traffic and never letting one move
   invert the imbalance it is fixing (the candidate's own delta is
   re-checked against the gap). *)

type config = {
  min_ratio : float;     (* hottest/coldest load ratio that arms a move *)
  min_ops : int;         (* ticks with fewer hot-shard ops are ignored *)
  persist : int;         (* consecutive armed ticks before the first move *)
  cooldown : int;        (* quiet ticks after a firing *)
  moves_per_tick : int;  (* max slots migrated per firing *)
}

let default_config =
  { min_ratio = 1.5; min_ops = 64; persist = 2; cooldown = 2;
    moves_per_tick = 4 }

type stats = {
  rb_ticks : int;
  rb_armed : int;       (* ticks whose imbalance exceeded the threshold *)
  rb_moves : int;       (* migrations performed *)
  rb_keys_moved : int;
}

type t = {
  serve : Serve.t;
  cfg : config;
  mutable prev : int array;    (* slot op counts at the last tick *)
  mutable streak : int;        (* consecutive armed ticks *)
  mutable quiet : int;         (* cooldown ticks remaining *)
  mutable ticks : int;
  mutable armed : int;
  mutable moves : int;
  mutable keys : int;
}

let create ?(cfg = default_config) serve =
  if cfg.min_ratio < 1.0 then
    invalid_arg "Rebalance.create: min_ratio must be >= 1";
  if cfg.moves_per_tick <= 0 then
    invalid_arg "Rebalance.create: moves_per_tick must be positive";
  { serve; cfg;
    prev = Serve.slot_op_counts serve;
    streak = 0; quiet = 0; ticks = 0; armed = 0; moves = 0; keys = 0 }

let stats t =
  { rb_ticks = t.ticks; rb_armed = t.armed; rb_moves = t.moves;
    rb_keys_moved = t.keys }

(* One observation + decision round. Returns the number of migrations
   performed (0 almost always). *)
let tick t =
  t.ticks <- t.ticks + 1;
  let store = Serve.store t.serve in
  let nshards = Shard.nshards store in
  let cur = Serve.slot_op_counts t.serve in
  let nslots = Array.length cur in
  let delta = Array.init nslots (fun s -> cur.(s) - t.prev.(s)) in
  t.prev <- cur;
  if nshards < 2 then 0
  else begin
    let assign = Shard.assignment store in
    let depths = Serve.queue_depths t.serve in
    (* Load per shard: owned slots' op deltas, plus the current backlog
       (ops counted at submit may still be queued; the depth term keeps
       a drowning shard hot even if submitters stalled on it). *)
    let load = Array.make nshards 0 in
    Array.iteri (fun s d -> load.(assign.(s)) <- load.(assign.(s)) + d) delta;
    Array.iteri (fun i d -> load.(i) <- load.(i) + d) depths;
    let hot = ref 0 and cold = ref 0 in
    for i = 1 to nshards - 1 do
      if load.(i) > load.(!hot) then hot := i;
      if load.(i) < load.(!cold) then cold := i
    done;
    let hot = !hot and cold = !cold in
    let imbalance =
      load.(hot) >= t.cfg.min_ops
      && float_of_int load.(hot)
         >= t.cfg.min_ratio *. float_of_int (max 1 load.(cold))
    in
    if t.quiet > 0 then begin
      t.quiet <- t.quiet - 1;
      if imbalance then t.armed <- t.armed + 1;
      0
    end
    else if not imbalance then begin
      t.streak <- 0;
      0
    end
    else begin
      t.armed <- t.armed + 1;
      t.streak <- t.streak + 1;
      if t.streak < t.cfg.persist then 0
      else begin
        (* Greedy repack: re-pick the hottest/coldest pair after every
           move — one firing can drain several hot shards, not just the
           one that armed the tick. Each move takes the current hottest
           shard's hottest slot, and fires only while it strictly
           narrows that pair's gap (moving d shrinks it by 2d as long
           as d < gap) — a move that would just swap which shard is hot
           is the thrash hysteresis exists to prevent. A source always
           keeps at least one slot. *)
        let loads = Array.copy load in
        let moved = ref 0 and stop = ref false in
        while !moved < t.cfg.moves_per_tick && not !stop do
          let hot = ref 0 and cold = ref 0 in
          for i = 1 to nshards - 1 do
            if loads.(i) > loads.(!hot) then hot := i;
            if loads.(i) < loads.(!cold) then cold := i
          done;
          let hot = !hot and cold = !cold in
          let gap = loads.(hot) - loads.(cold) in
          if
            float_of_int loads.(hot)
            < t.cfg.min_ratio *. float_of_int (max 1 loads.(cold))
            || Shard.owned_slots store hot <= 1
          then stop := true
          else begin
            let mine =
              List.filter (fun s -> delta.(s) > 0 && delta.(s) < gap)
                (Shard.slots_of_shard store hot)
              |> List.sort (fun a b -> compare delta.(b) delta.(a))
            in
            match mine with
            | [] -> stop := true
            | s :: _ -> (
              match Serve.migrate_slot t.serve ~slot:s ~dst:cold with
              | r ->
                t.moves <- t.moves + 1;
                t.keys <- t.keys + r.Serve.mig_keys;
                loads.(hot) <- loads.(hot) - delta.(s);
                loads.(cold) <- loads.(cold) + delta.(s);
                incr moved
              | exception Serve.Migration_failed _ -> stop := true)
          end
        done;
        if !moved > 0 then begin
          t.quiet <- t.cfg.cooldown;
          t.streak <- 0
        end;
        !moved
      end
    end
  end
