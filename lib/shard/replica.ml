(* Batch replication and failover for the shard stack.

   Each primary shard (Memdev/Space/Pool/engine) gains replica stacks
   built from the primary's durable image ([Memdev.durable_snapshot] +
   [Memdev.of_image] + [Pool.open_dev]): same uuid, same base, byte-
   identical starting state. The primary's pool carries a batch
   observer ([Pool.set_batch_observer]) that fires once per committed
   redo sub-batch with the commit's payload — staged entries plus the
   direct-write blobs that bypassed the log — strictly after the commit
   is durable. The group stamps each payload with a sequence number and
   ships it over a lossy in-process channel ([Netfault]) with bounded
   retry and exponential backoff; a replica applies payloads in
   sequence order through [Pool.apply_batch_payload], which re-runs the
   standard redo protocol on the replica's own log. Identical payloads
   through identical code keep every replica bit-identical to the
   primary's post-commit state at each sequence number.

   Because a payload only exists for a commit the primary made durable,
   replicas can lag but never lead: at any crash point the replica
   prefix is at most one commit behind what cold recovery of the
   primary produces — the gap the promotion-equivalence oracle bounds.

   Failure detection is channel-driven: a send whose retry budget is
   exhausted, or [hb_timeout] consecutive missed heartbeats, marks the
   replica down. Down replicas receive nothing further (so applied
   sequence numbers stay contiguous — no gaps, ever) and drop out of
   the ack quorum; an ack-policy wait that cannot gather its required
   acks completes anyway and counts a degraded ack, which the serving
   layer surfaces.

   Threading: [threaded = false] applies payloads inline on the
   committing domain — fully deterministic, the torture-harness
   configuration. [threaded = true] gives each replica an applier
   Domain fed by a Mutex/Condition channel; ack waits block on the
   replica's condition variable. Promotion seals the group (appliers
   stop after the op in flight; queued-but-unapplied payloads — never
   acked to any client — are discarded), picks the live replica with
   the highest applied sequence number, and cold-restarts its stack
   from its durable image per the attach contract: fresh Space, fresh
   access layer, map re-attached through the pool root, read cache
   starting cold. *)

open Spp_sim
open Spp_pmdk

type ack_policy = Async | Semi_sync | Sync

let ack_policy_to_string = function
  | Async -> "async"
  | Semi_sync -> "semi-sync"
  | Sync -> "sync"

let ack_policy_of_string = function
  | "async" -> Some Async
  | "semi-sync" | "semi_sync" | "semisync" -> Some Semi_sync
  | "sync" -> Some Sync
  | _ -> None

exception Promotion_failed of { shard : int; reason : string }

let () =
  Printexc.register_printer (function
    | Promotion_failed { shard; reason } ->
      Some
        (Printf.sprintf "Replica.Promotion_failed: shard %d: %s" shard reason)
    | _ -> None)

type config = {
  replicas : int;        (* replica stacks per shard *)
  policy : ack_policy;
  threaded : bool;       (* applier Domain per replica vs inline apply *)
  send_retries : int;    (* total attempts per message *)
  backoff_ns : int;      (* base retry backoff; doubles per attempt *)
  hb_timeout : int;      (* consecutive missed heartbeats before Down *)
  drop_rate : float;     (* channel loss probability *)
  seed : int;            (* channel fault seed (per-shard salted) *)
}

let default_config =
  { replicas = 1; policy = Semi_sync; threaded = true; send_retries = 4;
    backoff_ns = 1_000; hb_timeout = 3; drop_rate = 0.; seed = 0 }

type link = {
  l_replica : int;
  l_space : Space.t;
  l_pool : Pool.t;
  l_mu : Mutex.t;
  l_cond : Condition.t;   (* signaled on delivery, apply, death, stop *)
  l_q : (int * Pool.batch_payload * float) Queue.t;
  mutable l_applied_seq : int;   (* last applied commit seq, under l_mu *)
  mutable l_applied_ops : int;   (* whole ops covered by applied commits *)
  mutable l_alive : bool;        (* failure-detector verdict *)
  mutable l_missed : int;        (* consecutive missed heartbeats *)
  mutable l_stop : bool;
  mutable l_domain : unit Domain.t option;
  l_lag : Spp_benchlib.Histogram.t;   (* commit-to-apply lag, ns; under l_mu *)
}

type t = {
  g_shard : int;
  g_cfg : config;
  g_engine : Spp_pmemkv.Engine.spec;   (* how promote re-attaches the map *)
  g_net : Netfault.t;
  g_links : link array;
  mutable g_seq : int;            (* commits shipped *)
  mutable g_ops : int;            (* ops covered by shipped commits *)
  mutable g_retries : int;        (* resend attempts beyond the first *)
  mutable g_backoff_ns : int;     (* total backoff spent *)
  mutable g_degraded_acks : int;  (* policy waits short of their quorum *)
  mutable g_sealed : bool;
}

let now () = Spp_benchlib.Bench_util.now_mono ()

(* --- replica-side apply ----------------------------------------------- *)

let apply_link l (seq, payload, ts) =
  Pool.apply_batch_payload l.l_pool payload;
  let lag_ns = int_of_float ((now () -. ts) *. 1e9) in
  Mutex.lock l.l_mu;
  l.l_applied_seq <- seq;
  l.l_applied_ops <- l.l_applied_ops + payload.Pool.p_ops;
  Spp_benchlib.Histogram.add l.l_lag lag_ns;
  Condition.broadcast l.l_cond;
  Mutex.unlock l.l_mu

let applier_loop l =
  let running = ref true in
  while !running do
    Mutex.lock l.l_mu;
    while Queue.is_empty l.l_q && not l.l_stop do
      Condition.wait l.l_cond l.l_mu
    done;
    if l.l_stop then begin
      (* Seal: anything still queued was delivered but never applied,
         hence never acked to any client — discard, keeping the sealed
         prefix exactly the fully-acked one. *)
      Queue.clear l.l_q;
      Mutex.unlock l.l_mu;
      running := false
    end
    else begin
      let item = Queue.pop l.l_q in
      Mutex.unlock l.l_mu;
      apply_link l item
    end
  done

(* --- primary-side ship ------------------------------------------------ *)

let mark_down l =
  Mutex.lock l.l_mu;
  l.l_alive <- false;
  Condition.broadcast l.l_cond;
  Mutex.unlock l.l_mu

let deliver g l seq payload ts =
  if g.g_cfg.threaded then begin
    Mutex.lock l.l_mu;
    Queue.push (seq, payload, ts) l.l_q;
    Condition.signal l.l_cond;
    Mutex.unlock l.l_mu
  end
  else apply_link l (seq, payload, ts)

(* Bounded retry with exponential backoff; exhaustion is a failure-
   detector verdict (the channel to this replica is gone). *)
let send g l seq payload ts =
  let rec go attempt backoff =
    if Netfault.attempt g.g_net then deliver g l seq payload ts
    else if attempt >= g.g_cfg.send_retries then mark_down l
    else begin
      g.g_retries <- g.g_retries + 1;
      g.g_backoff_ns <- g.g_backoff_ns + backoff;
      if g.g_cfg.threaded then Unix.sleepf (float_of_int backoff *. 1e-9);
      go (attempt + 1) (backoff * 2)
    end
  in
  go 1 g.g_cfg.backoff_ns

let on_commit g payload =
  if not g.g_sealed then begin
    g.g_seq <- g.g_seq + 1;
    g.g_ops <- g.g_ops + payload.Pool.p_ops;
    let ts = now () in
    Array.iter
      (fun l -> if l.l_alive then send g l g.g_seq payload ts)
      g.g_links
  end

(* --- construction ----------------------------------------------------- *)

let create ?(cfg = default_config) ?(engine = Spp_pmemkv.Engines.cmap) ~shard
    (primary : Pool.t) =
  if cfg.replicas <= 0 then
    invalid_arg "Replica.create: need at least one replica";
  if cfg.send_retries <= 0 then
    invalid_arg "Replica.create: send_retries must be positive";
  let base = Pool.base primary in
  let links =
    Array.init cfg.replicas (fun i ->
      (* Bit-identical starting image: snapshot the primary's durable
         state (the group must be created at a quiesced point) and open
         it like a restarted process would. Replicas run untracked —
         they are not the device under fault injection. *)
      let img = Memdev.durable_snapshot (Pool.dev primary) in
      let name = Printf.sprintf "%s-r%d" (Memdev.name (Pool.dev primary)) i in
      let dev = Memdev.of_image ~name img in
      let space = Space.create () in
      match Pool.open_dev space ~base dev with
      | Error e ->
        invalid_arg
          ("Replica.create: replica image rejected: "
           ^ Pool.pool_error_to_string e)
      | Ok (pool, _report) ->
        { l_replica = i; l_space = space; l_pool = pool;
          l_mu = Mutex.create (); l_cond = Condition.create ();
          l_q = Queue.create ();
          l_applied_seq = 0; l_applied_ops = 0;
          l_alive = true; l_missed = 0; l_stop = false; l_domain = None;
          l_lag = Spp_benchlib.Histogram.create () })
  in
  let g =
    { g_shard = shard; g_cfg = cfg; g_engine = engine;
      g_net =
        Netfault.create ~seed:(cfg.seed + (31 * shard))
          ~drop_rate:cfg.drop_rate ();
      g_links = links;
      g_seq = 0; g_ops = 0; g_retries = 0; g_backoff_ns = 0;
      g_degraded_acks = 0; g_sealed = false }
  in
  if cfg.threaded then
    Array.iter
      (fun l -> l.l_domain <- Some (Domain.spawn (fun () -> applier_loop l)))
      g.g_links;
  Pool.set_batch_observer primary (Some (fun p -> on_commit g p));
  g

let shard t = t.g_shard
let config t = t.g_cfg
let seq t = t.g_seq
let shipped_ops t = t.g_ops

(* --- failure detector ------------------------------------------------- *)

(* One heartbeat round over the same lossy channel as the data path: a
   link bad enough to drop commits misses pings too. Called by the
   serving layer between drains; deterministic under a seeded channel. *)
let heartbeat g =
  Array.iter
    (fun l ->
      if l.l_alive then begin
        if Netfault.attempt g.g_net then l.l_missed <- 0
        else begin
          l.l_missed <- l.l_missed + 1;
          if l.l_missed >= g.g_cfg.hb_timeout then mark_down l
        end
      end)
    g.g_links

let live_replicas g =
  Array.fold_left (fun n l -> if l.l_alive then n + 1 else n) 0 g.g_links

(* --- ack policies ----------------------------------------------------- *)

(* Block until the link acked [seq] or died; true iff acked. Immediate
   in inline mode (apply happened during the commit). *)
let wait_link l seqno =
  Mutex.lock l.l_mu;
  while l.l_alive && l.l_applied_seq < seqno && not l.l_stop do
    Condition.wait l.l_cond l.l_mu
  done;
  let acked = l.l_applied_seq >= seqno in
  Mutex.unlock l.l_mu;
  acked

(* Gate a client ack on the policy's quorum for everything shipped so
   far. A quorum that cannot be met (replicas down) completes the wait
   and counts a degraded ack — availability over blocking forever on a
   dead link; the serving layer exposes the count. *)
let wait_acks g =
  let seqno = g.g_seq in
  if seqno > 0 then
    match g.g_cfg.policy with
    | Async -> ()
    | Semi_sync ->
      if not (Array.exists (fun l -> wait_link l seqno) g.g_links) then
        g.g_degraded_acks <- g.g_degraded_acks + 1
    | Sync ->
      let all =
        Array.fold_left (fun acc l -> wait_link l seqno && acc) true g.g_links
      in
      if not all then g.g_degraded_acks <- g.g_degraded_acks + 1

(* --- stats ------------------------------------------------------------ *)

type stats = {
  rs_shard : int;
  rs_replicas : int;
  rs_live : int;
  rs_seq : int;
  rs_ops : int;
  rs_acked_seq : int;      (* highest seq every live replica has applied *)
  rs_retries : int;
  rs_backoff_ns : int;
  rs_degraded_acks : int;
  rs_net : Netfault.stats;
}

let stats g =
  let acked = ref g.g_seq in
  let live = ref 0 in
  Array.iter
    (fun l ->
      Mutex.lock l.l_mu;
      if l.l_alive then begin
        incr live;
        if l.l_applied_seq < !acked then acked := l.l_applied_seq
      end;
      Mutex.unlock l.l_mu)
    g.g_links;
  { rs_shard = g.g_shard;
    rs_replicas = Array.length g.g_links;
    rs_live = !live;
    rs_seq = g.g_seq;
    rs_ops = g.g_ops;
    rs_acked_seq = (if !live = 0 then 0 else !acked);
    rs_retries = g.g_retries;
    rs_backoff_ns = g.g_backoff_ns;
    rs_degraded_acks = g.g_degraded_acks;
    rs_net = Netfault.stats g.g_net }

let lag_hist g =
  Array.fold_left
    (fun acc l ->
      Mutex.lock l.l_mu;
      let m = Spp_benchlib.Histogram.merge acc l.l_lag in
      Mutex.unlock l.l_mu;
      m)
    (Spp_benchlib.Histogram.create ())
    g.g_links

(* --- promotion -------------------------------------------------------- *)

type promoted = {
  pr_shard : int;
  pr_replica : int;
  pr_seq : int;    (* sealed commit prefix, in sequence numbers *)
  pr_ops : int;    (* whole operations that prefix covers *)
  pr_access : Spp_access.t;
  pr_kv : Spp_pmemkv.Engine.packed;
}

let seal g =
  if not g.g_sealed then begin
    g.g_sealed <- true;
    Array.iter
      (fun l ->
        Mutex.lock l.l_mu;
        l.l_stop <- true;
        Condition.broadcast l.l_cond;
        Mutex.unlock l.l_mu)
      g.g_links;
    Array.iter
      (fun l ->
        match l.l_domain with
        | Some d -> Domain.join d; l.l_domain <- None
        | None -> ())
      g.g_links
  end

let sealed g = g.g_sealed

let promote ?(cache_cap = 0) ?replica g =
  if g.g_sealed then
    raise (Promotion_failed { shard = g.g_shard; reason = "already sealed" });
  seal g;
  let pick =
    match replica with
    | Some i ->
      if i < 0 || i >= Array.length g.g_links then
        raise
          (Promotion_failed
             { shard = g.g_shard;
               reason = Printf.sprintf "no replica %d" i });
      g.g_links.(i)
    | None ->
      (* prefer live replicas; among equals, the longest applied prefix *)
      Array.fold_left
        (fun best l ->
          let better =
            (l.l_alive && not best.l_alive)
            || (l.l_alive = best.l_alive
                && l.l_applied_seq > best.l_applied_seq)
          in
          if better then l else best)
        g.g_links.(0) g.g_links
  in
  (* Cold restart per the attach contract: reopen the replica's durable
     image in a fresh Space, rebuild the access layer, re-attach the
     map through the pool root. No volatile state survives — exactly
     what a cold [Pool.open_dev] recovery of the replica would see. *)
  let img = Memdev.durable_snapshot (Pool.dev pick.l_pool) in
  let dev =
    Memdev.of_image
      ~name:(Memdev.name (Pool.dev pick.l_pool) ^ "-promoted") img
  in
  let space = Space.create () in
  match Pool.open_dev space ~base:(Pool.base pick.l_pool) dev with
  | Error e ->
    raise
      (Promotion_failed
         { shard = g.g_shard; reason = Pool.pool_error_to_string e })
  | Ok (pool, _report) ->
    let access = Spp_access.attach space pool in
    let root = Pool.root_oid pool in
    if Oid.is_null root then
      raise
        (Promotion_failed
           { shard = g.g_shard; reason = "replica pool has no root object" });
    let map_root = Pool.load_oid pool ~off:root.Oid.off in
    let kv = Spp_pmemkv.Engine.attach g.g_engine access ~root:map_root in
    (* The read cache never fails over: a promoted stack starts cold. *)
    if cache_cap > 0 then
      Spp_pmemkv.Engine.set_cache kv
        (Some (Spp_pmemkv.Rcache.create ~cap:cache_cap));
    { pr_shard = g.g_shard; pr_replica = pick.l_replica;
      pr_seq = pick.l_applied_seq; pr_ops = pick.l_applied_ops;
      pr_access = access; pr_kv = kv }

(* Direct, pre-promotion view of a replica's stack — the torture oracle
   reads both this and the promoted stack. *)
let replica_pool g i = g.g_links.(i).l_pool
let replica_applied_seq g i = g.g_links.(i).l_applied_seq
let replica_applied_ops g i = g.g_links.(i).l_applied_ops
let replica_alive g i = g.g_links.(i).l_alive
let net g = g.g_net
