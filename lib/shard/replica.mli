(** Batch replication and failover for the shard stack.

    A replication group attaches replica stacks to a primary shard's
    pool. Each replica is a full Memdev/Space/Pool stack opened from
    the primary's durable image; the primary's
    {!Spp_pmdk.Pool.set_batch_observer} hook ships every committed redo
    sub-batch — staged entries plus the direct-write blobs that
    bypassed the log — as a sequence-numbered payload over a lossy
    in-process channel ({!Spp_sim.Netfault}) with bounded retry and
    exponential backoff. Replicas apply payloads in order through
    {!Spp_pmdk.Pool.apply_batch_payload}, staying bit-identical to the
    primary's post-commit state at every sequence number.

    Payloads are shipped strictly {e after} the commit is durable on
    the primary, so a replica can lag but never lead: at any primary
    crash point, the replica's applied prefix is at most one commit
    behind what cold recovery of the primary's image produces. That
    bound is what the failover torture oracle checks.

    Failure detection is channel-driven: retry exhaustion on a data
    send, or [hb_timeout] consecutive missed {!heartbeat}s, marks a
    replica down. Down replicas receive nothing further (applied
    sequence numbers never have gaps) and leave the ack quorum; a
    policy wait short of its quorum completes anyway and counts a
    degraded ack. *)

(** When a mutation is acked to the client, relative to replication:
    [Async] — on primary durability alone; [Semi_sync] — after at
    least one live replica applied everything shipped so far; [Sync] —
    after every live replica did. *)
type ack_policy = Async | Semi_sync | Sync

val ack_policy_to_string : ack_policy -> string
val ack_policy_of_string : string -> ack_policy option

exception Promotion_failed of { shard : int; reason : string }
(** Promotion could not produce a serving stack (double promotion, bad
    replica index, or the replica's image failed to reopen). Registered
    with [Printexc]. *)

type config = {
  replicas : int;        (** replica stacks per shard (>= 1) *)
  policy : ack_policy;
  threaded : bool;       (** applier Domain per replica; [false] applies
                             inline on the committing domain —
                             deterministic, the torture configuration *)
  send_retries : int;    (** total send attempts per message (>= 1) *)
  backoff_ns : int;      (** base retry backoff, doubled per attempt *)
  hb_timeout : int;      (** consecutive missed heartbeats before down *)
  drop_rate : float;     (** channel loss probability, in [0, 1) *)
  seed : int;            (** channel fault seed, salted per shard *)
}

val default_config : config
(** One replica, semi-sync, threaded, 4 attempts, 1 us base backoff,
    3-beat failure detector, lossless channel. *)

type t

val create :
  ?cfg:config -> ?engine:Spp_pmemkv.Engine.spec -> shard:int ->
  Spp_pmdk.Pool.t -> t
(** [create ~shard primary] snapshots the primary pool's durable image
    [cfg.replicas] times, opens each as an independent replica stack,
    spawns applier domains when [cfg.threaded], and installs the batch
    observer on [primary]. The primary must be quiesced (no batch in
    flight, stores fenced) at the call. [engine] (default
    {!Spp_pmemkv.Engines.cmap}) is the engine module {!promote} uses to
    re-attach the map through the pool root — replication itself is
    engine-agnostic (payloads are redo entries plus raw bytes), so it
    must simply match what the primary runs. *)

val shard : t -> int
val config : t -> config

val seq : t -> int
(** Commits shipped so far; the sequence number of the newest payload. *)

val shipped_ops : t -> int
(** Whole operations covered by the shipped commits. *)

(** {1 Failure detection and acks} *)

val heartbeat : t -> unit
(** One ping round to every live replica over the same lossy channel as
    the data path. [hb_timeout] consecutive losses mark the replica
    down. Call from the domain that owns the primary (the serve worker,
    between drains). *)

val live_replicas : t -> int

val wait_acks : t -> unit
(** Block per the ack policy until the required replicas have applied
    everything shipped so far. Returns immediately under [Async], or
    when nothing was ever shipped. A quorum that can no longer be met
    (replicas down) completes the wait and increments the degraded-ack
    counter rather than blocking forever. *)

(** {1 Promotion} *)

val seal : t -> unit
(** Stop shipping and join the applier domains without promoting:
    queued-but-unapplied payloads are discarded, applied prefixes and
    lag histograms become race-free to read. Idempotent; implied by
    {!promote}. *)

val sealed : t -> bool

type promoted = {
  pr_shard : int;
  pr_replica : int;   (** which replica was promoted *)
  pr_seq : int;       (** sealed commit prefix, in sequence numbers *)
  pr_ops : int;       (** whole operations that prefix covers *)
  pr_access : Spp_access.t;
  pr_kv : Spp_pmemkv.Engine.packed;
}

val promote : ?cache_cap:int -> ?replica:int -> t -> promoted
(** Seal the group and promote a replica to a serving stack. Appliers
    stop after the payload in flight; queued-but-unapplied payloads
    (never acked to any client) are discarded, so the sealed prefix is
    exactly the fully-applied one. [replica] picks a specific stack;
    the default prefers live replicas, then the longest applied prefix.
    The chosen image is reopened cold — fresh Space, fresh access
    layer, map re-attached via the pool root, read cache (capacity
    [cache_cap], default none) starting empty — per the attach
    contract. Raises {!Promotion_failed} on a second call. *)

(** {1 Stats} *)

type stats = {
  rs_shard : int;
  rs_replicas : int;
  rs_live : int;
  rs_seq : int;            (** commits shipped *)
  rs_ops : int;            (** ops covered by shipped commits *)
  rs_acked_seq : int;      (** highest seq every live replica applied
                               (0 when none live) *)
  rs_retries : int;        (** resend attempts beyond the first *)
  rs_backoff_ns : int;     (** total backoff spent *)
  rs_degraded_acks : int;  (** policy waits short of their quorum *)
  rs_net : Spp_sim.Netfault.stats;
}

val stats : t -> stats

val lag_hist : t -> Spp_benchlib.Histogram.t
(** Merged commit-to-apply lag across replicas, nanoseconds. *)

(** {1 Introspection for tests and the torture oracle} *)

val replica_pool : t -> int -> Spp_pmdk.Pool.t
val replica_applied_seq : t -> int -> int
val replica_applied_ops : t -> int -> int
val replica_alive : t -> int -> bool
val net : t -> Spp_sim.Netfault.t
