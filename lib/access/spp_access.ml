(* The access layer: one "compiled binary" per benchmarking variant
   (paper Table I).

   A workload written against this record is the analogue of an
   application compiled once per variant: selecting the variant decides
   which pointer representation pmemobj_direct returns, what pointer
   arithmetic does, and what happens on every load, store, and memory
   intrinsic —

     Pmdk      native PMDK, raw pointers, unchecked accesses;
     Spp       tagged pointers + SPP runtime hooks (checked implicitly);
     Safepm    raw pointers + shadow-memory lookup on every access;
     Memcheck  raw pointers + side-table interval lookup on every access.

   PM management always goes through the (mode-matched) mini-PMDK pool
   underneath, so crash consistency is identical across variants. *)

open Spp_sim
open Spp_core
open Spp_pmdk

type variant =
  | Pmdk
  | Spp
  | Safepm
  | Memcheck
  | Spp_all
    (* SPP generalized to volatile pointers too (paper §VII): volatile
       allocations are mapped into the taggable low address span and
       carry delta tags, at the cost of instrumenting all memory *)

let variant_name = function
  | Pmdk -> "pmdk"
  | Spp -> "spp"
  | Safepm -> "safepm"
  | Memcheck -> "memcheck"
  | Spp_all -> "spp-all"

let all_variants = [ Pmdk; Safepm; Spp; Memcheck ]
(* Spp_all is the §VII extension, not part of the paper's Table I *)

type t = {
  name : string;
  variant : variant;
  space : Space.t;
  pool : Pool.t;
  (* pointer life cycle *)
  direct : Oid.t -> int;
  gep : int -> int -> int;
  ptr_to_int : int -> int;
  for_external : int -> int;
  (* accesses *)
  load_word : int -> int;
  store_word : int -> int -> unit;
  load_u8 : int -> int;
  store_u8 : int -> int -> unit;
  read_bytes : int -> int -> Bytes.t;
  read_into : int -> len:int -> dst:Bytes.t -> dst_off:int -> unit;
  read_sub : int -> int -> string;
  write_bytes : int -> Bytes.t -> unit;
  write_string : int -> string -> unit;
  (* hoisted-check read windows: the variant's whole-range check runs
     once at acquisition, reads through the lease skip it *)
  lease : int -> int -> Space.lease;
  (* one-shot view: the variant check, translation and media check all
     paid at acquisition; reads through the view are raw *)
  view : int -> int -> Space.view;
  (* interposed intrinsics *)
  memcpy : dst:int -> src:int -> len:int -> unit;
  memmove : dst:int -> src:int -> len:int -> unit;
  memset : int -> char -> int -> unit;
  strcpy : dst:int -> src:int -> unit;
  strlen : int -> int;
  strcmp : int -> int -> int;
  (* PM object management *)
  palloc : ?zero:bool -> ?dest:int -> int -> Oid.t;
  pfree : ?dest:int -> Oid.t -> unit;
  prealloc : Oid.t -> int -> Oid.t;
  tx_palloc : ?zero:bool -> int -> Oid.t;
  tx_pfree : Oid.t -> unit;
  root : int -> Oid.t;
  (* volatile heap (libc malloc analogue) *)
  valloc : int -> int;
  vfree : int -> unit;
  (* PMEMoid slots accessed through application pointers *)
  load_oid_at : int -> Oid.t;
  store_oid_at : int -> Oid.t -> unit;
  oid_size : int;
}

(* --- Native PMDK ------------------------------------------------------- *)

let make_pmdk ~space ~pool ~vheap ~name =
  {
    name;
    variant = Pmdk;
    space;
    pool;
    valloc = (fun size -> Vheap.malloc vheap size);
    vfree = (fun ptr -> Vheap.free vheap ptr);
    direct = Pool.direct pool;
    gep = ( + );
    ptr_to_int = Fun.id;
    for_external = Fun.id;
    load_word = Space.load_word space;
    store_word = Space.store_word space;
    load_u8 = Space.load_u8 space;
    store_u8 = Space.store_u8 space;
    read_bytes = Space.read_bytes space;
    read_into = Space.read_into space;
    read_sub = Space.read_sub space;
    write_bytes = Space.write_bytes space;
    write_string = Space.write_string space;
    lease = Space.lease space;
    view = Space.read_view space;
    memcpy = (fun ~dst ~src ~len -> Space.blit space ~src ~dst ~len);
    memmove = (fun ~dst ~src ~len -> Space.blit space ~src ~dst ~len);
    memset = (fun p c len -> Space.fill space p len c);
    strcpy =
      (fun ~dst ~src ->
        let n = Space.strlen space src + 1 in
        Space.blit space ~src ~dst ~len:n);
    strlen = Space.strlen space;
    strcmp = Space.strcmp space;
    palloc = (fun ?zero ?dest size -> Pool.alloc ?zero ?dest pool ~size);
    pfree = (fun ?dest oid -> Pool.free_ ?dest pool oid);
    prealloc = (fun oid size -> Pool.realloc pool oid ~size);
    tx_palloc = (fun ?zero size -> Pool.tx_alloc ?zero pool ~size);
    tx_pfree = (fun oid -> Pool.tx_free pool oid);
    root = (fun size -> Pool.root pool ~size);
    load_oid_at = (fun ptr -> Pool.load_oid pool ~off:(Pool.off_of_addr pool ptr));
    store_oid_at =
      (fun ptr oid -> Pool.store_oid pool ~off:(Pool.off_of_addr pool ptr) oid);
    oid_size = Pool.oid_stored_size pool;
  }

(* --- SPP ---------------------------------------------------------------- *)

let make_spp ?(variant = Spp) ?tag_volatile ~space ~pool ~cfg ~name () =
  let addr_mask = cfg.Config.addr_mask in
  let gep p o =
    if Runtime.spp_is_pm_ptr cfg p then begin
      let p' = Runtime.spp_updatetag_direct cfg p o in
      (p' land lnot addr_mask) lor ((p' + o) land addr_mask)
    end
    else p + o
  in
  let checked_ptr p width = Runtime.spp_checkbound cfg p width in
  let block_ptr p len = Runtime.spp_memintr_check cfg p len in
  {
    name;
    variant;
    space;
    pool;
    valloc =
      (fun size ->
        match tag_volatile with
        | Some vheap ->
          (* the §VII generalization: volatile allocations are tagged *)
          Spp_core.Encoding.mk_tagged cfg ~addr:(Vheap.malloc vheap size) ~size
        | None -> invalid_arg "Spp_access.valloc: no volatile heap attached");
    vfree =
      (fun ptr ->
        match tag_volatile with
        | Some vheap -> Vheap.free vheap (Spp_core.Encoding.clean_tag_external cfg ptr)
        | None -> invalid_arg "Spp_access.vfree: no volatile heap attached");
    direct = Pool.direct pool;   (* SPP-mode pool: returns tagged pointers *)
    gep;
    ptr_to_int = (fun p -> Runtime.spp_cleantag cfg p);
    for_external = (fun p -> Runtime.spp_cleantag_external cfg p);
    load_word = (fun p -> Space.load_word space (checked_ptr p 8));
    store_word = (fun p v -> Space.store_word space (checked_ptr p 8) v);
    load_u8 = (fun p -> Space.load_u8 space (checked_ptr p 1));
    store_u8 = (fun p v -> Space.store_u8 space (checked_ptr p 1) v);
    read_bytes = (fun p len -> Space.read_bytes space (block_ptr p len) len);
    read_into =
      (fun p ~len ~dst ~dst_off ->
        Space.read_into space (block_ptr p len) ~len ~dst ~dst_off);
    read_sub = (fun p len -> Space.read_sub space (block_ptr p len) len);
    write_bytes =
      (fun p b -> Space.write_bytes space (block_ptr p (Bytes.length b)) b);
    write_string =
      (fun p s -> Space.write_string space (block_ptr p (String.length s)) s);
    lease =
      (fun p len ->
        (* The SPP bound check hoisted to acquisition: one
           [spp_memintr_check] masks the tag and validates the furthest
           byte of the window — jhc-style single-mask dispatch — and the
           lease hands back an untagged window, so reads through it never
           decode the tag again. *)
        Space.lease space (block_ptr p len) len);
    view =
      (fun p len ->
        (* same hoist, fused: the masked-tag check covers the window and
           the view is opened on the untagged address in one step *)
        Space.read_view space (block_ptr p len) len);
    memcpy = (fun ~dst ~src ~len -> Wrappers.wrap_memcpy cfg space ~dst ~src ~len);
    memmove =
      (fun ~dst ~src ~len -> Wrappers.wrap_memmove cfg space ~dst ~src ~len);
    memset = (fun p c len -> Wrappers.wrap_memset cfg space ~dst:p ~c ~len);
    strcpy = (fun ~dst ~src -> Wrappers.wrap_strcpy cfg space ~dst ~src);
    strlen = (fun p -> Wrappers.wrap_strlen cfg space p);
    strcmp = (fun a b -> Wrappers.wrap_strcmp cfg space a b);
    palloc = (fun ?zero ?dest size -> Pool.alloc ?zero ?dest pool ~size);
    pfree = (fun ?dest oid -> Pool.free_ ?dest pool oid);
    prealloc = (fun oid size -> Pool.realloc pool oid ~size);
    tx_palloc = (fun ?zero size -> Pool.tx_alloc ?zero pool ~size);
    tx_pfree = (fun oid -> Pool.tx_free pool oid);
    root = (fun size -> Pool.root pool ~size);
    load_oid_at =
      (fun ptr ->
        let addr = checked_ptr ptr (Mode.oid_stored_size (Pool.mode pool)) in
        Pool.load_oid pool ~off:(Pool.off_of_addr pool addr));
    store_oid_at =
      (fun ptr oid ->
        let addr = checked_ptr ptr (Mode.oid_stored_size (Pool.mode pool)) in
        Pool.store_oid pool ~off:(Pool.off_of_addr pool addr) oid);
    oid_size = Pool.oid_stored_size pool;
  }

(* --- SafePM ------------------------------------------------------------- *)

let make_safepm ~space ~pool ~shadow ~vheap ~name =
  let ck p len f = Spp_safepm.check shadow p len; f () in
  {
    name;
    variant = Safepm;
    space;
    pool;
    valloc = (fun size -> Vheap.malloc vheap size);
    vfree = (fun ptr -> Vheap.free vheap ptr);
    direct = Pool.direct pool;
    gep = ( + );
    ptr_to_int = Fun.id;
    for_external = Fun.id;
    load_word = (fun p -> ck p 8 (fun () -> Space.load_word space p));
    store_word = (fun p v -> ck p 8 (fun () -> Space.store_word space p v));
    load_u8 = (fun p -> ck p 1 (fun () -> Space.load_u8 space p));
    store_u8 = (fun p v -> ck p 1 (fun () -> Space.store_u8 space p v));
    read_bytes = (fun p len -> ck p len (fun () -> Space.read_bytes space p len));
    read_into =
      (fun p ~len ~dst ~dst_off ->
        ck p len (fun () -> Space.read_into space p ~len ~dst ~dst_off));
    read_sub = (fun p len -> ck p len (fun () -> Space.read_sub space p len));
    write_bytes =
      (fun p b ->
        ck p (Bytes.length b) (fun () -> Space.write_bytes space p b));
    write_string =
      (fun p s ->
        ck p (String.length s) (fun () -> Space.write_string space p s));
    (* one shadow lookup at acquisition covers the whole window *)
    lease = (fun p len -> ck p len (fun () -> Space.lease space p len));
    view = (fun p len -> ck p len (fun () -> Space.read_view space p len));
    memcpy =
      (fun ~dst ~src ~len ->
        Spp_safepm.check shadow src len;
        Spp_safepm.check shadow dst len;
        Space.blit space ~src ~dst ~len);
    memmove =
      (fun ~dst ~src ~len ->
        Spp_safepm.check shadow src len;
        Spp_safepm.check shadow dst len;
        Space.blit space ~src ~dst ~len);
    memset =
      (fun p c len -> ck p len (fun () -> Space.fill space p len c));
    strcpy =
      (fun ~dst ~src ->
        let n = Space.strlen space src + 1 in
        Spp_safepm.check shadow src n;
        Spp_safepm.check shadow dst n;
        Space.blit space ~src ~dst ~len:n);
    strlen = Space.strlen space;
    strcmp =
      (fun a b ->
        let rec go i =
          let ca = ck (a + i) 1 (fun () -> Space.load_u8 space (a + i))
          and cb = ck (b + i) 1 (fun () -> Space.load_u8 space (b + i)) in
          if ca <> cb then compare ca cb else if ca = 0 then 0 else go (i + 1)
        in
        go 0);
    palloc =
      (fun ?zero ?dest size ->
        let oid = Spp_safepm.alloc ?zero shadow ~size in
        (match dest with
         | None -> ()
         | Some off -> Pool.store_oid pool ~off oid);
        oid);
    pfree =
      (fun ?dest oid ->
        Spp_safepm.free shadow oid;
        match dest with
        | None -> ()
        | Some off -> Pool.store_oid pool ~off Oid.null);
    prealloc = (fun oid size -> Spp_safepm.realloc shadow oid ~size);
    tx_palloc = (fun ?zero size -> Spp_safepm.tx_alloc ?zero shadow ~size);
    tx_pfree = (fun oid -> Spp_safepm.tx_free shadow oid);
    root =
      (fun size ->
        let r = Pool.root pool ~size in
        (* the root is not redzoned; just make it addressable *)
        Spp_safepm.unpoison shadow ~off:r.Oid.off ~len:size;
        r);
    load_oid_at =
      (fun ptr ->
        Spp_safepm.check shadow ptr (Pool.oid_stored_size pool);
        Pool.load_oid pool ~off:(Pool.off_of_addr pool ptr));
    store_oid_at =
      (fun ptr oid ->
        Spp_safepm.check shadow ptr (Pool.oid_stored_size pool);
        Pool.store_oid pool ~off:(Pool.off_of_addr pool ptr) oid);
    oid_size = Pool.oid_stored_size pool;
  }

(* --- memcheck ------------------------------------------------------------ *)

let make_memcheck ~space ~pool ~table ~vheap ~name =
  let track_oid (oid : Oid.t) =
    (* memcheck learns the usable (class-rounded) capacity, as PMDK's
       Valgrind annotations report — overflow into the slack is missed. *)
    Spp_memcheck.track table
      ~addr:(Pool.addr_of_off pool oid.Oid.off)
      ~len:(Pool.usable_size pool oid)
  in
  let ck p len f = Spp_memcheck.check table p len; f () in
  {
    name;
    variant = Memcheck;
    space;
    pool;
    valloc = (fun size -> Vheap.malloc vheap size);
    vfree = (fun ptr -> Vheap.free vheap ptr);
    direct = Pool.direct pool;
    gep = ( + );
    ptr_to_int = Fun.id;
    for_external = Fun.id;
    load_word = (fun p -> ck p 8 (fun () -> Space.load_word space p));
    store_word = (fun p v -> ck p 8 (fun () -> Space.store_word space p v));
    load_u8 = (fun p -> ck p 1 (fun () -> Space.load_u8 space p));
    store_u8 = (fun p v -> ck p 1 (fun () -> Space.store_u8 space p v));
    read_bytes = (fun p len -> ck p len (fun () -> Space.read_bytes space p len));
    read_into =
      (fun p ~len ~dst ~dst_off ->
        ck p len (fun () -> Space.read_into space p ~len ~dst ~dst_off));
    read_sub = (fun p len -> ck p len (fun () -> Space.read_sub space p len));
    write_bytes =
      (fun p b ->
        ck p (Bytes.length b) (fun () -> Space.write_bytes space p b));
    write_string =
      (fun p s ->
        ck p (String.length s) (fun () -> Space.write_string space p s));
    (* one interval lookup at acquisition covers the whole window *)
    lease = (fun p len -> ck p len (fun () -> Space.lease space p len));
    view = (fun p len -> ck p len (fun () -> Space.read_view space p len));
    memcpy =
      (fun ~dst ~src ~len ->
        Spp_memcheck.check table src len;
        Spp_memcheck.check table dst len;
        Space.blit space ~src ~dst ~len);
    memmove =
      (fun ~dst ~src ~len ->
        Spp_memcheck.check table src len;
        Spp_memcheck.check table dst len;
        Space.blit space ~src ~dst ~len);
    memset = (fun p c len -> ck p len (fun () -> Space.fill space p len c));
    strcpy =
      (fun ~dst ~src ->
        let n = Space.strlen space src + 1 in
        Spp_memcheck.check table src n;
        Spp_memcheck.check table dst n;
        Space.blit space ~src ~dst ~len:n);
    strlen = Space.strlen space;
    strcmp =
      (fun a b ->
        let rec go i =
          let ca = ck (a + i) 1 (fun () -> Space.load_u8 space (a + i))
          and cb = ck (b + i) 1 (fun () -> Space.load_u8 space (b + i)) in
          if ca <> cb then compare ca cb else if ca = 0 then 0 else go (i + 1)
        in
        go 0);
    palloc =
      (fun ?zero ?dest size ->
        let oid = Pool.alloc ?zero ?dest pool ~size in
        track_oid oid;
        oid);
    pfree =
      (fun ?dest oid ->
        Spp_memcheck.untrack table ~addr:(Pool.addr_of_off pool oid.Oid.off);
        Pool.free_ ?dest pool oid);
    prealloc =
      (fun oid size ->
        if not (Oid.is_null oid) then
          Spp_memcheck.untrack table ~addr:(Pool.addr_of_off pool oid.Oid.off);
        let oid' = Pool.realloc pool oid ~size in
        track_oid oid';
        oid');
    tx_palloc =
      (fun ?zero size ->
        let oid = Pool.tx_alloc ?zero pool ~size in
        track_oid oid;
        oid);
    tx_pfree =
      (fun oid ->
        if not (Oid.is_null oid) then
          Spp_memcheck.untrack table ~addr:(Pool.addr_of_off pool oid.Oid.off);
        Pool.tx_free pool oid);
    root =
      (fun size ->
        let r = Pool.root pool ~size in
        if not (Spp_memcheck.is_valid table (Pool.addr_of_off pool r.Oid.off) 1)
        then track_oid r;
        r);
    load_oid_at =
      (fun ptr ->
        Spp_memcheck.check table ptr (Pool.oid_stored_size pool);
        Pool.load_oid pool ~off:(Pool.off_of_addr pool ptr));
    store_oid_at =
      (fun ptr oid ->
        Spp_memcheck.check table ptr (Pool.oid_stored_size pool);
        Pool.store_oid pool ~off:(Pool.off_of_addr pool ptr) oid);
    oid_size = Pool.oid_stored_size pool;
  }

(* --- Construction -------------------------------------------------------- *)

let default_pool_base = 4096

let create ?(tag_bits = 26) ?(pool_base = default_pool_base)
    ?(vheap_size = 1 lsl 20) ~pool_size ~name variant =
  let space = Space.create () in
  match variant with
  | Pmdk ->
    let pool =
      Pool.create space ~base:pool_base ~size:pool_size ~mode:Mode.Native ~name
    in
    let vheap = Vheap.create space vheap_size in
    make_pmdk ~space ~pool ~vheap ~name
  | Spp ->
    let cfg = Config.make ~tag_bits in
    let pool =
      Pool.create space ~base:pool_base ~size:pool_size ~mode:(Mode.Spp cfg)
        ~name
    in
    make_spp ~space ~pool ~cfg ~name ()
  | Spp_all ->
    let cfg = Config.make ~tag_bits in
    let pool =
      Pool.create space ~base:pool_base ~size:pool_size ~mode:(Mode.Spp cfg)
        ~name
    in
    (* the volatile heap must live inside the taggable address span *)
    let vbase = pool_base + pool_size + 4096 in
    if vbase + vheap_size > Config.max_pool_span cfg then
      invalid_arg "Spp_access.create: volatile heap exceeds the tag span";
    let vheap = Vheap.create ~base:vbase space vheap_size in
    make_spp ~variant:Spp_all ~tag_volatile:vheap ~space ~pool ~cfg ~name ()
  | Safepm ->
    let pool =
      Pool.create space ~base:pool_base ~size:pool_size ~mode:Mode.Native ~name
    in
    let shadow = Spp_safepm.attach_fresh pool in
    let vheap = Vheap.create space vheap_size in
    make_safepm ~space ~pool ~shadow ~vheap ~name
  | Memcheck ->
    let pool =
      Pool.create space ~base:pool_base ~size:pool_size ~mode:Mode.Native ~name
    in
    let table = Spp_memcheck.create () in
    let vheap = Vheap.create space vheap_size in
    make_memcheck ~space ~pool ~table ~vheap ~name

(* Re-attach to an already-open pool — the "process restart" half of the
   crash-recovery story: [Pool.open_dev] brings the pool back, [attach]
   rebuilds the compiled-binary view over it. The variant is derived from
   the pool's durable mode word: an SPP pool reopens with tagged pointers
   and checked accesses, a native pool with raw PMDK semantics. The
   checker variants (Safepm/Memcheck) rebuild their volatile side tables
   from scratch elsewhere and are not reattachable here. *)

let attach ?(name = "reattached") space pool =
  match Pool.mode pool with
  | Mode.Spp cfg -> make_spp ~space ~pool ~cfg ~name ()
  | Mode.Native ->
    (* a fresh volatile heap, mapped high where pools never live *)
    let vheap = Vheap.create space (1 lsl 16) in
    make_pmdk ~space ~pool ~vheap ~name

(* --- Violation handling --------------------------------------------------- *)

type outcome =
  | Ok_completed
  | Prevented of string

let run_guarded (f : unit -> unit) =
  match f () with
  | () -> Ok_completed
  | exception Fault.Fault (k, addr) ->
    Prevented (Printf.sprintf "%s at 0x%x" (Fault.kind_to_string k) addr)
  | exception Spp_safepm.Violation { addr; len; kind } ->
    Prevented (Printf.sprintf "SafePM %s (%d bytes at 0x%x)" kind len addr)
  | exception Spp_memcheck.Violation { addr; len } ->
    Prevented (Printf.sprintf "memcheck invalid access (%d bytes at 0x%x)" len addr)
