(** The access layer: one "compiled binary" per benchmarking variant
    (paper Table I).

    A workload written against {!t} is the analogue of an application
    compiled once per variant: the variant decides which pointer
    representation {!field-direct} returns, what pointer arithmetic does,
    and what happens on every load, store and memory intrinsic.

    - {!Pmdk} — native PMDK: raw pointers, unchecked accesses;
    - {!Spp} — tagged pointers plus the SPP runtime hooks (implicit
      bounds checks through address invalidation);
    - {!Safepm} — raw pointers plus a persistent-shadow lookup per access;
    - {!Memcheck} — raw pointers plus a side-table interval lookup.

    PM management always goes through the mode-matched mini-PMDK pool, so
    crash consistency is identical across variants. *)

open Spp_sim
open Spp_pmdk

type variant =
  | Pmdk
  | Spp
  | Safepm
  | Memcheck
  | Spp_all
    (** SPP generalized to volatile pointers too (paper §VII): volatile
        allocations are mapped into the taggable low address span and
        carry delta tags. Not part of the paper's Table I variants. *)

val variant_name : variant -> string

val all_variants : variant list
(** The paper's variants: [Pmdk; Safepm; Spp; Memcheck]. *)

type t = {
  name : string;
  variant : variant;
  space : Space.t;
  pool : Pool.t;
  (* pointer life cycle *)
  direct : Oid.t -> int;          (** pmemobj_direct *)
  gep : int -> int -> int;        (** pointer arithmetic *)
  ptr_to_int : int -> int;        (** pointer-to-integer conversion *)
  for_external : int -> int;      (** mask for an uninstrumented callee *)
  (* accesses *)
  load_word : int -> int;
  store_word : int -> int -> unit;
  load_u8 : int -> int;
  store_u8 : int -> int -> unit;
  read_bytes : int -> int -> Bytes.t;
  read_into : int -> len:int -> dst:Bytes.t -> dst_off:int -> unit;
  read_sub : int -> int -> string;   (** single-copy substring read *)
  write_bytes : int -> Bytes.t -> unit;
  write_string : int -> string -> unit;
  lease : int -> int -> Space.lease;
  (** Validated read window with the variant's pointer/bounds check
      hoisted to acquisition: one check and one translation for the
      whole window, then {!Space.lease_load_word}-style reads skip both.
      Under {!Spp} this is a single [spp_memintr_check] — one masked tag
      decode — instead of one hook per access. *)

  view : int -> int -> Space.view;
  (** One-shot read window: the variant's check, the translation {e and}
      the media check are all paid at acquisition, and
      {!Space.view_word}-style reads through it are raw. The fused form
      of [lease]+{!Space.lease_view} for hot paths that read a window
      exactly once. *)
  (* interposed intrinsics *)
  memcpy : dst:int -> src:int -> len:int -> unit;
  memmove : dst:int -> src:int -> len:int -> unit;
  memset : int -> char -> int -> unit;
  strcpy : dst:int -> src:int -> unit;
  strlen : int -> int;
  strcmp : int -> int -> int;
  (* PM object management *)
  palloc : ?zero:bool -> ?dest:int -> int -> Oid.t;
  pfree : ?dest:int -> Oid.t -> unit;
  prealloc : Oid.t -> int -> Oid.t;
  tx_palloc : ?zero:bool -> int -> Oid.t;
  tx_pfree : Oid.t -> unit;
  root : int -> Oid.t;
  (* volatile heap (libc malloc analogue); tagged under {!Spp_all} *)
  valloc : int -> int;
  vfree : int -> unit;
  (* PMEMoid slots accessed through application pointers *)
  load_oid_at : int -> Oid.t;
  store_oid_at : int -> Oid.t -> unit;
  oid_size : int;   (** stored PMEMoid footprint: 16 native, 24 SPP *)
}

val default_pool_base : int

val create :
  ?tag_bits:int -> ?pool_base:int -> ?vheap_size:int -> pool_size:int ->
  name:string -> variant -> t
(** Build a fresh machine (address space + pool + checker state) for the
    variant. [tag_bits] only affects {!Spp} (default 26). *)

val attach : ?name:string -> Space.t -> Pool.t -> t
(** Rebuild the access layer over an already-open pool (after
    [Pool.open_dev] on a reopened image): SPP pools come back with
    tagged, checked accesses; native pools with raw PMDK semantics. The
    checker variants (Safepm/Memcheck) keep volatile side tables and are
    not reattachable through this path. *)

(** {1 Violation handling} *)

type outcome =
  | Ok_completed
  | Prevented of string

val run_guarded : (unit -> unit) -> outcome
(** Run a workload, mapping simulated faults and checker violations to
    {!Prevented}. *)
