(* YCSB-style core workload mixes over the Keygen samplers.

   Each generator yields abstract operations on key *indices*; the
   driver maps indices to concrete keys/values. The six core letters
   (Cooper et al., SoCC'10) are:

     A  50% read / 50% update          zipfian
     B  95% read /  5% update          zipfian
     C  100% read                      zipfian
     D  95% read-latest / 5% insert    latest
     E  95% scan / 5% insert           zipfian start, uniform span
     F  50% read / 50% read-modify-write  zipfian

   D and E grow the key space: [Insert] carries the next fresh index
   (= the current loaded count) and the read-latest distribution skews
   toward recently inserted indices. Everything is a pure function of
   (letter, seed, universe, theta, max_span) — same determinism
   contract as [Keygen], so a workload can be replayed against two
   stores and the replies compared. *)

type op =
  | Read of int
  | Update of int
  | Insert of int
  | Scan of int * int   (* (start index, span >= 1) *)
  | Rmw of int

type letter = A | B | C | D | E | F

let letter_of_char c =
  match Char.lowercase_ascii c with
  | 'a' -> A
  | 'b' -> B
  | 'c' -> C
  | 'd' -> D
  | 'e' -> E
  | 'f' -> F
  | _ -> invalid_arg (Printf.sprintf "Ycsb.letter_of_char: %C" c)

let char_of_letter = function
  | A -> 'a'
  | B -> 'b'
  | C -> 'c'
  | D -> 'd'
  | E -> 'e'
  | F -> 'f'

let describe = function
  | A -> "50% read / 50% update, zipfian"
  | B -> "95% read / 5% update, zipfian"
  | C -> "100% read, zipfian"
  | D -> "95% read-latest / 5% insert"
  | E -> "95% scan / 5% insert, zipfian start"
  | F -> "50% read / 50% read-modify-write, zipfian"

type t = {
  y_letter : letter;
  y_mix : Random.State.t;      (* op-choice coin, separate stream *)
  y_key : Keygen.t;            (* rank sampler over the initial universe *)
  y_max_span : int;
  mutable y_loaded : int;      (* indices [0, y_loaded) exist *)
}

let create ?(theta = 0.99) ?(max_span = 64) ~letter ~seed ~universe () =
  if universe <= 0 then invalid_arg "Ycsb.create: empty universe";
  if max_span <= 0 then invalid_arg "Ycsb.create: max_span must be positive";
  { y_letter = letter;
    y_mix = Random.State.make [| seed; 0x9C5B; universe |];
    y_key = Keygen.zipfian ~theta ~seed ~universe ();
    y_max_span = max_span;
    y_loaded = universe }

let letter t = t.y_letter
let loaded t = t.y_loaded

(* Read-latest: reuse the bounded-Zipfian rank stream (rank 0 hottest)
   but anchor rank 0 at the most recent insert, so the hot set tracks
   the head of the growing key space. *)
let latest t =
  let rank = Keygen.next t.y_key mod t.y_loaded in
  t.y_loaded - 1 - rank

let insert t =
  let idx = t.y_loaded in
  t.y_loaded <- t.y_loaded + 1;
  Insert idx

let next t =
  let p = Random.State.float t.y_mix 1. in
  match t.y_letter with
  | A -> if p < 0.5 then Read (Keygen.next t.y_key) else Update (Keygen.next t.y_key)
  | B -> if p < 0.95 then Read (Keygen.next t.y_key) else Update (Keygen.next t.y_key)
  | C -> Read (Keygen.next t.y_key)
  | D -> if p < 0.95 then Read (latest t) else insert t
  | E ->
    if p < 0.95 then begin
      let start = Keygen.next t.y_key in
      let span = 1 + Random.State.int t.y_mix t.y_max_span in
      Scan (start, span)
    end
    else insert t
  | F -> if p < 0.5 then Read (Keygen.next t.y_key) else Rmw (Keygen.next t.y_key)
