(* Deterministic key-index generators for benchmark workloads.

   [uniform] draws equiprobably over [0, universe); [zipfian] is the
   YCSB-style bounded Zipfian sampler (Gray et al., "Quickly generating
   billion-record synthetic databases"): rank 0 is the hottest key and
   the item popularity follows 1/rank^theta. Both are driven by a
   private [Random.State], so a generator is a pure function of
   (seed, universe, theta) — the property the parallel-vs-sequential
   differential harness relies on. *)

type t = {
  g_name : string;
  g_universe : int;
  next : unit -> int;   (* draws in [0, universe) *)
}

let name t = t.g_name
let universe t = t.g_universe
let next t = t.next ()

(* Distinct mix-in words keep a uniform and a zipfian generator built
   from the same seed from sharing a random stream. *)
let uniform ~seed ~universe =
  if universe <= 0 then invalid_arg "Keygen.uniform: empty universe";
  let st = Random.State.make [| seed; 0x75AF; universe |] in
  { g_name = "uniform"; g_universe = universe;
    next = (fun () -> Random.State.int st universe) }

(* zeta(n, theta) = sum_{i=1..n} 1/i^theta — computed once per
   generator; universes are benchmark-sized (<= a few hundred thousand),
   so the O(n) sum is negligible next to preloading that many keys. *)
let zeta n theta =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !s

let zipfian ?(theta = 0.99) ~seed ~universe () =
  if universe <= 0 then invalid_arg "Keygen.zipfian: empty universe";
  if theta <= 0. || theta >= 1. then
    invalid_arg "Keygen.zipfian: theta must lie in (0, 1)";
  let st = Random.State.make [| seed; 0x21F0; universe |] in
  let n = float_of_int universe in
  let zetan = zeta universe theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. n) (1. -. theta)) /. (1. -. (zeta 2 theta /. zetan))
  in
  let next () =
    let u = Random.State.float st 1. in
    let uz = u *. zetan in
    if uz < 1. then 0
    else if uz < 1. +. Float.pow 0.5 theta then 1
    else begin
      let k = int_of_float (n *. Float.pow ((eta *. u) -. eta +. 1.) alpha) in
      (* clamp the floating-point edge at u ~ 1.0 *)
      if k >= universe then universe - 1 else if k < 0 then 0 else k
    end
  in
  { g_name = Printf.sprintf "zipfian(%.2f)" theta; g_universe = universe; next }

(* Rotating-hotspot Zipfian: the same bounded-Zipfian rank stream, but
   rank r maps to key (r + epoch * stride) mod universe where the epoch
   advances every [period] draws. The hot set (the low Zipfian ranks)
   therefore jumps to a fresh region of the key space every [period]
   draws — the moving-hot-set workload a static router cannot chase and
   a rebalancer must. [stride] is derived from the seed and forced odd,
   so successive epochs' hot sets are disjoint for any power-of-two-ish
   universe while the mapping stays a bijection per epoch; everything
   is a pure function of (seed, universe, theta, period), preserving
   the determinism contract of the other generators. *)
let rotating ?(theta = 0.99) ~seed ~universe ~period () =
  if period <= 0 then invalid_arg "Keygen.rotating: period must be positive";
  let z = zipfian ~theta ~seed ~universe () in
  let st = Random.State.make [| seed; 0x5E17; universe; period |] in
  let stride = (Random.State.int st (max 1 (universe / 2)) * 2) + 1 in
  let draws = ref 0 in
  let next () =
    let epoch = !draws / period in
    incr draws;
    (z.next () + (epoch * stride)) mod universe
  in
  { g_name = Printf.sprintf "rotating(%.2f,%d)" theta period;
    g_universe = universe; next }

(* Empirical head mass: the fraction of [samples] draws that land on the
   hottest [hot_fraction] of the universe (ranks [0, universe *
   hot_fraction)). Used by the skew acceptance test and handy for
   sanity-printing a distribution. *)
let head_mass t ~samples ~hot_fraction =
  if samples <= 0 then invalid_arg "Keygen.head_mass: no samples";
  let hot = max 1 (int_of_float (float_of_int t.g_universe *. hot_fraction)) in
  let in_head = ref 0 in
  for _ = 1 to samples do
    if t.next () < hot then incr in_head
  done;
  float_of_int !in_head /. float_of_int samples
