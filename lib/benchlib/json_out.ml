(* Minimal JSON emitter for benchmark results — schema "spp-bench/1".

   No external JSON dependency: the value type below covers everything a
   benchmark record needs, and the printer emits RFC 8259 output
   (strings escaped, non-finite floats as null so the file always
   parses). See EXPERIMENTS.md ("Benchmark methodology") for the record
   schema and how BENCH_*.json files are regenerated. *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buf buf = function
  | J_null -> Buffer.add_string buf "null"
  | J_bool b -> Buffer.add_string buf (if b then "true" else "false")
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_float f ->
    if Float.is_finite f then
      (* %.17g round-trips any double; trim is not worth the bytes *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | J_string s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | J_list vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buf buf v)
      vs;
    Buffer.add_char buf ']'
  | J_obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        to_buf buf (J_string k);
        Buffer.add_char buf ':';
        to_buf buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buf buf v;
  Buffer.contents buf

(* Collector: experiments append records as they run; [write] dumps the
   whole file at exit. Records accumulate newest-first and are reversed
   on output. *)

type t = { mutable records : json list }

let create () = { records = [] }

let emit t ~experiment ~name ~metric ?unit_ ?(extra = []) value =
  let base =
    [ ("experiment", J_string experiment);
      ("name", J_string name);
      ("metric", J_string metric);
      ("value", J_float value) ]
  in
  let u = match unit_ with None -> [] | Some u -> [ ("unit", J_string u) ] in
  t.records <- J_obj (base @ u @ extra) :: t.records

(* Write via a temp file renamed into place: a crash mid-emit (or a
   failing experiment that aborts the run) leaves either the previous
   complete file or nothing — never a truncated BENCH_*.json that a CI
   validator would choke on. *)
let write t ?(meta = []) path =
  let doc =
    J_obj
      (("schema", J_string "spp-bench/1")
       :: meta
       @ [ ("records", J_list (List.rev t.records)) ])
  in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string doc);
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
