(* Log-bucketed latency histogram (HDR-style, integer nanoseconds).

   Values 0..15 get exact buckets; from 16 up, each power-of-two octave
   splits into 16 linear sub-buckets, so any recorded value lands in a
   bucket whose width is at most 1/16 of its magnitude — percentiles
   carry <= ~6% relative error while the whole recorder is one fixed
   int array. Percentile queries return the bucket's inclusive upper
   bound (clamped to the exact recorded maximum), which makes the
   estimate conservative and monotone in the requested quantile, and
   merge is an elementwise sum — exact, commutative and associative —
   so per-shard recorders combine into one aggregate view after join. *)

let sub_bits = 4
let sub = 1 lsl sub_bits                      (* 16 sub-buckets / octave *)

(* Highest octave needed for 62-bit positive ints. *)
let max_octave = 62
let n_buckets = (max_octave - sub_bits + 2) * sub

type t = {
  counts : int array;
  mutable total : int;
  mutable vmax : int;   (* exact maximum recorded value *)
  mutable vsum : int;   (* exact sum of recorded values *)
}

let create () =
  { counts = Array.make n_buckets 0; total = 0; vmax = 0; vsum = 0 }

let msb v =
  (* position of the highest set bit; v > 0 *)
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_index v =
  if v < sub then v
  else begin
    let o = msb v in
    ((o - sub_bits + 1) * sub) + ((v lsr (o - sub_bits)) land (sub - 1))
  end

(* Inclusive [lo, hi] range of values mapping to bucket [i]. *)
let bucket_range i =
  if i < sub then (i, i)
  else begin
    let o = (i / sub) + sub_bits - 1 in
    let s = i land (sub - 1) in
    let width = 1 lsl (o - sub_bits) in
    let lo = (1 lsl o) + (s * width) in
    (lo, lo + width - 1)
  end

let add t v =
  let v = max 0 v in
  t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
  t.total <- t.total + 1;
  if v > t.vmax then t.vmax <- v;
  t.vsum <- t.vsum + v

let count t = t.total
let max_value t = t.vmax

(* Exact arithmetic mean of the recorded values (the buckets quantize
   percentiles, not the sum); 0. for an empty recorder. *)
let mean t =
  if t.total = 0 then 0.
  else float_of_int t.vsum /. float_of_int t.total

let merge a b =
  let m = create () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.total <- a.total + b.total;
  m.vmax <- max a.vmax b.vmax;
  m.vsum <- a.vsum + b.vsum;
  m

(* Value at quantile [p] in [0, 100]: the upper bound of the bucket
   holding the ceil(p/100 * total)-th recorded value, clamped to the
   exact maximum. Monotone in [p] because the cumulative walk and the
   per-bucket upper bounds both are. An empty recorder answers 0 (like
   [mean] answers 0.) rather than raising — a bench leg that recorded
   nothing reports zeros, it doesn't kill the run. *)
let percentile t p =
  if t.total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
      min (max r 1) t.total
    in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank then min (snd (bucket_range i)) t.vmax
      else walk (i + 1) seen
    in
    walk 0 0
  end

let p50 t = percentile t 50.
let p95 t = percentile t 95.
let p99 t = percentile t 99.
let p999 t = percentile t 99.9

(* Nonempty buckets as [(lo, hi, count)], ascending — the full recorder
   state, used by tests to check merge exactness. *)
let to_alist t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_range i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let pp ppf t =
  if t.total = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "n=%d p50=%d p95=%d p99=%d max=%d" t.total (p50 t)
      (p95 t) (p99 t) t.vmax
