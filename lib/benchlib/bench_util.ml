(* Timing, normalization and table formatting for the benchmark harness. *)

(* Monotonic wall clock, in seconds. [Monotonic_clock.now] is bechamel's
   noalloc CLOCK_MONOTONIC stub, so an NTP step or a wall-clock
   adjustment mid-run cannot corrupt a measurement the way
   [Unix.gettimeofday] deltas can. The stub reports 0 on platforms
   without a monotonic source; only then do we fall back to the wall
   clock. *)
let mono_available = Monotonic_clock.now () > 0L

let now_mono () =
  if mono_available then Int64.to_float (Monotonic_clock.now ()) *. 1e-9
  else Unix.gettimeofday ()

let time f =
  let t0 = now_mono () in
  let v = f () in
  (now_mono () -. t0, v)

(* Best-of-n timing: the minimum is the least noisy estimator for
   throughput-style measurements on a shared machine. *)
let best_of ?(n = 3) f =
  let rec go best i =
    if i = 0 then best
    else begin
      let t, _ = time f in
      go (min best t) (i - 1)
    end
  in
  go infinity n

let slowdown ~baseline t = t /. baseline

(* Headed, aligned text tables. *)

let print_title title =
  Printf.printf "\n=== %s ===\n" title

let print_subtitle s = Printf.printf "--- %s ---\n" s

let print_row ~w cells =
  List.iter (fun c -> Printf.printf "%-*s" w c) cells;
  print_newline ()

let fmt_slowdown x = Printf.sprintf "%.2fx" x
let fmt_ms x = Printf.sprintf "%.2f ms" (x *. 1000.)
let fmt_ops x = Printf.sprintf "%.0f op/s" x
let fmt_mb bytes = Printf.sprintf "%.1f MB" (float_of_int bytes /. 1048576.)
let fmt_pct x = Printf.sprintf "%.1f%%" (x *. 100.)

(* Latency in nanoseconds, unit-scaled: sub-microsecond values print in
   whole ns instead of truncating to "0.0 us". *)
let fmt_lat_ns ns =
  if ns < 1_000 then Printf.sprintf "%d ns" ns
  else if ns < 1_000_000 then
    Printf.sprintf "%.1f us" (float_of_int ns /. 1e3)
  else Printf.sprintf "%.2f ms" (float_of_int ns /. 1e6)

(* Deterministic uniform key stream. *)
let keys ~seed ~universe n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.int st universe)
