(* Pool facade — the libpmemobj-equivalent public API.

   Functions mirror PMDK: [alloc]/[free_]/[realloc] are the atomic API,
   [with_tx]/[tx_add_range]/[tx_alloc]/[tx_free] the transactional one,
   [direct] is pmemobj_direct, [root] is pmemobj_root. A single pool lock
   serializes heap and transaction operations (PMDK's runtime does the
   same for allocator metadata); plain data loads/stores are issued by the
   application through the access layer and are not serialized here. *)

open Spp_sim

type t = Rep.t

exception Wrong_pool of Oid.t

let () =
  Printexc.register_printer (function
    | Wrong_pool oid ->
      Some
        (Printf.sprintf
           "Pool.Wrong_pool: oid {uuid=0x%x; off=0x%x; size=%d} does not \
            belong to this pool"
           oid.Oid.uuid oid.Oid.off oid.Oid.size)
    | _ -> None)

let magic_word = Rep.magic
let min_pool_size = Rep.min_pool_size

let uuid_counter = ref 0x1000

let next_uuid () =
  incr uuid_counter;
  !uuid_counter

let check_span ~base ~size mode =
  match mode with
  | Mode.Native -> ()
  | Mode.Spp cfg ->
    if base + size > Spp_core.Config.max_pool_span cfg then
      invalid_arg
        (Printf.sprintf
           "Pool: pool [0x%x, 0x%x) exceeds the %d-bit address span of the \
            SPP tag configuration"
           base (base + size) (Spp_core.Config.addr_bits cfg))

let make_rep space dev ~base ~size ~mode ~uuid =
  let ulog_cap = Rep.ulog_cap_for_pool_size size in
  { Rep.space; dev; base; psize = size; mode; uuid; ulog_cap;
    heap_base = Rep.heap_base_for ~ulog_cap;
    lock = Mutex.create ();
    tx_lock = Mutex.create ();
    tx_ranges = []; tx_deferred_free = []; tx_depth = 0;
    batch_observer = None }

let create space ~base ~size ~mode ~name =
  check_span ~base ~size mode;
  let dev = Memdev.create_persistent ~name size in
  Space.map space ~base ~size ~kind:Space.Persistent ~name dev;
  let uuid = next_uuid () in
  let t = make_rep space dev ~base ~size ~mode ~uuid in
  Rep.store t Rep.off_magic Rep.magic;
  Rep.store t Rep.off_uuid uuid;
  Rep.store t Rep.off_pool_size size;
  let mode_word = if Mode.is_spp mode then 1 else 0 in
  let tag_bits =
    match mode with
    | Mode.Native -> 0
    | Mode.Spp cfg -> Spp_core.Config.tag_bits cfg
  in
  Rep.store t Rep.off_mode mode_word;
  Rep.store t Rep.off_tag_bits tag_bits;
  Rep.store t Rep.off_hdr_csum
    (Rep.header_checksum ~uuid ~psize:size ~mode_word ~tag_bits);
  Rep.store t Rep.off_heap_bump t.Rep.heap_base;
  Rep.store_oid t Rep.off_root Oid.null;
  for ci = 0 to Rep.n_classes - 1 do
    Rep.store t (Rep.freelist_off ci) 0
  done;
  Rep.store t Rep.off_redo_valid 0;
  Rep.store t Rep.off_tx_state Rep.tx_idle;
  Rep.store t Rep.off_ulog_used 0;
  Rep.persist t 0 t.Rep.heap_base;
  t

type recovery_report = {
  redo_replayed : bool;
  tx_outcome : [ `Clean | `Rolled_back | `Completed_commit ];
}

let recover (t : Rep.t) =
  t.Rep.tx_depth <- 0;
  t.Rep.tx_ranges <- [];
  t.Rep.tx_deferred_free <- [];
  let redo_replayed = Redo.recover t in
  let tx_outcome = Tx.recover t in
  { redo_replayed; tx_outcome }

(* Typed open errors: a pool image from failed media must degrade into a
   diagnosable [Error], never an untyped exception (paper §IV-F treats
   metadata durability as the safety root; an unreadable root must not
   take the process down). *)

type pool_error =
  | Bad_header of string
  | Bad_checksum of { stored : int; computed : int }
  | Truncated of { expected : int; actual : int }
  | Corrupt_log of string

let pool_error_to_string = function
  | Bad_header msg -> Printf.sprintf "bad header: %s" msg
  | Bad_checksum { stored; computed } ->
    Printf.sprintf "bad header checksum: stored 0x%x, computed 0x%x"
      stored computed
  | Truncated { expected; actual } ->
    Printf.sprintf "truncated image: %d bytes, expected at least %d"
      actual expected
  | Corrupt_log msg -> Printf.sprintf "corrupt log area: %s" msg

let pp_pool_error ppf e = Format.pp_print_string ppf (pool_error_to_string e)

exception Open_error of pool_error

let open_dev space ~base dev =
  let size = Memdev.size dev in
  if size < Rep.min_pool_size then
    Error (Truncated { expected = Rep.min_pool_size; actual = size })
  else begin
    (* The header must be readable before we know mode/uuid; map first. *)
    Space.map space ~base ~size ~kind:Space.Persistent
      ~name:(Memdev.name dev) dev;
    let bad e = raise (Open_error e) in
    match
      let probe = make_rep space dev ~base ~size ~mode:Mode.Native ~uuid:0 in
      let magic = Rep.load probe Rep.off_magic in
      if magic <> Rep.magic then
        bad (Bad_header
               (Printf.sprintf "magic 0x%x, expected 0x%x (not a pool)"
                  magic Rep.magic));
      let stored_size = Rep.load probe Rep.off_pool_size in
      if stored_size > size then
        bad (Truncated { expected = stored_size; actual = size });
      if stored_size <> size then
        bad (Bad_header
               (Printf.sprintf "header pool size %d < device size %d"
                  stored_size size));
      let mode_word = Rep.load probe Rep.off_mode in
      if mode_word <> 0 && mode_word <> 1 then
        bad (Bad_header (Printf.sprintf "mode word %d not in {0, 1}" mode_word));
      let tag_bits = Rep.load probe Rep.off_tag_bits in
      let uuid = Rep.load probe Rep.off_uuid in
      let stored = Rep.load probe Rep.off_hdr_csum in
      let computed =
        Rep.header_checksum ~uuid ~psize:stored_size ~mode_word ~tag_bits
      in
      if stored <> computed then bad (Bad_checksum { stored; computed });
      let mode =
        if mode_word = 0 then Mode.Native
        else
          match Spp_core.Config.make ~tag_bits with
          | cfg -> Mode.Spp cfg
          | exception Invalid_argument msg -> bad (Bad_header msg)
      in
      (match check_span ~base ~size mode with
       | () -> ()
       | exception Invalid_argument msg -> bad (Bad_header msg));
      let t = make_rep space dev ~base ~size ~mode ~uuid in
      (* Redo replay / tx rollback walk log areas whose contents a media
         fault may have scrambled; surface parse failures as typed
         corruption, not an escape. *)
      (match recover t with
       | report -> (t, report)
       | exception e -> bad (Corrupt_log (Printexc.to_string e)))
    with
    | result -> Ok result
    | exception Open_error e ->
      Space.unmap space ~base;
      Error e
    | exception e ->
      Space.unmap space ~base;
      Error (Bad_header ("unexpected failure: " ^ Printexc.to_string e))
  end

let of_dev space ~base dev =
  match open_dev space ~base dev with
  | Ok (t, _report) -> t
  | Error e -> invalid_arg ("Pool.of_dev: " ^ pool_error_to_string e)

let crash_and_recover (t : Rep.t) =
  (* Simulated power failure and restart of the same pool: the view
     reverts to the durable image, then normal open-time recovery runs. *)
  Memdev.crash t.Rep.dev;
  recover t

let close (t : Rep.t) =
  Space.unmap t.Rep.space ~base:t.Rep.base

(* Accessors. *)

let space (t : Rep.t) = t.Rep.space
let dev (t : Rep.t) = t.Rep.dev
let base (t : Rep.t) = t.Rep.base
let size (t : Rep.t) = t.Rep.psize
let mode (t : Rep.t) = t.Rep.mode
let uuid (t : Rep.t) = t.Rep.uuid
let oid_stored_size (t : Rep.t) = Rep.oid_stored_size t
let heap_base (t : Rep.t) = t.Rep.heap_base

let with_lock (t : Rep.t) f =
  Mutex.lock t.Rep.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.Rep.lock) f

(* Atomic object management (pmemobj_alloc / _zalloc / _free / _realloc). *)

let alloc ?(zero = false) ?dest (t : Rep.t) ~size =
  with_lock t (fun () ->
    let dest = match dest with
      | None -> Heap.No_dest
      | Some off -> Heap.Pm_slot off
    in
    Heap.alloc t ~zero ~size ~dest ())

let check_owner (t : Rep.t) (oid : Oid.t) =
  if oid.Oid.uuid <> t.Rep.uuid then raise (Wrong_pool oid)

let free_ ?dest (t : Rep.t) (oid : Oid.t) =
  check_owner t oid;
  with_lock t (fun () ->
    let extra_entries = match dest with
      | None -> []
      | Some doff ->
        (* Clear the oid slot in the same atomic batch. *)
        (match t.Rep.mode with
         | Mode.Native -> [ (doff, 0); (doff + 8, 0) ]
         | Mode.Spp _ -> [ (doff, 0); (doff + 8, 0); (doff + 16, 0) ])
    in
    Heap.free t ~data_off:oid.Oid.off ~extra_entries)

let realloc ?dest (t : Rep.t) (oid : Oid.t) ~size =
  if not (Oid.is_null oid) then check_owner t oid;
  with_lock t (fun () ->
    let dest = match dest with
      | None -> Heap.No_dest
      | Some off -> Heap.Pm_slot off
    in
    Heap.realloc t oid ~new_size:size ~dest)

let alloc_size (t : Rep.t) (oid : Oid.t) =
  check_owner t oid;
  Rep.block_req_size t ~data_off:oid.Oid.off

let usable_size (t : Rep.t) (oid : Oid.t) =
  (* Class-rounded block capacity — pmemobj_alloc_usable_size. *)
  check_owner t oid;
  Rep.class_size (Rep.state_class (Rep.block_state t ~data_off:oid.Oid.off))

(* pmemobj_direct: oid -> native (possibly tagged) pointer (paper §IV-B). *)

let direct (t : Rep.t) (oid : Oid.t) =
  if Oid.is_null oid then 0
  else begin
    check_owner t oid;
    let addr = t.Rep.base + oid.Oid.off in
    match t.Rep.mode with
    | Mode.Native -> addr
    | Mode.Spp cfg -> Spp_core.Encoding.mk_tagged cfg ~addr ~size:oid.Oid.size
  end

(* pmemobj_root: allocate once into the header's root slot, atomically. *)

let root (t : Rep.t) ~size =
  with_lock t (fun () ->
    let existing = Rep.load_oid t Rep.off_root in
    if Oid.is_null existing then
      Heap.alloc t ~zero:true ~size ~dest:(Heap.Pm_slot Rep.off_root) ()
    else existing)

let root_oid (t : Rep.t) = Rep.load_oid t Rep.off_root

(* Transactions. *)

(* The pool has a single undo lane, so the outermost tx_begin holds the
   tx lock until commit or abort — concurrent transactions serialize,
   like contending for a PMDK lane. *)

let tx_begin (t : Rep.t) =
  if t.Rep.tx_depth = 0 then Mutex.lock t.Rep.tx_lock;
  with_lock t (fun () -> Tx.tx_begin t)

let tx_commit (t : Rep.t) =
  let outer = t.Rep.tx_depth = 1 in
  with_lock t (fun () -> Tx.tx_commit t);
  if outer then Mutex.unlock t.Rep.tx_lock

let tx_abort (t : Rep.t) =
  with_lock t (fun () -> Tx.tx_abort t);
  Mutex.unlock t.Rep.tx_lock

let tx_add_range (t : Rep.t) ~off ~len =
  with_lock t (fun () -> Tx.add_range t ~off ~len)

let tx_add_range_oid (t : Rep.t) oid =
  check_owner t oid;
  with_lock t (fun () -> Tx.add_range_oid t oid)

let tx_alloc ?(zero = false) (t : Rep.t) ~size =
  with_lock t (fun () -> Tx.alloc t ~zero ~size ())

let tx_realloc (t : Rep.t) oid ~size =
  if not (Oid.is_null oid) then check_owner t oid;
  with_lock t (fun () -> Tx.realloc t oid ~size)

let tx_free (t : Rep.t) oid =
  if not (Oid.is_null oid) then check_owner t oid;
  with_lock t (fun () -> Tx.free t oid)

let with_tx (t : Rep.t) f =
  tx_begin t;
  match f () with
  | v -> tx_commit t; v
  | exception e -> tx_abort t; raise e

let in_tx (t : Rep.t) = Tx.in_tx t

(* Group commit. The batch takes the pool's single lane (tx_lock) for
   its whole lifetime — transactions and other batches serialize behind
   it, exactly as contending PMDK writers do — plus the allocator lock,
   since batched ops read and stage heap metadata directly. If [f]
   raises, everything staged since the last sub-commit is discarded: the
   durable state then holds a prefix of whole operations, never a torn
   one (the same guarantee a crash gets). *)

let with_batch (t : Rep.t) f =
  Mutex.lock t.Rep.tx_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.Rep.tx_lock)
    (fun () ->
      with_lock t (fun () ->
        let b = Redo.batch_begin t in
        let r = f b in
        Redo.batch_finish b;
        r))

let batch_load_word (_ : Rep.t) b ~off = Redo.batch_load b off
let batch_stage_word (_ : Rep.t) b ~off v = Redo.batch_stage b ~off ~v

let batch_load_oid (t : Rep.t) b ~off : Oid.t =
  match t.Rep.mode with
  | Mode.Native ->
    { Oid.uuid = Redo.batch_load b off;
      off = Redo.batch_load b (off + 8); size = 0 }
  | Mode.Spp _ ->
    { Oid.size = Redo.batch_load b off;
      uuid = Redo.batch_load b (off + 8);
      off = Redo.batch_load b (off + 16) }

let batch_stage_oid (t : Rep.t) b ~off (oid : Oid.t) =
  match t.Rep.mode with
  | Mode.Native ->
    Redo.batch_stage b ~off ~v:oid.Oid.uuid;
    Redo.batch_stage b ~off:(off + 8) ~v:oid.Oid.off
  | Mode.Spp _ ->
    (* size strictly before off in application order (paper §IV-F) *)
    Redo.batch_stage b ~off ~v:oid.Oid.size;
    Redo.batch_stage b ~off:(off + 8) ~v:oid.Oid.uuid;
    Redo.batch_stage b ~off:(off + 16) ~v:oid.Oid.off

let batch_note_write (_ : Rep.t) b ~off ~len = Redo.batch_note_write b ~off ~len

let batch_alloc (t : Rep.t) b ~size = Heap.alloc_batched t b ~size

let batch_free (t : Rep.t) b (oid : Oid.t) =
  check_owner t oid;
  Heap.free_batched t b ~data_off:oid.Oid.off

(* Oid slots in PM (pool offsets). *)

let lease_load_oid (t : Rep.t) l ~off : Oid.t =
  (* Decode a stored oid through a [Space.lease] window — the mode-aware
     field layout (Rep.load_oid) read with pinned-translation loads, for
     hot read paths that leased a whole object. *)
  match t.Rep.mode with
  | Mode.Native ->
    { Oid.uuid = Space.lease_load_word l off;
      off = Space.lease_load_word l (off + 8); size = 0 }
  | Mode.Spp _ ->
    { Oid.size = Space.lease_load_word l off;
      uuid = Space.lease_load_word l (off + 8);
      off = Space.lease_load_word l (off + 16) }

let view_load_oid (t : Rep.t) v ~off : Oid.t =
  (* Same mode-aware layout, read raw through an opened [Space.view] —
     the caller already paid the window's checks at acquisition. *)
  match t.Rep.mode with
  | Mode.Native ->
    { Oid.uuid = Space.view_word v off;
      off = Space.view_word v (off + 8); size = 0 }
  | Mode.Spp _ ->
    { Oid.size = Space.view_word v off;
      uuid = Space.view_word v (off + 8);
      off = Space.view_word v (off + 16) }

let load_oid (t : Rep.t) ~off = Rep.load_oid t off
let store_oid (t : Rep.t) ~off oid = Rep.store_oid t off oid

(* Raw word access by pool offset — convenience for data-structure code. *)

let load_word (t : Rep.t) ~off = Rep.load t off
let store_word (t : Rep.t) ~off v = Rep.store t off v
let persist (t : Rep.t) ~off ~len = Rep.persist t off len

let addr_of_off (t : Rep.t) off = t.Rep.base + off
let off_of_addr (t : Rep.t) addr = addr - t.Rep.base

let heap_stats (t : Rep.t) = Heap.stats t

(* Replication hooks: export committed sub-batches, import them on a
   replica. See [Redo.apply_payload]. *)

type batch_payload = Rep.batch_payload = {
  p_entries : (int * int) list;
  p_ops : int;
  p_writes : (int * Bytes.t) list;
}

let set_batch_observer (t : Rep.t) obs = t.Rep.batch_observer <- obs
let batch_observer (t : Rep.t) = t.Rep.batch_observer

let apply_batch_payload (t : Rep.t) p = Redo.apply_payload t p
