(* Internal pool representation and on-media layout.

   Pool layout (all offsets pool-relative):

     0x000  magic
     0x008  uuid
     0x010  pool size
     0x018  mode (0 = native, 1 = SPP)
     0x020  tag bits (SPP mode)
     0x028  heap bump pointer (next never-carved offset)
     0x030  root oid slot (24 B reserved)
     0x048  header checksum (over the immutable identity fields)
     0x080  freelist heads, one word per size class
     0x200  redo log   : valid, nentries, entries (off/val pairs)
     0x800  tx lane    : tx_state, ulog_used, ulog data area
     heap_base (4 KiB aligned): object blocks

   Every object block is [header 16 B][data class_size B]; an oid's [off]
   points at the data. The header holds the requested size and a state
   word (allocated flag, published flag, size-class index). *)

open Spp_sim

let magic = 0x53_50_50_5F_50_4D       (* "SPP_PM" *)

(* Header field offsets. *)
let off_magic = 0x000
let off_uuid = 0x008
let off_pool_size = 0x010
let off_mode = 0x018
let off_tag_bits = 0x020
let off_heap_bump = 0x028
let off_root = 0x030
let off_hdr_csum = 0x048
let off_freelists = 0x080             (* room for 96 classes until 0x380 *)

(* Redo log. *)
let off_redo_valid = 0x380
let off_redo_n = 0x388
let off_redo_entries = 0x390
let redo_capacity = 62                (* entries of 16 B; area ends < 0x780 *)

(* Transaction lane. *)
let off_tx_state = 0x780
let off_ulog_used = 0x788
let off_ulog_data = 0x790

let tx_idle = 0
let tx_active = 1
let tx_committing = 2

(* Size classes modeled on PMDK's run units: the smallest class is 128 B
   and classes grow by ~1.25×, rounded to 64 B. This granularity is what
   shapes the paper's Table III — the +8 B per stored PMEMoid vanishes
   into class rounding for ordinary nodes (ctree/rbtree/hashmap ≈ 0%
   overhead) but compounds for rtree's 256-oid nodes. *)
let class_sizes =
  let round64 v = (v + 63) / 64 * 64 in
  let rec build acc size =
    if size >= 1 lsl 30 then List.rev (size :: acc)
    else build (size :: acc) (round64 (size * 5 / 4))
  in
  Array.of_list (build [] 128)

let n_classes = Array.length class_sizes
let class_size ci = class_sizes.(ci)
let block_header_size = 16

let () = assert (off_freelists + (8 * n_classes) <= 0x380)

let class_of_size size =
  if size > class_sizes.(n_classes - 1) then
    invalid_arg (Printf.sprintf "Pmdk: allocation of %d bytes too large" size);
  let lo = ref 0 and hi = ref (n_classes - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if class_sizes.(mid) >= size then hi := mid else lo := mid + 1
  done;
  !lo

(* Header checksum over the identity fields. All five inputs are written
   exactly once, at pool create, in the same initial persist as the sum
   itself, and no later code path rewrites any of them — which is what
   makes the checksum crash-consistent for free. FNV-1a word mix, folded
   to the 63-bit OCaml int like every other stored word. *)

let header_checksum ~uuid ~psize ~mode_word ~tag_bits =
  List.fold_left
    (fun h v -> ((h lxor v) * 0x100000001b3) land max_int)
    0x3bf29ce484222325
    [ magic; uuid; psize; mode_word; tag_bits ]

(* Block header state word. *)
let st_allocated = 1
let st_published = 2
let st_class_shift = 8

(* A committed redo sub-batch exported for replication: the staged
   entries plus the direct-write ranges (entry bodies, virgin block
   headers) that bypass the log. Applying [p_writes] then [p_entries]
   on a pool whose durable image matched the primary's pre-commit state
   reproduces the primary's post-commit state byte for byte — the
   entries are idempotent and the write blobs are captured from the
   view after the commit applied. *)
type batch_payload = {
  p_entries : (int * int) list;    (* redo entries, application order *)
  p_ops : int;                     (* whole operations this commit covers *)
  p_writes : (int * Bytes.t) list; (* direct ranges (pool off, bytes) *)
}

type t = {
  space : Space.t;
  dev : Memdev.t;
  base : int;          (* simulated address where the pool is mapped *)
  psize : int;
  mode : Mode.t;
  uuid : int;
  ulog_cap : int;
  heap_base : int;
  lock : Mutex.t;
  tx_lock : Mutex.t;   (* held from outer tx_begin to commit/abort: one lane *)
  mutable tx_ranges : (int * int) list;  (* volatile mirror: ranges to flush at commit *)
  mutable tx_deferred_free : Oid.t list; (* volatile mirror of deferred frees *)
  mutable tx_depth : int;
  mutable batch_observer : (batch_payload -> unit) option;
    (* called by [Redo.commit_acc] after each committed sub-batch; the
       replication layer ships the payload to replica stacks from here *)
}

let min_pool_size = 1 lsl 16

let ulog_cap_for_pool_size psize =
  if psize < min_pool_size then
    invalid_arg
      (Printf.sprintf "Pmdk: pool size %d below minimum %d" psize min_pool_size);
  max 16384 (psize / 4)

let heap_base_for ~ulog_cap =
  (off_ulog_data + ulog_cap + 4095) / 4096 * 4096

(* Address helpers: [a t off] converts a pool offset into a simulated
   address. *)
let a t off = t.base + off

let load t off = Space.load_word t.space (a t off)
let store t off v = Space.store_word t.space (a t off) v

let persist t off len = Space.persist t.space (a t off) len

let store_p t off v =
  (* fused store+CLWB+SFENCE: one address translation for all three *)
  Space.store_word_persist t.space (a t off) v

(* Oid slots in PM. Field order within a slot: size (SPP only), uuid, off.
   The size field precedes the off field in media order so that recovery
   never observes a valid offset with a stale size (paper §IV-F). *)

let oid_stored_size t = Mode.oid_stored_size t.mode

let store_oid t off (oid : Oid.t) =
  match t.mode with
  | Mode.Native ->
    store t off oid.Oid.uuid;
    store t (off + 8) oid.Oid.off
  | Mode.Spp _ ->
    store t off oid.Oid.size;
    store t (off + 8) oid.Oid.uuid;
    store t (off + 16) oid.Oid.off

let load_oid t off : Oid.t =
  match t.mode with
  | Mode.Native ->
    { Oid.uuid = load t off; off = load t (off + 8); size = 0 }
  | Mode.Spp _ ->
    { Oid.size = load t off; uuid = load t (off + 8); off = load t (off + 16) }

(* Block headers. [data_off] is the oid offset (start of data). *)

let header_off ~data_off = data_off - block_header_size

let block_req_size t ~data_off = load t (header_off ~data_off)
let block_state t ~data_off = load t (header_off ~data_off + 8)

let set_block_header t ~data_off ~req_size ~state =
  store t (header_off ~data_off) req_size;
  store t (header_off ~data_off + 8) state;
  persist t (header_off ~data_off) block_header_size

let state_class st = st lsr st_class_shift
let state_is_allocated st = st land st_allocated <> 0
let state_is_published st = st land st_published <> 0

let freelist_off ci = off_freelists + (8 * ci)
