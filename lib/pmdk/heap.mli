(** Crash-consistent size-class heap allocator (internal to the pool
    facade; use {!Pool} from application code).

    All state transitions that must be atomic — freelist pop/push, bump
    advance, header rewrite, destination oid publication — travel in a
    single redo batch, so a crash either keeps the old heap state or
    lands on the new one. The destination oid's size entry precedes its
    offset entry (paper §IV-F). *)

exception Out_of_pm

type dest =
  | No_dest
  | Pm_slot of int   (** pool offset of a PM oid slot, published atomically *)

type prepared = {
  p_data_off : int;
  p_ci : int;
  p_entries : (int * int) list;
}

val stage_alloc : Rep.t -> size:int -> prepared
(** Pick a block (freelist or bump) without publishing; {!Tx.alloc}
    interposes its undo record between staging and publication. *)

val publish_alloc :
  Rep.t -> prepared -> size:int -> dest:dest -> Oid.t

val alloc : Rep.t -> ?zero:bool -> size:int -> dest:dest -> unit -> Oid.t
val free : Rep.t -> data_off:int -> extra_entries:(int * int) list -> unit
val free_idempotent : Rep.t -> data_off:int -> unit
(** No-op on a block that is not allocated+published — what recovery
    needs when re-running a finished free. *)

val realloc : Rep.t -> Oid.t -> new_size:int -> dest:dest -> Oid.t

val alloc_batched : Rep.t -> Redo.batch -> size:int -> Oid.t
(** Allocation staged into the open op of a group-commit batch: metadata
    reads go through the batch overlay, update entries join the batch,
    and nothing is published until the batch commits. Blocks freed
    earlier in the batch are skipped (their durable pre-state is live
    until the commit lands). *)

val free_batched : Rep.t -> Redo.batch -> data_off:int -> unit
(** Free staged into the open batch op; pins the block against reuse
    until the next sub-commit. Raises [Invalid_argument] on a block the
    batch does not see as allocated+published. *)

type stats = {
  allocated_blocks : int;
  allocated_bytes : int;   (** header + class capacity of live blocks *)
  requested_bytes : int;
  free_blocks : int;
  heap_used : int;
}

val stats : Rep.t -> stats
(** Walk of all carved blocks — the measurement behind Table III. *)
