(* Redo log: atomic application of a batch of word writes (paper §IV-F).

   Protocol: write the entries and their count, persist; set the valid
   flag, persist; apply the entries in order, persist; clear the valid
   flag. A crash before the valid flag is durable loses the whole batch;
   a crash after it is recovered by re-applying the (idempotent) entries
   on open. Entry order is significant: SPP relies on the oid [size]
   entry preceding the [off] entry. *)

open Spp_sim

exception Redo_full

(* Apply a batch: store every entry, flush each target word, then drain
   with a single fence. The valid flag stays set until after the drain
   and the entries are idempotent, so a crash anywhere in the batch is
   recovered by re-applying it on open — one fence per batch instead of
   one per entry. *)
let apply_entries (t : Rep.t) entries =
  List.iter (fun (off, v) -> Rep.store t off v) entries;
  List.iter (fun (off, _) -> Space.flush t.Rep.space (Rep.a t off) 8) entries;
  match entries with
  | [] -> ()
  | (off, _) :: _ -> Space.fence_at t.Rep.space (Rep.a t off)

let run (t : Rep.t) entries =
  let n = List.length entries in
  if n > Rep.redo_capacity then raise Redo_full;
  List.iteri
    (fun i (off, v) ->
      Rep.store t (Rep.off_redo_entries + (16 * i)) off;
      Rep.store t (Rep.off_redo_entries + (16 * i) + 8) v)
    entries;
  Rep.store t Rep.off_redo_n n;
  Rep.persist t Rep.off_redo_n (8 + (16 * n));
  Rep.store_p t Rep.off_redo_valid 1;
  apply_entries t entries;
  Rep.store_p t Rep.off_redo_valid 0

let recover (t : Rep.t) =
  if Rep.load t Rep.off_redo_valid = 1 then begin
    let n = Rep.load t Rep.off_redo_n in
    let entries =
      List.init n (fun i ->
          ( Rep.load t (Rep.off_redo_entries + (16 * i)),
            Rep.load t (Rep.off_redo_entries + (16 * i) + 8) ))
    in
    apply_entries t entries;
    Rep.store_p t Rep.off_redo_valid 0;
    true
  end else false
