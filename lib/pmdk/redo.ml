(* Redo log: atomic application of a batch of word writes (paper §IV-F).

   Protocol: write the entries and their count, persist; set the valid
   flag, persist; apply the entries in order, persist; clear the valid
   flag. A crash before the valid flag is durable loses the whole batch;
   a crash after it is recovered by re-applying the (idempotent) entries
   on open. Entry order is significant: SPP relies on the oid [size]
   entry preceding the [off] entry. *)

open Spp_sim

exception Redo_full

(* Apply a batch: store every entry, flush each target word, then drain
   with a single fence. The valid flag stays set until after the drain
   and the entries are idempotent, so a crash anywhere in the batch is
   recovered by re-applying it on open — one fence per batch instead of
   one per entry. *)
let apply_entries (t : Rep.t) entries =
  List.iter (fun (off, v) -> Rep.store t off v) entries;
  List.iter (fun (off, _) -> Space.flush t.Rep.space (Rep.a t off) 8) entries;
  match entries with
  | [] -> ()
  | (off, _) :: _ -> Space.fence_at t.Rep.space (Rep.a t off)

let run (t : Rep.t) entries =
  let n = List.length entries in
  if n > Rep.redo_capacity then raise Redo_full;
  List.iteri
    (fun i (off, v) ->
      Rep.store t (Rep.off_redo_entries + (16 * i)) off;
      Rep.store t (Rep.off_redo_entries + (16 * i) + 8) v)
    entries;
  Rep.store t Rep.off_redo_n n;
  Rep.persist t Rep.off_redo_n (8 + (16 * n));
  Rep.store_p t Rep.off_redo_valid 1;
  apply_entries t entries;
  Rep.store_p t Rep.off_redo_valid 0

(* ------------------------------------------------------------------ *)
(* Group commit: one redo batch carrying several consecutive operations *)
(* ------------------------------------------------------------------ *)

(* The per-op cost of PM safety metadata is dominated by ordering
   traffic (paper §VI, Fig. 10): every [run] above pays a persist fence,
   a valid-flag fence, an apply drain and a flag-clear fence. A batch
   accumulates the entries of N consecutive operations and pays that
   fence schedule once for all of them.

   Correctness hinges on the same argument as [run]: no target word is
   stored until the complete log is durable. During staging, every
   not-yet-applied word lives only in a volatile overlay; reads from
   batch code go through [batch_load] so later ops observe earlier ops'
   effects, while the media keeps the pre-batch state. A commit then
   replays the standard protocol — entries, count, persist, valid,
   apply, clear — so an interrupted commit is recovered by the unchanged
   [recover] below, and a crash anywhere earlier loses the whole
   sub-batch. Entries are only ever added at operation boundaries, so
   what recovery replays is always a prefix of *whole* operations.

   When staging would overflow the fixed log area, the accumulated
   complete operations are committed first (a sub-batch) and staging
   continues; each sub-batch is still all-or-nothing.

   [batch_pin]/[batch_pinned] are a small escape hatch for the heap: a
   block freed inside the batch keeps its durable pre-state live until
   the free commits, so the allocator must not hand it out again within
   the same sub-batch. Pins are dropped once a commit makes the frees
   durable. *)

type batch = {
  b_rep : Rep.t;
  b_overlay : (int, int) Hashtbl.t;       (* pool off -> staged word *)
  b_pins_acc : (int, unit) Hashtbl.t;     (* frees staged, not yet committed *)
  b_pins_op : (int, unit) Hashtbl.t;      (* frees staged by the open op *)
  mutable b_acc : (int * int) list;       (* complete-op entries, newest first *)
  mutable b_acc_n : int;
  mutable b_acc_ops : int;                (* entry-bearing ops accumulated *)
  mutable b_op : (int * int) list;        (* open op's entries, newest first *)
  mutable b_op_n : int;
  mutable b_in_op : bool;
  mutable b_finished : bool;
  mutable b_commits : int;                (* sub-batch commits issued *)
  mutable b_ops : int;                    (* entry-bearing ops, batch total *)
  mutable b_writes_acc : (int * int) list; (* direct ranges (off, len), newest first *)
  mutable b_writes_op : (int * int) list;  (* open op's direct ranges *)
}

let batch_begin (t : Rep.t) =
  { b_rep = t;
    b_overlay = Hashtbl.create 64;
    b_pins_acc = Hashtbl.create 8;
    b_pins_op = Hashtbl.create 8;
    b_acc = []; b_acc_n = 0; b_acc_ops = 0;
    b_op = []; b_op_n = 0; b_in_op = false;
    b_finished = false; b_commits = 0; b_ops = 0;
    b_writes_acc = []; b_writes_op = [] }

let check_open b =
  if b.b_finished then invalid_arg "Redo.batch: already finished"

let batch_load b off =
  match Hashtbl.find_opt b.b_overlay off with
  | Some v -> v
  | None -> Rep.load b.b_rep off

let batch_stage b ~off ~v =
  check_open b;
  if not b.b_in_op then
    invalid_arg "Redo.batch_stage: entries must belong to an operation";
  b.b_op <- (off, v) :: b.b_op;
  b.b_op_n <- b.b_op_n + 1;
  Hashtbl.replace b.b_overlay off v

(* Record a direct store that bypassed the log (a fresh entry body, a
   virgin block header): the range joins the op's write set and ships
   with the commit's replication payload. The media effect already
   happened — this is bookkeeping only, so an unreplicated pool pays one
   list cons per range. *)
let batch_note_write b ~off ~len =
  check_open b;
  if not b.b_in_op then
    invalid_arg "Redo.batch_note_write: writes must belong to an operation";
  b.b_writes_op <- (off, len) :: b.b_writes_op

let batch_pin b off =
  check_open b;
  Hashtbl.replace b.b_pins_op off ()

let batch_pinned b off =
  Hashtbl.mem b.b_pins_op off || Hashtbl.mem b.b_pins_acc off

(* Commit the accumulated complete operations as one redo log. The
   fences actually spent are measured around the commit; a
   one-commit-per-op execution would have paid them once per op, which
   is what [Memdev.note_batch] credits as saved. *)
let commit_acc b =
  if b.b_acc_n > 0 then begin
    let t = b.b_rep in
    let k = b.b_acc_ops in
    let entries = List.rev b.b_acc in
    let writes = List.rev b.b_writes_acc in
    let f0 = (Memdev.counters t.Rep.dev).Memdev.fences in
    run t entries;
    let spent = (Memdev.counters t.Rep.dev).Memdev.fences - f0 in
    Memdev.note_batch t.Rep.dev ~ops:k ~fences_saved:((k - 1) * spent);
    b.b_commits <- b.b_commits + 1;
    b.b_acc <- [];
    b.b_acc_n <- 0;
    b.b_acc_ops <- 0;
    b.b_writes_acc <- [];
    (* the staged frees are durable now; their blocks are reusable *)
    Hashtbl.reset b.b_pins_acc;
    (* Ship the commit to the replication layer, if any. The payload is
       built only past the commit point — everything in it is durable on
       the primary — and the write blobs are materialized from the view
       after the entries applied, so overlapping staged words are
       captured at their committed values. A crash between the commit
       and this ship leaves replicas exactly one commit behind, which is
       the lag the failover oracle bounds. *)
    match t.Rep.batch_observer with
    | None -> ()
    | Some _ when Memdev.is_powered_off t.Rep.dev ->
      (* A killed primary cannot send: the "commit" above was silently
         discarded by the dead device, so shipping it would let a
         replica lead what recovery of the primary can produce. *)
      ()
    | Some notify ->
      let p_writes =
        List.map
          (fun (off, len) ->
            (off, Space.read_bytes t.Rep.space (Rep.a t off) len))
          writes
      in
      notify { Rep.p_entries = entries; p_ops = k; p_writes }
  end

let batch_op_begin b =
  check_open b;
  if b.b_in_op then invalid_arg "Redo.batch_op_begin: operation already open";
  b.b_in_op <- true

let batch_op_end b =
  check_open b;
  if not b.b_in_op then invalid_arg "Redo.batch_op_end: no open operation";
  b.b_in_op <- false;
  if b.b_op_n > Rep.redo_capacity then raise Redo_full;
  if b.b_acc_n + b.b_op_n > Rep.redo_capacity then commit_acc b;
  if b.b_op_n > 0 then begin
    b.b_acc <- b.b_op @ b.b_acc;
    b.b_acc_n <- b.b_acc_n + b.b_op_n;
    b.b_acc_ops <- b.b_acc_ops + 1;
    b.b_ops <- b.b_ops + 1;
    b.b_op <- [];
    b.b_op_n <- 0;
    (* the op's direct writes ship with the commit its entries join —
       never with an earlier overflow commit *)
    b.b_writes_acc <- b.b_writes_op @ b.b_writes_acc;
    b.b_writes_op <- [];
    Hashtbl.iter (fun off () -> Hashtbl.replace b.b_pins_acc off ())
      b.b_pins_op;
    Hashtbl.reset b.b_pins_op
  end

let batch_finish b =
  check_open b;
  if b.b_in_op then invalid_arg "Redo.batch_finish: operation still open";
  commit_acc b;
  b.b_finished <- true

let batch_commits b = b.b_commits
let batch_ops b = b.b_ops

(* Import side of replication: land the direct-write blobs first (the
   ranges are unreachable on the replica until the entries publish
   them, mirroring the primary's ordering), then run the entries
   through the standard redo protocol — the replica's own log area
   carries the commit, so a replica that later becomes primary recovers
   exactly like one. *)
let apply_payload (t : Rep.t) (p : Rep.batch_payload) =
  List.iter
    (fun (off, data) ->
      Space.write_bytes t.Rep.space (Rep.a t off) data;
      Space.flush t.Rep.space (Rep.a t off) (Bytes.length data))
    p.Rep.p_writes;
  match p.Rep.p_entries with
  | [] -> ()
  | entries -> run t entries

let recover (t : Rep.t) =
  if Rep.load t Rep.off_redo_valid = 1 then begin
    let n = Rep.load t Rep.off_redo_n in
    let entries =
      List.init n (fun i ->
          ( Rep.load t (Rep.off_redo_entries + (16 * i)),
            Rep.load t (Rep.off_redo_entries + (16 * i) + 8) ))
    in
    apply_entries t entries;
    Rep.store_p t Rep.off_redo_valid 0;
    true
  end else false
