(** Pool facade — the libpmemobj-equivalent public API.

    Mirrors PMDK: {!alloc}/{!free_}/{!realloc} are the atomic object API,
    {!with_tx}/{!tx_add_range}/{!tx_alloc}/{!tx_free} the transactional
    one, {!direct} is [pmemobj_direct], {!root} is [pmemobj_root]. In
    [Mode.Spp] pools, {!direct} returns a tagged pointer and every stored
    PMEMoid carries the extra durable size field, maintained crash
    consistently (paper §IV-B, §IV-F). *)

open Spp_sim

type t

exception Wrong_pool of Oid.t
(** An oid whose [uuid] does not belong to this pool. *)

(** {1 Lifecycle} *)

val create :
  Space.t -> base:int -> size:int -> mode:Mode.t -> name:string -> t
(** Create and format a pool mapped at [base]. In SPP mode the pool must
    fit below the tag configuration's address span ([Invalid_argument]
    otherwise — the paper maps pools to the lower address space). *)

type recovery_report = {
  redo_replayed : bool;
  tx_outcome : [ `Clean | `Rolled_back | `Completed_commit ];
}

type pool_error =
  | Bad_header of string
      (** Magic, mode word, tag bits or size field unusable. *)
  | Bad_checksum of { stored : int; computed : int }
      (** Header identity checksum mismatch (media bit rot). *)
  | Truncated of { expected : int; actual : int }
      (** Device smaller than the minimum pool or the header's size field. *)
  | Corrupt_log of string
      (** Redo/undo log area failed to parse during recovery. *)

val pool_error_to_string : pool_error -> string
val pp_pool_error : Format.formatter -> pool_error -> unit

val open_dev :
  Space.t -> base:int -> Memdev.t -> (t * recovery_report, pool_error) result
(** Open an existing pool device: map, validate the header (magic, size,
    mode, identity checksum), and run recovery (redo replay, then
    transaction rollback/completion). A corrupt image yields a typed
    [Error] with the region unmapped again — no exception escapes. *)

val of_dev : Space.t -> base:int -> Memdev.t -> t
(** {!open_dev}, raising [Invalid_argument] on any [pool_error] —
    the legacy interface for callers that treat corruption as fatal. *)

val magic_word : int
(** First durable word of every pool image ("SPP_PM"); pass to
    [Memdev.load_durable ~magic] to reject foreign files early. *)

val min_pool_size : int

val recover : t -> recovery_report
val crash_and_recover : t -> recovery_report
(** Simulated power failure (unfenced stores lost) followed by open-time
    recovery of the same pool. *)

val close : t -> unit

(** {1 Accessors} *)

val space : t -> Space.t
val dev : t -> Memdev.t
val base : t -> int
val size : t -> int
val mode : t -> Mode.t
val uuid : t -> int
val oid_stored_size : t -> int
(** Bytes a PMEMoid occupies in PM: 16 native, 24 SPP. *)

val heap_base : t -> int

(** {1 Atomic object management} *)

val alloc : ?zero:bool -> ?dest:int -> t -> size:int -> Oid.t
(** [pmemobj_alloc]/[_zalloc]. [dest] is the pool offset of a PM oid slot
    published atomically with the allocation; the oid's size entry is
    ordered before its offset entry (paper §IV-F). Raises
    [Heap.Out_of_pm] when the pool is full and
    [Spp_core.Encoding.Object_too_large] when the object exceeds the tag
    limit in SPP mode. *)

val free_ : ?dest:int -> t -> Oid.t -> unit
(** [pmemobj_free]; [dest] additionally clears the oid slot atomically. *)

val realloc : ?dest:int -> t -> Oid.t -> size:int -> Oid.t
val alloc_size : t -> Oid.t -> int

val usable_size : t -> Oid.t -> int
(** Class-rounded block capacity ([pmemobj_alloc_usable_size]). *)

val direct : t -> Oid.t -> int
(** [pmemobj_direct]: 0 for the null oid; otherwise the object's
    simulated address — tagged in SPP mode. *)

(** {1 Root object} *)

val root : t -> size:int -> Oid.t
(** [pmemobj_root]: allocated (zeroed) once, atomically, into the header's
    root slot. *)

val root_oid : t -> Oid.t

(** {1 Transactions} *)

val tx_begin : t -> unit
val tx_commit : t -> unit
val tx_abort : t -> unit
val tx_add_range : t -> off:int -> len:int -> unit
val tx_add_range_oid : t -> Oid.t -> unit
val tx_alloc : ?zero:bool -> t -> size:int -> Oid.t
val tx_realloc : t -> Oid.t -> size:int -> Oid.t
val tx_free : t -> Oid.t -> unit
val with_tx : t -> (unit -> 'a) -> 'a
(** Run [f] inside a transaction; any exception aborts (undo) and is
    re-raised — including simulated faults from SPP overflow detection. *)

val in_tx : t -> bool

(** {1 Group commit}

    [with_batch] runs [f] with an open {!Redo.batch}: consecutive
    operations stage their redo entries into one shared log and the
    fence schedule is paid once per (sub-)batch instead of once per op.
    The pool's transaction lane and allocator lock are held for the
    batch's whole lifetime, so batches serialize against transactions
    and atomic-API calls; concurrent readers of the *data structures
    built on top* must be excluded by the caller (the serve queue gives
    each shard's batch exclusive ownership). On a crash — or an
    exception from [f] — the durable state lands on a prefix of whole
    staged operations, never inside one. *)

val with_batch : t -> (Redo.batch -> 'a) -> 'a

val batch_load_word : t -> Redo.batch -> off:int -> int
val batch_stage_word : t -> Redo.batch -> off:int -> int -> unit

val batch_load_oid : t -> Redo.batch -> off:int -> Oid.t
val batch_stage_oid : t -> Redo.batch -> off:int -> Oid.t -> unit
(** Mode-aware oid slot IO through the batch overlay; in SPP mode the
    staged size entry precedes the offset entry, preserving the paper's
    §IV-F ordering through group commit. *)

val batch_alloc : t -> Redo.batch -> size:int -> Oid.t
(** Allocation staged into the open batch op ({!Heap.alloc_batched});
    the caller publishes the oid by staging it into a reachable slot. *)

val batch_free : t -> Redo.batch -> Oid.t -> unit

val batch_note_write : t -> Redo.batch -> off:int -> len:int -> unit
(** Record a direct store the open batch op made past the log (a fresh
    entry body written while unreachable): the range's committed bytes
    join the op's commit in its replication payload
    ({!Redo.batch_note_write}). *)

(** {1 PMEMoid slots and raw words (pool offsets)} *)

val load_oid : t -> off:int -> Oid.t
val store_oid : t -> off:int -> Oid.t -> unit
(** Mode-aware oid slot IO; in SPP mode the size field is written before
    the offset field. Inside a transaction the caller must have
    snapshotted the slot (as in PMDK). *)

val lease_load_oid : t -> Space.lease -> off:int -> Oid.t
(** Decode a stored oid through a {!Space.lease} window ([off] is the
    offset within the window): the mode-aware layout of {!load_oid} read
    with pinned-translation loads, for hot read paths that leased a
    whole object. *)

val view_load_oid : t -> Space.view -> off:int -> Oid.t
(** Same layout, read raw through an opened {!Space.view}: the window's
    checks were already paid at view acquisition. *)

val load_word : t -> off:int -> int
val store_word : t -> off:int -> int -> unit
val persist : t -> off:int -> len:int -> unit

val addr_of_off : t -> int -> int
val off_of_addr : t -> int -> int

(** {1 Accounting} *)

val heap_stats : t -> Heap.stats

(** {1 Replication}

    Group-committed batches can be replicated: an observer installed on
    the primary fires once per committed sub-batch with a
    {!batch_payload} — the commit's redo entries plus the direct-write
    blobs that bypassed the log — strictly after the commit is durable,
    so a payload never describes state a crash could take back.
    Applying the payload stream in order onto a pool opened from the
    primary's durable image ({!Spp_sim.Memdev.of_image} +
    {!open_dev}) keeps the replica bit-identical to the primary after
    every shipped commit. Only the batched path ([with_batch] /
    [Cmap.run_batch]) is replicated; the transactional and atomic APIs
    are not observed. *)

type batch_payload = Rep.batch_payload = {
  p_entries : (int * int) list;    (** redo entries, application order *)
  p_ops : int;                     (** whole operations covered *)
  p_writes : (int * Bytes.t) list; (** direct ranges (pool off, bytes) *)
}

val set_batch_observer : t -> (batch_payload -> unit) option -> unit
(** Install (or clear) the per-commit observer. The observer runs on
    the committing domain, inside the batch's critical section; an
    exception it raises aborts the remainder of the batch (the
    committed prefix stays durable). *)

val batch_observer : t -> (batch_payload -> unit) option

val apply_batch_payload : t -> batch_payload -> unit
(** Import one shipped commit on a replica pool ({!Redo.apply_payload}):
    blobs first, then entries through the full redo protocol. *)
