(* Crash-consistent size-class heap allocator.

   A block is [header 16 B][data]; header word 0 holds the requested size
   while allocated and the freelist link while free, header word 1 holds
   the state (allocated/published flags + size class). All state
   transitions that must be atomic — freelist pop/push, bump advance,
   header rewrite, destination oid publication — travel in a single redo
   batch, so a crash either keeps the old heap state or lands on the new
   one; there is no window where a live block or a freelist link is
   partially overwritten. The destination oid [size] entry precedes the
   [off] entry in the batch (paper §IV-F). *)

exception Out_of_pm

type dest =
  | No_dest           (* caller keeps the oid in volatile memory *)
  | Pm_slot of int    (* pool offset of a PM oid slot, published atomically *)

let link_off ~data_off = Rep.header_off ~data_off

(* Prepared allocation: everything needed to publish, with no media
   mutation yet except on virgin (bump-carved) space. *)
type prepared = {
  p_data_off : int;
  p_ci : int;
  p_entries : (int * int) list;   (* allocator update + header writes *)
}

let check_spp_size (t : Rep.t) size =
  match t.Rep.mode with
  | Mode.Native -> ()
  | Mode.Spp cfg ->
    if size > Spp_core.Config.max_object_size cfg then
      raise (Spp_core.Encoding.Object_too_large
               { size; max = Spp_core.Config.max_object_size cfg })

let publish_state ci =
  Rep.st_allocated lor Rep.st_published lor (ci lsl Rep.st_class_shift)

let stage_alloc (t : Rep.t) ~size =
  if size <= 0 then invalid_arg "Pmdk alloc: non-positive size";
  check_spp_size t size;
  let ci = Rep.class_of_size size in
  let head = Rep.load t (Rep.freelist_off ci) in
  if head <> 0 then begin
    (* Pop the freelist head. The block is not touched before publish:
       its link (header word 0) must stay valid in case of a crash. *)
    let next = Rep.load t (link_off ~data_off:head) in
    { p_data_off = head;
      p_ci = ci;
      p_entries =
        [ (Rep.freelist_off ci, next);
          (Rep.header_off ~data_off:head, size);
          (Rep.header_off ~data_off:head + 8, publish_state ci) ] }
  end else begin
    (* Carve virgin space past the bump pointer; the header can be staged
       directly since the block is unreachable until the bump advances. *)
    let bump = Rep.load t Rep.off_heap_bump in
    let data_off = bump + Rep.block_header_size in
    let new_bump = data_off + Rep.class_size ci in
    if new_bump > t.Rep.psize then raise Out_of_pm;
    Rep.set_block_header t ~data_off ~req_size:size
      ~state:(Rep.st_allocated lor (ci lsl Rep.st_class_shift));
    { p_data_off = data_off;
      p_ci = ci;
      p_entries =
        [ (Rep.off_heap_bump, new_bump);
          (Rep.header_off ~data_off + 8, publish_state ci) ] }
  end

let dest_entries (t : Rep.t) dest (oid : Oid.t) =
  match dest with
  | No_dest -> []
  | Pm_slot doff ->
    (match t.Rep.mode with
     | Mode.Native -> [ (doff, oid.Oid.uuid); (doff + 8, oid.Oid.off) ]
     | Mode.Spp _ ->
       (* size strictly before off in application order *)
       [ (doff, oid.Oid.size); (doff + 8, oid.Oid.uuid); (doff + 16, oid.Oid.off) ])

let publish_alloc (t : Rep.t) prepared ~size ~dest =
  let oid = { Oid.uuid = t.Rep.uuid; off = prepared.p_data_off; size } in
  Redo.run t (prepared.p_entries @ dest_entries t dest oid);
  oid

let alloc (t : Rep.t) ?(zero = false) ~size ~dest () =
  let p = stage_alloc t ~size in
  if zero then begin
    Spp_sim.Space.fill t.Rep.space
      (Rep.a t p.p_data_off) (Rep.class_size p.p_ci) '\000';
    Rep.persist t p.p_data_off (Rep.class_size p.p_ci)
  end;
  publish_alloc t p ~size ~dest

(* ------------------------------------------------------------------ *)
(* Group-commit variants: allocator staging inside a Redo.batch         *)
(* ------------------------------------------------------------------ *)

(* Same transitions as [stage_alloc]/[free_entries], but all allocator
   metadata is read through the batch overlay (so an op sees the bumps,
   pops and pushes of earlier ops in the batch) and the update entries
   are staged into the open batch op instead of forming a private redo
   run.

   Two deviations from the synchronous paths, both forced by deferred
   application. First, a block freed earlier in the batch still carries
   its durable pre-state — the free only lands at commit — so it must
   not be handed out again: such blocks are pinned, and the freelist
   walk pops the first unpinned block (unlinking from the middle is
   fine: the predecessor's link is just another staged word). Second,
   the virgin-carve header write is a plain store + flush with no fence;
   the commit's first persist supplies the drain, and until the staged
   bump advance commits the block is unreachable anyway. *)

let alloc_batched (t : Rep.t) (b : Redo.batch) ~size =
  if size <= 0 then invalid_arg "Pmdk alloc: non-positive size";
  check_spp_size t size;
  let ci = Rep.class_of_size size in
  let stage off v = Redo.batch_stage b ~off ~v in
  let rec pop prev_off cand =
    if cand = 0 then None
    else if Redo.batch_pinned b cand then
      pop (link_off ~data_off:cand) (Redo.batch_load b (link_off ~data_off:cand))
    else Some (prev_off, cand)
  in
  let data_off =
    match pop (Rep.freelist_off ci) (Redo.batch_load b (Rep.freelist_off ci)) with
    | Some (prev_off, head) ->
      stage prev_off (Redo.batch_load b (link_off ~data_off:head));
      stage (Rep.header_off ~data_off:head) size;
      stage (Rep.header_off ~data_off:head + 8) (publish_state ci);
      head
    | None ->
      let bump = Redo.batch_load b Rep.off_heap_bump in
      let data_off = bump + Rep.block_header_size in
      let new_bump = data_off + Rep.class_size ci in
      if new_bump > t.Rep.psize then raise Out_of_pm;
      let hoff = Rep.header_off ~data_off in
      Rep.store t hoff size;
      Rep.store t (hoff + 8)
        (Rep.st_allocated lor (ci lsl Rep.st_class_shift));
      Spp_sim.Space.flush t.Rep.space (Rep.a t hoff) Rep.block_header_size;
      (* direct header write: must travel in the replication payload *)
      Redo.batch_note_write b ~off:hoff ~len:Rep.block_header_size;
      stage Rep.off_heap_bump new_bump;
      stage (hoff + 8) (publish_state ci);
      data_off
  in
  { Oid.uuid = t.Rep.uuid; off = data_off; size }

let free_batched (_ : Rep.t) (b : Redo.batch) ~data_off =
  let st = Redo.batch_load b (Rep.header_off ~data_off + 8) in
  if not (Rep.state_is_allocated st && Rep.state_is_published st) then
    invalid_arg "Pmdk free: block is not allocated (double free?)";
  let ci = Rep.state_class st in
  let head = Redo.batch_load b (Rep.freelist_off ci) in
  Redo.batch_pin b data_off;
  Redo.batch_stage b ~off:(link_off ~data_off) ~v:head;
  Redo.batch_stage b ~off:(Rep.freelist_off ci) ~v:data_off;
  Redo.batch_stage b ~off:(Rep.header_off ~data_off + 8)
    ~v:(ci lsl Rep.st_class_shift)

(* Free. Entirely inside the redo batch: link write, freelist push and
   header demotion are atomic together. Idempotent via the published
   flag, which is what recovery needs when it re-runs a finished free. *)

let free_entries (t : Rep.t) ~data_off =
  let st = Rep.block_state t ~data_off in
  if not (Rep.state_is_allocated st && Rep.state_is_published st) then None
  else begin
    let ci = Rep.state_class st in
    let head = Rep.load t (Rep.freelist_off ci) in
    Some
      [ (link_off ~data_off, head);
        (Rep.freelist_off ci, data_off);
        (Rep.header_off ~data_off + 8, ci lsl Rep.st_class_shift) ]
  end

let free (t : Rep.t) ~data_off ~extra_entries =
  match free_entries t ~data_off with
  | None -> invalid_arg "Pmdk free: block is not allocated (double free?)"
  | Some entries -> Redo.run t (entries @ extra_entries)

let free_idempotent (t : Rep.t) ~data_off =
  match free_entries t ~data_off with
  | None -> ()
  | Some entries -> Redo.run t entries

(* Realloc: same class is a pure metadata update; a class change
   allocates, copies, and frees the old block, all in one redo batch. *)

let realloc (t : Rep.t) (oid : Oid.t) ~new_size ~dest =
  if Oid.is_null oid then alloc t ~size:new_size ~dest ()
  else begin
    if new_size <= 0 then invalid_arg "Pmdk realloc: non-positive size";
    check_spp_size t new_size;
    let data_off = oid.Oid.off in
    let st = Rep.block_state t ~data_off in
    if not (Rep.state_is_allocated st) then
      invalid_arg "Pmdk realloc: block is not allocated";
    let ci_old = Rep.state_class st in
    let ci_new = Rep.class_of_size new_size in
    if ci_old = ci_new then begin
      let oid' = { oid with Oid.size = new_size } in
      Redo.run t
        ((Rep.header_off ~data_off, new_size) :: dest_entries t dest oid');
      oid'
    end else begin
      let p = stage_alloc t ~size:new_size in
      let old_size = Rep.block_req_size t ~data_off in
      Spp_sim.Space.blit t.Rep.space
        ~src:(Rep.a t data_off) ~dst:(Rep.a t p.p_data_off)
        ~len:(min old_size new_size);
      Rep.persist t p.p_data_off (min old_size new_size);
      let oid' = { Oid.uuid = t.Rep.uuid; off = p.p_data_off; size = new_size } in
      let free_old =
        match free_entries t ~data_off with
        | Some e -> e
        | None -> assert false
      in
      Redo.run t (p.p_entries @ free_old @ dest_entries t dest oid');
      oid'
    end
  end

(* Heap accounting: walk the carved blocks. Used for Table III. *)

type stats = {
  allocated_blocks : int;
  allocated_bytes : int;   (* header + class size of live blocks *)
  requested_bytes : int;   (* sum of live requested sizes *)
  free_blocks : int;
  heap_used : int;         (* bump - heap_base *)
}

let stats (t : Rep.t) =
  let bump = Rep.load t Rep.off_heap_bump in
  let rec go off acc =
    if off >= bump then acc
    else begin
      let data_off = off + Rep.block_header_size in
      let st = Rep.block_state t ~data_off in
      let ci = Rep.state_class st in
      let blk = Rep.block_header_size + Rep.class_size ci in
      let acc =
        if Rep.state_is_allocated st then
          { acc with
            allocated_blocks = acc.allocated_blocks + 1;
            allocated_bytes = acc.allocated_bytes + blk;
            requested_bytes =
              acc.requested_bytes + Rep.block_req_size t ~data_off }
        else { acc with free_blocks = acc.free_blocks + 1 }
      in
      go (off + blk) acc
    end
  in
  go t.Rep.heap_base
    { allocated_blocks = 0; allocated_bytes = 0; requested_bytes = 0;
      free_blocks = 0; heap_used = bump - t.Rep.heap_base }
