(** Redo log: atomic application of a batch of word writes (paper §IV-F).

    Write entries + count, persist; set the valid flag, persist; apply in
    order; clear the flag. A crash before the flag is durable loses the
    whole batch; after it, {!recover} re-applies the idempotent entries.
    Entry order is significant: SPP relies on the oid size entry
    preceding the offset entry. *)

exception Redo_full

val run : Rep.t -> (int * int) list -> unit
(** [(pool offset, value)] pairs, applied atomically. *)

val recover : Rep.t -> bool
(** Returns [true] when a valid log was replayed. *)

(** {1 Group commit}

    A batch accumulates the redo entries of several consecutive
    operations and commits them through one log write — one fence
    schedule for N ops instead of N. Staged words live in a volatile
    overlay until the commit applies them; reads from batch code must go
    through {!batch_load} to observe earlier staged ops. Entries join
    the log only at {!batch_op_end}, so a crash-time replay always lands
    on a prefix of whole operations, never inside one. When staging
    would overflow the log area the accumulated complete ops are
    committed early (a sub-batch, still all-or-nothing); {!batch_finish}
    commits whatever remains. Fence savings are credited to the pool's
    device via {!Memdev.note_batch}. *)

type batch

val batch_begin : Rep.t -> batch
(** Callers serialize batches against transactions themselves — see
    [Pool.with_batch]. *)

val batch_load : batch -> int -> int
(** Word at a pool offset as the batch sees it: the staged overlay
    value when present, the media view otherwise. *)

val batch_stage : batch -> off:int -> v:int -> unit
(** Stage a word write into the open operation. Raises
    [Invalid_argument] outside {!batch_op_begin}/{!batch_op_end}. *)

val batch_op_begin : batch -> unit
val batch_op_end : batch -> unit
(** Operation boundary markers: entries staged between them form one
    atomic unit within the batch. [batch_op_end] may sub-commit the
    previously accumulated ops to make room. *)

val batch_note_write : batch -> off:int -> len:int -> unit
(** Record a direct store the open operation made past the log (fresh
    entry bodies, virgin block headers — unreachable until a staged
    word publishes them). The range's committed bytes join the
    operation's commit in its replication payload. Bookkeeping only;
    raises [Invalid_argument] outside an operation. *)

val batch_pin : batch -> int -> unit
(** Mark a pool offset (a freed block) as not reusable until the next
    commit makes its free durable. *)

val batch_pinned : batch -> int -> bool

val batch_finish : batch -> unit
(** Commit the remaining accumulated ops and seal the batch. *)

val batch_commits : batch -> int
(** Sub-batch commits issued so far. *)

val batch_ops : batch -> int
(** Entry-bearing operations accumulated over the batch's lifetime. *)

(** {1 Replication}

    Each committed sub-batch can be exported as a {!Rep.batch_payload}
    — its redo entries plus the direct-write blobs that bypassed the
    log — through the pool's batch observer ([Rep.batch_observer], set
    via [Pool.set_batch_observer]). The observer fires strictly after
    the commit is durable on the primary, so a payload never describes
    state the primary could lose. *)

val apply_payload : Rep.t -> Rep.batch_payload -> unit
(** Apply a shipped commit to a replica pool: direct-write blobs first,
    then the entries through the full redo protocol (the replica's own
    log carries the commit). Applying the payload stream in sequence
    order onto a pool that started from the primary's durable image
    keeps the replica's durable contents bit-identical to the primary's
    state after each shipped commit. *)
