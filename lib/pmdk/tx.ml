(* Software transactions with a persistent undo log (paper §II-B, §IV-F).

   The lane holds a state word and a log of records:

     snapshot  [kind=1][pool off][len][data, padded to 8 B]
     alloc     [kind=2][data off]       (roll back on abort/crash)
     free      [kind=3][data off]       (deferred; applied at commit)

   A record becomes valid only when [ulog_used] — persisted after the
   record body — covers it. Commit: flush all snapshotted ranges, move to
   COMMITTING, apply deferred frees (idempotently), then IDLE. Abort or
   crash while ACTIVE: restore snapshots in reverse order, roll back
   published allocations, drop deferred frees. Crash while COMMITTING:
   finish the deferred frees. *)

open Spp_sim

exception Tx_log_full
exception Not_in_tx
exception Tx_aborted

(* Readable fault reports, matching the Fault printer in lib/sim/fault.ml. *)
let () =
  Printexc.register_printer (function
    | Tx_log_full ->
      Some "Tx.Tx_log_full: persistent undo log exhausted \
            (snapshot/alloc/free records exceed the lane capacity)"
    | Not_in_tx ->
      Some "Tx.Not_in_tx: transactional operation outside tx_begin/tx_commit"
    | Tx_aborted -> Some "Tx.Tx_aborted: transaction rolled back"
    | _ -> None)

let kind_snapshot = 1
let kind_alloc = 2
let kind_free = 3

let round8 n = (n + 7) / 8 * 8

let in_tx (t : Rep.t) = t.Rep.tx_depth > 0

let require_tx t = if not (in_tx t) then raise Not_in_tx

(* Record append. The body is persisted before ulog_used publishes it. *)

let append_record (t : Rep.t) words data =
  let used = Rep.load t Rep.off_ulog_used in
  let body_len = (8 * List.length words) + round8 (Bytes.length data) in
  if used + body_len > t.Rep.ulog_cap then raise Tx_log_full;
  let base = Rep.off_ulog_data + used in
  List.iteri (fun i w -> Rep.store t (base + (8 * i)) w) words;
  if Bytes.length data > 0 then
    Space.write_bytes t.Rep.space
      (Rep.a t (base + (8 * List.length words))) data;
  Rep.persist t base body_len;
  Rep.store_p t Rep.off_ulog_used (used + body_len)

let tx_begin (t : Rep.t) =
  if t.Rep.tx_depth = 0 then begin
    Rep.store_p t Rep.off_ulog_used 0;
    Rep.store_p t Rep.off_tx_state Rep.tx_active;
    t.Rep.tx_ranges <- [];
    t.Rep.tx_deferred_free <- []
  end;
  t.Rep.tx_depth <- t.Rep.tx_depth + 1

let add_range (t : Rep.t) ~off ~len =
  require_tx t;
  if len < 0 || off < 0 || off + len > t.Rep.psize then
    invalid_arg "Tx.add_range: range outside pool";
  if len > 0 then begin
    let data = Space.read_bytes t.Rep.space (Rep.a t off) len in
    append_record t [ kind_snapshot; off; len ] data;
    t.Rep.tx_ranges <- (off, len) :: t.Rep.tx_ranges
  end

let add_range_oid (t : Rep.t) (oid : Oid.t) =
  (* Snapshot a whole object — TX_ADD in PMDK. *)
  require_tx t;
  add_range t ~off:oid.Oid.off ~len:(Rep.block_req_size t ~data_off:oid.Oid.off)

let alloc (t : Rep.t) ?(zero = false) ~size () =
  require_tx t;
  let p = Heap.stage_alloc t ~size in
  if zero then begin
    Space.fill t.Rep.space
      (Rep.a t p.Heap.p_data_off) (Rep.class_size p.Heap.p_ci) '\000';
    Rep.persist t p.Heap.p_data_off (Rep.class_size p.Heap.p_ci)
  end;
  (* Undo record strictly before publication: a crash in between sees an
     unpublished block and skips the rollback (no double free, no leak). *)
  append_record t [ kind_alloc; p.Heap.p_data_off ] Bytes.empty;
  let oid = Heap.publish_alloc t p ~size ~dest:Heap.No_dest in
  (* The new object's contents are flushed at commit, like snapshotted
     ranges — PMDK adds tx-allocated objects to the transaction. *)
  t.Rep.tx_ranges <- (oid.Oid.off, size) :: t.Rep.tx_ranges;
  oid

let free (t : Rep.t) (oid : Oid.t) =
  require_tx t;
  if not (Oid.is_null oid) then begin
    append_record t [ kind_free; oid.Oid.off ] Bytes.empty;
    t.Rep.tx_deferred_free <- oid :: t.Rep.tx_deferred_free
  end

let realloc (t : Rep.t) (oid : Oid.t) ~size =
  (* pmemobj_tx_realloc: new object in this tx, contents copied, old
     object freed at commit. *)
  require_tx t;
  if Oid.is_null oid then alloc t ~size ()
  else begin
    let fresh = alloc t ~size () in
    let old_size = Rep.block_req_size t ~data_off:oid.Oid.off in
    Space.blit t.Rep.space
      ~src:(Rep.a t oid.Oid.off) ~dst:(Rep.a t fresh.Oid.off)
      ~len:(min old_size size);
    free t oid;
    fresh
  end

(* Log parsing (recovery reads the media, not the volatile mirrors). *)

type record =
  | Snapshot of { off : int; len : int; data : Bytes.t }
  | Alloc_rec of { data_off : int }
  | Free_rec of { data_off : int }

let parse_log (t : Rep.t) =
  let used = Rep.load t Rep.off_ulog_used in
  let rec go pos acc =
    if pos >= used then List.rev acc
    else begin
      let base = Rep.off_ulog_data + pos in
      let kind = Rep.load t base in
      if kind = kind_snapshot then begin
        let off = Rep.load t (base + 8) in
        let len = Rep.load t (base + 16) in
        let data = Space.read_bytes t.Rep.space (Rep.a t (base + 24)) len in
        go (pos + 24 + round8 len) (Snapshot { off; len; data } :: acc)
      end
      else if kind = kind_alloc then
        go (pos + 16) (Alloc_rec { data_off = Rep.load t (base + 8) } :: acc)
      else if kind = kind_free then
        go (pos + 16) (Free_rec { data_off = Rep.load t (base + 8) } :: acc)
      else
        failwith (Printf.sprintf "Tx.parse_log: corrupt record kind %d" kind)
    end
  in
  go 0 []

let finish_lane (t : Rep.t) =
  Rep.store_p t Rep.off_ulog_used 0;
  Rep.store_p t Rep.off_tx_state Rep.tx_idle;
  t.Rep.tx_ranges <- [];
  t.Rep.tx_deferred_free <- []

(* Commit path. Deferred frees are replayed idempotently so a crash while
   COMMITTING can simply re-run them. *)

let apply_deferred_frees (t : Rep.t) records =
  List.iter
    (function
      | Free_rec { data_off } -> Heap.free_idempotent t ~data_off
      | Snapshot _ | Alloc_rec _ -> ())
    records

(* Sort and coalesce overlapping/adjacent (off, len) ranges so a
   heavily-snapshotted object is flushed once, not once per add_range. *)
let coalesce_ranges ranges =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ranges in
  let rec go = function
    | (o1, l1) :: (o2, l2) :: rest when o2 <= o1 + l1 ->
      go ((o1, max l1 (o2 + l2 - o1)) :: rest)
    | r :: rest -> r :: go rest
    | [] -> []
  in
  go sorted

let commit_outer (t : Rep.t) =
  (* PMDK flushes all snapshotted ranges at commit time; one fence drains
     the whole batch. *)
  (match t.Rep.tx_ranges with
   | [] -> ()
   | ranges ->
     let merged = coalesce_ranges ranges in
     List.iter
       (fun (off, len) -> Space.flush t.Rep.space (Rep.a t off) len)
       merged;
     let off, _ = List.hd merged in
     Space.fence_at t.Rep.space (Rep.a t off));
  Rep.store_p t Rep.off_tx_state Rep.tx_committing;
  apply_deferred_frees t (parse_log t);
  finish_lane t

(* Rollback: snapshots restored in reverse order; published allocations
   rolled back; deferred frees dropped. *)

let rollback (t : Rep.t) =
  let records = parse_log t in
  List.iter
    (function
      | Snapshot { off; len; data } ->
        Space.write_bytes t.Rep.space (Rep.a t off) data;
        Rep.persist t off len
      | Alloc_rec { data_off } ->
        let st = Rep.block_state t ~data_off in
        if Rep.state_is_allocated st && Rep.state_is_published st then
          Heap.free_idempotent t ~data_off
      | Free_rec _ -> ())
    (List.rev records);
  finish_lane t

let tx_commit (t : Rep.t) =
  require_tx t;
  t.Rep.tx_depth <- t.Rep.tx_depth - 1;
  if t.Rep.tx_depth = 0 then commit_outer t

let tx_abort (t : Rep.t) =
  require_tx t;
  t.Rep.tx_depth <- 0;
  rollback t

(* Crash recovery entry point, called on pool open after redo recovery. *)

let recover (t : Rep.t) =
  let state = Rep.load t Rep.off_tx_state in
  if state = Rep.tx_active then begin
    rollback t;
    `Rolled_back
  end
  else if state = Rep.tx_committing then begin
    apply_deferred_frees t (parse_log t);
    finish_lane t;
    `Completed_commit
  end
  else `Clean
