(** Systematic crash-point torture harness (paper §IV-F, §VI-E).

    The pmreorder explorer samples crash {e states}; this harness
    enumerates crash {e points}: it runs a workload once to count its
    durability events (stores, flushes, fences), then replays it once per
    event, killing the power at exactly that event, reopening the pool
    through {!Spp_pmdk.Pool.open_dev}, running recovery, and asking a
    workload-supplied oracle whether the recovered state honours the
    workload's acknowledgement contract — every acknowledged operation
    durable, every unacknowledged one invisible or rolled back.

    Media faults compose on top: {e torn} crashes let a seeded subset of
    the unfenced stores reach the media first (cache-eviction
    reordering), and {e bit flips} scramble seeded durable bits before
    the reopen, exercising the typed corruption-rejection path. *)

open Spp_pmdk

exception Crashed of int
(** Raised by the harness's injector at the chosen durability event. *)

(** {1 Workloads} *)

type instance = {
  access : Spp_access.t;
    (** Fresh machine holding the pool under torture. *)
  mutate : ack:(unit -> unit) -> unit;
    (** The phase under torture. Must call [ack ()] after each operation
        whose durability the workload guarantees to its caller. *)
  check : pool:Pool.t -> acked:int -> (unit, string) result;
    (** Invariant oracle, run on the recovered reopened pool. [acked] is
        the number of [ack] calls observed before the power failed. *)
}

type workload = {
  w_name : string;
  w_make : unit -> instance;
    (** Build a fresh, deterministic instance; called once per replay.
        Setup runs untracked — only [mutate]'s events are crash points. *)
}

(** {1 Fault plans} *)

type fault_plan = {
  torn : bool;
    (** At each crash, a seeded subset of the unfenced pending stores
        reaches the media in program order (torn/reordered writes). *)
  bitflips : int;
    (** Seeded random bit flips applied to the durable image after the
        crash, before the reopen (media rot). With flips active, a typed
        rejection from [Pool.open_dev] counts as graceful degradation,
        not a failure. *)
}

val no_faults : fault_plan

(** {1 Running} *)

type report = {
  r_workload : string;
  r_events : int;           (** durability events in one full run *)
  r_crash_points : int;     (** crash points explored (events + clean run) *)
  r_recovered : int;        (** reopens that recovered and passed the oracle *)
  r_rejected : int;         (** reopens refused with a typed [pool_error] *)
  r_invariant_failures : int;
  r_first_failure : (int * string) option;
    (** Crash-point index and description of the first failure — replay
        it with the same seed to reproduce. *)
}

val pp_report : Format.formatter -> report -> unit

val run : ?budget:int -> ?seed:int -> ?faults:fault_plan -> workload -> report
(** Enumerate the workload's crash points. When the event count exceeds
    [budget] (default: unbounded), points are sampled at a uniform
    stride, always including the first and last. [seed] (default 0)
    drives torn-subset choice and bit-flip placement; identical
    [(workload, budget, seed, faults)] reproduce identical runs. The
    oracle is called under a catch-all: an exception escaping recovery
    or the check is an invariant failure, never a harness crash. *)
