(* Systematic crash-point torture harness.

   Replay discipline: [w_make] rebuilds the instance from scratch for
   every crash point, so replay [i] is bit-identical to replay [j] up to
   the crash — determinism comes from re-execution, not snapshots. The
   injector counts durability events and, at the chosen one, powers the
   device off before raising [Crashed]: the dying process's unwind
   handlers (transaction aborts, Fun.protect finalizers) still run but
   none of their stores reach the media, exactly like a real power cut.

   The reopen happens in a fresh Space (a fresh "process"): recovery must
   work from the durable image alone, with no help from the volatile
   mirrors of the crashed run. *)

open Spp_sim
open Spp_pmdk

exception Crashed of int

type instance = {
  access : Spp_access.t;
  mutate : ack:(unit -> unit) -> unit;
  check : pool:Pool.t -> acked:int -> (unit, string) result;
}

type workload = {
  w_name : string;
  w_make : unit -> instance;
}

type fault_plan = {
  torn : bool;
  bitflips : int;
}

let no_faults = { torn = false; bitflips = 0 }

type report = {
  r_workload : string;
  r_events : int;
  r_crash_points : int;
  r_recovered : int;
  r_rejected : int;
  r_invariant_failures : int;
  r_first_failure : (int * string) option;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d events, %d crash points explored, %d recoveries verified, \
     %d corrupt images rejected, %d invariant failures%s"
    r.r_workload r.r_events r.r_crash_points r.r_recovered r.r_rejected
    r.r_invariant_failures
    (match r.r_first_failure with
     | None -> ""
     | Some (i, msg) ->
       Printf.sprintf "\n  first failure at crash point %d: %s" i msg)

(* Count the durability events of one full, uninterrupted run. *)

let count_events w =
  let inst = w.w_make () in
  let dev = Pool.dev inst.access.Spp_access.pool in
  Memdev.set_tracking dev true;
  (* Device counters bump at exactly the injector's hook sites (same
     powered-off guard), so their delta equals the event count without
     paying a closure call per event. *)
  let open Memdev in
  let before = counters dev in
  inst.mutate ~ack:(fun () -> ());
  let after = counters dev in
  (after.stores - before.stores)
  + (after.flushes - before.flushes)
  + (after.fences - before.fences)

(* Pick the crash-point indices: all of [1..events] if they fit the
   budget, else a uniform stride keeping the first and last. Index
   [events + 1] is always included — the clean run whose crash happens
   after the workload finished (quiescent shutdown). *)

let crash_indices ~events ~budget =
  let clean = events + 1 in
  if budget <= 0 then [ clean ]
  else if events + 1 <= budget then List.init (events + 1) (fun i -> i + 1)
  else begin
    let n = budget - 1 in   (* reserve one slot for the clean run *)
    let picks =
      List.init n (fun k ->
        (* spread 1..events across n samples, endpoints included *)
        if n = 1 then 1
        else 1 + (k * (events - 1) / (n - 1)))
    in
    List.sort_uniq compare (picks @ [ clean ])
  end

(* One replay, crashing at durability event [idx] (1-based; an index past
   the last event degenerates to a clean post-workload crash). *)

type verdict =
  | Recovered
  | Rejected of string
  | Invariant_failure of string

let explore_point ~rng ~faults w idx =
  let inst = w.w_make () in
  let pool = inst.access.Spp_access.pool in
  let dev = Pool.dev pool in
  let base = Pool.base pool in
  Memdev.set_tracking dev true;
  let acked = ref 0 in
  let count = ref 0 in
  Memdev.set_injector dev
    (Some
       (fun _ev ->
         incr count;
         if !count = idx then begin
           Memdev.power_off dev;
           raise (Crashed idx)
         end));
  (match inst.mutate ~ack:(fun () -> incr acked) with
   | () -> ()                      (* clean run: crash after completion *)
   | exception Crashed _ -> ());
  Memdev.set_injector dev None;
  (* Power failure. Torn mode lets a seeded subset of the unfenced
     pending stores reach the media first, in program order. *)
  if faults.torn then begin
    let sel =
      List.filter (fun _ -> Random.State.bool rng) (Memdev.pending_stores dev)
    in
    Memdev.crash_applying dev sel
  end
  else Memdev.crash dev;
  (* Media rot between the crash and the restart. *)
  for _ = 1 to faults.bitflips do
    Memdev.corrupt_durable dev
      ~off:(Random.State.int rng (Memdev.size dev))
      ~bit:(Random.State.int rng 8)
  done;
  Memdev.set_tracking dev false;
  (* Restart: reopen in a fresh space, run recovery, ask the oracle. *)
  let space' = Space.create () in
  match Pool.open_dev space' ~base dev with
  | Error e -> Rejected (Pool.pool_error_to_string e)
  | Ok (pool', (_ : Pool.recovery_report)) ->
    (match inst.check ~pool:pool' ~acked:!acked with
     | Ok () -> Recovered
     | Error msg -> Invariant_failure msg
     | exception e ->
       Invariant_failure ("oracle raised: " ^ Printexc.to_string e))
  | exception e ->
    (* open_dev promises not to leak exceptions; if one escapes anyway,
       that is itself a finding. *)
    Invariant_failure ("open_dev raised: " ^ Printexc.to_string e)

let run ?(budget = max_int) ?(seed = 0) ?(faults = no_faults) w =
  let events = count_events w in
  let indices = crash_indices ~events ~budget in
  let rng = Random.State.make [| seed; Hashtbl.hash w.w_name; events |] in
  let recovered = ref 0 and rejected = ref 0 and failures = ref 0 in
  let first_failure = ref None in
  List.iter
    (fun idx ->
      match explore_point ~rng ~faults w idx with
      | Recovered -> incr recovered
      | Rejected msg ->
        if faults.bitflips > 0 then incr rejected
        else begin
          (* with no media rot, a clean-crash image must always open *)
          incr failures;
          if !first_failure = None then
            first_failure := Some (idx, "rejected clean image: " ^ msg)
        end
      | Invariant_failure msg ->
        incr failures;
        if !first_failure = None then first_failure := Some (idx, msg))
    indices;
  {
    r_workload = w.w_name;
    r_events = events;
    r_crash_points = List.length indices;
    r_recovered = !recovered;
    r_rejected = !rejected;
    r_invariant_failures = !failures;
    r_first_failure = !first_failure;
  }
