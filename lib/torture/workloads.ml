(* Workload adapters for the torture harness.

   Each adapter builds a fresh pool per replay, does its setup untracked
   (setup stores are not crash points), then exposes the tortured phase
   plus an oracle that re-attaches to the recovered pool through the
   durable handles it parked in the root object. *)

open Spp_pmdk

let kv_key i = Printf.sprintf "key-%03d" i
let kv_value i = Printf.sprintf "value-%05d" i

(* pmemlog records are fixed 16 bytes so the committed watermark encodes
   the record count: 7-digit index + 9-byte filler. *)
let log_record i = Printf.sprintf "%07d-record!!" i

let check_all checks =
  List.fold_left
    (fun acc (ok, msg) ->
      match acc with
      | Error _ -> acc
      | Ok () -> if ok then Ok () else Error msg)
    (Ok ()) checks

(* pmemkv cmap: transactional puts into a persistent hashmap. The bucket
   array's oid is parked in the root object; the oracle re-attaches and
   requires every acked key readable and every later key absent or fully
   written (the in-flight put either committed or rolled back). *)
let kvstore ?(variant = Spp_access.Spp) ?(ops = 24) () =
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 17) ~name:"torture-kv" variant
    in
    let pool = a.Spp_access.pool in
    let map = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
    let root = a.Spp_access.root a.Spp_access.oid_size in
    Pool.store_oid pool ~off:root.Oid.off (Spp_pmemkv.Cmap.buckets_oid map);
    Pool.persist pool ~off:root.Oid.off ~len:a.Spp_access.oid_size;
    Spp_pmemkv.Cmap.put map ~key:"baseline" ~value:"present";
    let mutate ~ack =
      for i = 1 to ops do
        Spp_pmemkv.Cmap.put map ~key:(kv_key i) ~value:(kv_value i);
        ack ()
      done
    in
    let check ~pool:pool' ~acked =
      let a' = Spp_access.attach (Pool.space pool') pool' in
      let root' = Pool.root_oid pool' in
      let buckets = Pool.load_oid pool' ~off:root'.Oid.off in
      let map' = Spp_pmemkv.Cmap.attach a' ~buckets in
      let checks = ref [] in
      let add ok msg = checks := (ok, msg) :: !checks in
      add
        (Spp_pmemkv.Cmap.get map' "baseline" = Some "present")
        "baseline key lost";
      for i = 1 to acked do
        add
          (Spp_pmemkv.Cmap.get map' (kv_key i) = Some (kv_value i))
          (Printf.sprintf "acked put %d not durable" i)
      done;
      for i = acked + 1 to ops do
        match Spp_pmemkv.Cmap.get map' (kv_key i) with
        | None -> ()
        | Some v ->
          add (v = kv_value i)
            (Printf.sprintf "unacked put %d visible but torn" i)
      done;
      check_all (List.rev !checks)
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = "kvstore"; w_make }

(* pmemlog: fixed-size appends. The descriptor and data oids are parked
   in the root object side by side; the oracle requires the committed
   watermark to sit on a record boundary at or past the acked count, with
   every committed record byte-exact. *)
let pmemlog ?(variant = Spp_access.Spp) ?(ops = 24) () =
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 17) ~name:"torture-log" variant
    in
    let pool = a.Spp_access.pool in
    let log = Spp_pmemlog.create a ~capacity:((ops * 16) + 64) in
    let osz = a.Spp_access.oid_size in
    let root = a.Spp_access.root (2 * osz) in
    Pool.store_oid pool ~off:root.Oid.off (Spp_pmemlog.descriptor log);
    Pool.store_oid pool ~off:(root.Oid.off + osz) (Spp_pmemlog.data_oid log);
    Pool.persist pool ~off:root.Oid.off ~len:(2 * osz);
    let mutate ~ack =
      for i = 1 to ops do
        Spp_pmemlog.append log (log_record i);
        ack ()
      done
    in
    let check ~pool:pool' ~acked =
      let a' = Spp_access.attach (Pool.space pool') pool' in
      let osz' = Pool.oid_stored_size pool' in
      let root' = Pool.root_oid pool' in
      let desc = Pool.load_oid pool' ~off:root'.Oid.off in
      let data = Pool.load_oid pool' ~off:(root'.Oid.off + osz') in
      let log' = Spp_pmemlog.attach a' ~desc ~data in
      let n = Spp_pmemlog.committed log' in
      if n mod 16 <> 0 then
        Error (Printf.sprintf "watermark %d not on a record boundary" n)
      else begin
        let k = n / 16 in
        if k < acked then
          Error (Printf.sprintf "%d records committed < %d acked" k acked)
        else if k > ops then
          Error (Printf.sprintf "%d records committed > %d appended" k ops)
        else begin
          let contents = Spp_pmemlog.read_all log' in
          let bad = ref None in
          for i = 1 to k do
            if !bad = None && String.sub contents ((i - 1) * 16) 16
                              <> log_record i
            then bad := Some i
          done;
          match !bad with
          | None -> Ok ()
          | Some i -> Error (Printf.sprintf "committed record %d torn" i)
        end
      end
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = "pmemlog"; w_make }

(* Transactional counter: two root words updated together inside one
   transaction per op. The oracle requires them equal (atomicity) and
   within [acked, ops] (no lost acked update, no invented one). *)
let counter ?(variant = Spp_access.Spp) ?(ops = 24) () =
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 16) ~name:"torture-ctr" variant
    in
    let pool = a.Spp_access.pool in
    let root = a.Spp_access.root 16 in
    let mutate ~ack =
      for i = 1 to ops do
        Pool.with_tx pool (fun () ->
          Pool.tx_add_range pool ~off:root.Oid.off ~len:16;
          Pool.store_word pool ~off:root.Oid.off i;
          Pool.store_word pool ~off:(root.Oid.off + 8) i);
        ack ()
      done
    in
    let check ~pool:pool' ~acked =
      let root' = Pool.root_oid pool' in
      let c1 = Pool.load_word pool' ~off:root'.Oid.off in
      let c2 = Pool.load_word pool' ~off:(root'.Oid.off + 8) in
      if c1 <> c2 then
        Error (Printf.sprintf "counter halves diverged: %d vs %d" c1 c2)
      else if c1 < acked then
        Error (Printf.sprintf "counter %d < %d acked" c1 acked)
      else if c1 > ops then
        Error (Printf.sprintf "counter %d > %d ops" c1 ops)
      else Ok ()
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = "counter"; w_make }

(* Group-committed multi-put (Cmap.run_batch): [ops] puts executed as
   two batches of roughly half each, acking a batch's ops only after its
   run_batch call returns — the serve pipeline's promise semantics. The
   final op of the second batch *updates* a key written by the first op,
   so the oracle also proves no reordering across ops: the update is
   durable only in the all-ops-committed state.

   Oracle: the durable keys must form a *prefix* of the batch program —
   some k with keys 1..k present and byte-exact, keys k+1..ops-1 absent,
   and key 1 carrying its updated value exactly when k = ops. A torn op,
   a hole, or an out-of-order commit all break the prefix shape.

   The tortured phase runs with a DRAM read cache attached, so crash
   points interleave with its stage-time invalidations and post-commit
   fills — which must add zero durability events. The oracle then also
   proves the cache cannot leak across a crash: the reattached map
   starts cold, and with a fresh cache attached every key is read twice
   (cold fill, then warm hit) with both reads byte-equal — so no value
   that was only staged in an uncommitted batch can ever be served,
   from PM or from cache. *)
let kvbatch ?(variant = Spp_access.Spp) ?(ops = 12) () =
  let ops = max 3 ops in
  let updated_value = "value-redux" in
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 17) ~name:"torture-kvbatch" variant
    in
    let pool = a.Spp_access.pool in
    let map = Spp_pmemkv.Cmap.create ~nbuckets:16 a in
    Spp_pmemkv.Cmap.set_cache map (Some (Spp_pmemkv.Rcache.create ~cap:64));
    let root = a.Spp_access.root a.Spp_access.oid_size in
    Pool.store_oid pool ~off:root.Oid.off (Spp_pmemkv.Cmap.buckets_oid map);
    Pool.persist pool ~off:root.Oid.off ~len:a.Spp_access.oid_size;
    let op_of i =
      (* ops 1..ops-1 put fresh keys; op [ops] updates key 1 *)
      if i < ops then
        Spp_pmemkv.Cmap.B_put { key = kv_key i; value = kv_value i }
      else Spp_pmemkv.Cmap.B_put { key = kv_key 1; value = updated_value }
    in
    let mutate ~ack =
      let half = ops / 2 in
      let batch lo hi =
        ignore
          (Spp_pmemkv.Cmap.run_batch map
             (Array.init (hi - lo + 1) (fun j -> op_of (lo + j))));
        for _ = lo to hi do ack () done
      in
      batch 1 half;
      batch (half + 1) ops
    in
    let check ~pool:pool' ~acked =
      let a' = Spp_access.attach (Pool.space pool') pool' in
      let root' = Pool.root_oid pool' in
      let buckets = Pool.load_oid pool' ~off:root'.Oid.off in
      let map' = Spp_pmemkv.Cmap.attach a' ~buckets in
      let err = ref None in
      let fail msg = if !err = None then err := Some msg in
      (* The cache is volatile: reopen must start cold, with no channel
         by which the pre-crash cache could survive the power cycle. *)
      if Spp_pmemkv.Cmap.cache map' <> None then
        fail "reattached map did not start with a cold cache";
      (* Run the oracle itself through a fresh cache: the first read of
         each key fills from the recovered durable state, the second
         must hit warm and agree byte-for-byte — any divergence means
         the cache served something the durable image does not hold
         (e.g. a value only staged in the interrupted batch). *)
      Spp_pmemkv.Cmap.set_cache map'
        (Some (Spp_pmemkv.Rcache.create ~cap:64));
      let get2 key =
        let cold = Spp_pmemkv.Cmap.get map' key in
        let warm = Spp_pmemkv.Cmap.get map' key in
        if cold <> warm then
          fail
            (Printf.sprintf "cache diverged from durable state on %S" key);
        cold
      in
      let v1 = get2 (kv_key 1) in
      (* committed prefix length over ops 2..ops-1 (distinct keys) *)
      let k = ref (if v1 = None then 0 else 1) in
      for i = 2 to ops - 1 do
        match get2 (kv_key i) with
        | Some v ->
          if v <> kv_value i then
            fail (Printf.sprintf "op %d torn: %S" i v)
          else if !k <> i - 1 then
            fail (Printf.sprintf "op %d durable before op %d (hole)" i !k)
          else incr k
        | None -> ()
      done;
      (* disambiguate the final update through key 1's value *)
      (match v1 with
       | None -> if !k > 0 then fail "op 1 missing below a durable prefix"
       | Some v ->
         if v = updated_value then begin
           if !k <> ops - 1 then
             fail
               (Printf.sprintf
                  "final update durable but prefix stops at op %d" !k)
           else k := ops
         end
         else if v <> kv_value 1 then
           fail (Printf.sprintf "op 1 torn: %S" v));
      if !err = None && !k < acked then
        fail (Printf.sprintf "prefix %d < %d acked" !k acked);
      (* Explicit staged-visibility pass: every op beyond the committed
         prefix was at most *staged* in the interrupted batch, and its
         key must answer None on both the cold and warm read. *)
      if !err = None then
        for i = max 2 (!k + 1) to ops - 1 do
          match get2 (kv_key i) with
          | None -> ()
          | Some v ->
            fail
              (Printf.sprintf
                 "uncommitted op %d visible after crash: %S" i v)
        done;
      match !err with None -> Ok () | Some msg -> Error msg
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = "kvbatch"; w_make }

(* Failover: the kvbatch program (group-committed puts, final op updates
   op 1's key) replicated through an inline [Replica] group while the
   primary is tortured. At every crash point the oracle promotes the
   replica and compares it against cold recovery of the primary's image
   — the promotion-equivalence differential:

     - both serve a valid whole-op prefix of the program (byte-exact
       values, no hole, no reordering);
     - the replica's prefix k_r never exceeds the primary's k_p
       (payloads ship strictly after commit durability, so a replica
       can lag but never lead — the two-generals side the protocol
       actually guarantees);
     - on a lossless channel the lag is bounded by one commit: the only
       shippable-but-unshipped window is between a commit's durability
       fence and its observer call, which at most one commit occupies;
     - with the channel lossless and the policy sync, every acked op is
       on the replica (acked <= k_r): inline replication applies before
       [run_batch] returns, and acks happen after.

   The drop variant runs the same program over a lossy channel with a
   small retry budget: once a send exhausts its retries the replica is
   dead and stops receiving, so the lag bound and the acked clause no
   longer hold — but the prefix shape and k_r <= k_p must survive
   arbitrary loss. *)
let kvfailover ?(variant = Spp_access.Spp) ?(ops = 12) ?(drop_rate = 0.)
    ?(send_retries = 4) ?(engine = Spp_pmemkv.Engines.cmap)
    ?(name = "kvfailover") () =
  let ops = max 3 ops in
  let half = ops / 2 in
  let updated_value = "value-redux" in
  (* valid whole-op prefix length of the program, or the shape violation;
     [get] abstracts over which side (recovered primary / promoted
     replica) and which engine is being scanned *)
  let scan_prefix get =
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    let v1 = get (kv_key 1) in
    let k = ref (if v1 = None then 0 else 1) in
    for i = 2 to ops - 1 do
      match get (kv_key i) with
      | Some v ->
        if v <> kv_value i then fail (Printf.sprintf "op %d torn: %S" i v)
        else if !k <> i - 1 then
          fail (Printf.sprintf "op %d durable before op %d (hole)" i !k)
        else incr k
      | None -> ()
    done;
    (match v1 with
     | None -> if !k > 0 then fail "op 1 missing below a durable prefix"
     | Some v ->
       if v = updated_value then begin
         if !k <> ops - 1 then
           fail
             (Printf.sprintf
                "final update durable but prefix stops at op %d" !k)
         else k := ops
       end
       else if v <> kv_value 1 then fail (Printf.sprintf "op 1 torn: %S" v));
    match !err with None -> Ok !k | Some msg -> Error msg
  in
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 17) ~name:"torture-kvfo" variant
    in
    let pool = a.Spp_access.pool in
    let map = Spp_pmemkv.Engine.create ~nbuckets:16 engine a in
    let root = a.Spp_access.root a.Spp_access.oid_size in
    Pool.store_oid pool ~off:root.Oid.off (Spp_pmemkv.Engine.root_oid map);
    Pool.persist pool ~off:root.Oid.off ~len:a.Spp_access.oid_size;
    (* Inline, lossless-or-not single replica: apply happens on the
       committing domain (deterministic — replica-device writes fire no
       primary injector events, so crash-point counting is unchanged),
       and the replica image snapshots the quiesced post-setup state. *)
    let g =
      Spp_shard.Replica.create
        ~cfg:
          { Spp_shard.Replica.default_config with
            replicas = 1; policy = Spp_shard.Replica.Sync;
            threaded = false; send_retries; drop_rate;
            seed = 0x4f56 }
        ~engine ~shard:0 pool
    in
    let lossless = drop_rate = 0. in
    let op_of i =
      if i < ops then
        Spp_pmemkv.Engine.B_put { key = kv_key i; value = kv_value i }
      else Spp_pmemkv.Engine.B_put { key = kv_key 1; value = updated_value }
    in
    let mutate ~ack =
      let batch lo hi =
        ignore
          (Spp_pmemkv.Engine.run_batch map
             (Array.init (hi - lo + 1) (fun j -> op_of (lo + j))));
        (* sync-policy gate before the acks; immediate in inline mode *)
        Spp_shard.Replica.wait_acks g;
        for _ = lo to hi do ack () done
      in
      batch 1 half;
      batch (half + 1) ops
    in
    let check ~pool:pool' ~acked =
      (* Side A: cold recovery of the primary's crashed image. *)
      let a' = Spp_access.attach (Pool.space pool') pool' in
      let root' = Pool.root_oid pool' in
      let map_root = Pool.load_oid pool' ~off:root'.Oid.off in
      let map' = Spp_pmemkv.Engine.attach engine a' ~root:map_root in
      match scan_prefix (Spp_pmemkv.Engine.get map') with
      | Error msg -> Error ("primary: " ^ msg)
      | Ok k_p ->
        (* Side B: promote the replica — seal, cold-reopen its image. *)
        let p = Spp_shard.Replica.promote g in
        (match
           scan_prefix (Spp_pmemkv.Engine.get p.Spp_shard.Replica.pr_kv)
         with
         | Error msg -> Error ("promoted replica: " ^ msg)
         | Ok k_r ->
           if Spp_pmemkv.Engine.cache p.Spp_shard.Replica.pr_kv <> None then
             Error "promoted replica did not start with a cold cache"
           else if k_r > k_p then
             Error
               (Printf.sprintf
                  "replica leads recovery: replica %d > primary %d ops"
                  k_r k_p)
           else if lossless && k_p - k_r > max half (ops - half) then
             Error
               (Printf.sprintf
                  "lossless lag %d ops exceeds one commit (replica %d, \
                   primary %d)"
                  (k_p - k_r) k_r k_p)
           else if lossless && acked > k_r then
             Error
               (Printf.sprintf
                  "acked op lost on failover: %d acked > %d replicated"
                  acked k_r)
           else Ok ())
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = name; w_make }

let kvfailover_drop ?variant ?ops () =
  kvfailover ?variant ?ops ~drop_rate:0.25 ~send_retries:2
    ~name:"kvfailover-drop" ()

(* Ordered-scan torture: a deterministic interleaving of puts, removes
   and range scans, group-committed as two batches over a pluggable
   engine. The program is simulated up front in DRAM, snapshotting the
   expected sorted contents after every whole-op prefix; the oracle
   re-attaches the recovered image through the engine seam, runs a
   full-range scan, and requires the result to be strictly ascending
   AND byte-equal to the model snapshot of some whole-op prefix at or
   past the acked count. A torn op, a hole, a resurrected removed key,
   or an unordered/duplicated scan all fail the snapshot match. In-run
   scan replies are additionally checked for strict ordering before
   their ops are acked. *)
let kvscan ?(variant = Spp_access.Spp) ?(ops = 12)
    ?(engine = Spp_pmemkv.Engines.cmap) ?(name = "kvscan") () =
  let ops = max 6 ops in
  let module E = Spp_pmemkv.Engine in
  let full_lo = kv_key 0 and full_hi = kv_key 999 in
  let op_of i =
    (* every third op (from 6) removes the key put two ops earlier;
       every fifth is a full-range scan; the rest are fresh puts *)
    if i mod 3 = 0 && i >= 6 then E.B_remove (kv_key (i - 2))
    else if i mod 5 = 0 then E.B_scan { lo = full_lo; hi = full_hi; limit = ops + 1 }
    else E.B_put { key = kv_key i; value = kv_value i }
  in
  (* DRAM model: expected sorted contents after each whole-op prefix *)
  let module M = Map.Make (String) in
  let models = Array.make (ops + 1) [] in
  let () =
    let m = ref M.empty in
    for i = 1 to ops do
      (match op_of i with
       | E.B_put { key; value } -> m := M.add key value !m
       | E.B_remove key -> m := M.remove key !m
       | E.B_get _ | E.B_scan _ -> ());
      models.(i) <- M.bindings !m
    done
  in
  let rec ascending = function
    | (k1, _) :: ((k2, _) :: _ as tl) ->
      String.compare k1 k2 < 0 && ascending tl
    | _ -> true
  in
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 17) ~name:"torture-kvscan" variant
    in
    let pool = a.Spp_access.pool in
    let kv = E.create ~nbuckets:16 engine a in
    let root = a.Spp_access.root a.Spp_access.oid_size in
    Pool.store_oid pool ~off:root.Oid.off (E.root_oid kv);
    Pool.persist pool ~off:root.Oid.off ~len:a.Spp_access.oid_size;
    let mutate ~ack =
      let half = ops / 2 in
      let batch lo hi =
        let replies =
          E.run_batch kv (Array.init (hi - lo + 1) (fun j -> op_of (lo + j)))
        in
        Array.iter
          (function
            | E.R_scan kvs ->
              if not (ascending kvs) then
                failwith "in-batch scan reply not strictly ascending"
            | _ -> ())
          replies;
        for _ = lo to hi do ack () done
      in
      batch 1 half;
      batch (half + 1) ops
    in
    let check ~pool:pool' ~acked =
      let a' = Spp_access.attach (Pool.space pool') pool' in
      let root' = Pool.root_oid pool' in
      let map_root = Pool.load_oid pool' ~off:root'.Oid.off in
      let kv' = E.attach engine a' ~root:map_root in
      let got = E.scan kv' ~lo:full_lo ~hi:full_hi ~limit:(ops + 1) in
      if not (ascending got) then
        Error "recovered scan not strictly ascending"
      else begin
        (* scans and no-op prefixes can share a snapshot, so accept any
           matching prefix — but one at or past acked must exist *)
        let matches k = models.(k) = got in
        let rec exists_in lo hi =
          lo <= hi && (matches lo || exists_in (lo + 1) hi)
        in
        if exists_in acked ops then Ok ()
        else if exists_in 0 (acked - 1) then
          Error
            (Printf.sprintf
               "recovered scan is a pre-ack snapshot (acked %d)" acked)
        else Error "recovered scan matches no whole-op prefix"
      end
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = name; w_make }

let kvscan_btree ?variant ?ops () =
  kvscan ?variant ?ops ~engine:Spp_pmemkv.Engines.btree ~name:"kvscan-btree" ()

(* Mid-migration crash torture: the serve layer's slot-migration
   durability protocol (copy -> durable claim flip -> delete) compressed
   onto one device, which is what the harness tortures. One pool hosts
   two engine instances — the "source" and "target" shards of one
   migrating slot — plus a one-word claim: 0 = the source owns the
   slot, 1 = the target does. Untracked setup preloads the keys into
   the source; the even-indexed ones form the migrating slot, the odd
   ones are bystanders that never move. The tortured program then
   replays a migration: group-committed copy batches of the migrating
   keys into the target, one transactional claim flip, group-committed
   remove batches on the source. The oracle reattaches both maps from
   their parked roots and requires every key served exactly once by the
   owner the durable claim names: bystanders always on the source with
   exact values; claim 0 -> the source still holds every migrating key
   (a partial copy on the target is unreachable garbage, not service);
   claim 1 -> the target holds every migrating key (the flip
   transaction began only after every copy batch committed) and the
   source's leftovers form a whole-op prefix of the deletes — no key
   may ever be in neither map, and post-claim the source may only
   shrink toward empty in delete order. Acks cross-check the claim: an
   ack count past the copy batches forces claim 1, and a fully acked
   run forces a clean source. *)
let kvreshard ?(variant = Spp_access.Spp) ?(ops = 12)
    ?(engine = Spp_pmemkv.Engines.cmap) ?(name = "kvreshard") () =
  let nkeys = max 6 ops in
  let module E = Spp_pmemkv.Engine in
  let migrating = List.filter (fun i -> i mod 2 = 0) (List.init nkeys Fun.id) in
  let bystanders = List.filter (fun i -> i mod 2 = 1) (List.init nkeys Fun.id) in
  let chunk_size = 4 in
  let rec chunks = function
    | [] -> []
    | l ->
      let rec split n acc = function
        | x :: tl when n > 0 -> split (n - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let (c, rest) = split chunk_size [] l in
      c :: chunks rest
  in
  let copy_batches = chunks migrating in
  let ncopy = List.length copy_batches in
  let total_steps = ncopy + 1 + ncopy in   (* copies, claim, deletes *)
  let w_make () =
    let a =
      Spp_access.create ~pool_size:(1 lsl 18) ~name:"torture-kvreshard"
        variant
    in
    let pool = a.Spp_access.pool in
    let src = E.create ~nbuckets:16 engine a in
    let dst = E.create ~nbuckets:16 engine a in
    let osz = a.Spp_access.oid_size in
    let root = a.Spp_access.root ((2 * osz) + 8) in
    let claim_off = root.Oid.off + (2 * osz) in
    Pool.store_oid pool ~off:root.Oid.off (E.root_oid src);
    Pool.store_oid pool ~off:(root.Oid.off + osz) (E.root_oid dst);
    Pool.store_word pool ~off:claim_off 0;
    Pool.persist pool ~off:root.Oid.off ~len:((2 * osz) + 8);
    (* untracked preload: the pre-migration world *)
    List.iter
      (fun i -> E.put src ~key:(kv_key i) ~value:(kv_value i))
      (migrating @ bystanders);
    let mutate ~ack =
      List.iter
        (fun batch ->
          ignore
            (E.run_batch dst
               (Array.of_list
                  (List.map
                     (fun i ->
                       E.B_put { key = kv_key i; value = kv_value i })
                     batch)));
          ack ())
        copy_batches;
      Pool.with_tx pool (fun () ->
        Pool.tx_add_range pool ~off:claim_off ~len:8;
        Pool.store_word pool ~off:claim_off 1);
      ack ();
      List.iter
        (fun batch ->
          ignore
            (E.run_batch src
               (Array.of_list
                  (List.map (fun i -> E.B_remove (kv_key i)) batch)));
          ack ())
        copy_batches
    in
    let check ~pool:pool' ~acked =
      let a' = Spp_access.attach (Pool.space pool') pool' in
      let root' = Pool.root_oid pool' in
      let src' = E.attach engine a' ~root:(Pool.load_oid pool' ~off:root'.Oid.off) in
      let dst' =
        E.attach engine a' ~root:(Pool.load_oid pool' ~off:(root'.Oid.off + osz))
      in
      let claim = Pool.load_word pool' ~off:(root'.Oid.off + (2 * osz)) in
      let checks = ref [] in
      let add ok msg = checks := (ok, msg) :: !checks in
      add (claim = 0 || claim = 1)
        (Printf.sprintf "claim word is 0 or 1 (got %d)" claim);
      (* acks never run ahead of durability *)
      add (not (acked > ncopy) || claim = 1)
        (Printf.sprintf "acked %d past the copies but claim is %d" acked claim);
      (* bystanders: always served by the source, exact bytes *)
      List.iter
        (fun i ->
          add (E.get src' (kv_key i) = Some (kv_value i))
            (Printf.sprintf "bystander %s intact on source" (kv_key i)))
        bystanders;
      let owner = if claim = 1 then dst' else src' in
      let owner_name = if claim = 1 then "target" else "source" in
      (* exactly-once: whoever the claim names serves every migrating
         key — never neither *)
      List.iter
        (fun i ->
          add (E.get owner (kv_key i) = Some (kv_value i))
            (Printf.sprintf "migrating %s served by %s" (kv_key i) owner_name))
        migrating;
      if claim = 1 then begin
        (* the source may only shrink in delete order, whole ops at a
           time: present keys must be exactly a suffix of the program *)
        let present =
          List.map (fun i -> E.get src' (kv_key i) <> None) migrating
        in
        let rec is_prefix_of_deletes seen_present = function
          | [] -> true
          | p :: tl ->
            if p then is_prefix_of_deletes true tl
            else (not seen_present) && is_prefix_of_deletes false tl
        in
        add (is_prefix_of_deletes false present)
          "source leftovers form a whole-op prefix of the deletes";
        add (not (acked >= total_steps)
             || List.for_all (fun p -> not p) present)
          "fully acked migration left keys on the source"
      end;
      check_all (List.rev !checks)
    in
    { Torture.access = a; mutate; check }
  in
  { Torture.w_name = name; w_make }

let kvreshard_btree ?variant ?ops () =
  kvreshard ?variant ?ops ~engine:Spp_pmemkv.Engines.btree
    ~name:"kvreshard-btree" ()

let all ?variant ?ops ?engine () =
  [ kvstore ?variant ?ops (); pmemlog ?variant ?ops ();
    counter ?variant ?ops (); kvbatch ?variant ?ops ();
    kvfailover ?variant ?ops ?engine (); kvfailover_drop ?variant ?ops ();
    kvscan ?variant ?ops ?engine (); kvscan_btree ?variant ?ops ();
    kvreshard ?variant ?ops ?engine (); kvreshard_btree ?variant ?ops () ]

let by_name ?variant ?ops ?engine = function
  | "kvstore" -> Some (kvstore ?variant ?ops ())
  | "pmemlog" -> Some (pmemlog ?variant ?ops ())
  | "counter" -> Some (counter ?variant ?ops ())
  | "kvbatch" -> Some (kvbatch ?variant ?ops ())
  | "kvfailover" -> Some (kvfailover ?variant ?ops ?engine ())
  | "kvfailover-drop" -> Some (kvfailover_drop ?variant ?ops ())
  | "kvscan" -> Some (kvscan ?variant ?ops ?engine ())
  | "kvscan-btree" -> Some (kvscan_btree ?variant ?ops ())
  | "kvreshard" -> Some (kvreshard ?variant ?ops ?engine ())
  | "kvreshard-btree" -> Some (kvreshard_btree ?variant ?ops ())
  | _ -> None
