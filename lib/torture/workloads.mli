(** Canned workloads for the torture harness.

    Every adapter builds a fresh single-device pool per replay, parks its
    durable handles in the pool root object, and re-attaches through
    those handles in its oracle — the oracle never reuses volatile state
    from before the crash. [variant] picks the access-layer build
    (default {!Spp_access.Spp}); [ops] the number of tortured operations
    (default 24). *)

val kvstore : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Transactional puts into a pmemkv cmap. Oracle: baseline and all
    acked keys readable with exact values; later keys absent or intact. *)

val pmemlog : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Fixed 16-byte appends to a pmemlog. Oracle: committed watermark on a
    record boundary, between acked and appended counts, contents exact. *)

val counter : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Two root words incremented together inside one transaction per op.
    Oracle: halves equal and within [acked, ops]. *)

val kvbatch : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Group-committed multi-put ([Cmap.run_batch], two batches; the final
    op updates the first op's key). Oracle: the durable keys form a
    prefix of whole ops — no torn op, no hole, no reordering across ops
    — and every acked batch is fully durable. *)

val all : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload list

val by_name :
  ?variant:Spp_access.variant -> ?ops:int -> string -> Torture.workload option
(** ["kvstore"], ["pmemlog"], ["counter"] or ["kvbatch"]. *)
