(** Canned workloads for the torture harness.

    Every adapter builds a fresh single-device pool per replay, parks its
    durable handles in the pool root object, and re-attaches through
    those handles in its oracle — the oracle never reuses volatile state
    from before the crash. [variant] picks the access-layer build
    (default {!Spp_access.Spp}); [ops] the number of tortured operations
    (default 24). *)

val kvstore : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Transactional puts into a pmemkv cmap. Oracle: baseline and all
    acked keys readable with exact values; later keys absent or intact. *)

val pmemlog : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Fixed 16-byte appends to a pmemlog. Oracle: committed watermark on a
    record boundary, between acked and appended counts, contents exact. *)

val counter : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Two root words incremented together inside one transaction per op.
    Oracle: halves equal and within [acked, ops]. *)

val kvbatch : ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** Group-committed multi-put ([Cmap.run_batch], two batches; the final
    op updates the first op's key). Oracle: the durable keys form a
    prefix of whole ops — no torn op, no hole, no reordering across ops
    — and every acked batch is fully durable. *)

val kvfailover :
  ?variant:Spp_access.variant -> ?ops:int -> ?drop_rate:float ->
  ?send_retries:int -> ?engine:Spp_pmemkv.Engine.spec -> ?name:string ->
  unit -> Torture.workload
(** The kvbatch program replicated through an inline single-replica
    {!Spp_shard.Replica} group while the primary is tortured. At every
    crash point the oracle promotes the replica and differentials it
    against cold recovery of the primary: both serve a valid whole-op
    prefix, the replica never leads (k_r <= k_p), and — when the channel
    is lossless ([drop_rate = 0], the default) — the lag is bounded by
    one commit and no acked op is missing from the replica. *)

val kvfailover_drop :
  ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** [kvfailover] over a lossy channel (25% drops, 2 attempts): the
    replica may die mid-run, so only the prefix shape and k_r <= k_p are
    required to survive. *)

val kvscan :
  ?variant:Spp_access.variant -> ?ops:int ->
  ?engine:Spp_pmemkv.Engine.spec -> ?name:string -> unit ->
  Torture.workload
(** Interleaved group-committed puts, removes and ordered range scans
    over a pluggable engine (default cmap). Oracle: the recovered
    full-range scan is strictly ascending and byte-equal to the DRAM
    model of some whole-op prefix at or past the acked count — torn
    ops, holes, resurrected removes and unordered scans all break the
    snapshot match. *)

val kvscan_btree :
  ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** [kvscan] over the B-tree engine (registered as ["kvscan-btree"]). *)

val kvreshard :
  ?variant:Spp_access.variant -> ?ops:int ->
  ?engine:Spp_pmemkv.Engine.spec -> ?name:string -> unit ->
  Torture.workload
(** The slot-migration durability protocol (copy, durable claim flip,
    delete) on one device: two engine instances play the source and
    target shards of a migrating slot, a root claim word names the
    owner. The tortured program copies the migrating keys to the target
    in group-committed batches, flips the claim in one transaction, then
    deletes from the source in batches. Oracle: every key served
    exactly once by the claim-named owner — bystanders always on the
    source, migrating keys all on whichever side the durable claim
    names, source leftovers after the flip a whole-op prefix of the
    deletes, and acks never ahead of durability. *)

val kvreshard_btree :
  ?variant:Spp_access.variant -> ?ops:int -> unit -> Torture.workload
(** [kvreshard] over the B-tree engine (registered as
    ["kvreshard-btree"]). *)

val all :
  ?variant:Spp_access.variant -> ?ops:int ->
  ?engine:Spp_pmemkv.Engine.spec -> unit -> Torture.workload list
(** [engine] overrides the KV engine of the engine-polymorphic
    workloads ([kvfailover], [kvscan]); the rest are engine-fixed. *)

val by_name :
  ?variant:Spp_access.variant -> ?ops:int ->
  ?engine:Spp_pmemkv.Engine.spec -> string -> Torture.workload option
(** ["kvstore"], ["pmemlog"], ["counter"], ["kvbatch"], ["kvfailover"],
    ["kvfailover-drop"], ["kvscan"], ["kvscan-btree"], ["kvreshard"] or
    ["kvreshard-btree"]. [engine] as in {!all}. *)
