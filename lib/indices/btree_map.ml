(* btree — order-8 B-tree (PMDK's btree_map example), including a faithful
   reproduction of the upstream buffer-overflow bug the paper detects with
   SPP (§VI-D, pmdk issue #5333): a remove-path memmove that shifts one
   item too many, reading past the end of the node object when the node
   is full.

   Node layout (items deliberately last, so the overflowing memmove
   crosses the object's upper bound):

     [ n | leaf flag | ORDER child oids | (ORDER-1) items ]

   item = [ key | value ]  (16 B)

   Construct with [~buggy:true] to get the vulnerable remove path. *)

open Spp_pmdk
open Map_intf

type t = {
  a : Spp_access.t;
  map_oid : Oid.t;   (* root oid slot *)
  buggy : bool;
}

let name = "btree"

let order = 8                   (* max children *)
let max_items = order - 1
let min_items = (order / 2) - 1

let item_size = 16

let f_n = 0
let f_leaf = 8
let f_children = 16
let items_off (a : Spp_access.t) = 16 + (order * a.Spp_access.oid_size)
let node_size (a : Spp_access.t) = items_off a + (max_items * item_size)

let create ?(buggy = false) a =
  let map_oid =
    with_tx a (fun () ->
      a.Spp_access.tx_palloc ~zero:true (a.Spp_access.oid_size))
  in
  { a; map_oid; buggy }

let attach ?(buggy = false) a ~root =
  if Pool.alloc_size a.Spp_access.pool root < a.Spp_access.oid_size then
    invalid_arg "Btree_map.attach: root slot too small";
  { a; map_oid = root; buggy }

let map_oid t = t.map_oid

let root_slot_ptr t = t.a.Spp_access.direct t.map_oid

let n_of t p = t.a.Spp_access.load_word (t.a.Spp_access.gep p f_n)
let set_n t p n = t.a.Spp_access.store_word (t.a.Spp_access.gep p f_n) n
let is_leaf t p = t.a.Spp_access.load_word (t.a.Spp_access.gep p f_leaf) = 1
let set_leaf t p v =
  t.a.Spp_access.store_word (t.a.Spp_access.gep p f_leaf) (if v then 1 else 0)

let item_ptr t p i = t.a.Spp_access.gep p (items_off t.a + (i * item_size))
let item_key t p i = t.a.Spp_access.load_word (item_ptr t p i)
let item_value t p i =
  t.a.Spp_access.load_word (t.a.Spp_access.gep (item_ptr t p i) 8)

let set_item t p i ~key ~value =
  t.a.Spp_access.store_word (item_ptr t p i) key;
  t.a.Spp_access.store_word (t.a.Spp_access.gep (item_ptr t p i) 8) value

let child_slot t p i =
  t.a.Spp_access.gep p (f_children + (i * t.a.Spp_access.oid_size))

let child t p i = t.a.Spp_access.load_oid_at (child_slot t p i)
let set_child t p i c = t.a.Spp_access.store_oid_at (child_slot t p i) c

let mk_node t ~leaf =
  let oid = t.a.Spp_access.tx_palloc ~zero:true (node_size t.a) in
  let p = t.a.Spp_access.direct oid in
  set_leaf t p leaf;
  oid

let snap_node t oid = tx_add_oid t.a oid

(* Shift items [i..n) one slot right via the interposed memmove (this is
   how the C code does it). *)
let shift_items_right t p i n =
  if n > i then
    t.a.Spp_access.memmove
      ~dst:(item_ptr t p (i + 1)) ~src:(item_ptr t p i)
      ~len:((n - i) * item_size)

(* Shift items left to delete slot i out of n items. The correct count is
   n - i - 1; the buggy variant (pmdk#5333) moves n - i items, reading one
   item past the array — past the node object when the node is full. *)
let shift_items_left t p i n =
  let count = if t.buggy then n - i else n - i - 1 in
  if count > 0 then
    t.a.Spp_access.memmove
      ~dst:(item_ptr t p i) ~src:(item_ptr t p (i + 1))
      ~len:(count * item_size)

let shift_children_right t p i n =
  if n > i then
    t.a.Spp_access.memmove
      ~dst:(child_slot t p (i + 1)) ~src:(child_slot t p i)
      ~len:((n - i) * t.a.Spp_access.oid_size)

let shift_children_left t p i n =
  if n > i then
    t.a.Spp_access.memmove
      ~dst:(child_slot t p i) ~src:(child_slot t p (i + 1))
      ~len:((n - i) * t.a.Spp_access.oid_size)

(* Search within a node: index of the first item with key >= k. *)
let search_node t p k n =
  let rec go i = if i < n && item_key t p i < k then go (i + 1) else i in
  go 0

let get t key =
  let a = t.a in
  let rec go oid =
    if Oid.is_null oid then None
    else begin
      let p = a.Spp_access.direct oid in
      let n = n_of t p in
      let i = search_node t p key n in
      if i < n && item_key t p i = key then Some (item_value t p i)
      else if is_leaf t p then None
      else go (child t p i)
    end
  in
  go (a.Spp_access.load_oid_at (root_slot_ptr t))

(* Split child [ci] of node [pp] (which must have room). *)
let split_child t poid ci =
  let a = t.a in
  let pp = a.Spp_access.direct poid in
  let coid = child t pp ci in
  let cp = a.Spp_access.direct coid in
  snap_node t poid;
  snap_node t coid;
  let right = mk_node t ~leaf:(is_leaf t cp) in
  let rp = a.Spp_access.direct right in
  let mid = max_items / 2 in
  (* move items [mid+1 .. max) of c to right *)
  for i = mid + 1 to max_items - 1 do
    set_item t rp (i - mid - 1)
      ~key:(item_key t cp i) ~value:(item_value t cp i)
  done;
  if not (is_leaf t cp) then
    for i = mid + 1 to order - 1 do
      set_child t rp (i - mid - 1) (child t cp i)
    done;
  set_n t rp (max_items - mid - 1);
  set_n t cp mid;
  (* insert separator into parent *)
  let pn = n_of t pp in
  let sep_key = item_key t cp mid and sep_val = item_value t cp mid in
  let pos = search_node t pp sep_key pn in
  shift_items_right t pp pos pn;
  (* a node with pn items has pn+1 children *)
  shift_children_right t pp (pos + 1) (pn + 1);
  set_item t pp pos ~key:sep_key ~value:sep_val;
  set_child t pp (pos + 1) right;
  set_n t pp (pn + 1)

let rec insert_nonfull t oid ~key ~value =
  let a = t.a in
  let p = a.Spp_access.direct oid in
  let n = n_of t p in
  let i = search_node t p key n in
  if i < n && item_key t p i = key then begin
    snap_node t oid;
    set_item t p i ~key ~value
  end
  else if is_leaf t p then begin
    snap_node t oid;
    shift_items_right t p i n;
    set_item t p i ~key ~value;
    set_n t p (n + 1)
  end
  else begin
    let coid = child t p i in
    let cp = a.Spp_access.direct coid in
    if n_of t cp = max_items then begin
      split_child t oid i;
      (* re-read: the separator moved up *)
      insert_nonfull t oid ~key ~value
    end
    else insert_nonfull t coid ~key ~value
  end

let insert t ~key ~value =
  let a = t.a in
  with_tx a (fun () ->
    let root_ptr = root_slot_ptr t in
    let root = a.Spp_access.load_oid_at root_ptr in
    if Oid.is_null root then begin
      let fresh = mk_node t ~leaf:true in
      let p = a.Spp_access.direct fresh in
      set_item t p 0 ~key ~value;
      set_n t p 1;
      tx_add a root_ptr a.Spp_access.oid_size;
      a.Spp_access.store_oid_at root_ptr fresh
    end
    else begin
      let rp = a.Spp_access.direct root in
      let root =
        if n_of t rp = max_items then begin
          let fresh = mk_node t ~leaf:false in
          let fp = a.Spp_access.direct fresh in
          set_child t fp 0 root;
          tx_add a root_ptr a.Spp_access.oid_size;
          a.Spp_access.store_oid_at root_ptr fresh;
          split_child t fresh 0;
          fresh
        end else root
      in
      insert_nonfull t root ~key ~value
    end)

(* Removal, CLRS B-tree delete. All node mutations snapshot first. *)

let rec max_item t oid =
  let p = t.a.Spp_access.direct oid in
  if is_leaf t p then
    let n = n_of t p in
    (item_key t p (n - 1), item_value t p (n - 1))
  else max_item t (child t p (n_of t p))

let rec min_item t oid =
  let p = t.a.Spp_access.direct oid in
  if is_leaf t p then (item_key t p 0, item_value t p 0)
  else min_item t (child t p 0)

(* Ensure child [ci] of [poid] has more than min_items before descending:
   borrow from a sibling or merge. Returns the oid to descend into. *)
let fix_child t poid ci =
  let a = t.a in
  let pp = a.Spp_access.direct poid in
  let coid = child t pp ci in
  let cp = a.Spp_access.direct coid in
  if n_of t cp > min_items then coid
  else begin
    let pn = n_of t pp in
    let left_sib = if ci > 0 then Some (child t pp (ci - 1)) else None in
    let right_sib = if ci < pn then Some (child t pp (ci + 1)) else None in
    let rich oid_opt =
      match oid_opt with
      | Some s when n_of t (a.Spp_access.direct s) > min_items -> true
      | _ -> false
    in
    if rich left_sib then begin
      (* rotate right: parent separator down, sibling max up *)
      let s = Option.get left_sib in
      let sp = a.Spp_access.direct s in
      snap_node t poid; snap_node t coid; snap_node t s;
      let sn = n_of t sp and cn = n_of t cp in
      shift_items_right t cp 0 cn;
      if not (is_leaf t cp) then shift_children_right t cp 0 (cn + 1);
      set_item t cp 0 ~key:(item_key t pp (ci - 1))
        ~value:(item_value t pp (ci - 1));
      if not (is_leaf t cp) then set_child t cp 0 (child t sp sn);
      set_n t cp (cn + 1);
      set_item t pp (ci - 1) ~key:(item_key t sp (sn - 1))
        ~value:(item_value t sp (sn - 1));
      set_n t sp (sn - 1);
      coid
    end
    else if rich right_sib then begin
      let s = Option.get right_sib in
      let sp = a.Spp_access.direct s in
      snap_node t poid; snap_node t coid; snap_node t s;
      let sn = n_of t sp and cn = n_of t cp in
      set_item t cp cn ~key:(item_key t pp ci) ~value:(item_value t pp ci);
      if not (is_leaf t cp) then set_child t cp (cn + 1) (child t sp 0);
      set_n t cp (cn + 1);
      set_item t pp ci ~key:(item_key t sp 0) ~value:(item_value t sp 0);
      shift_items_left t sp 0 sn;
      if not (is_leaf t sp) then shift_children_left t sp 0 sn;
      set_n t sp (sn - 1);
      coid
    end
    else begin
      (* merge with a sibling around the parent separator *)
      let li, left, right =
        match left_sib with
        | Some s -> (ci - 1, s, coid)
        | None -> (ci, coid, Option.get right_sib)
      in
      let lp = a.Spp_access.direct left and rp = a.Spp_access.direct right in
      snap_node t poid; snap_node t left; snap_node t right;
      let ln = n_of t lp and rn = n_of t rp in
      set_item t lp ln ~key:(item_key t pp li) ~value:(item_value t pp li);
      for i = 0 to rn - 1 do
        set_item t lp (ln + 1 + i) ~key:(item_key t rp i)
          ~value:(item_value t rp i)
      done;
      if not (is_leaf t lp) then
        for i = 0 to rn do
          set_child t lp (ln + 1 + i) (child t rp i)
        done;
      set_n t lp (ln + 1 + rn);
      shift_items_left t pp li pn;
      shift_children_left t pp (li + 1) pn;
      set_n t pp (pn - 1);
      a.Spp_access.tx_pfree right;
      left
    end
  end

let rec remove_from t oid key =
  let a = t.a in
  let p = a.Spp_access.direct oid in
  let n = n_of t p in
  let i = search_node t p key n in
  if is_leaf t p then begin
    if i < n && item_key t p i = key then begin
      let v = item_value t p i in
      snap_node t oid;
      shift_items_left t p i n;
      set_n t p (n - 1);
      Some v
    end else None
  end
  else if i < n && item_key t p i = key then begin
    let v = item_value t p i in
    let lc = child t p i in
    let rc = child t p (i + 1) in
    if n_of t (a.Spp_access.direct lc) > min_items then begin
      let pk, pv = max_item t lc in
      snap_node t oid;
      set_item t p i ~key:pk ~value:pv;
      ignore (remove_from t lc pk);
      Some v
    end
    else if n_of t (a.Spp_access.direct rc) > min_items then begin
      let sk, sv = min_item t rc in
      snap_node t oid;
      set_item t p i ~key:sk ~value:sv;
      ignore (remove_from t rc sk);
      Some v
    end
    else begin
      let merged = fix_child t oid (i + 1) in
      ignore merged;
      remove_from t oid key
    end
  end
  else begin
    let target = fix_child t oid i in
    (* indices may have shifted after borrowing/merging; re-descend from
       the parent to stay correct *)
    if Oid.equal target (child t p (search_node t p key (n_of t p))) then
      remove_from t target key
    else remove_from t oid key
  end

let remove t key =
  let a = t.a in
  let root_ptr = root_slot_ptr t in
  let root = a.Spp_access.load_oid_at root_ptr in
  if Oid.is_null root then None
  else
    with_tx a (fun () ->
      let v = remove_from t root key in
      (* shrink the root if it emptied *)
      let rp = a.Spp_access.direct root in
      if n_of t rp = 0 then begin
        tx_add a root_ptr a.Spp_access.oid_size;
        if is_leaf t rp then a.Spp_access.store_oid_at root_ptr Oid.null
        else a.Spp_access.store_oid_at root_ptr (child t rp 0);
        a.Spp_access.tx_pfree root
      end;
      v)

(* Ordered range [lo, hi], ascending: in-order traversal pruned at both
   ends. At each node, [search_node] skips straight to the first item
   >= lo; a subtree right of a separator > hi can only hold larger keys
   and is never entered. *)
let range t ~lo ~hi =
  let a = t.a in
  let acc = ref [] in
  let rec go oid =
    if not (Oid.is_null oid) then begin
      let p = a.Spp_access.direct oid in
      let n = n_of t p in
      let i0 = search_node t p lo n in
      if is_leaf t p then
        for i = i0 to n - 1 do
          let k = item_key t p i in
          if k <= hi then acc := (k, item_value t p i) :: !acc
        done
      else begin
        go (child t p i0);
        for i = i0 to n - 1 do
          let k = item_key t p i in
          if k <= hi then begin
            acc := (k, item_value t p i) :: !acc;
            go (child t p (i + 1))
          end
        done
      end
    end
  in
  go (a.Spp_access.load_oid_at (root_slot_ptr t));
  List.rev !acc
