(** btree — order-8 B-tree (PMDK's [btree_map] example), including a
    faithful reproduction of the upstream overflow the paper detects
    with SPP (§VI-D, pmdk issue #5333).

    With [~buggy:true], the remove path's item shift moves one element
    too many through the interposed [memmove], reading past the node
    object when the node is full — detected by SPP's wrapper, silent on
    native PMDK. *)

type t

val name : string

val create : ?buggy:bool -> Spp_access.t -> t
(** [buggy] defaults to [false] (the fixed code). *)

val attach : ?buggy:bool -> Spp_access.t -> root:Spp_pmdk.Oid.t -> t
(** Re-attach to an existing tree after a pool reopen, given the
    root-slot oid ({!map_oid} of the original). Raises [Invalid_argument]
    if the slot's durable allocation cannot hold an oid. *)

val map_oid : t -> Spp_pmdk.Oid.t
(** The root-slot object's oid — the single durable handle; park it in
    the pool root so the tree survives a restart. *)

val insert : t -> key:int -> value:int -> unit
val get : t -> int -> int option
val remove : t -> int -> int option

val range : t -> lo:int -> hi:int -> (int * int) list
(** All pairs with [lo <= key <= hi] in ascending key order — in-order
    traversal pruned at both bounds. *)

val order : int
(** Maximum children per node (8). *)
