(* engines — the registry of engine modules behind {!Engine.S}.

   Lives apart from [Engine] so the interface module never depends on
   its implementations (Cmap and Bmap both depend on Engine for the
   shared batch types). *)

(* Cmap predates the engine seam; only its attach label differs. *)
module Cmap_engine : Engine.S with type t = Cmap.t = struct
  include Cmap

  let attach a ~root = Cmap.attach a ~buckets:root
end

let cmap : Engine.spec = (module Cmap_engine)
let btree : Engine.spec = (module Bmap)

let names = [ "cmap"; "btree" ]

let of_name = function
  | "cmap" -> Some cmap
  | "btree" | "bmap" -> Some btree
  | _ -> None
