(** Volatile DRAM read cache fronting the Cmap PM chain walks.

    Fixed-capacity, power-of-two, set-associative (4-way) map from key
    to value, keyed by the same FNV-1a hash as the Cmap buckets. Lives
    entirely on the OCaml heap: it issues no simulated PM accesses, adds
    no durability events, and is gone after a pool reopen — a reattached
    map always starts cold.

    Readers are lock-free from any domain: per-entry seqlock stamps make
    a torn probe read as a miss, never a wrong value. Writers (fills and
    invalidations) serialize on a small striped mutex array. The
    intended single steady-state writer is the owning shard's worker
    domain (post-commit fills, stage-time invalidations); submitting
    domains may additionally invalidate on mutation submission, which
    the striping makes safe. *)

type t

type stats = {
  rc_hits : int;            (** probes answered from the cache *)
  rc_misses : int;          (** probes that fell through to PM *)
  rc_invalidations : int;   (** entries dropped by a mutation *)
  rc_fills : int;           (** entries installed *)
}

val create : cap:int -> t
(** [cap] is the total entry capacity; rounded up so the set count is a
    power of two of 4-way sets. Raises [Invalid_argument] on [cap <= 0]. *)

val capacity : t -> int

val probe : t -> string -> string option
(** Lock-free lookup; callable from any domain. Counts a hit or miss. *)

val insert : t -> string -> string -> unit
(** Install or overwrite [key]'s entry (evicting round-robin within its
    set when full). The value must be durable at call time: fills come
    from committed reads, never staged state. *)

val invalidate : t -> string -> unit
(** Drop [key]'s entry if present. Mutation sites call this at stage
    time — before the deferred commit — so a concurrent reader can
    never observe a value newer than the durable state allows. *)

val clear : t -> unit

val live : t -> int
(** Number of valid entries (test aid; racy while writers run). *)

val stats : t -> stats
val reset_stats : t -> unit

val zero_stats : stats
val merge_stats : stats list -> stats
(** Elementwise sum, for per-shard caches after the drivers join. *)

val hit_rate : stats -> float
val pp_stats : Format.formatter -> stats -> unit

val hash : string -> int
(** FNV-1a folded to the 63-bit word; [Cmap.hash] aliases this. *)
