(* bmap — a persistent string-keyed B-tree engine behind the same
   {!Engine.S} seam as {!Cmap}, giving the serving stack an ordered
   engine (cheap range scans) with the same crash story.

   It generalizes the [lib/indices/btree_map] node discipline — PM
   nodes, oid child links, order-8 fanout — to variable-size keys and
   values by moving items out of line: a node stores oids of immutable
   item objects instead of inline fixed-width pairs.

     node: [ n | leaf | ORDER child oids | (ORDER-1) item oids ]
     item: [ klen | vlen | key bytes | value bytes ]

   Durability discipline: every mutation is copy-on-write through the
   PR-4 redo batch API. An op allocates fresh nodes for the root-to-leaf
   path it changes ([Pool.batch_alloc]), writes them directly while they
   are unreachable (one flush per node, [Pool.batch_note_write] so the
   bytes ride the replication payload), and stages exactly one word —
   the root slot oid — via [Pool.batch_stage_oid]. Replaced nodes and
   items are [Pool.batch_free]d (pinned until the commit is durable, so
   a crash mid-batch still finds the old tree intact under the old
   root). Each op is therefore atomic by construction and recovery
   lands on a whole-op prefix, exactly the contract [Cmap.run_batch]
   provides. Unlike Cmap there is no undo-transaction path at all:
   synchronous [put]/[remove] run as single-op batches, so every bmap
   mutation is group-committable and replicable.

   Like the batched half of Cmap, all node/item IO is engine-internal
   code on pool offsets (the paper instruments application code, not
   PMDK internals): it does not travel through the tagged access-layer
   pointers, so SPP hook counts are untouched.

   Concurrency: one mutex serializes sync ops and batches; the read
   cache keeps its own seqlock discipline so [cache_probe] and
   [cache_invalidate] stay safe from any domain (the serve fast path). *)

open Spp_pmdk

let name = "btree"

let order = 8                 (* max children per node *)
let max_items = order - 1
let min_items = (order / 2) - 1

type t = {
  a : Spp_access.t;
  map_oid : Oid.t;                 (* root-slot object: one oid *)
  mu : Mutex.t;
  mutable cache : Rcache.t option;
}

let children_off = 16
let items_off (a : Spp_access.t) = 16 + (order * a.Spp_access.oid_size)

let node_size (a : Spp_access.t) =
  16 + ((order + max_items) * a.Spp_access.oid_size)

let create ?nbuckets:_ (a : Spp_access.t) =
  let map_oid =
    Pool.with_tx a.Spp_access.pool (fun () ->
      a.Spp_access.tx_palloc ~zero:true a.Spp_access.oid_size)
  in
  { a; map_oid; mu = Mutex.create (); cache = None }

let attach (a : Spp_access.t) ~root =
  if Pool.alloc_size a.Spp_access.pool root < a.Spp_access.oid_size then
    invalid_arg "Bmap.attach: root slot too small";
  { a; map_oid = root; mu = Mutex.create (); cache = None }

let root_oid t = t.map_oid

let set_cache t c = t.cache <- c
let cache t = t.cache

let cache_probe t key =
  match t.cache with None -> None | Some rc -> Rcache.probe rc key

let cache_invalidate t key =
  match t.cache with None -> () | Some rc -> Rcache.invalidate rc key

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ------------------------------------------------------------------ *)
(* Node and item IO                                                    *)
(* ------------------------------------------------------------------ *)

let pool t = t.a.Spp_access.pool
let oid_size t = t.a.Spp_access.oid_size

(* Leaf/item readers, selected by [Engine.read_path] like Cmap's: the
   lease path reads key/value in a single copy ([Space.read_sub]) and
   compares descent keys against the device view ([item_cmp]) without
   materializing candidates; the copying path is the pre-lease
   double-copy reference kept for before/after benchmarking. *)

let item_key_copying t (it : Oid.t) =
  let p = pool t in
  let klen = Pool.load_word p ~off:it.Oid.off in
  Bytes.to_string
    (Spp_sim.Space.read_bytes (Pool.space p)
       (Pool.addr_of_off p (it.Oid.off + 16)) klen)

(* Whole-item window: in SPP mode every stored oid carries the object's
   durable size (paper §IV-B), so one raw view covers the item's
   lengths, key and value at once. Native-mode oids have size 0 and
   fall back to per-field translated reads. *)
let item_view t (it : Oid.t) =
  let p = pool t in
  Spp_sim.Space.read_view (Pool.space p)
    (Pool.addr_of_off p it.Oid.off) it.Oid.size

let item_key t (it : Oid.t) =
  match Engine.read_path () with
  | Engine.Copying -> item_key_copying t it
  | Engine.Lease ->
    if it.Oid.size > 0 then begin
      let v = item_view t it in
      let klen = Spp_sim.Space.view_word v 0 in
      Spp_sim.Space.view_string v ~off:16 ~len:klen
    end
    else begin
      let p = pool t in
      let klen = Pool.load_word p ~off:it.Oid.off in
      Spp_sim.Space.read_sub (Pool.space p)
        (Pool.addr_of_off p (it.Oid.off + 16)) klen
    end

let item_value t (it : Oid.t) =
  match Engine.read_path () with
  | Engine.Copying ->
    let p = pool t in
    let klen = Pool.load_word p ~off:it.Oid.off in
    let vlen = Pool.load_word p ~off:(it.Oid.off + 8) in
    Bytes.to_string
      (Spp_sim.Space.read_bytes (Pool.space p)
         (Pool.addr_of_off p (it.Oid.off + 16 + klen)) vlen)
  | Engine.Lease ->
    if it.Oid.size > 0 then begin
      let v = item_view t it in
      let klen = Spp_sim.Space.view_word v 0 in
      let vlen = Spp_sim.Space.view_word v 8 in
      Spp_sim.Space.view_string v ~off:(16 + klen) ~len:vlen
    end
    else begin
      let p = pool t in
      let klen = Pool.load_word p ~off:it.Oid.off in
      let vlen = Pool.load_word p ~off:(it.Oid.off + 8) in
      Spp_sim.Space.read_sub (Pool.space p)
        (Pool.addr_of_off p (it.Oid.off + 16 + klen)) vlen
    end

(* [String.compare (item_key t it) key] without materializing the item
   key on the lease path — what the descent ([search_desc]) and the
   exact-match probes run per candidate. *)
let item_cmp t (it : Oid.t) key =
  match Engine.read_path () with
  | Engine.Copying -> String.compare (item_key_copying t it) key
  | Engine.Lease ->
    if it.Oid.size > 0 then begin
      let v = item_view t it in
      let klen = Spp_sim.Space.view_word v 0 in
      Spp_sim.Space.view_compare_string v ~off:16 ~len:klen key
    end
    else begin
      let p = pool t in
      let klen = Pool.load_word p ~off:it.Oid.off in
      Spp_sim.Space.compare_string (Pool.space p)
        (Pool.addr_of_off p (it.Oid.off + 16)) ~len:klen key
    end

(* In-memory image of one node, the unit the COW paths work on. The
   arrays are private to the desc, so mutating them never touches PM;
   [src] is the durable node this was loaded from (null for a node
   invented by the current op). *)
type desc = {
  src : Oid.t;
  d_leaf : bool;
  mutable d_items : Oid.t array;
  mutable d_children : Oid.t array; (* n+1 node oids; [||] for a leaf *)
}

(* Plain (non-overlay) reads are correct mid-batch by the COW
   invariant: committed nodes are never modified in place and fresh
   nodes are direct-written before they become reachable; the only
   staged word is the root slot, which callers read through
   [Pool.batch_load_oid]. *)
let load_desc t (oid : Oid.t) =
  let p = pool t in
  let off = oid.Oid.off in
  let osz = oid_size t in
  match Engine.read_path () with
  | Engine.Copying ->
    let n = Pool.load_word p ~off in
    let leaf = Pool.load_word p ~off:(off + 8) <> 0 in
    { src = oid; d_leaf = leaf;
      d_items =
        Array.init n (fun i ->
          Pool.load_oid p ~off:(off + items_off t.a + (i * osz)));
      d_children =
        (if leaf then [||]
         else
           Array.init (n + 1) (fun i ->
             Pool.load_oid p ~off:(off + children_off + (i * osz)))) }
  | Engine.Lease ->
    (* one hoisted check per node: the whole node is opened as a raw
       view and decoded with bare reads — the descent's dominant cost
       was one translated load per header/child/item word *)
    let v =
      Spp_sim.Space.read_view (Pool.space p) (Pool.addr_of_off p off)
        (node_size t.a)
    in
    let n = Spp_sim.Space.view_word v 0 in
    let leaf = Spp_sim.Space.view_word v 8 <> 0 in
    { src = oid; d_leaf = leaf;
      d_items =
        Array.init n (fun i ->
          Pool.view_load_oid p v ~off:(items_off t.a + (i * osz)));
      d_children =
        (if leaf then [||]
         else
           Array.init (n + 1) (fun i ->
             Pool.view_load_oid p v ~off:(children_off + (i * osz)))) }

(* Materialize a desc as a fresh node: batch-allocate, write fields
   directly while unreachable, flush once, note the write for
   replication, then free the node it replaces. *)
let b_materialize t bt d =
  let p = pool t in
  let size = node_size t.a in
  let oid = Pool.batch_alloc p bt ~size in
  let off = oid.Oid.off in
  let osz = oid_size t in
  let n = Array.length d.d_items in
  Pool.store_word p ~off n;
  Pool.store_word p ~off:(off + 8) (if d.d_leaf then 1 else 0);
  Array.iteri
    (fun i c -> Pool.store_oid p ~off:(off + children_off + (i * osz)) c)
    d.d_children;
  Array.iteri
    (fun i it -> Pool.store_oid p ~off:(off + items_off t.a + (i * osz)) it)
    d.d_items;
  Spp_sim.Space.flush (Pool.space p) (Pool.addr_of_off p off) size;
  Pool.batch_note_write p bt ~off ~len:size;
  if not (Oid.is_null d.src) then Pool.batch_free p bt d.src;
  oid

let b_mk_item t bt ~key ~value =
  let p = pool t in
  let klen = String.length key and vlen = String.length value in
  let size = 16 + klen + vlen in
  let oid = Pool.batch_alloc p bt ~size in
  let off = oid.Oid.off in
  Pool.store_word p ~off klen;
  Pool.store_word p ~off:(off + 8) vlen;
  let sp = Pool.space p in
  Spp_sim.Space.write_string sp (Pool.addr_of_off p (off + 16)) key;
  Spp_sim.Space.write_string sp (Pool.addr_of_off p (off + 16 + klen)) value;
  Spp_sim.Space.flush sp (Pool.addr_of_off p off) size;
  Pool.batch_note_write p bt ~off ~len:size;
  oid

(* First index whose item key is >= [key] (= item count if none). *)
let search_desc t d key =
  let n = Array.length d.d_items in
  let rec go i =
    if i >= n then i
    else if item_cmp t d.d_items.(i) key >= 0 then i
    else go (i + 1)
  in
  go 0

let insert_at arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j ->
    if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let remove_at arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* ------------------------------------------------------------------ *)
(* Read paths                                                          *)
(* ------------------------------------------------------------------ *)

let rec find t (oid : Oid.t) key =
  let d = load_desc t oid in
  let n = Array.length d.d_items in
  let i = search_desc t d key in
  if i < n && item_cmp t d.d_items.(i) key = 0 then
    Some (item_value t d.d_items.(i))
  else if d.d_leaf then None
  else find t d.d_children.(i) key

(* Desc-free descent for the lease path: each node is opened as one raw
   view and only the oids the walk actually touches are decoded — no
   per-level desc record, no item/children arrays. *)
let rec find_lease t (oid : Oid.t) key =
  let p = pool t in
  let v =
    Spp_sim.Space.read_view (Pool.space p)
      (Pool.addr_of_off p oid.Oid.off) (node_size t.a)
  in
  let n = Spp_sim.Space.view_word v 0 in
  let leaf = Spp_sim.Space.view_word v 8 <> 0 in
  let osz = oid_size t in
  let descend i =
    if leaf then None
    else
      find_lease t (Pool.view_load_oid p v ~off:(children_off + (i * osz))) key
  in
  let rec scan i =
    if i >= n then descend n
    else begin
      let it = Pool.view_load_oid p v ~off:(items_off t.a + (i * osz)) in
      let c = item_cmp t it key in
      if c < 0 then scan (i + 1)
      else if c = 0 then Some (item_value t it)
      else descend i
    end
  in
  scan 0

exception Scan_done

(* In-order traversal clipped to [lo..hi], stopping after [limit]
   pairs. Starting the walk at the first in-range separator prunes the
   subtrees entirely below [lo]. *)
let collect_range t root ~lo ~hi ~limit =
  let acc = ref [] and n = ref 0 in
  let keep k v =
    if k > hi then raise Scan_done;
    if k >= lo then begin
      acc := (k, v) :: !acc;
      incr n;
      if !n >= limit then raise Scan_done
    end
  in
  let rec go oid =
    let d = load_desc t oid in
    let len = Array.length d.d_items in
    let start = search_desc t d lo in
    if d.d_leaf then
      for i = start to len - 1 do
        let it = d.d_items.(i) in
        keep (item_key t it) (item_value t it)
      done
    else begin
      for i = start to len - 1 do
        go d.d_children.(i);
        let it = d.d_items.(i) in
        keep (item_key t it) (item_value t it)
      done;
      go d.d_children.(len)
    end
  in
  (if limit > 0 && lo <= hi && not (Oid.is_null root) then
     try go root with Scan_done -> ());
  List.rev !acc

let rec count_node t oid =
  let d = load_desc t oid in
  Array.length d.d_items
  + (if d.d_leaf then 0
     else Array.fold_left (fun s c -> s + count_node t c) 0 d.d_children)

(* Extreme keys of a desc's subtree, by pure reads. *)
let rec max_kv t d =
  if d.d_leaf then begin
    let it = d.d_items.(Array.length d.d_items - 1) in
    (item_key t it, item_value t it)
  end
  else max_kv t (load_desc t d.d_children.(Array.length d.d_children - 1))

let rec min_kv t d =
  if d.d_leaf then begin
    let it = d.d_items.(0) in
    (item_key t it, item_value t it)
  end
  else min_kv t (load_desc t d.d_children.(0))

(* ------------------------------------------------------------------ *)
(* COW insert                                                          *)
(* ------------------------------------------------------------------ *)

type ins =
  | Fit of Oid.t
  | Split of Oid.t * Oid.t * Oid.t (* left node, separator item, right node *)

(* Overflow check + split, bottom-up: a desc holding max_items + 1
   items splits around its middle item into two fresh nodes. *)
let b_finish t bt d =
  if Array.length d.d_items <= max_items then Fit (b_materialize t bt d)
  else begin
    let items = d.d_items and ch = d.d_children in
    let mid = max_items / 2 in
    let sep = items.(mid) in
    let left =
      { src = Oid.null; d_leaf = d.d_leaf;
        d_items = Array.sub items 0 mid;
        d_children = (if d.d_leaf then [||] else Array.sub ch 0 (mid + 1)) }
    in
    let rlen = Array.length items - mid - 1 in
    let right =
      { src = Oid.null; d_leaf = d.d_leaf;
        d_items = Array.sub items (mid + 1) rlen;
        d_children =
          (if d.d_leaf then [||] else Array.sub ch (mid + 1) (rlen + 1)) }
    in
    let l = b_materialize t bt left in
    let r = b_materialize t bt right in
    if not (Oid.is_null d.src) then Pool.batch_free (pool t) bt d.src;
    Split (l, sep, r)
  end

let rec b_ins t bt (oid : Oid.t) ~key ~value =
  let d = load_desc t oid in
  let n = Array.length d.d_items in
  let i = search_desc t d key in
  if i < n && item_cmp t d.d_items.(i) key = 0 then begin
    (* value replace: fresh item, fresh node, free both old *)
    let old = d.d_items.(i) in
    d.d_items.(i) <- b_mk_item t bt ~key ~value;
    let r = Fit (b_materialize t bt d) in
    Pool.batch_free (pool t) bt old;
    r
  end
  else if d.d_leaf then begin
    d.d_items <- insert_at d.d_items i (b_mk_item t bt ~key ~value);
    b_finish t bt d
  end
  else
    match b_ins t bt d.d_children.(i) ~key ~value with
    | Fit c ->
      d.d_children.(i) <- c;
      Fit (b_materialize t bt d)
    | Split (l, sep, r) ->
      d.d_items <- insert_at d.d_items i sep;
      let ch = insert_at d.d_children (i + 1) r in
      ch.(i) <- l;
      d.d_children <- ch;
      b_finish t bt d

(* ------------------------------------------------------------------ *)
(* COW remove (CLRS shape, on descs)                                   *)
(* ------------------------------------------------------------------ *)

let merge_descs t bt l sep r =
  let p = pool t in
  if not (Oid.is_null l.src) then Pool.batch_free p bt l.src;
  if not (Oid.is_null r.src) then Pool.batch_free p bt r.src;
  { src = Oid.null; d_leaf = l.d_leaf;
    d_items = Array.concat [ l.d_items; [| sep |]; r.d_items ];
    d_children = Array.append l.d_children r.d_children }

(* Remove [key] from the subtree described by [d]. The caller
   guarantees [d] is the root or holds > min_items, so deleting one
   item here never underflows. Mutates [d] in place; children that
   change are materialized before being linked back. Returns the
   removed value and whether [d] changed. *)
let rec b_rem t bt d key =
  let p = pool t in
  let n = Array.length d.d_items in
  let i = search_desc t d key in
  let found = i < n && item_cmp t d.d_items.(i) key = 0 in
  if d.d_leaf then
    if not found then (None, false)
    else begin
      let v = item_value t d.d_items.(i) in
      Pool.batch_free p bt d.d_items.(i);
      d.d_items <- remove_at d.d_items i;
      (Some v, true)
    end
  else if found then begin
    let v = item_value t d.d_items.(i) in
    let lc = load_desc t d.d_children.(i) in
    let rc = load_desc t d.d_children.(i + 1) in
    if Array.length lc.d_items > min_items then begin
      (* hoist the predecessor: read its kv, delete it below (the old
         leaf item dies there), point the separator at a fresh copy *)
      let pk, pv = max_kv t lc in
      ignore (b_rem t bt lc pk);
      d.d_children.(i) <- b_materialize t bt lc;
      Pool.batch_free p bt d.d_items.(i);
      d.d_items.(i) <- b_mk_item t bt ~key:pk ~value:pv;
      (Some v, true)
    end
    else if Array.length rc.d_items > min_items then begin
      let sk, sv = min_kv t rc in
      ignore (b_rem t bt rc sk);
      d.d_children.(i + 1) <- b_materialize t bt rc;
      Pool.batch_free p bt d.d_items.(i);
      d.d_items.(i) <- b_mk_item t bt ~key:sk ~value:sv;
      (Some v, true)
    end
    else begin
      (* both minimal: merge around the separator and recurse *)
      let merged = merge_descs t bt lc d.d_items.(i) rc in
      d.d_items <- remove_at d.d_items i;
      d.d_children <- remove_at d.d_children (i + 1);
      ignore (b_rem t bt merged key);
      d.d_children.(i) <- b_materialize t bt merged;
      (Some v, true)
    end
  end
  else begin
    (* descend, pre-balancing the target child to > min_items *)
    let c = load_desc t d.d_children.(i) in
    let target, ti, fixed =
      if Array.length c.d_items > min_items then (c, i, false)
      else begin
        let borrow_left () =
          if i = 0 then false
          else begin
            let sib = load_desc t d.d_children.(i - 1) in
            let sn = Array.length sib.d_items in
            if sn <= min_items then false
            else begin
              (* rotate right through the separator *)
              c.d_items <- insert_at c.d_items 0 d.d_items.(i - 1);
              if not c.d_leaf then
                c.d_children <- insert_at c.d_children 0 sib.d_children.(sn);
              d.d_items.(i - 1) <- sib.d_items.(sn - 1);
              sib.d_items <- Array.sub sib.d_items 0 (sn - 1);
              if not sib.d_leaf then
                sib.d_children <- Array.sub sib.d_children 0 sn;
              d.d_children.(i - 1) <- b_materialize t bt sib;
              true
            end
          end
        in
        let borrow_right () =
          if i >= Array.length d.d_children - 1 then false
          else begin
            let sib = load_desc t d.d_children.(i + 1) in
            let sn = Array.length sib.d_items in
            if sn <= min_items then false
            else begin
              (* rotate left through the separator *)
              c.d_items <-
                insert_at c.d_items (Array.length c.d_items) d.d_items.(i);
              if not c.d_leaf then
                c.d_children <-
                  insert_at c.d_children (Array.length c.d_children)
                    sib.d_children.(0);
              d.d_items.(i) <- sib.d_items.(0);
              sib.d_items <- Array.sub sib.d_items 1 (sn - 1);
              if not sib.d_leaf then sib.d_children <- remove_at sib.d_children 0;
              d.d_children.(i + 1) <- b_materialize t bt sib;
              true
            end
          end
        in
        if borrow_left () then (c, i, true)
        else if borrow_right () then (c, i, true)
        else if i > 0 then begin
          let sib = load_desc t d.d_children.(i - 1) in
          let merged = merge_descs t bt sib d.d_items.(i - 1) c in
          d.d_items <- remove_at d.d_items (i - 1);
          d.d_children <- remove_at d.d_children i;
          (merged, i - 1, true)
        end
        else begin
          let sib = load_desc t d.d_children.(1) in
          let merged = merge_descs t bt c d.d_items.(0) sib in
          d.d_items <- remove_at d.d_items 0;
          d.d_children <- remove_at d.d_children 1;
          (merged, 0, true)
        end
      end
    in
    let v, cdirty = b_rem t bt target key in
    if cdirty || fixed then begin
      d.d_children.(ti) <- b_materialize t bt target;
      (v, true)
    end
    else (v, false)
  end

(* ------------------------------------------------------------------ *)
(* Batch ops                                                           *)
(* ------------------------------------------------------------------ *)

let b_put t bt ~key ~value =
  let p = pool t in
  Redo.batch_op_begin bt;
  (* stage-time invalidation, same contract as Cmap.b_put *)
  cache_invalidate t key;
  let slot = t.map_oid.Oid.off in
  let root = Pool.batch_load_oid p bt ~off:slot in
  (if Oid.is_null root then begin
     let leaf =
       { src = Oid.null; d_leaf = true;
         d_items = [| b_mk_item t bt ~key ~value |]; d_children = [||] }
     in
     Pool.batch_stage_oid p bt ~off:slot (b_materialize t bt leaf)
   end
   else
     match b_ins t bt root ~key ~value with
     | Fit r -> Pool.batch_stage_oid p bt ~off:slot r
     | Split (l, sep, r) ->
       let nroot =
         { src = Oid.null; d_leaf = false;
           d_items = [| sep |]; d_children = [| l; r |] }
       in
       Pool.batch_stage_oid p bt ~off:slot (b_materialize t bt nroot));
  Redo.batch_op_end bt

let b_get t bt key =
  Redo.batch_op_begin bt;
  let root = Pool.batch_load_oid (pool t) bt ~off:t.map_oid.Oid.off in
  let r = if Oid.is_null root then None else find t root key in
  Redo.batch_op_end bt;
  r

let b_remove t bt key =
  let p = pool t in
  Redo.batch_op_begin bt;
  cache_invalidate t key;
  let slot = t.map_oid.Oid.off in
  let root = Pool.batch_load_oid p bt ~off:slot in
  let r =
    if Oid.is_null root then false
    else begin
      let d = load_desc t root in
      let removed, dirty = b_rem t bt d key in
      (* Stage whenever the tree changed — descending past a minimal
         child pre-balances (freeing the borrowed-from or merged
         nodes) even when the key then turns out to be absent, and
         that restructure must reach the root slot or the committed
         tree keeps pointing at freed nodes. *)
      if dirty then begin
        if Array.length d.d_items = 0 then begin
          (* root shrink: an emptied leaf root leaves an empty tree,
             an emptied internal root hands over to its lone child *)
          let next = if d.d_leaf then Oid.null else d.d_children.(0) in
          Pool.batch_free p bt d.src;
          Pool.batch_stage_oid p bt ~off:slot next
        end
        else Pool.batch_stage_oid p bt ~off:slot (b_materialize t bt d)
      end;
      removed <> None
    end
  in
  Redo.batch_op_end bt;
  r

let b_scan t bt ~lo ~hi ~limit =
  Redo.batch_op_begin bt;
  let root = Pool.batch_load_oid (pool t) bt ~off:t.map_oid.Oid.off in
  let r =
    if Oid.is_null root || limit <= 0 || hi < lo then []
    else collect_range t root ~lo ~hi ~limit
  in
  Redo.batch_op_end bt;
  r

let run_batch ?len t ops =
  let n =
    match len with
    | None -> Array.length ops
    | Some l ->
      if l < 0 || l > Array.length ops then
        invalid_arg "Bmap.run_batch: len out of range";
      l
  in
  with_lock t (fun () ->
    let replies =
      Pool.with_batch (pool t) (fun bt ->
        Array.init n (fun i ->
          match ops.(i) with
          | Engine.B_put { key; value } -> b_put t bt ~key ~value; Engine.R_put
          | Engine.B_get key -> Engine.R_get (b_get t bt key)
          | Engine.B_remove key -> Engine.R_removed (b_remove t bt key)
          | Engine.B_scan { lo; hi; limit } ->
            Engine.R_scan (b_scan t bt ~lo ~hi ~limit)))
    in
    (* committed: replay cache effects in op order (see Cmap.run_batch;
       scans have none by contract) *)
    (match t.cache with
     | None -> ()
     | Some rc ->
       for i = 0 to n - 1 do
         match (ops.(i), replies.(i)) with
         | Engine.B_get key, Engine.R_get (Some v) -> Rcache.insert rc key v
         | Engine.B_get _, _ -> ()
         | Engine.B_put { key; value }, _ -> Rcache.insert rc key value
         | Engine.B_remove key, _ -> Rcache.invalidate rc key
         | Engine.B_scan _, _ -> ()
       done);
    replies)

(* ------------------------------------------------------------------ *)
(* Synchronous API                                                     *)
(* ------------------------------------------------------------------ *)

let root_of t = Pool.load_oid (pool t) ~off:t.map_oid.Oid.off

let get t key =
  match cache_probe t key with
  | Some _ as hit -> hit
  | None ->
    with_lock t (fun () ->
      let root = root_of t in
      let r =
        if Oid.is_null root then None
        else
          match Engine.read_path () with
          | Engine.Lease -> find_lease t root key
          | Engine.Copying -> find t root key
      in
      (* fill under the engine lock: a same-key writer serializes on
         it, so a stale value can never overwrite a newer put *)
      (match (r, t.cache) with
       | Some v, Some rc -> Rcache.insert rc key v
       | _ -> ());
      r)

let scan t ~lo ~hi ~limit =
  with_lock t (fun () ->
    let root = root_of t in
    if Oid.is_null root || limit <= 0 || hi < lo then []
    else collect_range t root ~lo ~hi ~limit)

let count_all t =
  with_lock t (fun () ->
    let root = root_of t in
    if Oid.is_null root then 0 else count_node t root)

(* Sync mutations are single-op batches: bmap has no undo-transaction
   write path, so even a lone put pays (and amortizes nothing of) the
   batch fence schedule — and is observed by replication. *)
let put t ~key ~value = ignore (run_batch t [| Engine.B_put { key; value } |])

let remove t key =
  match (run_batch t [| Engine.B_remove key |]).(0) with
  | Engine.R_removed b -> b
  | _ -> false
