(** bmap — persistent string-keyed B-tree engine ({!Engine.S}).

    The ordered counterpart to {!Cmap}: order-8 PM nodes linking
    out-of-line immutable item objects
    ([node: n | leaf | children oids | item oids],
    [item: klen | vlen | key | value]), generalizing the
    [lib/indices/btree_map] discipline to variable-size keys/values.

    Every mutation is copy-on-write through the redo batch API: fresh
    path nodes are batch-allocated and direct-written while
    unreachable, only the root slot oid is staged, and replaced
    nodes/items are batch-freed — so each op is individually atomic,
    recovery lands on a whole-op prefix, and the direct writes ride the
    replication payload, matching [Cmap.run_batch]'s contract exactly.
    Synchronous [put]/[remove] run as single-op batches (there is no
    undo-transaction write path). *)

type t

val name : string
(** ["btree"] — the engine's registry name (see {!Engines}). *)

val create : ?nbuckets:int -> Spp_access.t -> t
(** Fresh empty tree; allocates only the one-oid root slot. [nbuckets]
    is accepted for {!Engine.S} compatibility and ignored. *)

val attach : Spp_access.t -> root:Spp_pmdk.Oid.t -> t
(** Re-attach after a pool reopen given the root-slot oid
    ({!root_oid} of the original map). The cache starts cold. *)

val root_oid : t -> Spp_pmdk.Oid.t
(** The root-slot object's oid — the single durable handle; park it in
    the pool root so the tree survives a restart. *)

val set_cache : t -> Rcache.t option -> unit
val cache : t -> Rcache.t option
val cache_probe : t -> string -> string option
val cache_invalidate : t -> string -> unit

val put : t -> key:string -> value:string -> unit
val get : t -> string -> string option
val remove : t -> string -> bool
val count_all : t -> int

val scan : t -> lo:string -> hi:string -> limit:int -> (string * string) list
(** Ordered range scan: in-order traversal pruned below [lo] and cut
    at [hi]/[limit] — O(log n + k), the workload this engine exists
    for. Cache-bypassing. *)

val run_batch : ?len:int -> t -> Engine.batch_op array -> Engine.batch_reply array
(** [?len] restricts execution to the first [len] ops, so a reusable
    op buffer can feed every drain without per-batch re-allocation. *)

val order : int
(** Node fanout (8), shared with [lib/indices/btree_map]. *)
