(** cmap — the concurrent persistent hashmap engine of pmemkv (the
    paper's §VI-B KV-store benchmark uses pmemkv's non-experimental
    concurrent engine).

    Fixed bucket array in PM with chains of variable-size entry objects
    ([next oid | key len | value len | key | value]). Striped per-bucket
    mutexes protect chains; write transactions additionally serialize on
    the pool's undo lane. *)

type t

val name : string
(** ["cmap"] — the engine's registry name (see {!Engines}). *)

val create : ?nbuckets:int -> Spp_access.t -> t
(** Default 4096 buckets. *)

val attach : Spp_access.t -> buckets:Spp_pmdk.Oid.t -> t
(** Re-attach to an existing map after a pool reopen; the bucket count is
    recovered from the bucket array's durable allocation size. The read
    cache is volatile by design, so a reattached map always starts cold
    ([cache] is [None] until {!set_cache}). *)

(** {1 Volatile DRAM read cache}

    An optional {!Rcache.t} fronts the PM chain walks. [get] probes it
    lock-free before taking the bucket stripe and fills it on a miss;
    every mutation site invalidates write-through — [put]/[remove]
    inside the bucket stripe before the transaction, the batched
    [b_put]/[b_remove] paths at stage time before the deferred commit —
    so the cache can never serve a value newer than the durable state
    allows, and [run_batch] replays fills only after its commit
    returns. Purely volatile: no simulated PM traffic, no new crash
    points, gone on reopen. *)

val set_cache : t -> Rcache.t option -> unit
val cache : t -> Rcache.t option

val cache_probe : t -> string -> string option
(** Probe the cache without touching PM; safe from any domain (the serve
    layer's read fast path). [None] when no cache is attached. *)

val cache_invalidate : t -> string -> unit
(** Drop a key from the cache if one is attached; safe from any domain.
    The serve layer calls this on mutation submission so a same-client
    get can never hit ahead of its own queued write. *)

val buckets_oid : t -> Spp_pmdk.Oid.t
(** The bucket-array oid — store it in a durable slot (e.g. the pool
    root) so the map survives a restart. *)

val root_oid : t -> Spp_pmdk.Oid.t
(** Alias of {!buckets_oid} under the {!Engine.S} contract. *)

val put : t -> key:string -> value:string -> unit
(** Same-size overwrites happen in place (one snapshot); size changes
    allocate a replacement entry and free the old one, transactionally. *)

val get : t -> string -> string option
val remove : t -> string -> bool
val count_all : t -> int

val scan : t -> lo:string -> hi:string -> limit:int -> (string * string) list
(** Ordered range scan per the {!Engine.S} contract: at most [limit]
    pairs with [lo <= key <= hi], ascending. On this hash layout every
    bucket chain is walked and the survivors sorted — O(total entries)
    whatever the range width. Cache-bypassing. *)

(** {1 Group-committed batches}

    [run_batch] executes the array inside one [Pool.with_batch]: the
    redo entries of consecutive ops share a staged log and one fence
    schedule per sub-batch, while each op stays individually atomic on
    crash (recovery lands on a prefix of whole ops — see
    [Redo.batch]). Later ops in the batch observe earlier ones. The
    caller must hold the map exclusively for the call — the per-shard
    serve queue does — since stripe locks cannot cover the deferred
    commit. Batched puts always replace entries out of place. *)

type batch_op = Engine.batch_op =
  | B_put of { key : string; value : string }
  | B_get of string
  | B_remove of string
  | B_scan of { lo : string; hi : string; limit : int }

type batch_reply = Engine.batch_reply =
  | R_put
  | R_get of string option
  | R_removed of bool
  | R_scan of (string * string) list

val batch_key_of : batch_op -> string

val run_batch : ?len:int -> t -> batch_op array -> batch_reply array
(** [?len] restricts execution to the first [len] ops, so a reusable
    op buffer can feed every drain without per-batch re-allocation. *)

val hash : string -> int
(** FNV-1a, folded to the 63-bit word. *)
