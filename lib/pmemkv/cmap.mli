(** cmap — the concurrent persistent hashmap engine of pmemkv (the
    paper's §VI-B KV-store benchmark uses pmemkv's non-experimental
    concurrent engine).

    Fixed bucket array in PM with chains of variable-size entry objects
    ([next oid | key len | value len | key | value]). Striped per-bucket
    mutexes protect chains; write transactions additionally serialize on
    the pool's undo lane. *)

type t

val create : ?nbuckets:int -> Spp_access.t -> t
(** Default 4096 buckets. *)

val attach : Spp_access.t -> buckets:Spp_pmdk.Oid.t -> t
(** Re-attach to an existing map after a pool reopen; the bucket count is
    recovered from the bucket array's durable allocation size. *)

val buckets_oid : t -> Spp_pmdk.Oid.t
(** The bucket-array oid — store it in a durable slot (e.g. the pool
    root) so the map survives a restart. *)

val put : t -> key:string -> value:string -> unit
(** Same-size overwrites happen in place (one snapshot); size changes
    allocate a replacement entry and free the old one, transactionally. *)

val get : t -> string -> string option
val remove : t -> string -> bool
val count_all : t -> int

val hash : string -> int
(** FNV-1a, folded to the 63-bit word. *)
