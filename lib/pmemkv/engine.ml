(* engine — the first-class engine abstraction behind the serving stack.

   pmemkv ships interchangeable storage engines behind one API; this
   module is our version of that seam. An engine owns a durable
   key/value structure inside one pool and exposes point ops, an
   ordered range scan, group-committed batches (the PR-4 redo batch
   discipline: one fence schedule per sub-batch, crash recovery lands
   on a whole-op prefix), a durable re-attach handle (a single root
   oid parked by the caller, e.g. in the pool root), and the volatile
   read-cache hooks the serve fast path relies on.

   The shard/serve/replica stack is written against [packed] values —
   an existential pairing of a module implementing [S] with its state —
   so a shard's engine is chosen at [Shard.create] time and everything
   above it stays engine-agnostic. *)

open Spp_pmdk

(* Process-wide read-path selector. [Lease] is the zero-copy hot path:
   engine readers pin a Space lease (or use single-copy [read_sub]) and
   compare keys against the device view, never materializing candidate
   strings. [Copying] is the pre-lease reference path — read_bytes +
   Bytes.to_string double copies and one pointer check per access —
   kept selectable for before/after benchmarking, exactly like
   [Memdev]'s list-based tracking engine. Engines consult the selector
   per read, so [with_read_path] brackets work mid-run; like the Memdev
   toggle it is not meant to be flipped while worker domains are live. *)

type read_path =
  | Copying   (* pre-lease reference: double-copy reads, per-access checks *)
  | Lease     (* zero-copy: hoisted checks, device-side key compares *)

let read_path_name = function Copying -> "copying" | Lease -> "lease"

let read_path_ref = ref Lease
let set_read_path p = read_path_ref := p
let read_path () = !read_path_ref

let with_read_path p f =
  let saved = !read_path_ref in
  read_path_ref := p;
  Fun.protect ~finally:(fun () -> read_path_ref := saved) f

(* Batch programs are shared across engines so the serving layer can
   build them without knowing which engine executes them. *)

type batch_op =
  | B_put of { key : string; value : string }
  | B_get of string
  | B_remove of string
  | B_scan of { lo : string; hi : string; limit : int }

type batch_reply =
  | R_put
  | R_get of string option
  | R_removed of bool
  | R_scan of (string * string) list

let batch_key_of = function
  | B_put { key; _ } | B_get key | B_remove key -> key
  | B_scan { lo; _ } -> lo

module type S = sig
  type t

  val name : string

  val create : ?nbuckets:int -> Spp_access.t -> t
  (** Build a fresh map in the access layer's pool. [nbuckets] sizes
      hash engines; ordered engines ignore it. *)

  val attach : Spp_access.t -> root:Oid.t -> t
  (** Re-attach to an existing map after a pool reopen given its root
      oid ({!root_oid} of the original). Caches start cold. *)

  val root_oid : t -> Oid.t
  (** The single durable handle — park it in the pool root so the map
      survives a restart. *)

  val set_cache : t -> Rcache.t option -> unit
  val cache : t -> Rcache.t option
  val cache_probe : t -> string -> string option
  val cache_invalidate : t -> string -> unit

  val put : t -> key:string -> value:string -> unit
  val get : t -> string -> string option
  val remove : t -> string -> bool
  val count_all : t -> int

  val scan : t -> lo:string -> hi:string -> limit:int -> (string * string) list
  (** Ordered range scan: at most [limit] pairs with [lo <= key <= hi],
      ascending by key. Cache-bypassing — never probes nor fills. *)

  val run_batch : ?len:int -> t -> batch_op array -> batch_reply array
  (** Group-committed batch; replies align with ops by index. Each op
      individually atomic on crash (whole-op-prefix recovery); the
      caller holds the map exclusively for the call. [?len] restricts
      the batch to the first [len] ops — so a caller can reuse one
      grow-only op buffer across drains instead of allocating a fresh
      exactly-sized array per batch (the reply array has [len]
      entries). Defaults to the whole array. *)
end

type spec = (module S)
(** An engine module, before it is given state — what [Shard.create]
    and the registries in {!Engines} traffic in. *)

type packed = Packed : (module S with type t = 'a) * 'a -> packed
(** An engine module paired with one live map. *)

let create ?nbuckets (module E : S) a = Packed ((module E), E.create ?nbuckets a)
let attach (module E : S) a ~root = Packed ((module E), E.attach a ~root)

let spec_name (module E : S) = E.name
let name (Packed ((module E), _)) = E.name
let root_oid (Packed ((module E), t)) = E.root_oid t
let set_cache (Packed ((module E), t)) c = E.set_cache t c
let cache (Packed ((module E), t)) = E.cache t
let cache_probe (Packed ((module E), t)) key = E.cache_probe t key
let cache_invalidate (Packed ((module E), t)) key = E.cache_invalidate t key
let put (Packed ((module E), t)) ~key ~value = E.put t ~key ~value
let get (Packed ((module E), t)) key = E.get t key
let remove (Packed ((module E), t)) key = E.remove t key
let count_all (Packed ((module E), t)) = E.count_all t
let scan (Packed ((module E), t)) ~lo ~hi ~limit = E.scan t ~lo ~hi ~limit
let run_batch ?len (Packed ((module E), t)) ops = E.run_batch ?len t ops

(* Merge per-shard scan results (each already ascending and unique —
   shards partition the key space by hash, so no key appears twice)
   into one ascending list of at most [limit] pairs. *)
let merge_scans ~limit lists =
  let cmp (a, _) (b, _) = String.compare a b in
  let merged = List.fold_left (fun acc l -> List.merge cmp acc l) [] lists in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take limit merged
