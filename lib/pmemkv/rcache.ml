(* rcache — a volatile DRAM read cache fronting the Cmap PM chain walks.

   Real pmemkv keeps a volatile index in front of the persistent leaves
   because every PM access pays pointer-decode plus media latency; our
   reproduction pays the same tax in simulator form (tag decode,
   TLB/region translation, per-hop Space loads) on every get. This cache
   is the DRAM front: a fixed-capacity, power-of-two, set-associative
   map from key to value keyed by the same FNV-1a hash the Cmap buckets
   use, living entirely on the OCaml heap — it never touches the
   simulated Space or Memdev, so it adds no durability events and no
   crash points, and it vanishes on reopen (a reattached map always
   starts cold).

   Concurrency: per-entry sequence stamps, seqlock-style. Writers (fills
   and invalidations) serialize on a small striped mutex array and bump
   the stamp to odd before touching an entry's fields and back to even
   after; readers take no lock at all — they read the stamp, the fields,
   and the stamp again, and treat an odd or changed stamp as a miss.
   OCaml atomics give the publication order the protocol needs, and the
   racy field reads are harmless: key/value are immutable strings, so a
   stale read is a stale pointer, never a torn string, and the stamp
   recheck rejects any cross-generation mix. This is what lets the serve
   layer probe a shard's cache from any submitting domain without taking
   the shard's stripe locks or hopping through its mailbox. *)

type entry = {
  seq : int Atomic.t;       (* even = stable, odd = write in progress *)
  mutable valid : bool;
  mutable key : string;
  mutable value : string;
}

type stats = {
  rc_hits : int;
  rc_misses : int;
  rc_invalidations : int;
  rc_fills : int;
}

let zero_stats = { rc_hits = 0; rc_misses = 0; rc_invalidations = 0;
                   rc_fills = 0 }

let merge_stats l =
  List.fold_left
    (fun acc s ->
      { rc_hits = acc.rc_hits + s.rc_hits;
        rc_misses = acc.rc_misses + s.rc_misses;
        rc_invalidations = acc.rc_invalidations + s.rc_invalidations;
        rc_fills = acc.rc_fills + s.rc_fills })
    zero_stats l

let hit_rate s =
  let probes = s.rc_hits + s.rc_misses in
  if probes = 0 then 0. else float_of_int s.rc_hits /. float_of_int probes

type t = {
  nsets : int;              (* power of two *)
  ways : int;
  entries : entry array;    (* set-major: entries.(set * ways + way) *)
  victim : int array;       (* per-set round-robin eviction hint *)
  wlocks : Mutex.t array;   (* writer striping; readers never lock *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  fills : int Atomic.t;
}

let ways = 4
let nwlocks = 64

(* Same FNV-1a the Cmap buckets use (Cmap.hash aliases this). *)
let hash s =
  let h = ref 0x3bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h land max_int

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ~cap =
  if cap <= 0 then invalid_arg "Rcache.create: capacity must be positive";
  let nsets = pow2_at_least ((cap + ways - 1) / ways) 1 in
  { nsets; ways;
    entries =
      Array.init (nsets * ways) (fun _ ->
        { seq = Atomic.make 0; valid = false; key = ""; value = "" });
    victim = Array.make nsets 0;
    wlocks = Array.init (min nwlocks nsets) (fun _ -> Mutex.create ());
    hits = Atomic.make 0; misses = Atomic.make 0;
    invalidations = Atomic.make 0; fills = Atomic.make 0 }

let capacity t = t.nsets * t.ways

(* The bucket index folds [hash mod nbuckets]; fold the upper bits in
   here instead so set choice and bucket choice stay decorrelated. *)
let set_of t key =
  let h = hash key in
  (h lxor (h lsr 29)) land (t.nsets - 1)

let with_wlock t set f =
  let m = t.wlocks.(set land (Array.length t.wlocks - 1)) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Seqlock write: odd stamp, mutate, even stamp. Caller holds the
   stripe's writer lock. *)
let write_entry e f =
  Atomic.incr e.seq;
  f e;
  Atomic.incr e.seq

(* Lock-free probe. A torn way (odd or moved stamp) reads as a miss for
   that way — the retry is the queued slow path, not a spin. *)
let probe t key =
  let base = set_of t key * t.ways in
  let rec go w =
    if w = t.ways then None
    else begin
      let e = t.entries.(base + w) in
      let s1 = Atomic.get e.seq in
      if s1 land 1 = 1 then go (w + 1)
      else begin
        let valid = e.valid and k = e.key and v = e.value in
        if Atomic.get e.seq <> s1 then go (w + 1)
        else if valid && String.equal k key then Some v
        else go (w + 1)
      end
    end
  in
  match go 0 with
  | Some _ as r -> Atomic.incr t.hits; r
  | None -> Atomic.incr t.misses; None

(* Writer-side scan; safe to read fields plainly under the stripe lock
   because all field writes hold it too. *)
let find_way t base key =
  let rec go w =
    if w = t.ways then None
    else begin
      let e = t.entries.(base + w) in
      if e.valid && String.equal e.key key then Some e else go (w + 1)
    end
  in
  go 0

let insert t key value =
  let set = set_of t key in
  let base = set * t.ways in
  with_wlock t set (fun () ->
    match find_way t base key with
    | Some e -> write_entry e (fun e -> e.value <- value)
    | None ->
      let victim =
        let rec free w =
          if w = t.ways then None
          else if not t.entries.(base + w).valid then Some w
          else free (w + 1)
        in
        match free 0 with
        | Some w -> w
        | None ->
          let w = t.victim.(set) in
          t.victim.(set) <- (w + 1) land (t.ways - 1);
          w
      in
      write_entry t.entries.(base + victim) (fun e ->
        e.valid <- true;
        e.key <- key;
        e.value <- value));
  Atomic.incr t.fills

let invalidate t key =
  let set = set_of t key in
  let base = set * t.ways in
  with_wlock t set (fun () ->
    match find_way t base key with
    | None -> ()
    | Some e ->
      write_entry e (fun e ->
        e.valid <- false;
        e.key <- "";
        e.value <- "");
      Atomic.incr t.invalidations)

let clear t =
  for set = 0 to t.nsets - 1 do
    with_wlock t set (fun () ->
      for w = 0 to t.ways - 1 do
        let e = t.entries.((set * t.ways) + w) in
        if e.valid then
          write_entry e (fun e ->
            e.valid <- false;
            e.key <- "";
            e.value <- "")
      done)
  done

(* Valid-entry count; a test aid, racy by nature when writers run. *)
let live t =
  Array.fold_left (fun n e -> if e.valid then n + 1 else n) 0 t.entries

let stats t =
  { rc_hits = Atomic.get t.hits;
    rc_misses = Atomic.get t.misses;
    rc_invalidations = Atomic.get t.invalidations;
    rc_fills = Atomic.get t.fills }

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.invalidations 0;
  Atomic.set t.fills 0

let pp_stats ppf s =
  Format.fprintf ppf
    "hits=%d misses=%d (%.1f%% hit rate) invalidations=%d fills=%d"
    s.rc_hits s.rc_misses (100. *. hit_rate s) s.rc_invalidations s.rc_fills
