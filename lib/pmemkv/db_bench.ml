(* pmemkv-bench driver (the paper's §VI-B KV-store experiment, based on
   db_bench): four workload mixes over the cmap engine, 16-byte keys,
   1024-byte values, with a preloaded store.

   Thread model: the simulator is a single address space without a real
   multi-socket testbed, so "threads" are logical shards — each shard's
   operation stream runs to completion and is timed; aggregate throughput
   is total_ops / max(shard time). Relative slowdowns at equal thread
   count — the quantity Fig. 5 reports — are preserved (see DESIGN.md). *)

type workload =
  | Update_heavy   (* 50% reads / 50% writes *)
  | Read_heavy     (* 95% reads / 5% writes *)
  | Random_reads
  | Seq_reads

let workload_name = function
  | Update_heavy -> "random reads/writes (50%-50%)"
  | Read_heavy -> "random reads/writes (95%-5%)"
  | Random_reads -> "random reads"
  | Seq_reads -> "sequential reads"

let all_workloads = [ Update_heavy; Read_heavy; Random_reads; Seq_reads ]

let key_of_int i = Printf.sprintf "key%013d" i   (* 16 bytes *)

let value_block = String.init 1024 (fun i -> Char.chr (33 + (i mod 90)))

let preload t ~keys =
  for i = 0 to keys - 1 do
    Cmap.put t ~key:(key_of_int i) ~value:value_block
  done

type result = {
  threads : int;
  total_ops : int;
  elapsed : float;        (* max over shards *)
  median_shard : float;   (* robust per-shard cost estimator *)
  throughput : float;     (* ops/s *)
}

let run_shard t ~seed ~ops ~universe workload =
  let st = Random.State.make [| seed |] in
  let start = Spp_benchlib.Bench_util.now_mono () in
  (match workload with
   | Seq_reads ->
     for i = 0 to ops - 1 do
       ignore (Cmap.get t (key_of_int ((seed + i) mod universe)))
     done
   | Update_heavy | Read_heavy | Random_reads ->
     let write_pct =
       match workload with
       | Update_heavy -> 50
       | Read_heavy -> 5
       | Random_reads | Seq_reads -> 0
     in
     for _ = 1 to ops do
       let k = key_of_int (Random.State.int st universe) in
       if Random.State.int st 100 < write_pct then
         Cmap.put t ~key:k ~value:value_block
       else ignore (Cmap.get t k)
     done);
  Spp_benchlib.Bench_util.now_mono () -. start

let run t ~threads ~ops_per_thread ~universe workload =
  (* measurements on a managed runtime: drain the GC before timing so a
     major collection from the previous configuration does not land in
     this one's window *)
  Gc.full_major ();
  let times =
    List.init threads (fun shard ->
      run_shard t ~seed:(1000 + shard) ~ops:ops_per_thread ~universe workload)
  in
  let elapsed = List.fold_left max 0. times in
  let sorted = Array.of_list (List.sort compare times) in
  let median_shard =
    (* even shard counts: average the two middle elements rather than
       taking the upper one *)
    let n = Array.length sorted in
    if n land 1 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.
  in
  let total_ops = threads * ops_per_thread in
  { threads; total_ops; elapsed; median_shard;
    (* --quick runs can finish below the clock's resolution; clamp the
       divisor so throughput never becomes inf/nan in JSON records *)
    throughput = float_of_int total_ops /. Float.max elapsed 1e-9 }
