(* cmap — the concurrent persistent hashmap engine of pmemkv (the paper's
   §VI-B KV-store benchmark uses pmemkv's non-experimental concurrent
   engine).

   Fixed bucket array in PM; each bucket is a chain of entry objects:

     entry: [ next oid | key len | value len | key bytes | value bytes ]

   Concurrency: striped per-bucket mutexes protect chains for readers and
   writers; write transactions additionally serialize on the pool's
   single undo lane (as PMDK writers contend for lanes). *)

open Spp_pmdk
open Spp_access

type t = {
  a : Spp_access.t;
  nbuckets : int;
  buckets : Oid.t;                 (* array object of oid slots *)
  locks : Mutex.t array;           (* lock striping *)
}

let nstripes = 256

(* Snapshot [len] bytes behind an application pointer. *)
let tx_add (a : Spp_access.t) ptr len =
  let raw = a.ptr_to_int ptr in
  Pool.tx_add_range a.pool ~off:(Pool.off_of_addr a.pool raw) ~len

let f_next = 0
let f_klen (a : Spp_access.t) = a.oid_size
let f_vlen (a : Spp_access.t) = a.oid_size + 8
let f_key (a : Spp_access.t) = a.oid_size + 16
let f_value (a : Spp_access.t) klen = a.oid_size + 16 + klen

let entry_size (a : Spp_access.t) ~klen ~vlen = a.oid_size + 16 + klen + vlen

let hash s =
  (* FNV-1a on 63-bit words *)
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x100000001b3)
    s;
  !h land max_int

let create ?(nbuckets = 4096) (a : Spp_access.t) =
  let buckets =
    Pool.with_tx a.pool (fun () ->
      a.tx_palloc ~zero:true (nbuckets * a.oid_size))
  in
  { a; nbuckets; buckets;
    locks = Array.init nstripes (fun _ -> Mutex.create ()) }

let buckets_oid t = t.buckets

let attach (a : Spp_access.t) ~buckets =
  (* The bucket count is recovered from the array object's durable
     requested size — the oid is all a reopening process needs to keep. *)
  let nbuckets = Pool.alloc_size a.pool buckets / a.oid_size in
  if nbuckets <= 0 then invalid_arg "Cmap.attach: bucket array too small";
  { a; nbuckets; buckets;
    locks = Array.init nstripes (fun _ -> Mutex.create ()) }

let bucket_of t key = hash key mod t.nbuckets

let with_bucket t b f =
  let m = t.locks.(b mod nstripes) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let bucket_slot_ptr t b =
  t.a.gep (t.a.direct t.buckets) (b * t.a.oid_size)

let entry_key t p =
  let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
  Bytes.to_string (t.a.read_bytes (t.a.gep p (f_key t.a)) klen)

let entry_value t p =
  let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
  let vlen = t.a.load_word (t.a.gep p (f_vlen t.a)) in
  Bytes.to_string (t.a.read_bytes (t.a.gep p (f_value t.a klen)) vlen)

let key_matches t p key =
  let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
  klen = String.length key && entry_key t p = key

(* Find the slot pointer referencing the entry for [key] plus the entry
   itself, starting from the bucket slot. *)
let find_slot t slot key =
  let rec go slot_ptr =
    let oid = t.a.load_oid_at slot_ptr in
    if Oid.is_null oid then None
    else begin
      let p = t.a.direct oid in
      if key_matches t p key then Some (slot_ptr, oid, p)
      else go (t.a.gep p f_next)
    end
  in
  go slot

let mk_entry t ~key ~value ~next =
  let klen = String.length key and vlen = String.length value in
  let oid = t.a.tx_palloc (entry_size t.a ~klen ~vlen) in
  let p = t.a.direct oid in
  t.a.store_oid_at (t.a.gep p f_next) next;
  t.a.store_word (t.a.gep p (f_klen t.a)) klen;
  t.a.store_word (t.a.gep p (f_vlen t.a)) vlen;
  t.a.write_string (t.a.gep p (f_key t.a)) key;
  t.a.write_string (t.a.gep p (f_value t.a klen)) value;
  oid

let get t key =
  let b = bucket_of t key in
  with_bucket t b (fun () ->
    match find_slot t (bucket_slot_ptr t b) key with
    | None -> None
    | Some (_, _, p) -> Some (entry_value t p))

let put t ~key ~value =
  let b = bucket_of t key in
  with_bucket t b (fun () ->
    let slot = bucket_slot_ptr t b in
    match find_slot t slot key with
    | Some (slot_ptr, old, p) ->
      let klen = String.length key in
      let old_vlen = t.a.load_word (t.a.gep p (f_vlen t.a)) in
      if old_vlen = String.length value then
        (* overwrite in place, transactionally *)
        Pool.with_tx t.a.pool (fun () ->
          tx_add t.a (t.a.gep p (f_value t.a klen)) old_vlen;
          t.a.write_string (t.a.gep p (f_value t.a klen)) value)
      else
        Pool.with_tx t.a.pool (fun () ->
          let next = t.a.load_oid_at (t.a.gep p f_next) in
          let fresh = mk_entry t ~key ~value ~next in
          tx_add t.a slot_ptr t.a.oid_size;
          t.a.store_oid_at slot_ptr fresh;
          t.a.tx_pfree old)
    | None ->
      Pool.with_tx t.a.pool (fun () ->
        let head = t.a.load_oid_at slot in
        let fresh = mk_entry t ~key ~value ~next:head in
        tx_add t.a slot t.a.oid_size;
        t.a.store_oid_at slot fresh))

let remove t key =
  let b = bucket_of t key in
  with_bucket t b (fun () ->
    match find_slot t (bucket_slot_ptr t b) key with
    | None -> false
    | Some (slot_ptr, oid, p) ->
      Pool.with_tx t.a.pool (fun () ->
        tx_add t.a slot_ptr t.a.oid_size;
        t.a.store_oid_at slot_ptr (t.a.load_oid_at (t.a.gep p f_next));
        t.a.tx_pfree oid);
      true)

let count_all t =
  let n = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let rec go slot_ptr =
      let oid = t.a.load_oid_at slot_ptr in
      if not (Oid.is_null oid) then begin
        incr n;
        go (t.a.gep (t.a.direct oid) f_next)
      end
    in
    go (bucket_slot_ptr t b)
  done;
  !n
