(* cmap — the concurrent persistent hashmap engine of pmemkv (the paper's
   §VI-B KV-store benchmark uses pmemkv's non-experimental concurrent
   engine).

   Fixed bucket array in PM; each bucket is a chain of entry objects:

     entry: [ next oid | key len | value len | key bytes | value bytes ]

   Concurrency: striped per-bucket mutexes protect chains for readers and
   writers; write transactions additionally serialize on the pool's
   single undo lane (as PMDK writers contend for lanes). *)

open Spp_pmdk
open Spp_access
module Space = Spp_sim.Space

type t = {
  a : Spp_access.t;
  nbuckets : int;
  buckets : Oid.t;                 (* array object of oid slots *)
  locks : Mutex.t array;           (* lock striping *)
  mutable cache : Rcache.t option; (* volatile DRAM read cache *)
}

let name = "cmap"

let nstripes = 256

(* Snapshot [len] bytes behind an application pointer. *)
let tx_add (a : Spp_access.t) ptr len =
  let raw = a.ptr_to_int ptr in
  Pool.tx_add_range a.pool ~off:(Pool.off_of_addr a.pool raw) ~len

let f_next = 0
let f_klen (a : Spp_access.t) = a.oid_size
let f_vlen (a : Spp_access.t) = a.oid_size + 8
let f_key (a : Spp_access.t) = a.oid_size + 16
let f_value (a : Spp_access.t) klen = a.oid_size + 16 + klen

let entry_size (a : Spp_access.t) ~klen ~vlen = a.oid_size + 16 + klen + vlen

(* FNV-1a on 63-bit words; shared with the read cache's set index. *)
let hash = Rcache.hash

let create ?(nbuckets = 4096) (a : Spp_access.t) =
  let buckets =
    Pool.with_tx a.pool (fun () ->
      a.tx_palloc ~zero:true (nbuckets * a.oid_size))
  in
  { a; nbuckets; buckets;
    locks = Array.init nstripes (fun _ -> Mutex.create ());
    cache = None }

let buckets_oid t = t.buckets
let root_oid = buckets_oid

let attach (a : Spp_access.t) ~buckets =
  (* The bucket count is recovered from the array object's durable
     requested size — the oid is all a reopening process needs to keep.
     The cache is volatile by design: a reopened map always starts cold
     (attach a fresh one with [set_cache] if wanted). *)
  let nbuckets = Pool.alloc_size a.pool buckets / a.oid_size in
  if nbuckets <= 0 then invalid_arg "Cmap.attach: bucket array too small";
  { a; nbuckets; buckets;
    locks = Array.init nstripes (fun _ -> Mutex.create ());
    cache = None }

let set_cache t c = t.cache <- c
let cache t = t.cache

(* Probe without touching PM — the serve layer's fast path calls this
   from submitting domains, where the shard's simulator state (Space
   stats, Memdev) must not be mutated. *)
let cache_probe t key =
  match t.cache with None -> None | Some rc -> Rcache.probe rc key

let cache_invalidate t key =
  match t.cache with None -> () | Some rc -> Rcache.invalidate rc key

let bucket_of t key = hash key mod t.nbuckets

let with_bucket t b f =
  let m = t.locks.(b mod nstripes) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let bucket_slot_ptr t b =
  t.a.gep (t.a.direct t.buckets) (b * t.a.oid_size)

(* Entry readers exist in two forms selected by [Engine.read_path]:

   - the lease path (default): single-copy reads ([read_sub] /
     [Space.lease_string] freeze a fresh buffer) and device-side key
     comparison — no candidate key is ever materialized on a chain walk;
   - the copying path: the pre-lease reference — [read_bytes] +
     [Bytes.to_string] double copies, one pointer check per access —
     kept selectable for before/after benchmarking. *)

let entry_key_copying t p =
  let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
  Bytes.to_string (t.a.read_bytes (t.a.gep p (f_key t.a)) klen)

let entry_value_copying t p =
  let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
  let vlen = t.a.load_word (t.a.gep p (f_vlen t.a)) in
  Bytes.to_string (t.a.read_bytes (t.a.gep p (f_value t.a klen)) vlen)

let entry_key t p =
  match Engine.read_path () with
  | Engine.Copying -> entry_key_copying t p
  | Engine.Lease ->
    let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
    t.a.read_sub (t.a.gep p (f_key t.a)) klen

let entry_value t p =
  match Engine.read_path () with
  | Engine.Copying -> entry_value_copying t p
  | Engine.Lease ->
    let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
    let vlen = t.a.load_word (t.a.gep p (f_vlen t.a)) in
    t.a.read_sub (t.a.gep p (f_value t.a klen)) vlen

let key_matches t p key =
  let klen = t.a.load_word (t.a.gep p (f_klen t.a)) in
  klen = String.length key
  && (match Engine.read_path () with
      | Engine.Copying -> entry_key_copying t p = key
      | Engine.Lease ->
        (* compare against the device view through a leased window:
           one hoisted check, no materialized candidate *)
        klen = 0
        || Space.view_equal_string
             (t.a.view (t.a.gep p (f_key t.a)) klen)
             ~off:0 key)

(* Find the slot pointer referencing the entry for [key] plus the entry
   itself, starting from the bucket slot. *)
let find_slot t slot key =
  let rec go slot_ptr =
    let oid = t.a.load_oid_at slot_ptr in
    if Oid.is_null oid then None
    else begin
      let p = t.a.direct oid in
      if key_matches t p key then Some (slot_ptr, oid, p)
      else go (t.a.gep p f_next)
    end
  in
  go slot

(* The zero-copy get walk: per entry one leased view over the header
   (next oid + lengths, read raw after one hoisted check) and — only
   when the key length matches — one leased view over key+value, which
   serves both the device-side compare and the single-copy value read.
   Under SPP that is two masked-tag checks per matching entry instead
   of one hook per access, and within each window the reads are bare
   offsets into the pinned device view. *)
let find_value_lease t slot key =
  let hdr_len = t.a.oid_size + 16 in
  let klen_q = String.length key in
  let rec go oid =
    if Oid.is_null oid then None
    else begin
      let p = t.a.direct oid in
      let size = oid.Oid.size in
      if size > 0 then begin
        (* SPP-mode fast path: the oid's durable size field (paper
           §IV-B) bounds the whole object, so one hoisted check opens a
           window over the entire entry — header, key and value — and
           every read of the visit is raw. *)
        let ev = t.a.view p size in
        let klen = Space.view_word ev (f_klen t.a) in
        if klen = klen_q && Space.view_equal_string ev ~off:(f_key t.a) key
        then
          let vlen = Space.view_word ev (f_vlen t.a) in
          Some (Space.view_string ev ~off:(f_value t.a klen) ~len:vlen)
        else go (Pool.view_load_oid t.a.pool ev ~off:f_next)
      end
      else begin
        (* Native-mode oids carry no size: two windows per visit —
           header first, then key+value once the length is known.
           ([f_next] is 0, so the entry pointer doubles as the header
           window base.) *)
        let hdr = t.a.view p hdr_len in
        let klen = Space.view_word hdr (f_klen t.a) in
        if klen <> klen_q then go (Pool.view_load_oid t.a.pool hdr ~off:f_next)
        else begin
          let vlen = Space.view_word hdr (f_vlen t.a) in
          if klen + vlen = 0 then Some "" (* empty key matched, empty value *)
          else begin
            let kv = t.a.view (t.a.gep p (f_key t.a)) (klen + vlen) in
            if Space.view_equal_string kv ~off:0 key then
              Some (Space.view_string kv ~off:klen ~len:vlen)
            else go (Pool.view_load_oid t.a.pool hdr ~off:f_next)
          end
        end
      end
    end
  in
  go (t.a.load_oid_at slot)

let mk_entry t ~key ~value ~next =
  let klen = String.length key and vlen = String.length value in
  let oid = t.a.tx_palloc (entry_size t.a ~klen ~vlen) in
  let p = t.a.direct oid in
  t.a.store_oid_at (t.a.gep p f_next) next;
  t.a.store_word (t.a.gep p (f_klen t.a)) klen;
  t.a.store_word (t.a.gep p (f_vlen t.a)) vlen;
  t.a.write_string (t.a.gep p (f_key t.a)) key;
  t.a.write_string (t.a.gep p (f_value t.a klen)) value;
  oid

let get t key =
  match cache_probe t key with
  | Some _ as hit -> hit
  | None ->
    let b = bucket_of t key in
    with_bucket t b (fun () ->
      let v =
        match Engine.read_path () with
        | Engine.Lease -> find_value_lease t (bucket_slot_ptr t b) key
        | Engine.Copying ->
          (match find_slot t (bucket_slot_ptr t b) key with
           | None -> None
           | Some (_, _, p) -> Some (entry_value_copying t p))
      in
      (* Fill while still holding the bucket stripe: a same-key writer
         serializes on it, so a stale value can never be resurrected
         over a newer put. *)
      (match (v, t.cache) with
       | Some v, Some rc -> Rcache.insert rc key v
       | _ -> ());
      v)

let put t ~key ~value =
  let b = bucket_of t key in
  with_bucket t b (fun () ->
    (* Write-through invalidation, before the mutation commits: readers
       fall through to PM (and wait on this stripe) rather than ever
       seeing the cache ahead of — or behind — the durable state. *)
    cache_invalidate t key;
    let slot = bucket_slot_ptr t b in
    match find_slot t slot key with
    | Some (slot_ptr, old, p) ->
      let klen = String.length key in
      let old_vlen = t.a.load_word (t.a.gep p (f_vlen t.a)) in
      if old_vlen = String.length value then
        (* overwrite in place, transactionally *)
        Pool.with_tx t.a.pool (fun () ->
          tx_add t.a (t.a.gep p (f_value t.a klen)) old_vlen;
          t.a.write_string (t.a.gep p (f_value t.a klen)) value)
      else
        Pool.with_tx t.a.pool (fun () ->
          let next = t.a.load_oid_at (t.a.gep p f_next) in
          let fresh = mk_entry t ~key ~value ~next in
          tx_add t.a slot_ptr t.a.oid_size;
          t.a.store_oid_at slot_ptr fresh;
          t.a.tx_pfree old)
    | None ->
      Pool.with_tx t.a.pool (fun () ->
        let head = t.a.load_oid_at slot in
        let fresh = mk_entry t ~key ~value ~next:head in
        tx_add t.a slot t.a.oid_size;
        t.a.store_oid_at slot fresh))

let remove t key =
  let b = bucket_of t key in
  with_bucket t b (fun () ->
    cache_invalidate t key;
    match find_slot t (bucket_slot_ptr t b) key with
    | None -> false
    | Some (slot_ptr, oid, p) ->
      Pool.with_tx t.a.pool (fun () ->
        tx_add t.a slot_ptr t.a.oid_size;
        t.a.store_oid_at slot_ptr (t.a.load_oid_at (t.a.gep p f_next));
        t.a.tx_pfree oid);
      true)

(* Clip an unordered (key, value) accumulation to the scan contract:
   ascending by key, at most [limit] pairs. *)
let clip_scan ~limit acc =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) acc in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take limit sorted

(* Ordered range scan over a hash layout: walk every bucket chain,
   keep the in-range pairs, sort. O(total entries) regardless of the
   range width — the price of scanning an unordered engine, and the
   baseline the ordered [Bmap] engine exists to beat. Cache-bypassing
   by contract: scans neither probe nor fill the read cache. *)
let scan t ~lo ~hi ~limit =
  if limit <= 0 || hi < lo then []
  else begin
    let acc = ref [] in
    (* Lease walk: one whole-entry window per chain link (the SPP oid's
       durable size bounds it), range-tested against the device view so
       out-of-range entries are never materialized. *)
    let rec go_lease oid =
      if not (Oid.is_null oid) then begin
        let p = t.a.direct oid in
        if oid.Oid.size > 0 then begin
          let ev = t.a.view p oid.Oid.size in
          let klen = Space.view_word ev (f_klen t.a) in
          let koff = f_key t.a in
          if
            Space.view_compare_string ev ~off:koff ~len:klen lo >= 0
            && Space.view_compare_string ev ~off:koff ~len:klen hi <= 0
          then begin
            let vlen = Space.view_word ev (f_vlen t.a) in
            let k = Space.view_string ev ~off:koff ~len:klen in
            let v = Space.view_string ev ~off:(f_value t.a klen) ~len:vlen in
            acc := (k, v) :: !acc
          end;
          go_lease (Pool.view_load_oid t.a.pool ev ~off:f_next)
        end
        else begin
          let k = entry_key t p in
          if lo <= k && k <= hi then acc := (k, entry_value t p) :: !acc;
          go_lease (t.a.load_oid_at (t.a.gep p f_next))
        end
      end
    in
    let rec go slot_ptr =
      let oid = t.a.load_oid_at slot_ptr in
      if not (Oid.is_null oid) then begin
        let p = t.a.direct oid in
        let k = entry_key t p in
        if lo <= k && k <= hi then acc := (k, entry_value t p) :: !acc;
        go (t.a.gep p f_next)
      end
    in
    for b = 0 to t.nbuckets - 1 do
      with_bucket t b (fun () ->
        match Engine.read_path () with
        | Engine.Lease -> go_lease (t.a.load_oid_at (bucket_slot_ptr t b))
        | Engine.Copying -> go (bucket_slot_ptr t b))
    done;
    clip_scan ~limit !acc
  end

(* ------------------------------------------------------------------ *)
(* Group-committed multi-op entry point                                 *)
(* ------------------------------------------------------------------ *)

(* [run_batch] executes a whole array of operations inside one
   [Pool.with_batch]: every op's redo entries (slot publication,
   allocator updates, frees) ride a shared staged log and the fence
   schedule is paid once per sub-batch instead of once per op. The ops
   are individually atomic on crash — recovery lands on a prefix of
   whole ops — because entries only join the log at op boundaries.

   This is engine-internal code operating on pool offsets, like
   libpmemobj's own log machinery: it does not travel through the tagged
   access-layer pointers (the paper instruments application code, not
   PMDK internals), so SPP hook counts are untouched by the batched
   path. Two structural differences from the synchronous ops above,
   both forced by deferred application: a put always replaces the entry
   out of place (an in-place value overwrite would tear the durable
   pre-state before the batch commits), and reads of chain metadata go
   through the batch overlay so later ops observe earlier ones.

   The caller must hold the map exclusively for the duration — stripe
   locks are useless here because the commit applies staged words after
   the per-op critical sections — which is exactly what the per-shard
   serve queue provides. *)

type batch_op = Engine.batch_op =
  | B_put of { key : string; value : string }
  | B_get of string
  | B_remove of string
  | B_scan of { lo : string; hi : string; limit : int }

type batch_reply = Engine.batch_reply =
  | R_put
  | R_get of string option
  | R_removed of bool
  | R_scan of (string * string) list

let batch_key_of = Engine.batch_key_of

(* Entry field reads through the overlay. Key/value bytes are never
   staged (fresh entries write them directly while unreachable), so byte
   reads go straight to the space — single-copy [Space.read_sub] on the
   lease path, with the key compared against the device view instead of
   materialized (the pre-lease double-copy reads survive only behind
   [Engine.Copying], as the before/after reference). *)

let b_entry_key t bt eoff =
  let p = t.a.pool in
  let klen = Pool.batch_load_word p bt ~off:(eoff + f_klen t.a) in
  let addr = Pool.addr_of_off p (eoff + f_key t.a) in
  match Engine.read_path () with
  | Engine.Copying ->
    Bytes.to_string (Space.read_bytes (Pool.space p) addr klen)
  | Engine.Lease -> Space.read_sub (Pool.space p) addr klen

let b_entry_value t bt eoff =
  let p = t.a.pool in
  let klen = Pool.batch_load_word p bt ~off:(eoff + f_klen t.a) in
  let vlen = Pool.batch_load_word p bt ~off:(eoff + f_vlen t.a) in
  let addr = Pool.addr_of_off p (eoff + f_value t.a klen) in
  match Engine.read_path () with
  | Engine.Copying ->
    Bytes.to_string (Space.read_bytes (Pool.space p) addr vlen)
  | Engine.Lease -> Space.read_sub (Pool.space p) addr vlen

let b_key_matches t bt eoff key =
  Pool.batch_load_word t.a.pool bt ~off:(eoff + f_klen t.a)
  = String.length key
  && (match Engine.read_path () with
      | Engine.Copying -> b_entry_key t bt eoff = key
      | Engine.Lease ->
        Space.equal_string (Pool.space t.a.pool)
          (Pool.addr_of_off t.a.pool (eoff + f_key t.a)) key)

(* Slot offset (pool offset of the oid slot pointing at the entry) plus
   the entry's oid, walking the chain as the batch sees it. *)
let b_find_slot t bt slot_off key =
  let p = t.a.pool in
  let rec go slot_off =
    let oid = Pool.batch_load_oid p bt ~off:slot_off in
    if Oid.is_null oid then None
    else if b_key_matches t bt oid.Oid.off key then Some (slot_off, oid)
    else go (oid.Oid.off + f_next)
  in
  go slot_off

let bucket_slot_off t b = t.buckets.Oid.off + (b * t.a.oid_size)

(* Fresh entry: allocate through the batch, then write the fields
   directly — the block is unreachable until the staged slot oid
   commits — and flush the whole entry once; the commit's first fence
   drains it before the log becomes valid. *)
let b_mk_entry t bt ~key ~value ~next =
  let p = t.a.pool in
  let klen = String.length key and vlen = String.length value in
  let size = entry_size t.a ~klen ~vlen in
  let oid = Pool.batch_alloc p bt ~size in
  let eoff = oid.Oid.off in
  Pool.store_oid p ~off:(eoff + f_next) next;
  Pool.store_word p ~off:(eoff + f_klen t.a) klen;
  Pool.store_word p ~off:(eoff + f_vlen t.a) vlen;
  let space = Pool.space p in
  Spp_sim.Space.write_string space (Pool.addr_of_off p (eoff + f_key t.a)) key;
  Spp_sim.Space.write_string space
    (Pool.addr_of_off p (eoff + f_value t.a klen)) value;
  Spp_sim.Space.flush space (Pool.addr_of_off p eoff) size;
  (* the entry bytes bypassed the log: ship them with the commit *)
  Pool.batch_note_write p bt ~off:eoff ~len:size;
  oid

let b_put t bt ~key ~value =
  let p = t.a.pool in
  let slot = bucket_slot_off t (bucket_of t key) in
  Redo.batch_op_begin bt;
  (* Invalidate at stage time, before the deferred commit: a concurrent
     fast-path reader must never observe a value newer than the durable
     state allows under the whole-op-prefix guarantee, and the stale
     pre-batch entry must die before this op's staged words exist. *)
  cache_invalidate t key;
  (match b_find_slot t bt slot key with
   | Some (slot_off, old) ->
     let next = Pool.batch_load_oid p bt ~off:(old.Oid.off + f_next) in
     let fresh = b_mk_entry t bt ~key ~value ~next in
     Pool.batch_stage_oid p bt ~off:slot_off fresh;
     Pool.batch_free p bt old
   | None ->
     let head = Pool.batch_load_oid p bt ~off:slot in
     let fresh = b_mk_entry t bt ~key ~value ~next:head in
     Pool.batch_stage_oid p bt ~off:slot fresh);
  Redo.batch_op_end bt

let b_get t bt key =
  let slot = bucket_slot_off t (bucket_of t key) in
  Redo.batch_op_begin bt;
  let r =
    match b_find_slot t bt slot key with
    | None -> None
    | Some (_, oid) -> Some (b_entry_value t bt oid.Oid.off)
  in
  Redo.batch_op_end bt;
  r

(* Batched scan: the same full-chain walk as [scan] but through the
   batch overlay, so a scan placed after a put/remove in the same
   batch observes it. Read-only — stages nothing, touches no cache. *)
let b_scan t bt ~lo ~hi ~limit =
  Redo.batch_op_begin bt;
  let r =
    if limit <= 0 || hi < lo then []
    else begin
      let p = t.a.pool in
      let acc = ref [] in
      for b = 0 to t.nbuckets - 1 do
        let rec go slot_off =
          let oid = Pool.batch_load_oid p bt ~off:slot_off in
          if not (Oid.is_null oid) then begin
            let eoff = oid.Oid.off in
            let k = b_entry_key t bt eoff in
            if lo <= k && k <= hi then acc := (k, eoff) :: !acc;
            go (eoff + f_next)
          end
        in
        go (bucket_slot_off t b)
      done;
      (* Deferred value assembly: sort and clip on keys alone, then
         materialize values only for the surviving entries — a clipped
         scan no longer pays a value-string allocation per in-range
         entry it will never return. Safe to defer because the caller
         holds the map exclusively for the batch, so no entry can be
         freed between the walk and the assembly. *)
      let sorted =
        List.sort (fun (a, _) (b, _) -> String.compare a b) !acc
      in
      let rec take n = function
        | (k, eoff) :: tl when n > 0 ->
          (k, b_entry_value t bt eoff) :: take (n - 1) tl
        | _ -> []
      in
      take limit sorted
    end
  in
  Redo.batch_op_end bt;
  r

let b_remove t bt key =
  let p = t.a.pool in
  let slot = bucket_slot_off t (bucket_of t key) in
  Redo.batch_op_begin bt;
  cache_invalidate t key;
  let r =
    match b_find_slot t bt slot key with
    | None -> false
    | Some (slot_off, oid) ->
      let next = Pool.batch_load_oid p bt ~off:(oid.Oid.off + f_next) in
      Pool.batch_stage_oid p bt ~off:slot_off next;
      Pool.batch_free p bt oid;
      true
  in
  Redo.batch_op_end bt;
  r

let run_batch ?len t ops =
  let n =
    match len with
    | None -> Array.length ops
    | Some l ->
      if l < 0 || l > Array.length ops then
        invalid_arg "Cmap.run_batch: len out of range";
      l
  in
  let replies =
    Pool.with_batch t.a.pool (fun bt ->
      Array.init n (fun i ->
        match ops.(i) with
        | B_put { key; value } -> b_put t bt ~key ~value; R_put
        | B_get key -> R_get (b_get t bt key)
        | B_remove key -> R_removed (b_remove t bt key)
        | B_scan { lo; hi; limit } -> R_scan (b_scan t bt ~lo ~hi ~limit)))
  in
  (* The batch is committed: everything the ops read or wrote is durable
     now, so replay their cache effects in op order — a get fills the
     value it returned, a put fills the value it made durable, a remove
     drops the key. Replay order makes a later same-key mutation win
     over an earlier get's fill, so no stale value is resurrected. On a
     crash the exception propagates before this point and only the eager
     stage-time invalidations remain — conservative, never wrong. *)
  (match t.cache with
   | None -> ()
   | Some rc ->
     for i = 0 to n - 1 do
       match (ops.(i), replies.(i)) with
       | B_get key, R_get (Some v) -> Rcache.insert rc key v
       | B_get _, _ -> ()
       | B_put { key; value }, _ -> Rcache.insert rc key value
       | B_remove key, _ -> Rcache.invalidate rc key
       | B_scan _, _ -> ()
     done);
  replies

let count_all t =
  let n = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let rec go slot_ptr =
      let oid = t.a.load_oid_at slot_ptr in
      if not (Oid.is_null oid) then begin
        incr n;
        go (t.a.gep (t.a.direct oid) f_next)
      end
    in
    go (bucket_slot_ptr t b)
  done;
  !n
