(** Byte-addressable memory device with an explicit durability model.

    A device has a {e view} (what loads and stores observe — i.e. including
    CPU caches) and, for persistent devices, a {e durable image} (what
    survives a crash). With store tracking enabled, a store only reaches the
    durable image after it has been flushed ([CLWB]) and drained by a fence
    ([SFENCE]) — the regime used by crash simulation and the
    pmemcheck-style checker. With tracking disabled (the benchmark fast
    path) stores are considered immediately durable. *)

type t

val cacheline : int
(** Cacheline size in bytes (64); flush granularity. *)

(** {1 Tracking engines}

    Two interchangeable implementations of the tracking-mode pending
    set. [Line_indexed] (the default) keeps a cacheline-keyed dirty
    table plus growable-array journals: a flush touches only the
    covered lines' buckets and a fence drains an ordered queue —
    O(lines) and O(drained log drained) instead of O(pending).
    [List_based] is the original single-list engine, kept selectable
    for differential testing and before/after benchmarking. Both
    produce bit-identical durable images and traces. *)

type tracking_engine =
  | Line_indexed
  | List_based

val set_default_engine : tracking_engine -> unit
(** Engine given to devices created afterwards (process-wide). *)

val default_engine : unit -> tracking_engine

val with_default_engine : tracking_engine -> (unit -> 'a) -> 'a
(** [with_default_engine e f] runs [f] with [e] as the process-wide
    default engine and restores the previous default on any exit path
    (normal return or exception) — the leak-proof form of
    {!set_default_engine} for differential suites. *)

val engine : t -> tracking_engine

val set_engine : t -> tracking_engine -> unit
(** Switch this device's engine. Raises [Invalid_argument] if tracking
    is on and stores are still buffered — switch at a quiescent point
    (after a fence, a crash, or before enabling tracking). *)

(** {1 Construction} *)

val create_volatile : name:string -> int -> t
(** [create_volatile ~name size] — DRAM-like device, no durable image. *)

val create_persistent : name:string -> int -> t
(** [create_persistent ~name size] — PM-like device with a durable image. *)

val name : t -> string
val size : t -> int
val is_persistent : t -> bool

val set_tracking : t -> bool -> unit
(** Enable/disable store tracking. Disabling synchronizes the durable image
    with the view and clears pending stores and the trace. Raises
    [Invalid_argument] when enabling on a volatile device. *)

(** {1 Loads and stores}

    All offsets are device-relative; range violations raise
    [Invalid_argument] (address-space faults are the job of {!Space}). *)

val load_bytes : t -> off:int -> len:int -> Bytes.t
val load_into : t -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
val store_bytes : t -> off:int -> Bytes.t -> src_off:int -> len:int -> unit
val store_string : t -> off:int -> string -> unit
val fill : t -> off:int -> len:int -> char -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Device-level copy, memmove-safe for overlapping ranges on one
    device. Checks the source for bad blocks like a load, then lands on
    the destination with full store semantics (durability tracking,
    injector event, power-off discard) — without materializing an
    intermediate buffer the way a load/store pair would. *)

(** Allocation-free typed stores (hot paths). *)

val store_u8 : t -> off:int -> int -> unit
val store_u16 : t -> off:int -> int -> unit
val store_u32 : t -> off:int -> int -> unit
val store_word : t -> off:int -> int -> unit

val unsafe_view : t -> Bytes.t
(** Direct access to the view buffer, for fast typed accessors in {!Space}.
    Mutations through it bypass durability tracking. *)

val unsafe_durable : t -> Bytes.t option

(** {1 Durability} *)

val flush : t -> off:int -> len:int -> unit
(** CLWB: mark pending stores intersecting the cacheline-expanded range as
    flushed. Durable only after the next {!fence}. *)

val fence : t -> unit
(** SFENCE: drain flushed pending stores to the durable image, in program
    order. *)

val persist : t -> off:int -> len:int -> unit
(** [flush] followed by [fence] — PMDK's [pmem_persist]. *)

(** {1 Fault injection}

    Hooks for the torture harness: a pluggable injector observes every
    durability event; bad blocks model uncorrectable media errors
    (SIGBUS on load, the hardware fault-delivery model Memory Tagging
    relies on); {!corrupt_durable} models silent media bit rot. *)

type hook_event =
  | Hk_store of { off : int; len : int }
  | Hk_flush of { off : int; len : int }
  | Hk_fence

val set_injector : t -> (hook_event -> unit) option -> unit
(** Install (or clear) the injector, called after every store, flush and
    fence has taken effect. An injector that raises models a power
    failure at exactly that event; it may also poison the device through
    {!corrupt_durable}/{!add_bad_block}. *)

val add_bad_block : t -> off:int -> len:int -> unit
(** Mark a region as failed media: any load intersecting it raises
    [Fault.Fault (Bus_error, addr)]. Stores still land (real PM accepts
    writes to relocated bad blocks). *)

val clear_bad_blocks : t -> unit
val bad_blocks : t -> (int * int) list

val check_load : t -> off:int -> len:int -> unit
(** Raise [Bus_error] if the range intersects a bad block. Exposed for
    {!Space}'s direct-view fast paths. *)

val corrupt_durable : t -> off:int -> bit:int -> unit
(** Flip bit [bit land 7] of the durable byte at [off] (and its view
    mirror) — a seeded-bit-rot primitive for media-fault torture. *)

val power_off : t -> unit
(** Freeze the device at the instant of a simulated power failure: every
    subsequent store, flush and fence is silently discarded until
    {!crash} restarts it. An injector calls this before raising so that
    the dying process's unwind handlers (e.g. a transaction abort) cannot
    tidy the media post-mortem. *)

val is_powered_off : t -> bool

(** {1 Crash simulation} *)

type store_rec

val crash : t -> unit
(** Power failure: the view is reset to the durable image; pending stores
    are lost. A volatile device is zeroed. *)

val pending_stores : t -> store_rec list
(** Stores not yet drained to the durable image, in program order. *)

val crash_applying : t -> store_rec list -> unit
(** [crash_applying t subset] — crash where the chosen subset of pending
    stores happened to reach the media first (pmreorder exploration). *)

val unflushed_pending : t -> store_rec list

(** {1 Trace and accounting} *)

type event =
  | Ev_store of { off : int; len : int; data : Bytes.t }
  | Ev_flush of { off : int; len : int }
  | Ev_fence

val trace : t -> event list
(** Program-order event trace (tracking mode only). *)

val clear_trace : t -> unit

type counters = {
  stores : int;
  flushes : int;
  fences : int;
  batched_ops : int;   (** operations that rode a group commit *)
  fences_saved : int;  (** fences a one-commit-per-op execution would have added *)
}

val counters : t -> counters
val reset_counters : t -> unit

val note_batch : t -> ops:int -> fences_saved:int -> unit
(** Credit a group commit covering [ops] operations that avoided
    [fences_saved] fences versus committing each op separately. Called by
    the redo batch layer; purely accounting, no durability effect. *)

val merge_counters : counters list -> counters
(** Fieldwise sum over a set of per-shard devices. *)

val of_image : name:string -> Bytes.t -> t
(** Device whose durable image and view both start as a copy of the given
    bytes — used by the pmreorder-style crash-state explorer. *)

val durable_snapshot : t -> Bytes.t
(** Copy of the current durable image. *)

(** {1 Host-file persistence} *)

val save_durable : t -> string -> unit
(** Write the durable image to a host file (a pool file as under
    [/mnt/pmem]). *)

val load_durable : name:string -> ?min_size:int -> ?magic:int -> string -> t
(** Recreate a persistent device from a pool file. Raises
    [Invalid_argument] with a descriptive message when the file is
    smaller than [min_size] (default 16 — one magic word plus change) or
    when [magic] is given and the first little-endian word differs —
    catching truncated and foreign files before they decode as garbage
    downstream. *)
