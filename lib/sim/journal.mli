(** Growable-array journal: append-only sequence in program order.

    The backing store doubles on overflow (O(1) amortized push). Used by
    {!Memdev} for the tracking-mode store journal and the event trace,
    where elements are appended in program order and consumed either by
    in-order iteration or by a bulk conversion at a quiescent point. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val clear : 'a t -> unit
(** Empty the journal and release the backing store. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order —
    the compaction primitive for journals that mark elements dead
    (fenced) faster than they are cleared. *)

val exists : ('a -> bool) -> 'a t -> bool
