(* Simulated virtual address space.

   Regions map address ranges onto memory devices. Translation of an
   address not covered by any region raises a fault — this is the
   mechanism SPP's implicit bounds check relies on: an overflown tagged
   pointer decodes to a huge address that no region covers.

   Translation pipeline: regions live in a sorted array searched by
   binary search, fronted by a small direct-mapped software TLB keyed by
   address page. A TLB entry is installed only when its whole page lies
   inside one region, so a region boundary mid-page can never be masked
   by a hit; map/unmap invalidate the TLB wholesale (they are rare). *)

type kind =
  | Volatile
  | Persistent

type region = {
  base : int;
  rsize : int;
  dev : Memdev.t;
  dev_off : int;
  kind : kind;
  rname : string;
}

type stats = {
  mutable pm_loads : int;
  mutable pm_stores : int;
  mutable vol_loads : int;
  mutable vol_stores : int;
  mutable pm_bytes_loaded : int;
  mutable pm_bytes_stored : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
}

(* Direct-mapped TLB geometry: 64 entries over 4 KiB pages. *)
let page_bits = 12
let tlb_bits = 6
let tlb_size = 1 lsl tlb_bits

type t = {
  mutable regions : region array;   (* sorted by base, ascending *)
  tlb_pages : int array;            (* page tag per slot; -1 = invalid *)
  tlb_regs : region option array;
  stats : stats;
  mutable epoch : int;              (* bumped on map/unmap; stales leases *)
}

let create () =
  { regions = [||];
    tlb_pages = Array.make tlb_size (-1);
    tlb_regs = Array.make tlb_size None;
    stats = { pm_loads = 0; pm_stores = 0; vol_loads = 0; vol_stores = 0;
              pm_bytes_loaded = 0; pm_bytes_stored = 0;
              tlb_hits = 0; tlb_misses = 0 };
    epoch = 0 }

let stats t = t.stats

(* Stats snapshot/merge: the shard router gives every domain its own
   Space, so per-shard stats records are mutated race-free and summed
   only after the domains have joined. *)

let zero_stats () =
  { pm_loads = 0; pm_stores = 0; vol_loads = 0; vol_stores = 0;
    pm_bytes_loaded = 0; pm_bytes_stored = 0; tlb_hits = 0; tlb_misses = 0 }

let snapshot_stats t =
  let s = t.stats in
  { pm_loads = s.pm_loads; pm_stores = s.pm_stores;
    vol_loads = s.vol_loads; vol_stores = s.vol_stores;
    pm_bytes_loaded = s.pm_bytes_loaded; pm_bytes_stored = s.pm_bytes_stored;
    tlb_hits = s.tlb_hits; tlb_misses = s.tlb_misses }

let add_stats ~into s =
  into.pm_loads <- into.pm_loads + s.pm_loads;
  into.pm_stores <- into.pm_stores + s.pm_stores;
  into.vol_loads <- into.vol_loads + s.vol_loads;
  into.vol_stores <- into.vol_stores + s.vol_stores;
  into.pm_bytes_loaded <- into.pm_bytes_loaded + s.pm_bytes_loaded;
  into.pm_bytes_stored <- into.pm_bytes_stored + s.pm_bytes_stored;
  into.tlb_hits <- into.tlb_hits + s.tlb_hits;
  into.tlb_misses <- into.tlb_misses + s.tlb_misses

let merge_stats l =
  let m = zero_stats () in
  List.iter (fun s -> add_stats ~into:m s) l;
  m

let reset_stats t =
  t.stats.pm_loads <- 0; t.stats.pm_stores <- 0;
  t.stats.vol_loads <- 0; t.stats.vol_stores <- 0;
  t.stats.pm_bytes_loaded <- 0; t.stats.pm_bytes_stored <- 0;
  t.stats.tlb_hits <- 0; t.stats.tlb_misses <- 0

let tlb_invalidate t =
  Array.fill t.tlb_pages 0 tlb_size (-1);
  Array.fill t.tlb_regs 0 tlb_size None

let overlaps a b =
  a.base < b.base + b.rsize && b.base < a.base + a.rsize

let map t ~base ~size ?(dev_off = 0) ~kind ~name dev =
  if base < 0 || size <= 0 then invalid_arg "Space.map: bad range";
  if dev_off < 0 || dev_off + size > Memdev.size dev then
    invalid_arg "Space.map: range exceeds device";
  let r = { base; rsize = size; dev; dev_off; kind; rname = name } in
  Array.iter
    (fun r' ->
      if overlaps r r' then
        invalid_arg
          (Printf.sprintf "Space.map: region %s overlaps %s" name r'.rname))
    t.regions;
  let arr = Array.append t.regions [| r |] in
  Array.sort (fun a b -> compare a.base b.base) arr;
  t.regions <- arr;
  tlb_invalidate t;
  t.epoch <- t.epoch + 1

let unmap t ~base =
  tlb_invalidate t;
  t.epoch <- t.epoch + 1;
  let keep =
    Array.of_list
      (List.filter (fun r -> r.base <> base) (Array.to_list t.regions))
  in
  if Array.length keep = Array.length t.regions then
    invalid_arg "Space.unmap: no region at this base";
  t.regions <- keep

let regions t = Array.to_list t.regions

let region_name r = r.rname
let region_base r = r.base
let region_size r = r.rsize
let region_kind r = r.kind
let region_dev r = r.dev

(* Binary search for the region containing [addr]; fills the TLB slot
   when the page is wholly covered. *)
let find_region_slow t addr page slot =
  t.stats.tlb_misses <- t.stats.tlb_misses + 1;
  let arr = t.regions in
  (* greatest index whose base <= addr *)
  let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if (Array.unsafe_get arr mid).base <= addr then begin
      found := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !found < 0 then Fault.segfault addr;
  let r = Array.unsafe_get arr !found in
  if addr >= r.base + r.rsize then Fault.segfault addr;
  let pbase = page lsl page_bits in
  if pbase >= r.base && pbase + (1 lsl page_bits) <= r.base + r.rsize then begin
    t.tlb_pages.(slot) <- page;
    t.tlb_regs.(slot) <- Some r
  end;
  r

let find_region t addr =
  if addr < 0 then Fault.segfault addr;
  let page = addr lsr page_bits in
  let slot = page land (tlb_size - 1) in
  if Array.unsafe_get t.tlb_pages slot = page then
    match Array.unsafe_get t.tlb_regs slot with
    | Some r ->
      t.stats.tlb_hits <- t.stats.tlb_hits + 1;
      r
    | None -> find_region_slow t addr page slot
  else find_region_slow t addr page slot

(* Translate an access of [len] bytes at [addr]; the whole access must lie
   within one region, otherwise it faults at the first uncovered byte. *)
let translate t addr len =
  let r = find_region t addr in
  if addr + len > r.base + r.rsize then Fault.segfault (r.base + r.rsize);
  (r, r.dev_off + (addr - r.base))

let count_load t r len = match r.kind with
  | Persistent ->
    t.stats.pm_loads <- t.stats.pm_loads + 1;
    t.stats.pm_bytes_loaded <- t.stats.pm_bytes_loaded + len
  | Volatile -> t.stats.vol_loads <- t.stats.vol_loads + 1

let count_store t r len = match r.kind with
  | Persistent ->
    t.stats.pm_stores <- t.stats.pm_stores + 1;
    t.stats.pm_bytes_stored <- t.stats.pm_bytes_stored + len
  | Volatile -> t.stats.vol_stores <- t.stats.vol_stores + 1

(* Typed accessors. Words are 63-bit OCaml ints stored as 8 little-endian
   bytes; the top bit is always zero on store and discarded on load. *)

(* Loads check for poisoned media (bad blocks raise SIGBUS) before
   touching the view; [Memdev.check_load] is a no-op on healthy devices. *)

let load_u8 t addr =
  let r, off = translate t addr 1 in
  count_load t r 1;
  Memdev.check_load r.dev ~off ~len:1;
  Char.code (Bytes.get (Memdev.unsafe_view r.dev) off)

let load_u16 t addr =
  let r, off = translate t addr 2 in
  count_load t r 2;
  Memdev.check_load r.dev ~off ~len:2;
  Bytes.get_uint16_le (Memdev.unsafe_view r.dev) off

let load_u32 t addr =
  let r, off = translate t addr 4 in
  count_load t r 4;
  Memdev.check_load r.dev ~off ~len:4;
  Int32.to_int (Bytes.get_int32_le (Memdev.unsafe_view r.dev) off) land 0xFFFFFFFF

let load_word t addr =
  let r, off = translate t addr 8 in
  count_load t r 8;
  Memdev.check_load r.dev ~off ~len:8;
  Int64.to_int (Bytes.get_int64_le (Memdev.unsafe_view r.dev) off)

let store_u8 t addr v =
  let r, off = translate t addr 1 in
  count_store t r 1;
  Memdev.store_u8 r.dev ~off v

let store_u16 t addr v =
  let r, off = translate t addr 2 in
  count_store t r 2;
  Memdev.store_u16 r.dev ~off v

let store_u32 t addr v =
  let r, off = translate t addr 4 in
  count_store t r 4;
  Memdev.store_u32 r.dev ~off v

let store_word t addr v =
  let r, off = translate t addr 8 in
  count_store t r 8;
  Memdev.store_word r.dev ~off v

(* Block operations. A block access counts one load/store event (stats
   skew otherwise: an N-byte memcpy is one instruction, not N), with the
   moved bytes accounted separately in [pm_bytes_loaded/stored]. *)

let read_bytes t addr len =
  if len = 0 then Bytes.create 0
  else begin
    let r, off = translate t addr len in
    count_load t r len;
    Memdev.load_bytes r.dev ~off ~len
  end

(* Caller-buffer read: the region is resolved once and the device view
   copied out in chunks. Each chunk is bad-block-checked before it is
   copied and counted, so a fault mid-range — region boundary or
   poisoned media — leaves exactly the clean prefix in [dst] and in the
   counters, like a hardware memcpy dying partway. Event accounting
   matches [read_bytes]: one load event for the whole block, with the
   bytes that were actually moved in [pm_bytes_loaded]. *)

let read_chunk = 256

(* Longest clean prefix of [off, off+len) on [dev]: a Bus_error names
   the first poisoned byte of the overlapping bad block, but an earlier
   bad block may still precede it in the list, so narrow until clean. *)
let rec clean_prefix dev ~off ~len =
  match Memdev.check_load dev ~off ~len with
  | () -> len
  | exception Fault.Fault (Fault.Bus_error, boff) ->
    if boff <= off then 0 else clean_prefix dev ~off ~len:(boff - off)

let read_into t addr ~len ~dst ~dst_off =
  if len < 0 || dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Space.read_into: bad destination range";
  if len > 0 then begin
    let r = find_region t addr in
    let limit = r.base + r.rsize in
    let count copied chunk =
      match r.kind with
      | Persistent ->
        if copied = 0 then t.stats.pm_loads <- t.stats.pm_loads + 1;
        t.stats.pm_bytes_loaded <- t.stats.pm_bytes_loaded + chunk
      | Volatile ->
        if copied = 0 then t.stats.vol_loads <- t.stats.vol_loads + 1
    in
    let rec go a copied =
      if copied < len then begin
        if a >= limit then Fault.segfault limit;
        let chunk = min read_chunk (min (len - copied) (limit - a)) in
        let off = r.dev_off + (a - r.base) in
        let ok = clean_prefix r.dev ~off ~len:chunk in
        if ok > 0 then begin
          count copied ok;
          Memdev.load_into r.dev ~off ~len:ok ~dst ~dst_off:(dst_off + copied)
        end;
        if ok < chunk then Fault.bus_error (off + ok)
        else go (a + chunk) (copied + chunk)
      end
    in
    go addr 0
  end

let read_sub t addr len =
  (* Single-copy string read: one fresh buffer, filled in place, frozen.
     The buffer never escapes mutable, so the unsafe freeze is sound. *)
  if len = 0 then ""
  else begin
    let b = Bytes.create len in
    read_into t addr ~len ~dst:b ~dst_off:0;
    Bytes.unsafe_to_string b
  end

let write_bytes t addr b =
  let len = Bytes.length b in
  if len > 0 then begin
    let r, off = translate t addr len in
    count_store t r len;
    Memdev.store_bytes r.dev ~off b ~src_off:0 ~len
  end

let write_string t addr s =
  let len = String.length s in
  if len > 0 then begin
    let r, off = translate t addr len in
    count_store t r len;
    Memdev.store_string r.dev ~off s
  end

let fill t addr len c =
  if len > 0 then begin
    let r, off = translate t addr len in
    count_store t r len;
    Memdev.fill r.dev ~off ~len c
  end

let blit t ~src ~dst ~len =
  (* Device-level copy: no intermediate buffer, memmove-safe overlap. *)
  if len > 0 then begin
    let rs, src_off = translate t src len in
    let rd, dst_off = translate t dst len in
    count_load t rs len;
    count_store t rd len;
    Memdev.blit ~src:rs.dev ~src_off ~dst:rd.dev ~dst_off ~len
  end

(* Block compare without materializing either side. *)

let memcmp t a b len =
  if len = 0 then 0
  else begin
    let ra, off_a = translate t a len in
    let rb, off_b = translate t b len in
    count_load t ra len;
    count_load t rb len;
    Memdev.check_load ra.dev ~off:off_a ~len;
    Memdev.check_load rb.dev ~off:off_b ~len;
    let va = Memdev.unsafe_view ra.dev and vb = Memdev.unsafe_view rb.dev in
    let rec go i =
      if i = len then 0
      else begin
        let ca = Char.code (Bytes.unsafe_get va (off_a + i))
        and cb = Char.code (Bytes.unsafe_get vb (off_b + i)) in
        if ca <> cb then compare ca cb else go (i + 1)
      end
    in
    go 0
  end

(* Device-side compare of a mapped byte range against an OCaml string —
   [String.compare (read_sub t addr len) s] without materializing the
   device side. Accounting mirrors [memcmp]: the whole range counts as
   one load event (the comparison instruction touched it), bad blocks
   checked up front. *)

(* The comparison loops live at toplevel: a local recursive function
   closes over the device view and candidate and costs an allocation per
   call without flambda — these run once per probed entry on hot paths. *)
let rec cmp_loop b base s i n =
  if i = n then 0
  else
    let ca = Char.code (Bytes.unsafe_get b (base + i))
    and cb = Char.code (String.unsafe_get s i) in
    if ca < cb then -1
    else if ca > cb then 1
    else cmp_loop b base s (i + 1) n

let rec eq_loop b base s i slen =
  i = slen
  || Bytes.unsafe_get b (base + i) = String.unsafe_get s i
     && eq_loop b base s (i + 1) slen

let compare_string t addr ~len s =
  let slen = String.length s in
  if len = 0 && slen = 0 then 0
  else begin
    let view, off =
      if len = 0 then (Bytes.empty, 0)
      else begin
        let r, off = translate t addr len in
        count_load t r len;
        Memdev.check_load r.dev ~off ~len;
        (Memdev.unsafe_view r.dev, off)
      end
    in
    let c = cmp_loop view off s 0 (min len slen) in
    if c <> 0 then c
    else if len < slen then -1
    else if len > slen then 1
    else 0
  end

let equal_string t addr s =
  compare_string t addr ~len:(String.length s) s = 0

(* C-string helpers: the region is resolved once and the device view is
   scanned in chunks — not one full translation per byte — still faulting
   at the region boundary exactly like a runaway strlen on hardware. *)

let strlen_chunk = 256

let strlen t addr =
  let r = find_region t addr in
  let view = Memdev.unsafe_view r.dev in
  let limit = r.base + r.rsize in
  let rec scan a =
    if a >= limit then Fault.segfault limit;
    let chunk = min strlen_chunk (limit - a) in
    let off = r.dev_off + (a - r.base) in
    let nul = ref (-1) in
    let i = ref 0 in
    while !nul < 0 && !i < chunk do
      if Bytes.unsafe_get view (off + !i) = '\000' then nul := !i else incr i
    done;
    (* only the bytes actually scanned count as read (and are checked
       against bad blocks): the NUL stops the access like on hardware *)
    let scanned = if !nul >= 0 then !nul + 1 else chunk in
    count_load t r scanned;
    Memdev.check_load r.dev ~off ~len:scanned;
    if !nul >= 0 then a + !nul - addr else scan (a + chunk)
  in
  scan addr

let read_cstring t addr =
  let len = strlen t addr in
  Bytes.to_string (read_bytes t addr len)

let strcmp t a b =
  let ra = find_region t a and rb = find_region t b in
  let va = Memdev.unsafe_view ra.dev and vb = Memdev.unsafe_view rb.dev in
  let lim_a = ra.base + ra.rsize and lim_b = rb.base + rb.rsize in
  let rec go i =
    if a + i >= lim_a then Fault.segfault lim_a;
    if b + i >= lim_b then Fault.segfault lim_b;
    let off_a = ra.dev_off + (a + i - ra.base) in
    let off_b = rb.dev_off + (b + i - rb.base) in
    Memdev.check_load ra.dev ~off:off_a ~len:1;
    Memdev.check_load rb.dev ~off:off_b ~len:1;
    let ca = Char.code (Bytes.unsafe_get va off_a)
    and cb = Char.code (Bytes.unsafe_get vb off_b) in
    if ca <> cb then (i, compare ca cb)
    else if ca = 0 then (i, 0)
    else go (i + 1)
  in
  let scanned, result = go 0 in
  count_load t ra (scanned + 1);
  count_load t rb (scanned + 1);
  result

(* Durability pass-throughs. *)

let flush t addr len =
  if len > 0 then begin
    let r, off = translate t addr len in
    Memdev.flush r.dev ~off ~len
  end

let fence_at t addr =
  let r = find_region t addr in
  Memdev.fence r.dev

let persist t addr len =
  (* one translation for both halves of the CLWB+SFENCE pair *)
  if len > 0 then begin
    let r, off = translate t addr len in
    Memdev.flush r.dev ~off ~len;
    Memdev.fence r.dev
  end

let store_word_persist t addr v =
  (* Fused store+persist for the pmdk metadata paths (store_p): one
     translation instead of three. *)
  let r, off = translate t addr 8 in
  count_store t r 8;
  Memdev.store_word r.dev ~off v;
  Memdev.flush r.dev ~off ~len:8;
  Memdev.fence r.dev

let is_mapped t addr =
  match find_region t addr with
  | (_ : region) -> true
  | exception Fault.Fault _ -> false

(* ------------------------------------------------------------------ *)
(* Leases — validated read windows                                     *)
(* ------------------------------------------------------------------ *)

(* A lease pins one region resolution (and with it one TLB translation)
   over a byte window: acquisition walks the translation pipeline and
   bounds-checks the whole window once, after which every read through
   the lease is a bare offset into the pinned device view — no region
   search, no TLB probe, no per-access pointer check. This is the
   runtime half of the check-preemption story the [spp_instr] passes
   prove on the miniature IR: hoist the check out of the loop, let the
   body run unchecked.

   Safety is preserved by two guards every access still pays:
   - window bounds: an offset outside the leased window raises the
     typed [Lease_out_of_window] (the misuse analogue of a hoisted
     check being applied to the wrong pointer);
   - staleness: [map]/[unmap] bump the space epoch (they already
     invalidate the TLB — a lease is a pinned TLB entry, so the same
     shootdown must kill it); a lease from an older epoch raises
     [Stale_lease] instead of reading through a dead mapping.

   Bad blocks stay exact: every lease read still runs
   [Memdev.check_load] over exactly the accessed range. *)

type lease = {
  l_space : t;
  l_reg : region;
  l_addr : int;    (* window base (simulated address) *)
  l_len : int;     (* window length, bytes *)
  l_off : int;     (* device offset of the window base *)
  l_epoch : int;   (* space epoch at acquisition *)
}

exception Stale_lease of { addr : int; len : int }

exception Lease_out_of_window of {
  addr : int;      (* window base *)
  window : int;    (* window length *)
  off : int;       (* offending access offset within the window *)
  len : int;       (* offending access length *)
}

let () =
  Printexc.register_printer (function
    | Stale_lease { addr; len } ->
      Some
        (Printf.sprintf
           "Space.Stale_lease: window [0x%x, +%d) acquired before a \
            map/unmap invalidated the translation"
           addr len)
    | Lease_out_of_window { addr; window; off; len } ->
      Some
        (Printf.sprintf
           "Space.Lease_out_of_window: access (+%d, %d bytes) outside \
            window [0x%x, +%d)"
           off len addr window)
    | _ -> None)

let lease t addr len =
  if len <= 0 then invalid_arg "Space.lease: window must be non-empty";
  let r, off = translate t addr len in
  { l_space = t; l_reg = r; l_addr = addr; l_len = len; l_off = off;
    l_epoch = t.epoch }

let lease_addr l = l.l_addr
let lease_len l = l.l_len
let lease_valid l = l.l_epoch = l.l_space.epoch

(* Every access: epoch then window, both typed. *)
let lease_check l off len =
  if l.l_epoch <> l.l_space.epoch then
    raise (Stale_lease { addr = l.l_addr; len = l.l_len });
  if off < 0 || len < 0 || off + len > l.l_len then
    raise
      (Lease_out_of_window { addr = l.l_addr; window = l.l_len; off; len })

let lease_load_u8 l off =
  lease_check l off 1;
  let r = l.l_reg in
  count_load l.l_space r 1;
  Memdev.check_load r.dev ~off:(l.l_off + off) ~len:1;
  Char.code (Bytes.get (Memdev.unsafe_view r.dev) (l.l_off + off))

let lease_load_word l off =
  lease_check l off 8;
  let r = l.l_reg in
  count_load l.l_space r 8;
  Memdev.check_load r.dev ~off:(l.l_off + off) ~len:8;
  Int64.to_int (Bytes.get_int64_le (Memdev.unsafe_view r.dev) (l.l_off + off))

let lease_read_into l ~off ~len ~dst ~dst_off =
  lease_check l off len;
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Space.lease_read_into: bad destination range";
  if len > 0 then begin
    let r = l.l_reg in
    count_load l.l_space r len;
    Memdev.check_load r.dev ~off:(l.l_off + off) ~len;
    Memdev.load_into r.dev ~off:(l.l_off + off) ~len ~dst ~dst_off
  end

let lease_string l ~off ~len =
  (* single copy: fresh buffer filled in place, then frozen *)
  if len = 0 then (lease_check l off 0; "")
  else begin
    let b = Bytes.create len in
    lease_read_into l ~off ~len ~dst:b ~dst_off:0;
    Bytes.unsafe_to_string b
  end

let lease_compare_string l ~off s =
  (* [String.compare (lease_string l ~off ~len:|s|) s] without the copy *)
  let slen = String.length s in
  lease_check l off slen;
  let r = l.l_reg in
  if slen > 0 then begin
    count_load l.l_space r slen;
    Memdev.check_load r.dev ~off:(l.l_off + off) ~len:slen
  end;
  cmp_loop (Memdev.unsafe_view r.dev) (l.l_off + off) s 0 slen

let lease_equal_string l ~off s = lease_compare_string l ~off s = 0

(* ------------------------------------------------------------------ *)
(* Views — a window opened for raw reads                               *)
(* ------------------------------------------------------------------ *)

(* [lease_view] pays all three guards — staleness, window bounds, media
   — ONCE for a sub-window; every read through the resulting view is a
   bare access into the device backing store plus a window-bounds check:
   no epoch probe, no stats update, no media re-check. That is the full
   hoisting the SPP memintrinsic hook models (check the furthest byte
   once, run the body unchecked), applied to the simulator's own read
   pipeline. A view is transient by contract: it must not be held
   across anything that could remap the space or poison the device —
   acquire, read, drop (cmap holds one per entry visit, under the
   bucket stripe). Accounting is block-op style: the window counts as
   one load event for [len] bytes at acquisition, however many reads
   follow — the same accounting a block read of the window would pay. *)

type view = {
  v_bytes : Bytes.t;   (* device backing store *)
  v_base : int;        (* device offset of the view base *)
  v_addr : int;        (* simulated address of the view base (errors) *)
  v_len : int;         (* view length, bytes *)
}

let lease_view l ~off ~len =
  if len <= 0 then invalid_arg "Space.lease_view: window must be non-empty";
  lease_check l off len;
  let r = l.l_reg in
  count_load l.l_space r len;
  Memdev.check_load r.dev ~off:(l.l_off + off) ~len;
  { v_bytes = Memdev.unsafe_view r.dev; v_base = l.l_off + off;
    v_addr = l.l_addr + off; v_len = len }

(* A view straight off the translation pipeline — for engine-internal
   pool-offset IO that has no lease to scope it (bmap's node reads). *)
let read_view t addr len =
  if len <= 0 then invalid_arg "Space.read_view: window must be non-empty";
  (* [translate] inlined to skip its result pair — this is the hot
     acquisition of every engine read window *)
  let r = find_region t addr in
  if addr + len > r.base + r.rsize then Fault.segfault (r.base + r.rsize);
  let off = r.dev_off + (addr - r.base) in
  count_load t r len;
  Memdev.check_load r.dev ~off ~len;
  { v_bytes = Memdev.unsafe_view r.dev; v_base = off; v_addr = addr;
    v_len = len }

let view_len v = v.v_len

let view_check v off len =
  if off < 0 || len < 0 || off + len > v.v_len then
    raise
      (Lease_out_of_window { addr = v.v_addr; window = v.v_len; off; len })

let view_u8 v off =
  view_check v off 1;
  Char.code (Bytes.unsafe_get v.v_bytes (v.v_base + off))

let view_word v off =
  view_check v off 8;
  (* manual LE assembly: [Bytes.get_int64_le] boxes an [Int64] per call,
     and word reads are the inner loop of every node/entry decode. The
     top bit is always zero on store (words are 63-bit ints), so the
     eight raw bytes reassemble exactly. *)
  let b = v.v_bytes and i = v.v_base + off in
  Char.code (Bytes.unsafe_get b i)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (i + 3)) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (i + 4)) lsl 32)
  lor (Char.code (Bytes.unsafe_get b (i + 5)) lsl 40)
  lor (Char.code (Bytes.unsafe_get b (i + 6)) lsl 48)
  lor (Char.code (Bytes.unsafe_get b (i + 7)) lsl 56)

let view_string v ~off ~len =
  view_check v off len;
  Bytes.sub_string v.v_bytes (v.v_base + off) len

let view_compare_string v ~off ~len s =
  (* [String.compare (view_string v ~off ~len) s] without the copy *)
  view_check v off len;
  let slen = String.length s in
  let c = cmp_loop v.v_bytes (v.v_base + off) s 0 (min len slen) in
  if c <> 0 then c else if len < slen then -1 else if len > slen then 1 else 0

let view_equal_string v ~off s =
  let slen = String.length s in
  view_check v off slen;
  eq_loop v.v_bytes (v.v_base + off) s 0 slen
