(* Simulated virtual address space.

   Regions map address ranges onto memory devices. Translation of an
   address not covered by any region raises a fault — this is the
   mechanism SPP's implicit bounds check relies on: an overflown tagged
   pointer decodes to a huge address that no region covers. *)

type kind =
  | Volatile
  | Persistent

type region = {
  base : int;
  rsize : int;
  dev : Memdev.t;
  dev_off : int;
  kind : kind;
  rname : string;
}

type stats = {
  mutable pm_loads : int;
  mutable pm_stores : int;
  mutable vol_loads : int;
  mutable vol_stores : int;
}

type t = {
  mutable regions : region list;   (* sorted by base, ascending *)
  mutable cache : region option;   (* last hit *)
  stats : stats;
}

let create () =
  { regions = []; cache = None;
    stats = { pm_loads = 0; pm_stores = 0; vol_loads = 0; vol_stores = 0 } }

let stats t = t.stats

let reset_stats t =
  t.stats.pm_loads <- 0; t.stats.pm_stores <- 0;
  t.stats.vol_loads <- 0; t.stats.vol_stores <- 0

let overlaps a b =
  a.base < b.base + b.rsize && b.base < a.base + a.rsize

let map t ~base ~size ?(dev_off = 0) ~kind ~name dev =
  if base < 0 || size <= 0 then invalid_arg "Space.map: bad range";
  if dev_off < 0 || dev_off + size > Memdev.size dev then
    invalid_arg "Space.map: range exceeds device";
  let r = { base; rsize = size; dev; dev_off; kind; rname = name } in
  List.iter
    (fun r' ->
      if overlaps r r' then
        invalid_arg
          (Printf.sprintf "Space.map: region %s overlaps %s" name r'.rname))
    t.regions;
  t.regions <- List.sort (fun a b -> compare a.base b.base) (r :: t.regions)

let unmap t ~base =
  t.cache <- None;
  let before = List.length t.regions in
  t.regions <- List.filter (fun r -> r.base <> base) t.regions;
  if List.length t.regions = before then
    invalid_arg "Space.unmap: no region at this base"

let regions t = t.regions

let region_name r = r.rname
let region_base r = r.base
let region_size r = r.rsize
let region_kind r = r.kind
let region_dev r = r.dev

let find_region t addr =
  match t.cache with
  | Some r when addr >= r.base && addr < r.base + r.rsize -> r
  | _ ->
    let rec go = function
      | [] -> Fault.segfault addr
      | r :: rest ->
        if addr < r.base then Fault.segfault addr
        else if addr < r.base + r.rsize then begin
          t.cache <- Some r; r
        end else go rest
    in
    go t.regions

(* Translate an access of [len] bytes at [addr]; the whole access must lie
   within one region, otherwise it faults at the first uncovered byte. *)
let translate t addr len =
  if addr < 0 then Fault.segfault addr;
  let r = find_region t addr in
  if addr + len > r.base + r.rsize then Fault.segfault (r.base + r.rsize);
  (r, r.dev_off + (addr - r.base))

let count_load t r = match r.kind with
  | Persistent -> t.stats.pm_loads <- t.stats.pm_loads + 1
  | Volatile -> t.stats.vol_loads <- t.stats.vol_loads + 1

let count_store t r = match r.kind with
  | Persistent -> t.stats.pm_stores <- t.stats.pm_stores + 1
  | Volatile -> t.stats.vol_stores <- t.stats.vol_stores + 1

(* Typed accessors. Words are 63-bit OCaml ints stored as 8 little-endian
   bytes; the top bit is always zero on store and discarded on load. *)

(* Loads check for poisoned media (bad blocks raise SIGBUS) before
   touching the view; [Memdev.check_load] is a no-op on healthy devices. *)

let load_u8 t addr =
  let r, off = translate t addr 1 in
  count_load t r;
  Memdev.check_load r.dev ~off ~len:1;
  Char.code (Bytes.get (Memdev.unsafe_view r.dev) off)

let load_u16 t addr =
  let r, off = translate t addr 2 in
  count_load t r;
  Memdev.check_load r.dev ~off ~len:2;
  Bytes.get_uint16_le (Memdev.unsafe_view r.dev) off

let load_u32 t addr =
  let r, off = translate t addr 4 in
  count_load t r;
  Memdev.check_load r.dev ~off ~len:4;
  Int32.to_int (Bytes.get_int32_le (Memdev.unsafe_view r.dev) off) land 0xFFFFFFFF

let load_word t addr =
  let r, off = translate t addr 8 in
  count_load t r;
  Memdev.check_load r.dev ~off ~len:8;
  Int64.to_int (Bytes.get_int64_le (Memdev.unsafe_view r.dev) off)

let store_u8 t addr v =
  let r, off = translate t addr 1 in
  count_store t r;
  Memdev.store_u8 r.dev ~off v

let store_u16 t addr v =
  let r, off = translate t addr 2 in
  count_store t r;
  Memdev.store_u16 r.dev ~off v

let store_u32 t addr v =
  let r, off = translate t addr 4 in
  count_store t r;
  Memdev.store_u32 r.dev ~off v

let store_word t addr v =
  let r, off = translate t addr 8 in
  count_store t r;
  Memdev.store_word r.dev ~off v

(* Block operations. *)

let read_bytes t addr len =
  if len = 0 then Bytes.create 0
  else begin
    let r, off = translate t addr len in
    count_load t r;
    Memdev.load_bytes r.dev ~off ~len
  end

let write_bytes t addr b =
  let len = Bytes.length b in
  if len > 0 then begin
    let r, off = translate t addr len in
    count_store t r;
    Memdev.store_bytes r.dev ~off b ~src_off:0 ~len
  end

let write_string t addr s =
  let len = String.length s in
  if len > 0 then begin
    let r, off = translate t addr len in
    count_store t r;
    Memdev.store_string r.dev ~off s
  end

let fill t addr len c =
  if len > 0 then begin
    let r, off = translate t addr len in
    count_store t r;
    Memdev.fill r.dev ~off ~len c
  end

let blit t ~src ~dst ~len =
  if len > 0 then begin
    let b = read_bytes t src len in
    write_bytes t dst b
  end

(* C-string helpers: scan for NUL, faulting if the scan leaves the region. *)

let strlen t addr =
  let rec go i =
    if load_u8 t (addr + i) = 0 then i else go (i + 1)
  in
  go 0

let read_cstring t addr =
  let len = strlen t addr in
  Bytes.to_string (read_bytes t addr len)

(* Durability pass-throughs. *)

let flush t addr len =
  if len > 0 then begin
    let r, off = translate t addr len in
    Memdev.flush r.dev ~off ~len
  end

let fence_at t addr =
  let r = find_region t addr in
  Memdev.fence r.dev

let persist t addr len =
  flush t addr len;
  if len > 0 then fence_at t addr

let is_mapped t addr =
  match find_region t addr with
  | (_ : region) -> true
  | exception Fault.Fault _ -> false
