(* Growable-array journal: an append-only sequence with O(1) amortized
   push, used for the tracking-mode store journal and event trace in
   [Memdev]. Replaces the newest-first cons lists the tracking engine
   grew by — appending keeps program order directly, so consumers never
   pay a [List.rev], and iteration is cache-friendly. *)

type 'a t = {
  mutable arr : 'a array;
  mutable len : int;
}

let create () = { arr = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let arr' = Array.make (max 16 (2 * cap)) x in
    Array.blit t.arr 0 arr' 0 t.len;
    t.arr <- arr'
  end;
  Array.unsafe_set t.arr t.len x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Journal.get: index out of bounds";
  t.arr.(i)

let clear t =
  (* Drop the backing store too: journals are cleared at crash/reset
     points where holding onto a large buffer would pin dead payloads. *)
  t.arr <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.arr i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.arr i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.arr.(i))

let to_array t = Array.sub t.arr 0 t.len

let filter_in_place keep t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = Array.unsafe_get t.arr i in
    if keep x then begin
      Array.unsafe_set t.arr !j x;
      incr j
    end
  done;
  t.len <- !j

let exists p t =
  let rec go i = i < t.len && (p t.arr.(i) || go (i + 1)) in
  go 0
