(** Simulated virtual address space.

    Regions map simulated address ranges onto {!Memdev} devices. Any access
    through an address not covered by a region raises {!Fault.Fault} — the
    analogue of a hardware fault, and the sink for SPP's implicitly
    invalidated (overflown) pointers.

    Translation walks a sorted region array by binary search, fronted by a
    direct-mapped software TLB (64 entries over 4 KiB pages). A TLB entry
    is only installed when its whole page lies inside one region, so a
    region boundary mid-page still faults; map/unmap invalidate the TLB. *)

type t

type kind =
  | Volatile
  | Persistent

type region

val create : unit -> t

(** {1 Mapping} *)

val map :
  t -> base:int -> size:int -> ?dev_off:int -> kind:kind -> name:string ->
  Memdev.t -> unit
(** Map [size] bytes of the device (from [dev_off]) at simulated address
    [base]. Raises [Invalid_argument] on overlap or out-of-device ranges. *)

val unmap : t -> base:int -> unit
val regions : t -> region list
val is_mapped : t -> int -> bool

val region_name : region -> string
val region_base : region -> int
val region_size : region -> int
val region_kind : region -> kind
val region_dev : region -> Memdev.t

val find_region : t -> int -> region
(** Region covering the address; raises {!Fault.Fault} otherwise. *)

(** {1 Typed accessors}

    Words are 63-bit OCaml ints stored as 8 little-endian bytes. All
    accessors fault ([Fault.Fault]) on unmapped or region-crossing
    accesses. *)

val load_u8 : t -> int -> int
val load_u16 : t -> int -> int
val load_u32 : t -> int -> int
val load_word : t -> int -> int
val store_u8 : t -> int -> int -> unit
val store_u16 : t -> int -> int -> unit
val store_u32 : t -> int -> int -> unit
val store_word : t -> int -> int -> unit

(** {1 Block operations}

    A block operation counts one load/store event regardless of length;
    the bytes moved are accounted in [pm_bytes_loaded]/[pm_bytes_stored]. *)

val read_bytes : t -> int -> int -> Bytes.t

val read_into : t -> int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
(** Copy [len] bytes at the address into [dst] at [dst_off]. The region
    is resolved once and the device view copied out in chunks; a fault
    mid-range (region boundary or bad block) leaves exactly the clean
    prefix in [dst] and in the counters. One load event total, like
    {!read_bytes}. Raises [Invalid_argument] on a bad destination
    range. *)

val read_sub : t -> int -> int -> string
(** [read_sub t addr len] — the [len]-byte substring at [addr] as a
    string, in a single copy (fresh buffer filled in place and frozen):
    no intermediate [read_bytes] + [Bytes.to_string] double copy. *)

val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit
val fill : t -> int -> int -> char -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Copy [len] bytes between mapped ranges through {!Memdev.blit} — no
    intermediate buffer, memmove-safe for overlapping ranges. *)

val memcmp : t -> int -> int -> int -> int
(** [memcmp t a b len] — lexicographic byte compare without materializing
    either side. Negative, zero or positive like C [memcmp]. *)

val compare_string : t -> int -> len:int -> string -> int
(** [compare_string t addr ~len s] — [String.compare] of the [len]-byte
    device range at [addr] against [s], without materializing the device
    side. Accounting mirrors {!memcmp}: one load event over the range. *)

val equal_string : t -> int -> string -> bool
(** [equal_string t addr s] — device bytes at [addr] equal [s]
    ([compare_string] over [String.length s] bytes). *)

(** {1 C-string helpers} *)

val strlen : t -> int -> int
(** Distance to the first NUL byte. The region is resolved once and the
    device view scanned in chunks; faults if the scan leaves the mapped
    region (exactly like a runaway [strlen] on real hardware). *)

val read_cstring : t -> int -> string

val strcmp : t -> int -> int -> int
(** C [strcmp] over two NUL-terminated strings, scanning the device views
    directly; faults if either scan leaves its mapped region. *)

(** {1 Durability} *)

val flush : t -> int -> int -> unit
val fence_at : t -> int -> unit

val persist : t -> int -> int -> unit
(** Flush + fence with a single translation. *)

val store_word_persist : t -> int -> int -> unit
(** Fused [store_word] + [persist] over the stored word — one translation
    for the whole store/CLWB/SFENCE sequence (the pmdk [store_p] path). *)

(** {1 Accounting} *)

type stats = {
  mutable pm_loads : int;
  mutable pm_stores : int;
  mutable vol_loads : int;
  mutable vol_stores : int;
  mutable pm_bytes_loaded : int;   (** bytes moved by PM loads *)
  mutable pm_bytes_stored : int;   (** bytes moved by PM stores *)
  mutable tlb_hits : int;          (** translations served by the TLB *)
  mutable tlb_misses : int;        (** translations that walked the region array *)
}

val stats : t -> stats
(** The live (mutable) stats record of this space. *)

val snapshot_stats : t -> stats
(** An immutable-by-convention copy of the current counters — safe to
    keep across a [reset_stats] or to hand to {!merge_stats}. *)

val zero_stats : unit -> stats

val add_stats : into:stats -> stats -> unit
(** Accumulate [s] into [into], fieldwise. *)

val merge_stats : stats list -> stats
(** Fieldwise sum — the aggregate view over a set of per-shard spaces
    after their driving domains have joined. *)

val reset_stats : t -> unit

(** {1 Leases — validated read windows}

    A lease pins one region resolution + one TLB translation over a byte
    window: acquisition bounds-checks and translates the whole window
    once, after which reads through the lease are bare offsets into the
    pinned device view — no region search, TLB probe, or per-access
    pointer check. Two guards remain on every access: window bounds
    (typed {!Lease_out_of_window}) and staleness — [map]/[unmap] bump an
    internal epoch (the TLB-shootdown analogue), and a lease from an
    older epoch raises {!Stale_lease} instead of reading through a dead
    mapping. Bad blocks stay exact: every read still checks the accessed
    range against poisoned media. *)

type lease

exception Stale_lease of { addr : int; len : int }
(** The space was remapped ([map]/[unmap]) after this lease was
    acquired; the pinned translation is dead. *)

exception Lease_out_of_window of {
  addr : int;      (** window base *)
  window : int;    (** window length *)
  off : int;       (** offending access offset within the window *)
  len : int;       (** offending access length *)
}
(** An access through the lease fell outside the window it validated. *)

val lease : t -> int -> int -> lease
(** [lease t addr len] — validate and pin the window [addr, addr+len).
    Faults like {!read_bytes} would (unmapped / region-crossing);
    [Invalid_argument] on an empty window. Acquisition itself counts no
    load: it is the hoisted check, not an access. *)

val lease_addr : lease -> int
val lease_len : lease -> int

val lease_valid : lease -> bool
(** False once [map]/[unmap] ran after acquisition. *)

val lease_load_u8 : lease -> int -> int
val lease_load_word : lease -> int -> int
(** Word/byte reads at an offset within the window. *)

val lease_read_into :
  lease -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit

val lease_string : lease -> off:int -> len:int -> string
(** Single-copy string read of [off, off+len) within the window. *)

val lease_compare_string : lease -> off:int -> string -> int
(** [String.compare] of the window bytes at [off] against the string,
    without materializing the device side. *)

val lease_equal_string : lease -> off:int -> string -> bool

(** {1 Views — a window opened for raw reads}

    {!lease_view} pays all three lease guards — staleness, window
    bounds, poisoned media — once for a sub-window; every read through
    the resulting view is a bare access into the device backing store
    plus a window-bounds check. This is the full hoisting the SPP
    memintrinsic hook models: check the furthest byte once, run the
    body unchecked. A view is transient by contract — acquire, read,
    drop — and must not be held across anything that could remap the
    space or poison the device; staleness and media are only guaranteed
    as of acquisition time. Accounting is block-op style: the window
    counts as one load event for its full length at acquisition. *)

type view

val lease_view : lease -> off:int -> len:int -> view
(** Open [off, off+len) of the lease for raw reads. Raises the lease's
    typed errors ({!Stale_lease} / {!Lease_out_of_window}) and checks
    the whole window against bad blocks up front. *)

val read_view : t -> int -> int -> view
(** [read_view t addr len] — a view straight off the translation
    pipeline, for engine-internal pool-offset IO that has no lease to
    scope it. Faults like {!read_bytes} would. *)

val view_len : view -> int
val view_u8 : view -> int -> int
val view_word : view -> int -> int

val view_string : view -> off:int -> len:int -> string
(** Single-copy string read of [off, off+len) within the view. *)

val view_compare_string : view -> off:int -> len:int -> string -> int
(** [String.compare] of the [len] view bytes at [off] against the
    string, device side never materialized. *)

val view_equal_string : view -> off:int -> string -> bool
