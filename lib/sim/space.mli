(** Simulated virtual address space.

    Regions map simulated address ranges onto {!Memdev} devices. Any access
    through an address not covered by a region raises {!Fault.Fault} — the
    analogue of a hardware fault, and the sink for SPP's implicitly
    invalidated (overflown) pointers.

    Translation walks a sorted region array by binary search, fronted by a
    direct-mapped software TLB (64 entries over 4 KiB pages). A TLB entry
    is only installed when its whole page lies inside one region, so a
    region boundary mid-page still faults; map/unmap invalidate the TLB. *)

type t

type kind =
  | Volatile
  | Persistent

type region

val create : unit -> t

(** {1 Mapping} *)

val map :
  t -> base:int -> size:int -> ?dev_off:int -> kind:kind -> name:string ->
  Memdev.t -> unit
(** Map [size] bytes of the device (from [dev_off]) at simulated address
    [base]. Raises [Invalid_argument] on overlap or out-of-device ranges. *)

val unmap : t -> base:int -> unit
val regions : t -> region list
val is_mapped : t -> int -> bool

val region_name : region -> string
val region_base : region -> int
val region_size : region -> int
val region_kind : region -> kind
val region_dev : region -> Memdev.t

val find_region : t -> int -> region
(** Region covering the address; raises {!Fault.Fault} otherwise. *)

(** {1 Typed accessors}

    Words are 63-bit OCaml ints stored as 8 little-endian bytes. All
    accessors fault ([Fault.Fault]) on unmapped or region-crossing
    accesses. *)

val load_u8 : t -> int -> int
val load_u16 : t -> int -> int
val load_u32 : t -> int -> int
val load_word : t -> int -> int
val store_u8 : t -> int -> int -> unit
val store_u16 : t -> int -> int -> unit
val store_u32 : t -> int -> int -> unit
val store_word : t -> int -> int -> unit

(** {1 Block operations}

    A block operation counts one load/store event regardless of length;
    the bytes moved are accounted in [pm_bytes_loaded]/[pm_bytes_stored]. *)

val read_bytes : t -> int -> int -> Bytes.t
val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit
val fill : t -> int -> int -> char -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Copy [len] bytes between mapped ranges through {!Memdev.blit} — no
    intermediate buffer, memmove-safe for overlapping ranges. *)

val memcmp : t -> int -> int -> int -> int
(** [memcmp t a b len] — lexicographic byte compare without materializing
    either side. Negative, zero or positive like C [memcmp]. *)

(** {1 C-string helpers} *)

val strlen : t -> int -> int
(** Distance to the first NUL byte. The region is resolved once and the
    device view scanned in chunks; faults if the scan leaves the mapped
    region (exactly like a runaway [strlen] on real hardware). *)

val read_cstring : t -> int -> string

val strcmp : t -> int -> int -> int
(** C [strcmp] over two NUL-terminated strings, scanning the device views
    directly; faults if either scan leaves its mapped region. *)

(** {1 Durability} *)

val flush : t -> int -> int -> unit
val fence_at : t -> int -> unit

val persist : t -> int -> int -> unit
(** Flush + fence with a single translation. *)

val store_word_persist : t -> int -> int -> unit
(** Fused [store_word] + [persist] over the stored word — one translation
    for the whole store/CLWB/SFENCE sequence (the pmdk [store_p] path). *)

(** {1 Accounting} *)

type stats = {
  mutable pm_loads : int;
  mutable pm_stores : int;
  mutable vol_loads : int;
  mutable vol_stores : int;
  mutable pm_bytes_loaded : int;   (** bytes moved by PM loads *)
  mutable pm_bytes_stored : int;   (** bytes moved by PM stores *)
  mutable tlb_hits : int;          (** translations served by the TLB *)
  mutable tlb_misses : int;        (** translations that walked the region array *)
}

val stats : t -> stats
(** The live (mutable) stats record of this space. *)

val snapshot_stats : t -> stats
(** An immutable-by-convention copy of the current counters — safe to
    keep across a [reset_stats] or to hand to {!merge_stats}. *)

val zero_stats : unit -> stats

val add_stats : into:stats -> stats -> unit
(** Accumulate [s] into [into], fieldwise. *)

val merge_stats : stats list -> stats
(** Fieldwise sum — the aggregate view over a set of per-shard spaces
    after their driving domains have joined. *)

val reset_stats : t -> unit
